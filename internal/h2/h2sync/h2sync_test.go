package h2sync

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"h2privacy/internal/h2"
	"h2privacy/internal/trace"
)

// startPair wires a Server and Client over the given pair of conns and
// returns the client plus a cleanup.
func startPair(t *testing.T, handler HandlerFunc, serverConn, clientConn net.Conn) *Client {
	t.Helper()
	srv := &Server{Handler: handler}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(serverConn)
	}()
	var random [32]byte
	random[0] = 1
	cli, err := NewClient(clientConn, h2.Config{}, random)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cli.Close()
		_ = serverConn.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("server goroutine leaked")
		}
	})
	return cli
}

func echoHandler(w *ResponseWriter, r *Request) {
	if r.Path == "/missing" {
		_ = w.WriteHeader(404)
		return
	}
	_ = w.WriteHeader(200, h2.HeaderField{Name: "content-type", Value: "text/plain"})
	_, _ = w.Write([]byte("path=" + r.Path))
}

func TestGetOverNetPipe(t *testing.T) {
	sc, cc := net.Pipe()
	cli := startPair(t, echoHandler, sc, cc)
	resp, err := cli.Get("example.test", "/hello")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || string(resp.Body) != "path=/hello" {
		t.Fatalf("resp = %d %q", resp.Status, resp.Body)
	}
}

func TestGetOverTCPLoopback(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srvErr := make(chan error, 1)
	srv := &Server{Handler: echoHandler}
	go func() { srvErr <- srv.ListenAndServe(l) }()

	nc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	var random [32]byte
	random[1] = 2
	cli, err := NewClient(nc, h2.Config{}, random)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	resp, err := cli.Get("example.test", "/tcp")
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "path=/tcp" {
		t.Fatalf("body = %q", resp.Body)
	}
	cli.Close() // ListenAndServe waits for live connections to finish
	_ = l.Close()
	select {
	case <-srvErr:
	case <-time.After(5 * time.Second):
		t.Fatal("ListenAndServe did not stop")
	}
}

func TestStatusPropagation(t *testing.T) {
	sc, cc := net.Pipe()
	cli := startPair(t, echoHandler, sc, cc)
	resp, err := cli.Get("example.test", "/missing")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 404 {
		t.Fatalf("status = %d", resp.Status)
	}
}

func TestConcurrentRequestsMultiplex(t *testing.T) {
	// Handlers stall until all three requests have arrived, proving the
	// server runs them concurrently on one connection.
	var mu sync.Mutex
	arrived := 0
	allIn := make(chan struct{})
	handler := func(w *ResponseWriter, r *Request) {
		mu.Lock()
		arrived++
		if arrived == 3 {
			close(allIn)
		}
		mu.Unlock()
		select {
		case <-allIn:
		case <-time.After(5 * time.Second):
			_ = w.WriteHeader(500)
			return
		}
		_, _ = w.Write([]byte(strings.Repeat(r.Path[1:2], 50_000)))
	}
	sc, cc := net.Pipe()
	cli := startPair(t, handler, sc, cc)
	var wg sync.WaitGroup
	errs := make([]error, 3)
	bodies := make([]string, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := cli.Get("example.test", fmt.Sprintf("/%c", 'a'+i))
			if err != nil {
				errs[i] = err
				return
			}
			bodies[i] = string(resp.Body)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		want := strings.Repeat(string(rune('a'+i)), 50_000)
		if bodies[i] != want {
			t.Fatalf("request %d: wrong body (%d bytes)", i, len(bodies[i]))
		}
	}
}

func TestLargeBodyFlowControl(t *testing.T) {
	big := bytes.Repeat([]byte("0123456789abcdef"), 64<<10/16*20) // 1.25 MiB
	handler := func(w *ResponseWriter, r *Request) {
		_, _ = w.Write(big)
	}
	sc, cc := net.Pipe()
	cli := startPair(t, handler, sc, cc)
	resp, err := cli.Get("example.test", "/big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Body, big) {
		t.Fatalf("body corrupted: %d bytes, want %d", len(resp.Body), len(big))
	}
}

func TestRequestTimeoutResetsStream(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	handler := func(w *ResponseWriter, r *Request) {
		<-block // never responds in time
	}
	sc, cc := net.Pipe()
	cli := startPair(t, handler, sc, cc)
	cli.Timeout = 200 * time.Millisecond
	if _, err := cli.Get("example.test", "/stall"); err == nil {
		t.Fatal("stalled request did not time out")
	}
}

func TestSequentialRequestsReuseConnection(t *testing.T) {
	sc, cc := net.Pipe()
	cli := startPair(t, echoHandler, sc, cc)
	for i := 0; i < 10; i++ {
		resp, err := cli.Get("example.test", fmt.Sprintf("/seq/%d", i))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if want := fmt.Sprintf("path=/seq/%d", i); string(resp.Body) != want {
			t.Fatalf("request %d: body %q", i, resp.Body)
		}
	}
}

func TestGetAfterCloseFails(t *testing.T) {
	sc, cc := net.Pipe()
	srv := &Server{Handler: echoHandler}
	go func() { _ = srv.Serve(sc) }()
	var random [32]byte
	cli, err := NewClient(cc, h2.Config{}, random)
	if err != nil {
		t.Fatal(err)
	}
	cli.Close()
	if _, err := cli.Get("example.test", "/x"); err == nil {
		t.Fatal("Get succeeded on closed client")
	}
}

func TestServerRequiresHandler(t *testing.T) {
	srv := &Server{}
	sc, cc := net.Pipe()
	defer sc.Close()
	defer cc.Close()
	if err := srv.Serve(sc); err == nil {
		t.Fatal("Serve without handler succeeded")
	}
}

func TestRequestHeadersDelivered(t *testing.T) {
	var gotUA string
	var gotMethod, gotAuthority string
	handler := func(w *ResponseWriter, r *Request) {
		gotMethod, gotAuthority = r.Method, r.Authority
		for _, f := range r.Header {
			if f.Name == "user-agent" {
				gotUA = f.Value
			}
		}
		_, _ = w.Write([]byte("ok"))
	}
	sc, cc := net.Pipe()
	srv := &Server{Handler: handler}
	go func() { _ = srv.Serve(sc) }()
	var random [32]byte
	cli, err := NewClient(cc, h2.Config{}, random)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// Use the low-level API to add a custom header.
	pr := &pendingResp{done: make(chan error, 1)}
	cli.peer.mu.Lock()
	st, err := cli.peer.h2c.OpenStream([]h2.HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: "hdr.test"},
		{Name: ":path", Value: "/h"},
		{Name: "user-agent", Value: "h2privacy-test"},
	}, true, h2.PriorityParam{})
	if err != nil {
		cli.peer.mu.Unlock()
		t.Fatal(err)
	}
	st.UserData = pr
	cli.peer.mu.Unlock()
	select {
	case err := <-pr.done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
	if gotUA != "h2privacy-test" || gotMethod != "GET" || gotAuthority != "hdr.test" {
		t.Fatalf("ua=%q method=%q authority=%q", gotUA, gotMethod, gotAuthority)
	}
}

func TestManySequentialClients(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv := &Server{Handler: echoHandler}
	go func() { _ = srv.ListenAndServe(l) }()
	for i := 0; i < 5; i++ {
		nc, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		var random [32]byte
		random[0] = byte(i)
		cli, err := NewClient(nc, h2.Config{}, random)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := cli.Get("example.test", fmt.Sprintf("/conn/%d", i))
		if err != nil {
			t.Fatalf("conn %d: %v", i, err)
		}
		if want := fmt.Sprintf("path=/conn/%d", i); string(resp.Body) != want {
			t.Fatalf("conn %d body %q", i, resp.Body)
		}
		cli.Close()
		_ = nc.Close()
	}
}

func TestParallelClientsShareServer(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv := &Server{Handler: echoHandler}
	go func() { _ = srv.ListenAndServe(l) }()
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nc, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				errs[i] = err
				return
			}
			defer nc.Close()
			var random [32]byte
			random[1] = byte(i)
			cli, err := NewClient(nc, h2.Config{}, random)
			if err != nil {
				errs[i] = err
				return
			}
			defer cli.Close()
			for j := 0; j < 5; j++ {
				if _, err := cli.Get("example.test", fmt.Sprintf("/p/%d/%d", i, j)); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
}

func TestResponseHeadersExposed(t *testing.T) {
	handler := func(w *ResponseWriter, r *Request) {
		_ = w.WriteHeader(200, h2.HeaderField{Name: "content-type", Value: "text/html"},
			h2.HeaderField{Name: "x-custom", Value: "yes"})
		_, _ = w.Write([]byte("ok"))
	}
	sc, cc := net.Pipe()
	cli := startPair(t, handler, sc, cc)
	resp, err := cli.Get("example.test", "/hdr")
	if err != nil {
		t.Fatal(err)
	}
	var custom string
	for _, f := range resp.Header {
		if f.Name == "x-custom" {
			custom = f.Value
		}
	}
	if custom != "yes" {
		t.Fatalf("headers = %+v", resp.Header)
	}
}

func TestWriteHeaderTwiceFails(t *testing.T) {
	done := make(chan error, 1)
	handler := func(w *ResponseWriter, r *Request) {
		_ = w.WriteHeader(200)
		done <- w.WriteHeader(500)
	}
	sc, cc := net.Pipe()
	cli := startPair(t, handler, sc, cc)
	if _, err := cli.Get("example.test", "/twice"); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Fatal("second WriteHeader succeeded")
	}
}

// TestConcurrentTracer runs a traced server under the goroutine-per-stream
// stack: the wall-clock tracer with Config.Concurrent must survive parallel
// streams (the race detector checks the mutex path) and record frames from
// every connection into one stream.
func TestConcurrentTracer(t *testing.T) {
	tr := trace.New(trace.WallClock(), trace.Config{Concurrent: true})
	sc, cc := net.Pipe()
	srv := &Server{
		Config:  h2.Config{Tracer: tr, TraceName: "server"},
		Handler: echoHandler,
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(sc)
	}()
	var random [32]byte
	random[2] = 3
	cli, err := NewClient(cc, h2.Config{}, random)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := cli.Get("example.test", fmt.Sprintf("/obj-%d", i))
			if err != nil {
				t.Errorf("get %d: %v", i, err)
				return
			}
			if resp.Status != 200 {
				t.Errorf("get %d: status %d", i, resp.Status)
			}
		}()
	}
	wg.Wait()
	cli.Close()
	_ = sc.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server goroutine leaked")
	}
	if tr.Len() == 0 {
		t.Fatal("traced server recorded no events")
	}
	var sends, recvs int
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case "send":
			sends++
		case "recv":
			recvs++
		}
	}
	if sends == 0 || recvs == 0 {
		t.Fatalf("send/recv events = %d/%d, want both > 0", sends, recvs)
	}
	var buf bytes.Buffer
	if err := tr.WriteFormat(&buf, trace.FormatSummary); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "h2") {
		t.Fatal("summary missing h2 layer")
	}
}
