// Package h2sync adapts the sans-IO h2 core to blocking I/O over a real
// net.Conn (TCP loopback, net.Pipe, …): a goroutine-per-stream server —
// the "multi-threaded server operation" whose multiplexing the paper
// studies — and a blocking client. Both speak the repository's tlsrec
// record layer beneath HTTP/2, exactly like the simulated endpoints, so
// integration tests can exercise the identical protocol stack over real
// sockets.
package h2sync

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"h2privacy/internal/h2"
	"h2privacy/internal/tlsrec"
)

// ErrConnClosed reports use of a finished connection.
var ErrConnClosed = errors.New("h2sync: connection closed")

// peer is the shared transport plumbing: net.Conn → tlsrec → h2, with one
// mutex serializing all h2.Conn access (the sans-IO core is not
// goroutine-safe) and a cond broadcast on flow-control progress.
type peer struct {
	nc  net.Conn
	tls *tlsrec.Conn
	h2c *h2.Conn

	mu     sync.Mutex
	cond   *sync.Cond
	closed bool
	err    error

	// pendingOut buffers h2 output produced before the TLS handshake
	// completes (e.g. the client preface); flushed on establishment.
	pendingOut [][]byte

	// outQueue holds wire bytes awaiting the writer goroutine. Writes
	// never happen on the read path: with synchronous transports
	// (net.Pipe) a write-from-read deadlocks both peers.
	outQueue [][]byte

	wg sync.WaitGroup
}

func newPeer(nc net.Conn, isClient bool, cfg h2.Config, random [32]byte) (*peer, error) {
	p := &peer{nc: nc}
	p.cond = sync.NewCond(&p.mu)
	p.tls = tlsrec.NewConn(isClient, random, func(b []byte) {
		// Record-layer output is queued for the writer goroutine.
		// Callers hold p.mu.
		cp := make([]byte, len(b))
		copy(cp, b)
		p.outQueue = append(p.outQueue, cp)
		p.cond.Broadcast()
	})
	p.tls.OnEstablished(func() {
		for _, b := range p.pendingOut {
			if err := p.tls.Send(tlsrec.ContentApplicationData, b); err != nil {
				p.failLocked(fmt.Errorf("h2sync: seal: %w", err))
				return
			}
		}
		p.pendingOut = nil
	})
	var err error
	p.h2c, err = h2.NewConn(isClient, cfg, func(b []byte) {
		if !p.tls.Established() {
			cp := make([]byte, len(b))
			copy(cp, b)
			p.pendingOut = append(p.pendingOut, cp)
			return
		}
		if err := p.tls.Send(tlsrec.ContentApplicationData, b); err != nil {
			p.failLocked(fmt.Errorf("h2sync: seal: %w", err))
		}
	})
	if err != nil {
		return nil, err
	}
	p.tls.OnRecord(func(ct tlsrec.ContentType, payload []byte) {
		if ct != tlsrec.ContentApplicationData {
			return
		}
		if err := p.h2c.Feed(payload); err != nil {
			p.failLocked(err)
		}
	})
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.writeLoop()
	}()
	return p, nil
}

// writeLoop drains outQueue to the socket in order.
func (p *peer) writeLoop() {
	for {
		p.mu.Lock()
		for len(p.outQueue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.outQueue) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		batch := p.outQueue
		p.outQueue = nil
		p.mu.Unlock()
		for _, b := range batch {
			if _, err := p.nc.Write(b); err != nil {
				p.mu.Lock()
				p.failLocked(fmt.Errorf("h2sync: write: %w", err))
				p.mu.Unlock()
				return
			}
		}
	}
}

// failLocked records the first fatal error. Callers hold p.mu (or are on
// the read loop before any waiter could observe a partial state).
func (p *peer) failLocked(err error) {
	if p.err == nil {
		p.err = err
	}
	p.closed = true
	p.cond.Broadcast()
}

// readLoop pumps the socket into the record layer and h2 core. It runs on
// the Serve/Dial caller's goroutine or a tracked goroutine and returns on
// the first transport or protocol error.
func (p *peer) readLoop() error {
	buf := make([]byte, 32<<10)
	for {
		n, err := p.nc.Read(buf)
		if n > 0 {
			p.mu.Lock()
			if ferr := p.tls.Feed(buf[:n]); ferr != nil {
				p.failLocked(ferr)
				p.mu.Unlock()
				return ferr
			}
			if p.err != nil {
				err := p.err
				p.mu.Unlock()
				return err
			}
			p.cond.Broadcast()
			p.mu.Unlock()
		}
		if err != nil {
			p.mu.Lock()
			p.failLocked(err)
			p.mu.Unlock()
			return err
		}
	}
}

// close tears the connection down and waits for handler goroutines.
func (p *peer) close() {
	p.mu.Lock()
	p.failLocked(ErrConnClosed)
	p.mu.Unlock()
	_ = p.nc.Close()
	p.wg.Wait()
}

// writeBody sends p on the stream, blocking on flow control until done or
// the connection dies. Callers must NOT hold p.mu.
func (p *peer) writeBody(s *h2.Stream, body []byte, endStream bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return p.errLocked()
		}
		n, err := s.SendData(body, endStream)
		if err != nil {
			return err
		}
		body = body[n:]
		if len(body) == 0 {
			return nil
		}
		p.cond.Wait() // window opened, connection progressed, or closed
	}
}

func (p *peer) errLocked() error {
	if p.err != nil {
		return p.err
	}
	return ErrConnClosed
}
