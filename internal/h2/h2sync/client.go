package h2sync

import (
	"fmt"
	"net"
	"time"

	"h2privacy/internal/h2"
)

// Response is a completed HTTP/2 response.
type Response struct {
	Status int
	Header []h2.HeaderField
	Body   []byte
}

// pendingResp accumulates a response until END_STREAM.
type pendingResp struct {
	resp Response
	done chan error // buffered(1); receives nil or a terminal error
}

// Client is a blocking HTTP/2 client over one connection. Get may be
// called from many goroutines concurrently; requests multiplex onto the
// single connection.
type Client struct {
	peer *peer
	// Timeout bounds each Get (default 10 s).
	Timeout time.Duration
}

// NewClient starts a client on nc. The returned client owns a background
// read goroutine that lives until Close.
func NewClient(nc net.Conn, cfg h2.Config, random [32]byte) (*Client, error) {
	p, err := newPeer(nc, true, cfg, random)
	if err != nil {
		return nil, err
	}
	c := &Client{peer: p, Timeout: 10 * time.Second}
	p.h2c.SetHandlers(h2.Handlers{
		OnStreamHeaders: func(st *h2.Stream, fields []h2.HeaderField, endStream bool) {
			pr, ok := st.UserData.(*pendingResp)
			if !ok {
				return
			}
			for _, f := range fields {
				if f.Name == ":status" {
					fmt.Sscanf(f.Value, "%d", &pr.resp.Status)
				} else {
					pr.resp.Header = append(pr.resp.Header, f)
				}
			}
			if endStream {
				pr.done <- nil
			}
		},
		OnStreamData: func(st *h2.Stream, data []byte, endStream bool) {
			pr, ok := st.UserData.(*pendingResp)
			if !ok {
				return
			}
			pr.resp.Body = append(pr.resp.Body, data...)
			if endStream {
				pr.done <- nil
			}
		},
		OnStreamReset: func(st *h2.Stream, code h2.ErrCode, remote bool) {
			if pr, ok := st.UserData.(*pendingResp); ok {
				pr.done <- fmt.Errorf("h2sync: stream reset: %v", code)
			}
		},
	})
	p.mu.Lock()
	p.tls.Start()
	p.h2c.Start()
	p.mu.Unlock()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		_ = p.readLoop()
	}()
	return c, nil
}

// Get performs a GET for path against authority and waits for the
// complete response.
func (c *Client) Get(authority, path string) (*Response, error) {
	fields := []h2.HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: authority},
		{Name: ":path", Value: path},
	}
	pr := &pendingResp{done: make(chan error, 1)}
	c.peer.mu.Lock()
	if c.peer.closed {
		err := c.peer.errLocked()
		c.peer.mu.Unlock()
		return nil, err
	}
	st, err := c.peer.h2c.OpenStream(fields, true, h2.PriorityParam{})
	if err != nil {
		c.peer.mu.Unlock()
		return nil, err
	}
	st.UserData = pr
	c.peer.mu.Unlock()

	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case err := <-pr.done:
		if err != nil {
			return nil, err
		}
		return &pr.resp, nil
	case <-timer.C:
		c.peer.mu.Lock()
		st.Reset(h2.ErrCodeCancel)
		c.peer.mu.Unlock()
		return nil, fmt.Errorf("h2sync: request %s timed out after %v", path, timeout)
	}
}

// Close tears down the connection and joins the read goroutine.
func (c *Client) Close() { c.peer.close() }
