package h2sync

import (
	"fmt"
	"net"
	"sync"

	"h2privacy/internal/h2"
)

// Request is a decoded HTTP/2 request.
type Request struct {
	Method    string
	Path      string
	Authority string
	Header    []h2.HeaderField
	Body      []byte
	StreamID  uint32
}

// ResponseWriter lets a handler stream its response. Write blocks on flow
// control, which is what makes concurrent handlers interleave DATA frames
// — the multiplexing at the heart of the paper.
type ResponseWriter struct {
	peer   *peer
	stream *h2.Stream

	mu          sync.Mutex
	wroteHeader bool
	finished    bool
}

// WriteHeader sends the response HEADERS with the given status and extra
// fields. Calling it twice is an error.
func (w *ResponseWriter) WriteHeader(status int, fields ...h2.HeaderField) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.wroteHeader {
		return fmt.Errorf("h2sync: WriteHeader called twice")
	}
	w.wroteHeader = true
	all := append([]h2.HeaderField{{Name: ":status", Value: fmt.Sprintf("%d", status)}}, fields...)
	w.peer.mu.Lock()
	defer w.peer.mu.Unlock()
	if w.peer.closed {
		return w.peer.errLocked()
	}
	return w.stream.SendHeaders(all, false)
}

// Write streams body bytes (sending 200 headers first if none were sent),
// blocking until flow control accepts everything.
func (w *ResponseWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	if !w.wroteHeader {
		w.mu.Unlock()
		if err := w.WriteHeader(200); err != nil {
			return 0, err
		}
		w.mu.Lock()
	}
	if w.finished {
		w.mu.Unlock()
		return 0, fmt.Errorf("h2sync: Write after Finish")
	}
	w.mu.Unlock()
	if err := w.peer.writeBody(w.stream, p, false); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Finish ends the stream (END_STREAM on an empty DATA frame).
func (w *ResponseWriter) Finish() error {
	w.mu.Lock()
	if !w.wroteHeader {
		w.mu.Unlock()
		if err := w.WriteHeader(200); err != nil {
			return err
		}
		w.mu.Lock()
	}
	if w.finished {
		w.mu.Unlock()
		return nil
	}
	w.finished = true
	w.mu.Unlock()
	return w.peer.writeBody(w.stream, nil, true)
}

// HandlerFunc serves one request. It runs on its own goroutine — one
// "server thread" per stream, as in the paper's Fig. 3.
type HandlerFunc func(w *ResponseWriter, r *Request)

// reqState tracks request assembly on a stream's UserData slot.
type reqState struct {
	req  *Request
	seen bool
}

// Server serves HTTP/2 (over tlsrec) connections.
type Server struct {
	// Handler serves each request; required.
	Handler HandlerFunc
	// Config tunes the h2 endpoint.
	Config h2.Config
	// Random seeds the TLS handshake; zero is fine for tests.
	Random [32]byte
}

// Serve handles one connection, blocking until it ends. The returned error
// is the terminal condition (io.EOF-wrapped for orderly remote close).
func (s *Server) Serve(nc net.Conn) error {
	if s.Handler == nil {
		return fmt.Errorf("h2sync: Server requires a Handler")
	}
	p, err := newPeer(nc, false, s.Config, s.Random)
	if err != nil {
		return err
	}
	p.h2c.SetHandlers(h2.Handlers{
		OnStreamHeaders: func(st *h2.Stream, fields []h2.HeaderField, endStream bool) {
			req := &Request{StreamID: st.ID()}
			for _, f := range fields {
				switch f.Name {
				case ":method":
					req.Method = f.Value
				case ":path":
					req.Path = f.Value
				case ":authority":
					req.Authority = f.Value
				default:
					req.Header = append(req.Header, f)
				}
			}
			st.UserData = &reqState{req: req}
			if endStream {
				s.dispatch(p, st, req)
			}
		},
		OnStreamData: func(st *h2.Stream, data []byte, endStream bool) {
			rs, ok := st.UserData.(*reqState)
			if !ok {
				return
			}
			rs.req.Body = append(rs.req.Body, data...)
			if endStream && !rs.seen {
				s.dispatch(p, st, rs.req)
			}
		},
		OnStreamReset: func(st *h2.Stream, code h2.ErrCode, remote bool) {
			// Handler writes will fail; nothing else to flush here.
		},
	})
	p.mu.Lock()
	p.tls.Start()
	p.h2c.Start()
	p.mu.Unlock()
	err = p.readLoop()
	p.close()
	return err
}

func (s *Server) dispatch(p *peer, st *h2.Stream, req *Request) {
	if rs, ok := st.UserData.(*reqState); ok {
		rs.seen = true
	}
	w := &ResponseWriter{peer: p, stream: st}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		s.Handler(w, req)
		_ = w.Finish()
	}()
}

// ListenAndServe accepts connections on l and serves each on its own
// goroutine until l.Close. It returns the Accept error that stopped it.
func (s *Server) ListenAndServe(l net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		nc, err := l.Accept()
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.Serve(nc)
		}()
	}
}
