package h2

import (
	"bytes"
	"testing"
	"testing/quick"
)

func parseOne(t *testing.T, wire []byte) *Frame {
	t.Helper()
	r := NewFrameReader()
	r.MaxFrameSize = maxFrameSizeLimit
	r.Feed(wire)
	f, err := r.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if f == nil {
		t.Fatal("incomplete frame")
	}
	return f
}

func TestDataFrameRoundTrip(t *testing.T) {
	data := []byte("hello h2")
	wire := AppendData(nil, 5, data, true, 0)
	f := parseOne(t, wire)
	if f.Header.Type != FrameData || f.Header.StreamID != 5 {
		t.Fatalf("header = %v", f.Header)
	}
	if !f.Header.Flags.Has(FlagEndStream) || !bytes.Equal(f.Data, data) {
		t.Fatalf("frame = %+v", f)
	}
}

func TestDataFramePaddingRoundTrip(t *testing.T) {
	data := []byte("padded payload")
	wire := AppendData(nil, 7, data, false, 37)
	f := parseOne(t, wire)
	if !bytes.Equal(f.Data, data) || f.PadLength != 37 {
		t.Fatalf("data=%q pad=%d", f.Data, f.PadLength)
	}
	if f.Header.Length != len(data)+1+37 {
		t.Fatalf("wire length = %d", f.Header.Length)
	}
}

func TestHeadersFrameWithPriorityRoundTrip(t *testing.T) {
	prio := PriorityParam{StreamDep: 11, Exclusive: true, Weight: 147}
	frag := []byte{0x82, 0x87}
	wire := AppendHeaders(nil, 9, frag, true, true, prio)
	f := parseOne(t, wire)
	if f.Priority != prio {
		t.Fatalf("priority = %+v", f.Priority)
	}
	if !bytes.Equal(f.Data, frag) {
		t.Fatalf("fragment = %v", f.Data)
	}
	if !f.Header.Flags.Has(FlagEndStream | FlagEndHeaders | FlagPriority) {
		t.Fatalf("flags = %v", f.Header.Flags)
	}
}

func TestRSTStreamRoundTrip(t *testing.T) {
	wire := AppendRSTStream(nil, 3, ErrCodeCancel)
	f := parseOne(t, wire)
	if f.ErrCode != ErrCodeCancel || f.Header.StreamID != 3 {
		t.Fatalf("frame = %+v", f)
	}
}

func TestSettingsRoundTrip(t *testing.T) {
	in := []Setting{
		{SettingInitialWindowSize, 1 << 20},
		{SettingMaxFrameSize, 32768},
	}
	f := parseOne(t, AppendSettings(nil, in))
	if len(f.Settings) != 2 || f.Settings[0] != in[0] || f.Settings[1] != in[1] {
		t.Fatalf("settings = %+v", f.Settings)
	}
	ack := parseOne(t, AppendSettingsAck(nil))
	if !ack.Header.Flags.Has(FlagAck) || len(ack.Settings) != 0 {
		t.Fatalf("ack = %+v", ack)
	}
}

func TestGoAwayRoundTrip(t *testing.T) {
	f := parseOne(t, AppendGoAway(nil, 41, ErrCodeEnhanceYourCalm, []byte("calm down")))
	if f.LastStreamID != 41 || f.ErrCode != ErrCodeEnhanceYourCalm || string(f.Data) != "calm down" {
		t.Fatalf("frame = %+v", f)
	}
}

func TestWindowUpdateRoundTrip(t *testing.T) {
	f := parseOne(t, AppendWindowUpdate(nil, 0, 123456))
	if f.WindowIncrement != 123456 || f.Header.StreamID != 0 {
		t.Fatalf("frame = %+v", f)
	}
}

func TestPingRoundTripCodec(t *testing.T) {
	data := [8]byte{9, 8, 7, 6, 5, 4, 3, 2}
	f := parseOne(t, AppendPing(nil, true, data))
	if f.PingData != data || !f.Header.Flags.Has(FlagAck) {
		t.Fatalf("frame = %+v", f)
	}
}

func TestPushPromiseRoundTrip(t *testing.T) {
	f := parseOne(t, AppendPushPromise(nil, 1, 6, []byte{0x82}, true))
	if f.PromisedStreamID != 6 || f.Header.StreamID != 1 || !bytes.Equal(f.Data, []byte{0x82}) {
		t.Fatalf("frame = %+v", f)
	}
}

func TestFragmentedParse(t *testing.T) {
	wire := AppendData(nil, 1, bytes.Repeat([]byte("x"), 500), true, 0)
	r := NewFrameReader()
	for i := 0; i < len(wire); i++ {
		r.Feed(wire[i : i+1])
		f, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if i < len(wire)-1 && f != nil {
			t.Fatal("frame completed early")
		}
		if i == len(wire)-1 && (f == nil || len(f.Data) != 500) {
			t.Fatalf("final byte: f=%v", f)
		}
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	r := NewFrameReader() // default 16384 limit
	wire := appendFrameHeader(nil, 100_000, FrameData, 0, 1)
	r.Feed(wire)
	if _, err := r.Next(); err == nil {
		t.Fatal("oversize frame accepted")
	}
}

func TestMalformedFrames(t *testing.T) {
	cases := map[string][]byte{
		"DATA stream 0":        AppendData(nil, 0, []byte("x"), false, 0),
		"RST length 3":         append(appendFrameHeader(nil, 3, FrameRSTStream, 0, 1), 0, 0, 8),
		"SETTINGS on stream":   appendFrameHeader(nil, 0, FrameSettings, 0, 3),
		"PING length 4":        append(appendFrameHeader(nil, 4, FramePing, 0, 0), 1, 2, 3, 4),
		"GOAWAY truncated":     append(appendFrameHeader(nil, 4, FrameGoAway, 0, 0), 0, 0, 0, 0),
		"WINDOW_UPDATE len 2":  append(appendFrameHeader(nil, 2, FrameWindowUpdate, 0, 0), 0, 1),
		"padding exceeds body": append(appendFrameHeader(nil, 2, FrameData, FlagPadded, 1), 200, 1),
		"HEADERS stream 0":     AppendHeaders(nil, 0, []byte{0x82}, false, true, PriorityParam{}),
		"CONTINUATION s0":      AppendContinuation(nil, 0, []byte{0x82}, true),
		"PRIORITY stream 0":    AppendPriority(nil, 0, PriorityParam{Weight: 1}),
	}
	for name, wire := range cases {
		r := NewFrameReader()
		r.Feed(wire)
		if _, err := r.Next(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestUnknownFrameTypeIgnored(t *testing.T) {
	wire := append(appendFrameHeader(nil, 3, FrameType(0xbe), 0, 1), 1, 2, 3)
	f := parseOne(t, wire)
	if f.Header.Type != FrameType(0xbe) {
		t.Fatalf("type = %v", f.Header.Type)
	}
}

// Property: DATA frames round-trip for any payload and pad value.
func TestDataRoundTripProperty(t *testing.T) {
	f := func(payload []byte, streamID uint32, pad uint8, endStream bool) bool {
		if len(payload) > 16000 {
			payload = payload[:16000]
		}
		sid := streamID&0x7fffffff | 1
		wire := AppendData(nil, sid, payload, endStream, int(pad))
		r := NewFrameReader()
		r.MaxFrameSize = maxFrameSizeLimit
		r.Feed(wire)
		fr, err := r.Next()
		if err != nil || fr == nil {
			return false
		}
		return bytes.Equal(fr.Data, payload) &&
			fr.Header.StreamID == sid &&
			fr.Header.Flags.Has(FlagEndStream) == endStream
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: frame headers round-trip for all field values.
func TestFrameHeaderRoundTripProperty(t *testing.T) {
	f := func(length uint32, typ uint8, flags uint8, streamID uint32) bool {
		l := int(length % (1 << 24))
		sid := streamID & 0x7fffffff
		wire := appendFrameHeader(nil, l, FrameType(typ), Flags(flags), sid)
		hdr := parseFrameHeader(wire)
		return hdr.Length == l && hdr.Type == FrameType(typ) &&
			hdr.Flags == Flags(flags) && hdr.StreamID == sid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStringers(t *testing.T) {
	if FrameData.String() != "DATA" || FrameType(99).String() != "FRAME_TYPE_99" {
		t.Fatal("FrameType.String broken")
	}
	if ErrCodeProtocol.String() != "PROTOCOL_ERROR" || ErrCode(200).String() != "ERR_CODE_200" {
		t.Fatal("ErrCode.String broken")
	}
	if SettingMaxFrameSize.String() != "MAX_FRAME_SIZE" || SettingID(99).String() != "SETTING_99" {
		t.Fatal("SettingID.String broken")
	}
	for st, want := range map[StreamState]string{
		StreamIdle: "idle", StreamOpen: "open", StreamClosed: "closed",
		StreamHalfClosedLocal: "half-closed-local", StreamHalfClosedRemote: "half-closed-remote",
		StreamReservedLocal: "reserved-local", StreamReservedRemote: "reserved-remote",
	} {
		if st.String() != want {
			t.Fatalf("StreamState %d = %q, want %q", st, st.String(), want)
		}
	}
	ce := ConnectionError{ErrCodeProtocol, "boom"}
	if ce.Error() == "" {
		t.Fatal("empty ConnectionError")
	}
	se := StreamError{5, ErrCodeCancel, "gone"}
	if se.Error() == "" {
		t.Fatal("empty StreamError")
	}
	hdr := FrameHeader{Length: 4, Type: FramePing, StreamID: 0}
	if hdr.String() == "" {
		t.Fatal("empty FrameHeader.String")
	}
}
