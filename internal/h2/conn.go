package h2

import (
	"fmt"

	"h2privacy/internal/check"
	"h2privacy/internal/flowseq"
	"h2privacy/internal/hpack"
	"h2privacy/internal/trace"
)

// HeaderField aliases hpack.HeaderField; the h2 API speaks header lists.
type HeaderField = hpack.HeaderField

// Config tunes a connection endpoint. Zero values select the RFC defaults.
type Config struct {
	// HeaderTableSize is the HPACK dynamic table size we advertise.
	HeaderTableSize uint32
	// EnablePush advertises whether the peer may PUSH_PROMISE to us
	// (meaningful on clients). Defaults to false: pushes are refused.
	EnablePush bool
	// MaxConcurrentStreams caps peer-initiated concurrent streams.
	// Zero means 100.
	MaxConcurrentStreams uint32
	// InitialWindowSize is the per-stream flow window we advertise.
	// Zero means 65535.
	InitialWindowSize uint32
	// MaxFrameSize is the largest frame payload we accept (16384…2^24-1).
	// Zero means 16384.
	MaxFrameSize uint32
	// MaxHeaderListSize caps decoded header lists. Zero means 1 MiB.
	MaxHeaderListSize uint32
	// PadData, when non-nil, returns the padding length to append to a
	// DATA frame carrying n bytes — the size-obfuscation defense knob
	// explored alongside the paper's §VII directions.
	PadData func(n int) int
	// HuffmanHeaders Huffman-codes outgoing HPACK string literals.
	HuffmanHeaders bool
	// Tracer, when non-nil, arms per-frame tracing (send/recv with type,
	// stream and length; flow-control stalls).
	Tracer *trace.Tracer
	// TraceName tags this endpoint's trace events. Defaults to "client" or
	// "server" by role.
	TraceName string
	// Check, when non-nil, arms the HTTP/2 and HPACK invariant checkers
	// (see internal/check): stream-state legality, flow-control window
	// shadows, and dynamic-table size agreement. The endpoint name follows
	// TraceName's defaulting.
	Check *check.Checker
	// Flows, when non-nil, feeds every frame sent and received to the
	// flowseq event-sequence analyzer (per-stream timelines, burst and
	// interleaving features). Wire exactly one endpoint per flow — the
	// testbed wires the browser's connection, h2serve the server's —
	// because the analyzer resolves direction from this endpoint's role.
	Flows *flowseq.Analyzer
}

func (c Config) withDefaults() Config {
	if c.HeaderTableSize == 0 {
		c.HeaderTableSize = hpack.DefaultDynamicTableSize
	}
	if c.MaxConcurrentStreams == 0 {
		c.MaxConcurrentStreams = 100
	}
	if c.InitialWindowSize == 0 {
		c.InitialWindowSize = DefaultInitialWindowSize
	}
	if c.MaxFrameSize == 0 {
		c.MaxFrameSize = DefaultMaxFrameSize
	}
	if c.MaxHeaderListSize == 0 {
		c.MaxHeaderListSize = 1 << 20
	}
	return c
}

func (c Config) validate() error {
	if c.MaxFrameSize < DefaultMaxFrameSize || c.MaxFrameSize > maxFrameSizeLimit {
		return fmt.Errorf("h2: MaxFrameSize %d outside [%d, %d]", c.MaxFrameSize, DefaultMaxFrameSize, maxFrameSizeLimit)
	}
	if c.InitialWindowSize > maxWindow {
		return fmt.Errorf("h2: InitialWindowSize %d exceeds 2^31-1", c.InitialWindowSize)
	}
	return nil
}

// Handlers are the application callbacks. Any may be nil.
type Handlers struct {
	// OnStreamHeaders delivers a decoded header block. For servers this
	// is a request (a new Stream); for clients a response or trailers.
	OnStreamHeaders func(s *Stream, fields []HeaderField, endStream bool)
	// OnStreamData delivers DATA payload (padding already stripped).
	OnStreamData func(s *Stream, data []byte, endStream bool)
	// OnStreamReset reports stream termination by RST_STREAM; remote
	// says whether the peer initiated it.
	OnStreamReset func(s *Stream, code ErrCode, remote bool)
	// OnStreamClosed reports normal (END_STREAM both ways) completion.
	OnStreamClosed func(s *Stream)
	// OnPushPromise delivers a server push: the promised stream and the
	// synthesized request headers.
	OnPushPromise func(parent, promised *Stream, fields []HeaderField)
	// OnGoAway reports the peer's GOAWAY.
	OnGoAway func(lastStreamID uint32, code ErrCode, debug []byte)
	// OnPing reports PING frames (already ACKed internally).
	OnPing func(ack bool, data [8]byte)
	// OnWindowAvailable fires when send flow control opens up; s is nil
	// for connection-window updates.
	OnWindowAvailable func(s *Stream)
	// OnSettings reports the peer's SETTINGS (already applied and ACKed).
	OnSettings func(settings []Setting)
}

// ConnStats counts frames for the experiment harness.
type ConnStats struct {
	FramesSent     map[FrameType]int
	FramesReceived map[FrameType]int
	DataBytesSent  int64
	DataBytesRcvd  int64
}

// Conn is a sans-IO HTTP/2 connection endpoint.
type Conn struct {
	isClient bool
	cfg      Config
	out      func([]byte)
	handlers Handlers

	reader  *FrameReader
	henc    *hpack.Encoder
	hdec    *hpack.Decoder
	started bool
	failed  error

	prefacePending []byte // server: bytes of the client preface still expected

	streams          map[uint32]*Stream
	closedStreams    map[uint32]bool
	nextStreamID     uint32
	lastPeerStreamID uint32
	peerStreamCount  int

	sendWindow int64 // connection-level send window
	recvWindow int64 // connection-level receive window

	peerMaxFrameSize  int
	peerInitialWindow int64
	peerMaxStreams    uint32
	peerAllowsPush    bool

	goAwaySent     bool
	goAwayReceived bool

	// CONTINUATION reassembly state.
	contActive    bool
	contStreamID  uint32
	contStream    *Stream
	contBuf       []byte
	contEndStream bool
	contIsPush    bool
	contParent    *Stream
	contPromised  *Stream

	stats ConnStats

	// Per-frame scratch, reused across calls. scratchFrame backs the Feed
	// parse loop (the public FrameReader.Next still allocates); wbuf backs
	// emitFrame's serialization (consumers seal or copy synchronously);
	// hencBuf backs header-block encoding, kept separate from wbuf because
	// a block spans multiple emitFrame calls when CONTINUATION splits it.
	scratchFrame Frame
	wbuf         []byte
	hencBuf      []byte

	tr        *trace.Tracer
	traceName string
	ctStall   *trace.Counter

	ck     *check.Checker // nil unless invariant checks are armed
	ckName string

	fl *flowseq.Analyzer // nil unless flow-sequence analytics are armed
}

// NewConn builds an endpoint. out transmits wire bytes (one call per
// frame, which the TLS layer seals as one record) and must be non-nil.
// The slice passed to out is scratch the connection reuses for the next
// frame: consumers that keep the bytes past the callback must copy them.
func NewConn(isClient bool, cfg Config, out func([]byte)) (*Conn, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if out == nil {
		return nil, fmt.Errorf("h2: NewConn requires an output function")
	}
	c := &Conn{
		isClient:          isClient,
		cfg:               cfg,
		out:               out,
		reader:            NewFrameReader(),
		henc:              hpack.NewEncoder(hpack.DefaultDynamicTableSize),
		hdec:              hpack.NewDecoder(int(cfg.HeaderTableSize)),
		streams:           make(map[uint32]*Stream),
		closedStreams:     make(map[uint32]bool),
		sendWindow:        DefaultInitialWindowSize,
		recvWindow:        DefaultInitialWindowSize,
		peerMaxFrameSize:  DefaultMaxFrameSize,
		peerInitialWindow: DefaultInitialWindowSize,
		peerMaxStreams:    ^uint32(0),
		peerAllowsPush:    !isClient, // clients may push to nobody
		stats: ConnStats{
			FramesSent:     make(map[FrameType]int),
			FramesReceived: make(map[FrameType]int),
		},
	}
	c.henc.UseHuffman = cfg.HuffmanHeaders
	c.reader.MaxFrameSize = int(cfg.MaxFrameSize)
	c.hdec.MaxHeaderListSize = int(cfg.MaxHeaderListSize)
	c.hdec.MaxStringLength = int(cfg.MaxHeaderListSize)
	if isClient {
		c.nextStreamID = 1
	} else {
		c.nextStreamID = 2
		c.prefacePending = []byte(ClientPreface)
	}
	if cfg.Tracer.Enabled() {
		c.tr = cfg.Tracer
		c.traceName = cfg.TraceName
		if c.traceName == "" {
			if isClient {
				c.traceName = "client"
			} else {
				c.traceName = "server"
			}
		}
		c.ctStall = c.tr.Counter(trace.LayerH2, c.traceName+".fc-stall")
	}
	if cfg.Check.Enabled() {
		c.ck = cfg.Check
		c.ckName = cfg.TraceName
		if c.ckName == "" {
			if isClient {
				c.ckName = "client"
			} else {
				c.ckName = "server"
			}
		}
		c.ck.H2Register(c.ckName, isClient, cfg.InitialWindowSize)
	}
	c.fl = cfg.Flows
	return c, nil
}

// SetHandlers installs the application callbacks (before Start).
func (c *Conn) SetHandlers(h Handlers) { c.handlers = h }

// IsClient reports the endpoint role.
func (c *Conn) IsClient() bool { return c.isClient }

// Err returns the fatal connection error, or nil.
func (c *Conn) Err() error { return c.failed }

// Stats returns the frame counters (live maps; do not mutate).
func (c *Conn) Stats() ConnStats { return c.stats }

// Stream returns the stream with the given id, or nil.
func (c *Conn) Stream(id uint32) *Stream { return c.streams[id] }

// OpenStreamCount reports currently open (non-closed) streams.
func (c *Conn) OpenStreamCount() int { return len(c.streams) }

// GoAwayReceived reports whether the peer sent GOAWAY.
func (c *Conn) GoAwayReceived() bool { return c.goAwayReceived }

// Start emits the connection preface: the client magic (clients only)
// followed by our SETTINGS frame.
func (c *Conn) Start() {
	if c.started {
		return
	}
	c.started = true
	if c.isClient {
		c.out([]byte(ClientPreface))
	}
	var settings []Setting
	if c.cfg.HeaderTableSize != hpack.DefaultDynamicTableSize {
		settings = append(settings, Setting{SettingHeaderTableSize, c.cfg.HeaderTableSize})
	}
	if c.isClient {
		push := uint32(0)
		if c.cfg.EnablePush {
			push = 1
		}
		settings = append(settings, Setting{SettingEnablePush, push})
	}
	settings = append(settings,
		Setting{SettingMaxConcurrentStreams, c.cfg.MaxConcurrentStreams},
		Setting{SettingInitialWindowSize, c.cfg.InitialWindowSize},
		Setting{SettingMaxFrameSize, c.cfg.MaxFrameSize},
	)
	c.emitFrame(FrameSettings, 0, func(dst []byte) []byte {
		return AppendSettings(dst, settings)
	})
}

// OpenStream initiates a request stream (clients only). fields are the
// request pseudo-headers+headers; endStream marks a bodyless request.
func (c *Conn) OpenStream(fields []HeaderField, endStream bool, prio PriorityParam) (*Stream, error) {
	if !c.isClient {
		return nil, fmt.Errorf("h2: server cannot open request streams")
	}
	if c.failed != nil {
		return nil, c.failed
	}
	if c.goAwayReceived {
		return nil, fmt.Errorf("h2: connection is shutting down (GOAWAY received)")
	}
	id := c.nextStreamID
	c.nextStreamID += 2
	s := c.newStream(id)
	s.prio = prio
	s.state = StreamOpen
	if endStream {
		s.state = StreamHalfClosedLocal
	}
	c.sendHeaderBlock(id, fields, endStream, prio)
	return s, nil
}

// Push reserves a promised stream for server push (servers only; the peer
// must have enabled push).
func (c *Conn) Push(parent *Stream, fields []HeaderField) (*Stream, error) {
	if c.isClient {
		return nil, fmt.Errorf("h2: client cannot push")
	}
	if !c.peerAllowsPush {
		return nil, fmt.Errorf("h2: peer disabled push")
	}
	if parent == nil || parent.state == StreamClosed {
		return nil, fmt.Errorf("h2: push requires an open parent stream")
	}
	id := c.nextStreamID
	c.nextStreamID += 2
	promised := c.newStream(id)
	promised.state = StreamReservedLocal
	block := c.henc.Encode(c.hencBuf[:0], fields)
	c.hencBuf = block
	if c.ck.Enabled() {
		c.ck.HpackEncoded(c.ckName, c.henc.DynamicTableSize())
	}
	c.emitFrame(FramePushPromise, parent.id, func(dst []byte) []byte {
		return AppendPushPromise(dst, parent.id, id, block, true)
	})
	return promised, nil
}

// RaiseConnWindow grows the connection-level receive window by n bytes,
// emitting a WINDOW_UPDATE on stream 0. Browsers do this right after the
// SETTINGS exchange (Firefox raises it to ~12 MiB) so that the per-RTT
// transfer rate is bounded by TCP, not by HTTP/2 flow control.
func (c *Conn) RaiseConnWindow(n uint32) {
	if n == 0 {
		return
	}
	c.recvWindow += int64(n)
	c.emitFrame(FrameWindowUpdate, 0, func(dst []byte) []byte {
		return AppendWindowUpdate(dst, 0, n)
	})
}

// Ping sends a PING with the given opaque data.
func (c *Conn) Ping(data [8]byte) {
	c.emitFrame(FramePing, 0, func(dst []byte) []byte {
		return AppendPing(dst, false, data)
	})
}

// GoAway announces connection shutdown.
func (c *Conn) GoAway(code ErrCode, debug []byte) {
	if c.goAwaySent {
		return
	}
	c.goAwaySent = true
	c.emitFrame(FrameGoAway, 0, func(dst []byte) []byte {
		return AppendGoAway(dst, c.lastPeerStreamID, code, debug)
	})
}

// newStream registers a stream object.
func (c *Conn) newStream(id uint32) *Stream {
	s := &Stream{
		conn:       c,
		id:         id,
		state:      StreamIdle,
		sendWindow: c.peerInitialWindow,
		recvWindow: int64(c.cfg.InitialWindowSize),
	}
	c.streams[id] = s
	return s
}

// closeStream finalizes a stream and notifies the application.
func (c *Conn) closeStream(s *Stream, code ErrCode, remote bool) {
	if s.state == StreamClosed {
		return
	}
	wasReset := code != ErrCodeNo || remote
	s.state = StreamClosed
	delete(c.streams, s.id)
	c.closedStreams[s.id] = true
	if c.isPeerInitiated(s.id) && c.peerStreamCount > 0 {
		c.peerStreamCount--
	}
	if wasReset {
		if c.handlers.OnStreamReset != nil {
			c.handlers.OnStreamReset(s, code, remote)
		}
	} else if c.handlers.OnStreamClosed != nil {
		c.handlers.OnStreamClosed(s)
	}
}

func (c *Conn) isPeerInitiated(id uint32) bool {
	if c.isClient {
		return id%2 == 0
	}
	return id%2 == 1
}

// sendHeaderBlock HPACK-encodes fields and emits HEADERS (+CONTINUATION as
// needed).
func (c *Conn) sendHeaderBlock(streamID uint32, fields []HeaderField, endStream bool, prio PriorityParam) {
	block := c.henc.Encode(c.hencBuf[:0], fields)
	c.hencBuf = block
	if c.ck.Enabled() {
		c.ck.HpackEncoded(c.ckName, c.henc.DynamicTableSize())
	}
	max := c.peerMaxFrameSize
	if !prio.IsZero() {
		max -= 5
	}
	first := block
	rest := []byte(nil)
	if len(first) > max {
		first, rest = block[:max], block[max:]
	}
	endHeaders := len(rest) == 0
	c.emitFrame(FrameHeaders, streamID, func(dst []byte) []byte {
		return AppendHeaders(dst, streamID, first, endStream, endHeaders, prio)
	})
	for len(rest) > 0 {
		chunk := rest
		if len(chunk) > c.peerMaxFrameSize {
			chunk = chunk[:c.peerMaxFrameSize]
		}
		rest = rest[len(chunk):]
		last := len(rest) == 0
		c.emitFrame(FrameContinuation, streamID, func(dst []byte) []byte {
			return AppendContinuation(dst, streamID, chunk, last)
		})
	}
}

// padFor applies the configured padding policy.
func (c *Conn) padFor(n int) int {
	if c.cfg.PadData == nil {
		return 0
	}
	pad := c.cfg.PadData(n)
	if pad < 0 {
		return 0
	}
	if pad > 255 {
		pad = 255
	}
	return pad
}

// emitFrame serializes one frame through build and transmits it. streamID
// is the stream the frame belongs to (0 for connection-level frames); it
// only feeds the trace. The emitted slice is scratch reused by the next
// frame: out consumers (the TLS layer, taps) copy what they keep, as the
// NewConn contract requires.
func (c *Conn) emitFrame(t FrameType, streamID uint32, build func([]byte) []byte) {
	c.stats.FramesSent[t]++
	b := build(c.wbuf[:0])
	c.wbuf = b
	if c.tr.Enabled() {
		c.tr.Emit(trace.LayerH2, "send",
			trace.Str("ep", c.traceName), trace.Str("type", t.String()),
			trace.Num("stream", int64(streamID)), trace.Num("len", int64(len(b)-FrameHeaderSize)))
	}
	if c.ck.Enabled() {
		// aux carries the WINDOW_UPDATE increment / PUSH_PROMISE promised
		// stream ID, both big-endian at the start of the payload.
		var aux uint32
		if (t == FrameWindowUpdate || t == FramePushPromise) && len(b) >= FrameHeaderSize+4 {
			p := b[FrameHeaderSize:]
			aux = (uint32(p[0])<<24 | uint32(p[1])<<16 | uint32(p[2])<<8 | uint32(p[3])) & 0x7fffffff
		}
		c.ck.H2FrameSent(c.ckName, uint8(t), streamID, len(b)-FrameHeaderSize, b[4], aux)
	}
	if c.fl.Enabled() {
		c.fl.H2Frame(c.isClient, true, uint8(t), streamID, len(b)-FrameHeaderSize, b[4])
	}
	c.out(b)
}
