package h2

import (
	"strings"
	"testing"
)

// --- protocol robustness: hostile or odd frame sequences ---

func TestHPACKContinuityAcrossResetStreams(t *testing.T) {
	// Response headers for a stream the client already reset must still
	// feed the HPACK decoder, or the dynamic tables desynchronize. This
	// regression test reproduces the bug found during the attack runs.
	w := newWirePair(t, Config{}, Config{})
	responses := map[uint32][]HeaderField{}
	w.server.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) {
			// Respond with a unique custom header so the dynamic table
			// keeps growing.
			path := fieldValue(fields, ":path")
			_ = s.SendHeaders([]HeaderField{
				{Name: ":status", Value: "200"},
				{Name: "x-resp", Value: "value-for-" + path},
			}, true)
		},
		OnStreamReset: func(s *Stream, code ErrCode, remote bool) {},
	})
	w.client.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) {
			responses[s.ID()] = fields
		},
		OnStreamReset: func(s *Stream, code ErrCode, remote bool) {},
	})
	w.start()
	// Open a stream, pump only the request to the server, then reset it
	// client-side so the response headers arrive for a closed stream.
	s1, _ := w.client.OpenStream(getFields("/a"), true, PriorityParam{})
	w.pump()
	_ = s1
	s2, _ := w.client.OpenStream(getFields("/b"), true, PriorityParam{})
	s2.Reset(ErrCodeCancel) // reset before the response arrives
	w.pump()
	// More streams must decode fine — the dynamic table stayed in sync.
	for i := 0; i < 5; i++ {
		s, err := w.client.OpenStream(getFields("/c"), true, PriorityParam{})
		if err != nil {
			t.Fatal(err)
		}
		w.pump()
		got := fieldValue(responses[s.ID()], "x-resp")
		if got != "value-for-/c" {
			t.Fatalf("stream %d decoded %q", s.ID(), got)
		}
	}
	if w.client.Err() != nil || w.server.Err() != nil {
		t.Fatalf("errors: %v / %v", w.client.Err(), w.server.Err())
	}
}

func TestRefusedStreamKeepsHPACKSync(t *testing.T) {
	w := newWirePair(t, Config{}, Config{MaxConcurrentStreams: 1})
	w.server.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) {
			// Hold the stream open so the second gets refused.
		},
	})
	var refused, ok int
	w.client.SetHandlers(Handlers{
		OnStreamReset: func(s *Stream, code ErrCode, remote bool) {
			if code == ErrCodeRefusedStream {
				refused++
			}
		},
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) { ok++ },
	})
	w.start()
	// Each request carries a fresh header that enters the dynamic table.
	for i := 0; i < 4; i++ {
		fields := append(getFields("/r"), HeaderField{Name: "x-var", Value: strings.Repeat("v", i+1)})
		_, _ = w.client.OpenStream(fields, true, PriorityParam{})
		w.pump()
	}
	if refused != 3 {
		t.Fatalf("refused = %d, want 3", refused)
	}
	if w.server.Err() != nil {
		t.Fatalf("server HPACK desync: %v", w.server.Err())
	}
}

func TestWindowUpdateZeroOnStreamResetsIt(t *testing.T) {
	w := newWirePair(t, Config{}, Config{})
	var resetCode ErrCode
	w.server.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) {},
		OnStreamReset:   func(s *Stream, code ErrCode, remote bool) { resetCode = code },
	})
	w.start()
	s, _ := w.client.OpenStream(getFields("/w0"), true, PriorityParam{})
	w.pump()
	// Handcraft a zero-increment WINDOW_UPDATE on the stream.
	if err := w.server.Feed(AppendWindowUpdate(nil, s.ID(), 0)); err != nil {
		t.Fatalf("conn killed: %v", err)
	}
	w.pump()
	if resetCode != ErrCodeProtocol {
		t.Fatalf("stream reset code = %v", resetCode)
	}
}

func TestWindowUpdateZeroOnConnIsFatal(t *testing.T) {
	w := newWirePair(t, Config{}, Config{})
	w.start()
	if err := w.server.Feed(AppendWindowUpdate(nil, 0, 0)); err == nil {
		t.Fatal("zero connection window update accepted")
	}
}

func TestConnWindowOverflowIsFatal(t *testing.T) {
	w := newWirePair(t, Config{}, Config{})
	w.start()
	if err := w.server.Feed(AppendWindowUpdate(nil, 0, maxWindow)); err == nil {
		t.Fatal("connection window overflow accepted")
	}
}

func TestInterleavedContinuationIsFatal(t *testing.T) {
	w := newWirePair(t, Config{}, Config{})
	w.start()
	// HEADERS without END_HEADERS followed by a PING.
	raw := AppendHeaders(nil, 1, []byte{0x82}, false, false, PriorityParam{})
	raw = AppendPing(raw, false, [8]byte{})
	if err := w.server.Feed(raw); err == nil {
		t.Fatal("interleaved CONTINUATION sequence accepted")
	}
}

func TestUnexpectedContinuationIsFatal(t *testing.T) {
	w := newWirePair(t, Config{}, Config{})
	w.start()
	if err := w.server.Feed(AppendContinuation(nil, 1, []byte{0x82}, true)); err == nil {
		t.Fatal("stray CONTINUATION accepted")
	}
}

func TestEvenStreamIDFromClientIsFatal(t *testing.T) {
	w := newWirePair(t, Config{}, Config{})
	w.start()
	if err := w.server.Feed(AppendHeaders(nil, 2, []byte{0x82}, true, true, PriorityParam{})); err == nil {
		t.Fatal("even client stream id accepted")
	}
}

func TestNonMonotonicStreamIDIsFatal(t *testing.T) {
	w := newWirePair(t, Config{}, Config{})
	w.server.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) {},
	})
	w.start()
	_, _ = w.client.OpenStream(getFields("/a"), true, PriorityParam{})
	_, _ = w.client.OpenStream(getFields("/b"), true, PriorityParam{})
	w.pump()
	// Handcraft HEADERS for stream 1 (already seen, never reset) — the
	// id is not monotonically increasing and the stream isn't closed.
	// Stream 1 is open on the server (no response yet), so this is
	// actually trailers; use stream id 7 then 3 instead.
	raw := AppendHeaders(nil, 7, []byte{0x82, 0x84, 0x86, 0x87}, true, true, PriorityParam{})
	if err := w.server.Feed(raw); err != nil {
		t.Fatalf("stream 7: %v", err)
	}
	if err := w.server.Feed(AppendHeaders(nil, 5, []byte{0x82, 0x84, 0x86, 0x87}, true, true, PriorityParam{})); err == nil {
		t.Fatal("non-monotonic new stream id accepted")
	}
}

func TestSettingsInvalidValuesFatal(t *testing.T) {
	cases := map[string][]Setting{
		"push=2":          {{SettingEnablePush, 2}},
		"window overflow": {{SettingInitialWindowSize, 1 << 31}},
		"frame too small": {{SettingMaxFrameSize, 100}},
		"frame too big":   {{SettingMaxFrameSize, 1 << 30}},
	}
	for name, settings := range cases {
		w := newWirePair(t, Config{}, Config{})
		w.start()
		if err := w.server.Feed(AppendSettings(nil, settings)); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestUnknownSettingIgnored(t *testing.T) {
	w := newWirePair(t, Config{}, Config{})
	w.start()
	if err := w.server.Feed(AppendSettings(nil, []Setting{{SettingID(0x99), 1234}})); err != nil {
		t.Fatalf("unknown setting killed the connection: %v", err)
	}
}

func TestRSTStreamOnIdleIsFatal(t *testing.T) {
	w := newWirePair(t, Config{}, Config{})
	w.start()
	if err := w.server.Feed(AppendRSTStream(nil, 9, ErrCodeCancel)); err == nil {
		t.Fatal("RST on idle stream accepted")
	}
}

func TestRSTStreamOnClosedIsIgnored(t *testing.T) {
	w := newWirePair(t, Config{}, Config{})
	w.server.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) {
			_ = s.SendHeaders([]HeaderField{{Name: ":status", Value: "200"}}, true)
		},
	})
	w.start()
	s, _ := w.client.OpenStream(getFields("/done"), true, PriorityParam{})
	w.pump()
	if err := w.server.Feed(AppendRSTStream(nil, s.ID(), ErrCodeCancel)); err != nil {
		t.Fatalf("late RST killed the connection: %v", err)
	}
}

func TestTrailersDelivered(t *testing.T) {
	w := newWirePair(t, Config{}, Config{})
	var headerEvents int
	var lastFields []HeaderField
	w.server.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) {
			_ = s.SendHeaders([]HeaderField{{Name: ":status", Value: "200"}}, false)
			_, _ = s.SendData([]byte("body"), false)
			_ = s.SendHeaders([]HeaderField{{Name: "grpc-status", Value: "0"}}, true)
		},
	})
	w.client.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) {
			headerEvents++
			lastFields = fields
		},
	})
	w.start()
	_, _ = w.client.OpenStream(getFields("/trailers"), true, PriorityParam{})
	w.pump()
	if headerEvents != 2 {
		t.Fatalf("header events = %d, want 2 (headers + trailers)", headerEvents)
	}
	if fieldValue(lastFields, "grpc-status") != "0" {
		t.Fatalf("trailers = %+v", lastFields)
	}
}

func TestPriorityFrameUpdatesStream(t *testing.T) {
	w := newWirePair(t, Config{}, Config{})
	var srv *Stream
	w.server.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) { srv = s },
	})
	w.start()
	s, _ := w.client.OpenStream(getFields("/p"), true, PriorityParam{})
	w.pump()
	s.SendPriority(PriorityParam{StreamDep: 0, Weight: 255})
	w.pump()
	if srv.Priority().Weight != 255 {
		t.Fatalf("weight = %d", srv.Priority().Weight)
	}
}

func TestEmptyDataEndStream(t *testing.T) {
	w := newWirePair(t, Config{}, Config{})
	var closed bool
	w.server.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) {
			_ = s.SendHeaders([]HeaderField{{Name: ":status", Value: "204"}}, false)
			_, _ = s.SendData(nil, true) // bare END_STREAM
		},
	})
	w.client.SetHandlers(Handlers{
		OnStreamClosed: func(s *Stream) { closed = true },
	})
	w.start()
	_, _ = w.client.OpenStream(getFields("/empty"), true, PriorityParam{})
	w.pump()
	if !closed {
		t.Fatal("bare END_STREAM did not close the stream")
	}
}

func TestGoAwayDuringActiveStreamsDeliversData(t *testing.T) {
	w := newWirePair(t, Config{}, Config{})
	var got int
	w.server.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) {
			w.server.GoAway(ErrCodeNo, []byte("draining"))
			_ = s.SendHeaders([]HeaderField{{Name: ":status", Value: "200"}}, false)
			_, _ = s.SendData(make([]byte, 2000), true)
		},
	})
	w.client.SetHandlers(Handlers{
		OnStreamData: func(s *Stream, data []byte, endStream bool) { got += len(data) },
		OnGoAway:     func(uint32, ErrCode, []byte) {},
	})
	w.start()
	_, _ = w.client.OpenStream(getFields("/drain"), true, PriorityParam{})
	w.pump()
	if got != 2000 {
		t.Fatalf("in-flight stream data lost during GOAWAY: %d", got)
	}
}

func TestStreamStateTransitions(t *testing.T) {
	w := newWirePair(t, Config{}, Config{})
	var srv *Stream
	w.server.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) { srv = s },
	})
	w.start()
	s, _ := w.client.OpenStream(getFields("/st"), true, PriorityParam{})
	if s.State() != StreamHalfClosedLocal {
		t.Fatalf("client stream after END_STREAM request = %v", s.State())
	}
	w.pump()
	if srv.State() != StreamHalfClosedRemote {
		t.Fatalf("server stream = %v", srv.State())
	}
	_ = srv.SendHeaders([]HeaderField{{Name: ":status", Value: "200"}}, true)
	if srv.State() != StreamClosed {
		t.Fatalf("server stream after response = %v", srv.State())
	}
	w.pump()
	if s.State() != StreamClosed {
		t.Fatalf("client stream after response = %v", s.State())
	}
}

func TestSendOnClosedStreamErrors(t *testing.T) {
	w := newWirePair(t, Config{}, Config{})
	w.server.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) {
			_ = s.SendHeaders([]HeaderField{{Name: ":status", Value: "200"}}, true)
			if _, err := s.SendData([]byte("late"), false); err == nil {
				t.Error("SendData on closed stream succeeded")
			}
			if err := s.SendHeaders([]HeaderField{{Name: "x", Value: "y"}}, false); err == nil {
				t.Error("SendHeaders on closed stream succeeded")
			}
		},
	})
	w.start()
	_, _ = w.client.OpenStream(getFields("/closed"), true, PriorityParam{})
	w.pump()
}

func TestOpenStreamAfterFatalErrorFails(t *testing.T) {
	w := newWirePair(t, Config{}, Config{})
	w.start()
	// Kill the client with a malformed frame.
	_ = w.client.Feed(AppendData(nil, 0, []byte("x"), false, 0))
	if w.client.Err() == nil {
		t.Fatal("client survived DATA on stream 0")
	}
	if _, err := w.client.OpenStream(getFields("/x"), true, PriorityParam{}); err == nil {
		t.Fatal("OpenStream on failed connection succeeded")
	}
}

func TestHuffmanHeadersInterop(t *testing.T) {
	w := newWirePair(t, Config{HuffmanHeaders: true}, Config{})
	var gotPath string
	w.server.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) {
			gotPath = fieldValue(fields, ":path")
			_ = s.SendHeaders([]HeaderField{{Name: ":status", Value: "200"}}, true)
		},
	})
	w.start()
	_, _ = w.client.OpenStream(getFields("/huffman/coded/path"), true, PriorityParam{})
	w.pump()
	if gotPath != "/huffman/coded/path" {
		t.Fatalf("path = %q", gotPath)
	}
	if w.client.Err() != nil || w.server.Err() != nil {
		t.Fatalf("errors: %v / %v", w.client.Err(), w.server.Err())
	}
}
