// Package h2 implements HTTP/2 (RFC 7540) as a sans-IO state machine:
// frame codec, HPACK integration, stream lifecycle, flow control, priority
// bookkeeping, server push and connection management. Bytes in via Feed,
// bytes out via the output callback — no goroutines, no sockets — so the
// same protocol core drives both the event-driven network simulation
// (package endpoint) and the blocking net.Conn transport (package h2sync).
//
// The paper's attack manipulates this layer from below: multiplexing is
// interleaved DATA frames from concurrent streams, and the client's
// RST_STREAM "clean slate" (§IV-D) is a stream reset that flushes the
// server's per-stream send queues.
package h2

import "fmt"

// ErrCode is an RFC 7540 §7 error code.
type ErrCode uint32

// RFC 7540 error codes.
const (
	ErrCodeNo                 ErrCode = 0x0
	ErrCodeProtocol           ErrCode = 0x1
	ErrCodeInternal           ErrCode = 0x2
	ErrCodeFlowControl        ErrCode = 0x3
	ErrCodeSettingsTimeout    ErrCode = 0x4
	ErrCodeStreamClosed       ErrCode = 0x5
	ErrCodeFrameSize          ErrCode = 0x6
	ErrCodeRefusedStream      ErrCode = 0x7
	ErrCodeCancel             ErrCode = 0x8
	ErrCodeCompression        ErrCode = 0x9
	ErrCodeConnect            ErrCode = 0xa
	ErrCodeEnhanceYourCalm    ErrCode = 0xb
	ErrCodeInadequateSecurity ErrCode = 0xc
	ErrCodeHTTP11Required     ErrCode = 0xd
)

// String names the error code as in RFC 7540.
func (c ErrCode) String() string {
	switch c {
	case ErrCodeNo:
		return "NO_ERROR"
	case ErrCodeProtocol:
		return "PROTOCOL_ERROR"
	case ErrCodeInternal:
		return "INTERNAL_ERROR"
	case ErrCodeFlowControl:
		return "FLOW_CONTROL_ERROR"
	case ErrCodeSettingsTimeout:
		return "SETTINGS_TIMEOUT"
	case ErrCodeStreamClosed:
		return "STREAM_CLOSED"
	case ErrCodeFrameSize:
		return "FRAME_SIZE_ERROR"
	case ErrCodeRefusedStream:
		return "REFUSED_STREAM"
	case ErrCodeCancel:
		return "CANCEL"
	case ErrCodeCompression:
		return "COMPRESSION_ERROR"
	case ErrCodeConnect:
		return "CONNECT_ERROR"
	case ErrCodeEnhanceYourCalm:
		return "ENHANCE_YOUR_CALM"
	case ErrCodeInadequateSecurity:
		return "INADEQUATE_SECURITY"
	case ErrCodeHTTP11Required:
		return "HTTP_1_1_REQUIRED"
	default:
		return fmt.Sprintf("ERR_CODE_%d", uint32(c))
	}
}

// ConnectionError is a fatal error that tears down the whole connection
// (RFC 7540 §5.4.1). Feed returns it after emitting a GOAWAY.
type ConnectionError struct {
	Code   ErrCode
	Reason string
}

// Error implements error.
func (e ConnectionError) Error() string {
	return fmt.Sprintf("h2: connection error %v: %s", e.Code, e.Reason)
}

// StreamError is an error scoped to one stream (RFC 7540 §5.4.2); the
// connection survives and the stream is reset.
type StreamError struct {
	StreamID uint32
	Code     ErrCode
	Reason   string
}

// Error implements error.
func (e StreamError) Error() string {
	return fmt.Sprintf("h2: stream %d error %v: %s", e.StreamID, e.Code, e.Reason)
}
