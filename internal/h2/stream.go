package h2

import (
	"fmt"

	"h2privacy/internal/trace"
)

// StreamState is the RFC 7540 §5.1 stream lifecycle state.
type StreamState int

// Stream states.
const (
	StreamIdle StreamState = iota + 1
	StreamReservedLocal
	StreamReservedRemote
	StreamOpen
	StreamHalfClosedLocal
	StreamHalfClosedRemote
	StreamClosed
)

// String names the state.
func (s StreamState) String() string {
	switch s {
	case StreamIdle:
		return "idle"
	case StreamReservedLocal:
		return "reserved-local"
	case StreamReservedRemote:
		return "reserved-remote"
	case StreamOpen:
		return "open"
	case StreamHalfClosedLocal:
		return "half-closed-local"
	case StreamHalfClosedRemote:
		return "half-closed-remote"
	case StreamClosed:
		return "closed"
	default:
		return "state?"
	}
}

// Stream is one HTTP/2 stream on a Conn. Streams are created by
// Conn.OpenStream (locally) or arrive via the OnStreamHeaders /
// OnPushPromise handlers (remotely).
type Stream struct {
	conn  *Conn
	id    uint32
	state StreamState
	prio  PriorityParam

	sendWindow int64 // how much DATA we may still send
	recvWindow int64 // how much DATA the peer may still send
	refused    bool  // over MaxConcurrentStreams: reset after HPACK decode
	orphan     bool  // closed/unknown stream: decode header blocks, deliver nothing

	// UserData is a free slot for the application's per-stream state
	// (e.g. the server's handler or the browser's pending fetch).
	UserData any
}

// ID returns the stream identifier.
func (s *Stream) ID() uint32 { return s.id }

// State returns the current lifecycle state.
func (s *Stream) State() StreamState { return s.state }

// Priority returns the most recent priority parameter seen for the stream.
func (s *Stream) Priority() PriorityParam { return s.prio }

// SendWindow reports how many DATA bytes flow control currently allows on
// this stream (the connection window binds separately).
func (s *Stream) SendWindow() int {
	w := s.sendWindow
	if cw := s.conn.sendWindow; cw < w {
		w = cw
	}
	if w < 0 {
		w = 0
	}
	return int(w)
}

// canSendData reports whether the state admits sending DATA/HEADERS.
func (s *Stream) canSendData() bool {
	return s.state == StreamOpen || s.state == StreamHalfClosedRemote
}

// SendHeaders sends a HEADERS block on the stream (response headers, or
// trailers when endStream is set). For a reserved (pushed) stream this is
// the promised response.
func (s *Stream) SendHeaders(fields []HeaderField, endStream bool) error {
	switch s.state {
	case StreamReservedLocal:
		s.state = StreamHalfClosedRemote
	case StreamOpen, StreamHalfClosedRemote:
	default:
		return fmt.Errorf("h2: SendHeaders on %v stream %d", s.state, s.id)
	}
	s.conn.sendHeaderBlock(s.id, fields, endStream, PriorityParam{})
	if endStream {
		s.localClose()
	}
	return nil
}

// SendData transmits as much of p as flow control and the peer's frame
// size allow, returning the number of bytes consumed. endStream is applied
// only when the final byte of p is sent. When n < len(p), the caller
// retries after OnWindowAvailable fires.
func (s *Stream) SendData(p []byte, endStream bool) (int, error) {
	if !s.canSendData() {
		return 0, fmt.Errorf("h2: SendData on %v stream %d", s.state, s.id)
	}
	if len(p) == 0 && endStream {
		s.conn.emitFrame(FrameData, s.id, func(dst []byte) []byte {
			return AppendData(dst, s.id, nil, true, s.conn.padFor(0))
		})
		s.localClose()
		return 0, nil
	}
	sent := 0
	for sent < len(p) {
		chunk := len(p) - sent
		pad := s.conn.padFor(chunk)
		// A padded frame carries 1 length byte + pad; the whole payload
		// must fit the peer's max frame size and both flow windows.
		overhead := 0
		if pad > 0 {
			overhead = 1 + pad
		}
		if max := s.conn.peerMaxFrameSize - overhead; chunk > max {
			chunk = max
		}
		if w := int(s.sendWindow) - overhead; chunk > w {
			chunk = w
		}
		if w := int(s.conn.sendWindow) - overhead; chunk > w {
			chunk = w
		}
		if chunk <= 0 {
			// Flow control has pinched off the stream: the sender has data
			// but neither window admits another byte.
			s.conn.ctStall.Inc()
			if c := s.conn; c.tr.Enabled() {
				c.tr.Emit(trace.LayerH2, "fc-stall",
					trace.Str("ep", c.traceName), trace.Num("stream", int64(s.id)),
					trace.Num("stream_wnd", s.sendWindow), trace.Num("conn_wnd", c.sendWindow))
			}
			break
		}
		es := endStream && sent+chunk == len(p)
		data := p[sent : sent+chunk]
		s.conn.emitFrame(FrameData, s.id, func(dst []byte) []byte {
			return AppendData(dst, s.id, data, es, pad)
		})
		consumed := int64(chunk + overhead)
		s.sendWindow -= consumed
		s.conn.sendWindow -= consumed
		if c := s.conn; c.ck.Enabled() {
			c.ck.H2DataSent(c.ckName, s.id, int(consumed))
		}
		s.conn.stats.DataBytesSent += int64(chunk)
		sent += chunk
		if es {
			s.localClose()
		}
	}
	return sent, nil
}

// Reset aborts the stream with RST_STREAM. The paper's client uses this
// (code CANCEL) to force the server to flush its queue (§IV-D).
func (s *Stream) Reset(code ErrCode) {
	if s.state == StreamClosed || s.state == StreamIdle {
		return
	}
	s.conn.emitFrame(FrameRSTStream, s.id, func(dst []byte) []byte {
		return AppendRSTStream(dst, s.id, code)
	})
	s.conn.closeStream(s, code, false)
}

// SendPriority emits a PRIORITY frame re-prioritizing this stream (the
// §VII randomized-priority defense uses it).
func (s *Stream) SendPriority(prio PriorityParam) {
	s.prio = prio
	s.conn.emitFrame(FramePriority, s.id, func(dst []byte) []byte {
		return AppendPriority(dst, s.id, prio)
	})
}

// localClose records that our side sent END_STREAM.
func (s *Stream) localClose() {
	switch s.state {
	case StreamOpen:
		s.state = StreamHalfClosedLocal
	case StreamHalfClosedRemote:
		s.conn.closeStream(s, ErrCodeNo, false)
	}
}

// remoteClose records that the peer sent END_STREAM.
func (s *Stream) remoteClose() {
	switch s.state {
	case StreamOpen:
		s.state = StreamHalfClosedRemote
	case StreamHalfClosedLocal:
		s.conn.closeStream(s, ErrCodeNo, false)
	}
}
