package h2

import (
	"encoding/binary"
	"fmt"
)

// Frame is one parsed frame: the header plus the decoded, type-specific
// payload fields (a tagged union; only the fields for Header.Type are
// meaningful).
type Frame struct {
	Header FrameHeader

	// Data is the DATA payload (padding stripped), the HEADERS /
	// PUSH_PROMISE / CONTINUATION header-block fragment, or GOAWAY debug
	// data.
	Data []byte
	// PadLength is the stripped padding length (DATA/HEADERS).
	PadLength int
	// Priority is the dependency block on HEADERS (FlagPriority) and
	// PRIORITY frames.
	Priority PriorityParam
	// ErrCode is set on RST_STREAM and GOAWAY.
	ErrCode ErrCode
	// Settings is set on non-ACK SETTINGS.
	Settings []Setting
	// LastStreamID is set on GOAWAY.
	LastStreamID uint32
	// WindowIncrement is set on WINDOW_UPDATE.
	WindowIncrement uint32
	// PingData is set on PING.
	PingData [8]byte
	// PromisedStreamID is set on PUSH_PROMISE.
	PromisedStreamID uint32
}

// ParseFrame decodes exactly one complete frame from b (as produced by a
// Conn's per-frame output callback). Instrumentation — the simulated
// server's ground-truth transmission log — uses it to attribute DATA
// payload bytes to streams.
func ParseFrame(b []byte) (*Frame, error) {
	if len(b) < FrameHeaderSize {
		return nil, ConnectionError{ErrCodeFrameSize, "short frame"}
	}
	hdr := parseFrameHeader(b)
	if len(b) != FrameHeaderSize+hdr.Length {
		return nil, ConnectionError{ErrCodeFrameSize, fmt.Sprintf("frame length %d does not match buffer %d", hdr.Length, len(b)-FrameHeaderSize)}
	}
	return decodePayload(hdr, b[FrameHeaderSize:])
}

// FrameReader incrementally parses a frame stream (after the connection
// preface). Feed bytes in any fragmentation; Next pops parsed frames.
// Not reentrant: do not call Feed or Next from inside a frame callback
// that is still holding a previous frame's payload.
type FrameReader struct {
	buf []byte // transport bytes; [off:] is still unparsed
	off int    // parsed prefix of buf, reclaimed once drained
	// MaxFrameSize is the largest payload this endpoint advertised
	// (frames above it are a FRAME_SIZE_ERROR).
	MaxFrameSize int
}

// NewFrameReader returns a reader enforcing the default max frame size.
func NewFrameReader() *FrameReader {
	return &FrameReader{MaxFrameSize: DefaultMaxFrameSize}
}

// Feed appends transport bytes.
func (r *FrameReader) Feed(b []byte) {
	// Reclaim the parsed prefix first: reslicing forward instead would
	// strand the consumed capacity and reallocate every buffer cycle.
	if r.off > 0 {
		n := copy(r.buf, r.buf[r.off:])
		r.buf = r.buf[:n]
		r.off = 0
	}
	r.buf = append(r.buf, b...)
}

// Buffered reports unparsed bytes held.
func (r *FrameReader) Buffered() int { return len(r.buf) - r.off }

// Next returns the next complete frame, nil when more bytes are needed, or
// an error that must be treated as a connection error. The frame is freshly
// allocated and the caller owns it.
func (r *FrameReader) Next() (*Frame, error) {
	f := &Frame{}
	ok, err := r.nextInto(f)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	return f, nil
}

// nextInto parses the next complete frame into f, reusing its capacity, and
// reports whether one was available. Conn.Feed drives it with a scratch
// frame so steady-state parsing allocates nothing; the frame (and its
// payload slices into the read buffer) is valid until the next nextInto or
// Feed call.
func (r *FrameReader) nextInto(f *Frame) (bool, error) {
	if r.off > 0 && r.off == len(r.buf) {
		r.buf = r.buf[:0]
		r.off = 0
	}
	rest := r.buf[r.off:]
	if len(rest) < FrameHeaderSize {
		return false, nil
	}
	hdr := parseFrameHeader(rest)
	if hdr.Length > r.MaxFrameSize {
		return false, ConnectionError{ErrCodeFrameSize, fmt.Sprintf("frame length %d exceeds %d", hdr.Length, r.MaxFrameSize)}
	}
	if len(rest) < FrameHeaderSize+hdr.Length {
		return false, nil
	}
	payload := rest[FrameHeaderSize : FrameHeaderSize+hdr.Length]
	// Consume the frame bytes even on error: the caller will tear the
	// connection down anyway.
	r.off += FrameHeaderSize + hdr.Length
	err := decodePayloadInto(f, hdr, payload)
	return true, err
}

func decodePayload(hdr FrameHeader, payload []byte) (*Frame, error) {
	f := &Frame{}
	if err := decodePayloadInto(f, hdr, payload); err != nil {
		return nil, err
	}
	return f, nil
}

// decodePayloadInto decodes into f, reusing f.Settings' capacity. Payload
// slices (Data) alias the input buffer; callers that outlive it must copy.
func decodePayloadInto(f *Frame, hdr FrameHeader, payload []byte) error {
	*f = Frame{Header: hdr, Settings: f.Settings[:0]}
	switch hdr.Type {
	case FrameData:
		if hdr.StreamID == 0 {
			return ConnectionError{ErrCodeProtocol, "DATA on stream 0"}
		}
		data, pad, err := stripPadding(hdr, payload)
		if err != nil {
			return err
		}
		f.Data, f.PadLength = data, pad

	case FrameHeaders:
		if hdr.StreamID == 0 {
			return ConnectionError{ErrCodeProtocol, "HEADERS on stream 0"}
		}
		data, pad, err := stripPadding(hdr, payload)
		if err != nil {
			return err
		}
		f.PadLength = pad
		if hdr.Flags.Has(FlagPriority) {
			if len(data) < 5 {
				return ConnectionError{ErrCodeFrameSize, "HEADERS priority block truncated"}
			}
			f.Priority = parsePriority(data)
			data = data[5:]
		}
		f.Data = data

	case FramePriority:
		if hdr.StreamID == 0 {
			return ConnectionError{ErrCodeProtocol, "PRIORITY on stream 0"}
		}
		if len(payload) != 5 {
			return StreamError{hdr.StreamID, ErrCodeFrameSize, "PRIORITY length != 5"}
		}
		f.Priority = parsePriority(payload)

	case FrameRSTStream:
		if hdr.StreamID == 0 {
			return ConnectionError{ErrCodeProtocol, "RST_STREAM on stream 0"}
		}
		if len(payload) != 4 {
			return ConnectionError{ErrCodeFrameSize, "RST_STREAM length != 4"}
		}
		f.ErrCode = ErrCode(binary.BigEndian.Uint32(payload))

	case FrameSettings:
		if hdr.StreamID != 0 {
			return ConnectionError{ErrCodeProtocol, "SETTINGS on non-zero stream"}
		}
		if hdr.Flags.Has(FlagAck) {
			if len(payload) != 0 {
				return ConnectionError{ErrCodeFrameSize, "SETTINGS ACK with payload"}
			}
			return nil
		}
		if len(payload)%6 != 0 {
			return ConnectionError{ErrCodeFrameSize, "SETTINGS length not multiple of 6"}
		}
		for i := 0; i < len(payload); i += 6 {
			f.Settings = append(f.Settings, Setting{
				ID:  SettingID(binary.BigEndian.Uint16(payload[i : i+2])),
				Val: binary.BigEndian.Uint32(payload[i+2 : i+6]),
			})
		}

	case FramePushPromise:
		if hdr.StreamID == 0 {
			return ConnectionError{ErrCodeProtocol, "PUSH_PROMISE on stream 0"}
		}
		data, pad, err := stripPadding(hdr, payload)
		if err != nil {
			return err
		}
		f.PadLength = pad
		if len(data) < 4 {
			return ConnectionError{ErrCodeFrameSize, "PUSH_PROMISE truncated"}
		}
		f.PromisedStreamID = binary.BigEndian.Uint32(data) & 0x7fffffff
		f.Data = data[4:]

	case FramePing:
		if hdr.StreamID != 0 {
			return ConnectionError{ErrCodeProtocol, "PING on non-zero stream"}
		}
		if len(payload) != 8 {
			return ConnectionError{ErrCodeFrameSize, "PING length != 8"}
		}
		copy(f.PingData[:], payload)

	case FrameGoAway:
		if hdr.StreamID != 0 {
			return ConnectionError{ErrCodeProtocol, "GOAWAY on non-zero stream"}
		}
		if len(payload) < 8 {
			return ConnectionError{ErrCodeFrameSize, "GOAWAY truncated"}
		}
		f.LastStreamID = binary.BigEndian.Uint32(payload) & 0x7fffffff
		f.ErrCode = ErrCode(binary.BigEndian.Uint32(payload[4:8]))
		f.Data = payload[8:]

	case FrameWindowUpdate:
		if len(payload) != 4 {
			return ConnectionError{ErrCodeFrameSize, "WINDOW_UPDATE length != 4"}
		}
		f.WindowIncrement = binary.BigEndian.Uint32(payload) & 0x7fffffff

	case FrameContinuation:
		if hdr.StreamID == 0 {
			return ConnectionError{ErrCodeProtocol, "CONTINUATION on stream 0"}
		}
		f.Data = payload

	default:
		// Unknown frame types are ignored by the caller (§4.1); parse
		// succeeds with just the header.
	}
	return nil
}

func parsePriority(b []byte) PriorityParam {
	dep := binary.BigEndian.Uint32(b[:4])
	return PriorityParam{
		Exclusive: dep&0x80000000 != 0,
		StreamDep: dep & 0x7fffffff,
		Weight:    b[4],
	}
}

func stripPadding(hdr FrameHeader, payload []byte) ([]byte, int, error) {
	if !hdr.Flags.Has(FlagPadded) {
		return payload, 0, nil
	}
	if len(payload) < 1 {
		return nil, 0, ConnectionError{ErrCodeFrameSize, "padded frame with empty payload"}
	}
	pad := int(payload[0])
	body := payload[1:]
	if pad > len(body) {
		return nil, 0, ConnectionError{ErrCodeProtocol, "padding exceeds payload"}
	}
	return body[:len(body)-pad], pad, nil
}

// --- Frame writers. Each returns dst with exactly one frame appended. ---

// AppendData writes a DATA frame; pad adds that many padding bytes
// (emitting the PADDED flag when > 0) — the size-obfuscation defense knob.
func AppendData(dst []byte, streamID uint32, data []byte, endStream bool, pad int) []byte {
	var flags Flags
	if endStream {
		flags |= FlagEndStream
	}
	length := len(data)
	if pad > 0 {
		if pad > 255 {
			pad = 255
		}
		flags |= FlagPadded
		length += 1 + pad
	}
	dst = appendFrameHeader(dst, length, FrameData, flags, streamID)
	if pad > 0 {
		dst = append(dst, byte(pad))
	}
	dst = append(dst, data...)
	if pad > 0 {
		dst = append(dst, zeroPad[:pad]...)
	}
	return dst
}

// zeroPad supplies DATA padding bytes (pad is capped at 255) without a
// per-frame allocation.
var zeroPad [255]byte

// AppendHeaders writes a HEADERS frame carrying a (complete) header-block
// fragment. Callers needing CONTINUATION splitting use appendHeaderBlock.
func AppendHeaders(dst []byte, streamID uint32, fragment []byte, endStream, endHeaders bool, prio PriorityParam) []byte {
	var flags Flags
	if endStream {
		flags |= FlagEndStream
	}
	if endHeaders {
		flags |= FlagEndHeaders
	}
	length := len(fragment)
	if !prio.IsZero() {
		flags |= FlagPriority
		length += 5
	}
	dst = appendFrameHeader(dst, length, FrameHeaders, flags, streamID)
	if !prio.IsZero() {
		dst = appendPriorityParam(dst, prio)
	}
	return append(dst, fragment...)
}

// AppendPriority writes a PRIORITY frame.
func AppendPriority(dst []byte, streamID uint32, prio PriorityParam) []byte {
	dst = appendFrameHeader(dst, 5, FramePriority, 0, streamID)
	return appendPriorityParam(dst, prio)
}

func appendPriorityParam(dst []byte, prio PriorityParam) []byte {
	dep := prio.StreamDep & 0x7fffffff
	if prio.Exclusive {
		dep |= 0x80000000
	}
	dst = binary.BigEndian.AppendUint32(dst, dep)
	return append(dst, prio.Weight)
}

// AppendRSTStream writes a RST_STREAM frame.
func AppendRSTStream(dst []byte, streamID uint32, code ErrCode) []byte {
	dst = appendFrameHeader(dst, 4, FrameRSTStream, 0, streamID)
	return binary.BigEndian.AppendUint32(dst, uint32(code))
}

// AppendSettings writes a SETTINGS frame.
func AppendSettings(dst []byte, settings []Setting) []byte {
	dst = appendFrameHeader(dst, 6*len(settings), FrameSettings, 0, 0)
	for _, s := range settings {
		dst = binary.BigEndian.AppendUint16(dst, uint16(s.ID))
		dst = binary.BigEndian.AppendUint32(dst, s.Val)
	}
	return dst
}

// AppendSettingsAck writes a SETTINGS ACK.
func AppendSettingsAck(dst []byte) []byte {
	return appendFrameHeader(dst, 0, FrameSettings, FlagAck, 0)
}

// AppendPushPromise writes a PUSH_PROMISE frame.
func AppendPushPromise(dst []byte, streamID, promisedID uint32, fragment []byte, endHeaders bool) []byte {
	var flags Flags
	if endHeaders {
		flags |= FlagEndHeaders
	}
	dst = appendFrameHeader(dst, 4+len(fragment), FramePushPromise, flags, streamID)
	dst = binary.BigEndian.AppendUint32(dst, promisedID&0x7fffffff)
	return append(dst, fragment...)
}

// AppendPing writes a PING frame.
func AppendPing(dst []byte, ack bool, data [8]byte) []byte {
	var flags Flags
	if ack {
		flags |= FlagAck
	}
	dst = appendFrameHeader(dst, 8, FramePing, flags, 0)
	return append(dst, data[:]...)
}

// AppendGoAway writes a GOAWAY frame.
func AppendGoAway(dst []byte, lastStreamID uint32, code ErrCode, debug []byte) []byte {
	dst = appendFrameHeader(dst, 8+len(debug), FrameGoAway, 0, 0)
	dst = binary.BigEndian.AppendUint32(dst, lastStreamID&0x7fffffff)
	dst = binary.BigEndian.AppendUint32(dst, uint32(code))
	return append(dst, debug...)
}

// AppendWindowUpdate writes a WINDOW_UPDATE frame (streamID 0 = connection).
func AppendWindowUpdate(dst []byte, streamID uint32, increment uint32) []byte {
	dst = appendFrameHeader(dst, 4, FrameWindowUpdate, 0, streamID)
	return binary.BigEndian.AppendUint32(dst, increment&0x7fffffff)
}

// AppendContinuation writes a CONTINUATION frame.
func AppendContinuation(dst []byte, streamID uint32, fragment []byte, endHeaders bool) []byte {
	var flags Flags
	if endHeaders {
		flags |= FlagEndHeaders
	}
	dst = appendFrameHeader(dst, len(fragment), FrameContinuation, flags, streamID)
	return append(dst, fragment...)
}
