package h2

import (
	"bytes"
	"testing"

	"h2privacy/internal/check"
	"h2privacy/internal/hpack"
)

// harvestFrames runs an in-process client/server exchange — with every h2
// invariant checker armed, so the corpus is known-legal traffic — and
// returns each emitted frame's wire bytes. Native fuzz targets seed their
// corpus from it: real HEADERS with HPACK-compressed fields, DATA with
// padding, SETTINGS, WINDOW_UPDATE, RST_STREAM, PUSH_PROMISE.
func harvestFrames(tb testing.TB) [][]byte {
	tb.Helper()
	rec := check.NewRecorder()
	ck := check.New(1, 0, rec)
	var frames [][]byte
	var toServer, toClient [][]byte
	client, err := NewConn(true, Config{Check: ck, TraceName: "client", EnablePush: true},
		func(b []byte) {
			cp := append([]byte(nil), b...) // b is per-frame scratch
			frames = append(frames, cp)
			toServer = append(toServer, cp)
		})
	if err != nil {
		tb.Fatal(err)
	}
	server, err := NewConn(false, Config{Check: ck, TraceName: "server", PadData: func(int) int { return 16 }},
		func(b []byte) {
			cp := append([]byte(nil), b...) // b is per-frame scratch
			frames = append(frames, cp)
			toClient = append(toClient, cp)
		})
	if err != nil {
		tb.Fatal(err)
	}
	pump := func() {
		for len(toServer) > 0 || len(toClient) > 0 {
			ts, tc := toServer, toClient
			toServer, toClient = nil, nil
			for _, b := range ts {
				_ = server.Feed(b)
			}
			for _, b := range tc {
				_ = client.Feed(b)
			}
		}
	}
	server.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) {
			_ = s.SendHeaders([]HeaderField{{Name: ":status", Value: "200"}}, false)
			_, _ = s.SendData(make([]byte, 3000), true)
		},
	})
	client.SetHandlers(Handlers{})
	client.Start()
	server.Start()
	pump()
	for _, path := range []string{"/quiz", "/static/emblem-green.png"} {
		s, err := client.OpenStream(getFields(path), true, PriorityParam{})
		if err != nil {
			tb.Fatal(err)
		}
		pump()
		_ = s
	}
	// One reset cycle so RST_STREAM frames land in the corpus.
	if s, err := client.OpenStream(getFields("/reset-me"), true, PriorityParam{}); err == nil {
		s.Reset(ErrCodeCancel)
		pump()
	}
	if rec.Total() != 0 {
		tb.Fatalf("harvest traffic violated invariants:\n%s", rec.Report())
	}
	if len(frames) == 0 {
		tb.Fatal("harvested no frames")
	}
	return frames
}

// FuzzConnFeed feeds arbitrary byte chunks to a started server
// connection: it must never panic, and a connection error must be sticky.
// The corpus seeds are real frames harvested from a check-armed exchange.
func FuzzConnFeed(f *testing.F) {
	for _, fr := range harvestFrames(f) {
		f.Add(fr)
	}
	f.Add([]byte(ClientPreface))
	f.Fuzz(func(t *testing.T, data []byte) {
		srv, err := NewConn(false, Config{}, func([]byte) {})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		if err := srv.Feed([]byte(ClientPreface)); err != nil {
			t.Fatal(err)
		}
		// Split the input into two chunks at a data-derived point so the
		// fuzzer also explores mid-frame boundaries.
		cut := 0
		if len(data) > 0 {
			cut = int(data[0]) % (len(data) + 1)
		}
		failed := srv.Feed(data[:cut]) != nil
		err = srv.Feed(data[cut:])
		if failed && err == nil {
			t.Fatal("connection error was not sticky")
		}
	})
}

// FuzzHpackRoundTrip decodes arbitrary bytes as an HPACK header block;
// when they decode, the fields must survive an encode→decode round trip
// exactly (name, value and sensitivity).
func FuzzHpackRoundTrip(f *testing.F) {
	// Seed with real header blocks: encode typical request/response field
	// sets at a few table sizes.
	enc := hpack.NewEncoder(hpack.DefaultDynamicTableSize)
	for _, path := range []string{"/", "/quiz", "/static/emblem-red.png"} {
		var block []byte
		for _, hf := range getFields(path) {
			block = enc.Encode(nil, []hpack.HeaderField{{Name: hf.Name, Value: hf.Value}})
			f.Add(block)
		}
	}
	f.Add(enc.Encode(nil, []hpack.HeaderField{
		{Name: ":status", Value: "200"},
		{Name: "content-type", Value: "text/html"},
		{Name: "set-cookie", Value: "s=1", Sensitive: true},
	}))
	f.Fuzz(func(t *testing.T, block []byte) {
		dec := hpack.NewDecoder(hpack.DefaultDynamicTableSize)
		fields, err := dec.Decode(block)
		if err != nil {
			return // invalid blocks are fine; they just must not panic
		}
		enc2 := hpack.NewEncoder(hpack.DefaultDynamicTableSize)
		re := enc2.Encode(nil, fields)
		dec2 := hpack.NewDecoder(hpack.DefaultDynamicTableSize)
		fields2, err := dec2.Decode(re)
		if err != nil {
			t.Fatalf("re-encoded block failed to decode: %v", err)
		}
		if len(fields) != len(fields2) {
			t.Fatalf("round trip changed field count: %d -> %d", len(fields), len(fields2))
		}
		for i := range fields {
			if fields[i].Name != fields2[i].Name || fields[i].Value != fields2[i].Value ||
				fields[i].Sensitive != fields2[i].Sensitive {
				t.Fatalf("field %d changed: %+v -> %+v", i, fields[i], fields2[i])
			}
		}
	})
}

// TestHarvestedCorpusParses pins the harvest helper itself: every
// harvested chunk must be a parseable frame sequence.
func TestHarvestedCorpusParses(t *testing.T) {
	frames := harvestFrames(t)
	r := NewFrameReader()
	var buf bytes.Buffer
	for _, fr := range frames {
		buf.Write(fr)
	}
	// The client's first emission leads with the connection preface, which
	// is not a frame.
	stream := bytes.TrimPrefix(buf.Bytes(), []byte(ClientPreface))
	r.Feed(stream)
	n := 0
	for {
		fr, err := r.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", n, err)
		}
		if fr == nil {
			break
		}
		n++
	}
	if n < 8 {
		t.Fatalf("harvested only %d frames", n)
	}
	t.Logf("harvested %d frames in %d chunks", n, len(frames))
}
