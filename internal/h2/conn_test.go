package h2

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// wirePair connects two Conns back-to-back through byte queues that the
// test pumps explicitly (so in-flight bytes can be inspected or withheld).
type wirePair struct {
	t              *testing.T
	client, server *Conn
	toServer       [][]byte
	toClient       [][]byte
	// sniffClient, when set, observes each server→client chunk during pump.
	sniffClient func([]byte)
}

func newWirePair(t *testing.T, clientCfg, serverCfg Config) *wirePair {
	t.Helper()
	w := &wirePair{t: t}
	var err error
	// The emitted slice is scratch the Conn reuses per frame; queueing it
	// for a later pump means copying, like the real transports do.
	w.client, err = NewConn(true, clientCfg, func(b []byte) { w.toServer = append(w.toServer, append([]byte(nil), b...)) })
	if err != nil {
		t.Fatal(err)
	}
	w.server, err = NewConn(false, serverCfg, func(b []byte) { w.toClient = append(w.toClient, append([]byte(nil), b...)) })
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// pump delivers queued bytes in both directions until quiescent.
func (w *wirePair) pump() {
	w.t.Helper()
	for len(w.toServer) > 0 || len(w.toClient) > 0 {
		ts, tc := w.toServer, w.toClient
		w.toServer, w.toClient = nil, nil
		for _, b := range ts {
			if err := w.server.Feed(b); err != nil {
				w.t.Logf("server Feed: %v", err)
			}
		}
		for _, b := range tc {
			if w.sniffClient != nil {
				w.sniffClient(b)
			}
			if err := w.client.Feed(b); err != nil {
				w.t.Logf("client Feed: %v", err)
			}
		}
	}
}

func (w *wirePair) start() {
	w.client.Start()
	w.server.Start()
	w.pump()
}

func getFields(path string) []HeaderField {
	return []HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: "www.isidewith.com"},
		{Name: ":path", Value: path},
	}
}

func fieldValue(fields []HeaderField, name string) string {
	for _, f := range fields {
		if f.Name == name {
			return f.Value
		}
	}
	return ""
}

func TestRequestResponse(t *testing.T) {
	w := newWirePair(t, Config{}, Config{})
	// Server: respond to any request with 200 + 5000-byte body.
	w.server.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) {
			if got := fieldValue(fields, ":path"); got != "/quiz" {
				t.Errorf(":path = %q", got)
			}
			if !endStream {
				t.Error("request should carry END_STREAM")
			}
			if err := s.SendHeaders([]HeaderField{{Name: ":status", Value: "200"}}, false); err != nil {
				t.Error(err)
			}
			if _, err := s.SendData(make([]byte, 5000), true); err != nil {
				t.Error(err)
			}
		},
	})
	var body bytes.Buffer
	var status string
	closed := false
	w.client.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) {
			status = fieldValue(fields, ":status")
		},
		OnStreamData: func(s *Stream, data []byte, endStream bool) {
			body.Write(data)
		},
		OnStreamClosed: func(s *Stream) { closed = true },
	})
	w.start()
	if _, err := w.client.OpenStream(getFields("/quiz"), true, PriorityParam{}); err != nil {
		t.Fatal(err)
	}
	w.pump()
	if status != "200" {
		t.Fatalf("status = %q", status)
	}
	if body.Len() != 5000 {
		t.Fatalf("body = %d bytes", body.Len())
	}
	if !closed {
		t.Fatal("stream never closed cleanly")
	}
	if w.client.Err() != nil || w.server.Err() != nil {
		t.Fatalf("errors: %v / %v", w.client.Err(), w.server.Err())
	}
}

func TestMultiplexedStreams(t *testing.T) {
	w := newWirePair(t, Config{}, Config{})
	w.server.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) {
			path := fieldValue(fields, ":path")
			_ = s.SendHeaders([]HeaderField{{Name: ":status", Value: "200"}}, false)
			_, _ = s.SendData([]byte(strings.Repeat(path[1:2], 100)), true)
		},
	})
	bodies := map[uint32]*bytes.Buffer{}
	w.client.SetHandlers(Handlers{
		OnStreamData: func(s *Stream, data []byte, endStream bool) {
			if bodies[s.ID()] == nil {
				bodies[s.ID()] = &bytes.Buffer{}
			}
			bodies[s.ID()].Write(data)
		},
	})
	w.start()
	s1, _ := w.client.OpenStream(getFields("/aaa"), true, PriorityParam{})
	s2, _ := w.client.OpenStream(getFields("/bbb"), true, PriorityParam{})
	s3, _ := w.client.OpenStream(getFields("/ccc"), true, PriorityParam{})
	w.pump()
	for s, want := range map[*Stream]string{s1: "a", s2: "b", s3: "c"} {
		got := bodies[s.ID()].String()
		if got != strings.Repeat(want, 100) {
			t.Fatalf("stream %d body = %.10q…", s.ID(), got)
		}
	}
	if s1.ID() != 1 || s2.ID() != 3 || s3.ID() != 5 {
		t.Fatalf("ids = %d,%d,%d", s1.ID(), s2.ID(), s3.ID())
	}
}

func TestFlowControlBlocksAndResumes(t *testing.T) {
	// Small client-advertised window: server must stall until updates.
	w := newWirePair(t, Config{InitialWindowSize: 1000}, Config{})
	var srvStream *Stream
	pending := make([]byte, 5000)
	w.server.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) {
			srvStream = s
			_ = s.SendHeaders([]HeaderField{{Name: ":status", Value: "200"}}, false)
			n, err := s.SendData(pending, true)
			if err != nil {
				t.Error(err)
			}
			if n >= len(pending) {
				t.Errorf("sent %d bytes despite 1000-byte window", n)
			}
			pending = pending[n:]
		},
		OnWindowAvailable: func(s *Stream) {
			if len(pending) == 0 || srvStream == nil {
				return
			}
			n, _ := srvStream.SendData(pending, true)
			pending = pending[n:]
		},
	})
	var got int
	w.client.SetHandlers(Handlers{
		OnStreamData: func(s *Stream, data []byte, endStream bool) { got += len(data) },
	})
	w.start()
	_, _ = w.client.OpenStream(getFields("/big"), true, PriorityParam{})
	w.pump()
	if got != 5000 {
		t.Fatalf("received %d bytes, want 5000", got)
	}
}

func TestSendWindowReporting(t *testing.T) {
	w := newWirePair(t, Config{InitialWindowSize: 2048}, Config{})
	var srv *Stream
	w.server.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) { srv = s },
	})
	w.start()
	_, _ = w.client.OpenStream(getFields("/w"), true, PriorityParam{})
	w.pump()
	if srv == nil {
		t.Fatal("no server stream")
	}
	if got := srv.SendWindow(); got != 2048 {
		t.Fatalf("SendWindow = %d, want 2048 (stream window binds)", got)
	}
}

func TestRSTStreamPropagates(t *testing.T) {
	w := newWirePair(t, Config{}, Config{})
	var srvReset bool
	var srvCode ErrCode
	w.server.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) {
			// Server holds the response; client will cancel.
		},
		OnStreamReset: func(s *Stream, code ErrCode, remote bool) {
			srvReset = true
			srvCode = code
			if !remote {
				t.Error("reset should be remote on server side")
			}
		},
	})
	w.start()
	s, _ := w.client.OpenStream(getFields("/cancel-me"), true, PriorityParam{})
	w.pump()
	s.Reset(ErrCodeCancel)
	w.pump()
	if !srvReset || srvCode != ErrCodeCancel {
		t.Fatalf("server reset=%t code=%v", srvReset, srvCode)
	}
	if w.client.Stream(s.ID()) != nil {
		t.Fatal("client still tracks the reset stream")
	}
	if w.server.Err() != nil {
		t.Fatalf("server poisoned by stream reset: %v", w.server.Err())
	}
}

func TestDataAfterResetIgnored(t *testing.T) {
	// Server starts sending, client resets mid-flight, late DATA must not
	// kill the connection.
	w := newWirePair(t, Config{}, Config{})
	var srv *Stream
	w.server.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) {
			srv = s
			_ = s.SendHeaders([]HeaderField{{Name: ":status", Value: "200"}}, false)
		},
		OnStreamReset: func(s *Stream, code ErrCode, remote bool) {},
	})
	w.client.SetHandlers(Handlers{})
	w.start()
	s, _ := w.client.OpenStream(getFields("/late"), true, PriorityParam{})
	w.pump()
	// Client resets; in-flight server DATA crosses the reset.
	s.Reset(ErrCodeCancel)
	if srv == nil {
		t.Fatal("no server stream")
	}
	_, _ = srv.SendData(make([]byte, 2000), false) // heads toward client
	w.pump()
	if w.client.Err() != nil {
		t.Fatalf("client poisoned by post-reset DATA: %v", w.client.Err())
	}
	if w.server.Err() != nil {
		t.Fatalf("server error: %v", w.server.Err())
	}
}

func TestServerPush(t *testing.T) {
	w := newWirePair(t, Config{EnablePush: true}, Config{})
	w.server.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) {
			promised, err := w.server.Push(s, getFields("/style.css"))
			if err != nil {
				t.Errorf("Push: %v", err)
				return
			}
			_ = s.SendHeaders([]HeaderField{{Name: ":status", Value: "200"}}, false)
			_, _ = s.SendData([]byte("main"), true)
			_ = promised.SendHeaders([]HeaderField{{Name: ":status", Value: "200"}}, false)
			_, _ = promised.SendData([]byte("pushed-css"), true)
		},
	})
	var pushedPath string
	pushBody := map[uint32]*bytes.Buffer{}
	w.client.SetHandlers(Handlers{
		OnPushPromise: func(parent, promised *Stream, fields []HeaderField) {
			pushedPath = fieldValue(fields, ":path")
			pushBody[promised.ID()] = &bytes.Buffer{}
		},
		OnStreamData: func(s *Stream, data []byte, endStream bool) {
			if b := pushBody[s.ID()]; b != nil {
				b.Write(data)
			}
		},
	})
	w.start()
	_, _ = w.client.OpenStream(getFields("/index.html"), true, PriorityParam{})
	w.pump()
	if pushedPath != "/style.css" {
		t.Fatalf("pushed path = %q", pushedPath)
	}
	if got := pushBody[2].String(); got != "pushed-css" {
		t.Fatalf("pushed body = %q", got)
	}
}

func TestPushRefusedWhenDisabled(t *testing.T) {
	w := newWirePair(t, Config{EnablePush: false}, Config{})
	var pushErr error
	w.server.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) {
			_, pushErr = w.server.Push(s, getFields("/sneaky.js"))
		},
	})
	w.start()
	_, _ = w.client.OpenStream(getFields("/"), true, PriorityParam{})
	w.pump()
	if pushErr == nil {
		t.Fatal("push succeeded despite peer disabling it")
	}
}

func TestPingRoundTrip(t *testing.T) {
	w := newWirePair(t, Config{}, Config{})
	var gotAck bool
	var gotData [8]byte
	w.client.SetHandlers(Handlers{
		OnPing: func(ack bool, data [8]byte) {
			if ack {
				gotAck = true
				gotData = data
			}
		},
	})
	w.start()
	data := [8]byte{1, 2, 3, 4, 5, 6, 7, 8}
	w.client.Ping(data)
	w.pump()
	if !gotAck || gotData != data {
		t.Fatalf("ack=%t data=%v", gotAck, gotData)
	}
}

func TestGoAwayStopsNewStreams(t *testing.T) {
	w := newWirePair(t, Config{}, Config{})
	var sawGoAway bool
	w.client.SetHandlers(Handlers{
		OnGoAway: func(last uint32, code ErrCode, debug []byte) { sawGoAway = true },
	})
	w.start()
	w.server.GoAway(ErrCodeNo, []byte("maintenance"))
	w.pump()
	if !sawGoAway {
		t.Fatal("client missed GOAWAY")
	}
	if _, err := w.client.OpenStream(getFields("/x"), true, PriorityParam{}); err == nil {
		t.Fatal("OpenStream succeeded after GOAWAY")
	}
}

func TestLargeHeadersUseContinuation(t *testing.T) {
	w := newWirePair(t, Config{}, Config{})
	big := strings.Repeat("v", 40_000)
	var got string
	w.server.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) {
			got = fieldValue(fields, "x-big")
		},
	})
	w.start()
	fields := append(getFields("/c"), HeaderField{Name: "x-big", Value: big})
	_, err := w.client.OpenStream(fields, true, PriorityParam{})
	if err != nil {
		t.Fatal(err)
	}
	w.pump()
	if got != big {
		t.Fatalf("large header corrupted: got %d bytes", len(got))
	}
	if w.server.Stats().FramesReceived[FrameContinuation] == 0 {
		t.Fatal("no CONTINUATION frames used")
	}
}

func TestMaxConcurrentStreamsRefusesExcess(t *testing.T) {
	w := newWirePair(t, Config{}, Config{MaxConcurrentStreams: 2})
	w.server.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) {
			// Hold streams open.
		},
	})
	var refused []uint32
	w.client.SetHandlers(Handlers{
		OnStreamReset: func(s *Stream, code ErrCode, remote bool) {
			if code == ErrCodeRefusedStream {
				refused = append(refused, s.ID())
			}
		},
	})
	w.start()
	for i := 0; i < 4; i++ {
		_, _ = w.client.OpenStream(getFields(fmt.Sprintf("/s%d", i)), true, PriorityParam{})
	}
	w.pump()
	if len(refused) != 2 {
		t.Fatalf("refused %v, want 2 streams refused", refused)
	}
}

func TestPaddingEndToEnd(t *testing.T) {
	w := newWirePair(t, Config{}, Config{PadData: func(n int) int { return 64 }})
	var frameSizes []int
	var got int
	w.server.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) {
			_ = s.SendHeaders([]HeaderField{{Name: ":status", Value: "200"}}, false)
			_, _ = s.SendData(make([]byte, 500), true)
		},
	})
	w.client.SetHandlers(Handlers{
		OnStreamData: func(s *Stream, data []byte, endStream bool) { got += len(data) },
	})
	w.sniffClient = func(b []byte) {
		if hdr := parseFrameHeader(b); hdr.Type == FrameData {
			frameSizes = append(frameSizes, hdr.Length)
		}
	}
	w.start()
	_, _ = w.client.OpenStream(getFields("/padded"), true, PriorityParam{})
	w.pump()
	if got != 500 {
		t.Fatalf("delivered %d bytes, want 500 (padding must be stripped)", got)
	}
	if len(frameSizes) != 1 || frameSizes[0] != 565 {
		t.Fatalf("DATA payload sizes = %v, want [565]", frameSizes)
	}
}

func TestBadPrefaceKillsConnection(t *testing.T) {
	server, err := NewConn(false, Config{}, func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Feed([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n")); err == nil {
		t.Fatal("bad preface accepted")
	}
	var ce ConnectionError
	if !errors.As(server.Err(), &ce) || ce.Code != ErrCodeProtocol {
		t.Fatalf("err = %v", server.Err())
	}
}

func TestDataOnIdleStreamIsConnError(t *testing.T) {
	w := newWirePair(t, Config{}, Config{})
	w.start()
	// Handcraft a DATA frame for a stream that was never opened.
	raw := AppendData(nil, 7, []byte("rogue"), false, 0)
	if err := w.server.Feed(raw); err == nil {
		t.Fatal("DATA on idle stream accepted")
	}
}

func TestSettingsApplied(t *testing.T) {
	w := newWirePair(t, Config{MaxFrameSize: 32768}, Config{})
	w.start()
	if w.server.peerMaxFrameSize != 32768 {
		t.Fatalf("server peerMaxFrameSize = %d", w.server.peerMaxFrameSize)
	}
	// SETTINGS must be ACKed.
	if w.client.Stats().FramesReceived[FrameSettings] < 2 { // server settings + ack
		t.Fatalf("client saw %d SETTINGS frames", w.client.Stats().FramesReceived[FrameSettings])
	}
}

func TestInitialWindowSizeAdjustsOpenStreams(t *testing.T) {
	w := newWirePair(t, Config{}, Config{})
	var srv *Stream
	w.server.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) { srv = s },
	})
	w.start()
	_, _ = w.client.OpenStream(getFields("/adjust"), true, PriorityParam{})
	w.pump()
	before := srv.sendWindow
	// Client re-announces a smaller initial window.
	raw := AppendSettings(nil, []Setting{{SettingInitialWindowSize, 1000}})
	if err := w.server.Feed(raw); err != nil {
		t.Fatal(err)
	}
	if srv.sendWindow != before-(DefaultInitialWindowSize-1000) {
		t.Fatalf("sendWindow = %d, want shrunk by delta", srv.sendWindow)
	}
}

func TestPriorityRecorded(t *testing.T) {
	w := newWirePair(t, Config{}, Config{})
	var srv *Stream
	w.server.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) { srv = s },
	})
	w.start()
	prio := PriorityParam{StreamDep: 0, Weight: 219} // Firefox "leader" weight
	_, _ = w.client.OpenStream(getFields("/p"), true, prio)
	w.pump()
	if srv.Priority() != prio {
		t.Fatalf("priority = %+v", srv.Priority())
	}
}

func TestFrameStatsCounted(t *testing.T) {
	w := newWirePair(t, Config{}, Config{})
	w.server.SetHandlers(Handlers{
		OnStreamHeaders: func(s *Stream, fields []HeaderField, endStream bool) {
			_ = s.SendHeaders([]HeaderField{{Name: ":status", Value: "200"}}, false)
			_, _ = s.SendData(make([]byte, 100), true)
		},
	})
	w.start()
	_, _ = w.client.OpenStream(getFields("/st"), true, PriorityParam{})
	w.pump()
	cs, ss := w.client.Stats(), w.server.Stats()
	if cs.FramesSent[FrameHeaders] != 1 || ss.FramesReceived[FrameHeaders] != 1 {
		t.Fatalf("HEADERS counts: sent=%d rcvd=%d", cs.FramesSent[FrameHeaders], ss.FramesReceived[FrameHeaders])
	}
	if ss.DataBytesSent != 100 || cs.DataBytesRcvd != 100 {
		t.Fatalf("data bytes: sent=%d rcvd=%d", ss.DataBytesSent, cs.DataBytesRcvd)
	}
}
