package h2

import (
	"bytes"
	"errors"
	"fmt"

	"h2privacy/internal/trace"
)

// Feed consumes transport bytes and dispatches complete frames to the
// application handlers. The returned error, when non-nil, is fatal: a
// GOAWAY has already been emitted and the connection is dead. Stream-level
// errors are handled internally (RST_STREAM) and do not surface here.
func (c *Conn) Feed(b []byte) error {
	if c.failed != nil {
		return c.failed
	}
	// Server side: swallow the client connection preface first.
	if len(c.prefacePending) > 0 {
		n := len(b)
		if n > len(c.prefacePending) {
			n = len(c.prefacePending)
		}
		if !bytes.Equal(b[:n], c.prefacePending[:n]) {
			return c.connError(ConnectionError{ErrCodeProtocol, "bad client preface"})
		}
		c.prefacePending = c.prefacePending[n:]
		b = b[n:]
		if len(b) == 0 {
			return nil
		}
	}
	c.reader.Feed(b)
	for {
		// Parse into the connection's scratch frame: zero allocations in
		// steady state. processFrame's handlers copy any payload they keep,
		// so reuse on the next iteration is safe.
		ok, err := c.reader.nextInto(&c.scratchFrame)
		if err != nil {
			var se StreamError
			if errors.As(err, &se) {
				c.resetStreamByID(se.StreamID, se.Code)
				continue
			}
			var ce ConnectionError
			if errors.As(err, &ce) {
				return c.connError(ce)
			}
			return c.connError(ConnectionError{ErrCodeProtocol, err.Error()})
		}
		if !ok {
			return nil
		}
		if err := c.processFrame(&c.scratchFrame); err != nil {
			var ce ConnectionError
			if errors.As(err, &ce) {
				return c.connError(ce)
			}
			return c.connError(ConnectionError{ErrCodeInternal, err.Error()})
		}
	}
}

// connError emits GOAWAY, poisons the connection and returns the error.
func (c *Conn) connError(ce ConnectionError) error {
	if c.failed == nil {
		c.GoAway(ce.Code, []byte(ce.Reason))
		c.failed = ce
	}
	return c.failed
}

// resetStreamByID sends RST_STREAM for a stream-level error.
func (c *Conn) resetStreamByID(id uint32, code ErrCode) {
	if s := c.streams[id]; s != nil {
		s.Reset(code)
		return
	}
	c.emitFrame(FrameRSTStream, id, func(dst []byte) []byte {
		return AppendRSTStream(dst, id, code)
	})
}

func (c *Conn) processFrame(f *Frame) error {
	t := f.Header.Type
	c.stats.FramesReceived[t]++
	if c.tr.Enabled() {
		c.tr.Emit(trace.LayerH2, "recv",
			trace.Str("ep", c.traceName), trace.Str("type", t.String()),
			trace.Num("stream", int64(f.Header.StreamID)), trace.Num("len", int64(f.Header.Length)))
	}
	if c.ck.Enabled() {
		var aux uint32
		switch t {
		case FrameWindowUpdate:
			aux = f.WindowIncrement
		case FramePushPromise:
			aux = f.PromisedStreamID
		}
		c.ck.H2FrameRecv(c.ckName, uint8(t), f.Header.StreamID, f.Header.Length, uint8(f.Header.Flags), aux)
	}
	if c.fl.Enabled() {
		c.fl.H2Frame(c.isClient, false, uint8(t), f.Header.StreamID, f.Header.Length, uint8(f.Header.Flags))
	}

	// While a header block is being continued, only CONTINUATION on the
	// same stream is legal (§6.10).
	if c.contActive && (t != FrameContinuation || f.Header.StreamID != c.contStreamID) {
		return ConnectionError{ErrCodeProtocol, "interleaved frame during CONTINUATION"}
	}

	switch t {
	case FrameSettings:
		return c.processSettings(f)
	case FrameData:
		return c.processData(f)
	case FrameHeaders:
		return c.processHeaders(f)
	case FrameContinuation:
		return c.processContinuation(f)
	case FramePriority:
		if s := c.streams[f.Header.StreamID]; s != nil {
			s.prio = f.Priority
		}
		return nil
	case FrameRSTStream:
		return c.processRSTStream(f)
	case FrameWindowUpdate:
		return c.processWindowUpdate(f)
	case FramePing:
		if !f.Header.Flags.Has(FlagAck) {
			c.emitFrame(FramePing, 0, func(dst []byte) []byte {
				return AppendPing(dst, true, f.PingData)
			})
		}
		if c.handlers.OnPing != nil {
			c.handlers.OnPing(f.Header.Flags.Has(FlagAck), f.PingData)
		}
		return nil
	case FrameGoAway:
		c.goAwayReceived = true
		if c.handlers.OnGoAway != nil {
			c.handlers.OnGoAway(f.LastStreamID, f.ErrCode, f.Data)
		}
		return nil
	case FramePushPromise:
		return c.processPushPromise(f)
	default:
		return nil // unknown frame types are ignored (§4.1)
	}
}

func (c *Conn) processSettings(f *Frame) error {
	if f.Header.Flags.Has(FlagAck) {
		return nil
	}
	for _, s := range f.Settings {
		switch s.ID {
		case SettingHeaderTableSize:
			c.henc.SetMaxDynamicTableSize(int(s.Val))
		case SettingEnablePush:
			if s.Val > 1 {
				return ConnectionError{ErrCodeProtocol, "ENABLE_PUSH must be 0 or 1"}
			}
			c.peerAllowsPush = s.Val == 1 && !c.isClient
		case SettingMaxConcurrentStreams:
			c.peerMaxStreams = s.Val
		case SettingInitialWindowSize:
			if s.Val > maxWindow {
				return ConnectionError{ErrCodeFlowControl, "INITIAL_WINDOW_SIZE overflow"}
			}
			delta := int64(s.Val) - c.peerInitialWindow
			c.peerInitialWindow = int64(s.Val)
			for _, st := range c.streams {
				st.sendWindow += delta
			}
			if c.ck.Enabled() {
				c.ck.H2PeerInitialWindow(c.ckName, s.Val)
			}
			if delta > 0 {
				c.notifyWindow(nil)
			}
		case SettingMaxFrameSize:
			if s.Val < DefaultMaxFrameSize || s.Val > maxFrameSizeLimit {
				return ConnectionError{ErrCodeProtocol, "MAX_FRAME_SIZE out of range"}
			}
			c.peerMaxFrameSize = int(s.Val)
		case SettingMaxHeaderListSize:
			// Advisory.
		}
	}
	c.emitFrame(FrameSettings, 0, AppendSettingsAck)
	if c.handlers.OnSettings != nil {
		c.handlers.OnSettings(f.Settings)
	}
	return nil
}

func (c *Conn) processData(f *Frame) error {
	id := f.Header.StreamID
	// Flow control consumes the entire frame payload, padding included.
	consumed := int64(f.Header.Length)
	c.recvWindow -= consumed
	if c.recvWindow < 0 {
		return ConnectionError{ErrCodeFlowControl, "connection flow-control window exceeded"}
	}
	// Replenish the connection window immediately (fast reader).
	if consumed > 0 {
		c.recvWindow += consumed
		c.emitFrame(FrameWindowUpdate, 0, func(dst []byte) []byte {
			return AppendWindowUpdate(dst, 0, uint32(consumed))
		})
	}

	s := c.streams[id]
	if s == nil {
		if c.closedStreams[id] || c.isOldPeerStream(id) || c.isOldLocalStream(id) {
			return nil // late data for a dead stream: ignore (§5.1)
		}
		return ConnectionError{ErrCodeProtocol, fmt.Sprintf("DATA on idle stream %d", id)}
	}
	if s.state != StreamOpen && s.state != StreamHalfClosedLocal {
		c.resetStreamByID(id, ErrCodeStreamClosed)
		return nil
	}
	s.recvWindow -= consumed
	if s.recvWindow < 0 {
		c.resetStreamByID(id, ErrCodeFlowControl)
		return nil
	}
	if consumed > 0 {
		s.recvWindow += consumed
		c.emitFrame(FrameWindowUpdate, id, func(dst []byte) []byte {
			return AppendWindowUpdate(dst, id, uint32(consumed))
		})
	}
	c.stats.DataBytesRcvd += int64(len(f.Data))
	endStream := f.Header.Flags.Has(FlagEndStream)
	if c.ck.Enabled() {
		c.ck.H2AppData(c.ckName, id)
	}
	if c.handlers.OnStreamData != nil {
		c.handlers.OnStreamData(s, f.Data, endStream)
	}
	if endStream {
		s.remoteClose()
	}
	return nil
}

func (c *Conn) processHeaders(f *Frame) error {
	id := f.Header.StreamID
	s := c.streams[id]
	if s == nil {
		if c.isClient {
			if c.closedStreams[id] {
				// Response headers for a stream we already reset. The
				// block must still be decoded — HPACK state is
				// connection-wide — but goes nowhere.
				s = &Stream{conn: c, id: id, state: StreamClosed, orphan: true}
			} else {
				return ConnectionError{ErrCodeProtocol, fmt.Sprintf("HEADERS on unknown stream %d", id)}
			}
		} else {
			// New request stream on the server.
			if id%2 == 0 {
				return ConnectionError{ErrCodeProtocol, "client-initiated stream with even id"}
			}
			if id <= c.lastPeerStreamID {
				if !c.closedStreams[id] {
					return ConnectionError{ErrCodeProtocol, "stream id not monotonically increasing"}
				}
				s = &Stream{conn: c, id: id, state: StreamClosed, orphan: true}
			}
		}
	}
	if s == nil {
		refuse := uint32(c.peerStreamCount) >= c.cfg.MaxConcurrentStreams
		c.lastPeerStreamID = id
		c.peerStreamCount++
		s = c.newStream(id)
		s.state = StreamOpen
		// A refused stream's header block must still be decoded: HPACK
		// state is connection-wide and skipping a block desynchronizes
		// the dynamic table (RFC 7540 §8.1.2.5 discussion).
		s.refused = refuse
	}
	if !f.Priority.IsZero() {
		s.prio = f.Priority
	}
	endStream := f.Header.Flags.Has(FlagEndStream)
	if !f.Header.Flags.Has(FlagEndHeaders) {
		c.contActive = true
		c.contStreamID = id
		c.contStream = s
		c.contBuf = append(c.contBuf[:0], f.Data...)
		c.contEndStream = endStream
		c.contIsPush = false
		return nil
	}
	return c.finishHeaderBlock(s, f.Data, endStream)
}

func (c *Conn) processContinuation(f *Frame) error {
	if !c.contActive || f.Header.StreamID != c.contStreamID {
		return ConnectionError{ErrCodeProtocol, "unexpected CONTINUATION"}
	}
	c.contBuf = append(c.contBuf, f.Data...)
	if len(c.contBuf) > int(c.cfg.MaxHeaderListSize)*2 {
		return ConnectionError{ErrCodeEnhanceYourCalm, "continued header block too large"}
	}
	if !f.Header.Flags.Has(FlagEndHeaders) {
		return nil
	}
	c.contActive = false
	block := c.contBuf
	if c.contIsPush {
		parent, promised := c.contParent, c.contPromised
		c.contParent, c.contPromised = nil, nil
		return c.finishPushPromise(parent, promised, block)
	}
	s := c.contStream
	c.contStream = nil
	if s == nil {
		return nil
	}
	// A stream reset mid-continuation still needs its block decoded for
	// HPACK state continuity; treat it as orphaned.
	if c.streams[c.contStreamID] != s {
		s.orphan = true
	}
	return c.finishHeaderBlock(s, block, c.contEndStream)
}

func (c *Conn) finishHeaderBlock(s *Stream, block []byte, endStream bool) error {
	fields, err := c.hdec.Decode(block)
	if err != nil {
		return ConnectionError{ErrCodeCompression, err.Error()}
	}
	if c.ck.Enabled() {
		c.ck.HpackDecoded(c.ckName, c.hdec.DynamicTableSize())
	}
	if s.orphan {
		return nil // decoded for table continuity only
	}
	if s.refused {
		s.Reset(ErrCodeRefusedStream)
		return nil
	}
	if s.state == StreamReservedRemote {
		s.state = StreamHalfClosedLocal
	}
	if c.handlers.OnStreamHeaders != nil {
		c.handlers.OnStreamHeaders(s, fields, endStream)
	}
	if endStream {
		s.remoteClose()
	}
	return nil
}

func (c *Conn) processRSTStream(f *Frame) error {
	id := f.Header.StreamID
	s := c.streams[id]
	if s == nil {
		if !c.closedStreams[id] && !c.isOldPeerStream(id) && !c.isOldLocalStream(id) {
			return ConnectionError{ErrCodeProtocol, fmt.Sprintf("RST_STREAM on idle stream %d", id)}
		}
		return nil
	}
	c.closeStream(s, f.ErrCode, true)
	return nil
}

func (c *Conn) processWindowUpdate(f *Frame) error {
	id := f.Header.StreamID
	if f.WindowIncrement == 0 {
		if id == 0 {
			return ConnectionError{ErrCodeProtocol, "WINDOW_UPDATE increment 0"}
		}
		c.resetStreamByID(id, ErrCodeProtocol)
		return nil
	}
	if id == 0 {
		c.sendWindow += int64(f.WindowIncrement)
		if c.sendWindow > maxWindow {
			return ConnectionError{ErrCodeFlowControl, "connection window overflow"}
		}
		c.notifyWindow(nil)
		return nil
	}
	s := c.streams[id]
	if s == nil {
		return nil // window update for a finished stream
	}
	s.sendWindow += int64(f.WindowIncrement)
	if s.sendWindow > maxWindow {
		c.resetStreamByID(id, ErrCodeFlowControl)
		return nil
	}
	c.notifyWindow(s)
	return nil
}

func (c *Conn) processPushPromise(f *Frame) error {
	if !c.isClient {
		return ConnectionError{ErrCodeProtocol, "PUSH_PROMISE from client"}
	}
	if !c.cfg.EnablePush {
		return ConnectionError{ErrCodeProtocol, "PUSH_PROMISE while push disabled"}
	}
	parent := c.streams[f.Header.StreamID]
	if parent == nil {
		return ConnectionError{ErrCodeProtocol, "PUSH_PROMISE on unknown stream"}
	}
	if f.PromisedStreamID == 0 || f.PromisedStreamID%2 != 0 {
		return ConnectionError{ErrCodeProtocol, "invalid promised stream id"}
	}
	if c.streams[f.PromisedStreamID] != nil || c.closedStreams[f.PromisedStreamID] {
		return ConnectionError{ErrCodeProtocol, "promised stream id in use"}
	}
	promised := c.newStream(f.PromisedStreamID)
	promised.state = StreamReservedRemote
	if !f.Header.Flags.Has(FlagEndHeaders) {
		c.contActive = true
		c.contStreamID = f.Header.StreamID
		c.contBuf = append(c.contBuf[:0], f.Data...)
		c.contIsPush = true
		c.contParent = parent
		c.contPromised = promised
		return nil
	}
	return c.finishPushPromise(parent, promised, f.Data)
}

func (c *Conn) finishPushPromise(parent, promised *Stream, block []byte) error {
	fields, err := c.hdec.Decode(block)
	if err != nil {
		return ConnectionError{ErrCodeCompression, err.Error()}
	}
	if c.ck.Enabled() {
		c.ck.HpackDecoded(c.ckName, c.hdec.DynamicTableSize())
	}
	if c.handlers.OnPushPromise != nil {
		c.handlers.OnPushPromise(parent, promised, fields)
	}
	return nil
}

func (c *Conn) notifyWindow(s *Stream) {
	if c.handlers.OnWindowAvailable != nil {
		c.handlers.OnWindowAvailable(s)
	}
}

// isOldPeerStream reports whether id is a peer-initiated stream id at or
// below the highest we have processed (hence implicitly closed).
func (c *Conn) isOldPeerStream(id uint32) bool {
	return c.isPeerInitiated(id) && id <= c.lastPeerStreamID
}

// isOldLocalStream reports whether id is a locally-initiated id we have
// already used.
func (c *Conn) isOldLocalStream(id uint32) bool {
	return !c.isPeerInitiated(id) && id < c.nextStreamID
}
