package h2

import (
	"encoding/binary"
	"fmt"
)

// FrameType is an RFC 7540 §6 frame type.
type FrameType uint8

// Frame types.
const (
	FrameData         FrameType = 0x0
	FrameHeaders      FrameType = 0x1
	FramePriority     FrameType = 0x2
	FrameRSTStream    FrameType = 0x3
	FrameSettings     FrameType = 0x4
	FramePushPromise  FrameType = 0x5
	FramePing         FrameType = 0x6
	FrameGoAway       FrameType = 0x7
	FrameWindowUpdate FrameType = 0x8
	FrameContinuation FrameType = 0x9
)

// String names the frame type.
func (t FrameType) String() string {
	switch t {
	case FrameData:
		return "DATA"
	case FrameHeaders:
		return "HEADERS"
	case FramePriority:
		return "PRIORITY"
	case FrameRSTStream:
		return "RST_STREAM"
	case FrameSettings:
		return "SETTINGS"
	case FramePushPromise:
		return "PUSH_PROMISE"
	case FramePing:
		return "PING"
	case FrameGoAway:
		return "GOAWAY"
	case FrameWindowUpdate:
		return "WINDOW_UPDATE"
	case FrameContinuation:
		return "CONTINUATION"
	default:
		return fmt.Sprintf("FRAME_TYPE_%d", uint8(t))
	}
}

// Flags is the frame flags byte.
type Flags uint8

// Frame flags. The same bit means different things on different frame
// types, exactly as in the RFC.
const (
	FlagEndStream  Flags = 0x1 // DATA, HEADERS
	FlagAck        Flags = 0x1 // SETTINGS, PING
	FlagEndHeaders Flags = 0x4 // HEADERS, PUSH_PROMISE, CONTINUATION
	FlagPadded     Flags = 0x8 // DATA, HEADERS, PUSH_PROMISE
	FlagPriority   Flags = 0x20
)

// Has reports whether all bits of f2 are set.
func (f Flags) Has(f2 Flags) bool { return f&f2 == f2 }

// FrameHeaderSize is the fixed 9-byte frame header.
const FrameHeaderSize = 9

// FrameHeader is the fixed header preceding every frame.
type FrameHeader struct {
	Length   int // payload length (24 bits)
	Type     FrameType
	Flags    Flags
	StreamID uint32 // 31 bits
}

// String formats the header for traces.
func (h FrameHeader) String() string {
	return fmt.Sprintf("%v len=%d flags=%#x stream=%d", h.Type, h.Length, uint8(h.Flags), h.StreamID)
}

// ParseFrameHeader decodes just the fixed 9-byte header, reporting false
// when b is too short. Instrumentation that only needs type, length and
// stream id uses it to skip the full (allocating) payload decode.
func ParseFrameHeader(b []byte) (FrameHeader, bool) {
	if len(b) < FrameHeaderSize {
		return FrameHeader{}, false
	}
	return parseFrameHeader(b), true
}

// parseFrameHeader decodes the 9-byte header. b must be ≥ 9 bytes.
func parseFrameHeader(b []byte) FrameHeader {
	return FrameHeader{
		Length:   int(b[0])<<16 | int(b[1])<<8 | int(b[2]),
		Type:     FrameType(b[3]),
		Flags:    Flags(b[4]),
		StreamID: binary.BigEndian.Uint32(b[5:9]) & 0x7fffffff,
	}
}

// appendFrameHeader serializes a frame header.
func appendFrameHeader(dst []byte, length int, t FrameType, flags Flags, streamID uint32) []byte {
	return append(dst,
		byte(length>>16), byte(length>>8), byte(length),
		byte(t), byte(flags),
		byte(streamID>>24), byte(streamID>>16), byte(streamID>>8), byte(streamID),
	)
}

// PriorityParam is the HEADERS/PRIORITY stream dependency block
// (RFC 7540 §5.3). The paper's §VII defense idea randomizes these.
type PriorityParam struct {
	StreamDep uint32
	Exclusive bool
	// Weight is the wire value (0-255), representing weights 1-256.
	Weight uint8
}

// IsZero reports whether the parameter carries no information.
func (p PriorityParam) IsZero() bool { return p == PriorityParam{} }

// Setting is one SETTINGS parameter.
type Setting struct {
	ID  SettingID
	Val uint32
}

// SettingID identifies a SETTINGS parameter (RFC 7540 §6.5.2).
type SettingID uint16

// Settings parameters.
const (
	SettingHeaderTableSize      SettingID = 0x1
	SettingEnablePush           SettingID = 0x2
	SettingMaxConcurrentStreams SettingID = 0x3
	SettingInitialWindowSize    SettingID = 0x4
	SettingMaxFrameSize         SettingID = 0x5
	SettingMaxHeaderListSize    SettingID = 0x6
)

// String names the setting.
func (s SettingID) String() string {
	switch s {
	case SettingHeaderTableSize:
		return "HEADER_TABLE_SIZE"
	case SettingEnablePush:
		return "ENABLE_PUSH"
	case SettingMaxConcurrentStreams:
		return "MAX_CONCURRENT_STREAMS"
	case SettingInitialWindowSize:
		return "INITIAL_WINDOW_SIZE"
	case SettingMaxFrameSize:
		return "MAX_FRAME_SIZE"
	case SettingMaxHeaderListSize:
		return "MAX_HEADER_LIST_SIZE"
	default:
		return fmt.Sprintf("SETTING_%d", uint16(s))
	}
}

// Protocol constants (RFC 7540).
const (
	// ClientPreface opens every client connection (§3.5).
	ClientPreface = "PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n"
	// DefaultInitialWindowSize is the flow-control window at startup.
	DefaultInitialWindowSize = 65535
	// DefaultMaxFrameSize is the largest payload peers may send before
	// SETTINGS says otherwise.
	DefaultMaxFrameSize = 16384
	// maxWindow is the largest legal flow-control window (2^31-1).
	maxWindow = 1<<31 - 1
	// maxFrameSizeLimit is the protocol ceiling for MAX_FRAME_SIZE.
	maxFrameSizeLimit = 1<<24 - 1
)
