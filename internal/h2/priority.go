package h2

import "fmt"

// PriorityTree implements the RFC 7540 §5.3 stream dependency tree:
// streams depend on a parent (stream 0 is the root), carry weights 1–256,
// and siblings share capacity proportionally to weight. Servers consult
// the tree to decide which ready stream to serve next; the §VII defense
// discussion is about randomizing exactly this structure.
//
// The tree is a plain data structure (no locking, no I/O) so both the
// event-driven simulation and a goroutine server can use it under their
// own synchronization.
type PriorityTree struct {
	nodes map[uint32]*prioNode
}

type prioNode struct {
	id       uint32
	parent   *prioNode
	children []*prioNode
	weight   int // effective weight 1..256
	ready    bool
}

// NewPriorityTree returns a tree containing only the root (stream 0).
func NewPriorityTree() *PriorityTree {
	root := &prioNode{id: 0, weight: 256}
	return &PriorityTree{nodes: map[uint32]*prioNode{0: root}}
}

// Add inserts a stream with the given priority parameter. A zero
// parameter means "depend on the root with default weight 16" (§5.3.5).
// Unknown dependency targets default to the root (§5.3.1).
func (t *PriorityTree) Add(id uint32, prio PriorityParam) error {
	if id == 0 {
		return fmt.Errorf("h2: cannot add stream 0 to the priority tree")
	}
	if _, dup := t.nodes[id]; dup {
		return fmt.Errorf("h2: stream %d already in the priority tree", id)
	}
	n := &prioNode{id: id, weight: int(prio.Weight) + 1}
	if prio.IsZero() {
		n.weight = 16
	}
	t.nodes[id] = n
	t.attach(n, prio.StreamDep, prio.Exclusive)
	return nil
}

// Reprioritize applies a PRIORITY frame to an existing stream. Moving a
// stream under its own descendant first moves that descendant up to the
// stream's old parent (§5.3.3).
func (t *PriorityTree) Reprioritize(id uint32, prio PriorityParam) error {
	n := t.nodes[id]
	if n == nil || id == 0 {
		return fmt.Errorf("h2: stream %d not in the priority tree", id)
	}
	if prio.StreamDep == id {
		return fmt.Errorf("h2: stream %d cannot depend on itself", id)
	}
	n.weight = int(prio.Weight) + 1
	// If the new parent is a descendant of n, hoist it first.
	if dep := t.nodes[prio.StreamDep]; dep != nil && t.isDescendant(dep, n) {
		t.detach(dep)
		t.attachNode(dep, n.parent, false)
	}
	t.detach(n)
	t.attach(n, prio.StreamDep, prio.Exclusive)
	return nil
}

// Remove deletes a closed stream; its children are redistributed to its
// parent (§5.3.4, simplified: weights are kept as-is).
func (t *PriorityTree) Remove(id uint32) {
	n := t.nodes[id]
	if n == nil || id == 0 {
		return
	}
	parent := n.parent
	t.detach(n)
	for _, c := range append([]*prioNode(nil), n.children...) {
		t.detach(c)
		t.attachNode(c, parent, false)
	}
	delete(t.nodes, id)
}

// SetReady marks whether the stream has data to send.
func (t *PriorityTree) SetReady(id uint32, ready bool) {
	if n := t.nodes[id]; n != nil {
		n.ready = ready
	}
}

// Contains reports whether the stream is tracked.
func (t *PriorityTree) Contains(id uint32) bool {
	_, ok := t.nodes[id]
	return ok
}

// Len reports the number of tracked streams (excluding the root).
func (t *PriorityTree) Len() int { return len(t.nodes) - 1 }

// Next picks the stream to serve: the highest-priority ready stream,
// where children are only eligible when no ready stream exists above
// them, and siblings are chosen by largest weight (deterministic
// tie-break by lowest id — a weighted round-robin caller achieves
// proportional sharing by calling SetReady/Next repeatedly).
func (t *PriorityTree) Next() (uint32, bool) {
	return t.next(t.nodes[0])
}

func (t *PriorityTree) next(n *prioNode) (uint32, bool) {
	if n.id != 0 && n.ready {
		return n.id, true
	}
	bestID, bestW := uint32(0), -1
	found := false
	for _, c := range n.children {
		if id, ok := t.next(c); ok {
			// Sibling comparison happens at branch weight (§5.3.2).
			if c.weight > bestW || (c.weight == bestW && id < bestID) {
				bestID, bestW = id, c.weight
				found = true
			}
		}
	}
	return bestID, found
}

func (t *PriorityTree) attach(n *prioNode, dep uint32, exclusive bool) {
	parent := t.nodes[dep]
	if parent == nil || parent == n {
		parent = t.nodes[0]
	}
	t.attachNode(n, parent, exclusive)
}

func (t *PriorityTree) attachNode(n, parent *prioNode, exclusive bool) {
	if exclusive {
		// n adopts all of parent's current children (§5.3.1).
		for _, c := range parent.children {
			c.parent = n
			n.children = append(n.children, c)
		}
		parent.children = parent.children[:0]
	}
	n.parent = parent
	parent.children = append(parent.children, n)
}

func (t *PriorityTree) detach(n *prioNode) {
	p := n.parent
	if p == nil {
		return
	}
	for i, c := range p.children {
		if c == n {
			p.children = append(p.children[:i], p.children[i+1:]...)
			break
		}
	}
	n.parent = nil
}

// isDescendant reports whether x lies in n's subtree.
func (t *PriorityTree) isDescendant(x, n *prioNode) bool {
	for p := x.parent; p != nil; p = p.parent {
		if p == n {
			return true
		}
	}
	return false
}
