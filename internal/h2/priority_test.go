package h2

import (
	"testing"
	"testing/quick"
)

func TestPriorityTreeBasics(t *testing.T) {
	tr := NewPriorityTree()
	if err := tr.Add(1, PriorityParam{}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Add(3, PriorityParam{}); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("len = %d", tr.Len())
	}
	if _, ok := tr.Next(); ok {
		t.Fatal("Next found a stream with nothing ready")
	}
	tr.SetReady(3, true)
	if id, ok := tr.Next(); !ok || id != 3 {
		t.Fatalf("Next = %d, %t", id, ok)
	}
	tr.SetReady(1, true)
	// Equal weights: deterministic lowest-id tie-break.
	if id, _ := tr.Next(); id != 1 {
		t.Fatalf("tie-break picked %d", id)
	}
}

func TestPriorityTreeWeightsSelectHeavier(t *testing.T) {
	tr := NewPriorityTree()
	_ = tr.Add(1, PriorityParam{Weight: 255}) // weight 256
	_ = tr.Add(3, PriorityParam{Weight: 0})   // weight 1
	tr.SetReady(1, true)
	tr.SetReady(3, true)
	if id, _ := tr.Next(); id != 1 {
		t.Fatalf("picked %d, want the heavy stream", id)
	}
	tr.SetReady(1, false)
	if id, _ := tr.Next(); id != 3 {
		t.Fatalf("picked %d, want the light stream once heavy is idle", id)
	}
}

func TestPriorityTreeDependencyBlocks(t *testing.T) {
	tr := NewPriorityTree()
	_ = tr.Add(1, PriorityParam{})
	_ = tr.Add(3, PriorityParam{StreamDep: 1}) // 3 depends on 1
	tr.SetReady(3, true)
	// 1 not ready: its child may proceed.
	if id, ok := tr.Next(); !ok || id != 3 {
		t.Fatalf("child not reachable: %d %t", id, ok)
	}
	tr.SetReady(1, true)
	// Parent ready: it shadows the child.
	if id, _ := tr.Next(); id != 1 {
		t.Fatalf("parent did not take precedence: %d", id)
	}
}

func TestPriorityTreeExclusive(t *testing.T) {
	tr := NewPriorityTree()
	_ = tr.Add(1, PriorityParam{})
	_ = tr.Add(3, PriorityParam{})
	// 5 inserts exclusively under root: adopts 1 and 3.
	_ = tr.Add(5, PriorityParam{Exclusive: true})
	tr.SetReady(1, true)
	tr.SetReady(3, true)
	// 5 is idle, so its children are eligible; they are now below 5.
	if id, ok := tr.Next(); !ok || (id != 1 && id != 3) {
		t.Fatalf("adopted children unreachable: %d %t", id, ok)
	}
	tr.SetReady(5, true)
	if id, _ := tr.Next(); id != 5 {
		t.Fatalf("exclusive parent did not shadow: %d", id)
	}
}

func TestPriorityTreeReprioritizeUnderDescendant(t *testing.T) {
	tr := NewPriorityTree()
	_ = tr.Add(1, PriorityParam{})
	_ = tr.Add(3, PriorityParam{StreamDep: 1})
	// Move 1 under its own descendant 3: 3 must be hoisted first.
	if err := tr.Reprioritize(1, PriorityParam{StreamDep: 3, Weight: 10}); err != nil {
		t.Fatal(err)
	}
	tr.SetReady(1, true)
	if id, ok := tr.Next(); !ok || id != 1 {
		t.Fatalf("cycle handling broke reachability: %d %t", id, ok)
	}
	tr.SetReady(3, true)
	if id, _ := tr.Next(); id != 3 {
		t.Fatalf("hoisted node should shadow its new child: %d", id)
	}
}

func TestPriorityTreeRemoveRedistributes(t *testing.T) {
	tr := NewPriorityTree()
	_ = tr.Add(1, PriorityParam{})
	_ = tr.Add(3, PriorityParam{StreamDep: 1})
	_ = tr.Add(5, PriorityParam{StreamDep: 1})
	tr.Remove(1)
	if tr.Contains(1) {
		t.Fatal("removed stream still present")
	}
	tr.SetReady(3, true)
	tr.SetReady(5, true)
	if id, ok := tr.Next(); !ok || id != 3 {
		t.Fatalf("orphaned children unreachable: %d %t", id, ok)
	}
}

func TestPriorityTreeErrors(t *testing.T) {
	tr := NewPriorityTree()
	if err := tr.Add(0, PriorityParam{}); err == nil {
		t.Fatal("added stream 0")
	}
	_ = tr.Add(1, PriorityParam{})
	if err := tr.Add(1, PriorityParam{}); err == nil {
		t.Fatal("duplicate add accepted")
	}
	if err := tr.Reprioritize(9, PriorityParam{}); err == nil {
		t.Fatal("reprioritized unknown stream")
	}
	if err := tr.Reprioritize(1, PriorityParam{StreamDep: 1}); err == nil {
		t.Fatal("self-dependency accepted")
	}
	// Unknown dependency defaults to root rather than failing.
	if err := tr.Add(7, PriorityParam{StreamDep: 99}); err != nil {
		t.Fatal(err)
	}
	tr.SetReady(7, true)
	if id, ok := tr.Next(); !ok || id != 7 {
		t.Fatalf("default-to-root dependency broken: %d %t", id, ok)
	}
}

// Property: after any sequence of adds/reprioritizations/removals, every
// tracked ready stream is findable and Next never panics or loops.
func TestPriorityTreeRandomOpsProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		tr := NewPriorityTree()
		live := map[uint32]bool{}
		nextID := uint32(1)
		for _, op := range ops {
			switch op % 4 {
			case 0: // add
				dep := uint32(op/4) % (nextID + 1)
				_ = tr.Add(nextID, PriorityParam{StreamDep: dep, Weight: uint8(op)})
				live[nextID] = true
				nextID += 2
			case 1: // reprioritize a random live stream
				for id := range live {
					_ = tr.Reprioritize(id, PriorityParam{StreamDep: uint32(op/4) % nextID, Weight: uint8(op), Exclusive: op%8 == 1})
					break
				}
			case 2: // remove
				for id := range live {
					tr.Remove(id)
					delete(live, id)
					break
				}
			case 3: // toggle readiness
				for id := range live {
					tr.SetReady(id, op%8 < 4)
					break
				}
			}
		}
		if tr.Len() != len(live) {
			return false
		}
		// Mark everything ready: every live stream must be reachable by
		// repeatedly picking and silencing Next.
		for id := range live {
			tr.SetReady(id, true)
		}
		seen := map[uint32]bool{}
		for i := 0; i <= len(live); i++ {
			id, ok := tr.Next()
			if !ok {
				break
			}
			if seen[id] {
				return false // livelock: Next repeated without SetReady change
			}
			seen[id] = true
			tr.SetReady(id, false)
		}
		return len(seen) == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
