package h2

import (
	"testing"
	"testing/quick"
)

// Property: arbitrary bytes fed to a started server connection never
// panic: the connection either keeps parsing or fails cleanly with a
// connection error, and once failed it stays failed.
func TestHostileBytesNeverPanic(t *testing.T) {
	f := func(chunks [][]byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		srv, err := NewConn(false, Config{}, func([]byte) {})
		if err != nil {
			return false
		}
		srv.Start()
		// Valid preface first so the fuzz reaches the frame layer.
		if err := srv.Feed([]byte(ClientPreface)); err != nil {
			return false
		}
		failed := false
		for _, c := range chunks {
			err := srv.Feed(c)
			if failed && err == nil {
				return false // failure must be sticky
			}
			if err != nil {
				failed = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: well-formed frames with arbitrary unknown types are skipped
// without killing the connection.
func TestUnknownFramesNeverFatal(t *testing.T) {
	f := func(types []uint8, payloadLen uint16) bool {
		srv, err := NewConn(false, Config{}, func([]byte) {})
		if err != nil {
			return false
		}
		srv.Start()
		if err := srv.Feed([]byte(ClientPreface)); err != nil {
			return false
		}
		if err := srv.Feed(AppendSettings(nil, nil)); err != nil {
			return false
		}
		for _, ty := range types {
			if ty <= 9 {
				continue // known types have their own validation
			}
			n := int(payloadLen) % 1000
			wire := appendFrameHeader(nil, n, FrameType(ty), 0, 1)
			wire = append(wire, make([]byte, n)...)
			if err := srv.Feed(wire); err != nil {
				return false
			}
		}
		return srv.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the frame reader consumes arbitrary fragmentations of a valid
// frame stream identically (no state depends on chunk boundaries).
func TestFrameReaderFragmentationProperty(t *testing.T) {
	// A fixed valid frame sequence.
	var stream []byte
	stream = AppendSettings(stream, []Setting{{SettingInitialWindowSize, 1 << 20}})
	stream = AppendHeaders(stream, 1, []byte{0x82, 0x84, 0x86, 0x87}, true, true, PriorityParam{})
	stream = AppendData(stream, 1, make([]byte, 321), true, 7)
	stream = AppendPing(stream, false, [8]byte{1})
	stream = AppendGoAway(stream, 1, ErrCodeNo, []byte("bye"))

	parseAll := func(cuts []uint8) ([]FrameType, bool) {
		r := NewFrameReader()
		var types []FrameType
		pos := 0
		feed := func(b []byte) bool {
			r.Feed(b)
			for {
				f, err := r.Next()
				if err != nil {
					return false
				}
				if f == nil {
					return true
				}
				types = append(types, f.Header.Type)
			}
		}
		for _, c := range cuts {
			n := int(c)%64 + 1
			if pos+n > len(stream) {
				break
			}
			if !feed(stream[pos : pos+n]) {
				return nil, false
			}
			pos += n
		}
		if pos < len(stream) && !feed(stream[pos:]) {
			return nil, false
		}
		return types, true
	}
	want, ok := parseAll(nil)
	if !ok || len(want) != 5 {
		t.Fatalf("reference parse failed: %v", want)
	}
	f := func(cuts []uint8) bool {
		got, ok := parseAll(cuts)
		if !ok || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
