package website

import (
	"testing"
	"testing/quick"

	"h2privacy/internal/simtime"
)

func TestCatalogShape(t *testing.T) {
	s := ISideWith()
	if s.EmbeddedCount() != 47 {
		t.Fatalf("embedded objects = %d, want 47 (paper §V)", s.EmbeddedCount())
	}
	target := s.Object(TargetID)
	if target == nil || target.Size != 9500 {
		t.Fatalf("quiz HTML = %+v, want 9500 bytes", target)
	}
	// The quiz HTML is the 6th object in download order.
	if s.Objects[5].ID != TargetID {
		t.Fatalf("6th object is %q, want %q", s.Objects[5].ID, TargetID)
	}
	emblems := 0
	for _, o := range s.Objects {
		if o.Type == TypeEmblem {
			emblems++
			if o.Size < 5*1024 || o.Size > 16*1024 {
				t.Fatalf("emblem %s size %d outside 5–16KB", o.ID, o.Size)
			}
		}
	}
	if emblems != PartyCount {
		t.Fatalf("emblems = %d", emblems)
	}
}

func TestUniqueSizesForObjectsOfInterest(t *testing.T) {
	s := ISideWith()
	counts := map[int]int{}
	for _, o := range s.Objects {
		counts[o.Size]++
	}
	check := []string{TargetID}
	for p := 0; p < PartyCount; p++ {
		check = append(check, EmblemID(p))
	}
	for _, id := range check {
		o := s.Object(id)
		if counts[o.Size] != 1 {
			t.Fatalf("object %s size %d is not unique (%d collisions) — the §II identifiability condition fails", id, o.Size, counts[o.Size])
		}
	}
}

func TestSizeToIdentityMapsObjectsOfInterest(t *testing.T) {
	s := ISideWith()
	m := s.SizeToIdentity()
	if m[9500] != TargetID {
		t.Fatalf("9500 → %q", m[9500])
	}
	for p := 0; p < PartyCount; p++ {
		o := s.Object(EmblemID(p))
		if m[o.Size] != o.ID {
			t.Fatalf("size %d → %q, want %q", o.Size, m[o.Size], o.ID)
		}
	}
}

func TestLookupAndBody(t *testing.T) {
	s := ISideWith()
	o := s.Lookup("/polls/2020-presidential/results")
	if o == nil || o.ID != TargetID {
		t.Fatalf("lookup = %+v", o)
	}
	if s.Lookup("/nope") != nil {
		t.Fatal("bogus path resolved")
	}
	body := s.Body(o)
	if len(body) != o.Size {
		t.Fatalf("body length %d, want %d", len(body), o.Size)
	}
	if b2 := s.Body(o); string(b2) != string(body) {
		t.Fatal("body not deterministic")
	}
}

func TestPlanCoversAllObjectsOnce(t *testing.T) {
	s := ISideWith()
	perm := []int{3, 1, 4, 0, 7, 6, 2, 5}
	plan, err := s.PlanFor(perm)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, st := range plan.Steps {
		if s.Object(st.ObjectID) == nil {
			t.Fatalf("step references unknown object %q", st.ObjectID)
		}
		if seen[st.ObjectID] {
			t.Fatalf("object %q requested twice", st.ObjectID)
		}
		seen[st.ObjectID] = true
	}
	if len(seen) != len(s.Objects) {
		t.Fatalf("plan covers %d/%d objects", len(seen), len(s.Objects))
	}
}

func TestPlanEmblemOrderFollowsPerm(t *testing.T) {
	s := ISideWith()
	perm := []int{7, 6, 5, 4, 3, 2, 1, 0}
	plan, err := s.PlanFor(perm)
	if err != nil {
		t.Fatal(err)
	}
	order := plan.EmblemRequestOrder()
	for i, want := range perm {
		if order[i] != EmblemID(want) {
			t.Fatalf("rank %d: %q, want %q", i, order[i], EmblemID(want))
		}
	}
	// First emblem must wait for the results script.
	var first *Step
	for i := range plan.Steps {
		if plan.Steps[i].ObjectID == EmblemID(perm[0]) {
			first = &plan.Steps[i]
		}
	}
	if first == nil || first.TriggerDone != ResultsJSID {
		t.Fatalf("first emblem step = %+v", first)
	}
}

func TestPlanRejectsBadPerms(t *testing.T) {
	s := ISideWith()
	bad := [][]int{
		{0, 1, 2},
		{0, 0, 1, 2, 3, 4, 5, 6},
		{0, 1, 2, 3, 4, 5, 6, 99},
		nil,
	}
	for _, perm := range bad {
		if _, err := s.PlanFor(perm); err == nil {
			t.Fatalf("accepted %v", perm)
		}
	}
}

// Property: every random permutation yields a valid plan whose emblem
// order round-trips.
func TestPlanPermProperty(t *testing.T) {
	s := ISideWith()
	f := func(seed int64) bool {
		rng := simtime.NewRand(seed)
		perm := RandomPerm(rng)
		plan, err := s.PlanFor(perm)
		if err != nil {
			return false
		}
		order := plan.EmblemRequestOrder()
		for i, p := range perm {
			if order[i] != EmblemID(p) {
				return false
			}
		}
		return len(plan.Steps) == len(s.Objects)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPartyName(t *testing.T) {
	if PartyName(0) != "democratic" || PartyName(7) != "independence" {
		t.Fatal("party names broken")
	}
}

func TestPlanForShuffledDecouplesOrders(t *testing.T) {
	s := ISideWith()
	perm := []int{0, 1, 2, 3, 4, 5, 6, 7}
	rng := simtime.NewRand(99)
	plan, err := s.PlanForShuffled(perm, rng)
	if err != nil {
		t.Fatal(err)
	}
	display := plan.EmblemDisplayOrder()
	request := plan.EmblemRequestOrder()
	if len(display) != PartyCount || len(request) != PartyCount {
		t.Fatalf("orders: %v / %v", display, request)
	}
	// Same multiset of emblems...
	seen := map[string]bool{}
	for _, id := range request {
		seen[id] = true
	}
	for _, id := range display {
		if !seen[id] {
			t.Fatalf("request order missing %s", id)
		}
	}
	// ...but (for this seed) a different sequence.
	same := true
	for i := range display {
		if display[i] != request[i] {
			same = false
		}
	}
	if same {
		t.Fatal("shuffle produced the identity order (fix the seed)")
	}
	// The plan's emblem steps follow the request order.
	var stepOrder []string
	for _, st := range plan.Steps {
		if s.Object(st.ObjectID).Type == TypeEmblem {
			stepOrder = append(stepOrder, st.ObjectID)
		}
	}
	for i := range request {
		if stepOrder[i] != request[i] {
			t.Fatalf("plan step order %v != request order %v", stepOrder, request)
		}
	}
}

func TestPlanForShuffledPreservesNonEmblems(t *testing.T) {
	s := ISideWith()
	perm := []int{7, 6, 5, 4, 3, 2, 1, 0}
	rng := simtime.NewRand(5)
	base, _ := s.PlanFor(perm)
	shuf, err := s.PlanForShuffled(perm, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Steps) != len(shuf.Steps) {
		t.Fatalf("step counts differ: %d vs %d", len(base.Steps), len(shuf.Steps))
	}
	for i := range base.Steps {
		if s.Object(base.Steps[i].ObjectID).Type == TypeEmblem {
			continue
		}
		if base.Steps[i] != shuf.Steps[i] {
			t.Fatalf("non-emblem step %d changed: %+v vs %+v", i, base.Steps[i], shuf.Steps[i])
		}
	}
}
