// Package website models the attack's target: an isidewith.com-like survey
// site as described in the paper's §V. The result webpage is an HTML page
// with 47 embedded objects (JavaScript, stylesheets, images); the
// quiz-result HTML of ≈9500 bytes is the 6th object the browser downloads,
// and a results script triggers eight consecutive emblem-image requests —
// one per political party, in the user's preference order, with sizes
// between 5 KB and 16 KB that uniquely identify each party.
//
// The catalog is deterministic; per-trial variation comes from the user's
// preference permutation and the network/server randomness, mirroring the
// paper's ≈500 volunteer runs.
package website

import (
	"fmt"
	"time"

	"h2privacy/internal/simtime"
)

// Object kinds.
const (
	TypeHTML   = "html"
	TypeJS     = "js"
	TypeCSS    = "css"
	TypeImage  = "img"
	TypeFont   = "font"
	TypeEmblem = "emblem"
)

// Object is one resource served by the site.
type Object struct {
	ID   string
	Path string
	Type string
	Size int
	// Dynamic marks server-side-generated resources (the survey result
	// pages): the server renders them incrementally, so their first byte
	// is late and their body streams out over hundreds of milliseconds —
	// the window in which neighbouring static objects interleave with
	// them (the ≈98 % baseline multiplexing of the quiz HTML, §IV).
	Dynamic bool
}

// PartyCount is the number of parties in the survey result.
const PartyCount = 8

// Well-known object IDs.
const (
	// BaseID is the result webpage that embeds everything else.
	BaseID = "base"
	// TargetID is the paper's first object of interest: the ≈9500-byte
	// quiz HTML, 6th in download order.
	TargetID = "quiz"
	// ResultsJSID is the script whose execution triggers the emblem
	// requests.
	ResultsJSID = "results-js"
)

// TargetSize is the quiz HTML size used throughout the paper.
const TargetSize = 9500

// emblemSizes are the party-emblem image sizes (5–16 KB, pairwise distinct
// and distinct from every other object on the site — the identifiability
// conditions from §II).
var emblemSizes = [PartyCount]int{15872, 14336, 12544, 11008, 9984, 8192, 6656, 5120}

// partyNames label the emblems in catalog (party-index) order.
var partyNames = [PartyCount]string{
	"democratic", "republican", "libertarian", "green",
	"constitution", "reform", "socialist", "independence",
}

// Site is the target website catalog.
type Site struct {
	Host    string
	Objects []Object // catalog order: download order with emblems in party order
	byID    map[string]*Object
	byPath  map[string]*Object
}

// EmblemID returns the object id of party p's emblem (0-based).
func EmblemID(p int) string { return fmt.Sprintf("emblem-%s", partyNames[p]) }

// ISideWith builds the deterministic target-site catalog.
func ISideWith() *Site {
	s := &Site{Host: "www.isidewith.test"}
	add := func(id, typ string, size int, path string) {
		s.Objects = append(s.Objects, Object{
			ID: id, Path: path, Type: typ, Size: size,
			Dynamic: typ == TypeHTML,
		})
	}
	// Download order, per §V: base page, four head resources, then the
	// quiz HTML as the 6th object.
	add(BaseID, TypeHTML, 28_411, "/polls/2020-presidential")
	add("app-js", TypeJS, 54_902, "/static/app.js")
	add("style-css", TypeCSS, 38_277, "/static/style.css")
	add("vendor-js", TypeJS, 88_133, "/static/vendor.js")
	add("logo", TypeImage, 11_432, "/static/logo.png")
	add(TargetID, TypeHTML, TargetSize, "/polls/2020-presidential/results")
	// Mid-page resources (objects 7..21). Sizes avoid colliding with the
	// emblems and the quiz HTML.
	mids := []struct {
		id   string
		typ  string
		size int
	}{
		{"analytics-js", TypeJS, 17_254}, {"fonts-css", TypeCSS, 4_380},
		{"banner", TypeImage, 47_119}, {"icons", TypeImage, 22_961},
		{"share-js", TypeJS, 12_040}, {"poll-css", TypeCSS, 7_733},
		{"chart-js", TypeJS, 61_875}, {"bg", TypeImage, 93_512},
		{"font-main", TypeFont, 31_668}, {"font-bold", TypeFont, 29_204},
		{"avatar", TypeImage, 3_145}, {"map-js", TypeJS, 41_530},
		{"county-css", TypeCSS, 2_894}, {"spinner", TypeImage, 1_276},
	}
	for _, m := range mids {
		add(m.id, m.typ, m.size, "/static/"+m.id)
	}
	add(ResultsJSID, TypeJS, 23_488, "/static/results.js")
	// The eight emblems, catalog order = party order.
	for p := 0; p < PartyCount; p++ {
		add(EmblemID(p), TypeEmblem, emblemSizes[p], fmt.Sprintf("/emblems/%s.png", partyNames[p]))
	}
	// Tail resources (completing the 47 embedded objects).
	tails := []struct {
		id   string
		typ  string
		size int
	}{
		{"footer-js", TypeJS, 9_122}, {"social", TypeImage, 13_561},
		{"ad-1", TypeImage, 36_470}, {"ad-2", TypeImage, 24_998},
		{"tracker-js", TypeJS, 2_311}, {"consent-js", TypeJS, 6_084},
		{"badge", TypeImage, 5_693}, {"thumb-1", TypeImage, 18_842},
		{"thumb-2", TypeImage, 19_356}, {"thumb-3", TypeImage, 20_167},
		{"print-css", TypeCSS, 3_904}, {"feedback-js", TypeJS, 8_457},
		{"sprite", TypeImage, 44_209}, {"locale-js", TypeJS, 10_733},
		{"beacon", TypeImage, 842}, {"hero", TypeImage, 67_381},
		{"poll-archive-js", TypeJS, 16_903}, {"flag-strip", TypeImage, 27_540},
		{"privacy-css", TypeCSS, 1_731},
	}
	for _, m := range tails {
		add(m.id, m.typ, m.size, "/static/"+m.id)
	}

	s.byID = make(map[string]*Object, len(s.Objects))
	s.byPath = make(map[string]*Object, len(s.Objects))
	for i := range s.Objects {
		o := &s.Objects[i]
		if _, dup := s.byID[o.ID]; dup {
			panic("website: duplicate object id " + o.ID)
		}
		if _, dup := s.byPath[o.Path]; dup {
			panic("website: duplicate object path " + o.Path)
		}
		s.byID[o.ID] = o
		s.byPath[o.Path] = o
	}
	return s
}

// decoyGaps chain a decoy plan's embedded objects — small deterministic
// spacings in the same regime as the target site's mid-page gaps.
var decoyGaps = []time.Duration{
	3 * time.Millisecond, 11 * time.Millisecond, 2 * time.Millisecond,
	24 * time.Millisecond, 7 * time.Millisecond, 15 * time.Millisecond,
	5 * time.Millisecond, 9 * time.Millisecond,
}

// DecoySite builds the deterministic catalog of fleet decoy flow idx: a
// small page (base HTML plus a handful of embedded objects) whose total
// transfer stays well under the target site's 28 KB base page, so
// size-based target selection at the shared bottleneck has a real margin
// to clear. Catalogs vary deterministically with idx — no RNG — and every
// object size stays clear of the target catalog's identifying sizes.
func DecoySite(idx int) *Site {
	if idx < 0 {
		idx = 0
	}
	s := &Site{Host: fmt.Sprintf("decoy-%04d.test", idx)}
	add := func(id, typ string, size int, path string) {
		s.Objects = append(s.Objects, Object{ID: id, Path: path, Type: typ, Size: size})
	}
	// Base page: 2–6 KB, stepping deterministically with idx. The +1 keeps
	// every size odd-ish and off the target catalog's entries.
	base := 2048 + (idx*397)%4096 + 1
	add(BaseID, TypeHTML, base, "/")
	// 3–6 embedded objects totalling at most ~16 KB.
	n := 3 + idx%4
	kinds := []string{TypeJS, TypeCSS, TypeImage}
	for i := 0; i < n; i++ {
		size := 512 + ((idx*131+i*977)%3800 + 1)
		add(fmt.Sprintf("obj-%d", i), kinds[i%len(kinds)], size,
			fmt.Sprintf("/static/obj-%d", i))
	}
	s.byID = make(map[string]*Object, len(s.Objects))
	s.byPath = make(map[string]*Object, len(s.Objects))
	for i := range s.Objects {
		o := &s.Objects[i]
		s.byID[o.ID] = o
		s.byPath[o.Path] = o
	}
	return s
}

// SequentialPlan builds a generic request schedule covering the whole
// catalog in order: the base page, then each embedded object chained at
// small deterministic gaps once the base completes. It works for any
// catalog (fleet decoys use it); the target site keeps its Table II
// schedule via PlanFor.
func (s *Site) SequentialPlan() (*Plan, error) {
	if len(s.Objects) == 0 {
		return nil, fmt.Errorf("website: empty catalog")
	}
	plan := &Plan{}
	plan.Steps = append(plan.Steps, Step{ObjectID: s.Objects[0].ID})
	for i, o := range s.Objects[1:] {
		st := Step{ObjectID: o.ID, Gap: decoyGaps[i%len(decoyGaps)]}
		if i == 0 {
			st.TriggerDone = s.Objects[0].ID
		}
		plan.Steps = append(plan.Steps, st)
	}
	return plan, nil
}

// Object returns the catalog entry with the given id, or nil.
func (s *Site) Object(id string) *Object { return s.byID[id] }

// Lookup returns the catalog entry serving the given path, or nil.
func (s *Site) Lookup(path string) *Object { return s.byPath[path] }

// EmbeddedCount reports the number of embedded objects (excludes the base
// page); the paper's site embeds 47.
func (s *Site) EmbeddedCount() int { return len(s.Objects) - 1 }

// Body generates the deterministic response body for an object.
func (s *Site) Body(o *Object) []byte {
	b := make([]byte, o.Size)
	seed := byte(len(o.ID))
	for i := range b {
		b[i] = seed + byte(i*131)
	}
	return b
}

// Sizes maps every object id to its body size.
func (s *Site) Sizes() map[string]int {
	m := make(map[string]int, len(s.Objects))
	for _, o := range s.Objects {
		m[o.ID] = o.Size
	}
	return m
}

// SizeToIdentity returns the pre-compiled size→object-id map the paper's
// adversary carries (§V), covering every uniquely-sized object.
func (s *Site) SizeToIdentity() map[int]string {
	m := make(map[int]string, len(s.Objects))
	dup := make(map[int]bool)
	for _, o := range s.Objects {
		if _, seen := m[o.Size]; seen {
			dup[o.Size] = true
			continue
		}
		m[o.Size] = o.ID
	}
	for size := range dup {
		delete(m, size)
	}
	return m
}

// RandomPerm draws a user preference permutation over the parties.
func RandomPerm(rng *simtime.Rand) []int { return rng.Perm(PartyCount) }

// Plan is the browser's request schedule for one page load.
type Plan struct {
	Steps []Step
	// Perm is the user's preference permutation: Perm[i] is the party
	// (catalog index) displayed at rank i.
	Perm []int
	// RequestOrder, when non-nil, is the emblem request order when it
	// differs from the display order (the §VII randomization defense).
	RequestOrder []string
}

// Step schedules one request.
type Step struct {
	ObjectID string
	// TriggerDone, when non-empty, delays the step until that object's
	// response completes (browser dependency); otherwise the step chains
	// to the previous step's request issuance.
	TriggerDone string
	// Gap is the delay after the trigger event.
	Gap time.Duration
}

// Table II inter-request gaps for the emblem images: I1 fires 780 ms after
// the previous request; I2..I8 chain at sub-millisecond spacings.
var emblemGaps = [PartyCount]time.Duration{
	780 * time.Millisecond,
	400 * time.Microsecond,
	2 * time.Millisecond,
	300 * time.Microsecond,
	100 * time.Microsecond,
	300 * time.Microsecond,
	2 * time.Millisecond,
	500 * time.Microsecond,
}

// midGaps are the inter-request gaps for objects 7..21 (chained).
var midGaps = []time.Duration{
	160 * time.Millisecond, // object 7 follows the quiz HTML by 160 ms (Table II)
	3 * time.Millisecond, 40 * time.Millisecond, 1 * time.Millisecond,
	25 * time.Millisecond, 2 * time.Millisecond, 70 * time.Millisecond,
	5 * time.Millisecond, 12 * time.Millisecond, 800 * time.Microsecond,
	30 * time.Millisecond, 9 * time.Millisecond, 4 * time.Millisecond,
	55 * time.Millisecond, 15 * time.Millisecond,
}

// tailGaps schedule the remaining objects after the emblems.
var tailGaps = []time.Duration{
	26 * time.Millisecond, // object after I8 (Table II)
	6 * time.Millisecond, 90 * time.Millisecond, 2 * time.Millisecond,
	18 * time.Millisecond, 35 * time.Millisecond, 1 * time.Millisecond,
	48 * time.Millisecond, 3 * time.Millisecond, 11 * time.Millisecond,
	7 * time.Millisecond, 22 * time.Millisecond, 60 * time.Millisecond,
	2 * time.Millisecond, 14 * time.Millisecond, 5 * time.Millisecond,
	33 * time.Millisecond, 8 * time.Millisecond, 20 * time.Millisecond,
}

// PlanFor builds the request schedule for a user whose survey result
// orders the parties by perm (rank → party index).
func (s *Site) PlanFor(perm []int) (*Plan, error) {
	if len(perm) != PartyCount {
		return nil, fmt.Errorf("website: permutation must cover %d parties, got %d", PartyCount, len(perm))
	}
	seen := make(map[int]bool, PartyCount)
	for _, p := range perm {
		if p < 0 || p >= PartyCount || seen[p] {
			return nil, fmt.Errorf("website: invalid permutation %v", perm)
		}
		seen[p] = true
	}
	plan := &Plan{Perm: append([]int(nil), perm...)}
	add := func(st Step) { plan.Steps = append(plan.Steps, st) }

	add(Step{ObjectID: BaseID})
	// Head resources burst once the base page arrives.
	add(Step{ObjectID: "app-js", TriggerDone: BaseID, Gap: 1 * time.Millisecond})
	add(Step{ObjectID: "style-css", Gap: 500 * time.Microsecond})
	add(Step{ObjectID: "vendor-js", Gap: 700 * time.Microsecond})
	add(Step{ObjectID: "logo", Gap: 2 * time.Millisecond})
	// The quiz HTML follows 500 ms after the previous request (Table II).
	add(Step{ObjectID: TargetID, Gap: 500 * time.Millisecond})
	// Mid-page resources, chained.
	mids := []string{
		"analytics-js", "fonts-css", "banner", "icons", "share-js",
		"poll-css", "chart-js", "bg", "font-main", "font-bold",
		"avatar", "map-js", "county-css", "spinner", ResultsJSID,
	}
	for i, id := range mids {
		add(Step{ObjectID: id, Gap: midGaps[i]})
	}
	// Emblems: the results script runs once downloaded, then requests the
	// emblems in preference order at Table II spacings. The first emblem
	// request requires the script to have completed.
	for rank, party := range perm {
		st := Step{ObjectID: EmblemID(party), Gap: emblemGaps[rank]}
		if rank == 0 {
			st.TriggerDone = ResultsJSID
		}
		add(st)
	}
	// Tail resources.
	tails := []string{
		"footer-js", "social", "ad-1", "ad-2", "tracker-js", "consent-js",
		"badge", "thumb-1", "thumb-2", "thumb-3", "print-css",
		"feedback-js", "sprite", "locale-js", "beacon", "hero",
		"poll-archive-js", "flag-strip", "privacy-css",
	}
	for i, id := range tails {
		add(Step{ObjectID: id, Gap: tailGaps[i]})
	}
	if len(plan.Steps) != len(s.Objects) {
		return nil, fmt.Errorf("website: plan has %d steps for %d objects", len(plan.Steps), len(s.Objects))
	}
	return plan, nil
}

// PlanForShuffled is the §VII defense: the client requests the emblems in
// a random order unrelated to the display order, so the request sequence
// the adversary reconstructs no longer reveals the user's preferences.
// perm remains the (secret) display order; requestOrder is drawn from rng.
func (s *Site) PlanForShuffled(perm []int, rng *simtime.Rand) (*Plan, error) {
	plan, err := s.PlanFor(perm)
	if err != nil {
		return nil, err
	}
	// Re-map the emblem steps to a random request order, keeping every
	// other step (and the display-order ground truth in Perm) intact.
	shuffle := rng.Perm(PartyCount)
	idx := make([]int, 0, PartyCount)
	for i, st := range plan.Steps {
		if s.Object(st.ObjectID).Type == TypeEmblem {
			idx = append(idx, i)
		}
	}
	reqOrder := make([]string, PartyCount)
	for i, slot := range shuffle {
		reqOrder[i] = EmblemID(perm[slot])
	}
	for i, stepIdx := range idx {
		plan.Steps[stepIdx].ObjectID = reqOrder[i]
	}
	plan.RequestOrder = reqOrder
	return plan, nil
}

// EmblemRequestOrder returns the object ids of the emblems in the order
// the plan requests them (what the adversary can hope to reconstruct from
// traffic). Without the §VII defense this equals EmblemDisplayOrder.
func (p *Plan) EmblemRequestOrder() []string {
	if p.RequestOrder != nil {
		return append([]string(nil), p.RequestOrder...)
	}
	return p.EmblemDisplayOrder()
}

// EmblemDisplayOrder returns the ground-truth display order — the user's
// survey result the attack ultimately wants.
func (p *Plan) EmblemDisplayOrder() []string {
	ids := make([]string, 0, PartyCount)
	for _, rank := range p.Perm {
		ids = append(ids, EmblemID(rank))
	}
	return ids
}

// PartyName returns the display name for a party index.
func PartyName(p int) string { return partyNames[p] }
