package capture

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"h2privacy/internal/netsim"
	"h2privacy/internal/tcpsim"
)

// PacketRecord is one fully-logged packet (enable with EnablePacketLog).
type PacketRecord struct {
	Time   time.Duration
	Dir    netsim.Direction
	Seg    *tcpsim.Segment
	Action netsim.Action
}

// EnablePacketLog makes the monitor retain every observed packet so the
// trace can be exported (WritePcap). Off by default: a full page load is
// a few thousand packets and most callers only need record metadata.
func (m *Monitor) EnablePacketLog() { m.logPackets = true }

// Packets returns the retained packet log (empty unless EnablePacketLog
// was called before traffic flowed).
func (m *Monitor) Packets() []PacketRecord { return m.packets }

// Synthesized addressing for exported traces.
const (
	pcapMagic    = 0xa1b2c3d4
	linkEthernet = 1
	clientPort   = 49152
	serverPort   = 443
)

var (
	clientIP = [4]byte{10, 0, 0, 2}
	serverIP = [4]byte{10, 0, 0, 1}
	clientM  = [6]byte{0x02, 0, 0, 0, 0, 2}
	serverM  = [6]byte{0x02, 0, 0, 0, 0, 1}
)

// FlowID returns the canonical identifier of the (single) simulated flow,
// built from the same synthesized 5-tuple WritePcap stamps into exported
// packets. It is the shared join key across the three views of one
// connection: the pcap's addressing, the Chrome-trace metadata
// (core.NewTestbed stamps it via trace.Tracer.SetMeta) and every flowseq
// feature row's "flow" column.
func FlowID() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d-%d.%d.%d.%d:%d",
		clientIP[0], clientIP[1], clientIP[2], clientIP[3], clientPort,
		serverIP[0], serverIP[1], serverIP[2], serverIP[3], serverPort)
}

// FleetFlowID returns the canonical identifier of fleet member flow i:
// flow 0 — the target, the one a standalone trial simulates — keeps the
// exact FlowID 5-tuple, and each decoy gets a distinct synthesized client
// port, so feature rows and debug exports attribute per-flow at the
// shared bottleneck. Sort order over a fleet is lexicographic on this
// string (the collector's contract), not numeric on i.
func FleetFlowID(i int) string {
	return fmt.Sprintf("%d.%d.%d.%d:%d-%d.%d.%d.%d:%d",
		clientIP[0], clientIP[1], clientIP[2], clientIP[3], clientPort+i,
		serverIP[0], serverIP[1], serverIP[2], serverIP[3], serverPort)
}

// WritePcap serializes the packet log as a classic libpcap capture
// (Ethernet + IPv4 + TCP, checksums zeroed) that Wireshark and tshark can
// open — the artifact the paper's monitor produced. Only forwarded
// packets are written: dropped packets never crossed the tap's egress.
func WritePcap(w io.Writer, packets []PacketRecord) error {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], 2) // major
	binary.LittleEndian.PutUint16(hdr[6:8], 4) // minor
	binary.LittleEndian.PutUint32(hdr[16:20], 65535)
	binary.LittleEndian.PutUint32(hdr[20:24], linkEthernet)
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("capture: pcap header: %w", err)
	}
	for i := range packets {
		p := &packets[i]
		if p.Action != netsim.ActionForwarded {
			continue
		}
		frame := buildFrame(p)
		rec := make([]byte, 16)
		binary.LittleEndian.PutUint32(rec[0:4], uint32(p.Time/time.Second))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(p.Time%time.Second/time.Microsecond))
		binary.LittleEndian.PutUint32(rec[8:12], uint32(len(frame)))
		binary.LittleEndian.PutUint32(rec[12:16], uint32(len(frame)))
		if _, err := w.Write(rec); err != nil {
			return fmt.Errorf("capture: pcap record: %w", err)
		}
		if _, err := w.Write(frame); err != nil {
			return fmt.Errorf("capture: pcap frame: %w", err)
		}
	}
	return nil
}

// buildFrame synthesizes Ethernet/IPv4/TCP framing around the segment.
func buildFrame(p *PacketRecord) []byte {
	payload := p.Seg.Payload
	frame := make([]byte, 14+20+20+len(payload))

	// Ethernet.
	srcM, dstM := clientM, serverM
	srcIP, dstIP := clientIP, serverIP
	srcPort, dstPort := uint16(clientPort), uint16(serverPort)
	if p.Dir == netsim.ServerToClient {
		srcM, dstM = serverM, clientM
		srcIP, dstIP = serverIP, clientIP
		srcPort, dstPort = serverPort, clientPort
	}
	copy(frame[0:6], dstM[:])
	copy(frame[6:12], srcM[:])
	frame[12], frame[13] = 0x08, 0x00 // IPv4

	// IPv4 header.
	ip := frame[14:34]
	ip[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(ip[2:4], uint16(20+20+len(payload)))
	ip[8] = 64 // TTL
	ip[9] = 6  // TCP
	copy(ip[12:16], srcIP[:])
	copy(ip[16:20], dstIP[:])

	// TCP header.
	tcp := frame[34:54]
	binary.BigEndian.PutUint16(tcp[0:2], srcPort)
	binary.BigEndian.PutUint16(tcp[2:4], dstPort)
	binary.BigEndian.PutUint32(tcp[4:8], uint32(p.Seg.Seq))
	binary.BigEndian.PutUint32(tcp[8:12], uint32(p.Seg.Ack))
	tcp[12] = 5 << 4 // data offset
	var flags byte
	if p.Seg.Flags.Has(tcpsim.FlagSYN) {
		flags |= 0x02
	}
	if p.Seg.Flags.Has(tcpsim.FlagACK) {
		flags |= 0x10
	}
	if p.Seg.Flags.Has(tcpsim.FlagFIN) {
		flags |= 0x01
	}
	if p.Seg.Flags.Has(tcpsim.FlagRST) {
		flags |= 0x04
	}
	tcp[13] = flags
	wnd := p.Seg.Window
	if wnd > 65535 {
		wnd = 65535
	}
	binary.BigEndian.PutUint16(tcp[14:16], uint16(wnd))

	copy(frame[54:], payload)
	return frame
}
