package capture

import (
	"fmt"
	"testing"

	"h2privacy/internal/simtime"
)

// TestOverlappingDrainTaintStable replays the historical map-iteration
// bug shape through dirStream.drain: randomized overlapping out-of-order
// chunks with mixed taint flags, unlocked by one in-order fill. For each
// of 32 seeds the reassembly is repeated 5 times in-process; the
// reassembled byte count, the per-byte taint vector and the leftover
// out-of-order state must be identical every run — the taint of an
// overlapped byte is decided by whichever chunk supplies it first, so any
// map-order dependence diverges here.
func TestOverlappingDrainTaintStable(t *testing.T) {
	for seed := int64(0); seed < 32; seed++ {
		var want string
		for rep := 0; rep < 5; rep++ {
			rng := simtime.NewRand(seed)
			d := newDirStream()
			d.synSeen = true
			d.nextSeq = 0

			// Store 3–8 overlapping chunks, alternating taint by draw.
			nChunks := 3 + rng.Intn(6)
			for i := 0; i < nChunks; i++ {
				seq := uint64(100 + rng.Intn(400))
				ln := 50 + rng.Intn(300)
				d.ingest(seq, make([]byte, ln), rng.Bool(0.5))
			}
			// The in-order fill makes several stored chunks applicable at
			// once — the exact PR-shape that used to leak map order.
			fill := 100 + rng.Intn(400)
			d.ingest(0, make([]byte, fill), false)

			taint := make([]byte, len(d.taint))
			for i, tb := range d.taint {
				if tb {
					taint[i] = '1'
				} else {
					taint[i] = '0'
				}
			}
			got := fmt.Sprintf("buf=%d nextSeq=%d oooLeft=%d taint=%s",
				len(d.buf), d.nextSeq, len(d.ooo), taint)
			if rep == 0 {
				want = got
			} else if got != want {
				t.Fatalf("seed %d rep %d: reassembly diverged\n first: %s\n now:   %s", seed, rep, want, got)
			}
		}
	}
}
