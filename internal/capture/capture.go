// Package capture implements the adversary's traffic monitor (the tshark
// component of the paper's §V setup): a passive tap on the compromised
// gateway that reassembles each direction's TCP byte stream, parses TLS
// record headers (type and length — never payload), classifies
// client→server application records as GET requests by size (the paper's
// `ssl.record.content_type==23` filter), and logs per-packet metadata
// including retransmissions. Everything here uses only information a real
// on-path device has.
package capture

import (
	"slices"
	"time"

	"h2privacy/internal/check"
	"h2privacy/internal/flowseq"
	"h2privacy/internal/netsim"
	"h2privacy/internal/tcpsim"
	"h2privacy/internal/tlsrec"
	"h2privacy/internal/trace"
)

// GET classification gate: client→server application records whose
// on-stream size falls in this range are counted as GETs. HPACK-compressed
// request HEADERS records land in it; the client's WINDOW_UPDATE (42-byte
// record), SETTINGS ACK and RST_STREAM records fall below it.
const (
	getMinRecordLen = 50
	getMaxRecordLen = 260
)

// setupRecordSkip is how many leading client→server application-data
// records are connection setup rather than requests: the HTTP/2 preface
// and the client SETTINGS frame. A protocol-aware adversary discounts
// them when counting GETs.
const setupRecordSkip = 2

// GETClassifier classifies raw client→server segment payloads without
// reassembly — the middlebox's real-time path (the jitter processor must
// decide per packet). It greedily parses record headers from the segment
// start (records rarely straddle segments in this workload: the client
// seals each frame as one record) and falls back to a whole-payload size
// gate when the bytes do not parse as records.
type GETClassifier struct {
	seenAppData int
}

// Count returns how many GET-classified records the payload carries.
func (g *GETClassifier) Count(payload []byte) int {
	if len(payload) == 0 {
		return 0
	}
	n := 0
	rest := payload
	parsedAny := false
	for {
		hdr, ok := tlsrec.ParseHeader(rest)
		if !ok || tlsrec.HeaderSize+hdr.Length > len(rest) {
			break
		}
		parsedAny = true
		if hdr.Type == tlsrec.ContentApplicationData {
			g.seenAppData++
			wire := tlsrec.HeaderSize + hdr.Length
			if g.seenAppData > setupRecordSkip && wire >= getMinRecordLen && wire <= getMaxRecordLen {
				n++
			}
		}
		rest = rest[tlsrec.HeaderSize+hdr.Length:]
		if len(rest) == 0 {
			break
		}
	}
	if !parsedAny {
		// Unaligned continuation bytes: gate on the whole payload.
		g.seenAppData++
		if g.seenAppData > setupRecordSkip && len(payload) >= getMinRecordLen && len(payload) <= getMaxRecordLen {
			return 1
		}
	}
	return n
}

// RecordEvent is one parsed TLS record observed on the path.
type RecordEvent struct {
	// Time is when the packet completing the record crossed the tap.
	Time time.Duration
	Dir  netsim.Direction
	Type tlsrec.ContentType
	// WireLen is the record's on-stream size (header + sealed payload).
	WireLen int
	// PlainLen is the inferred plaintext length (sealed length minus the
	// constant AEAD overhead); zero for handshake records.
	PlainLen int
	// IsGET marks client→server records classified as GET requests.
	IsGET bool
	// IsControl marks client→server application records too small to be
	// GETs: WINDOW_UPDATE, SETTINGS ACK and RST_STREAM records. The
	// adaptive driver's clean-slate watchdog consumes these — during a
	// starvation window the client sends almost no flow-control updates,
	// so a burst of small control records is the browser resetting.
	IsControl bool
	// Tainted marks records whose bytes arrived (at least partly) via
	// TCP-retransmitted segments — tshark's tcp.analysis.retransmission.
	// The predictor excludes them: retransmitted bytes are replays of
	// traffic already accounted for, not fresh object data.
	Tainted bool
}

// PacketStats aggregates per-direction packet-level observations.
type PacketStats struct {
	Packets       int
	PayloadBytes  int64
	Retransmits   int // segments flagged as TCP retransmissions
	DroppedPolicy int // packets the adversary itself dropped
	DroppedOther  int
}

// Monitor is the passive tap. Install it on a netsim.Path with AddTap.
type Monitor struct {
	records      []RecordEvent
	stats        map[netsim.Direction]*PacketStats
	streams      map[netsim.Direction]*dirStream
	getCount     int
	c2sAppCount  int
	controlCount int
	lastS2CData  time.Duration
	anyS2CData   bool
	onGET        func(count int, ev RecordEvent)
	onControl    func(count int, ev RecordEvent)
	onTeardown   func(now time.Duration, dir netsim.Direction)
	logPackets   bool
	packets      []PacketRecord

	tr    *trace.Tracer
	ctGET *trace.Counter
	fl    *flowseq.Analyzer
}

var _ netsim.Tap = (*Monitor)(nil)

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{
		stats: map[netsim.Direction]*PacketStats{
			netsim.ClientToServer: {},
			netsim.ServerToClient: {},
		},
		streams: map[netsim.Direction]*dirStream{
			netsim.ClientToServer: newDirStream(),
			netsim.ServerToClient: newDirStream(),
		},
	}
}

// OnGET registers a callback fired for each newly counted GET (the attack
// driver's phase trigger).
func (m *Monitor) OnGET(fn func(count int, ev RecordEvent)) { m.onGET = fn }

// OnControl registers a callback fired for each client→server control
// record (small post-setup application record: WINDOW_UPDATE, RST_STREAM).
// This is the adaptive driver's RST feed.
func (m *Monitor) OnControl(fn func(count int, ev RecordEvent)) { m.onControl = fn }

// OnTeardown registers a callback fired when a TCP RST segment crosses the
// tap in either direction — the connection is being torn down abortively
// and the attack should degrade to passive observation.
func (m *Monitor) OnTeardown(fn func(now time.Duration, dir netsim.Direction)) { m.onTeardown = fn }

// SetTracer arms monitor-layer tracing: each GET-classified record becomes
// a trace event.
func (m *Monitor) SetTracer(tr *trace.Tracer) {
	m.tr = tr
	m.ctGET = tr.Counter(trace.LayerMonitor, "gets")
}

// SetFlows arms the flowseq record feed: every parsed record streams into
// the analyzer's wire-side burst tables and clean-slate span detector as
// it is observed. Nil (the default) keeps the tap feature-free at zero
// cost.
func (m *Monitor) SetFlows(fl *flowseq.Analyzer) { m.fl = fl }

// SetChecker arms reassembly invariant checks on both direction streams:
// taint arrays stay parallel to the byte buffer, the reassembled stream has
// no gaps, and parsed records exactly partition the appended bytes.
func (m *Monitor) SetChecker(ck *check.Checker) {
	m.streams[netsim.ClientToServer].ck = ck
	m.streams[netsim.ClientToServer].ckDir = check.DirC2S
	m.streams[netsim.ServerToClient].ck = ck
	m.streams[netsim.ServerToClient].ckDir = check.DirS2C
}

// Records returns all parsed record events in observation order.
func (m *Monitor) Records() []RecordEvent { return m.records }

// GETCount reports the GETs counted so far.
func (m *Monitor) GETCount() int { return m.getCount }

// ControlCount reports client→server control records counted so far.
func (m *Monitor) ControlCount() int { return m.controlCount }

// LastServerDataAt reports when the last substantial server→client
// payload packet was forwarded (not dropped) past the tap, and whether
// one has been seen at all. Control records arriving long after this are
// sent by a starved client — the reset-detection context.
func (m *Monitor) LastServerDataAt() (time.Duration, bool) { return m.lastS2CData, m.anyS2CData }

// Stats returns the per-direction packet counters.
func (m *Monitor) Stats(dir netsim.Direction) PacketStats { return *m.stats[dir] }

// TotalRetransmits reports retransmitted segments seen in both directions.
func (m *Monitor) TotalRetransmits() int {
	return m.stats[netsim.ClientToServer].Retransmits + m.stats[netsim.ServerToClient].Retransmits
}

// Observe implements netsim.Tap.
func (m *Monitor) Observe(ev netsim.PacketEvent) {
	seg, ok := ev.Pkt.Payload.(*tcpsim.Segment)
	if !ok {
		return
	}
	st := m.stats[ev.Pkt.Dir]
	st.Packets++
	st.PayloadBytes += int64(len(seg.Payload))
	if seg.Retransmit {
		st.Retransmits++
	}
	if m.logPackets {
		// Deep-copy the segment: with trial pooling armed, the original is
		// zeroed and reused as soon as its packet's last delivery fires,
		// while the packet log must outlive the whole trial.
		cp := *seg
		cp.Payload = append([]byte(nil), seg.Payload...)
		m.packets = append(m.packets, PacketRecord{
			Time: ev.Now, Dir: ev.Pkt.Dir, Seg: &cp, Action: ev.Action,
		})
	}
	switch ev.Action {
	case netsim.ActionDroppedPolicy:
		st.DroppedPolicy++
		return // never reaches the receiver: exclude from reassembly
	case netsim.ActionDroppedLoss, netsim.ActionDroppedQueue, netsim.ActionDroppedFault:
		st.DroppedOther++
		return
	}
	if seg.Flags.Has(tcpsim.FlagRST) && m.onTeardown != nil {
		m.onTeardown(ev.Now, ev.Pkt.Dir)
	}
	if ev.Pkt.Dir == netsim.ServerToClient && len(seg.Payload) >= 100 {
		m.lastS2CData = ev.Now
		m.anyS2CData = true
	}
	// Reassemble the forwarded byte stream and parse record headers.
	ds := m.streams[ev.Pkt.Dir]
	for _, rec := range ds.push(seg) {
		rec.Time = ev.Now
		rec.Dir = ev.Pkt.Dir
		if rec.Dir == netsim.ClientToServer && rec.Type == tlsrec.ContentApplicationData {
			m.c2sAppCount++
			if m.c2sAppCount > setupRecordSkip {
				switch {
				case rec.WireLen >= getMinRecordLen && rec.WireLen <= getMaxRecordLen:
					rec.IsGET = true
					m.getCount++
				case rec.WireLen < getMinRecordLen:
					rec.IsControl = true
					m.controlCount++
				}
			}
		}
		m.records = append(m.records, rec)
		if m.fl.Enabled() {
			m.fl.Record(rec.Dir == netsim.ClientToServer, rec.WireLen, rec.PlainLen,
				rec.IsGET, rec.IsControl, rec.Tainted)
		}
		if rec.IsGET {
			m.ctGET.Inc()
			if m.tr.Enabled() {
				m.tr.Emit(trace.LayerMonitor, "get",
					trace.Num("count", int64(m.getCount)), trace.Num("wire_len", int64(rec.WireLen)))
			}
			if m.onGET != nil {
				m.onGET(m.getCount, rec)
			}
		}
		if rec.IsControl && m.onControl != nil {
			m.onControl(m.controlCount, rec)
		}
	}
}

// dirStream reassembles one direction's TCP stream (sequence-based, with
// out-of-order buffering and retransmission dedup) and incrementally cuts
// TLS records out of it, tracking per-byte retransmission taint.
type dirStream struct {
	synSeen bool
	nextSeq uint64
	ooo     map[uint64]oooChunk
	buf     []byte // reassembled record bytes; [off:] is still unparsed
	taint   []bool // parallel to buf: byte arrived via a retransmission
	off     int    // parsed prefix of buf/taint, reclaimed on append

	evs []RecordEvent // parse() scratch, reused per push

	ck    *check.Checker
	ckDir uint8
}

type oooChunk struct {
	data    []byte
	tainted bool
}

func newDirStream() *dirStream {
	return &dirStream{ooo: make(map[uint64]oooChunk)}
}

// push ingests a segment and returns any records completed by it.
func (d *dirStream) push(seg *tcpsim.Segment) []RecordEvent {
	if seg.Flags.Has(tcpsim.FlagSYN) {
		d.synSeen = true
		d.nextSeq = seg.Seq + 1
		return nil
	}
	if !d.synSeen || len(seg.Payload) == 0 {
		return nil
	}
	d.ingest(seg.Seq, seg.Payload, seg.Retransmit)
	return d.parse()
}

func (d *dirStream) ingest(seq uint64, payload []byte, tainted bool) {
	end := seq + uint64(len(payload))
	switch {
	case end <= d.nextSeq:
		return // pure duplicate of delivered bytes
	case seq <= d.nextSeq:
		fresh := payload[d.nextSeq-seq:]
		d.append(fresh, tainted)
		d.drain()
	default:
		if _, ok := d.ooo[seq]; !ok {
			cp := make([]byte, len(payload))
			copy(cp, payload)
			d.ooo[seq] = oooChunk{data: cp, tainted: tainted}
		}
	}
}

func (d *dirStream) append(fresh []byte, tainted bool) {
	// Reclaim the parsed prefix first: reslicing forward in parse() would
	// strand the consumed capacity and reallocate every buffer cycle.
	if d.off > 0 {
		n := copy(d.buf, d.buf[d.off:])
		d.buf = d.buf[:n]
		copy(d.taint, d.taint[d.off:])
		d.taint = d.taint[:n]
		d.off = 0
	}
	d.buf = append(d.buf, fresh...)
	// Bulk-extend the taint array instead of one append per byte; recycled
	// capacity may hold stale flags, so every new slot is set explicitly.
	old := len(d.taint)
	d.taint = slices.Grow(d.taint, len(fresh))[:old+len(fresh)]
	for i := old; i < len(d.taint); i++ {
		d.taint[i] = tainted
	}
	d.nextSeq += uint64(len(fresh))
	if d.ck.Enabled() {
		d.ck.CaptureAppend(d.ckDir, len(fresh), len(d.buf)-d.off, len(d.taint)-d.off, d.nextSeq)
	}
}

func (d *dirStream) drain() {
	// Apply stored chunks lowest-seq first. When one in-order fill makes
	// several overlapping out-of-order chunks applicable at once, the chunk
	// that supplies an overlapped byte decides its taint flag — so the
	// application order must not depend on map iteration order, or two
	// runs of the same trial can taint the same record differently and the
	// adversary's record-driven decisions diverge.
	for len(d.ooo) > 0 {
		var low uint64
		found := false
		for seq := range d.ooo {
			if !found || seq < low {
				low, found = seq, true
			}
		}
		if low > d.nextSeq {
			return // gap before the lowest chunk: nothing applicable
		}
		chunk := d.ooo[low]
		delete(d.ooo, low)
		if end := low + uint64(len(chunk.data)); end > d.nextSeq {
			d.append(chunk.data[d.nextSeq-low:], chunk.tainted)
		}
	}
}

// parse cuts complete TLS records off the front of buf. The returned slice
// is scratch reused by the next push; the caller consumes it synchronously.
func (d *dirStream) parse() []RecordEvent {
	out := d.evs[:0]
	for {
		rest := d.buf[d.off:]
		hdr, ok := tlsrec.ParseHeader(rest)
		if !ok {
			break
		}
		total := tlsrec.HeaderSize + hdr.Length
		if len(rest) < total {
			break
		}
		plain := 0
		if hdr.Type == tlsrec.ContentApplicationData && hdr.Length >= tlsrec.SealOverhead {
			plain = hdr.Length - tlsrec.SealOverhead
		}
		tainted := false
		for _, tb := range d.taint[d.off : d.off+total] {
			if tb {
				tainted = true
				break
			}
		}
		out = append(out, RecordEvent{
			Type:     hdr.Type,
			WireLen:  total,
			PlainLen: plain,
			Tainted:  tainted,
		})
		d.off += total
		if d.ck.Enabled() {
			d.ck.CaptureRecord(d.ckDir, total, len(d.buf)-d.off)
		}
	}
	d.evs = out
	return out
}
