package capture

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
	"testing"
	"time"

	"h2privacy/internal/netsim"
	"h2privacy/internal/tcpsim"
	"h2privacy/internal/trace"
)

// TestFlowIDJoinsExportedViews pins FlowID() as the shared join key across
// the three views of the simulated connection: the 5-tuple WritePcap
// synthesizes into exported packets, the "flow" metadata core.NewTestbed
// stamps into the Chrome trace's otherData, and (by construction) every
// flowseq feature row's flow column. If the synthesized addressing ever
// drifts from the string, joining a feature CSV against a pcap in
// Wireshark silently stops matching — so the test rebuilds the ID from
// the exported packet bytes themselves.
func TestFlowIDJoinsExportedViews(t *testing.T) {
	recs := []PacketRecord{
		{Time: time.Second, Dir: netsim.ClientToServer, Action: netsim.ActionForwarded,
			Seg: &tcpsim.Segment{Flags: tcpsim.FlagACK, Seq: 1, Ack: 1, Payload: []byte("req")}},
	}
	var buf bytes.Buffer
	if err := WritePcap(&buf, recs); err != nil {
		t.Fatal(err)
	}
	// First record's frame: 24-byte global header + 16-byte record header.
	frame := buf.Bytes()[24+16:]
	// Ethernet is 14 bytes; IPv4 src/dst live at IP header offsets 12/16,
	// TCP ports at the first 4 bytes after the 20-byte IP header.
	src := frame[26:30]
	dst := frame[30:34]
	srcPort := binary.BigEndian.Uint16(frame[34:36])
	dstPort := binary.BigEndian.Uint16(frame[36:38])
	fromWire := fmt.Sprintf("%d.%d.%d.%d:%d-%d.%d.%d.%d:%d",
		src[0], src[1], src[2], src[3], srcPort,
		dst[0], dst[1], dst[2], dst[3], dstPort)
	if fromWire != FlowID() {
		t.Fatalf("pcap addressing %q != FlowID() %q", fromWire, FlowID())
	}

	// The Chrome-trace view: the testbed stamps the same ID into the
	// trace's otherData via SetMeta("flow", capture.FlowID()).
	tr := trace.New(nil, trace.Config{})
	tr.SetMeta("flow", FlowID())
	var chrome bytes.Buffer
	if err := tr.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%q:%q", "flow", FlowID())
	if !strings.Contains(chrome.String(), want) {
		t.Fatalf("Chrome trace otherData missing %s:\n%s", want, chrome.String())
	}
}
