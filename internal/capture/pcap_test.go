package capture

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"h2privacy/internal/netsim"
	"h2privacy/internal/tcpsim"
)

func TestPacketLogDisabledByDefault(t *testing.T) {
	m := NewMonitor()
	next := syn(m, netsim.ClientToServer)
	feed(m, netsim.ClientToServer, time.Millisecond, seg(next, []byte{1, 2, 3}, false))
	if len(m.Packets()) != 0 {
		t.Fatal("packets retained without EnablePacketLog")
	}
}

func TestWritePcapRoundTrip(t *testing.T) {
	m := NewMonitor()
	m.EnablePacketLog()
	next := syn(m, netsim.ClientToServer)
	payload := []byte("GET-ish bytes")
	feed(m, netsim.ClientToServer, 1500*time.Millisecond, seg(next, payload, false))
	// A dropped packet must not be exported.
	m.Observe(netsim.PacketEvent{
		Now:    2 * time.Second,
		Pkt:    &netsim.Packet{Dir: netsim.ServerToClient, Size: 100, Payload: seg(1, []byte("x"), false)},
		Action: netsim.ActionDroppedPolicy,
	})

	var buf bytes.Buffer
	if err := WritePcap(&buf, m.Packets()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if len(b) < 24 {
		t.Fatalf("pcap too short: %d", len(b))
	}
	if binary.LittleEndian.Uint32(b[0:4]) != pcapMagic {
		t.Fatalf("bad magic %#x", b[0:4])
	}
	if binary.LittleEndian.Uint32(b[20:24]) != linkEthernet {
		t.Fatal("bad link type")
	}
	// Walk the records: SYN (no payload) + data packet = 2 frames.
	off := 24
	frames := 0
	for off < len(b) {
		if off+16 > len(b) {
			t.Fatalf("truncated record header at %d", off)
		}
		incl := int(binary.LittleEndian.Uint32(b[off+8 : off+12]))
		orig := int(binary.LittleEndian.Uint32(b[off+12 : off+16]))
		if incl != orig {
			t.Fatalf("snap mismatch: %d vs %d", incl, orig)
		}
		frame := b[off+16 : off+16+incl]
		if len(frame) < 54 {
			t.Fatalf("frame %d too short: %d", frames, len(frame))
		}
		if frame[12] != 0x08 || frame[13] != 0x00 {
			t.Fatal("not IPv4")
		}
		if frame[14+9] != 6 {
			t.Fatal("not TCP")
		}
		ipLen := int(binary.BigEndian.Uint16(frame[14+2 : 14+4]))
		if ipLen != len(frame)-14 {
			t.Fatalf("IP total length %d, frame payload %d", ipLen, len(frame)-14)
		}
		frames++
		off += 16 + incl
	}
	if frames != 2 {
		t.Fatalf("exported %d frames, want 2 (drop excluded)", frames)
	}
	// The data frame's TCP payload is intact.
	lastFrame := b[len(b)-len(payload):]
	if !bytes.Equal(lastFrame, payload) {
		t.Fatalf("payload corrupted: %q", lastFrame)
	}
}

func TestWritePcapDirectionAddressing(t *testing.T) {
	recs := []PacketRecord{
		{Time: time.Second, Dir: netsim.ClientToServer, Action: netsim.ActionForwarded,
			Seg: &tcpsim.Segment{Flags: tcpsim.FlagACK, Seq: 7, Ack: 9, Payload: []byte("req")}},
		{Time: 2 * time.Second, Dir: netsim.ServerToClient, Action: netsim.ActionForwarded,
			Seg: &tcpsim.Segment{Flags: tcpsim.FlagACK | tcpsim.FlagFIN, Seq: 9, Ack: 10, Payload: []byte("resp")}},
	}
	var buf bytes.Buffer
	if err := WritePcap(&buf, recs); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// First frame: client → server.
	f1 := b[24+16:]
	srcPort := binary.BigEndian.Uint16(f1[34:36])
	dstPort := binary.BigEndian.Uint16(f1[36:38])
	if srcPort != clientPort || dstPort != serverPort {
		t.Fatalf("c2s ports %d→%d", srcPort, dstPort)
	}
	if binary.BigEndian.Uint32(f1[38:42]) != 7 {
		t.Fatal("seq not encoded")
	}
	// Second frame: server → client with FIN flag.
	off := 24 + 16 + (14 + 20 + 20 + 3)
	f2 := b[off+16:]
	if binary.BigEndian.Uint16(f2[34:36]) != serverPort {
		t.Fatal("s2c source port wrong")
	}
	if f2[34+13]&0x01 == 0 {
		t.Fatal("FIN flag lost")
	}
}
