package capture

import (
	"testing"
	"testing/quick"
	"time"

	"h2privacy/internal/netsim"
	"h2privacy/internal/tcpsim"
	"h2privacy/internal/tlsrec"
)

// record builds a fake sealed record of the given type and payload size.
func record(ct tlsrec.ContentType, plainLen int) []byte {
	b := make([]byte, tlsrec.HeaderSize+8+plainLen+tlsrec.TagSize)
	b[0] = byte(ct)
	b[1], b[2] = 0x03, 0x03
	n := 8 + plainLen + tlsrec.TagSize
	b[3], b[4] = byte(n>>8), byte(n)
	return b
}

// seg wraps payload bytes into a segment at the given sequence.
func seg(seqNo uint64, payload []byte, retransmit bool) *tcpsim.Segment {
	return &tcpsim.Segment{Flags: tcpsim.FlagACK, Seq: seqNo, Payload: payload, Retransmit: retransmit}
}

// feed pushes a segment through the monitor as a forwarded packet.
func feed(m *Monitor, dir netsim.Direction, at time.Duration, s *tcpsim.Segment) {
	m.Observe(netsim.PacketEvent{
		Now:    at,
		Pkt:    &netsim.Packet{Dir: dir, Size: s.WireSize(), Payload: s},
		Action: netsim.ActionForwarded,
	})
}

func syn(m *Monitor, dir netsim.Direction) uint64 {
	s := &tcpsim.Segment{Flags: tcpsim.FlagSYN, Seq: 1000}
	feed(m, dir, 0, s)
	return 1001
}

func TestMonitorParsesRecords(t *testing.T) {
	m := NewMonitor()
	next := syn(m, netsim.ServerToClient)
	r1 := record(tlsrec.ContentHandshake, 33)
	r2 := record(tlsrec.ContentApplicationData, 1209)
	feed(m, netsim.ServerToClient, time.Millisecond, seg(next, append(r1, r2...), false))
	recs := m.Records()
	if len(recs) != 2 {
		t.Fatalf("parsed %d records, want 2", len(recs))
	}
	if recs[0].Type != tlsrec.ContentHandshake {
		t.Fatalf("first record type %v", recs[0].Type)
	}
	if recs[1].Type != tlsrec.ContentApplicationData || recs[1].PlainLen != 1209 {
		t.Fatalf("second record = %+v", recs[1])
	}
}

func TestMonitorReassemblesOutOfOrder(t *testing.T) {
	m := NewMonitor()
	next := syn(m, netsim.ServerToClient)
	wire := record(tlsrec.ContentApplicationData, 2000)
	half := len(wire) / 2
	// Deliver second half first.
	feed(m, netsim.ServerToClient, 1*time.Millisecond, seg(next+uint64(half), wire[half:], false))
	if len(m.Records()) != 0 {
		t.Fatal("record completed from out-of-order fragment alone")
	}
	feed(m, netsim.ServerToClient, 2*time.Millisecond, seg(next, wire[:half], false))
	if len(m.Records()) != 1 {
		t.Fatalf("parsed %d records after reassembly", len(m.Records()))
	}
}

func TestMonitorDedupsRetransmissions(t *testing.T) {
	m := NewMonitor()
	next := syn(m, netsim.ServerToClient)
	wire := record(tlsrec.ContentApplicationData, 500)
	feed(m, netsim.ServerToClient, 1*time.Millisecond, seg(next, wire, false))
	feed(m, netsim.ServerToClient, 2*time.Millisecond, seg(next, wire, true)) // dup
	if len(m.Records()) != 1 {
		t.Fatalf("parsed %d records, want 1 (dedup)", len(m.Records()))
	}
	if got := m.Stats(netsim.ServerToClient).Retransmits; got != 1 {
		t.Fatalf("retransmit count %d", got)
	}
}

func TestMonitorTaintsRetransmittedBytes(t *testing.T) {
	m := NewMonitor()
	next := syn(m, netsim.ServerToClient)
	wire := record(tlsrec.ContentApplicationData, 900)
	half := len(wire) / 2
	feed(m, netsim.ServerToClient, 1*time.Millisecond, seg(next, wire[:half], false))
	// The tail arrives only via a retransmission.
	feed(m, netsim.ServerToClient, 5*time.Millisecond, seg(next+uint64(half), wire[half:], true))
	recs := m.Records()
	if len(recs) != 1 || !recs[0].Tainted {
		t.Fatalf("records = %+v, want one tainted", recs)
	}
}

func TestMonitorCountsGETs(t *testing.T) {
	m := NewMonitor()
	var gets []int
	m.OnGET(func(count int, ev RecordEvent) { gets = append(gets, count) })
	next := syn(m, netsim.ClientToServer)
	// Preface + SETTINGS (setup records, skipped), then three GETs.
	wire := append(record(tlsrec.ContentApplicationData, 24), record(tlsrec.ContentApplicationData, 33)...)
	for i := 0; i < 3; i++ {
		wire = append(wire, record(tlsrec.ContentApplicationData, 40)...)
	}
	// And a WINDOW_UPDATE-sized record that must not count.
	wire = append(wire, record(tlsrec.ContentApplicationData, 13)...)
	feed(m, netsim.ClientToServer, time.Millisecond, seg(next, wire, false))
	if m.GETCount() != 3 {
		t.Fatalf("GET count = %d, want 3", m.GETCount())
	}
	if len(gets) != 3 || gets[2] != 3 {
		t.Fatalf("callbacks = %v", gets)
	}
}

func TestMonitorIgnoresDroppedPackets(t *testing.T) {
	m := NewMonitor()
	next := syn(m, netsim.ServerToClient)
	wire := record(tlsrec.ContentApplicationData, 700)
	m.Observe(netsim.PacketEvent{
		Now:    time.Millisecond,
		Pkt:    &netsim.Packet{Dir: netsim.ServerToClient, Size: 100, Payload: seg(next, wire, false)},
		Action: netsim.ActionDroppedPolicy,
	})
	if len(m.Records()) != 0 {
		t.Fatal("dropped packet reached reassembly")
	}
	if m.Stats(netsim.ServerToClient).DroppedPolicy != 1 {
		t.Fatal("policy drop not counted")
	}
}

func TestGETClassifier(t *testing.T) {
	var g GETClassifier
	// Setup records are skipped.
	if n := g.Count(record(tlsrec.ContentApplicationData, 24)); n != 0 {
		t.Fatalf("preface counted: %d", n)
	}
	if n := g.Count(record(tlsrec.ContentApplicationData, 33)); n != 0 {
		t.Fatalf("settings counted: %d", n)
	}
	// A GET-sized record counts.
	if n := g.Count(record(tlsrec.ContentApplicationData, 45)); n != 1 {
		t.Fatalf("GET record = %d, want 1", n)
	}
	// Two coalesced GETs count as two.
	two := append(record(tlsrec.ContentApplicationData, 45), record(tlsrec.ContentApplicationData, 50)...)
	if n := g.Count(two); n != 2 {
		t.Fatalf("coalesced GETs = %d, want 2", n)
	}
	// A WINDOW_UPDATE-sized record does not.
	if n := g.Count(record(tlsrec.ContentApplicationData, 13)); n != 0 {
		t.Fatalf("window update counted: %d", n)
	}
	// Mid-record continuation bytes (no parseable header at offset 0)
	// fall back to the whole-payload size gate.
	var g2 GETClassifier
	g2.seenAppData = 5
	frag := func(n int) []byte {
		b := make([]byte, n)
		b[0] = 0xff // implausible record type with a huge length field
		b[3] = 0xff
		b[4] = 0xff
		return b
	}
	if n := g2.Count(frag(100)); n != 1 {
		t.Fatalf("fallback gate = %d, want 1", n)
	}
	if n := g2.Count(frag(1400)); n != 0 {
		t.Fatalf("large continuation = %d, want 0", n)
	}
}

// Property: for any split of a record byte stream into segments delivered
// in order, the monitor parses exactly the records sent.
func TestMonitorFragmentationProperty(t *testing.T) {
	f := func(sizes []uint16, cuts []uint8) bool {
		m := NewMonitor()
		next := syn(m, netsim.ServerToClient)
		var wire []byte
		want := 0
		for _, s := range sizes {
			if len(wire) > 1<<16 {
				break
			}
			wire = append(wire, record(tlsrec.ContentApplicationData, int(s%4000))...)
			want++
		}
		if len(wire) == 0 {
			return true
		}
		pos := 0
		seqNo := next
		for _, c := range cuts {
			n := int(c)%1400 + 1
			if pos+n > len(wire) {
				break
			}
			feed(m, netsim.ServerToClient, time.Duration(pos)*time.Microsecond, seg(seqNo, wire[pos:pos+n], false))
			pos += n
			seqNo += uint64(n)
		}
		if pos < len(wire) {
			feed(m, netsim.ServerToClient, time.Duration(pos)*time.Microsecond, seg(seqNo, wire[pos:], false))
		}
		return len(m.Records()) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestReassemblyTaintDeterministic pins the drain order of the out-of-order
// buffer. When one in-order fill makes two overlapping stored chunks
// applicable at once, the chunk applied first decides the taint of the
// overlap; lowest-seq-first keeps that independent of map iteration order.
// The old map-range drain tainted the same bytes differently run to run,
// which rippled through record tainting into the adversary's decisions and
// broke same-seed byte-identity across processes.
func TestReassemblyTaintDeterministic(t *testing.T) {
	for i := 0; i < 200; i++ {
		d := newDirStream()
		d.ingest(150, make([]byte, 100), true) // retransmit, lands out of order
		d.ingest(200, make([]byte, 20), false) // clean, overlaps the tail above
		d.ingest(0, make([]byte, 210), false)  // fill: both chunks now applicable
		if len(d.taint) != 250 {
			t.Fatalf("iter %d: reassembled %d bytes, want 250", i, len(d.taint))
		}
		for pos, tb := range d.taint {
			if want := pos >= 210; tb != want {
				t.Fatalf("iter %d: taint[%d] = %v, want %v (drain order leaked map order)", i, pos, tb, want)
			}
		}
		if len(d.ooo) != 0 {
			t.Fatalf("iter %d: %d chunks left in ooo buffer", i, len(d.ooo))
		}
	}
}
