package experiment

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"h2privacy/internal/adversary"
	"h2privacy/internal/core"
	"h2privacy/internal/flowseq"
	"h2privacy/internal/obs"
	"h2privacy/internal/perf"
)

// featureSweep runs a full-attack sweep with flowseq feature extraction
// armed at the given worker count and returns the collector plus the
// registry the flow_* families were published into.
func featureSweep(t *testing.T, workers, trials int) (*flowseq.Collector, *obs.Registry) {
	t.Helper()
	fcol := flowseq.NewCollector()
	reg := obs.NewRegistry()
	fcol.PublishTo(reg)
	opts := Options{Trials: trials, BaseSeed: 3, Workers: workers, Metrics: reg, Features: fcol}
	plan := adversary.DefaultPlan()
	if _, err := opts.Sweep(trials, func(tr int) core.TrialConfig {
		return core.TrialConfig{Seed: opts.BaseSeed + int64(tr), Attack: &plan}
	}); err != nil {
		t.Fatal(err)
	}
	return fcol, reg
}

// TestFeatureExportByteIdenticalAcrossWorkers pins the determinism half of
// the flowseq contract at the sweep level: the CSV and JSONL feature
// exports, and the registry snapshot carrying the flow_* families, must be
// byte-identical whether the sweep ran sequentially or on a 4-worker pool.
func TestFeatureExportByteIdenticalAcrossWorkers(t *testing.T) {
	type snap struct {
		csv, jsonl, metrics []byte
	}
	take := func(workers int) snap {
		fcol, reg := featureSweep(t, workers, 4)
		var csv, jsonl bytes.Buffer
		if err := fcol.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		if err := fcol.WriteJSONL(&jsonl); err != nil {
			t.Fatal(err)
		}
		var metrics bytes.Buffer
		if err := reg.WritePrometheus(&metrics); err != nil {
			t.Fatal(err)
		}
		return snap{csv.Bytes(), jsonl.Bytes(), metrics.Bytes()}
	}
	seq, par := take(1), take(4)
	if !bytes.Equal(seq.csv, par.csv) {
		t.Errorf("feature CSV differs between workers=1 and workers=4:\n--- seq ---\n%s\n--- par ---\n%s", seq.csv, par.csv)
	}
	if !bytes.Equal(seq.jsonl, par.jsonl) {
		t.Errorf("feature JSONL differs between workers=1 and workers=4:\n--- seq ---\n%s\n--- par ---\n%s", seq.jsonl, par.jsonl)
	}
	if !bytes.Equal(seq.metrics, par.metrics) {
		t.Errorf("flow_* exposition differs between workers=1 and workers=4:\n--- seq ---\n%s\n--- par ---\n%s", seq.metrics, par.metrics)
	}
	// The run must have produced real rows, or the equality above is vacuous.
	if !bytes.Contains(seq.csv, []byte("serialized")) && !bytes.Contains(seq.csv, []byte("multiplexed")) {
		t.Fatalf("feature CSV carries no classified streams:\n%s", seq.csv)
	}
}

// TestFlowScrapeDuringSweep scrapes /metrics and /debug/flows concurrently
// with a 4-worker sweep feeding a shared flowseq collector — the live
// observability path for feature extraction, raced under -race in CI.
// Every mid-sweep exposition must parse under the golden linter (the
// flow_* families included), and /debug/flows must serve burst tables.
func TestFlowScrapeDuringSweep(t *testing.T) {
	fcol := flowseq.NewCollector()
	reg := obs.NewRegistry()
	fcol.PublishTo(reg)
	pcol := perf.NewCollector()
	pcol.PublishTo(reg)
	ds := &obs.DebugServer{Registry: reg, Flows: fcol}
	srv := httptest.NewServer(ds.Handler())
	defer srv.Close()

	stop := make(chan struct{})
	scrapes := make(chan int, 1)
	go func() {
		n := 0
		for {
			select {
			case <-stop:
				scrapes <- n
				return
			default:
			}
			resp, err := http.Get(srv.URL + "/metrics")
			if err != nil {
				continue
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				continue
			}
			if _, err := obs.LintExposition(body); err != nil {
				t.Errorf("mid-sweep exposition rejected: %v", err)
				scrapes <- n
				return
			}
			if !strings.Contains(string(body), "flow_records_observed_total") {
				t.Errorf("mid-sweep exposition missing flow_* families:\n%s", body)
				scrapes <- n
				return
			}
			if resp, err := http.Get(srv.URL + "/debug/flows"); err == nil {
				fb, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("/debug/flows = %d %q", resp.StatusCode, fb)
					scrapes <- n
					return
				}
			}
			n++
		}
	}()

	opts := Options{Trials: 8, BaseSeed: 3, Workers: 4, Metrics: reg, Features: fcol, Perf: pcol}
	plan := adversary.DefaultPlan()
	if _, err := opts.Sweep(opts.Trials, func(tr int) core.TrialConfig {
		return core.TrialConfig{Seed: opts.BaseSeed + int64(tr), Attack: &plan}
	}); err != nil {
		t.Fatal(err)
	}
	close(stop)
	if n := <-scrapes; n == 0 {
		t.Fatal("scraper never completed a scrape during the sweep")
	}

	// After the sweep the burst tables must actually be live on the wire.
	resp, err := http.Get(srv.URL + "/debug/flows")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "burst") {
		t.Fatalf("/debug/flows after sweep = %d, want burst tables:\n%s", resp.StatusCode, body)
	}
}
