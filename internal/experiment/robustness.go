package experiment

import (
	"fmt"

	"h2privacy/internal/adversary"
	"h2privacy/internal/core"
	"h2privacy/internal/metrics"
	"h2privacy/internal/netsim"
	"h2privacy/internal/website"
)

// robustnessTrialCap bounds the per-cell trial count: the table runs
// 2 × (1 + |scenarios|) sweeps, so the default 100 trials would be ~1400
// page loads.
const robustnessTrialCap = 40

// robustnessScenarios lists the table's rows: the clean path first, then
// every catalog scenario in name order.
func robustnessScenarios() []string {
	return append([]string{"none"}, netsim.ScenarioNames()...)
}

// Robustness measures what the fault layer does to the §V attack and what
// the closed-loop driver buys back: for every fault scenario it runs the
// open-loop (paper) driver and the adaptive driver as a paired sweep —
// same seeds, same faults, same volunteer — and tabulates clean-slate
// rate (reset observed → target re-requested on a clean path), HTML
// identification, retries used, and broken loads. Runs on the parallel
// sweep engine: byte-identical at any worker count.
func Robustness(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	trials := opts.Trials
	if trials > robustnessTrialCap {
		trials = robustnessTrialCap
	}
	openPlan := adversary.DefaultPlan()
	adaptPlan := adversary.DefaultPlan()
	adaptPlan.Adaptive = true

	rep := &Report{
		ID:    "robustness",
		Title: "Fault scenarios: open-loop vs adaptive attack driver",
		Header: []string{"scenario", "clean-slate o/a (%)", "html o/a (%)",
			"degraded o/a (%)", "broken o/a (%)", "avg attempts a"},
	}
	for v, name := range robustnessScenarios() {
		scenario := name
		if scenario == "none" {
			scenario = ""
		}
		openRes, adaptRes, err := opts.SweepPaired(trials, func(t int) (core.TrialConfig, core.TrialConfig) {
			seed := seedFor(opts.BaseSeed, v, trials, t)
			return core.TrialConfig{Seed: seed, Attack: &openPlan, Scenario: scenario},
				core.TrialConfig{Seed: seed, Attack: &adaptPlan, Scenario: scenario}
		})
		if err != nil {
			return nil, fmt.Errorf("robustness %s: %w", name, err)
		}
		var clean, html, degraded, broken [2]metrics.Counter
		var attempts int
		for arm, results := range [2][]*core.TrialResult{openRes, adaptRes} {
			for _, res := range results {
				if res.Outcome == adversary.OutcomePending {
					return nil, fmt.Errorf("robustness %s: unclassified trial outcome", name)
				}
				clean[arm].Observe(res.Outcome == adversary.OutcomeCleanSlate ||
					res.Outcome == adversary.OutcomeRetryCleanSlate)
				html[arm].Observe(res.ObjectSuccess(website.TargetID))
				degraded[arm].Observe(res.Outcome == adversary.OutcomeDegraded)
				broken[arm].Observe(res.Outcome == adversary.OutcomeBroken)
				if arm == 1 {
					attempts += res.AttackAttempts
				}
			}
		}
		pair := func(c [2]metrics.Counter) string {
			return fmt.Sprintf("%s / %s", pct(c[0].Percent()), pct(c[1].Percent()))
		}
		rep.Rows = append(rep.Rows, []string{
			name, pair(clean), pair(html), pair(degraded), pair(broken),
			fmt.Sprintf("%.1f", float64(attempts)/float64(trials)),
		})
	}
	rep.Notes = append(rep.Notes,
		"o/a = open-loop (paper's fixed drop window) / adaptive (watchdogs + retry + re-arm + graceful degradation)",
		"clean-slate: the monitor observed the client's reset, so the target was re-requested on a clean path",
		fmt.Sprintf("%d paired trials per scenario, shared seeds across arms", trials))
	return rep, nil
}
