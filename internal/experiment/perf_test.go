package experiment

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"h2privacy/internal/adversary"
	"h2privacy/internal/core"
	"h2privacy/internal/obs"
	"h2privacy/internal/perf"
)

// attackSweep runs a full-attack sweep with perf attribution and deferred
// metrics publication armed — the configuration the observatory exists to
// explain — and returns the collector's report.
func attackSweep(t *testing.T, col *perf.Collector, reg *obs.Registry, workers, trials int) *perf.Report {
	t.Helper()
	opts := Options{Trials: trials, BaseSeed: 3, Workers: workers, Perf: col, Metrics: reg}
	plan := adversary.DefaultPlan()
	if _, err := opts.Sweep(trials, func(tr int) core.TrialConfig {
		return core.TrialConfig{Seed: opts.BaseSeed + int64(tr), Attack: &plan}
	}); err != nil {
		t.Fatal(err)
	}
	return col.Report()
}

// TestPerfStageCoverage pins the attribution quality bar: on a 4-worker
// full-attack sweep, the named trial stages must account for at least 90%
// of the measured worker busy time (no large anonymous gap), and the
// parallelization-overhead stages — queue wait and the deferred
// publication drain — must actually have fired.
func TestPerfStageCoverage(t *testing.T) {
	col := perf.NewCollector()
	reg := obs.NewRegistry()
	col.PublishTo(reg)
	rep := attackSweep(t, col, reg, 4, 8)

	busy := rep.BusyMS()
	accounted := rep.AccountedMS()
	if busy <= 0 {
		t.Fatalf("no worker busy time recorded: %+v", rep.Workers)
	}
	if accounted < 0.9*busy {
		t.Fatalf("trial stages account for %.2f ms of %.2f ms busy (%.0f%%), want >=90%%",
			accounted, busy, 100*accounted/busy)
	}
	qw, pd := rep.StageByName("queue_wait"), rep.StageByName("publish_drain")
	if qw == nil || pd == nil {
		t.Fatalf("overhead stages missing from report: %+v", rep.Stages)
	}
	if qw.Count == 0 {
		t.Fatal("queue_wait never fired despite 4 workers")
	}
	if pd.Count == 0 {
		t.Fatal("publish_drain never fired despite deferred metrics publication")
	}
	if qw.TotalMS+pd.TotalMS <= 0 {
		t.Fatalf("no contention signal: queue_wait %.4f ms, publish_drain %.4f ms", qw.TotalMS, pd.TotalMS)
	}
	// The same accounting must have landed in the registry families the
	// manifest and /metrics carry.
	var promText strings.Builder
	if err := reg.WritePrometheus(&promText); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sweep_stage_seconds", "sweep_stage_allocs", "sweep_worker_busy_seconds"} {
		if !strings.Contains(promText.String(), want) {
			t.Fatalf("registry exposition missing %s:\n%s", want, promText.String())
		}
	}
}

// TestDebugScrapeDuringSweep scrapes the debug server's /metrics and
// /debug/vars concurrently with a 4-worker sweep publishing perf and
// trial metrics — the live-observability path, raced under -race in CI.
// Every mid-sweep exposition must already parse under the golden linter.
func TestDebugScrapeDuringSweep(t *testing.T) {
	col := perf.NewCollector()
	reg := obs.NewRegistry()
	col.PublishTo(reg)
	ds := &obs.DebugServer{Registry: reg}
	srv := httptest.NewServer(ds.Handler())
	defer srv.Close()

	stop := make(chan struct{})
	scrapes := make(chan int, 1)
	go func() {
		n := 0
		for {
			select {
			case <-stop:
				scrapes <- n
				return
			default:
			}
			resp, err := http.Get(srv.URL + "/metrics")
			if err != nil {
				continue
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				continue
			}
			if _, err := obs.LintExposition(body); err != nil {
				t.Errorf("mid-sweep exposition rejected: %v", err)
				scrapes <- n
				return
			}
			if resp, err := http.Get(srv.URL + "/debug/vars"); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			n++
		}
	}()

	attackSweep(t, col, reg, 4, 8)
	close(stop)
	if n := <-scrapes; n == 0 {
		t.Fatal("scraper never completed a scrape during the sweep")
	}
}
