package experiment

import (
	"fmt"

	"h2privacy/internal/adversary"
	"h2privacy/internal/core"
	"h2privacy/internal/metrics"
	"h2privacy/internal/website"
)

// fleetTrialCap bounds the page-load budget per table row: a fleet trial
// at load N runs N full page loads, so the per-row trial count scales
// down as 1/N (40 trials at N=1, one trial at N>=40). It doubles as the
// seedFor stride, so rows never share a seed whatever their trial count.
const fleetTrialCap = 40

// fleetLoads lists the table's rows: fleet sizes from the degenerate
// single pair up to a thousand victims behind one middlebox.
func fleetLoads() []int { return []int{1, 10, 100, 1000} }

// fleetTrialsFor scales the per-row trial count to a roughly constant
// page-load budget: min(Trials, fleetTrialCap) loads per row, at least
// one trial.
func fleetTrialsFor(n, trials int) int {
	budget := trials
	if budget > fleetTrialCap {
		budget = fleetTrialCap
	}
	t := budget / n
	if t < 1 {
		t = 1
	}
	return t
}

// FleetScale measures the attack through the shared-bottleneck topology:
// for each fleet size N it pairs a Budget-0 baseline against a Budget-1
// attacked run at shared seeds — same decoys, same bottleneck, same
// volunteer — and tabulates how often the adversary's flowseq-feature
// selector finds the planted target among N-1 decoys, the attack's
// clean-slate and HTML-identification rates on that target, and the
// collateral the interference inflicts on flows it never selected
// (page-load inflation, spurious resets, broken loads). Row N=1 is the
// degenerate fleet: bit-identical to the standalone attacked trial at
// the same seed (core's fleet identity test pins this), so its numbers
// line up with the single-pair robustness table's clean row.
func FleetScale(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	plan := adversary.DefaultPlan()
	plan.Adaptive = true

	rep := &Report{
		ID:    "fleetscale",
		Title: "Fleet-scale shared bottleneck: one middlebox, N victims",
		Header: []string{"N", "K", "trials", "target sel (%)", "clean-slate (%)",
			"html (%)", "avg interventions", "decoy infl mean/max (%)",
			"spurious resets", "broken delta"},
	}
	for v, n := range fleetLoads() {
		n := n
		trials := fleetTrialsFor(n, opts.Trials)
		baseRes, atkRes, err := opts.SweepPaired(trials, func(t int) (core.TrialConfig, core.TrialConfig) {
			seed := seedFor(opts.BaseSeed, v, fleetTrialCap, t)
			return core.TrialConfig{Seed: seed, Attack: &plan,
					Fleet: &core.FleetConfig{N: n, Budget: 0}},
				core.TrialConfig{Seed: seed, Attack: &plan,
					Fleet: &core.FleetConfig{N: n, Budget: 1}}
		})
		if err != nil {
			return nil, fmt.Errorf("fleetscale N=%d: %w", n, err)
		}
		var selected, clean, html metrics.Counter
		var interventions int
		var col core.CollateralStats
		var inflSum, inflMax float64
		var inflRows int
		for t, res := range atkRes {
			if res.Fleet == nil {
				return nil, fmt.Errorf("fleetscale N=%d: trial %d missing fleet outcome", n, t)
			}
			if base := baseRes[t].Fleet; base == nil || base.Interventions != 0 {
				return nil, fmt.Errorf("fleetscale N=%d: budget-0 baseline intervened", n)
			}
			selected.Observe(res.Fleet.TargetSelected)
			clean.Observe(res.Outcome == adversary.OutcomeCleanSlate ||
				res.Outcome == adversary.OutcomeRetryCleanSlate)
			html.Observe(res.ObjectSuccess(website.TargetID))
			interventions += res.Fleet.Interventions
			cs := core.FleetCollateral(res, baseRes[t])
			col.Decoys += cs.Decoys
			col.Inflated += cs.Inflated
			col.SpuriousResets += cs.SpuriousResets
			col.BrokenDelta += cs.BrokenDelta
			if cs.Decoys > 0 {
				inflSum += cs.MeanInflationPct
				inflRows++
			}
			if cs.MaxInflationPct > inflMax {
				inflMax = cs.MaxInflationPct
			}
		}
		meanInfl := 0.0
		if inflRows > 0 {
			meanInfl = inflSum / float64(inflRows)
		}
		rep.Rows = append(rep.Rows, []string{
			itoa(n), "1", itoa(trials),
			pct(selected.Percent()), pct(clean.Percent()), pct(html.Percent()),
			f0(float64(interventions) / float64(trials)),
			fmt.Sprintf("%.1f / %.1f", meanInfl, inflMax),
			itoa(col.SpuriousResets), itoa(col.BrokenDelta),
		})
	}
	rep.Notes = append(rep.Notes,
		"paired sweeps at shared seeds: Budget-0 baseline vs Budget-1 adaptive attack, FIFO bottleneck",
		"target sel: the flowseq-feature selector armed flow 0 (the planted target) among N-1 decoys",
		"decoy inflation pairs each decoy's page-load time against its own Budget-0 baseline",
		"N=1 is bit-identical to the standalone attacked trial (core fleet identity test)")
	return rep, nil
}
