package experiment

import (
	"strings"
	"testing"
)

// TestFleetScaleTable pins the fleetscale experiment's shape at a small
// trial budget: one row per load level N, the flowseq-feature selector
// finding the planted target and the adaptive attack forcing a clean
// slate on every row, with zero broken decoys or spurious resets under
// the default FIFO bottleneck.
func TestFleetScaleTable(t *testing.T) {
	rep, err := FleetScale(Options{Trials: 4, BaseSeed: 4242, Workers: 2, NoProgress: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != len(fleetLoads()) {
		t.Fatalf("got %d rows, want one per load level %v", len(rep.Rows), fleetLoads())
	}
	for i, row := range rep.Rows {
		if want := itoa(fleetLoads()[i]); row[0] != want {
			t.Errorf("row %d: N=%s, want %s", i, row[0], want)
		}
		if row[3] != "100%" {
			t.Errorf("N=%s: target selected %s of trials, want 100%%", row[0], row[3])
		}
		if row[4] != "100%" {
			t.Errorf("N=%s: clean slate %s of trials, want 100%%", row[0], row[4])
		}
		if resets, broken := row[8], row[9]; resets != "0" || broken != "0" {
			t.Errorf("N=%s: spurious resets %s, broken delta %s, want 0/0", row[0], resets, broken)
		}
	}
	var buf strings.Builder
	rep.Render(&buf)
	if !strings.Contains(buf.String(), "fleetscale") {
		t.Error("report render lacks the experiment ID")
	}
}

// TestFleetScaleDeterministicAcrossWorkers reruns the table at 1 and 4
// workers and requires identical rendered reports — the fleet table is
// as worker-count-independent as every other experiment.
func TestFleetScaleDeterministicAcrossWorkers(t *testing.T) {
	a, err := FleetScale(Options{Trials: 2, BaseSeed: 7, Workers: 1, NoProgress: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FleetScale(Options{Trials: 2, BaseSeed: 7, Workers: 4, NoProgress: true})
	if err != nil {
		t.Fatal(err)
	}
	var ra, rb strings.Builder
	a.Render(&ra)
	b.Render(&rb)
	if ra.String() != rb.String() {
		t.Fatalf("fleetscale differs across worker counts:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
			ra.String(), rb.String())
	}
}
