package experiment

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"h2privacy/internal/obs"
)

// runManifestSweep runs a small fixed sweep into a fresh registry and
// returns the stripped manifest bytes. Wall-clock fields are zeroed by
// StripWallClock; everything left must be a pure function of the seeds.
func runManifestSweep(t *testing.T) []byte {
	t.Helper()
	reg := obs.NewRegistry()
	opts := Options{Trials: 2, BaseSeed: 7, Metrics: reg, NoProgress: true}
	man := NewManifest("test-sweep", opts)
	prog := NewProgress(nil) // count trials without rendering
	opts.Progress = prog
	for _, id := range []string{"fig3", "fig2"} {
		runner, ok := Lookup(id)
		if !ok {
			t.Fatalf("unknown experiment %s", id)
		}
		prog.Start(id, PlannedTrials(id, opts))
		rep, err := runner(opts)
		if err != nil {
			t.Fatal(err)
		}
		trials, wall := prog.Done()
		man.Record(id, rep.Title, trials, len(rep.Rows), wall)
	}
	man.Finish(reg)
	man.StripWallClock()
	var buf bytes.Buffer
	if err := man.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestManifestDeterministic(t *testing.T) {
	a := runManifestSweep(t)
	b := runManifestSweep(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed manifests differ:\n%s\n---\n%s", a, b)
	}
	s := string(a)
	for _, want := range []string{
		`"tool": "test-sweep"`,
		`"base_seed": 7`,
		`"id": "fig3"`,
		`"trials": 2`,
		`"h2privacy_trials_total"`,
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("manifest missing %q:\n%s", want, s)
		}
	}
	// Stripped manifests carry no wall-clock residue.
	if strings.Contains(s, "started_at") || strings.Contains(s, `"wall_ms": 1`) {
		t.Fatalf("wall clock leaked into stripped manifest:\n%s", s)
	}
}

func TestManifestCountsTrials(t *testing.T) {
	reg := obs.NewRegistry()
	opts := Options{Trials: 2, Metrics: reg, NoProgress: true}
	prog := NewProgress(nil)
	opts.Progress = prog
	prog.Start("fig2", PlannedTrials("fig2", opts))
	if _, err := Fig2(opts); err != nil {
		t.Fatal(err)
	}
	trials, _ := prog.Done()
	if want := PlannedTrials("fig2", opts); trials != want {
		t.Fatalf("fig2 ticked %d trials, PlannedTrials says %d", trials, want)
	}
	// The sweep's registry saw the same number of trials.
	snap := reg.Snapshot()
	for _, f := range snap.Families {
		if f.Name == "h2privacy_trials_total" {
			if got := f.Series[0].Value; got != float64(trials) {
				t.Fatalf("registry counted %v trials, progress %d", got, trials)
			}
			return
		}
	}
	t.Fatal("h2privacy_trials_total missing from sweep registry")
}

func TestProgressRendering(t *testing.T) {
	var buf bytes.Buffer
	base := time.Unix(1000, 0)
	clock := base
	p := NewProgress(&buf)
	p.now = func() time.Time { return clock }
	p.Start("fig9", 100)
	for i := 0; i < 50; i++ {
		clock = clock.Add(50 * time.Millisecond)
		p.Tick()
	}
	trials, wall := p.Done()
	if trials != 50 {
		t.Fatalf("Done reported %d trials", trials)
	}
	if wall != 2500*time.Millisecond {
		t.Fatalf("Done reported wall %v", wall)
	}
	out := buf.String()
	if !strings.Contains(out, "fig9") || !strings.Contains(out, "trials/s") {
		t.Fatalf("progress output missing id/rate: %q", out)
	}
	if !strings.Contains(out, "ETA") {
		t.Fatalf("progress output missing ETA: %q", out)
	}
	if !strings.Contains(out, "fig9: 50 trials in 2.5s (20.0 trials/s)\n") {
		t.Fatalf("final line missing: %q", out)
	}
	// Throttled: far fewer renders than ticks.
	if n := strings.Count(out, "\r"); n >= 50 {
		t.Fatalf("%d renders for 50 ticks — throttle broken", n)
	}
}

func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	p.Start("x", 10)
	p.Tick()
	if trials, wall := p.Done(); trials != 0 || wall != 0 {
		t.Fatal("nil progress reported work")
	}
	// Nil-writer Progress counts without rendering.
	q := NewProgress(nil)
	q.Start("x", 10)
	q.Tick()
	q.Tick()
	if trials, _ := q.Done(); trials != 2 {
		t.Fatalf("silent progress counted %d", trials)
	}
}

func TestPlannedTrialsShapes(t *testing.T) {
	opts := Options{Trials: 100}
	cases := map[string]int{
		"fig1": 100, "fig2": 200, "table1": 400, "fig5": 500,
		"sensitivity": 360, "crosstraffic": 75, "h1base": 25,
	}
	for id, want := range cases {
		if got := PlannedTrials(id, opts); got != want {
			t.Errorf("PlannedTrials(%s) = %d, want %d", id, got, want)
		}
	}
	if PlannedTrials("nope", opts) != 0 {
		t.Error("unknown id must plan 0")
	}
	// Every registered experiment has a non-zero estimate.
	for _, id := range IDs() {
		if PlannedTrials(id, opts) == 0 {
			t.Errorf("experiment %s has no trial estimate", id)
		}
	}
}
