package experiment

import (
	"bytes"
	"fmt"
	"testing"

	"h2privacy/internal/adversary"
	"h2privacy/internal/check"
	"h2privacy/internal/core"
	"h2privacy/internal/obs"
	"h2privacy/internal/website"
)

// pooledSweepFingerprint runs an attack sweep under the given pooling
// regime and serializes everything observable: per-trial outcomes plus the
// full deferred-published metrics registry in Prometheus text form. The
// arena changes where bytes live, never their contents, so every variant
// of this fingerprint must be byte-identical for the same seed.
func pooledSweepFingerprint(t *testing.T, workers int, noPool, poison bool) []byte {
	t.Helper()
	plan := adversary.DefaultPlan()
	opts := Options{
		Trials: 8, BaseSeed: 4242, Workers: workers,
		NoPool: noPool, PoolPoison: poison,
		Metrics: obs.NewRegistry(),
	}
	results, err := opts.Sweep(opts.Trials, func(tr int) core.TrialConfig {
		return core.TrialConfig{Seed: opts.BaseSeed + int64(tr), Attack: &plan}
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for i, res := range results {
		fmt.Fprintf(&buf, "trial %d: outcome=%v resets=%d gets=%d html=%v rank0=%v broken=%v\n",
			i, res.Outcome, res.Resets, res.GETs,
			res.ObjectSuccess(website.TargetID), res.SequenceRankCorrect(0), res.Broken)
	}
	if err := opts.Metrics.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPooledSweepByteIdenticalAcrossWorkers pins the tentpole guarantee:
// with per-worker arenas armed (the default), a sweep's trial outcomes and
// registry snapshot are byte-identical between the sequential engine and a
// 4-worker pool — recycling is worker-local and trials stay independent.
func TestPooledSweepByteIdenticalAcrossWorkers(t *testing.T) {
	seq := pooledSweepFingerprint(t, 1, false, false)
	par := pooledSweepFingerprint(t, 4, false, false)
	if len(seq) == 0 {
		t.Fatal("empty fingerprint")
	}
	if !bytes.Equal(seq, par) {
		t.Fatalf("pooled sweep differs across worker counts:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", seq, par)
	}
}

// TestPoolingPreservesOutput proves pooling itself is invisible: the same
// sweep with arenas disabled (NoPool) produces the identical fingerprint.
func TestPoolingPreservesOutput(t *testing.T) {
	pooled := pooledSweepFingerprint(t, 4, false, false)
	plain := pooledSweepFingerprint(t, 4, true, false)
	if !bytes.Equal(pooled, plain) {
		t.Fatalf("pooled sweep differs from unpooled:\n--- pooled ---\n%s\n--- no-pool ---\n%s", pooled, plain)
	}
}

// TestPoisonedPoolPreservesOutput is the stale-reference hunt: with
// poisoning armed, every buffer returned to the arena is filled with 0xDB
// before it can be handed out again, so any consumer that kept a payload
// or scratch slice past its contract reads deterministic garbage and the
// fingerprint diverges. Identical output proves no such consumer exists.
func TestPoisonedPoolPreservesOutput(t *testing.T) {
	plain := pooledSweepFingerprint(t, 4, true, false)
	poisoned := pooledSweepFingerprint(t, 4, false, true)
	if !bytes.Equal(plain, poisoned) {
		t.Fatalf("poisoned pooled sweep diverged — a consumer is holding a recycled buffer:\n--- no-pool ---\n%s\n--- poisoned ---\n%s", plain, poisoned)
	}
}

// TestPooledSweepCheckClean runs the invariant checker over poisoned
// pooled trials at 4 workers: every layer's always-on invariants (capture
// taint accounting, TCP sequence sanity, h2 stream-state rules, ...) must
// hold exactly as they do unpooled.
func TestPooledSweepCheckClean(t *testing.T) {
	plan := adversary.DefaultPlan()
	rec := check.NewRecorder()
	opts := Options{
		Trials: 8, BaseSeed: 4242, Workers: 4,
		PoolPoison: true, Check: rec,
	}
	_, err := opts.Sweep(opts.Trials, func(tr int) core.TrialConfig {
		return core.TrialConfig{Seed: opts.BaseSeed + int64(tr), Attack: &plan}
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := rec.Total(); n != 0 {
		t.Fatalf("pooled trials violated %d invariants:\n%s", n, rec.Report())
	}
}
