package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"h2privacy/internal/core"
	"h2privacy/internal/obs"
)

// superviseStepBudget comfortably covers a full attack trial (~12.3k
// scheduler events) while letting the chaos-hang spin loop trip fast.
const superviseStepBudget = 50_000

// resultDigest serializes the deterministic core of a result slice —
// nil/quarantined markers plus the fields the reports aggregate — so two
// sweeps can be compared byte-for-byte. fmt sorts map keys, so the map
// fields print deterministically.
func resultDigest(results []*core.TrialResult) []byte {
	var buf bytes.Buffer
	for i, r := range results {
		if r == nil {
			fmt.Fprintf(&buf, "%d: nil\n", i)
			continue
		}
		fmt.Fprintf(&buf, "%d: quarantined=%v broken=%v reason=%q true=%v inferred=%v gets=%d resets=%d dom=%v\n",
			i, r.Quarantined, r.Broken, r.BrokenReason, r.TrueSeq, r.InferredSeq, r.GETs, r.Resets, r.BestCompleteDoM)
	}
	return buf.Bytes()
}

// counterValue finds a single-series counter family in a snapshot;
// -1 means the family was never registered.
func counterValue(s *obs.Snapshot, name string) float64 {
	for _, f := range s.Families {
		if f.Name == name && len(f.Series) == 1 {
			return f.Series[0].Value
		}
	}
	return -1
}

func snapshotJSON(t *testing.T, reg *obs.Registry) []byte {
	t.Helper()
	b, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// chaosSweep runs the acceptance scenario — 16 trials, an injected panic
// at flat index 3 and an injected hang at 11, one retry each — in degraded
// mode and returns every byte-identity-relevant artifact.
func chaosSweep(t *testing.T, workers int) (digest, quarJSON, manifestJSON []byte, q *Quarantine, reg *obs.Registry) {
	t.Helper()
	reg = obs.NewRegistry()
	q = NewQuarantine()
	q.SetRepro(func(f TrialFailure) string {
		return fmt.Sprintf("replay -seed %d -trial %d", f.Seed, f.Trial)
	})
	opts := Options{
		BaseSeed:     300,
		Workers:      workers,
		Metrics:      reg,
		StepBudget:   superviseStepBudget,
		MaxRetries:   1,
		Quarantine:   q,
		SuperviseLog: io.Discard,
		ChaosTrial: func(flat int) core.ChaosMode {
			switch flat {
			case 3:
				return core.ChaosPanic
			case 11:
				return core.ChaosHang
			}
			return core.ChaosNone
		},
	}
	results, err := opts.Sweep(16, func(tr int) core.TrialConfig {
		return core.TrialConfig{Seed: opts.BaseSeed + int64(tr)}
	})
	if err != nil {
		t.Fatalf("degraded sweep errored (workers=%d): %v", workers, err)
	}
	m := NewManifest("test", opts)
	m.Finish(reg)
	m.FinishQuarantine(q)
	m.StripWallClock()
	var mbuf, qbuf bytes.Buffer
	if err := m.WriteJSON(&mbuf); err != nil {
		t.Fatal(err)
	}
	if err := q.WriteJSON(&qbuf, "test"); err != nil {
		t.Fatal(err)
	}
	return resultDigest(results), qbuf.Bytes(), mbuf.Bytes(), q, reg
}

// TestChaosSweepCompletesDegraded pins the tentpole end to end: a sweep
// with one panicking and one hanging trial completes in degraded mode —
// 14 real results, 2 quarantined placeholders with classified failures,
// attempt counts and repro commands — instead of crashing or hanging.
func TestChaosSweepCompletesDegraded(t *testing.T) {
	digest, quarJSON, manifestJSON, q, reg := chaosSweep(t, 1)
	if n := bytes.Count(digest, []byte("quarantined=false")); n != 14 {
		t.Fatalf("clean results = %d, want 14:\n%s", n, digest)
	}
	fails := q.Failures()
	if len(fails) != 2 {
		t.Fatalf("quarantined = %d, want 2: %+v", len(fails), fails)
	}
	for i, want := range []struct {
		trial int
		seed  int64
		kind  FailureKind
	}{{3, 303, FailPanic}, {11, 311, FailTimeout}} {
		f := fails[i]
		if f.Trial != want.trial || f.Seed != want.seed || f.Kind != want.kind {
			t.Fatalf("failure[%d] = %+v, want trial %d seed %d kind %s", i, f, want.trial, want.seed, want.kind)
		}
		if f.Attempts != 2 {
			t.Fatalf("failure[%d].Attempts = %d, want 2 (1 + MaxRetries)", i, f.Attempts)
		}
		if f.Repro != fmt.Sprintf("replay -seed %d -trial %d", f.Seed, f.Trial) {
			t.Fatalf("failure[%d].Repro = %q", i, f.Repro)
		}
	}
	// The hang died deterministically at the step budget, not a wall clock.
	if !bytes.Contains(quarJSON, []byte("step budget exceeded")) {
		t.Fatalf("timeout failure lacks the budget error:\n%s", quarJSON)
	}
	if !bytes.Contains(quarJSON, []byte(`"version": 1`)) {
		t.Fatalf("quarantine file lacks its version tag:\n%s", quarJSON)
	}
	// Each bad trial failed twice (original + retry): the metric families
	// agree, and quarantined counts trials, not attempts.
	snap := reg.Snapshot()
	for name, want := range map[string]float64{
		"sweep_trials_panicked":    2,
		"sweep_trials_timedout":    2,
		"sweep_trials_retried":     2,
		"sweep_trials_quarantined": 2,
	} {
		if got := counterValue(snap, name); got != want {
			t.Fatalf("%s = %v, want %v", name, got, want)
		}
	}
	// The stripped manifest flags degradation and keeps the receipt, but
	// the host-dependent sweep_* families are gone.
	if !bytes.Contains(manifestJSON, []byte(`"degraded": true`)) {
		t.Fatalf("stripped manifest not marked degraded:\n%s", manifestJSON)
	}
	if !bytes.Contains(manifestJSON, []byte(`"quarantined": 2`)) {
		t.Fatalf("stripped manifest lost the quarantine receipt:\n%s", manifestJSON)
	}
	if bytes.Contains(manifestJSON, []byte("sweep_trials_")) {
		t.Fatalf("stripped manifest still carries sweep_trials_* families:\n%s", manifestJSON)
	}
}

// TestChaosSweepByteIdenticalAcrossWorkers pins the degraded-mode half of
// the determinism contract: for an identical failure set, the aggregated
// results, the quarantine artifact and the stripped manifest are
// byte-identical at any worker count.
func TestChaosSweepByteIdenticalAcrossWorkers(t *testing.T) {
	d1, q1, m1, _, _ := chaosSweep(t, 1)
	d4, q4, m4, _, _ := chaosSweep(t, 4)
	if !bytes.Equal(d1, d4) {
		t.Fatalf("degraded results differ:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", d1, d4)
	}
	if !bytes.Equal(q1, q4) {
		t.Fatalf("quarantine artifacts differ:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", q1, q4)
	}
	if !bytes.Equal(m1, m4) {
		t.Fatalf("stripped manifests differ:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", m1, m4)
	}
}

// cleanSweep runs 6 clean trials and returns the digest and snapshot.
func cleanSweep(t *testing.T, opts Options) ([]byte, []byte) {
	t.Helper()
	results, err := opts.Sweep(6, func(tr int) core.TrialConfig {
		return core.TrialConfig{Seed: opts.BaseSeed + int64(tr)}
	})
	if err != nil {
		t.Fatal(err)
	}
	return resultDigest(results), snapshotJSON(t, opts.Metrics)
}

// TestCleanSweepSupervisionInvisible pins the clean-sweep half of the
// determinism contract: arming every supervision knob — watchdogs,
// retries, quarantine, cancellation — changes nothing observable when no
// trial fails. Results and the full registry snapshot stay byte-identical
// to the bare engine's, and no sweep_trials_* family is ever registered.
func TestCleanSweepSupervisionInvisible(t *testing.T) {
	bare := Options{BaseSeed: 40, Workers: 1, Metrics: obs.NewRegistry()}
	bareDigest, bareSnap := cleanSweep(t, bare)

	q := NewQuarantine()
	armed := Options{
		BaseSeed:      40,
		Workers:       4,
		Metrics:       obs.NewRegistry(),
		Ctx:           context.Background(),
		StepBudget:    superviseStepBudget,
		TrialDeadline: time.Minute,
		MaxRetries:    2,
		RetryBackoff:  time.Millisecond,
		Quarantine:    q,
		SuperviseLog:  io.Discard,
	}
	armedDigest, armedSnap := cleanSweep(t, armed)

	if !bytes.Equal(bareDigest, armedDigest) {
		t.Fatalf("supervision changed clean results:\n--- bare ---\n%s\n--- supervised ---\n%s", bareDigest, armedDigest)
	}
	if !bytes.Equal(bareSnap, armedSnap) {
		t.Fatalf("supervision changed the clean registry snapshot:\n--- bare ---\n%s\n--- supervised ---\n%s", bareSnap, armedSnap)
	}
	if bytes.Contains(armedSnap, []byte("sweep_trials_")) {
		t.Fatalf("clean sweep registered supervision families:\n%s", armedSnap)
	}
	if q.Len() != 0 {
		t.Fatalf("clean sweep quarantined %d trials", q.Len())
	}
}

// TestRetryRecoversTransientFault drives the retry path to success: a
// stateful chaos hook panics trial 5's first attempt only, so the retry —
// on fresh per-trial state — must produce the exact result a never-failed
// run produces, with nothing quarantined.
func TestRetryRecoversTransientFault(t *testing.T) {
	bare := Options{BaseSeed: 70, Workers: 1, Metrics: obs.NewRegistry()}
	bareDigest, _ := cleanSweep(t, bare)

	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		sabotaged := false
		q := NewQuarantine()
		reg := obs.NewRegistry()
		opts := Options{
			BaseSeed:     70,
			Workers:      workers,
			Metrics:      reg,
			StepBudget:   superviseStepBudget,
			MaxRetries:   1,
			Quarantine:   q,
			SuperviseLog: io.Discard,
			ChaosTrial: func(flat int) core.ChaosMode {
				mu.Lock()
				defer mu.Unlock()
				if flat == 5 && !sabotaged {
					sabotaged = true
					return core.ChaosPanic
				}
				return core.ChaosNone
			},
		}
		digest, _ := cleanSweep(t, opts)
		if !bytes.Equal(digest, bareDigest) {
			t.Fatalf("workers=%d: retried sweep differs from clean run:\n--- clean ---\n%s\n--- retried ---\n%s", workers, bareDigest, digest)
		}
		if q.Len() != 0 {
			t.Fatalf("workers=%d: transient fault was quarantined: %+v", workers, q.Failures())
		}
		snap := reg.Snapshot()
		if got := counterValue(snap, "sweep_trials_panicked"); got != 1 {
			t.Fatalf("workers=%d: sweep_trials_panicked = %v, want 1", workers, got)
		}
		if got := counterValue(snap, "sweep_trials_retried"); got != 1 {
			t.Fatalf("workers=%d: sweep_trials_retried = %v, want 1", workers, got)
		}
		if got := counterValue(snap, "sweep_trials_quarantined"); got != -1 {
			t.Fatalf("workers=%d: quarantined family registered (= %v) with nothing quarantined", workers, got)
		}
	}
}

// TestCancelledSweepDrainsPartial pins cooperative cancellation: a context
// cancelled mid-sweep stops the engine without retry or quarantine fallout,
// and the partial results are returned alongside the context error so the
// caller can export what completed.
func TestCancelledSweepDrainsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	q := NewQuarantine()
	opts := Options{
		BaseSeed:     90,
		Workers:      1,
		Metrics:      obs.NewRegistry(),
		Ctx:          ctx,
		StepBudget:   superviseStepBudget,
		MaxRetries:   3,
		Quarantine:   q,
		SuperviseLog: io.Discard,
		// The hook doubles as a deterministic trip wire: trial 4's attempt
		// cancels the sweep before it runs.
		ChaosTrial: func(flat int) core.ChaosMode {
			if flat == 4 {
				cancel()
			}
			return core.ChaosNone
		},
	}
	results, err := opts.Sweep(8, func(tr int) core.TrialConfig {
		return core.TrialConfig{Seed: opts.BaseSeed + int64(tr)}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) != 8 {
		t.Fatalf("len(results) = %d, want the full index-aligned slice", len(results))
	}
	for i := 0; i < 4; i++ {
		if results[i] == nil {
			t.Fatalf("completed trial %d missing from the partial results", i)
		}
	}
	for i := 4; i < 8; i++ {
		if results[i] != nil {
			t.Fatalf("trial %d ran after cancellation", i)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("cancellation was quarantined: %+v", q.Failures())
	}
	if got := counterValue(opts.Metrics.Snapshot(), "sweep_trials_retried"); got != -1 {
		t.Fatalf("cancelled trial was retried (%v retries)", got)
	}
}

// TestFailFastLowestIndexPanic is the satellite-3 determinism test (run
// under -race in CI): with many concurrently panicking trials and no
// quarantine armed, the sweep fails fast with the LOWEST-index trial's
// structured failure — never whichever worker happened to lose the race.
func TestFailFastLowestIndexPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for round := 0; round < 10; round++ {
			opts := Options{
				BaseSeed:     500,
				Workers:      workers,
				StepBudget:   superviseStepBudget,
				SuperviseLog: io.Discard,
				ChaosTrial: func(flat int) core.ChaosMode {
					if flat >= 3 {
						return core.ChaosPanic
					}
					return core.ChaosNone
				},
			}
			_, err := opts.Sweep(32, func(tr int) core.TrialConfig {
				return core.TrialConfig{Seed: opts.BaseSeed + int64(tr)}
			})
			var tf *TrialFailure
			if !errors.As(err, &tf) {
				t.Fatalf("workers=%d round %d: err = %v, want *TrialFailure", workers, round, err)
			}
			if tf.Trial != 3 || tf.Seed != 503 || tf.Kind != FailPanic || tf.Attempts != 1 {
				t.Fatalf("workers=%d round %d: failure = %+v, want trial 3 seed 503 panic", workers, round, tf)
			}
		}
	}
}

// TestQuarantineArtifactShape pins the collector's contract directly:
// failures report sorted by flat trial index regardless of insertion
// order, the default repro stamp names trial and seed, and the JSON
// artifact carries its version tag.
func TestQuarantineArtifactShape(t *testing.T) {
	q := NewQuarantine()
	q.add(TrialFailure{Trial: 9, Seed: 109, Kind: FailTimeout, Attempts: 1, Err: "budget"})
	q.add(TrialFailure{Trial: 2, Seed: 102, Kind: FailPanic, Attempts: 2, Err: "boom"})
	fails := q.Failures()
	if len(fails) != 2 || fails[0].Trial != 2 || fails[1].Trial != 9 {
		t.Fatalf("failures not sorted by trial index: %+v", fails)
	}
	if fails[0].Repro != "re-run trial 2 standalone with seed 102" {
		t.Fatalf("default repro stamp = %q", fails[0].Repro)
	}
	rec := q.Receipt()
	if rec.Quarantined != 2 || len(rec.Failures) != 2 {
		t.Fatalf("receipt = %+v", rec)
	}
	var buf bytes.Buffer
	if err := q.WriteJSON(&buf, "unit"); err != nil {
		t.Fatal(err)
	}
	var file struct {
		Version  int            `json:"version"`
		Tool     string         `json:"tool"`
		Failures []TrialFailure `json:"failures"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("quarantine artifact is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if file.Version != 1 || file.Tool != "unit" || len(file.Failures) != 2 {
		t.Fatalf("artifact = %+v", file)
	}
}
