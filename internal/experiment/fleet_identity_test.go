package experiment

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"h2privacy/internal/adversary"
	"h2privacy/internal/check"
	"h2privacy/internal/core"
	"h2privacy/internal/flowseq"
	"h2privacy/internal/obs"
	"h2privacy/internal/website"
)

// fleetSweepFingerprint runs a checked, feature-armed, chaos-sabotaged
// N=100 fleet sweep at the given worker count and serializes every
// byte-identity-relevant artifact: per-trial outcome lines (fleet
// selection, interventions, decoy fates), the deferred-published metrics
// registry, the /debug/flows CSV (WriteFlows is exactly what the endpoint
// serves), the stripped manifest, the quarantine file and the checker
// report. The golden contract: all of it is byte-identical at any worker
// count, with pools and checkers armed.
func fleetSweepFingerprint(t *testing.T, workers int) []byte {
	t.Helper()
	plan := adversary.DefaultPlan()
	plan.Adaptive = true
	fcol := flowseq.NewCollector()
	reg := obs.NewRegistry()
	fcol.PublishTo(reg)
	rec := check.NewRecorder()
	q := NewQuarantine()
	q.SetRepro(func(f TrialFailure) string {
		return fmt.Sprintf("h2attack -seed %d -fleet 100 -budget 1", f.Seed)
	})
	opts := Options{
		Trials: 3, BaseSeed: 4242, Workers: workers,
		Metrics: reg, Features: fcol, Check: rec,
		PoolPoison:   true,
		MaxRetries:   1,
		Quarantine:   q,
		SuperviseLog: io.Discard,
		ChaosTrial: func(flat int) core.ChaosMode {
			if flat == 1 {
				return core.ChaosPanic
			}
			return core.ChaosNone
		},
	}
	results, err := opts.Sweep(opts.Trials, func(tr int) core.TrialConfig {
		return core.TrialConfig{
			Seed:   seedFor(opts.BaseSeed, 0, opts.Trials, tr),
			Attack: &plan,
			Fleet:  &core.FleetConfig{N: 100, Budget: 1},
		}
	})
	if err != nil {
		t.Fatalf("fleet sweep errored (workers=%d): %v", workers, err)
	}

	var buf bytes.Buffer
	for i, res := range results {
		if res.Quarantined {
			fmt.Fprintf(&buf, "trial %d: quarantined\n", i)
			continue
		}
		fmt.Fprintf(&buf, "trial %d: outcome=%v html=%v resets=%d", i,
			res.Outcome, res.ObjectSuccess(website.TargetID), res.Resets)
		if fo := res.Fleet; fo != nil {
			var dLoad, dResets, dBroken int
			for _, d := range fo.Decoys {
				dLoad += int(d.LoadTime)
				dResets += d.Resets
				if d.Broken {
					dBroken++
				}
			}
			fmt.Fprintf(&buf, " selected=%v peak=%d interventions=%d aggS2C=%d/%d decoys=%d loadSum=%d resets=%d broken=%d",
				fo.Selected, fo.BudgetPeak, fo.Interventions,
				fo.AggS2C.Forwarded, fo.AggS2C.Bytes,
				len(fo.Decoys), dLoad, dResets, dBroken)
		}
		fmt.Fprintln(&buf)
	}
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := fcol.WriteFlows(&buf, "csv"); err != nil {
		t.Fatal(err)
	}
	m := NewManifest("test", opts)
	m.Finish(reg)
	m.FinishQuarantine(q)
	m.StripWallClock()
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := q.WriteJSON(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(rec.Report())
	return buf.Bytes()
}

// TestFleetSweepByteIdenticalAcrossWorkers is the fleet tentpole's golden
// test: a 1-worker and a 4-worker run of the same checked N=100 fleet
// sweep — chaos-quarantined trial included — must produce byte-identical
// reports, registry snapshots, /debug/flows CSVs, stripped manifests and
// quarantine files.
func TestFleetSweepByteIdenticalAcrossWorkers(t *testing.T) {
	seq := fleetSweepFingerprint(t, 1)
	par := fleetSweepFingerprint(t, 4)
	if len(seq) == 0 {
		t.Fatal("empty fingerprint")
	}
	if !bytes.Equal(seq, par) {
		d := diffAt(seq, par)
		t.Fatalf("fleet sweep differs across worker counts near byte %d:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
			d, excerpt(seq, d), excerpt(par, d))
	}
}

// TestFleetSweepCheckClean asserts the checked fleet sweep above violated
// nothing: per-flow conservation, aggregate conservation at the
// bottleneck, the budget shadow — all green across 100-flow trials.
func TestFleetSweepCheckClean(t *testing.T) {
	plan := adversary.DefaultPlan()
	plan.Adaptive = true
	rec := check.NewRecorder()
	opts := Options{Trials: 2, BaseSeed: 777, Workers: 4, Check: rec}
	_, err := opts.Sweep(opts.Trials, func(tr int) core.TrialConfig {
		return core.TrialConfig{Seed: opts.BaseSeed + int64(tr), Attack: &plan,
			Fleet: &core.FleetConfig{N: 100, Budget: 2}}
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := rec.Total(); n != 0 {
		t.Fatalf("fleet trials violated %d invariants:\n%s", n, rec.Report())
	}
}

// diffAt returns the first index where a and b differ.
func diffAt(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// excerpt returns a short window of buf around offset for diff messages.
func excerpt(buf []byte, at int) string {
	lo, hi := at-120, at+120
	if lo < 0 {
		lo = 0
	}
	if hi > len(buf) {
		hi = len(buf)
	}
	return string(buf[lo:hi])
}
