package experiment

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress reports a sweep's live trial rate to a terminal: each runner's
// trials tick through it, and it renders an in-place status line (trials
// done, trials/sec, ETA) at most a few times per second. A nil *Progress
// counts nothing and renders nothing, so runners call Tick unconditionally.
//
// Progress is the one place in the experiment harness that reads the wall
// clock; nothing it produces feeds the registry or the manifest's
// deterministic fields, so same-seed sweeps stay byte-identical whether or
// not a reporter is attached.
type Progress struct {
	w   io.Writer        // nil writer counts silently (for manifests without a terminal)
	now func() time.Time // injectable for tests

	mu      sync.Mutex
	id      string
	planned int
	done    int
	start   time.Time
	last    time.Time // last render, for throttling
	dirty   bool      // an in-place line is on screen and needs terminating
}

// renderEvery throttles in-place updates.
const renderEvery = 200 * time.Millisecond

// NewProgress returns a reporter writing in-place status lines to w. A nil
// w still counts trials (Done reports them) but renders nothing.
func NewProgress(w io.Writer) *Progress {
	return &Progress{w: w, now: time.Now}
}

// Start begins a new experiment's accounting. planned is the expected
// trial count (see PlannedTrials); zero means unknown and suppresses the
// percentage and ETA.
func (p *Progress) Start(id string, planned int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.id = id
	p.planned = planned
	p.done = 0
	p.start = p.now()
	p.last = time.Time{}
	p.render(p.start)
}

// Tick records one completed trial. Nil-safe and cheap when throttled: a
// mutex and a clock read, with a render only every renderEvery.
func (p *Progress) Tick() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	now := p.now()
	if now.Sub(p.last) < renderEvery {
		return
	}
	p.render(now)
}

// Done closes the current experiment, prints its final line, and returns
// the trial count and wall time it observed.
func (p *Progress) Done() (trials int, wall time.Duration) {
	if p == nil {
		return 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	wall = p.now().Sub(p.start)
	if p.w != nil {
		rate := rate(p.done, wall)
		p.clearLine()
		fmt.Fprintf(p.w, "%s: %d trials in %s (%s)\n", p.id, p.done, roundDur(wall), rate)
	}
	return p.done, wall
}

// render writes the in-place status line; callers hold p.mu.
func (p *Progress) render(now time.Time) {
	p.last = now
	if p.w == nil {
		return
	}
	elapsed := now.Sub(p.start)
	line := fmt.Sprintf("\r%s: %d", p.id, p.done)
	if p.planned > 0 {
		line += fmt.Sprintf("/%d trials (%d%%)", p.planned, 100*p.done/p.planned)
	} else {
		line += " trials"
	}
	line += " " + rate(p.done, elapsed)
	if p.planned > p.done && p.done > 0 && elapsed > 0 {
		remaining := time.Duration(float64(elapsed) / float64(p.done) * float64(p.planned-p.done))
		line += fmt.Sprintf(" ETA %s", roundDur(remaining))
	}
	// Pad to blot out any longer previous line.
	if n := len(line); n < 64 {
		line += spaces[:64-n]
	}
	fmt.Fprint(p.w, line)
	p.dirty = true
}

// clearLine terminates a pending in-place line; callers hold p.mu.
func (p *Progress) clearLine() {
	if p.dirty {
		fmt.Fprint(p.w, "\r")
		p.dirty = false
	}
}

var spaces = "                                                                "

func rate(done int, elapsed time.Duration) string {
	if elapsed <= 0 {
		return "-- trials/s"
	}
	return fmt.Sprintf("%.1f trials/s", float64(done)/elapsed.Seconds())
}

func roundDur(d time.Duration) time.Duration {
	switch {
	case d >= time.Minute:
		return d.Round(time.Second)
	case d >= time.Second:
		return d.Round(100 * time.Millisecond)
	default:
		return d.Round(time.Millisecond)
	}
}

// PlannedTrials estimates how many trials an experiment will run under the
// given options — the per-runner sweep shapes, including the caps the
// heavyweight sweeps apply (sensitivity: 40/config, crosstraffic and
// h1base: 25). Unknown ids return 0 (progress shows a bare count).
func PlannedTrials(id string, opts Options) int {
	opts = opts.withDefaults()
	T := opts.Trials
	capped := func(n, max int) int {
		if n > max {
			return max
		}
		return n
	}
	switch id {
	case "fig1", "fig3", "table2", "partial":
		return T
	case "fig2", "fig6", "defense", "pushdef", "tcpablation", "padding":
		return 2 * T
	case "fig4":
		return 3 * T
	case "table1", "ablation":
		return 4 * T
	case "fig5":
		return 5 * T
	case "sensitivity":
		return 9 * capped(T, 40)
	case "crosstraffic":
		return 3 * capped(T, 25)
	case "h1base":
		return capped(T, 25)
	case "robustness":
		return 2 * len(robustnessScenarios()) * capped(T, robustnessTrialCap)
	case "fleetscale":
		total := 0
		for _, n := range fleetLoads() {
			total += 2 * fleetTrialsFor(n, T)
		}
		return total
	}
	return 0
}
