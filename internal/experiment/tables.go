package experiment

import (
	"fmt"
	"time"

	"h2privacy/internal/adversary"
	"h2privacy/internal/core"
	"h2privacy/internal/metrics"
	"h2privacy/internal/website"
)

// table1Jitters are the paper's sweep points (ms of added delay per request).
var table1Jitters = []time.Duration{0, 25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond}

// table1Point runs one jitter setting and aggregates.
type table1Point struct {
	nonMux  metrics.Counter
	retrans metrics.Sample // client→server retransmissions + duplicate GETs
	broken  metrics.Counter
}

// Table1 reproduces Table I: jitter d ∈ {0,25,50,100} ms, reporting the
// fraction of trials where the quiz HTML transmitted non-multiplexed and
// the growth in client-side retransmission requests (TCP retransmits of
// GETs plus the browser's duplicate GETs — the paper's "retransmission
// requests").
func Table1(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	points := make([]table1Point, len(table1Jitters))
	results, err := opts.Sweep(len(table1Jitters)*opts.Trials, func(k int) core.TrialConfig {
		i, t := k/opts.Trials, k%opts.Trials
		return core.TrialConfig{
			Seed:           seedFor(opts.BaseSeed, i, opts.Trials, t),
			RequestSpacing: table1Jitters[i],
			RandomJitter:   800 * time.Microsecond,
		}
	})
	if err != nil {
		return nil, err
	}
	for k, res := range results {
		i := k / opts.Trials
		points[i].nonMux.Observe(res.BestDoM[website.TargetID] == 0)
		points[i].retrans.Add(float64(res.RetransC2S + res.AppRetries))
		points[i].broken.Observe(res.Broken)
	}
	rep := &Report{
		ID:     "table1",
		Title:  "Effect of jitter on HTTP/2 multiplexing",
		Header: []string{"jitter/req (ms)", "non-multiplexed (%)", "retransmission reqs (mean)", "broken (%)", "paper: non-mux / Δretrans"},
	}
	paper := []string{"32 / 0 (baseline)", "46 / ≈33", "54 / ≈130", "54 / ≈194"}
	for i, d := range table1Jitters {
		rep.Rows = append(rep.Rows, []string{
			f0(d.Seconds() * 1000),
			pct(points[i].nonMux.Percent()),
			f1(points[i].retrans.Mean()),
			pct(points[i].broken.Percent()),
			paper[i],
		})
	}
	rep.Notes = append(rep.Notes,
		"shape criterion: non-multiplexed fraction rises with d and saturates; retransmission requests grow with d",
		"our clean simulated path has a near-zero retransmission baseline, so absolute counts replace the paper's percentages",
		fmt.Sprintf("%d trials per point", opts.Trials))
	return rep, nil
}

// Table2 reproduces Table II: the full staged attack against the survey
// page, reporting per-object success in both targeting modes.
func Table2(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	plan := adversary.DefaultPlan()
	labels := append([]string{"HTML"}, func() []string {
		out := make([]string, website.PartyCount)
		for i := range out {
			out[i] = fmt.Sprintf("I%d", i+1)
		}
		return out
	}()...)
	single := make([]metrics.Counter, len(labels))
	all := make([]metrics.Counter, len(labels))
	var broken metrics.Counter
	results, err := opts.Sweep(opts.Trials, func(t int) core.TrialConfig {
		return core.TrialConfig{
			Seed:   seedFor(opts.BaseSeed, 0, opts.Trials, t),
			Attack: &plan,
		}
	})
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		broken.Observe(res.Broken)
		// HTML row: the quiz is one fixed object in both modes.
		single[0].Observe(res.ObjectSuccess(website.TargetID))
		all[0].Observe(res.ObjectSuccess(website.TargetID))
		// Image rows: single-object mode asks only "was the emblem at
		// rank k identified with DoM 0 somewhere"; all-objects mode
		// requires the inferred sequence position to be correct too.
		for k := 0; k < website.PartyCount; k++ {
			obj := res.DisplaySeq[k]
			single[k+1].Observe(res.ObjectSuccess(obj))
			all[k+1].Observe(res.ObjectSuccess(obj) && res.SequenceRankCorrect(k))
		}
	}
	rep := &Report{
		ID:     "table2",
		Title:  "Full attack prediction accuracy",
		Header: []string{"object", "single-object (%)", "all-objects (%)", "paper: single / all"},
	}
	paperSingle := []string{"100", "100", "100", "100", "100", "100", "100", "100", "100"}
	paperAll := []string{"90", "90", "85", "81", "80", "62", "64", "78", "64"}
	for i, label := range labels {
		rep.Rows = append(rep.Rows, []string{
			label,
			pct(single[i].Percent()),
			pct(all[i].Percent()),
			paperSingle[i] + " / " + paperAll[i],
		})
	}
	rep.Rows = append(rep.Rows, []string{"(broken loads)", pct(broken.Percent()), "", ""})
	rep.Notes = append(rep.Notes,
		"shape criterion: high accuracy for the HTML and early images, decaying for later images (jitter accumulates; connections degrade)",
		fmt.Sprintf("%d trials, random volunteer permutation per trial", opts.Trials))
	return rep, nil
}
