package experiment

import (
	"fmt"
	"time"

	"h2privacy/internal/adversary"
	"h2privacy/internal/core"
	"h2privacy/internal/metrics"
	"h2privacy/internal/website"
)

// Fig1 demonstrates the size-estimation primitive (Fig. 1): across
// baseline trials, objects whose best serving was fully serialized are
// recovered from the encrypted trace with (near-)exact sizes, while
// multiplexed objects defeat the delimiter+sum bookkeeping.
func Fig1(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	// Run with request spacing so the trace contains both serialized
	// and multiplexed transmissions in quantity.
	results, err := opts.Sweep(opts.Trials, func(t int) core.TrialConfig {
		return core.TrialConfig{
			Seed:           seedFor(opts.BaseSeed, 0, opts.Trials, t),
			RequestSpacing: 80 * time.Millisecond,
		}
	})
	if err != nil {
		return nil, err
	}
	var serializedID, multiplexedID metrics.Counter
	var sizeErr metrics.Sample
	for _, res := range results {
		for obj, dom := range res.BestCompleteDoM {
			if dom == 0 {
				serializedID.Observe(res.Identified[obj])
			} else {
				multiplexedID.Observe(res.Identified[obj])
			}
		}
		for _, b := range res.Bursts {
			if b.MatchID != "" {
				sizeErr.Add(float64(b.MatchErr))
			}
		}
	}
	rep := &Report{
		ID:     "fig1",
		Title:  "Size estimation from encrypted traffic",
		Header: []string{"transmission", "identified from trace", "count"},
		Rows: [][]string{
			{"serialized (DoM = 0)", pct(serializedID.Percent()), itoa(serializedID.Total)},
			{"multiplexed (DoM > 0)", pct(multiplexedID.Percent()), itoa(multiplexedID.Total)},
		},
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("mean |size error| over matched bursts: %.1f bytes (record framing makes serialized sums exact)", sizeErr.Mean()),
		"shape criterion: serialized transmissions leak identity at a far higher rate than multiplexed ones")
	return rep, nil
}

// Fig2 is the attack-overview claim (Fig. 2): spacing the GETs serializes
// the object of interest. Baseline vs pure request-spacing, no other knobs.
func Fig2(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	// Both arms of a pair run the same seed: same volunteer, same network
	// noise, spacing as the only difference.
	bases, spacs, err := opts.SweepPaired(opts.Trials, func(t int) (core.TrialConfig, core.TrialConfig) {
		seed := seedFor(opts.BaseSeed, 0, opts.Trials, t)
		return core.TrialConfig{Seed: seed},
			core.TrialConfig{Seed: seed, RequestSpacing: 80 * time.Millisecond}
	})
	if err != nil {
		return nil, err
	}
	var baseDom, spacedDom metrics.Sample
	var baseNon, spacedNon metrics.Counter
	for t := range bases {
		base, spaced := bases[t], spacs[t]
		baseDom.Add(base.BestDoM[website.TargetID])
		spacedDom.Add(spaced.BestDoM[website.TargetID])
		baseNon.Observe(base.BestDoM[website.TargetID] == 0)
		spacedNon.Observe(spaced.BestDoM[website.TargetID] == 0)
	}
	return &Report{
		ID:     "fig2",
		Title:  "Request spacing eliminates multiplexing",
		Header: []string{"condition", "mean DoM(quiz)", "non-multiplexed (%)"},
		Rows: [][]string{
			{"no adversary", f1(baseDom.Mean()*100) + "%", pct(baseNon.Percent())},
			{"GETs spaced 80 ms", f1(spacedDom.Mean()*100) + "%", pct(spacedNon.Percent())},
		},
		Notes: []string{"shape criterion: spacing sharply reduces the quiz HTML's degree of multiplexing"},
	}, nil
}

// Fig3 characterizes the baseline (Fig. 3): degree of multiplexing of the
// quiz HTML and of the emblem images with no adversary.
func Fig3(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	results, err := opts.Sweep(opts.Trials, func(t int) core.TrialConfig {
		return core.TrialConfig{Seed: seedFor(opts.BaseSeed, 0, opts.Trials, t)}
	})
	if err != nil {
		return nil, err
	}
	var quizDom, emblemDom metrics.Sample
	var quizMux metrics.Counter
	for _, res := range results {
		quizMux.Observe(res.BestDoM[website.TargetID] > 0)
		if dom := res.BestDoM[website.TargetID]; dom > 0 {
			quizDom.Add(dom * 100)
		}
		for p := 0; p < website.PartyCount; p++ {
			if dom, ok := res.BestDoM[website.EmblemID(p)]; ok {
				emblemDom.Add(dom * 100)
			}
		}
	}
	return &Report{
		ID:     "fig3",
		Title:  "Baseline multiplexing (no adversary)",
		Header: []string{"metric", "measured", "paper"},
		Rows: [][]string{
			{"quiz HTML multiplexed (% of loads)", pct(quizMux.Percent()), "≈68% (Table I baseline)"},
			{"quiz HTML mean DoM when multiplexed", f1(quizDom.Mean()) + "%", "≈98%"},
			{"emblem images mean DoM", f1(emblemDom.Mean()) + "%", "80–99%"},
		},
		Notes: []string{"the emblems are requested sub-millisecond apart, so at baseline they interleave heavily"},
	}, nil
}

// Fig4 shows the §IV-B side effect: larger jitter triggers duplicate GETs
// which the server answers with duplicate copies, re-intensifying
// multiplexing of the objects after the target.
func Fig4(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	type point struct {
		dupGETs    metrics.Sample
		extraTasks metrics.Sample
		nextDoM    metrics.Sample
	}
	jitters := []time.Duration{0, 50 * time.Millisecond, 100 * time.Millisecond}
	points := make([]point, len(jitters))
	nObjects := len(website.ISideWith().Objects)
	// One flat sweep over (jitter point, trial); the sub-sweep index is
	// the seed variant, so no two points share a seed.
	results, err := opts.Sweep(len(jitters)*opts.Trials, func(k int) core.TrialConfig {
		i, t := k/opts.Trials, k%opts.Trials
		return core.TrialConfig{
			Seed:           seedFor(opts.BaseSeed, i, opts.Trials, t),
			RequestSpacing: jitters[i],
			RandomJitter:   800 * time.Microsecond,
		}
	})
	if err != nil {
		return nil, err
	}
	for k, res := range results {
		i := k / opts.Trials
		points[i].dupGETs.Add(float64(res.AppRetries))
		points[i].extraTasks.Add(float64(res.ServerTasks - nObjects))
		// Multiplexing of the objects following the quiz.
		for _, id := range []string{"analytics-js", "fonts-css", "banner"} {
			if dom, ok := res.BestDoM[id]; ok {
				points[i].nextDoM.Add(dom * 100)
			}
		}
	}
	rep := &Report{
		ID:     "fig4",
		Title:  "Retransmission storm under jitter",
		Header: []string{"jitter/req (ms)", "duplicate GETs", "extra servings", "DoM of next objects (%)"},
	}
	for i, d := range jitters {
		rep.Rows = append(rep.Rows, []string{
			f0(d.Seconds() * 1000),
			f1(points[i].dupGETs.Mean()),
			f1(points[i].extraTasks.Mean()),
			f1(points[i].nextDoM.Mean()),
		})
	}
	rep.Notes = append(rep.Notes,
		"shape criterion: duplicate requests and duplicate servings grow with jitter — the paper's Fig. 4 mechanism")
	return rep, nil
}

// fig5Bandwidths are the paper's sweep points.
var fig5Bandwidths = []float64{1000e6, 800e6, 500e6, 100e6, 1e6}

// Fig5 reproduces the bandwidth study: throttling with 50 ms jitter
// active, reporting data-path retransmissions and attack success.
func Fig5(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	type point struct {
		retrans metrics.Sample
		success metrics.Counter
		broken  metrics.Counter
	}
	points := make([]point, len(fig5Bandwidths))
	results, err := opts.Sweep(len(fig5Bandwidths)*opts.Trials, func(k int) core.TrialConfig {
		i, t := k/opts.Trials, k%opts.Trials
		return core.TrialConfig{
			Seed:           seedFor(opts.BaseSeed, i, opts.Trials, t),
			RequestSpacing: 50 * time.Millisecond,
			RandomJitter:   25 * time.Millisecond, // netem's 50ms jitter discipline
			ThrottleBps:    fig5Bandwidths[i],
		}
	})
	if err != nil {
		return nil, err
	}
	for k, res := range results {
		i := k / opts.Trials
		points[i].retrans.Add(float64(res.RetransS2C))
		points[i].success.Observe(res.ObjectSuccess(website.TargetID))
		points[i].broken.Observe(res.Broken)
	}
	rep := &Report{
		ID:     "fig5",
		Title:  "Effect of bandwidth limitation (50 ms jitter active)",
		Header: []string{"bandwidth (Mbps)", "data retransmissions", "success (%)", "broken (%)"},
	}
	for i, bw := range fig5Bandwidths {
		rep.Rows = append(rep.Rows, []string{
			f0(bw / 1e6),
			f1(points[i].retrans.Mean()),
			pct(points[i].success.Percent()),
			pct(points[i].broken.Percent()),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper shape: retransmissions fall as bandwidth falls; success peaks near 800 Mbps; 1 Mbps breaks the connection",
		"data-path (server→client) retransmissions shown; request retransmissions are Table I's metric")
	return rep, nil
}

// Fig6 isolates the §IV-D mechanism: jitter + throttle + 80 % drops for
// the drop window versus the same without drops. Success means the quiz
// HTML was serialized AND identified after the reset cycle.
func Fig6(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	type point struct {
		success metrics.Counter
		resets  metrics.Sample
		broken  metrics.Counter
	}
	var withDrops, withoutDrops point
	// Paired on the same seed: the only difference is the drop window.
	dropped, undropped, err := opts.SweepPaired(opts.Trials, func(t int) (core.TrialConfig, core.TrialConfig) {
		seed := seedFor(opts.BaseSeed, 0, opts.Trials, t)
		plan := adversary.DefaultPlan()
		noDrop := plan
		noDrop.DropRate = 0
		return core.TrialConfig{Seed: seed, Attack: &plan},
			core.TrialConfig{Seed: seed, Attack: &noDrop}
	})
	if err != nil {
		return nil, err
	}
	for t := range dropped {
		res, res2 := dropped[t], undropped[t]
		withDrops.success.Observe(res.ObjectSuccess(website.TargetID))
		withDrops.resets.Add(float64(res.Resets))
		withDrops.broken.Observe(res.Broken)
		withoutDrops.success.Observe(res2.ObjectSuccess(website.TargetID))
		withoutDrops.resets.Add(float64(res2.Resets))
		withoutDrops.broken.Observe(res2.Broken)
	}
	return &Report{
		ID:     "fig6",
		Title:  "Targeted drops force the stream-reset clean slate",
		Header: []string{"condition", "quiz identified (%)", "mean resets", "broken (%)", "paper"},
		Rows: [][]string{
			{"jitter+throttle+80% drops", pct(withDrops.success.Percent()), f1(withDrops.resets.Mean()), pct(withDrops.broken.Percent()), "≈90%"},
			{"jitter+throttle only", pct(withoutDrops.success.Percent()), f1(withoutDrops.resets.Mean()), pct(withoutDrops.broken.Percent()), "(insufficient, §IV-C)"},
		},
		Notes: []string{"shape criterion: drops force the reset and lift success far above the drop-free configuration"},
	}, nil
}
