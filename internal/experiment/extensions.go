package experiment

import (
	"fmt"
	"time"

	"h2privacy/internal/adversary"
	"h2privacy/internal/core"
	"h2privacy/internal/metrics"
	"h2privacy/internal/predict"
	"h2privacy/internal/tcpsim"
	"h2privacy/internal/website"
)

// Partial evaluates the §VII extension "infer the object identity even
// when the object is partly multiplexed": under jitter alone (no reset
// clean-slate), many bursts are merges of 2–3 objects; subset-sum
// decomposition over the size catalog recovers them when the split is
// unambiguous.
func Partial(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	site := website.ISideWith()
	an := predict.NewAnalyzer(site.SizeToIdentity(), predict.Config{})
	var plainQuiz, decompQuiz metrics.Counter
	var plainAll, decompAll metrics.Counter
	catalog := site.SizeToIdentity()
	results, err := opts.Sweep(opts.Trials, func(t int) core.TrialConfig {
		return core.TrialConfig{
			Seed:           seedFor(opts.BaseSeed, 0, opts.Trials, t),
			RequestSpacing: 50 * time.Millisecond,
			RandomJitter:   800 * time.Microsecond,
		}
	})
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		// The analyzer is shared mutable state, so decomposition stays in
		// this sequential aggregation pass rather than in the trial bodies.
		decomposed := an.MatchedObjectsWithDecomposition(res.Bursts, 3)
		plainQuiz.Observe(res.Identified[website.TargetID])
		decompQuiz.Observe(decomposed[website.TargetID])
		for _, obj := range site.Objects {
			if _, unique := catalog[obj.Size]; !unique {
				continue
			}
			plainAll.Observe(res.Identified[obj.ID])
			decompAll.Observe(decomposed[obj.ID])
		}
	}
	return &Report{
		ID:     "partial",
		Title:  "Partial-multiplexing inference (paper §VII future work)",
		Header: []string{"predictor", "quiz identified (%)", "all objects identified (%)"},
		Rows: [][]string{
			{"exact size match only", pct(plainQuiz.Percent()), pct(plainAll.Percent())},
			{"+ subset-sum decomposition (≤3)", pct(decompQuiz.Percent()), pct(decompAll.Percent())},
		},
		Notes: []string{
			"jitter-only configuration (no reset clean slate): bursts frequently merge 2–3 objects",
			"the paper's caveat holds: \"innumerable ways objects can be multiplexed\" — only unambiguous decompositions are used",
		},
	}, nil
}

// CrossTraffic measures the attack's robustness to uncontrolled
// background load sharing the gateway — the biggest difference between
// our clean simulation and the paper's campus network.
func CrossTraffic(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if opts.Trials > 25 {
		opts.Trials = 25 // background packets dominate the event count
	}
	plan := adversary.DefaultPlan()
	loads := []float64{0, 100e6, 300e6}
	rep := &Report{
		ID:     "crosstraffic",
		Title:  "Attack vs background cross-traffic",
		Header: []string{"background load", "HTML ok (%)", "ranks ok (%)", "broken (%)"},
	}
	results, err := opts.Sweep(len(loads)*opts.Trials, func(k int) core.TrialConfig {
		i, t := k/opts.Trials, k%opts.Trials
		return core.TrialConfig{
			Seed:            seedFor(opts.BaseSeed, i, opts.Trials, t),
			Attack:          &plan,
			CrossTrafficBps: loads[i],
		}
	})
	if err != nil {
		return nil, err
	}
	for i, load := range loads {
		var html, ranks, broken metrics.Counter
		for _, res := range results[i*opts.Trials : (i+1)*opts.Trials] {
			html.Observe(res.ObjectSuccess(website.TargetID))
			for k := 0; k < website.PartyCount; k++ {
				ranks.Observe(res.SequenceRankCorrect(k))
			}
			broken.Observe(res.Broken)
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%.0f Mbps", load/1e6),
			pct(html.Percent()), pct(ranks.Percent()), pct(broken.Percent()),
		})
	}
	rep.Notes = append(rep.Notes,
		"background packets share the gateway's queues and bandwidth but belong to other flows")
	return rep, nil
}

// Sensitivity sweeps the attack's two timing knobs (§VII's "triggering
// the packet drops and jitter addition accurately will alleviate this"):
// the phase-3 image spacing and the drop-window duration.
func Sensitivity(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	trials := opts.Trials
	if trials > 40 {
		trials = 40 // 9 configurations; keep the sweep bounded
	}
	rep := &Report{
		ID:     "sensitivity",
		Title:  "Attack parameter sensitivity (full staged attack)",
		Header: []string{"phase-3 jitter", "drop window", "HTML ok (%)", "ranks ok (%)", "broken (%)"},
	}
	jitters := []time.Duration{40 * time.Millisecond, 80 * time.Millisecond, 160 * time.Millisecond}
	windows := []time.Duration{3 * time.Second, 5 * time.Second, 7 * time.Second}
	// Materialize the 3×3 grid first so one flat sweep covers every cell.
	type cell struct {
		jitter, window time.Duration
		plan           adversary.AttackPlan
	}
	var cells []cell
	for _, j := range jitters {
		for _, w := range windows {
			plan := adversary.DefaultPlan()
			plan.Phase3Jitter = j
			plan.DropDuration = w
			cells = append(cells, cell{jitter: j, window: w, plan: plan})
		}
	}
	results, err := opts.Sweep(len(cells)*trials, func(k int) core.TrialConfig {
		i, t := k/trials, k%trials
		return core.TrialConfig{
			Seed:   seedFor(opts.BaseSeed, i, trials, t),
			Attack: &cells[i].plan,
		}
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		var html, ranks, broken metrics.Counter
		for _, res := range results[i*trials : (i+1)*trials] {
			html.Observe(res.ObjectSuccess(website.TargetID))
			for k := 0; k < website.PartyCount; k++ {
				ranks.Observe(res.SequenceRankCorrect(k))
			}
			broken.Observe(res.Broken)
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%v", c.jitter), fmt.Sprintf("%v", c.window),
			pct(html.Percent()), pct(ranks.Percent()), pct(broken.Percent()),
		})
	}
	rep.Notes = append(rep.Notes,
		"the paper's published operating point (80ms, ≈client-patience window) should sit near the best cell",
		fmt.Sprintf("%d trials per configuration", trials))
	return rep, nil
}

// TCPAblation re-runs the full attack against a legacy receiver/sender
// model (no RACK reordering window, no tail-loss probes, delayed ACKs on)
// versus the default modern stack. The paper measured a 2020-era Linux;
// this shows how much the attack's reliability depends on the victim's
// loss-recovery generation.
func TCPAblation(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	plan := adversary.DefaultPlan()
	stacks := []struct {
		name string
		cfg  tcpsim.Config
	}{
		{"modern (RACK + TLP)", tcpsim.Config{}},
		{"legacy (NewReno, delayed ACKs)", tcpsim.Config{DisableRACKWindow: true, DelayedAck: true}},
	}
	rep := &Report{
		ID:     "tcpablation",
		Title:  "Attack vs victim TCP generation",
		Header: []string{"victim stack", "HTML ok (%)", "ranks ok (%)", "broken (%)"},
	}
	results, err := opts.Sweep(len(stacks)*opts.Trials, func(k int) core.TrialConfig {
		i, t := k/opts.Trials, k%opts.Trials
		return core.TrialConfig{
			Seed:   seedFor(opts.BaseSeed, i, opts.Trials, t),
			Attack: &plan,
			TCP:    stacks[i].cfg,
		}
	})
	if err != nil {
		return nil, err
	}
	for i, st := range stacks {
		var html, ranks, broken metrics.Counter
		for _, res := range results[i*opts.Trials : (i+1)*opts.Trials] {
			html.Observe(res.ObjectSuccess(website.TargetID))
			for k := 0; k < website.PartyCount; k++ {
				ranks.Observe(res.SequenceRankCorrect(k))
			}
			broken.Observe(res.Broken)
		}
		rep.Rows = append(rep.Rows, []string{st.name, pct(html.Percent()), pct(ranks.Percent()), pct(broken.Percent())})
	}
	rep.Notes = append(rep.Notes,
		"the attack works against both generations — robustness across victim stacks, not a dependency on one")
	return rep, nil
}
