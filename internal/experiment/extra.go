package experiment

import (
	"fmt"
	"time"

	"h2privacy/internal/adversary"
	"h2privacy/internal/capture"
	"h2privacy/internal/core"
	"h2privacy/internal/endpoint"
	"h2privacy/internal/metrics"
	"h2privacy/internal/netsim"
	"h2privacy/internal/predict"
	"h2privacy/internal/simtime"
	"h2privacy/internal/tcpsim"
	"h2privacy/internal/tlsrec"
	"h2privacy/internal/website"
)

// Ablation builds the adversary up stage by stage (§IV's narrative):
// nothing → jitter → jitter+throttle → the full staged attack.
func Ablation(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	fullPlan := adversary.DefaultPlan()
	stages := []struct {
		name string
		cfg  func(seed int64) core.TrialConfig
	}{
		{"no adversary", func(seed int64) core.TrialConfig {
			return core.TrialConfig{Seed: seed}
		}},
		{"+ jitter 50ms", func(seed int64) core.TrialConfig {
			return core.TrialConfig{Seed: seed, RequestSpacing: 50 * time.Millisecond, RandomJitter: 800 * time.Microsecond}
		}},
		{"+ throttle 800Mbps", func(seed int64) core.TrialConfig {
			return core.TrialConfig{Seed: seed, RequestSpacing: 50 * time.Millisecond, RandomJitter: 800 * time.Microsecond, ThrottleBps: 800e6}
		}},
		{"+ drops (full attack)", func(seed int64) core.TrialConfig {
			plan := fullPlan
			return core.TrialConfig{Seed: seed, Attack: &plan}
		}},
	}
	rep := &Report{
		ID:     "ablation",
		Title:  "Adversary stage ablation",
		Header: []string{"stage", "quiz non-mux (%)", "quiz identified (%)", "broken (%)"},
	}
	results, err := opts.Sweep(len(stages)*opts.Trials, func(k int) core.TrialConfig {
		i, t := k/opts.Trials, k%opts.Trials
		return stages[i].cfg(seedFor(opts.BaseSeed, i, opts.Trials, t))
	})
	if err != nil {
		return nil, err
	}
	for i, st := range stages {
		var nonMux, success, broken metrics.Counter
		for t := 0; t < opts.Trials; t++ {
			res := results[i*opts.Trials+t]
			nonMux.Observe(res.BestDoM[website.TargetID] == 0)
			success.Observe(res.ObjectSuccess(website.TargetID))
			broken.Observe(res.Broken)
		}
		rep.Rows = append(rep.Rows, []string{st.name, pct(nonMux.Percent()), pct(success.Percent()), pct(broken.Percent())})
	}
	rep.Notes = append(rep.Notes, "shape criterion: each §IV stage raises identification; only the full staged attack makes it reliable")
	return rep, nil
}

// Defense evaluates the §VII idea the paper proposes: the client requests
// the emblems in a random order every load, decoupling the request order
// from the displayed ranking.
func Defense(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	plan := adversary.DefaultPlan()
	run := func(variant int, shuffled bool) (rankAcc, objAcc float64, err error) {
		results, err := opts.Sweep(opts.Trials, func(t int) core.TrialConfig {
			return core.TrialConfig{
				Seed:                seedFor(opts.BaseSeed, variant, opts.Trials, t),
				Attack:              &plan,
				ShuffledEmblemOrder: shuffled,
			}
		})
		if err != nil {
			return 0, 0, err
		}
		var rank, obj metrics.Counter
		for _, res := range results {
			for k := 0; k < website.PartyCount; k++ {
				rank.Observe(res.SequenceRankCorrect(k))
				obj.Observe(res.ObjectSuccess(res.DisplaySeq[k]))
			}
		}
		return rank.Percent(), obj.Percent(), nil
	}
	baseRank, baseObj, err := run(0, false)
	if err != nil {
		return nil, err
	}
	defRank, defObj, err := run(1, true)
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:     "defense",
		Title:  "Randomized request order (paper §VII future work)",
		Header: []string{"condition", "rank accuracy (%)", "emblem identified (%)"},
		Rows: [][]string{
			{"preference order (vulnerable)", pct(baseRank), pct(baseObj)},
			{"randomized order (defense)", pct(defRank), pct(defObj)},
		},
		Notes: []string{
			"the defense leaves object identification intact (sizes still leak) but collapses rank inference toward the 12.5% chance level",
		},
	}, nil
}

// Padding evaluates the orthogonal defense HTTP/2 ships in the framing
// layer: random DATA-frame padding breaks the size→identity mapping even
// for fully serialized transmissions.
func Padding(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	plan := adversary.DefaultPlan()
	run := func(variant int, pad bool) (objAcc float64, err error) {
		results, err := opts.Sweep(opts.Trials, func(t int) core.TrialConfig {
			cfg := core.TrialConfig{
				Seed:   seedFor(opts.BaseSeed, variant, opts.Trials, t),
				Attack: &plan,
			}
			if pad {
				// Per-trial padding RNG, owned by this trial's closure.
				rng := simtime.NewRand(cfg.Seed * 7)
				cfg.Server.H2.PadData = func(n int) int { return rng.Intn(256) }
			}
			return cfg
		})
		if err != nil {
			return 0, err
		}
		var obj metrics.Counter
		for _, res := range results {
			obj.Observe(res.ObjectSuccess(website.TargetID))
			for k := 0; k < website.PartyCount; k++ {
				obj.Observe(res.ObjectSuccess(res.DisplaySeq[k]))
			}
		}
		return obj.Percent(), nil
	}
	noPad, err := run(0, false)
	if err != nil {
		return nil, err
	}
	padded, err := run(1, true)
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:     "padding",
		Title:  "Random DATA-frame padding vs the attack",
		Header: []string{"condition", "objects identified (%)"},
		Rows: [][]string{
			{"no padding", pct(noPad)},
			{"random 0-255B padding per frame", pct(padded)},
		},
		Notes: []string{"padding survives serialization: the observed size no longer matches the catalog"},
	}, nil
}

// PushDefense evaluates the other §VII idea: the server pushes all eight
// emblems, in catalog order, the moment the results script is requested.
// The adversary's two levers fail at once: its GET counter never sees
// emblem requests to space, and the transfer order carries no preference
// information.
func PushDefense(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	plan := adversary.DefaultPlan()
	run := func(variant int, push bool) (rankAcc, identAcc, domAcc float64, err error) {
		results, err := opts.Sweep(opts.Trials, func(t int) core.TrialConfig {
			return core.TrialConfig{
				Seed:       seedFor(opts.BaseSeed, variant, opts.Trials, t),
				Attack:     &plan,
				ServerPush: push,
			}
		})
		if err != nil {
			return 0, 0, 0, err
		}
		var rank, ident, nonMux metrics.Counter
		for _, res := range results {
			for k := 0; k < website.PartyCount; k++ {
				rank.Observe(res.SequenceRankCorrect(k))
				ident.Observe(res.ObjectSuccess(res.DisplaySeq[k]))
				nonMux.Observe(res.BestCompleteDoM[res.DisplaySeq[k]] == 0)
			}
		}
		return rank.Percent(), ident.Percent(), nonMux.Percent(), nil
	}
	baseRank, baseIdent, baseDom, err := run(0, false)
	if err != nil {
		return nil, err
	}
	pushRank, pushIdent, pushDom, err := run(1, true)
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:     "pushdef",
		Title:  "Server-push defense (paper §VII future work)",
		Header: []string{"condition", "emblem rank accuracy (%)", "emblem identified (%)", "emblem non-mux (%)"},
		Rows: [][]string{
			{"request-driven (vulnerable)", pct(baseRank), pct(baseIdent), pct(baseDom)},
			{"server push (defense)", pct(pushRank), pct(pushIdent), pct(pushDom)},
		},
		Notes: []string{
			"pushed emblems leave together and interleave; the spacing lever never sees their requests",
		},
	}, nil
}

// H1Baseline contrasts with HTTP/1.1 (§II): sequential processing means
// every object is trivially serialized and identified with NO adversary.
func H1Baseline(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	trials := opts.Trials
	if trials > 25 {
		trials = 25 // the h1 page load is slow (sequential); shape needs few trials
	}
	// This runner assembles its H1 testbed by hand instead of going through
	// core.RunTrial, so it rides the generic trial pool: each body owns its
	// scheduler and RNG, writes only outcomes[t], and ticks the reporter.
	outcomes := make([]struct{ serialized, identified metrics.Counter }, trials)
	err := opts.ForEachTrial(trials, func(t int) error {
		seed := seedFor(opts.BaseSeed, 0, trials, t)
		sched := simtime.NewScheduler()
		rng := simtime.NewRand(seed)
		path, err := netsim.NewPath(sched, rng.Fork(), netsim.PathConfig{Link: core.DefaultLink()})
		if err != nil {
			return err
		}
		mon := capture.NewMonitor()
		path.AddTap(mon)
		pair, err := tcpsim.NewPair(sched, rng.Fork(), path, tcpsim.Config{})
		if err != nil {
			return err
		}
		site := website.ISideWith()
		plan, err := site.PlanFor(website.RandomPerm(rng.Fork()))
		if err != nil {
			return err
		}
		srv, err := endpoint.NewH1Server(sched, rng.Fork(), pair.Server, site, endpoint.ServerConfig{})
		if err != nil {
			return err
		}
		cli, err := endpoint.NewH1Browser(sched, rng.Fork(), pair.Client, site, plan)
		if err != nil {
			return err
		}
		srv.Start()
		cli.Start()
		sched.RunUntil(120 * time.Second)
		if srv.Err() != nil || cli.Err() != nil {
			return fmt.Errorf("h1 trial %d: server=%v client=%v", t, srv.Err(), cli.Err())
		}
		dom := metrics.BestDoMPerObject(srv.TxLog())
		matched := h1Identify(mon.Records(), site)
		catalog := site.SizeToIdentity()
		for _, obj := range site.Objects {
			outcomes[t].serialized.Observe(dom[obj.ID] == 0)
			if _, unique := catalog[obj.Size]; unique {
				outcomes[t].identified.Observe(matched[obj.ID])
			}
		}
		opts.Progress.Tick()
		return nil
	})
	if err != nil {
		return nil, err
	}
	var identified, serialized metrics.Counter
	for t := range outcomes {
		serialized.Hits += outcomes[t].serialized.Hits
		serialized.Total += outcomes[t].serialized.Total
		identified.Hits += outcomes[t].identified.Hits
		identified.Total += outcomes[t].identified.Total
	}
	return &Report{
		ID:     "h1base",
		Title:  "HTTP/1.1 baseline (no adversary needed)",
		Header: []string{"metric", "measured", "expectation"},
		Rows: [][]string{
			{"objects serialized (DoM = 0)", pct(serialized.Percent()), "100% (sequential protocol)"},
			{"uniquely-sized objects identified", pct(identified.Percent()), "≈100%"},
		},
		Notes: []string{"this is the §II premise: HTTP/1.x leaks every object size to a purely passive eavesdropper"},
	}, nil
}

// h1Identify applies the classic HTTP/1.x delimiter heuristic (the
// paper's Fig. 1): responses are strictly sequential and the record layer
// fills records to MaxPlaintext mid-object, so a short record delimits an
// object. The estimated body size is the inter-delimiter sum minus the
// (approximately constant) response head.
func h1Identify(records []capture.RecordEvent, site *website.Site) map[string]bool {
	const approxHead = 60
	an := predict.NewAnalyzer(site.SizeToIdentity(), predict.Config{Tolerance: 150})
	out := make(map[string]bool)
	sum := 0
	for _, rec := range records {
		if rec.Dir != netsim.ServerToClient || rec.Type != tlsrec.ContentApplicationData || rec.Tainted {
			continue
		}
		sum += rec.PlainLen
		if rec.PlainLen == tlsrec.MaxPlaintext {
			continue // a full record never ends a response
		}
		if id, _, ok := an.Identify(sum - approxHead); ok {
			out[id] = true
		}
		sum = 0
	}
	return out
}
