package experiment

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"h2privacy/internal/check"
	"h2privacy/internal/core"
	"h2privacy/internal/flowseq"
	"h2privacy/internal/simtime"
)

// This file is the sweep engine's trial supervision layer. Every core
// trial launched by sweep() runs under a supervisor that
//
//   1. isolates panics: recover() converts a panicking trial into a
//      structured TrialFailure instead of tearing down the whole sweep;
//   2. enforces watchdogs: a virtual-time step budget (Options.StepBudget
//      → simtime.BudgetError, deterministic) and an optional wall-clock
//      deadline (Options.TrialDeadline → simtime.DeadlineError,
//      best-effort) kill wedged simulations loudly instead of hanging;
//   3. retries failed trials up to Options.MaxRetries times with
//      escalating backoff (each attempt on fresh per-trial state — new
//      scheduler, RNG, checker, analyzer — so a deterministic failure
//      fails identically and a host-side flake gets a clean slate);
//   4. quarantines trials that stay dead: when Options.Quarantine is
//      armed, the permanent failure is recorded with its repro command,
//      a placeholder result keeps the sweep's index-aligned aggregation
//      total, and the sweep completes in *degraded* mode instead of
//      aborting.
//
// Determinism contract: supervision is observationally invisible on clean
// sweeps — watchdogs that never trip schedule nothing and consume no RNG
// draws, the sweep_trials_* metric families are registered lazily on the
// first failure, and the quarantine/degraded manifest fields are omitted
// when empty — so clean output stays byte-identical to the unsupervised
// engine. For identical failure sets the quarantine file, reports, CSVs
// and manifests are byte-identical at any worker count: failures are
// collected concurrently but always reported sorted by flat trial index,
// and panic values, step-budget trips and attempt counts are themselves
// deterministic. The only documented exception is the wall-clock deadline
// (a backstop against host-side wedges, not a reproducible observation);
// its failure detail carries host timing.
//
// Without a Quarantine collector the engine keeps its historical
// fail-fast behavior — lowest-index error wins, sweep aborts — except
// that panics now surface as structured *TrialFailure errors instead of
// crashing the process.

// FailureKind classifies why a supervised trial died.
type FailureKind string

const (
	// FailPanic: the trial body panicked (a bug, or injected ChaosPanic).
	FailPanic FailureKind = "panic"
	// FailTimeout: a watchdog tripped — the virtual-time step budget or
	// the wall-clock deadline.
	FailTimeout FailureKind = "timeout"
	// FailError: core.RunTrial returned an ordinary error.
	FailError FailureKind = "error"
)

// TrialFailure is the structured record of a failed trial attempt: which
// trial (flat sweep index), which seed reproduces it, how it died, how
// many attempts it was given, and the standalone repro command. It
// implements error, so the fail-fast path (no Quarantine armed) returns
// it through the sweep's lowest-index-error-wins machinery.
type TrialFailure struct {
	Trial    int         `json:"trial"`
	Seed     int64       `json:"seed"`
	Kind     FailureKind `json:"kind"`
	Attempts int         `json:"attempts"`
	Err      string      `json:"error"`
	// Repro is the standalone command that replays this exact failure;
	// stamped by the Quarantine collector's formatter (Quarantine.SetRepro,
	// installed by the cmds the way check.Recorder.SetRepro is).
	Repro string `json:"repro,omitempty"`

	cause error // non-nil for FailError; supports errors.Is/As through Unwrap
}

// Error renders the failure for the fail-fast path and logs.
func (f *TrialFailure) Error() string {
	return fmt.Sprintf("trial %d (seed %d) failed [%s] after %d attempt(s): %s",
		f.Trial, f.Seed, f.Kind, f.Attempts, f.Err)
}

// Unwrap exposes the underlying error (nil for panics and timeouts).
func (f *TrialFailure) Unwrap() error { return f.cause }

// Quarantine collects permanently failed trials and arms the sweep's
// degraded mode: with a non-nil Quarantine in Options, a trial that is
// still dead after its retries is recorded here — with a repro command —
// and replaced by a placeholder result (core.QuarantinedResult) so the
// sweep completes instead of aborting. Safe for concurrent use by sweep
// workers; all accessors report failures sorted by flat trial index so
// every derived artifact is byte-identical at any worker count.
type Quarantine struct {
	mu       sync.Mutex
	failures []TrialFailure
	repro    func(TrialFailure) string
}

// NewQuarantine returns an empty collector.
func NewQuarantine() *Quarantine { return &Quarantine{} }

// SetRepro installs the command formatter used to stamp each quarantined
// failure's standalone repro line (e.g. "h2attack -trials 1 -seed 42017
// -chaos panic:0"). Mirrors check.Recorder.SetRepro.
func (q *Quarantine) SetRepro(fn func(TrialFailure) string) {
	if q == nil {
		return
	}
	q.mu.Lock()
	q.repro = fn
	q.mu.Unlock()
}

// add records one permanent failure, stamping its repro command.
func (q *Quarantine) add(f TrialFailure) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.repro != nil {
		f.Repro = q.repro(f)
	} else {
		f.Repro = fmt.Sprintf("re-run trial %d standalone with seed %d", f.Trial, f.Seed)
	}
	q.failures = append(q.failures, f)
}

// Len reports how many trials are quarantined.
func (q *Quarantine) Len() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.failures)
}

// Failures returns a copy of the quarantined failures sorted by flat
// trial index — completion order is worker-count-dependent, report order
// must not be.
func (q *Quarantine) Failures() []TrialFailure {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	out := make([]TrialFailure, len(q.failures))
	copy(out, q.failures)
	q.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Trial < out[j].Trial })
	return out
}

// QuarantineReceipt is the manifest's quarantine summary: how many trials
// were lost and the full failure records. Derived from seeds, panic
// values and deterministic attempt counts, so StripWallClock keeps it —
// same failure sets must agree on it at any worker count.
type QuarantineReceipt struct {
	Quarantined int            `json:"quarantined"`
	Failures    []TrialFailure `json:"failures"`
}

// Receipt builds the manifest summary.
func (q *Quarantine) Receipt() QuarantineReceipt {
	f := q.Failures()
	return QuarantineReceipt{Quarantined: len(f), Failures: f}
}

// quarantineFile is the machine-readable quarantine artifact: version tag
// for downstream tooling, the producing tool, and one entry per
// quarantined trial with its repro command. Goroutine stacks are
// deliberately excluded — they carry goroutine IDs and scheduler-
// dependent frames that differ across worker counts and would break the
// artifact's byte-identity; stacks go to stderr at panic time instead.
type quarantineFile struct {
	Version  int            `json:"version"`
	Tool     string         `json:"tool,omitempty"`
	Failures []TrialFailure `json:"failures"`
}

// WriteJSON serializes the quarantine artifact as indented JSON.
func (q *Quarantine) WriteJSON(w io.Writer, tool string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(quarantineFile{Version: 1, Tool: tool, Failures: q.Failures()})
}

// WriteFile writes the quarantine artifact to path.
func (q *Quarantine) WriteFile(path, tool string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := q.WriteJSON(f, tool); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Supervision metric families. Registered lazily — on the first failure,
// never for a clean sweep — so an armed-but-untouched supervisor leaves
// the registry snapshot byte-identical to the unsupervised engine's
// (obs.Registry.Snapshot sorts families by name, so late registration
// cannot perturb ordering either). All four are integer counters bumped
// from worker goroutines; counts are deterministic for a given failure
// set, order of increments is not observable.
const (
	mfPanicked    = "sweep_trials_panicked"
	mfRetried     = "sweep_trials_retried"
	mfQuarantined = "sweep_trials_quarantined"
	mfTimedout    = "sweep_trials_timedout"
)

// countFailure bumps one supervision counter; no-op without a registry.
func (o Options) countFailure(name, help string) {
	if o.Metrics == nil {
		return
	}
	o.Metrics.Counter(name, help).Inc()
}

// superviseLogW resolves the supervisor's diagnostics destination.
func (o Options) superviseLogW() io.Writer {
	if o.SuperviseLog != nil {
		return o.SuperviseLog
	}
	return os.Stderr
}

// isCancellation reports whether err is cooperative-cancellation fallout
// rather than a trial failure: cancelled trials are never retried,
// quarantined or counted — the sweep drains and returns the context
// error.
func isCancellation(err error) bool {
	return err != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

// superviseTrial runs one fully-decorated trial config under the
// supervisor: panic isolation, up to 1+MaxRetries attempts with
// escalating backoff, then quarantine (degraded mode) or a structured
// fail-fast error. Per-attempt collaborators (checker, flow analyzer)
// are created fresh inside the attempt loop so a retry never inherits a
// half-poisoned shadow state; the cross-layer tracer is only ever armed
// on the first attempt so a retry cannot interleave into its ring buffer.
func (o Options) superviseTrial(flat int, cfg core.TrialConfig) (*core.TrialResult, error) {
	attempts := 1 + o.MaxRetries
	if attempts < 1 {
		attempts = 1
	}
	var last *TrialFailure
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			if err := o.retryBackoff(attempt); err != nil {
				return nil, err
			}
			o.countFailure(mfRetried, "Trial attempts that were retries after a failed attempt.")
		}
		acfg := cfg
		if attempt > 1 {
			acfg.Trace = nil
		}
		// Fault injection is consulted per attempt, not per trial, so a
		// stateful hook can model transient faults ("attempt 1 dies,
		// attempt 2 is clean") — the scenario retries exist for. The cmds'
		// -chaos hook is a pure index lookup, so for it per-attempt and
		// per-trial are indistinguishable.
		if o.ChaosTrial != nil && acfg.Chaos == core.ChaosNone {
			acfg.Chaos = o.ChaosTrial(flat)
		}
		if o.Check != nil && acfg.Check == nil {
			acfg.Check = check.New(cfg.Seed, flat, o.Check)
		}
		if o.Features != nil && acfg.Flows == nil {
			acfg.Flows = flowseq.New(flat, o.Features)
		}
		res, fail := o.attemptTrial(acfg, flat, attempt)
		if fail == nil {
			return res, nil
		}
		if isCancellation(fail.cause) {
			return nil, fail.cause
		}
		last = fail
	}
	last.Attempts = attempts
	if o.Quarantine == nil {
		// Fail-fast mode: the structured failure feeds the engine's
		// lowest-index-error-wins machinery, exactly like a plain error
		// always has.
		return nil, last
	}
	o.Quarantine.add(*last)
	o.countFailure(mfQuarantined, "Trials permanently failed and quarantined after exhausting retries.")
	return core.QuarantinedResult(cfg.Seed, last.Err), nil
}

// retryBackoff sleeps the escalating inter-attempt delay (RetryBackoff,
// doubled per further retry), interruptible by Options.Ctx.
func (o Options) retryBackoff(attempt int) error {
	if o.RetryBackoff <= 0 {
		if o.Ctx != nil && o.Ctx.Err() != nil {
			return o.Ctx.Err()
		}
		return nil
	}
	d := o.RetryBackoff << uint(attempt-2)
	if o.Ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-o.Ctx.Done():
		return o.Ctx.Err()
	case <-t.C:
		return nil
	}
}

// attemptTrial executes one attempt with panic isolation. A recovered
// panic is classified — watchdog trips (simtime.BudgetError /
// DeadlineError) as FailTimeout, everything else as FailPanic — and the
// attempt's checker is abandoned so violations recorded before the
// failure still reach the shared recorder (without the end-of-trial
// conservation checks, which would fire spuriously on mid-flight state).
// Goroutine stacks print to stderr only: they are not deterministic
// across worker counts and must stay out of every byte-identical
// artifact.
func (o Options) attemptTrial(cfg core.TrialConfig, flat, attempt int) (res *core.TrialResult, fail *TrialFailure) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		res = nil
		cfg.Check.Abandon()
		kind := FailPanic
		switch r.(type) {
		case *simtime.BudgetError, *simtime.DeadlineError:
			kind = FailTimeout
			o.countFailure(mfTimedout, "Trial attempts killed by a watchdog (step budget or wall deadline).")
		default:
			o.countFailure(mfPanicked, "Trial attempts that panicked.")
		}
		w := o.superviseLogW()
		fmt.Fprintf(w, "sweep: trial %d (seed %d) %s on attempt %d: %v\n",
			flat, cfg.Seed, kind, attempt, r)
		if kind == FailPanic {
			w.Write(debug.Stack())
		}
		fail = &TrialFailure{Trial: flat, Seed: cfg.Seed, Kind: kind, Attempts: attempt, Err: fmt.Sprint(r)}
	}()
	res, err := core.RunTrial(cfg)
	if err != nil {
		return nil, &TrialFailure{
			Trial: flat, Seed: cfg.Seed, Kind: FailError,
			Attempts: attempt, Err: err.Error(), cause: err,
		}
	}
	return res, nil
}
