package experiment

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"h2privacy/internal/flowseq"
	"h2privacy/internal/obs"
	"h2privacy/internal/perf"
)

// Manifest is a sweep's machine-readable run record: what was run (tool,
// options, seeds), on what (Go version), how long each experiment took,
// and the final metrics-registry snapshot. Everything except StartedAt and
// the per-experiment WallMS values is derived from seeds and virtual time,
// so two same-seed runs produce byte-identical manifests once
// StripWallClock zeroes those fields.
type Manifest struct {
	Tool      string `json:"tool"`
	GoVersion string `json:"go_version"`
	// StartedAt is wall-clock (RFC3339); stripped by StripWallClock.
	StartedAt string `json:"started_at,omitempty"`
	Trials    int    `json:"trials"`
	BaseSeed  int64  `json:"base_seed"`
	// Workers is the resolved sweep worker-pool size (machine-dependent
	// when Options.Workers is 0); stripped by StripWallClock so stripped
	// manifests compare equal across worker counts — the determinism
	// guarantee is precisely that Workers never changes anything else.
	Workers int `json:"workers,omitempty"`
	// GoMaxProcs and NumCPU identify the host environment the wall times
	// were measured on; machine-dependent, so stripped by StripWallClock.
	GoMaxProcs int           `json:"gomaxprocs,omitempty"`
	NumCPU     int           `json:"numcpu,omitempty"`
	Runs       []ManifestRun `json:"runs"`
	Metrics    *obs.Snapshot `json:"metrics,omitempty"`
	// Perf is the run's host-side per-stage cost attribution when a
	// perf.Collector was armed: where trial wall time and allocations went
	// (build/run/capture/check/publish), the worker pool's busy/idle split
	// and the deferred-publication wait. Wall-clock through and through;
	// StripWallClock zeroes everything but the stage skeleton.
	Perf *perf.Report `json:"perf,omitempty"`
	// Features is the flowseq receipt when feature extraction was armed:
	// schema version, per-table row counts and the export path. Derived
	// entirely from virtual time and event counts, so StripWallClock keeps
	// it — same-seed runs must agree on it at any worker count.
	Features *flowseq.Receipt `json:"features,omitempty"`
	// Degraded marks a sweep that completed with quarantined trials:
	// every result slot is populated, but the quarantined ones are
	// placeholders and the run's aggregates under-count accordingly.
	// Omitted (false) on clean runs so their manifests stay byte-identical
	// to the pre-supervision format.
	Degraded bool `json:"degraded,omitempty"`
	// Quarantine lists the permanently failed trials with their repro
	// commands. Derived from seeds, deterministic panic values and
	// attempt counts, so StripWallClock keeps it — identical failure sets
	// must agree on it at any worker count.
	Quarantine *QuarantineReceipt `json:"quarantine,omitempty"`
	Extra      map[string]string  `json:"extra,omitempty"`
}

// ManifestRun is one experiment's entry.
type ManifestRun struct {
	ID     string `json:"id"`
	Title  string `json:"title"`
	Trials int    `json:"trials"`
	Rows   int    `json:"rows"`
	// WallMS is wall-clock; stripped by StripWallClock.
	WallMS int64 `json:"wall_ms"`
}

// NewManifest starts a manifest for a sweep run by tool with the given
// (already-defaulted) options.
func NewManifest(tool string, opts Options) *Manifest {
	opts = opts.withDefaults()
	return &Manifest{
		Tool:       tool,
		GoVersion:  runtime.Version(),
		StartedAt:  time.Now().UTC().Format(time.RFC3339),
		Trials:     opts.Trials,
		BaseSeed:   opts.BaseSeed,
		Workers:    opts.workerCount(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// Record appends one experiment's accounting.
func (m *Manifest) Record(id, title string, trials, rows int, wall time.Duration) {
	if m == nil {
		return
	}
	m.Runs = append(m.Runs, ManifestRun{
		ID: id, Title: title, Trials: trials, Rows: rows,
		WallMS: wall.Milliseconds(),
	})
}

// Finish attaches the registry's final snapshot (nil registry → none) and,
// when a perf collector was armed, its cost-attribution report.
func (m *Manifest) Finish(reg *obs.Registry) {
	if m == nil || reg == nil {
		return
	}
	m.Metrics = reg.Snapshot()
}

// FinishPerf attaches the perf collector's report (nil collector → none).
func (m *Manifest) FinishPerf(c *perf.Collector) {
	if m == nil || c == nil {
		return
	}
	m.Perf = c.Report()
}

// FinishQuarantine attaches the quarantine receipt and flips the manifest
// into degraded mode — only when something was actually quarantined, so a
// clean supervised run's manifest is indistinguishable from an
// unsupervised one.
func (m *Manifest) FinishQuarantine(q *Quarantine) {
	if m == nil || q.Len() == 0 {
		return
	}
	r := q.Receipt()
	m.Quarantine = &r
	m.Degraded = true
}

// FinishFeatures attaches the flowseq collector's receipt (nil collector →
// none); path names where the feature rows were exported, "" if unsaved.
func (m *Manifest) FinishFeatures(c *flowseq.Collector, path string) {
	if m == nil || c == nil {
		return
	}
	r := c.Receipt(path)
	m.Features = &r
}

// StripWallClock zeroes the wall-clock and machine-dependent fields
// (StartedAt, per-run WallMS, Workers, GoMaxProcs/NumCPU, the perf report's
// numbers) and drops the perf-published sweep_* metric families — whose
// series are host wall times and process-global allocation samples — from
// the snapshot, leaving only seed- and virtual-time-derived content. Two
// same-seed runs stripped this way must serialize byte-identically — at any
// worker count — the property the manifest tests pin.
func (m *Manifest) StripWallClock() {
	m.StartedAt = ""
	m.Workers = 0
	m.GoMaxProcs = 0
	m.NumCPU = 0
	for i := range m.Runs {
		m.Runs[i].WallMS = 0
	}
	m.Perf.StripWallClock()
	if m.Metrics != nil {
		kept := m.Metrics.Families[:0]
		for _, f := range m.Metrics.Families {
			if !strings.HasPrefix(f.Name, perf.MetricsPrefix) {
				kept = append(kept, f)
			}
		}
		m.Metrics.Families = kept
	}
}

// WriteJSON serializes the manifest as indented canonical JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteFile writes the manifest to path.
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
