package experiment

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"time"

	"h2privacy/internal/obs"
)

// Manifest is a sweep's machine-readable run record: what was run (tool,
// options, seeds), on what (Go version), how long each experiment took,
// and the final metrics-registry snapshot. Everything except StartedAt and
// the per-experiment WallMS values is derived from seeds and virtual time,
// so two same-seed runs produce byte-identical manifests once
// StripWallClock zeroes those fields.
type Manifest struct {
	Tool      string `json:"tool"`
	GoVersion string `json:"go_version"`
	// StartedAt is wall-clock (RFC3339); stripped by StripWallClock.
	StartedAt string `json:"started_at,omitempty"`
	Trials    int    `json:"trials"`
	BaseSeed  int64  `json:"base_seed"`
	// Workers is the resolved sweep worker-pool size (machine-dependent
	// when Options.Workers is 0); stripped by StripWallClock so stripped
	// manifests compare equal across worker counts — the determinism
	// guarantee is precisely that Workers never changes anything else.
	Workers int               `json:"workers,omitempty"`
	Runs      []ManifestRun     `json:"runs"`
	Metrics   *obs.Snapshot     `json:"metrics,omitempty"`
	Extra     map[string]string `json:"extra,omitempty"`
}

// ManifestRun is one experiment's entry.
type ManifestRun struct {
	ID     string `json:"id"`
	Title  string `json:"title"`
	Trials int    `json:"trials"`
	Rows   int    `json:"rows"`
	// WallMS is wall-clock; stripped by StripWallClock.
	WallMS int64 `json:"wall_ms"`
}

// NewManifest starts a manifest for a sweep run by tool with the given
// (already-defaulted) options.
func NewManifest(tool string, opts Options) *Manifest {
	opts = opts.withDefaults()
	return &Manifest{
		Tool:      tool,
		GoVersion: runtime.Version(),
		StartedAt: time.Now().UTC().Format(time.RFC3339),
		Trials:    opts.Trials,
		BaseSeed:  opts.BaseSeed,
		Workers:   opts.workerCount(),
	}
}

// Record appends one experiment's accounting.
func (m *Manifest) Record(id, title string, trials, rows int, wall time.Duration) {
	if m == nil {
		return
	}
	m.Runs = append(m.Runs, ManifestRun{
		ID: id, Title: title, Trials: trials, Rows: rows,
		WallMS: wall.Milliseconds(),
	})
}

// Finish attaches the registry's final snapshot (nil registry → none).
func (m *Manifest) Finish(reg *obs.Registry) {
	if m == nil || reg == nil {
		return
	}
	m.Metrics = reg.Snapshot()
}

// StripWallClock zeroes the wall-clock and machine-dependent fields
// (StartedAt, per-run WallMS, Workers), leaving only seed- and
// virtual-time-derived content. Two same-seed runs stripped this way must
// serialize byte-identically — at any worker count — the property the
// manifest tests pin.
func (m *Manifest) StripWallClock() {
	m.StartedAt = ""
	m.Workers = 0
	for i := range m.Runs {
		m.Runs[i].WallMS = 0
	}
}

// WriteJSON serializes the manifest as indented canonical JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteFile writes the manifest to path.
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
