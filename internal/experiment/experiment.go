// Package experiment regenerates every table and figure in the paper's
// evaluation: parameterized multi-trial sweeps over the core testbed, with
// text-table reports recording the measured values next to the paper's.
// See DESIGN.md §4 for the experiment index.
package experiment

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"h2privacy/internal/check"
	"h2privacy/internal/core"
	"h2privacy/internal/flowseq"
	"h2privacy/internal/obs"
	"h2privacy/internal/perf"
	"h2privacy/internal/trace"
)

// Options tunes a harness run.
type Options struct {
	// Trials per configuration point. Default 100 (the paper's count);
	// benchmarks use fewer.
	Trials int
	// BaseSeed offsets the per-trial seeds, for independent repetitions.
	BaseSeed int64
	// Workers bounds the sweep engine's trial worker pool: 0 (default)
	// uses runtime.GOMAXPROCS(0), 1 runs trials sequentially (the
	// historical behavior). Any value produces byte-identical reports,
	// CSVs, manifests and registry snapshots for the same seed — trials
	// are independent and the engine aggregates and publishes in trial
	// index order (see sweep.go).
	Workers int
	// Trace, when non-nil, is armed for trial 0 of the first sweep that
	// finds it empty — a sweep of 100 trials into one ring buffer would
	// just interleave and overwrite itself, so the harness traces one
	// representative trial and runs the rest dark. The choice is made
	// before fan-out, so it is deterministic at any worker count.
	Trace *trace.Tracer
	// Check, when non-nil, arms invariant checking on every trial of the
	// sweep: each trial gets its own check.Checker (seeded with the trial's
	// seed and flat trial index, so a violation report names the exact
	// repro seed) flushing into this shared recorder. Nil runs unchecked at
	// zero cost.
	Check *check.Recorder
	// Features, when non-nil, arms flowseq event-sequence analytics on every
	// trial of the sweep: each trial gets its own flowseq.Analyzer (keyed by
	// the flat trial index) finalizing into this shared collector, so the
	// run's per-stream timelines, burst tables and clean-slate spans can be
	// exported (CSV/JSONL) and served live at /debug/flows. The flow_*
	// metric families publish through the same deferred in-order drain as
	// the trial outcome metrics, so registry snapshots and exports stay
	// byte-identical at any worker count. Nil runs unanalyzed at zero cost.
	Features *flowseq.Collector
	// Perf, when non-nil, attributes the sweep's host-side cost: each
	// worker goroutine takes a perf.Worker handle, every trial body is
	// bracketed for busy/queue-wait accounting, core.RunTrial splits into
	// named stages, and the deferred publication drain is timed. Wall-clock
	// only — it never feeds the reports or the registry's deterministic
	// families, so same-seed output stays byte-identical at any worker
	// count. Nil disables at zero cost (the nil-collector contract).
	Perf *perf.Collector
	// Metrics, when non-nil, receives every trial's per-trial metrics
	// (core.TrialConfig.Metrics): the whole sweep accumulates into one
	// registry, so a final snapshot summarizes the run and a live scrape
	// shows it advancing. Nil keeps trials unmetered at zero cost.
	Metrics *obs.Registry
	// Progress, when non-nil, is ticked once per completed trial; RunAll
	// also drives its Start/Done around each experiment. Nil reports
	// nothing (RunAll substitutes a stderr reporter unless NoProgress).
	Progress *Progress
	// NoProgress suppresses RunAll's default stderr progress reporter.
	NoProgress bool
	// NoPool disables trial-scoped buffer recycling. By default every
	// sweep worker owns a pool.Arena that trials reuse (tcpsim payload
	// buffers and segment graphs come from it and return to it when the
	// netsim graph releases them), reset between trials; pooling changes
	// where bytes live, never their contents, so reports, CSVs, manifests
	// and registry snapshots stay byte-identical with pooling on or off
	// at any worker count (pool_identity_test.go pins this). Set NoPool
	// to fall back to plain GC-allocated trials when diagnosing a
	// suspected reuse bug.
	NoPool bool
	// PoolPoison arms arena buffer poisoning (every recycled buffer is
	// filled with 0xDB before reuse), so any consumer holding a stale
	// reference reads deterministic garbage instead of silently correct
	// bytes. Diagnostic; the pooled-identity tests run sweeps poisoned to
	// prove no such consumer exists. Ignored with NoPool.
	PoolPoison bool
	// Manifest, when non-nil, collects per-experiment accounting in RunAll
	// (callers running experiments by hand use Manifest.Record directly).
	Manifest *Manifest
	// Ctx, when non-nil, arms cooperative cancellation: workers stop
	// claiming new trials once the context is done, the trial in flight is
	// interrupted at the scheduler's next poll window, and the sweep
	// returns the context error after draining the publications of the
	// trials that did complete — so a SIGINT-cancelled run still exports
	// partial manifests, features and check reports.
	Ctx context.Context
	// MaxRetries bounds how many times the supervisor re-runs a failed
	// trial (fresh scheduler/RNG/checker/analyzer each attempt) before
	// giving up: 0 (default) means one attempt, no retries. A
	// deterministic failure fails identically every attempt; retries exist
	// for host-side flakes and for proving the retry path itself.
	MaxRetries int
	// RetryBackoff is the wall-clock delay before the first retry,
	// doubling for each further one; 0 retries immediately. Wall-clock
	// only — it never touches virtual time or any deterministic output.
	RetryBackoff time.Duration
	// TrialDeadline, when > 0, arms a wall-clock watchdog on every trial
	// attempt (core.TrialConfig.WallDeadline): a simulation grinding past
	// it is killed with a simtime.DeadlineError. A nondeterministic
	// backstop against host-side wedges — prefer StepBudget, which trips
	// deterministically, wherever reproducibility matters.
	TrialDeadline time.Duration
	// StepBudget, when > 0, arms a virtual-time watchdog on every trial
	// attempt (core.TrialConfig.StepBudget): a trial executing more than
	// this many scheduler events is killed with a simtime.BudgetError at
	// exactly that event count, identically on every host and worker
	// count.
	StepBudget uint64
	// Quarantine, when non-nil, arms degraded mode: a trial still dead
	// after its retries is recorded here (with a standalone repro command)
	// and replaced by a placeholder result instead of aborting the sweep.
	// Nil keeps the historical fail-fast behavior — except that panics now
	// surface as structured *TrialFailure errors rather than crashing.
	Quarantine *Quarantine
	// SuperviseLog, when non-nil, receives the supervisor's diagnostic
	// lines (per-attempt failure notices and panic stacks); nil writes to
	// stderr. Host-side diagnostics only — never part of any byte-identical
	// artifact (stacks carry goroutine IDs and scheduler-dependent frames).
	SuperviseLog io.Writer
	// ChaosTrial, when non-nil, deterministically sabotages chosen trials:
	// called with the flat trial index before every trial *attempt*, its
	// non-ChaosNone answers are injected as core.TrialConfig.Chaos. This
	// is the supervisor's own test harness (and the CI chaos lane) — the
	// same hook at any worker count sabotages the same trials. Consulting
	// per attempt lets a stateful hook model transient faults that a retry
	// recovers from; such a hook must be safe for concurrent use by sweep
	// workers (the cmds' -chaos hook is a pure map lookup).
	ChaosTrial func(flat int) core.ChaosMode
}

func (o Options) withDefaults() Options {
	if o.Trials == 0 {
		o.Trials = 100
	}
	return o
}

// Report is one experiment's rendered result.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Notes carry the paper-vs-measured commentary and caveats.
	Notes []string
}

// Render writes the report as an aligned text table.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the report as CSV (header row first) for plotting.
func (r *Report) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Runner produces one experiment report.
type Runner func(Options) (*Report, error)

// registry maps experiment ids to runners, in presentation order.
var registry = []struct {
	id     string
	title  string
	runner Runner
}{
	{"fig1", "Size estimation: serialized vs multiplexed transmissions", Fig1},
	{"fig2", "Request spacing eliminates multiplexing (attack overview)", Fig2},
	{"fig3", "Baseline HTTP/2 multiplexing of the quiz HTML", Fig3},
	{"table1", "Effect of jitter on HTTP/2 multiplexing (Table I)", Table1},
	{"fig4", "Jitter side-effect: retransmission storm & duplicate copies", Fig4},
	{"fig5", "Effect of bandwidth limitation (Fig. 5)", Fig5},
	{"fig6", "Targeted drops force a stream reset (§IV-D)", Fig6},
	{"table2", "Full attack prediction accuracy (Table II)", Table2},
	{"ablation", "Adversary stage ablation (§IV build-up)", Ablation},
	{"defense", "§VII defense: randomized emblem request order", Defense},
	{"pushdef", "§VII defense: server push for the emblems", PushDefense},
	{"partial", "§VII extension: partial-multiplexing inference", Partial},
	{"sensitivity", "Attack parameter sensitivity sweep", Sensitivity},
	{"crosstraffic", "Attack vs background cross-traffic", CrossTraffic},
	{"tcpablation", "Attack vs victim TCP generation", TCPAblation},
	{"padding", "Defense extension: random DATA-frame padding", Padding},
	{"h1base", "HTTP/1.1 baseline: everything serialized (§II)", H1Baseline},
	{"robustness", "Fault scenarios: open-loop vs adaptive attack driver", Robustness},
	{"fleetscale", "Fleet-scale shared bottleneck: one middlebox, N victims", FleetScale},
}

// IDs lists the experiment ids in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}

// Lookup returns the runner for an id.
func Lookup(id string) (Runner, bool) {
	for _, e := range registry {
		if e.id == id {
			return e.runner, true
		}
	}
	return nil, false
}

// RunAll executes every experiment in order, reporting per-experiment
// progress (id, trial counts, trials/sec, ETA) through opts.Progress — or
// a default stderr reporter unless opts.NoProgress — and recording each
// experiment's accounting into opts.Manifest when one is attached.
func RunAll(opts Options, w io.Writer) error {
	opts = opts.withDefaults()
	if opts.Progress == nil && !opts.NoProgress {
		opts.Progress = NewProgress(os.Stderr)
	}
	for _, e := range registry {
		opts.Progress.Start(e.id, PlannedTrials(e.id, opts))
		opts.Perf.BeginExperiment(e.id)
		rep, err := e.runner(opts)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", e.id, err)
		}
		trials, wall := opts.Progress.Done()
		opts.Manifest.Record(e.id, rep.Title, trials, len(rep.Rows), wall)
		rep.Render(w)
	}
	return nil
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f0(v float64) string  { return fmt.Sprintf("%.0f", v) }
func itoa(v int) string    { return fmt.Sprintf("%d", v) }
func pct(v float64) string { return fmt.Sprintf("%.0f%%", v) }

// sortedKeys is a tiny helper for deterministic map iteration in reports.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
