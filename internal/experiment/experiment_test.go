package experiment

import (
	"bytes"
	"strings"
	"testing"
)

// smallOpts keeps experiment tests fast; statistical strength comes from
// the full 100-trial harness runs.
var smallOpts = Options{Trials: 4, BaseSeed: 10}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig2", "fig3", "table1", "fig4", "fig5", "fig6", "table2", "ablation", "defense", "pushdef", "partial", "sensitivity", "crosstraffic", "tcpablation", "padding", "h1base", "robustness", "fleetscale"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("ids = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ids[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Fatalf("Lookup(%q) failed", id)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("bogus id resolved")
	}
}

func TestReportRender(t *testing.T) {
	rep := &Report{
		ID:     "x",
		Title:  "demo",
		Header: []string{"col-a", "b"},
		Rows:   [][]string{{"1", "22"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== x — demo ==", "col-a", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// runOne executes an experiment at tiny scale and sanity-checks the report.
func runOne(t *testing.T, id string, wantRows int) *Report {
	t.Helper()
	runner, ok := Lookup(id)
	if !ok {
		t.Fatalf("unknown experiment %s", id)
	}
	rep, err := runner(smallOpts)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if rep.ID != id {
		t.Fatalf("report id %q", rep.ID)
	}
	if len(rep.Rows) < wantRows {
		t.Fatalf("%s: %d rows, want ≥%d", id, len(rep.Rows), wantRows)
	}
	for _, row := range rep.Rows {
		if len(row) != len(rep.Header) && len(row) != 0 {
			if len(row) > len(rep.Header) {
				t.Fatalf("%s: row wider than header: %v", id, row)
			}
		}
	}
	return rep
}

func TestFig1Small(t *testing.T)     { runOne(t, "fig1", 2) }
func TestFig2Small(t *testing.T)     { runOne(t, "fig2", 2) }
func TestFig3Small(t *testing.T)     { runOne(t, "fig3", 3) }
func TestTable1Small(t *testing.T)   { runOne(t, "table1", 4) }
func TestFig4Small(t *testing.T)     { runOne(t, "fig4", 3) }
func TestFig6Small(t *testing.T)     { runOne(t, "fig6", 2) }
func TestTable2Small(t *testing.T)   { runOne(t, "table2", 9) }
func TestAblationSmall(t *testing.T) { runOne(t, "ablation", 4) }
func TestDefenseSmall(t *testing.T)  { runOne(t, "defense", 2) }
func TestH1BaseSmall(t *testing.T) {
	rep := runOne(t, "h1base", 2)
	// The h1 baseline is deterministic in shape: everything serialized.
	if !strings.Contains(rep.Rows[0][1], "100%") {
		t.Fatalf("h1 serialization row = %v", rep.Rows[0])
	}
}

func TestFig5Small(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5 sweeps five bandwidths")
	}
	runOne(t, "fig5", 5)
}

func TestPaddingSmall(t *testing.T) { runOne(t, "padding", 2) }

func TestPushDefenseSmall(t *testing.T) { runOne(t, "pushdef", 2) }

func TestPartialSmall(t *testing.T) { runOne(t, "partial", 2) }

func TestCrossTrafficSmall(t *testing.T) { runOne(t, "crosstraffic", 3) }

func TestTCPAblationSmall(t *testing.T) { runOne(t, "tcpablation", 2) }

func TestSensitivitySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity sweeps nine configurations")
	}
	runOne(t, "sensitivity", 9)
}

func TestRenderCSV(t *testing.T) {
	rep := &Report{
		ID:     "c",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "with,comma"}},
	}
	var buf bytes.Buffer
	if err := rep.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"with,comma\"\n"
	if buf.String() != want {
		t.Fatalf("csv = %q", buf.String())
	}
}
