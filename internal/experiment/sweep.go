package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"

	"h2privacy/internal/core"
	"h2privacy/internal/perf"
	"h2privacy/internal/pool"
)

// This file is the parallel sweep engine. Trials are independent by
// construction — each one owns a private scheduler, RNG, and testbed and
// is bit-reproducible from its seed (DESIGN.md §1) — so a sweep is
// embarrassingly parallel. The engine fans trial bodies out over a bounded
// worker pool while keeping every observable output byte-identical to the
// sequential run:
//
//   - Results land in a slice indexed by trial number and are aggregated
//     by the runner after the sweep, in index order, never in completion
//     order.
//   - The cross-layer tracer is armed for trial 0 of the first sweep that
//     finds it empty — decided once, before fan-out, not raced by "first
//     trial to start" (trials run dark otherwise, exactly as before).
//   - Registry publication is deferred: trials run with DeferMetrics and
//     the engine publishes each TrialResult in index order once the sweep
//     completes, because histogram sums are order-sensitive float
//     additions and gauges are last-writer-wins. The adversary's live
//     intervention counters still stream in during trials; those are
//     integer atomics whose totals are order-independent, so a live
//     /metrics scrape keeps showing the sweep advance.
//   - The first error by trial index wins, regardless of which worker hit
//     an error first.
//
// Seed scheme: every experiment derives its trial seeds through seedFor,
// so that within one experiment no two sub-sweeps (jitter points,
// bandwidth points, defense on/off arms, ...) reuse a seed. Paired sweeps
// (Fig2, Fig6) are the deliberate exception: both arms of a pair run the
// same seed so the comparison is against the same volunteer, page plan
// and network noise.

// seedFor derives the seed for trial t of sub-sweep `variant` of one
// experiment: variants are strided by the sweep's per-variant trial count
// (after any experiment-specific cap), so seeds never collide within an
// experiment. Variant 0 reproduces the historical BaseSeed+t stream.
func seedFor(base int64, variant, trials, t int) int64 {
	return base + int64(variant)*int64(trials) + int64(t)
}

// workerCount resolves Options.Workers: 0 (the default) uses every core
// via GOMAXPROCS, 1 reproduces the sequential path, n caps the pool at n.
func (o Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ForEachTrial runs n independent trial bodies over the worker pool. It is
// the scaffolding under Sweep for runners that assemble bespoke testbeds
// (h1base) instead of going through core.RunTrial: run(t) must be
// self-contained (own scheduler and RNG, shared state only written at
// disjoint index t) and must tick o.Progress itself. The first error by
// trial index is returned; remaining workers stop picking up new trials
// once any trial fails.
func (o Options) ForEachTrial(n int, run func(t int) error) error {
	return o.forEachTrial(n, func(_ *perf.Worker, _ *pool.Arena, t int) error { return run(t) })
}

// workerArena builds one worker's trial-scoped buffer arena, or nil when
// pooling is disabled — the arena type is nil-safe, so a nil handle simply
// means every Bytes call falls back to make and every Put is dropped.
func (o Options) workerArena() *pool.Arena {
	if o.NoPool {
		return nil
	}
	a := pool.New()
	a.SetPoison(o.PoolPoison)
	return a
}

// forEachTrial is ForEachTrial with perf and pool plumbing: each pool
// goroutine (or the sequential loop) takes its own perf.Worker handle and
// its own pool.Arena, and every run call is bracketed for busy-time and
// queue-wait accounting. run receives both so core trials can attribute
// their stages and draw their buffers per worker — arenas are strictly
// worker-local, so recycling never crosses goroutines and needs no locks.
// The arena is Reset between trials (free lists survive — that is the
// point — only per-trial stats clear). With a nil o.Perf all perf handles
// are nil no-ops; with o.NoPool all arenas are nil no-ops.
func (o Options) forEachTrial(n int, run func(pw *perf.Worker, arena *pool.Arena, t int) error) error {
	workers := o.workerCount()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		pw := o.Perf.Worker()
		defer pw.Close()
		arena := o.workerArena()
		for t := 0; t < n; t++ {
			// Cooperative cancellation: stop claiming trials once the
			// context is done. The trial in flight (if any) was already
			// interrupted by the scheduler's poll hook.
			if o.Ctx != nil && o.Ctx.Err() != nil {
				return o.Ctx.Err()
			}
			arena.Reset()
			tok := pw.BeginTrial()
			err := run(pw, arena, t)
			pw.EndTrial(tok)
			if err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64 // next unclaimed trial index
		failed atomic.Bool  // fail-fast: stop claiming new trials
		mu     sync.Mutex
		errT   = n // lowest failing trial index
		first  error
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pw := o.Perf.Worker()
			defer pw.Close()
			arena := o.workerArena()
			for {
				t := int(next.Add(1)) - 1
				if t >= n || failed.Load() {
					return
				}
				if o.Ctx != nil && o.Ctx.Err() != nil {
					// Cancellation drains like a failure at this worker's
					// current index: lowest index wins, so every worker
					// converging here yields one deterministic context error.
					failed.Store(true)
					mu.Lock()
					if t < errT {
						errT, first = t, o.Ctx.Err()
					}
					mu.Unlock()
					return
				}
				arena.Reset()
				tok := pw.BeginTrial()
				err := run(pw, arena, t)
				pw.EndTrial(tok)
				if err != nil {
					failed.Store(true)
					mu.Lock()
					if t < errT {
						errT, first = t, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return first
}

// sweep is the shared engine: n jobs of `arity` trials each (1 for Sweep,
// 2 for SweepPaired — a pair runs back to back on one worker, preserving
// the sequential engine's base-then-variant publication order within the
// pair). Results land at out[t*arity+j]; deferred metrics publication
// replays them in that order.
func (o Options) sweep(n, arity int, cfgs func(t int) []core.TrialConfig) ([]*core.TrialResult, error) {
	armTrace := o.Trace.Enabled() && o.Trace.Len() == 0 && o.Trace.Dropped() == 0
	out := make([]*core.TrialResult, n*arity)
	err := o.forEachTrial(n, func(pw *perf.Worker, arena *pool.Arena, t int) error {
		for j, cfg := range cfgs(t) {
			flat := t*arity + j
			cfg.Perf = pw
			if cfg.Pool == nil {
				// Worker-local arena: both trials of a pair share it (the
				// second reuses what the first released), and Reset at the
				// next claim recycles it for the following trial.
				cfg.Pool = arena
			}
			if armTrace && t == 0 && j == 0 {
				cfg.Trace = o.Trace
			}
			if cfg.Metrics == nil {
				cfg.Metrics = o.Metrics
				cfg.DeferMetrics = cfg.Metrics != nil
			}
			// Supervision plumbing: cancellation, watchdogs and fault
			// injection. All zero-cost no-ops when unarmed, so a plain
			// sweep's trials are configured exactly as before. The
			// per-attempt collaborators (checker, flow analyzer — keyed by
			// the trial's own seedFor-derived seed and flat index so repro
			// lines and export order stay exact) are created inside
			// superviseTrial's attempt loop, fresh per attempt.
			if cfg.Ctx == nil {
				cfg.Ctx = o.Ctx
			}
			if cfg.StepBudget == 0 {
				cfg.StepBudget = o.StepBudget
			}
			if cfg.WallDeadline == 0 {
				cfg.WallDeadline = o.TrialDeadline
			}
			res, err := o.superviseTrial(flat, cfg)
			o.Progress.Tick()
			if err != nil {
				return err
			}
			out[flat] = res
		}
		return nil
	})
	if err != nil && !isCancellation(err) {
		return nil, err
	}
	if o.Metrics != nil {
		// The deferred in-order drain is the sweep's publication-path wait:
		// results computed in parallel serialize here so registry snapshots
		// stay byte-identical across worker counts. perf books it as its own
		// stage — it is pure parallelization overhead the sequential inline
		// path never pays.
		sp := o.Perf.StartStage(perf.StagePublishDrain)
		// One publisher for the whole drain: instrument handles resolve
		// once instead of once per trial, so the drain stops hammering the
		// registry's lookup lock n times per family.
		pub := core.NewTrialPublisher(o.Metrics)
		for _, res := range out {
			// Publish skips nil slots (trials a cancelled sweep never ran)
			// and quarantined placeholders, so the drain is safe on partial
			// and degraded result sets alike.
			pub.Publish(res)
		}
		sp.Stop()
	}
	// On cancellation the partial results are returned together with the
	// context error: completed trials were drained above, and the caller
	// (cmds' SIGINT path) exports whatever the collectors accumulated.
	return out, err
}

// Sweep runs n trials — cfg(t) builds trial t's configuration, typically
// seeded via seedFor — across the worker pool and returns their results
// indexed by trial number. cfg may be called from worker goroutines and
// must not share mutable state across calls.
func (o Options) Sweep(n int, cfg func(t int) core.TrialConfig) ([]*core.TrialResult, error) {
	return o.sweep(n, 1, func(t int) []core.TrialConfig {
		return []core.TrialConfig{cfg(t)}
	})
}

// SweepPaired runs n base/variant trial pairs (Fig2's unspaced/spaced,
// Fig6's drops/no-drops): cfg(t) returns both configurations, which
// usually share a seed so the pair differs only in the knob under study.
// Both trials of a pair run on the same worker, base first.
func (o Options) SweepPaired(n int, cfg func(t int) (base, variant core.TrialConfig)) (baseRes, variantRes []*core.TrialResult, err error) {
	flat, err := o.sweep(n, 2, func(t int) []core.TrialConfig {
		a, b := cfg(t)
		return []core.TrialConfig{a, b}
	})
	if err != nil {
		return nil, nil, err
	}
	baseRes = make([]*core.TrialResult, n)
	variantRes = make([]*core.TrialResult, n)
	for t := 0; t < n; t++ {
		baseRes[t], variantRes[t] = flat[2*t], flat[2*t+1]
	}
	return baseRes, variantRes, nil
}
