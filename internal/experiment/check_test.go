package experiment

import (
	"strings"
	"testing"

	"h2privacy/internal/adversary"
	"h2privacy/internal/check"
	"h2privacy/internal/core"
	"h2privacy/internal/tcpsim"
)

// TestAllExperimentsCheckClean regenerates every registered experiment at
// one trial per point with every invariant checker armed: the intact
// stack must produce zero violations anywhere in the evaluation's
// configuration space. (h1base assembles bespoke testbeds outside the
// sweep engine and simply runs unchecked.)
func TestAllExperimentsCheckClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole experiment registry")
	}
	rec := check.NewRecorder()
	opts := Options{Trials: 1, NoProgress: true, Check: rec}
	for _, id := range IDs() {
		runner, ok := Lookup(id)
		if !ok {
			t.Fatalf("experiment %q vanished", id)
		}
		if _, err := runner(opts); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	if rec.Total() != 0 {
		t.Fatalf("invariant violations across the registry:\n%s", rec.Report())
	}
	if rec.Trials() == 0 {
		t.Fatal("no trials were checked — the sweep engine did not arm checkers")
	}
	t.Logf("checked %d trials across %d experiments, zero violations", rec.Trials(), len(IDs()))
}

// TestSweepCheckViolationsCarrySeedAndRepro re-breaks the TCP ACK bound,
// runs a parallel checked sweep, and requires every violation to carry
// the exact per-trial seed — then replays the printed seed as a single
// trial and requires the same rule to fire (the repro command contract).
func TestSweepCheckViolationsCarrySeedAndRepro(t *testing.T) {
	tcpsim.SetLegacyStaleAck(true)
	defer tcpsim.SetLegacyStaleAck(false)

	const base, n = 50, 6
	rec := check.NewRecorder()
	rec.SetRepro(func(v check.Violation) string {
		return "h2attack -check -seed N" // shape only; cmds fill in real flags
	})
	opts := Options{Trials: n, BaseSeed: base, Workers: 2, Check: rec}
	plan := adversary.DefaultPlan()
	_, err := opts.Sweep(n, func(trial int) core.TrialConfig {
		return core.TrialConfig{Seed: seedFor(base, 0, n, trial), Attack: &plan}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Total() == 0 {
		t.Fatal("legacy ACK bound produced no violations in the sweep")
	}
	if rec.Trials() != n {
		t.Fatalf("recorder saw %d trials, want %d", rec.Trials(), n)
	}

	// Every violation's seed must match the seed scheme for its index.
	for _, v := range rec.Violations() {
		want := seedFor(base, 0, n, v.TrialIndex)
		if v.TrialSeed != want {
			t.Fatalf("trial %d violation carries seed %d, scheme says %d",
				v.TrialIndex, v.TrialSeed, want)
		}
	}
	if rep := rec.Report(); !strings.Contains(rep, "h2attack -check -seed N") {
		t.Fatalf("report does not surface the repro command:\n%s", rep)
	}

	// Replay the first violation's seed as a standalone trial — the path
	// `h2attack -seed N -check` takes — and require the same rule.
	first, ok := rec.First()
	if !ok {
		t.Fatal("no first violation")
	}
	rec2 := check.NewRecorder()
	cfg := core.TrialConfig{Seed: first.TrialSeed, Attack: &plan, Check: check.New(first.TrialSeed, 0, rec2)}
	res, err := core.RunTrial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckViolations == 0 {
		t.Fatalf("seed %d did not reproduce standalone", first.TrialSeed)
	}
	found := false
	for _, v := range rec2.Violations() {
		if v.Layer == first.Layer && v.Rule == first.Rule {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("standalone replay of seed %d fired %v, sweep fired %s/%s",
			first.TrialSeed, rec2.Violations(), first.Layer, first.Rule)
	}
}
