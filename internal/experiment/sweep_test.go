package experiment

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"h2privacy/internal/obs"
	"h2privacy/internal/perf"
	"h2privacy/internal/trace"
)

// renderAll runs every registered experiment under opts and returns the
// concatenated rendered reports.
func renderAll(t *testing.T, opts Options) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, id := range IDs() {
		runner, _ := Lookup(id)
		rep, err := runner(opts)
		if err != nil {
			t.Fatalf("%s (workers=%d): %v", id, opts.Workers, err)
		}
		rep.Render(&buf)
	}
	return buf.Bytes()
}

// TestSweepParallelMatchesSequential is the golden determinism test: every
// registered experiment, rendered in full, must be byte-identical between
// the sequential engine and a 4-worker pool.
func TestSweepParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment twice")
	}
	opts := Options{Trials: 3, BaseSeed: 77}
	opts.Workers = 1
	seq := renderAll(t, opts)
	opts.Workers = 4
	par := renderAll(t, opts)
	if !bytes.Equal(seq, par) {
		t.Fatalf("parallel reports differ from sequential:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", seq, par)
	}
}

// manifestRun renders a few experiments with a manifest, a metrics
// registry and a perf collector attached — exercising the deferred
// publication path and the perf-stripping path — and returns the
// wall-clock-stripped manifest JSON.
func manifestRun(t *testing.T, workers int) []byte {
	t.Helper()
	opts := Options{Trials: 3, BaseSeed: 5, Workers: workers}
	opts.Metrics = obs.NewRegistry()
	opts.Perf = perf.NewCollector()
	opts.Perf.PublishTo(opts.Metrics)
	opts.Progress = NewProgress(nil)
	m := NewManifest("test", opts)
	for _, id := range []string{"fig2", "table2"} {
		runner, _ := Lookup(id)
		opts.Progress.Start(id, PlannedTrials(id, opts))
		opts.Perf.BeginExperiment(id)
		rep, err := runner(opts)
		if err != nil {
			t.Fatalf("%s (workers=%d): %v", id, workers, err)
		}
		trials, wall := opts.Progress.Done()
		m.Record(id, rep.Title, trials, len(rep.Rows), wall)
	}
	m.Finish(opts.Metrics)
	m.FinishPerf(opts.Perf)
	m.StripWallClock()
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSweepManifestDeterministic pins the stronger half of the guarantee:
// the stripped manifest including the full metrics snapshot — histogram
// sums and all — is byte-identical at any worker count, because the engine
// defers registry publication and replays results in trial-index order.
func TestSweepManifestDeterministic(t *testing.T) {
	seq := manifestRun(t, 1)
	par := manifestRun(t, 4)
	if !bytes.Equal(seq, par) {
		t.Fatalf("stripped manifests differ:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", seq, par)
	}
	// The perf report survives stripping as a stage-name skeleton (proof the
	// collector was armed), while every wall-clock figure and the sweep_*
	// registry families are gone — they are host- and worker-count-dependent.
	if !bytes.Contains(seq, []byte(`"perf"`)) || !bytes.Contains(seq, []byte(`"queue_wait"`)) {
		t.Fatalf("stripped manifest lost the perf stage skeleton:\n%s", seq)
	}
	if bytes.Contains(seq, []byte(perf.MetricsPrefix)) {
		t.Fatalf("stripped manifest still carries %s* metric families:\n%s", perf.MetricsPrefix, seq)
	}
	if bytes.Contains(seq, []byte(`"gomaxprocs"`)) {
		t.Fatalf("stripped manifest still carries gomaxprocs:\n%s", seq)
	}
}

// traceRun runs fig2 with a tracer attached and returns the exported JSONL.
func traceRun(t *testing.T, workers int) []byte {
	t.Helper()
	tracer := trace.New(trace.WallClock(), trace.Config{Concurrent: true})
	opts := Options{Trials: 3, BaseSeed: 9, Workers: workers, Trace: tracer}
	runner, _ := Lookup("fig2")
	if _, err := runner(opts); err != nil {
		t.Fatalf("fig2 (workers=%d): %v", workers, err)
	}
	var buf bytes.Buffer
	if err := tracer.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSweepTraceDeterministic is the trace-arming regression test: the
// tracer is armed for trial 0 by index, decided before fan-out, so the
// exported trace is byte-identical whichever worker runs first.
func TestSweepTraceDeterministic(t *testing.T) {
	seq := traceRun(t, 1)
	par := traceRun(t, 4)
	if len(seq) == 0 {
		t.Fatal("sequential run produced an empty trace")
	}
	if !bytes.Equal(seq, par) {
		t.Fatalf("trace differs between worker counts: %d vs %d bytes", len(seq), len(par))
	}
}

// TestSeedForNoCollisions checks the seed-stream audit property: within
// one experiment, no two (variant, trial) cells share a seed, and variant
// 0 reproduces the historical base+t stream.
func TestSeedForNoCollisions(t *testing.T) {
	const base, trials, variants = 1000, 40, 9
	seen := make(map[int64]string)
	for v := 0; v < variants; v++ {
		for tr := 0; tr < trials; tr++ {
			s := seedFor(base, v, trials, tr)
			cell := fmt.Sprintf("(%d,%d)", v, tr)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed %d reused by %s and %s", s, prev, cell)
			}
			seen[s] = cell
		}
	}
	for tr := 0; tr < trials; tr++ {
		if got := seedFor(base, 0, trials, tr); got != base+int64(tr) {
			t.Fatalf("variant 0 seed = %d, want %d", got, base+int64(tr))
		}
	}
}

// TestForEachTrialFirstErrorByIndex: with many failing trials, the error
// surfaced is the lowest-index one, not whichever worker lost the race.
func TestForEachTrialFirstErrorByIndex(t *testing.T) {
	opts := Options{Workers: 8}
	for round := 0; round < 20; round++ {
		err := opts.ForEachTrial(64, func(tr int) error {
			if tr >= 3 {
				return fmt.Errorf("trial %d failed", tr)
			}
			return nil
		})
		if err == nil || err.Error() != "trial 3 failed" {
			t.Fatalf("round %d: err = %v, want trial 3's", round, err)
		}
	}
}

// TestForEachTrialStopsAfterError: once a trial fails, workers stop
// claiming new trials (fail-fast), so late trials never run.
func TestForEachTrialStopsAfterError(t *testing.T) {
	opts := Options{Workers: 2}
	var mu sync.Mutex
	ran := make(map[int]bool)
	sentinel := errors.New("boom")
	err := opts.ForEachTrial(1000, func(tr int) error {
		mu.Lock()
		ran[tr] = true
		mu.Unlock()
		if tr == 0 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if len(ran) == 1000 {
		t.Fatal("all trials ran despite an early failure")
	}
}

// TestForEachTrialCoversAllIndices: every index runs exactly once at any
// worker count.
func TestForEachTrialCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		opts := Options{Workers: workers}
		var mu sync.Mutex
		counts := make([]int, 100)
		if err := opts.ForEachTrial(100, func(tr int) error {
			mu.Lock()
			counts[tr]++
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for tr, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: trial %d ran %d times", workers, tr, c)
			}
		}
	}
}

// TestProgressConcurrentTicks drives Progress from many goroutines under a
// fake clock: the count must be exact and the final rate must be computed
// from the completed count over elapsed time — not from any per-worker
// interval arithmetic that concurrency could skew.
func TestProgressConcurrentTicks(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf)
	var mu sync.Mutex
	now := time.Unix(0, 0)
	p.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	p.Start("conc", 200)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				mu.Lock()
				now = now.Add(10 * time.Millisecond) // 200 ticks × 10ms = 2s total
				mu.Unlock()
				p.Tick()
			}
		}()
	}
	wg.Wait()
	trials, wall := p.Done()
	if trials != 200 {
		t.Fatalf("trials = %d, want 200", trials)
	}
	if wall != 2*time.Second {
		t.Fatalf("wall = %v, want 2s", wall)
	}
	// 200 trials over 2 fake seconds = exactly 100.0 trials/s.
	if !bytes.Contains(buf.Bytes(), []byte("100.0 trials/s")) {
		t.Fatalf("final line lacks the honest rate:\n%s", buf.String())
	}
}
