package experiment

import (
	"bytes"
	"fmt"
	"testing"

	"h2privacy/internal/adversary"
	"h2privacy/internal/core"
	"h2privacy/internal/website"
)

// scenarioVariant returns the scenario's row index in the robustness
// table, which is its seed-stream variant.
func scenarioVariant(t *testing.T, name string) int {
	t.Helper()
	for v, s := range robustnessScenarios() {
		if s == name {
			return v
		}
	}
	t.Fatalf("scenario %q not in robustness table", name)
	return -1
}

// TestRobustnessAdaptiveDominates is the PR's acceptance criterion, on the
// exact seeds the robustness table uses (BaseSeed 1, 12 paired trials):
// the adaptive driver's clean-slate rate strictly dominates the open-loop
// driver on bursty-loss AND mbox-restart, and every trial in both arms
// ends classified.
func TestRobustnessAdaptiveDominates(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 4 attack sweeps")
	}
	const trials = 12
	opts := Options{Trials: trials, BaseSeed: 1}
	openPlan := adversary.DefaultPlan()
	adaptPlan := adversary.DefaultPlan()
	adaptPlan.Adaptive = true
	for _, scenario := range []string{"bursty-loss", "mbox-restart"} {
		v := scenarioVariant(t, scenario)
		openRes, adaptRes, err := opts.SweepPaired(trials, func(tr int) (core.TrialConfig, core.TrialConfig) {
			seed := seedFor(opts.BaseSeed, v, trials, tr)
			return core.TrialConfig{Seed: seed, Attack: &openPlan, Scenario: scenario},
				core.TrialConfig{Seed: seed, Attack: &adaptPlan, Scenario: scenario}
		})
		if err != nil {
			t.Fatal(err)
		}
		clean := func(results []*core.TrialResult, arm string) int {
			n := 0
			for i, res := range results {
				if res.Outcome == adversary.OutcomePending {
					t.Fatalf("%s/%s trial %d unclassified", scenario, arm, i)
				}
				if res.Outcome == adversary.OutcomeCleanSlate || res.Outcome == adversary.OutcomeRetryCleanSlate {
					n++
				}
			}
			return n
		}
		open, adapt := clean(openRes, "open"), clean(adaptRes, "adaptive")
		if adapt <= open {
			t.Fatalf("%s: adaptive clean-slate %d/%d does not strictly dominate open-loop %d/%d",
				scenario, adapt, trials, open, trials)
		}
		t.Logf("%s: clean-slate open %d/%d, adaptive %d/%d", scenario, open, trials, adapt, trials)
	}
}

// TestRobustnessReportClassifiesEveryTrial runs the full table at a small
// trial count: it must produce one row per scenario (the clean path plus
// the whole catalog) and, by construction, error on any unclassified
// outcome.
func TestRobustnessReportClassifiesEveryTrial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full scenario table")
	}
	rep, err := Robustness(Options{Trials: 3, BaseSeed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(robustnessScenarios()); len(rep.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(rep.Rows), want)
	}
	if rep.Rows[0][0] != "none" {
		t.Fatalf("first row %q, want the clean path", rep.Rows[0][0])
	}
}

// faultSweepFingerprint runs an adaptive fault-scenario sweep and
// serializes everything observable about each trial.
func faultSweepFingerprint(t *testing.T, workers int) []byte {
	t.Helper()
	plan := adversary.DefaultPlan()
	plan.Adaptive = true
	opts := Options{Trials: 8, BaseSeed: 301, Workers: workers}
	results, err := opts.Sweep(opts.Trials, func(tr int) core.TrialConfig {
		return core.TrialConfig{Seed: opts.BaseSeed + int64(tr), Attack: &plan, Scenario: "storm"}
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for i, res := range results {
		fmt.Fprintf(&buf, "trial %d: outcome=%v attempts=%d resets=%d gets=%d html=%v broken=%v reason=%q\n",
			i, res.Outcome, res.AttackAttempts, res.Resets, res.GETs,
			res.ObjectSuccess(website.TargetID), res.Broken, res.BrokenReason)
		for _, ft := range res.FaultLog {
			fmt.Fprintf(&buf, "  fault %v %s %s\n", ft.At, ft.Kind, ft.Detail)
		}
	}
	return buf.Bytes()
}

// TestFaultSweepByteIdenticalAcrossWorkers is the golden same-seed check
// for the fault layer: a fault-scenario sweep — fault timelines included —
// is byte-identical between the sequential engine and a 4-worker pool.
func TestFaultSweepByteIdenticalAcrossWorkers(t *testing.T) {
	seq := faultSweepFingerprint(t, 1)
	par := faultSweepFingerprint(t, 4)
	if len(seq) == 0 {
		t.Fatal("empty fingerprint")
	}
	if !bytes.Equal(seq, par) {
		t.Fatalf("fault sweep differs across worker counts:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", seq, par)
	}
}
