package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Export formats accepted by WriteFormat (and the cmd tools' -trace-format
// flag).
const (
	FormatChrome  = "chrome"  // Chrome trace_event JSON (chrome://tracing, Perfetto)
	FormatJSONL   = "jsonl"   // one JSON object per event
	FormatSummary = "summary" // compact text table: counts, counters, histograms
)

// Formats lists the accepted export format names.
func Formats() []string { return []string{FormatChrome, FormatJSONL, FormatSummary} }

// WriteFormat serializes the trace in the named format.
func (t *Tracer) WriteFormat(w io.Writer, format string) error {
	switch format {
	case FormatChrome, "":
		return t.WriteChromeTrace(w)
	case FormatJSONL:
		return t.WriteJSONL(w)
	case FormatSummary:
		return t.WriteSummary(w)
	default:
		return fmt.Errorf("trace: unknown format %q (want chrome, jsonl or summary)", format)
	}
}

// WriteJSONL writes one JSON object per event:
//
//	{"ts":1234567,"seq":0,"layer":"tcpsim","kind":"rto","attrs":{"conn":"client","retries":2}}
//
// ts is virtual nanoseconds. Output is byte-identical across runs with the
// same seed: events are already totally ordered and attributes keep their
// emission order.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, ev := range t.Events() {
		bw.WriteString(`{"ts":`)
		bw.WriteString(strconv.FormatInt(int64(ev.At), 10))
		bw.WriteString(`,"seq":`)
		bw.WriteString(strconv.FormatUint(ev.Seq, 10))
		bw.WriteString(`,"layer":`)
		writeJSONString(bw, ev.Layer.String())
		bw.WriteString(`,"kind":`)
		writeJSONString(bw, ev.Kind)
		writeAttrs(bw, ev)
		bw.WriteString("}\n")
	}
	return bw.Flush()
}

// WriteChromeTrace writes the Chrome trace_event JSON object format: one
// process, one thread lane per layer, every event an instant ("i") with
// its attributes under args. Load the file in chrome://tracing or
// https://ui.perfetto.dev. Timestamps are virtual microseconds.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[\n")
	bw.WriteString(`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"h2privacy trial"}}`)
	for l := Layer(0); l < numLayers; l++ {
		fmt.Fprintf(bw, ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"%s\"}}", int(l)+1, l)
		// tid sort order follows the layer stack: network at the bottom.
		fmt.Fprintf(bw, ",\n{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"sort_index\":%d}}", int(l)+1, int(l))
	}
	for _, ev := range t.Events() {
		bw.WriteString(",\n{\"name\":")
		writeJSONString(bw, ev.Kind)
		bw.WriteString(",\"cat\":")
		writeJSONString(bw, ev.Layer.String())
		// ts is microseconds; keep sub-µs precision as a decimal fraction
		// via integer math so output stays deterministic.
		ns := int64(ev.At)
		fmt.Fprintf(bw, ",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":%d.%03d", int(ev.Layer)+1, ns/1000, ns%1000)
		bw.WriteString(",\"args\":{")
		writeAttrList(bw, ev, `"seq":`+strconv.FormatUint(ev.Seq, 10))
		bw.WriteString("}}")
	}
	fmt.Fprintf(bw, "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedEvents\":%d", t.Dropped())
	metas := t.Metas()
	for i := 0; i+1 < len(metas); i += 2 {
		bw.WriteByte(',')
		writeJSONString(bw, metas[i])
		bw.WriteByte(':')
		writeJSONString(bw, metas[i+1])
	}
	bw.WriteString("}}\n")
	return bw.Flush()
}

// WriteSummary writes a compact text digest: event counts per (layer,
// kind), counter values, and histogram five-number summaries.
func (t *Tracer) WriteSummary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	events := t.Events()
	fmt.Fprintf(bw, "trace: %d events retained, %d dropped (ring capacity)\n", len(events), t.Dropped())

	type lk struct {
		layer Layer
		kind  string
	}
	counts := make(map[lk]int)
	for _, ev := range events {
		counts[lk{ev.Layer, ev.Kind}]++
	}
	keys := make([]lk, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].layer != keys[j].layer {
			return keys[i].layer < keys[j].layer
		}
		return keys[i].kind < keys[j].kind
	})
	if len(keys) > 0 {
		fmt.Fprintf(bw, "\nevents by layer/kind:\n")
		for _, k := range keys {
			fmt.Fprintf(bw, "  %-10s %-22s %8d\n", k.layer, k.kind, counts[k])
		}
	}
	if cs := t.Counters(); len(cs) > 0 {
		fmt.Fprintf(bw, "\ncounters:\n")
		for _, c := range cs {
			fmt.Fprintf(bw, "  %-10s %-28s %10d\n", c.Layer(), c.Name(), c.Value())
		}
	}
	if hs := t.Histos(); len(hs) > 0 {
		fmt.Fprintf(bw, "\nhistograms:\n")
		for _, h := range hs {
			fmt.Fprintf(bw, "  %-10s %-28s %s\n", h.Layer(), h.Name(), h.Summary())
		}
	}
	return bw.Flush()
}

// writeAttrs writes `,"attrs":{...}` when the event has attributes.
func writeAttrs(bw *bufio.Writer, ev Event) {
	if ev.NAttr == 0 {
		return
	}
	bw.WriteString(`,"attrs":{`)
	writeAttrList(bw, ev, "")
	bw.WriteByte('}')
}

// writeAttrList writes the event's attributes as JSON object members,
// preceded by the literal prefix member when non-empty.
func writeAttrList(bw *bufio.Writer, ev Event, prefix string) {
	first := true
	if prefix != "" {
		bw.WriteString(prefix)
		first = false
	}
	for i := 0; i < ev.NAttr; i++ {
		a := ev.Attrs[i]
		if !first {
			bw.WriteByte(',')
		}
		first = false
		writeJSONString(bw, a.Key)
		bw.WriteByte(':')
		if a.IsNum() {
			bw.WriteString(strconv.FormatInt(a.Num, 10))
		} else {
			writeJSONString(bw, a.Str)
		}
	}
}

// writeJSONString writes s as a JSON string literal, escaping the minimum
// RFC 8259 set. Attribute values are short identifiers and error strings;
// non-ASCII passes through as UTF-8.
func writeJSONString(bw *bufio.Writer, s string) {
	bw.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			bw.WriteString(`\"`)
		case c == '\\':
			bw.WriteString(`\\`)
		case c == '\n':
			bw.WriteString(`\n`)
		case c == '\r':
			bw.WriteString(`\r`)
		case c == '\t':
			bw.WriteString(`\t`)
		case c < 0x20:
			fmt.Fprintf(bw, `\u%04x`, c)
		default:
			bw.WriteByte(c)
		}
	}
	bw.WriteByte('"')
}
