package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// fakeClock is a hand-advanced Clock for tests.
type fakeClock struct{ now time.Duration }

func (c *fakeClock) Now() time.Duration { return c.now }

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Emit(LayerTCP, "rto", Num("retries", 1))
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer retained state")
	}
	c := tr.Counter(LayerNetsim, "sent")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 || c.Name() != "" {
		t.Fatal("nil counter not a no-op")
	}
	h := tr.Histo(LayerTCP, "srtt")
	h.Observe(3)
	h.ObserveDuration(time.Second)
	if s := h.Summary(); s.N != 0 {
		t.Fatal("nil histo not a no-op")
	}
}

func TestEmitStampsClockAndSeq(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk, Config{})
	tr.Emit(LayerNetsim, "a")
	clk.now = 5 * time.Millisecond
	tr.Emit(LayerH2, "b", Str("type", "DATA"), Num("len", 1200))
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].At != 0 || evs[0].Seq != 0 || evs[1].At != 5*time.Millisecond || evs[1].Seq != 1 {
		t.Fatalf("bad stamps: %+v", evs)
	}
	if evs[1].NAttr != 2 || evs[1].Attrs[0].Str != "DATA" || evs[1].Attrs[1].Num != 1200 {
		t.Fatalf("bad attrs: %+v", evs[1])
	}
}

func TestRingOverflowKeepsNewest(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk, Config{Capacity: 4})
	for i := 0; i < 10; i++ {
		clk.now = time.Duration(i)
		tr.Emit(LayerNetsim, "e", Num("i", int64(i)))
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(6 + i); ev.Attrs[0].Num != want || ev.Seq != uint64(want) {
			t.Fatalf("event %d = %+v, want i=%d (oldest overwritten first)", i, ev, want)
		}
	}
}

func TestAttrOverflowTruncated(t *testing.T) {
	tr := New(&fakeClock{}, Config{})
	tr.Emit(LayerTCP, "x", Num("a", 1), Num("b", 2), Num("c", 3), Num("d", 4), Num("e", 5))
	ev := tr.Events()[0]
	if ev.NAttr != MaxAttrs {
		t.Fatalf("NAttr = %d, want %d", ev.NAttr, MaxAttrs)
	}
}

func TestCounterAndHistoRegistration(t *testing.T) {
	tr := New(&fakeClock{}, Config{})
	a := tr.Counter(LayerNetsim, "sent")
	b := tr.Counter(LayerNetsim, "sent")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	tr.Counter(LayerTCP, "rto")
	a.Add(3)
	if got := tr.Counters(); len(got) != 2 || got[0].Value() != 3 || got[1].Name() != "rto" {
		t.Fatalf("counters = %+v", got)
	}
	h1 := tr.Histo(LayerTCP, "srtt")
	h2 := tr.Histo(LayerTCP, "srtt")
	if h1 != h2 {
		t.Fatal("re-registration returned a different histo")
	}
	h1.Observe(1)
	h1.Observe(3)
	if s := h1.Summary(); s.N != 2 || s.Min != 1 || s.Max != 3 || s.Mean != 2 {
		t.Fatalf("summary = %+v", s)
	}
}

// buildTrace produces the same small trace twice for determinism checks.
func buildTrace() *Tracer {
	clk := &fakeClock{}
	tr := New(clk, Config{})
	tr.Counter(LayerNetsim, "c2s.sent").Add(7)
	tr.Histo(LayerTCP, "client.srtt_ms").Observe(16.5)
	clk.now = 1234567 * time.Nanosecond
	tr.Emit(LayerNetsim, "enqueue", Str("dir", "c->s"), Num("size", 52))
	clk.now = 2 * time.Millisecond
	tr.Emit(LayerAdversary, "phase", Str("to", `jitter+"count"`)) // exercises escaping
	tr.Emit(LayerH2, "send", Str("type", "HEADERS"), Num("stream", 1), Num("len", 43))
	return tr
}

func TestExportsDeterministic(t *testing.T) {
	for _, format := range Formats() {
		var out1, out2 bytes.Buffer
		if err := buildTrace().WriteFormat(&out1, format); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if err := buildTrace().WriteFormat(&out2, format); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
			t.Fatalf("%s export not byte-identical across identical runs", format)
		}
		if out1.Len() == 0 {
			t.Fatalf("%s export empty", format)
		}
	}
}

func TestJSONLShape(t *testing.T) {
	var out bytes.Buffer
	if err := buildTrace().WriteJSONL(&out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), out.String())
	}
	if want := `{"ts":1234567,"seq":0,"layer":"netsim","kind":"enqueue","attrs":{"dir":"c->s","size":52}}`; lines[0] != want {
		t.Fatalf("line 0 = %s\nwant     %s", lines[0], want)
	}
	if !strings.Contains(lines[1], `jitter+\"count\"`) {
		t.Fatalf("quote not escaped: %s", lines[1])
	}
}

func TestChromeTraceShape(t *testing.T) {
	var out bytes.Buffer
	if err := buildTrace().WriteChromeTrace(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		`"traceEvents":[`,
		`{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"netsim"}}`,
		`"ts":1234.567`, // 1234567 ns as microseconds
		`"ph":"i"`,
		`"displayTimeUnit":"ms"`,
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("chrome trace missing %q:\n%s", want, s)
		}
	}
}

func TestSummaryContents(t *testing.T) {
	var out bytes.Buffer
	if err := buildTrace().WriteSummary(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"3 events retained", "c2s.sent", "client.srtt_ms", "n=1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestWriteFormatUnknown(t *testing.T) {
	if err := New(&fakeClock{}, Config{}).WriteFormat(&bytes.Buffer{}, "xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestConcurrentConfigSmoke(t *testing.T) {
	tr := New(&fakeClock{}, Config{Concurrent: true})
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			tr.Emit(LayerH2, "send", Num("i", int64(i)))
		}
		close(done)
	}()
	for i := 0; i < 100; i++ {
		tr.Emit(LayerH2, "recv", Num("i", int64(i)))
	}
	<-done
	if tr.Len() != 200 {
		t.Fatalf("retained %d, want 200", tr.Len())
	}
}
