// Package trace is the cross-layer observability spine of the testbed: a
// deterministic event tracer plus named counters and histograms that every
// simulated component (netsim, tcpsim, h2, adversary, endpoints, monitor)
// reports into when a trial is run with tracing armed.
//
// Design constraints, in order:
//
//  1. Zero cost when disabled. A nil *Tracer is the disabled tracer: hot
//     paths guard emission with Enabled() (one pointer test) and build
//     attributes only inside the guard, so a traced-capable build runs the
//     paper's benchmarks unchanged. Counter and Histo methods are nil-safe
//     no-ops, so components keep unconditional Add/Observe calls.
//  2. Determinism. Events are stamped from the trial's virtual clock and a
//     monotonic sequence number assigned in emission order; the simulation
//     is single-threaded, so two runs with the same seed produce
//     byte-identical exports. Nothing in this package reads wall-clock
//     time or iterates a map while exporting.
//  3. Bounded memory. Events land in a ring buffer of configurable
//     capacity; once full, the oldest events are overwritten and counted
//     in Dropped, so a million-event trial cannot OOM the harness.
//
// Exporters (see export.go) serialize the stream as JSONL, as Chrome
// trace_event JSON (loadable in chrome://tracing or Perfetto), or as a
// compact text summary built on metrics.Summary.
package trace

import (
	"sync"
	"sync/atomic"
	"time"

	"h2privacy/internal/metrics"
)

// Clock supplies event timestamps. *simtime.Scheduler satisfies it; real-
// time users (h2serve) can wrap a wall-clock origin.
type Clock interface {
	Now() time.Duration
}

// ClockFunc adapts a function to the Clock interface.
type ClockFunc func() time.Duration

// Now implements Clock.
func (f ClockFunc) Now() time.Duration { return f() }

// WallClock returns a Clock reporting time elapsed since the call — the
// real-TCP tools use it where no virtual clock exists. Traces stamped from
// it are not deterministic; simulation trials use the scheduler instead.
func WallClock() Clock {
	start := time.Now()
	return ClockFunc(func() time.Duration { return time.Since(start) })
}

// Layer identifies which simulated component emitted an event. Layers
// double as Chrome-trace thread lanes, so one trial renders as one process
// with one row per layer.
type Layer uint8

// Trace layers, ordered as they appear in exports.
const (
	LayerNetsim Layer = iota
	LayerTCP
	LayerH2
	LayerAdversary
	LayerBrowser
	LayerServer
	LayerMonitor
	numLayers
)

// String names the layer.
func (l Layer) String() string {
	switch l {
	case LayerNetsim:
		return "netsim"
	case LayerTCP:
		return "tcpsim"
	case LayerH2:
		return "h2"
	case LayerAdversary:
		return "adversary"
	case LayerBrowser:
		return "browser"
	case LayerServer:
		return "server"
	case LayerMonitor:
		return "monitor"
	default:
		return "layer?"
	}
}

// Attr is one typed key/value attribute on an event. Use the Str, Num and
// Dur constructors; the zero Attr is ignored.
type Attr struct {
	Key   string
	Str   string
	Num   int64
	isNum bool
}

// Str builds a string attribute.
func Str(key, val string) Attr { return Attr{Key: key, Str: val} }

// Num builds an integer attribute.
func Num(key string, val int64) Attr { return Attr{Key: key, Num: val, isNum: true} }

// Dur builds a duration attribute, recorded as nanoseconds.
func Dur(key string, d time.Duration) Attr { return Num(key, int64(d)) }

// IsNum reports whether the attribute carries a numeric value.
func (a Attr) IsNum() bool { return a.isNum }

// MaxAttrs is how many attributes one event retains; extra attributes
// passed to Emit are dropped (events stay fixed-size for the ring buffer).
const MaxAttrs = 4

// Event is one trace record.
type Event struct {
	// At is the virtual time the event was emitted.
	At time.Duration
	// Seq is the emission order, unique per tracer. (At, Seq) is the
	// determinism contract: the total order of the stream.
	Seq uint64
	// Layer is the emitting component.
	Layer Layer
	// Kind names the event within its layer ("rto", "enqueue", "phase").
	Kind string
	// Attrs holds up to MaxAttrs attributes; NAttr is how many are set.
	Attrs [MaxAttrs]Attr
	NAttr int
}

// Config tunes a Tracer.
type Config struct {
	// Capacity bounds the event ring buffer. Default 1 << 18 (262144
	// events); older events are overwritten past that.
	Capacity int
	// Concurrent guards Emit and Histo.Observe with a mutex for use from
	// multiple goroutines (the real-TCP h2sync stack). Simulation trials
	// are single-threaded and leave it off; a concurrent trace has no
	// deterministic event order.
	Concurrent bool
}

// DefaultCapacity is the default ring-buffer bound.
const DefaultCapacity = 1 << 18

// Tracer collects events, counters and histograms for one trial. The nil
// *Tracer is the disabled tracer: Enabled reports false, Emit is a no-op,
// and Counter/Histo return nil-safe no-op instruments.
type Tracer struct {
	clock    Clock
	capacity int
	mu       *sync.Mutex // non-nil only when Config.Concurrent

	buf     []Event
	next    int // overwrite cursor once len(buf) == capacity
	seq     uint64
	dropped uint64

	counters []*Counter
	histos   []*Histo
	metas    []metaKV // trace-wide metadata, exported by WriteChromeTrace
}

// metaKV is one trace-wide metadata pair (e.g. the canonical flow ID).
type metaKV struct{ key, val string }

// New builds a tracer stamping events from the given clock.
func New(clock Clock, cfg Config) *Tracer {
	if clock == nil {
		clock = ClockFunc(func() time.Duration { return 0 })
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	t := &Tracer{clock: clock, capacity: cfg.Capacity}
	if cfg.Concurrent {
		t.mu = &sync.Mutex{}
	}
	return t
}

// Enabled reports whether emission does anything. Hot paths call it before
// building attributes so the disabled path costs one branch and zero
// allocations.
func (t *Tracer) Enabled() bool { return t != nil }

// SetClock rebinds the timestamp source. Callers that build a tracer
// before the component owning the clock exists (a TrialConfig is assembled
// before its scheduler) pass New a nil clock and let the assembler rebind;
// core.NewTestbed does this with the trial's virtual clock. No-op on nil.
func (t *Tracer) SetClock(clock Clock) {
	if t == nil || clock == nil {
		return
	}
	t.clock = clock
}

// SetMeta attaches a trace-wide metadata pair, exported in the Chrome
// trace's otherData block (last write per key wins). core.NewTestbed
// stamps the canonical flow ID here so the Chrome view joins against the
// pcap export and the flowseq feature rows. No-op on nil.
func (t *Tracer) SetMeta(key, val string) {
	if t == nil {
		return
	}
	if t.mu != nil {
		t.mu.Lock()
		defer t.mu.Unlock()
	}
	for i := range t.metas {
		if t.metas[i].key == key {
			t.metas[i].val = val
			return
		}
	}
	t.metas = append(t.metas, metaKV{key, val})
}

// Metas returns the trace-wide metadata pairs in insertion order as
// alternating key, value strings.
func (t *Tracer) Metas() []string {
	if t == nil {
		return nil
	}
	if t.mu != nil {
		t.mu.Lock()
		defer t.mu.Unlock()
	}
	out := make([]string, 0, 2*len(t.metas))
	for _, kv := range t.metas {
		out = append(out, kv.key, kv.val)
	}
	return out
}

// Emit records one event stamped with the clock's current time. Calling it
// on a nil tracer is a no-op; attributes beyond MaxAttrs are dropped.
func (t *Tracer) Emit(layer Layer, kind string, attrs ...Attr) {
	if t == nil {
		return
	}
	if t.mu != nil {
		t.mu.Lock()
		defer t.mu.Unlock()
	}
	ev := Event{At: t.clock.Now(), Seq: t.seq, Layer: layer, Kind: kind}
	t.seq++
	n := len(attrs)
	if n > MaxAttrs {
		n = MaxAttrs
	}
	copy(ev.Attrs[:], attrs[:n])
	ev.NAttr = n
	if len(t.buf) < t.capacity {
		t.buf = append(t.buf, ev)
		return
	}
	t.buf[t.next] = ev
	t.next = (t.next + 1) % t.capacity
	t.dropped++
}

// Events returns the retained events in (At, Seq) order. The slice is a
// copy; mutating it does not affect the tracer.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if t.mu != nil {
		t.mu.Lock()
		defer t.mu.Unlock()
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Len reports how many events are retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Dropped reports how many events the ring overwrote.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Counter returns the named counter for the layer, registering it on first
// use. Registration order is the export order, so register at component
// construction, not in hot paths. On a nil tracer it returns nil, whose
// methods are no-ops.
func (t *Tracer) Counter(layer Layer, name string) *Counter {
	if t == nil {
		return nil
	}
	for _, c := range t.counters {
		if c.layer == layer && c.name == name {
			return c
		}
	}
	c := &Counter{layer: layer, name: name}
	t.counters = append(t.counters, c)
	return c
}

// Counters returns all registered counters in registration order.
func (t *Tracer) Counters() []*Counter {
	if t == nil {
		return nil
	}
	return t.counters
}

// Histo returns the named histogram for the layer, registering it on first
// use. On a nil tracer it returns nil, whose methods are no-ops.
func (t *Tracer) Histo(layer Layer, name string) *Histo {
	if t == nil {
		return nil
	}
	for _, h := range t.histos {
		if h.layer == layer && h.name == name {
			return h
		}
	}
	h := &Histo{layer: layer, name: name, mu: t.mu}
	t.histos = append(t.histos, h)
	return h
}

// Histos returns all registered histograms in registration order.
func (t *Tracer) Histos() []*Histo {
	if t == nil {
		return nil
	}
	return t.histos
}

// Counter is a named monotonic tally. The nil *Counter (from a disabled
// tracer) absorbs Add/Inc without allocating.
type Counter struct {
	layer Layer
	name  string
	v     atomic.Int64
}

// Layer reports the owning layer ("" semantics do not apply; zero value is
// LayerNetsim only on a registered counter).
func (c *Counter) Layer() Layer {
	if c == nil {
		return 0
	}
	return c.layer
}

// Name reports the counter name, or "" on nil.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Add increments the counter by n. No-op on nil.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current tally (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Histo accumulates scalar observations (latencies in milliseconds, sizes
// in bytes) summarized by metrics.Summary at export. The nil *Histo
// absorbs Observe.
type Histo struct {
	layer Layer
	name  string
	mu    *sync.Mutex
	s     metrics.Sample
}

// Layer reports the owning layer.
func (h *Histo) Layer() Layer {
	if h == nil {
		return 0
	}
	return h.layer
}

// Name reports the histogram name, or "" on nil.
func (h *Histo) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Observe records one value. No-op on nil.
func (h *Histo) Observe(v float64) {
	if h == nil {
		return
	}
	if h.mu != nil {
		h.mu.Lock()
		defer h.mu.Unlock()
	}
	h.s.Add(v)
}

// ObserveDuration records a duration in milliseconds.
func (h *Histo) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Summary reports the five-number summary of the observations.
func (h *Histo) Summary() metrics.Summary {
	if h == nil {
		return metrics.Summary{}
	}
	if h.mu != nil {
		h.mu.Lock()
		defer h.mu.Unlock()
	}
	return h.s.Summary()
}
