package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"
)

// Report is a point-in-time snapshot of a Collector: the machine it ran
// on, where the run's wall time and allocations went by stage, and how the
// worker pool spent its time. Everything in it is host wall-clock or
// machine-dependent, so the manifest's StripWallClock zeroes all of it
// except the stage names and trial count.
type Report struct {
	GoVersion string `json:"go_version"`
	// GoMaxProcs/NumCPU/WallMS are omitempty so a stripped report drops
	// them from the JSON entirely rather than carrying misleading zeros.
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	NumCPU     int `json:"numcpu,omitempty"`
	// Trials counts completed trial bodies (a paired sweep's base+variant
	// pair is one body).
	Trials int64 `json:"trials"`
	// WallMS is the collector's lifetime at snapshot.
	WallMS int64 `json:"wall_ms,omitempty"`
	// Stages is every stage in lifecycle order (not hotness order — the
	// text renderer sorts its top-N view).
	Stages []StageStat `json:"stages"`
	// Workers is the closed workers' busy/idle split, by worker id.
	Workers []WorkerStat `json:"workers,omitempty"`
}

// StageStat is one stage's aggregate accounting.
type StageStat struct {
	Stage string `json:"stage"`
	Count int64  `json:"count"`
	// TotalMS is wall time summed over every span of this stage.
	TotalMS float64 `json:"total_ms"`
	// MeanUS is TotalMS/Count in microseconds (0 when Count is 0).
	MeanUS float64 `json:"mean_us"`
	// AllocObjects / AllocBytes are runtime/metrics deltas summed over the
	// stage's spans — process-global sampling, exact at workers=1.
	AllocObjects int64 `json:"alloc_objects"`
	AllocBytes   int64 `json:"alloc_bytes"`
	// PctOfAccounted is this stage's share of all accounted stage time.
	PctOfAccounted float64 `json:"pct_of_accounted"`
}

// WorkerStat is one worker's busy/idle split.
type WorkerStat struct {
	ID     int     `json:"id"`
	Trials int     `json:"trials"`
	BusyMS float64 `json:"busy_ms"`
	IdleMS float64 `json:"idle_ms"`
}

// Report snapshots the collector. Nil-safe: the nil collector reports nil.
func (c *Collector) Report() *Report {
	if c == nil {
		return nil
	}
	r := &Report{
		GoVersion:  runtime.Version(),
		GoMaxProcs: gomaxprocs(),
		NumCPU:     runtime.NumCPU(),
		Trials:     c.trials.Load(),
		WallMS:     time.Since(c.started).Milliseconds(),
	}
	var totalNs int64
	for s := Stage(0); s < NumStages; s++ {
		totalNs += c.stages[s].ns.Load()
	}
	for s := Stage(0); s < NumStages; s++ {
		agg := &c.stages[s]
		count, ns := agg.count.Load(), agg.ns.Load()
		st := StageStat{
			Stage:        s.String(),
			Count:        count,
			TotalMS:      float64(ns) / float64(time.Millisecond),
			AllocObjects: agg.allocObjs.Load(),
			AllocBytes:   agg.allocBytes.Load(),
		}
		if count > 0 {
			st.MeanUS = float64(ns) / float64(count) / float64(time.Microsecond)
		}
		if totalNs > 0 {
			st.PctOfAccounted = 100 * float64(ns) / float64(totalNs)
		}
		r.Stages = append(r.Stages, st)
	}
	c.mu.Lock()
	r.Workers = append([]WorkerStat(nil), c.workers...)
	c.mu.Unlock()
	sort.Slice(r.Workers, func(i, j int) bool { return r.Workers[i].ID < r.Workers[j].ID })
	return r
}

// StripWallClock zeroes every wall-clock and machine-dependent field,
// leaving only the stage skeleton and the (seed-determined) trial count —
// the form that must serialize byte-identically at any worker count.
func (r *Report) StripWallClock() {
	if r == nil {
		return
	}
	r.GoMaxProcs = 0
	r.NumCPU = 0
	r.WallMS = 0
	r.Workers = nil
	for i := range r.Stages {
		s := &r.Stages[i]
		s.Count = 0
		s.TotalMS = 0
		s.MeanUS = 0
		s.AllocObjects = 0
		s.AllocBytes = 0
		s.PctOfAccounted = 0
	}
}

// WriteJSON serializes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report as JSON to path.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteText renders the human report: a run header, the top-N hot-stage
// table sorted by total time, and the worker pool's busy/idle split. topN
// <= 0 shows every stage.
func (r *Report) WriteText(w io.Writer, topN int) {
	if r == nil {
		return
	}
	fmt.Fprintf(w, "== perf: per-stage cost attribution ==\n")
	fmt.Fprintf(w, "  %d trial(s) in %d ms wall — %s, gomaxprocs %d, numcpu %d\n",
		r.Trials, r.WallMS, r.GoVersion, r.GoMaxProcs, r.NumCPU)

	stages := append([]StageStat(nil), r.Stages...)
	sort.SliceStable(stages, func(i, j int) bool { return stages[i].TotalMS > stages[j].TotalMS })
	if topN > 0 && topN < len(stages) {
		stages = stages[:topN]
	}
	fmt.Fprintf(w, "  %-14s %8s %12s %12s %14s %14s %7s\n",
		"stage", "count", "total ms", "mean µs", "alloc objs", "alloc bytes", "share")
	for _, s := range stages {
		fmt.Fprintf(w, "  %-14s %8d %12.2f %12.1f %14d %14d %6.1f%%\n",
			s.Stage, s.Count, s.TotalMS, s.MeanUS, s.AllocObjects, s.AllocBytes, s.PctOfAccounted)
	}
	if len(r.Workers) > 0 {
		var busy, idle float64
		for _, ws := range r.Workers {
			busy += ws.BusyMS
			idle += ws.IdleMS
		}
		fmt.Fprintf(w, "  workers: %d — busy %.1f ms, idle %.1f ms", len(r.Workers), busy, idle)
		if busy+idle > 0 {
			fmt.Fprintf(w, " (%.0f%% utilization)", 100*busy/(busy+idle))
		}
		fmt.Fprintln(w)
	}
	if r.GoMaxProcs > 1 {
		fmt.Fprintln(w, "  note: alloc deltas sample process-global counters; per-stage allocation")
		fmt.Fprintln(w, "        attribution is exact only at workers=1 (totals remain correct).")
	}
}

// StageByName finds a stage entry (nil when absent) — convenience for
// tests and the bench recorder.
func (r *Report) StageByName(name string) *StageStat {
	if r == nil {
		return nil
	}
	for i := range r.Stages {
		if r.Stages[i].Stage == name {
			return &r.Stages[i]
		}
	}
	return nil
}

// AccountedMS sums the named stages' total wall time; with no names it
// sums the five trial stages (build/run/capture/check/publish) — the
// numerator of the "stage breakdown covers >=90% of trial wall time"
// acceptance check.
func (r *Report) AccountedMS(names ...string) float64 {
	if r == nil {
		return 0
	}
	if len(names) == 0 {
		names = []string{
			StageBuild.String(), StageRun.String(), StageCapture.String(),
			StageCheck.String(), StagePublish.String(),
		}
	}
	var total float64
	for _, n := range names {
		if s := r.StageByName(n); s != nil {
			total += s.TotalMS
		}
	}
	return total
}

// BusyMS sums worker trial-body time — the denominator of the coverage
// check (stage spans live inside trial bodies).
func (r *Report) BusyMS() float64 {
	if r == nil {
		return 0
	}
	var total float64
	for _, ws := range r.Workers {
		total += ws.BusyMS
	}
	return total
}
