package perf

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"h2privacy/internal/obs"
)

// TestDisabledPerfZeroAllocs pins the subsystem's core contract: with perf
// disarmed (nil collector), every hook on the trial and sweep hot paths —
// worker handles, trial brackets, stage spans, reports — is a
// zero-allocation no-op.
func TestDisabledPerfZeroAllocs(t *testing.T) {
	var c *Collector
	allocs := testing.AllocsPerRun(1000, func() {
		w := c.Worker()
		tok := w.BeginTrial()
		sp := w.Start(StageBuild)
		sp.Stop()
		sp = w.Start(StageRun)
		sp.Stop()
		w.EndTrial(tok)
		w.Close()
		dsp := c.StartStage(StagePublishDrain)
		dsp.Stop()
		c.BeginExperiment("fig3")
		c.EnableLabels()
		c.PublishTo(nil)
		_ = c.Report()
		_ = c.Elapsed()
		_ = c.Trials()
		_ = c.StageTotal(StageRun)
	})
	if allocs != 0 {
		t.Fatalf("disabled perf allocated %.1f times per op, want 0", allocs)
	}
}

// BenchmarkPerfOverhead pairs with the zero-alloc test: the disabled arm
// must be a few nanoseconds of nil checks; the armed arm prices the real
// instrumentation (clock reads + runtime/metrics samples per span).
func BenchmarkPerfOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		var c *Collector
		w := c.Worker()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tok := w.BeginTrial()
			sp := w.Start(StageRun)
			sp.Stop()
			w.EndTrial(tok)
		}
	})
	b.Run("armed", func(b *testing.B) {
		c := NewCollector()
		w := c.Worker()
		defer w.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tok := w.BeginTrial()
			sp := w.Start(StageRun)
			sp.Stop()
			w.EndTrial(tok)
		}
	})
	b.Run("armed+labels", func(b *testing.B) {
		c := NewCollector()
		c.EnableLabels()
		w := c.Worker()
		defer w.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tok := w.BeginTrial()
			sp := w.Start(StageRun)
			sp.Stop()
			w.EndTrial(tok)
		}
	})
}

// TestCollectorAccounting drives a worker through spans and checks the
// report's stage totals, worker split and percentages hold together.
func TestCollectorAccounting(t *testing.T) {
	c := NewCollector()
	w := c.Worker()
	for i := 0; i < 3; i++ {
		tok := w.BeginTrial()
		sp := w.Start(StageBuild)
		time.Sleep(time.Millisecond)
		sp.Stop()
		sp = w.Start(StageRun)
		time.Sleep(2 * time.Millisecond)
		sp.Stop()
		w.EndTrial(tok)
	}
	w.Close()
	if got := c.Trials(); got != 3 {
		t.Fatalf("Trials = %d, want 3", got)
	}
	rep := c.Report()
	if rep == nil {
		t.Fatal("armed collector reported nil")
	}
	if len(rep.Stages) != int(NumStages) {
		t.Fatalf("report has %d stages, want %d", len(rep.Stages), NumStages)
	}
	build := rep.StageByName("build")
	run := rep.StageByName("run")
	if build == nil || run == nil {
		t.Fatal("build/run stages missing")
	}
	if build.Count != 3 || run.Count != 3 {
		t.Fatalf("stage counts build=%d run=%d, want 3/3", build.Count, run.Count)
	}
	if build.TotalMS < 2.5 || run.TotalMS < 5.5 {
		t.Fatalf("stage totals too small: build=%.2fms run=%.2fms", build.TotalMS, run.TotalMS)
	}
	if run.TotalMS <= build.TotalMS {
		t.Fatalf("run (%.2fms) should dominate build (%.2fms)", run.TotalMS, build.TotalMS)
	}
	qw := rep.StageByName("queue_wait")
	if qw == nil || qw.Count != 3 {
		t.Fatalf("queue_wait count = %v, want 3 brackets", qw)
	}
	if len(rep.Workers) != 1 {
		t.Fatalf("report has %d workers, want 1", len(rep.Workers))
	}
	ws := rep.Workers[0]
	if ws.Trials != 3 || ws.BusyMS < 8.5 {
		t.Fatalf("worker stat %+v: want 3 trials, >=8.5ms busy", ws)
	}
	// Percentages over accounted time sum to ~100.
	var pct float64
	for _, s := range rep.Stages {
		pct += s.PctOfAccounted
	}
	if pct < 99.0 || pct > 101.0 {
		t.Fatalf("stage shares sum to %.2f%%, want ~100%%", pct)
	}
	// The trial stages dominate worker busy time in this synthetic run.
	if acc := rep.AccountedMS(); acc < 0.9*rep.BusyMS() {
		t.Fatalf("accounted %.2fms < 90%% of busy %.2fms", acc, rep.BusyMS())
	}
}

// TestReportStripWallClock: stripped reports keep only the stage skeleton
// and trial count, and two stripped same-shape reports render identically.
func TestReportStripWallClock(t *testing.T) {
	c := NewCollector()
	w := c.Worker()
	tok := w.BeginTrial()
	sp := w.Start(StageRun)
	time.Sleep(time.Millisecond)
	sp.Stop()
	w.EndTrial(tok)
	w.Close()
	rep := c.Report()
	rep.StripWallClock()
	if rep.GoMaxProcs != 0 || rep.NumCPU != 0 || rep.WallMS != 0 || rep.Workers != nil {
		t.Fatalf("machine/wall fields survived strip: %+v", rep)
	}
	for _, s := range rep.Stages {
		if s.Count != 0 || s.TotalMS != 0 || s.MeanUS != 0 ||
			s.AllocObjects != 0 || s.AllocBytes != 0 || s.PctOfAccounted != 0 {
			t.Fatalf("stage %s carries wall residue: %+v", s.Stage, s)
		}
	}
	if rep.Trials != 1 {
		t.Fatalf("trial count stripped too: %d", rep.Trials)
	}
}

// TestPublishTo: publishing mirrors spans into the registry with the full
// pre-created stage series set, under the sweep_ strippable prefix.
func TestPublishTo(t *testing.T) {
	c := NewCollector()
	reg := obs.NewRegistry()
	c.PublishTo(reg)
	w := c.Worker()
	tok := w.BeginTrial()
	sp := w.Start(StageCapture)
	sp.Stop()
	w.EndTrial(tok)
	w.Close()
	snap := reg.Snapshot()
	byName := map[string]obs.FamilySnap{}
	for _, f := range snap.Families {
		if !strings.HasPrefix(f.Name, MetricsPrefix) {
			t.Fatalf("perf published family %q outside the %q prefix", f.Name, MetricsPrefix)
		}
		byName[f.Name] = f
	}
	sec, ok := byName["sweep_stage_seconds"]
	if !ok {
		t.Fatalf("sweep_stage_seconds missing; have %v", snap.Families)
	}
	if len(sec.Series) != int(NumStages) {
		t.Fatalf("sweep_stage_seconds has %d series, want %d pre-created", len(sec.Series), NumStages)
	}
	var captured bool
	for _, s := range sec.Series {
		if len(s.LabelValues) == 1 && s.LabelValues[0] == "capture" && s.Count == 1 {
			captured = true
		}
	}
	if !captured {
		t.Fatal("capture span not observed in sweep_stage_seconds")
	}
	for _, name := range []string{"sweep_stage_allocs", "sweep_worker_busy_seconds", "sweep_worker_idle_seconds"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("family %s missing", name)
		}
	}
}

// TestWriteText smoke-tests the human rendering: header, hottest-first
// table, worker line.
func TestWriteText(t *testing.T) {
	c := NewCollector()
	w := c.Worker()
	tok := w.BeginTrial()
	sp := w.Start(StageRun)
	time.Sleep(2 * time.Millisecond)
	sp.Stop()
	sp = w.Start(StageBuild)
	sp.Stop()
	w.EndTrial(tok)
	w.Close()
	var buf bytes.Buffer
	c.Report().WriteText(&buf, 3)
	out := buf.String()
	for _, want := range []string{"per-stage cost attribution", "stage", "run", "workers: 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text report missing %q:\n%s", want, out)
		}
	}
	// Hottest first: "run" slept, so it precedes "build".
	if strings.Index(out, "\n  run") > strings.Index(out, "\n  build") && strings.Contains(out, "\n  build") {
		t.Fatalf("table not sorted hottest-first:\n%s", out)
	}
}

// TestStageNames covers the enum's string round-trip.
func TestStageNames(t *testing.T) {
	names := StageNames()
	if len(names) != int(NumStages) {
		t.Fatalf("StageNames has %d entries, want %d", len(names), NumStages)
	}
	seen := map[string]bool{}
	for s := Stage(0); s < NumStages; s++ {
		n := s.String()
		if n == "" || n == "unknown" || seen[n] {
			t.Fatalf("stage %d has bad/duplicate name %q", s, n)
		}
		seen[n] = true
	}
	if Stage(200).String() != "unknown" {
		t.Fatal("out-of-range stage must name unknown")
	}
}
