// Package perf is the sweep performance observatory: host-side (wall-clock,
// not virtual-clock) cost attribution for the trial lifecycle and the sweep
// worker pool. internal/obs and internal/trace observe the simulated world;
// this package observes the cost of simulating it, turning "the sweep is
// slow" into a ranked list of culprits.
//
// The model:
//
//   - A Collector aggregates one run's accounting. Each sweep worker
//     goroutine takes a Worker handle; each trial body is bracketed by
//     BeginTrial/EndTrial (busy time, queue wait) and split into named
//     Stages (Span) — testbed construction, scheduler run, capture
//     finalize, check finalize, metrics publication — with per-stage
//     wall-time and allocation deltas.
//   - Allocation deltas come from runtime/metrics (/gc/heap/allocs:*).
//     Those counters are process-global, so with workers>1 a stage's delta
//     includes whatever the other workers allocated meanwhile: per-stage
//     alloc attribution is exact at workers=1 and indicative (totals still
//     correct in aggregate) at workers>1. Wall-time attribution is exact at
//     any worker count. This is the documented caveat.
//   - When a CPU profile is being captured, EnableLabels arms pprof
//     goroutine labels (experiment, stage) around every span, so profile
//     samples attribute to stages without guesswork.
//   - Report snapshots the Collector into a JSON-serializable report with a
//     top-N hot-stage table; PublishTo mirrors stage and worker accounting
//     into an obs.Registry (sweep_stage_seconds, sweep_stage_allocs,
//     sweep_worker_busy_seconds, sweep_worker_idle_seconds) so /metrics and
//     the run manifest carry it.
//
// Contract: the nil *Collector (and the nil *Worker it hands out) is the
// disabled subsystem — every method is a zero-allocation no-op that reads
// no clocks, pinned by TestDisabledPerfZeroAllocs and BenchmarkPerfOverhead.
// Arming perf never touches the simulation: it only reads host clocks and
// allocation counters, so same-seed sweep output stays byte-identical at
// any worker count.
package perf

import (
	"context"
	"runtime"
	"runtime/metrics"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"h2privacy/internal/obs"
)

// Stage names one slice of a trial's host-side execution. The first five
// stages partition core.RunTrial; the last two are sweep-engine overheads
// that explain the sequential-vs-parallel gap (worker claim/spawn gaps and
// the deferred in-order registry drain).
type Stage uint8

// Trial and sweep stages, in lifecycle order.
const (
	// StageBuild is topology/endpoint construction (core.NewTestbed).
	StageBuild Stage = iota
	// StageRun is the scheduler run to quiescence.
	StageRun
	// StageCapture is capture finalize: monitor reads, burst segmentation
	// and prediction over the reassembled streams.
	StageCapture
	// StageCheck is invariant-check finalize (end-of-trial conservation
	// checks and violation flush).
	StageCheck
	// StagePublish is inline per-trial metrics publication (only taken when
	// the trial does not defer publication to the sweep engine).
	StagePublish
	// StageQueueWait is the gap a worker spends between trial bodies:
	// goroutine spawn latency before its first trial, then claim/config
	// overhead between trials.
	StageQueueWait
	// StagePublishDrain is the sweep engine's deferred publication path:
	// the index-ordered PublishTrialMetrics replay after the pool drains.
	StagePublishDrain
	// NumStages bounds the enum.
	NumStages
)

var stageNames = [NumStages]string{
	"build", "run", "capture", "check", "publish", "queue_wait", "publish_drain",
}

// String names the stage as used in reports, metrics labels and pprof labels.
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// StageNames lists every stage name in lifecycle order.
func StageNames() []string {
	return append([]string(nil), stageNames[:]...)
}

// runtime/metrics samples used for allocation deltas. Process-global: see
// the package comment's workers>1 caveat.
const (
	metricAllocBytes   = "/gc/heap/allocs:bytes"
	metricAllocObjects = "/gc/heap/allocs:objects"
)

// stageAgg is one stage's run-wide accounting, updated with atomics from
// every worker.
type stageAgg struct {
	count      atomic.Int64
	ns         atomic.Int64
	allocBytes atomic.Int64
	allocObjs  atomic.Int64
}

// Collector aggregates one run's host-side cost attribution. The zero value
// is not usable; call NewCollector. A nil *Collector is the disabled
// subsystem: every method (and every method of the nil Workers it returns)
// is a zero-alloc no-op.
type Collector struct {
	started time.Time
	labels  atomic.Bool // arm pprof goroutine labels around spans
	trials  atomic.Int64
	stages  [NumStages]stageAgg

	mu         sync.Mutex
	experiment string       // current experiment id, for pprof labels
	workers    []WorkerStat // closed workers, appended under mu
	nextWorker atomic.Int64

	// Armed by PublishTo: per-stage cached instruments so span Stop stays
	// lock-free on the hot path. The nil instruments (unpublished) are
	// no-ops per the obs contract.
	hStageSec    [NumStages]*obs.Histogram
	hStageAllocs [NumStages]*obs.Histogram
	hWorkerBusy  *obs.Histogram
	hWorkerIdle  *obs.Histogram
}

// AllocBuckets spans per-stage allocation-object counts, from near-free
// finalizers to full page-load object graphs.
var AllocBuckets = []float64{10, 100, 1e3, 1e4, 1e5, 1e6, 1e7}

// MetricsPrefix is the family-name prefix of every registry series this
// package publishes. Everything under it is host wall-clock (or
// machine-dependent allocation) data, so experiment.StripWallClock drops
// these families from stripped manifests wholesale.
const MetricsPrefix = "sweep_"

// PublishTo mirrors stage and worker accounting into reg as it accrues:
// sweep_stage_seconds and sweep_stage_allocs histograms labeled by stage,
// and sweep_worker_{busy,idle}_seconds observed once per worker at Close.
// Every stage series is pre-created so the exported family shape does not
// depend on which stages happened to fire. No-op on nil collector or
// registry.
func (c *Collector) PublishTo(reg *obs.Registry) {
	if c == nil || reg == nil {
		return
	}
	sec := reg.HistogramVec("sweep_stage_seconds",
		"Host wall time attributed to each trial/sweep stage.", obs.DefBuckets, "stage")
	allocs := reg.HistogramVec("sweep_stage_allocs",
		"Heap objects allocated during each trial/sweep stage (process-global sampling; exact at workers=1).",
		AllocBuckets, "stage")
	for s := Stage(0); s < NumStages; s++ {
		c.hStageSec[s] = sec.With(s.String())
		c.hStageAllocs[s] = allocs.With(s.String())
	}
	c.hWorkerBusy = reg.Histogram("sweep_worker_busy_seconds",
		"Per-worker time spent inside trial bodies, one observation per worker.", obs.DefBuckets)
	c.hWorkerIdle = reg.Histogram("sweep_worker_idle_seconds",
		"Per-worker open time outside trial bodies (spawn, claim gaps, tail wait).", obs.DefBuckets)
}

// NewCollector starts an armed collector.
func NewCollector() *Collector {
	return &Collector{started: time.Now()}
}

// EnableLabels arms pprof goroutine labels (experiment, stage) around every
// span — wanted only while a CPU profile is being captured, because label
// switching costs a few hundred nanoseconds per span.
func (c *Collector) EnableLabels() {
	if c == nil {
		return
	}
	c.labels.Store(true)
}

// BeginExperiment names the experiment whose trials run next; the name
// lands in the pprof "experiment" label of workers created afterwards.
// Harness runners call it before each experiment. No-op on nil.
func (c *Collector) BeginExperiment(id string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.experiment = id
	c.mu.Unlock()
}

// Worker hands out a worker-scoped handle: one per sweep worker goroutine
// (or one for the sequential loop). Workers are not safe for concurrent
// use — each goroutine takes its own — and must be Closed so busy/idle
// accounting lands in the report. Returns nil (the no-op worker) on nil.
func (c *Collector) Worker() *Worker {
	if c == nil {
		return nil
	}
	w := &Worker{
		c:      c,
		id:     int(c.nextWorker.Add(1)) - 1,
		opened: time.Now(),
	}
	w.samples[0].Name = metricAllocBytes
	w.samples[1].Name = metricAllocObjects
	if c.labels.Load() {
		c.mu.Lock()
		exp := c.experiment
		c.mu.Unlock()
		w.base = pprof.WithLabels(context.Background(), pprof.Labels("experiment", exp))
		ctxs := new([NumStages]context.Context)
		for s := Stage(0); s < NumStages; s++ {
			ctxs[s] = pprof.WithLabels(w.base, pprof.Labels("stage", s.String()))
		}
		w.stageCtx = ctxs
	}
	return w
}

// StartStage opens a collector-level span outside any worker — the sweep
// engine uses it for the deferred publication drain, which runs on the
// aggregating goroutine after the pool has drained. Returns the no-op span
// on nil.
func (c *Collector) StartStage(s Stage) Span {
	if c == nil {
		return Span{}
	}
	w := &Worker{c: c, id: -1, opened: time.Now()}
	w.samples[0].Name = metricAllocBytes
	w.samples[1].Name = metricAllocObjects
	return w.Start(s)
}

// addStage books one finished span. Hot path: four atomics plus (when
// PublishTo armed) two lock-free histogram observations.
func (c *Collector) addStage(s Stage, d time.Duration, allocBytes, allocObjs int64) {
	agg := &c.stages[s]
	agg.count.Add(1)
	agg.ns.Add(int64(d))
	agg.allocBytes.Add(allocBytes)
	agg.allocObjs.Add(allocObjs)
	c.hStageSec[s].Observe(d.Seconds())
	c.hStageAllocs[s].Observe(float64(allocObjs))
}

// Worker is one goroutine's handle into the collector. Not safe for
// concurrent use. The nil *Worker is the disabled handle: every method is
// a zero-alloc no-op.
type Worker struct {
	c        *Collector
	id       int
	base     context.Context             // pprof label base; nil unless labels armed
	stageCtx *[NumStages]context.Context // per-stage label contexts
	samples  [2]metrics.Sample           // reusable runtime/metrics buffer
	opened   time.Time
	lastEnd  time.Time // end of the previous trial body, for queue-wait
	busy     time.Duration
	trials   int
}

// readAllocs samples the process-global allocation counters.
func (w *Worker) readAllocs() (bytes, objects uint64) {
	metrics.Read(w.samples[:])
	return w.samples[0].Value.Uint64(), w.samples[1].Value.Uint64()
}

// TrialToken carries BeginTrial's timestamp to EndTrial.
type TrialToken struct {
	start time.Time
}

// BeginTrial brackets the start of one trial body, booking the queue wait
// since the worker's previous trial ended (or since the worker spawned).
// No-op on nil.
func (w *Worker) BeginTrial() TrialToken {
	if w == nil {
		return TrialToken{}
	}
	now := time.Now()
	wait := now.Sub(w.opened)
	if !w.lastEnd.IsZero() {
		wait = now.Sub(w.lastEnd)
	}
	w.c.addStage(StageQueueWait, wait, 0, 0)
	return TrialToken{start: now}
}

// EndTrial closes a trial body, accumulating worker busy time. No-op on nil.
func (w *Worker) EndTrial(tok TrialToken) {
	if w == nil {
		return
	}
	now := time.Now()
	w.busy += now.Sub(tok.start)
	w.trials++
	w.lastEnd = now
	w.c.trials.Add(1)
}

// Close records the worker's busy/idle split into the collector. Idle is
// the worker's open wall time minus trial-body time: pool spin-up, claim
// gaps and the tail wait while other workers finish. No-op on nil.
func (w *Worker) Close() {
	if w == nil {
		return
	}
	total := time.Since(w.opened)
	idle := total - w.busy
	if idle < 0 {
		idle = 0
	}
	st := WorkerStat{
		ID:     w.id,
		Trials: w.trials,
		BusyMS: float64(w.busy) / float64(time.Millisecond),
		IdleMS: float64(idle) / float64(time.Millisecond),
	}
	w.c.hWorkerBusy.Observe(w.busy.Seconds())
	w.c.hWorkerIdle.Observe(idle.Seconds())
	w.c.mu.Lock()
	w.c.workers = append(w.c.workers, st)
	w.c.mu.Unlock()
}

// Span is one in-flight stage measurement. Obtained from Worker.Start (or
// Collector.StartStage) and closed with Stop. A zero Span (from the nil
// worker) is a no-op.
type Span struct {
	w     *Worker
	stage Stage
	start time.Time
	b0    uint64
	o0    uint64
}

// Start opens a stage span on this worker's goroutine. Spans on one worker
// must be sequential, not nested — the trial stages are. No-op on nil.
func (w *Worker) Start(s Stage) Span {
	if w == nil {
		return Span{}
	}
	if w.stageCtx != nil {
		pprof.SetGoroutineLabels(w.stageCtx[s])
	}
	b, o := w.readAllocs()
	return Span{w: w, stage: s, start: time.Now(), b0: b, o0: o}
}

// Stop closes the span, booking wall time and allocation deltas. No-op on
// the zero span.
func (sp Span) Stop() {
	if sp.w == nil {
		return
	}
	d := time.Since(sp.start)
	b, o := sp.w.readAllocs()
	sp.w.c.addStage(sp.stage, d, int64(b-sp.b0), int64(o-sp.o0))
	if sp.w.stageCtx != nil {
		pprof.SetGoroutineLabels(sp.w.base)
	}
}

// Elapsed reports the collector's wall time so far (0 on nil).
func (c *Collector) Elapsed() time.Duration {
	if c == nil {
		return 0
	}
	return time.Since(c.started)
}

// Trials reports completed trial bodies (0 on nil).
func (c *Collector) Trials() int64 {
	if c == nil {
		return 0
	}
	return c.trials.Load()
}

// StageTotal reports one stage's accumulated wall time (0 on nil) — the
// coverage tests compare stage sums against worker busy time through it.
func (c *Collector) StageTotal(s Stage) time.Duration {
	if c == nil || s >= NumStages {
		return 0
	}
	return time.Duration(c.stages[s].ns.Load())
}

// runtime.GOMAXPROCS is read at report time, not cached: a test may resize
// the pool mid-run.
func gomaxprocs() int { return runtime.GOMAXPROCS(0) }
