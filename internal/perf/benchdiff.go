package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BenchRecord is the schema of BENCH_sweep.json: the committed
// sequential-vs-parallel sweep baseline plus the per-stage breakdown this
// package attributes. Older baselines lack the gomaxprocs/numcpu/stage
// fields; readers treat them as absent.
type BenchRecord struct {
	Benchmark    string  `json:"benchmark"`
	Trials       int     `json:"trials"`
	Workers      int     `json:"workers"`
	Cores        int     `json:"cores"`
	GoMaxProcs   int     `json:"gomaxprocs,omitempty"`
	NumCPU       int     `json:"numcpu,omitempty"`
	GoVersion    string  `json:"go_version"`
	SequentialMS int64   `json:"sequential_ms"`
	ParallelMS   int64   `json:"parallel_ms"`
	Speedup      float64 `json:"speedup"`
	// AllocsPerTrial is the sequential run's attributed heap allocation
	// count divided by trials — the headline number the arena/pool work
	// drives down. Recorded at top level so a human (or jq) reads it
	// without summing the stage table; absent in older baselines.
	AllocsPerTrial float64 `json:"allocs_per_trial,omitempty"`
	// Note annotates the record ("single-core box: ..."); set by the bench
	// recorder when the speedup figure is not meaningful.
	Note string `json:"note,omitempty"`
	// SequentialStages / ParallelStages carry each run's hot-stage
	// breakdown, hottest first.
	SequentialStages []BenchStage `json:"sequential_stages,omitempty"`
	ParallelStages   []BenchStage `json:"parallel_stages,omitempty"`
	// FleetRows carry the fleet-scale cost curve: sequential ms/trial and
	// allocs/trial at each shared-bottleneck load level N. Absent in
	// baselines that predate the fleet topology.
	FleetRows []FleetBenchRow `json:"fleet_rows,omitempty"`
}

// FleetBenchRow is one load level of the fleet-scale cost curve: a
// sequential fleet sweep (N flows behind one bottleneck, budget 1) timed
// and alloc-attributed per trial.
type FleetBenchRow struct {
	N              int     `json:"n"`
	Trials         int     `json:"trials"`
	MSPerTrial     float64 `json:"ms_per_trial"`
	AllocsPerTrial float64 `json:"allocs_per_trial,omitempty"`
}

// BenchStage is one stage's share of a bench run.
type BenchStage struct {
	Stage        string  `json:"stage"`
	TotalMS      float64 `json:"total_ms"`
	Pct          float64 `json:"pct"`
	AllocObjects int64   `json:"alloc_objects"`
}

// BenchStages condenses a Report into the bench record's stage list,
// hottest first, dropping all-zero stages.
func (r *Report) BenchStages() []BenchStage {
	if r == nil {
		return nil
	}
	var out []BenchStage
	for _, s := range r.Stages {
		if s.Count == 0 && s.TotalMS == 0 {
			continue
		}
		out = append(out, BenchStage{
			Stage: s.Stage, TotalMS: s.TotalMS, Pct: s.PctOfAccounted,
			AllocObjects: s.AllocObjects,
		})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].TotalMS > out[j-1].TotalMS; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// SeqAllocsPerTrial resolves the record's sequential allocs/trial: the
// top-level field when recorded, else the sequential stage table summed
// and normalized. Zero means the record predates alloc attribution.
func (b *BenchRecord) SeqAllocsPerTrial() float64 {
	if b.AllocsPerTrial > 0 {
		return b.AllocsPerTrial
	}
	var total int64
	for _, s := range b.SequentialStages {
		total += s.AllocObjects
	}
	if total <= 0 || b.Trials <= 0 {
		return 0
	}
	return float64(total) / float64(b.Trials)
}

// seqStageAllocsPerTrial maps stage name -> allocs/trial for the stages
// that recorded allocation data.
func (b *BenchRecord) seqStageAllocsPerTrial() map[string]float64 {
	if b.Trials <= 0 {
		return nil
	}
	m := make(map[string]float64, len(b.SequentialStages))
	for _, s := range b.SequentialStages {
		if s.AllocObjects > 0 {
			m[s.Stage] = float64(s.AllocObjects) / float64(b.Trials)
		}
	}
	return m
}

// effectiveCores resolves the record's core count: numcpu when recorded,
// the legacy "cores" field otherwise.
func (b *BenchRecord) effectiveCores() int {
	if b.NumCPU > 0 {
		return b.NumCPU
	}
	return b.Cores
}

// SingleCore reports whether the record was taken on a box where parallel
// cannot beat sequential, making the speedup figure meaningless.
func (b *BenchRecord) SingleCore() bool { return b.effectiveCores() <= 1 }

// ReadBenchRecord loads a BENCH_sweep.json.
func ReadBenchRecord(path string) (*BenchRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec BenchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if rec.Trials <= 0 {
		return nil, fmt.Errorf("perf: %s: trials must be positive, got %d", path, rec.Trials)
	}
	return &rec, nil
}

// WriteFile writes the record as indented JSON.
func (b *BenchRecord) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// BenchDiff is the comparison of a new bench record against a committed
// baseline — the CI regression gate's verdict.
type BenchDiff struct {
	// SeqPerTrialOldMS / SeqPerTrialNewMS normalize sequential wall time per
	// trial, so baselines at different trial counts compare.
	SeqPerTrialOldMS float64
	SeqPerTrialNewMS float64
	// SeqRegressionPct is the sequential per-trial change: positive =
	// slower. The gate fails when it exceeds the threshold.
	SeqRegressionPct float64
	// SpeedupOld / SpeedupNew carry the parallel speedups for the report.
	SpeedupOld, SpeedupNew float64
	// SpeedupJudged is false when the speedup assertion was skipped
	// (single-core box, or no floor configured); SpeedupOK is meaningful
	// only when judged.
	SpeedupJudged bool
	SpeedupOK     bool
	// AllocsPerTrialOld / AllocsPerTrialNew are the sequential runs'
	// total attributed allocs/trial (0 when a record predates alloc
	// attribution). AllocRegressionPct is the total's change: positive =
	// more allocations. AllocJudged is false when the allocation gate was
	// skipped (no threshold, or either record lacks stage alloc data).
	AllocsPerTrialOld  float64
	AllocsPerTrialNew  float64
	AllocRegressionPct float64
	AllocJudged        bool
	// FleetJudged is true when both records carried fleet-scale rows and at
	// least one load level N was compared.
	FleetJudged bool
	// Failed is the gate verdict; Notes explain it (and any skips).
	Failed bool
	Notes  []string
}

// DiffBench gates new against old: fail when sequential ms/trial regresses
// by more than thresholdPct percent; when allocThresholdPct > 0, fail when
// any stage's (or the total's) sequential allocs/trial regresses by more
// than that percentage — allocation counts are near-deterministic, so this
// gate can run much tighter than the wall-clock one; and — only on
// multi-core boxes and only when speedupFloor > 0 — when the parallel
// speedup falls below speedupFloor. A single-core box cannot win with
// workers>1, so its speedup judgment is skipped with a note, never failed.
// Records that predate alloc attribution skip the allocation judgment with
// a note.
func DiffBench(old, new *BenchRecord, thresholdPct, speedupFloor, allocThresholdPct float64) *BenchDiff {
	d := &BenchDiff{
		SeqPerTrialOldMS: float64(old.SequentialMS) / float64(old.Trials),
		SeqPerTrialNewMS: float64(new.SequentialMS) / float64(new.Trials),
		SpeedupOld:       old.Speedup,
		SpeedupNew:       new.Speedup,
	}
	if d.SeqPerTrialOldMS > 0 {
		d.SeqRegressionPct = 100 * (d.SeqPerTrialNewMS - d.SeqPerTrialOldMS) / d.SeqPerTrialOldMS
	}
	if d.SeqRegressionPct > thresholdPct {
		d.Failed = true
		d.Notes = append(d.Notes, fmt.Sprintf(
			"sequential ms/trial regressed %.1f%% (%.2f -> %.2f ms), over the %.1f%% threshold",
			d.SeqRegressionPct, d.SeqPerTrialOldMS, d.SeqPerTrialNewMS, thresholdPct))
	} else {
		d.Notes = append(d.Notes, fmt.Sprintf(
			"sequential ms/trial: %.2f -> %.2f (%+.1f%%, threshold %.1f%%)",
			d.SeqPerTrialOldMS, d.SeqPerTrialNewMS, d.SeqRegressionPct, thresholdPct))
	}
	switch {
	case new.SingleCore():
		d.Notes = append(d.Notes,
			"single-core box: parallel cannot beat sequential; speedup judgment skipped")
	case speedupFloor <= 0:
		d.Notes = append(d.Notes, fmt.Sprintf(
			"speedup %.2fx -> %.2fx (no floor configured; informational)",
			old.Speedup, new.Speedup))
	default:
		d.SpeedupJudged = true
		d.SpeedupOK = new.Speedup >= speedupFloor
		if !d.SpeedupOK {
			d.Failed = true
			d.Notes = append(d.Notes, fmt.Sprintf(
				"parallel speedup %.2fx below the %.2fx floor on a %d-core box",
				new.Speedup, speedupFloor, new.effectiveCores()))
		} else {
			d.Notes = append(d.Notes, fmt.Sprintf(
				"parallel speedup %.2fx meets the %.2fx floor", new.Speedup, speedupFloor))
		}
	}
	if old.SingleCore() && !new.SingleCore() {
		// The speedup floor judges the NEW record (measured on this box), so
		// the gate works even against a single-core baseline — but the
		// baseline's own speedup figure is meaningless and its wall-clock
		// numbers came from different hardware. Nudge toward upgrading it.
		d.Notes = append(d.Notes, fmt.Sprintf(
			"baseline was recorded on a single-core box, this run on %d cores: consider committing this run's record (CI artifact) as the new baseline",
			new.effectiveCores()))
	}
	d.AllocsPerTrialOld = old.SeqAllocsPerTrial()
	d.AllocsPerTrialNew = new.SeqAllocsPerTrial()
	if d.AllocsPerTrialOld > 0 {
		d.AllocRegressionPct = 100 * (d.AllocsPerTrialNew - d.AllocsPerTrialOld) / d.AllocsPerTrialOld
	}
	switch {
	case allocThresholdPct <= 0:
		if d.AllocsPerTrialOld > 0 && d.AllocsPerTrialNew > 0 {
			d.Notes = append(d.Notes, fmt.Sprintf(
				"allocs/trial: %.0f -> %.0f (%+.1f%%; no threshold configured, informational)",
				d.AllocsPerTrialOld, d.AllocsPerTrialNew, d.AllocRegressionPct))
		}
	case d.AllocsPerTrialOld == 0 || d.AllocsPerTrialNew == 0:
		d.Notes = append(d.Notes,
			"a record predates stage allocation attribution; allocation judgment skipped")
	default:
		d.AllocJudged = true
		if d.AllocRegressionPct > allocThresholdPct {
			d.Failed = true
			d.Notes = append(d.Notes, fmt.Sprintf(
				"allocs/trial regressed %.1f%% (%.0f -> %.0f), over the %.1f%% threshold",
				d.AllocRegressionPct, d.AllocsPerTrialOld, d.AllocsPerTrialNew, allocThresholdPct))
		} else {
			d.Notes = append(d.Notes, fmt.Sprintf(
				"allocs/trial: %.0f -> %.0f (%+.1f%%, threshold %.1f%%)",
				d.AllocsPerTrialOld, d.AllocsPerTrialNew, d.AllocRegressionPct, allocThresholdPct))
		}
		// Per-stage gate: a regression hidden inside one stage must not be
		// washed out by a win in another.
		oldStages, newStages := old.seqStageAllocsPerTrial(), new.seqStageAllocsPerTrial()
		names := make([]string, 0, len(oldStages))
		for stage := range oldStages {
			names = append(names, stage)
		}
		sort.Strings(names)
		for _, stage := range names {
			oldPer := oldStages[stage]
			newPer, ok := newStages[stage]
			if !ok {
				continue // stage gone or alloc-free now: an improvement
			}
			pct := 100 * (newPer - oldPer) / oldPer
			if pct > allocThresholdPct {
				d.Failed = true
				d.Notes = append(d.Notes, fmt.Sprintf(
					"stage %q allocs/trial regressed %.1f%% (%.0f -> %.0f), over the %.1f%% threshold",
					stage, pct, oldPer, newPer, allocThresholdPct))
			}
		}
	}
	diffFleet(d, old, new, thresholdPct, allocThresholdPct)
	return d
}

// diffFleet gates the fleet-scale cost curve row by row, keyed on the
// load level N. Wall time uses the same percentage threshold as the main
// sequential gate; allocations use the (tighter) allocation threshold.
// When either record lacks fleet rows — a baseline that predates the
// fleet topology — the judgment is skipped with a note, never failed.
func diffFleet(d *BenchDiff, old, new *BenchRecord, thresholdPct, allocThresholdPct float64) {
	switch {
	case len(old.FleetRows) == 0 && len(new.FleetRows) == 0:
		return
	case len(old.FleetRows) == 0:
		d.Notes = append(d.Notes,
			"baseline predates fleet-scale rows; fleet judgment skipped (commit this run's record to arm it)")
		return
	case len(new.FleetRows) == 0:
		d.Notes = append(d.Notes,
			"new record lacks fleet-scale rows; fleet judgment skipped")
		return
	}
	oldByN := make(map[int]FleetBenchRow, len(old.FleetRows))
	for _, r := range old.FleetRows {
		oldByN[r.N] = r
	}
	for _, nr := range new.FleetRows {
		or, ok := oldByN[nr.N]
		if !ok {
			d.Notes = append(d.Notes, fmt.Sprintf(
				"fleet N=%d: new load level (%.1f ms/trial, %.0f allocs/trial), no baseline to judge",
				nr.N, nr.MSPerTrial, nr.AllocsPerTrial))
			continue
		}
		d.FleetJudged = true
		if or.MSPerTrial > 0 {
			pct := 100 * (nr.MSPerTrial - or.MSPerTrial) / or.MSPerTrial
			if pct > thresholdPct {
				d.Failed = true
				d.Notes = append(d.Notes, fmt.Sprintf(
					"fleet N=%d ms/trial regressed %.1f%% (%.1f -> %.1f), over the %.1f%% threshold",
					nr.N, pct, or.MSPerTrial, nr.MSPerTrial, thresholdPct))
			} else {
				d.Notes = append(d.Notes, fmt.Sprintf(
					"fleet N=%d ms/trial: %.1f -> %.1f (%+.1f%%, threshold %.1f%%)",
					nr.N, or.MSPerTrial, nr.MSPerTrial, pct, thresholdPct))
			}
		}
		if allocThresholdPct > 0 && or.AllocsPerTrial > 0 && nr.AllocsPerTrial > 0 {
			pct := 100 * (nr.AllocsPerTrial - or.AllocsPerTrial) / or.AllocsPerTrial
			if pct > allocThresholdPct {
				d.Failed = true
				d.Notes = append(d.Notes, fmt.Sprintf(
					"fleet N=%d allocs/trial regressed %.1f%% (%.0f -> %.0f), over the %.1f%% threshold",
					nr.N, pct, or.AllocsPerTrial, nr.AllocsPerTrial, allocThresholdPct))
			}
		}
	}
}
