package perf

import (
	"path/filepath"
	"strings"
	"testing"
)

func benchRec(trials int, seqMS, parMS int64, cores int) *BenchRecord {
	return &BenchRecord{
		Benchmark: "full-attack sweep", Trials: trials, Workers: cores,
		Cores: cores, NumCPU: cores, GoMaxProcs: cores,
		SequentialMS: seqMS, ParallelMS: parMS,
		Speedup: float64(seqMS) / float64(parMS),
	}
}

func TestDiffBenchPassesWithinThreshold(t *testing.T) {
	old := benchRec(16, 560, 690, 1)
	cur := benchRec(16, 600, 700, 1)
	d := DiffBench(old, cur, 25, 0, 0)
	if d.Failed {
		t.Fatalf("7%% regression failed a 25%% gate: %+v", d)
	}
	if d.SeqRegressionPct < 6 || d.SeqRegressionPct > 8 {
		t.Fatalf("regression pct = %.2f, want ~7.1", d.SeqRegressionPct)
	}
}

func TestDiffBenchFailsOverThreshold(t *testing.T) {
	old := benchRec(16, 560, 690, 1)
	cur := benchRec(16, 900, 950, 1)
	d := DiffBench(old, cur, 25, 0, 0)
	if !d.Failed {
		t.Fatalf("60%% regression passed a 25%% gate: %+v", d)
	}
	if !strings.Contains(strings.Join(d.Notes, "\n"), "regressed") {
		t.Fatalf("failure note missing: %v", d.Notes)
	}
}

func TestDiffBenchNormalizesPerTrial(t *testing.T) {
	// Same per-trial cost at different trial counts must not register as a
	// regression.
	old := benchRec(16, 560, 690, 1)
	cur := benchRec(32, 1120, 1380, 1)
	d := DiffBench(old, cur, 5, 0, 0)
	if d.Failed || d.SeqRegressionPct != 0 {
		t.Fatalf("trial-count change misread as regression: %+v", d)
	}
}

func TestDiffBenchSkipsSpeedupOnSingleCore(t *testing.T) {
	old := benchRec(16, 560, 690, 1)
	cur := benchRec(16, 560, 700, 1) // 0.8x "speedup" on one core
	d := DiffBench(old, cur, 25, 1.0, 0)
	if d.Failed || d.SpeedupJudged {
		t.Fatalf("single-core speedup was judged: %+v", d)
	}
	if !strings.Contains(strings.Join(d.Notes, "\n"), "single-core") {
		t.Fatalf("skip note missing: %v", d.Notes)
	}
}

func TestDiffBenchJudgesSpeedupOnMultiCore(t *testing.T) {
	old := benchRec(16, 560, 690, 4)
	slow := benchRec(16, 560, 700, 4) // parallel slower on 4 cores
	d := DiffBench(old, slow, 25, 1.0, 0)
	if !d.SpeedupJudged || d.SpeedupOK || !d.Failed {
		t.Fatalf("multi-core sub-1x speedup passed a 1.0 floor: %+v", d)
	}
	fast := benchRec(16, 560, 200, 4)
	d = DiffBench(old, fast, 25, 1.0, 0)
	if !d.SpeedupJudged || !d.SpeedupOK || d.Failed {
		t.Fatalf("2.8x speedup failed a 1.0 floor: %+v", d)
	}
}

func TestDiffBenchLegacyBaselineWithoutNumCPU(t *testing.T) {
	// The committed pre-perf baseline has only "cores"; it must still diff.
	old := &BenchRecord{Benchmark: "full-attack sweep", Trials: 16, Workers: 1,
		Cores: 1, SequentialMS: 566, ParallelMS: 690, Speedup: 0.82}
	cur := benchRec(16, 570, 690, 1)
	d := DiffBench(old, cur, 25, 1.0, 0)
	if d.Failed || d.SpeedupJudged {
		t.Fatalf("legacy baseline mishandled: %+v", d)
	}
	if !old.SingleCore() {
		t.Fatal("legacy cores=1 not recognized as single-core")
	}
}

func TestBenchRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	rec := benchRec(16, 560, 690, 2)
	rec.Note = "test record"
	rec.SequentialStages = []BenchStage{{Stage: "run", TotalMS: 400, Pct: 71.4}}
	if err := rec.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SequentialMS != 560 || got.Note != "test record" ||
		len(got.SequentialStages) != 1 || got.SequentialStages[0].Stage != "run" {
		t.Fatalf("round trip mangled record: %+v", got)
	}
}

func TestReadBenchRecordRejectsBadTrials(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	rec := benchRec(16, 560, 690, 1)
	rec.Trials = 0
	// Write raw (WriteFile has no validation; the reader does).
	if err := rec.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBenchRecord(path); err == nil {
		t.Fatal("trials=0 record accepted")
	}
}

func benchRecAllocs(trials int, stageAllocs map[string]int64) *BenchRecord {
	rec := benchRec(trials, 560, 690, 1)
	for stage, n := range stageAllocs {
		rec.SequentialStages = append(rec.SequentialStages,
			BenchStage{Stage: stage, TotalMS: 100, AllocObjects: n})
	}
	return rec
}

func TestDiffBenchAllocGatePassesAndFails(t *testing.T) {
	old := benchRecAllocs(16, map[string]int64{"run": 1_000_000, "build": 100_000})
	same := benchRecAllocs(16, map[string]int64{"run": 1_020_000, "build": 100_000})
	d := DiffBench(old, same, 25, 0, 10)
	if !d.AllocJudged || d.Failed {
		t.Fatalf("2%% alloc growth failed a 10%% gate: %+v", d)
	}
	worse := benchRecAllocs(16, map[string]int64{"run": 1_500_000, "build": 100_000})
	d = DiffBench(old, worse, 25, 0, 10)
	if !d.AllocJudged || !d.Failed {
		t.Fatalf("50%% alloc regression passed a 10%% gate: %+v", d)
	}
	if !strings.Contains(strings.Join(d.Notes, "\n"), "allocs/trial regressed") {
		t.Fatalf("alloc failure note missing: %v", d.Notes)
	}
}

func TestDiffBenchAllocGateCatchesPerStageRegression(t *testing.T) {
	// A big win in one stage must not wash out a regression in another:
	// total allocs drop here, but "build" alone doubles.
	old := benchRecAllocs(16, map[string]int64{"run": 1_000_000, "build": 100_000})
	cur := benchRecAllocs(16, map[string]int64{"run": 400_000, "build": 200_000})
	d := DiffBench(old, cur, 25, 0, 10)
	if !d.Failed {
		t.Fatalf("doubled build-stage allocs passed a 10%% gate: %+v", d)
	}
	if !strings.Contains(strings.Join(d.Notes, "\n"), `stage "build"`) {
		t.Fatalf("per-stage failure note missing: %v", d.Notes)
	}
}

func TestDiffBenchAllocGateNormalizesPerTrial(t *testing.T) {
	old := benchRecAllocs(16, map[string]int64{"run": 1_000_000})
	cur := benchRecAllocs(32, map[string]int64{"run": 2_000_000})
	d := DiffBench(old, cur, 200, 0, 5)
	if d.Failed {
		t.Fatalf("trial-count change misread as alloc regression: %+v", d)
	}
}

func TestDiffBenchAllocGateSkipsLegacyBaseline(t *testing.T) {
	old := benchRec(16, 560, 690, 1) // no stage alloc data
	cur := benchRecAllocs(16, map[string]int64{"run": 1_000_000})
	d := DiffBench(old, cur, 25, 0, 10)
	if d.AllocJudged || d.Failed {
		t.Fatalf("legacy baseline was alloc-judged: %+v", d)
	}
	if !strings.Contains(strings.Join(d.Notes, "\n"), "allocation judgment skipped") {
		t.Fatalf("skip note missing: %v", d.Notes)
	}
}

func TestSeqAllocsPerTrialPrefersTopLevel(t *testing.T) {
	rec := benchRecAllocs(16, map[string]int64{"run": 1_600_000})
	if got := rec.SeqAllocsPerTrial(); got != 100_000 {
		t.Fatalf("stage-derived allocs/trial = %.0f, want 100000", got)
	}
	rec.AllocsPerTrial = 42
	if got := rec.SeqAllocsPerTrial(); got != 42 {
		t.Fatalf("top-level allocs/trial ignored: %.0f", got)
	}
}

// benchSink defeats dead-allocation elimination in TestBenchStagesHottestFirst.
var benchSink [][]byte

func TestBenchStagesHottestFirst(t *testing.T) {
	c := NewCollector()
	w := c.Worker()
	tok := w.BeginTrial()
	for i := 0; i < 2; i++ {
		sp := w.Start(StageBuild)
		sp.Stop()
	}
	sp := w.Start(StageRun)
	sink := make([][]byte, 0, 1000)
	for i := 0; i < 1000; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	benchSink = sink
	sp.Stop()
	w.EndTrial(tok)
	w.Close()
	stages := c.Report().BenchStages()
	if len(stages) == 0 {
		t.Fatal("no bench stages")
	}
	for i := 1; i < len(stages); i++ {
		if stages[i].TotalMS > stages[i-1].TotalMS {
			t.Fatalf("bench stages not hottest-first: %+v", stages)
		}
	}
	for _, s := range stages {
		if s.Stage == "run" && s.AllocObjects == 0 {
			t.Fatal("run stage shows zero allocs despite 1000 slices")
		}
	}
}

func TestDiffBenchFlagsSingleCoreBaselineUpgrade(t *testing.T) {
	// A single-core committed baseline diffed against a multi-core run
	// still gates (on the new record's own speedup), but nudges toward
	// committing the multi-core record as the new baseline.
	old := benchRec(16, 560, 690, 1)
	cur := benchRec(16, 560, 200, 4)
	d := DiffBench(old, cur, 25, 1.0, 0)
	if d.Failed || !d.SpeedupJudged || !d.SpeedupOK {
		t.Fatalf("multi-core run failed against single-core baseline: %+v", d)
	}
	notes := strings.Join(d.Notes, "\n")
	if !strings.Contains(notes, "baseline was recorded on a single-core box") {
		t.Fatalf("upgrade nudge missing: %v", d.Notes)
	}
	// Same-shape diffs stay quiet: multi-core baseline gets no nudge…
	d = DiffBench(benchRec(16, 560, 210, 4), cur, 25, 1.0, 0)
	if strings.Contains(strings.Join(d.Notes, "\n"), "single-core box") {
		t.Fatalf("nudge on a multi-core baseline: %v", d.Notes)
	}
	// …and neither does a single-core run against a single-core baseline.
	d = DiffBench(old, benchRec(16, 560, 690, 1), 25, 1.0, 0)
	if strings.Contains(strings.Join(d.Notes, "\n"), "consider committing") {
		t.Fatalf("nudge on a single-core run: %v", d.Notes)
	}
}

func fleetRows(scale float64) []FleetBenchRow {
	return []FleetBenchRow{
		{N: 1, Trials: 8, MSPerTrial: 30 * scale, AllocsPerTrial: 10000 * scale},
		{N: 10, Trials: 4, MSPerTrial: 90 * scale, AllocsPerTrial: 40000 * scale},
		{N: 100, Trials: 2, MSPerTrial: 400 * scale, AllocsPerTrial: 300000 * scale},
	}
}

func TestDiffBenchFleetGatePassesAndFails(t *testing.T) {
	old := benchRec(16, 560, 690, 1)
	old.FleetRows = fleetRows(1)
	cur := benchRec(16, 560, 690, 1)
	cur.FleetRows = fleetRows(1.1) // +10% across the curve
	d := DiffBench(old, cur, 25, 0, 25)
	if d.Failed || !d.FleetJudged {
		t.Fatalf("10%% fleet drift failed a 25%% gate: %+v", d)
	}
	cur.FleetRows = fleetRows(1.6) // +60%
	d = DiffBench(old, cur, 25, 0, 25)
	if !d.Failed {
		t.Fatalf("60%% fleet regression passed a 25%% gate: %+v", d)
	}
	if !strings.Contains(strings.Join(d.Notes, "\n"), "fleet N=") {
		t.Fatalf("fleet failure note missing: %v", d.Notes)
	}
}

func TestDiffBenchFleetGateCatchesAllocOnlyRegression(t *testing.T) {
	old := benchRec(16, 560, 690, 1)
	old.FleetRows = fleetRows(1)
	cur := benchRec(16, 560, 690, 1)
	cur.FleetRows = fleetRows(1)
	cur.FleetRows[2].AllocsPerTrial *= 2 // N=100 allocs double, wall time flat
	d := DiffBench(old, cur, 25, 0, 25)
	if !d.Failed {
		t.Fatalf("doubled fleet allocs passed the alloc gate: %+v", d)
	}
	if !strings.Contains(strings.Join(d.Notes, "\n"), "fleet N=100 allocs/trial regressed") {
		t.Fatalf("fleet alloc failure note missing: %v", d.Notes)
	}
}

func TestDiffBenchFleetGateSkipsLegacyBaseline(t *testing.T) {
	// A baseline that predates the fleet topology must not fail the gate —
	// it skips with a nudge to commit the new record.
	old := benchRec(16, 560, 690, 1)
	cur := benchRec(16, 560, 690, 1)
	cur.FleetRows = fleetRows(1)
	d := DiffBench(old, cur, 25, 0, 25)
	if d.Failed || d.FleetJudged {
		t.Fatalf("fleet gate judged against a legacy baseline: %+v", d)
	}
	if !strings.Contains(strings.Join(d.Notes, "\n"), "predates fleet-scale rows") {
		t.Fatalf("legacy skip note missing: %v", d.Notes)
	}
	// New load levels absent from the baseline report but don't judge.
	old.FleetRows = fleetRows(1)[:2]
	d = DiffBench(old, cur, 25, 0, 25)
	if d.Failed || !d.FleetJudged {
		t.Fatalf("partial baseline misjudged: %+v", d)
	}
	if !strings.Contains(strings.Join(d.Notes, "\n"), "no baseline to judge") {
		t.Fatalf("new-level note missing: %v", d.Notes)
	}
}
