package adversary

import (
	"time"

	"h2privacy/internal/capture"
	"h2privacy/internal/netsim"
	"h2privacy/internal/obs"
	"h2privacy/internal/simtime"
	"h2privacy/internal/trace"
)

// AttackPlan parameterizes the §V staged attack. DefaultPlan returns the
// paper's published values.
type AttackPlan struct {
	// Phase1Jitter is the per-GET spacing applied from the start (50 ms).
	Phase1Jitter time.Duration
	// Phase1RandomJitter is the accompanying netem-style random jitter
	// applied to both directions (the delay discipline is imprecise even
	// for packets it does not target). Default 0.8 ms.
	Phase1RandomJitter time.Duration
	// TriggerGET is the GET ordinal (1-based) that starts phase 2 — the
	// 6th GET corresponds to the quiz HTML.
	TriggerGET int
	// ThrottleBps is the bandwidth limit applied at the trigger (800 Mbps).
	ThrottleBps float64
	// DropRate is the server→client payload drop probability (0.8).
	DropRate float64
	// DropRetransmitRate applies to TCP-retransmitted payload packets
	// (§IV-D: "the adversary drops the packets carrying retransmitted
	// objects"), starving loss recovery so the client times out and
	// resets. Default 0.97.
	DropRetransmitRate float64
	// DropDuration is how long the drops last. The paper dropped for 6 s,
	// "until the client sends stream reset"; our client's patience makes
	// 5 s the equivalent: the reset lands just after the window closes,
	// so the re-requested object of interest transmits on a clean path.
	DropDuration time.Duration
	// Phase3Jitter is the per-GET spacing after the drop window (80 ms),
	// sized to serialize the eight emblem images.
	Phase3Jitter time.Duration
}

// DefaultPlan returns the paper's §V attack parameters.
func DefaultPlan() AttackPlan {
	return AttackPlan{
		Phase1Jitter: 50 * time.Millisecond,
		TriggerGET:   6,
		ThrottleBps:  800e6,
		DropRate:     0.8,
		DropDuration: 5 * time.Second,
		Phase3Jitter: 80 * time.Millisecond,
	}
}

func (p AttackPlan) withDefaults() AttackPlan {
	if p.Phase1RandomJitter == 0 {
		p.Phase1RandomJitter = 800 * time.Microsecond
	}
	if p.DropRetransmitRate == 0 {
		p.DropRetransmitRate = 0.97
	}
	return p
}

// Phase identifies the driver's progress.
type Phase int

// Attack phases.
const (
	PhaseIdle     Phase = iota + 1 // armed, jitter active, counting GETs
	PhaseDropping                  // trigger seen: throttled + dropping
	PhaseSpacing                   // post-reset: phase-3 jitter active
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseIdle:
		return "jitter+count"
	case PhaseDropping:
		return "throttle+drop"
	case PhaseSpacing:
		return "space-images"
	default:
		return "phase?"
	}
}

// Driver sequences the attack: phase 1 applies jitter and counts GETs at
// the monitor; on the trigger GET it throttles and starts targeted drops;
// when the drop window ends it switches to the phase-3 spacing that
// serializes the emblem images.
type Driver struct {
	sched      *simtime.Scheduler
	controller *Controller
	plan       AttackPlan
	phase      Phase
	// PhaseLog records (time, phase) transitions for the experiment logs.
	PhaseLog []PhaseChange

	// Live phase metrics (nil instruments when no registry is armed).
	mPhase       *obs.Gauge
	mTransitions *obs.CounterVec
}

// PhaseChange is one driver transition.
type PhaseChange struct {
	Time  time.Duration
	Phase Phase
}

// NewDriver arms the attack: it installs phase-1 jitter immediately and
// subscribes to the monitor's GET feed. The monitor must already be tapped
// into the same path.
func NewDriver(sched *simtime.Scheduler, controller *Controller, monitor *capture.Monitor, plan AttackPlan) *Driver {
	plan = plan.withDefaults()
	d := &Driver{sched: sched, controller: controller, plan: plan}
	d.transition(PhaseIdle)
	controller.SetRequestSpacing(plan.Phase1Jitter)
	controller.SetRandomJitter(netsim.ClientToServer, plan.Phase1RandomJitter)
	controller.SetRandomJitter(netsim.ServerToClient, plan.Phase1RandomJitter)
	monitor.OnGET(func(count int, ev capture.RecordEvent) {
		if d.phase == PhaseIdle && count >= plan.TriggerGET {
			d.onTrigger()
		}
	})
	return d
}

// Phase reports the current phase.
func (d *Driver) Phase() Phase { return d.phase }

// SetMetrics arms live phase metrics: a gauge holding the current phase
// number and a per-phase transition counter, updated at every transition.
// The driver transitions into PhaseIdle during construction, before a
// registry can be attached, so arming also stamps the current state.
func (d *Driver) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	d.mPhase = reg.Gauge("h2privacy_adversary_phase",
		"Current attack phase (1 jitter+count, 2 throttle+drop, 3 space-images).")
	d.mTransitions = reg.CounterVec("h2privacy_adversary_phase_transitions_total",
		"Attack phase transitions.", "phase")
	d.mPhase.Set(float64(d.phase))
	for _, pc := range d.PhaseLog {
		d.mTransitions.With(pc.Phase.String()).Inc()
	}
}

// PhaseSpan is one completed attack phase with its virtual-time duration.
type PhaseSpan struct {
	Phase    Phase
	Duration time.Duration
}

// PhaseSpans converts the transition log into per-phase durations; the
// final phase is closed at end (the trial's quiescence time). This feeds
// the per-trial phase-duration histograms.
func (d *Driver) PhaseSpans(end time.Duration) []PhaseSpan {
	spans := make([]PhaseSpan, 0, len(d.PhaseLog))
	for i, pc := range d.PhaseLog {
		until := end
		if i+1 < len(d.PhaseLog) {
			until = d.PhaseLog[i+1].Time
		}
		if until < pc.Time {
			until = pc.Time
		}
		spans = append(spans, PhaseSpan{Phase: pc.Phase, Duration: until - pc.Time})
	}
	return spans
}

func (d *Driver) transition(p Phase) {
	d.phase = p
	d.PhaseLog = append(d.PhaseLog, PhaseChange{Time: d.sched.Now(), Phase: p})
	d.mPhase.Set(float64(p))
	d.mTransitions.With(p.String()).Inc()
	if tr := d.controller.Tracer(); tr.Enabled() {
		tr.Emit(trace.LayerAdversary, "phase", trace.Str("to", p.String()))
	}
}

// onTrigger fires when the monitor has counted the trigger GET: throttle
// to the §IV-C sweet spot and black-hole server data until the client
// resets (§IV-D), then move to the image-spacing phase.
func (d *Driver) onTrigger() {
	d.transition(PhaseDropping)
	if d.plan.ThrottleBps > 0 {
		d.controller.Throttle(d.plan.ThrottleBps)
	}
	if d.plan.DropRate > 0 {
		d.controller.DropServerData(d.plan.DropRate, d.plan.DropRetransmitRate, d.plan.DropDuration)
	}
	d.sched.After(d.plan.DropDuration, func() {
		d.transition(PhaseSpacing)
		d.controller.SetRequestSpacing(d.plan.Phase3Jitter)
	})
}
