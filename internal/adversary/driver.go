package adversary

import (
	"fmt"
	"time"

	"h2privacy/internal/capture"
	"h2privacy/internal/netsim"
	"h2privacy/internal/obs"
	"h2privacy/internal/simtime"
	"h2privacy/internal/trace"
)

// AttackPlan parameterizes the §V staged attack. DefaultPlan returns the
// paper's published values.
type AttackPlan struct {
	// Phase1Jitter is the per-GET spacing applied from the start (50 ms).
	Phase1Jitter time.Duration
	// Phase1RandomJitter is the accompanying netem-style random jitter
	// applied to both directions (the delay discipline is imprecise even
	// for packets it does not target). Default 0.8 ms.
	Phase1RandomJitter time.Duration
	// TriggerGET is the GET ordinal (1-based) that starts phase 2 — the
	// 6th GET corresponds to the quiz HTML.
	TriggerGET int
	// ThrottleBps is the bandwidth limit applied at the trigger (800 Mbps).
	ThrottleBps float64
	// DropRate is the server→client payload drop probability (0.8).
	DropRate float64
	// DropRetransmitRate applies to TCP-retransmitted payload packets
	// (§IV-D: "the adversary drops the packets carrying retransmitted
	// objects"), starving loss recovery so the client times out and
	// resets. Default 0.97.
	DropRetransmitRate float64
	// DropDuration is how long the drops last. The paper dropped for 6 s,
	// "until the client sends stream reset"; our client's patience makes
	// 5 s the equivalent: the reset lands just after the window closes,
	// so the re-requested object of interest transmits on a clean path.
	DropDuration time.Duration
	// Phase3Jitter is the per-GET spacing after the drop window (80 ms),
	// sized to serialize the eight emblem images.
	Phase3Jitter time.Duration

	// Adaptive arms the closed-loop driver: a trigger watchdog that
	// aborts PhaseIdle when the trigger GET never appears, a clean-slate
	// watchdog that retries the drop window (bounded attempts, escalated
	// rate, backed-off duration) when no reset is observed, a middlebox
	// heartbeat that re-arms a wiped drop window, and early drop shutdown
	// the moment the reset is detected. The paper's published attack is
	// open-loop (Adaptive=false): it drops for a fixed window and hopes.
	Adaptive bool
	// TriggerDeadline is how long the adaptive driver waits in PhaseIdle
	// for the trigger GET before degrading to passive observation.
	// Default 20 s.
	TriggerDeadline time.Duration
	// RSTGrace is how long past a drop window's end the adaptive driver
	// waits for the client's reset before declaring the attempt failed.
	// Default 1 s.
	RSTGrace time.Duration
	// MaxDropAttempts bounds the drop windows the adaptive driver opens
	// (first try + retries). Default 3.
	MaxDropAttempts int
	// DropEscalation is added to DropRate/DropRetransmitRate per retry
	// (capped below 1 so retransmissions still trickle). It must bite
	// hard: any response byte that leaks through restarts the victim's
	// (now doubled) reset patience, so a mild escalation just extends the
	// starvation without ever forcing the second reset. Default 0.15.
	DropEscalation float64
	// RetryBackoff multiplies the drop window duration per retry. It must
	// outpace the victim's reset-timeout doubling (§IV-D): a browser that
	// already reset once waits 2× as long before resetting again, so a
	// retry window shorter than that just starves the connection without
	// forcing the reset. Default 2.6 (first retry 13s > the doubled 10s).
	RetryBackoff float64
}

// DefaultPlan returns the paper's §V attack parameters.
func DefaultPlan() AttackPlan {
	return AttackPlan{
		Phase1Jitter: 50 * time.Millisecond,
		TriggerGET:   6,
		ThrottleBps:  800e6,
		DropRate:     0.8,
		DropDuration: 5 * time.Second,
		Phase3Jitter: 80 * time.Millisecond,
	}
}

func (p AttackPlan) withDefaults() AttackPlan {
	if p.Phase1RandomJitter == 0 {
		p.Phase1RandomJitter = 800 * time.Microsecond
	}
	if p.DropRetransmitRate == 0 {
		p.DropRetransmitRate = 0.97
	}
	if p.TriggerDeadline == 0 {
		p.TriggerDeadline = 20 * time.Second
	}
	if p.RSTGrace == 0 {
		p.RSTGrace = time.Second
	}
	if p.MaxDropAttempts == 0 {
		p.MaxDropAttempts = 3
	}
	if p.DropEscalation == 0 {
		p.DropEscalation = 0.15
	}
	if p.RetryBackoff == 0 {
		p.RetryBackoff = 2.6
	}
	return p
}

// Validate rejects plans that would silently misbehave: negative jitters
// or durations, probabilities outside [0,1], a trigger ordinal below 1.
// It validates the plan as the driver will run it (defaults applied).
func (p AttackPlan) Validate() error {
	p = p.withDefaults()
	switch {
	case p.Phase1Jitter < 0:
		return fmt.Errorf("adversary: Phase1Jitter must be >= 0, got %v", p.Phase1Jitter)
	case p.Phase1RandomJitter < 0:
		return fmt.Errorf("adversary: Phase1RandomJitter must be >= 0, got %v", p.Phase1RandomJitter)
	case p.Phase3Jitter < 0:
		return fmt.Errorf("adversary: Phase3Jitter must be >= 0, got %v", p.Phase3Jitter)
	case p.TriggerGET < 1:
		return fmt.Errorf("adversary: TriggerGET must be >= 1, got %d", p.TriggerGET)
	case p.ThrottleBps < 0:
		return fmt.Errorf("adversary: ThrottleBps must be >= 0, got %v", p.ThrottleBps)
	case p.DropRate < 0 || p.DropRate > 1:
		return fmt.Errorf("adversary: DropRate must be in [0,1], got %v", p.DropRate)
	case p.DropRetransmitRate < 0 || p.DropRetransmitRate > 1:
		return fmt.Errorf("adversary: DropRetransmitRate must be in [0,1], got %v", p.DropRetransmitRate)
	case p.DropDuration < 0:
		return fmt.Errorf("adversary: DropDuration must be >= 0, got %v", p.DropDuration)
	case p.TriggerDeadline < 0 || p.RSTGrace < 0:
		return fmt.Errorf("adversary: watchdog deadlines must be >= 0")
	case p.MaxDropAttempts < 1:
		return fmt.Errorf("adversary: MaxDropAttempts must be >= 1, got %d", p.MaxDropAttempts)
	case p.DropEscalation < 0:
		return fmt.Errorf("adversary: DropEscalation must be >= 0, got %v", p.DropEscalation)
	case p.RetryBackoff < 1:
		return fmt.Errorf("adversary: RetryBackoff must be >= 1, got %v", p.RetryBackoff)
	}
	return nil
}

// Phase identifies the driver's progress.
type Phase int

// Attack phases.
const (
	PhaseIdle     Phase = iota + 1 // armed, jitter active, counting GETs
	PhaseDropping                  // trigger seen: throttled + dropping
	PhaseSpacing                   // post-reset: phase-3 jitter active
	PhaseDegraded                  // gave up: all knobs off, passive observation
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseIdle:
		return "jitter+count"
	case PhaseDropping:
		return "throttle+drop"
	case PhaseSpacing:
		return "space-images"
	case PhaseDegraded:
		return "passive"
	default:
		return "phase?"
	}
}

// phaseGaugeHelp is shared with core.PublishTrialMetrics — the registry
// requires a stable help string per metric name.
const phaseGaugeHelp = "Current attack phase (1 jitter+count, 2 throttle+drop, 3 space-images, 4 passive)."

// PhaseGaugeHelp exposes the phase gauge's help text for re-registration
// at publication time.
func PhaseGaugeHelp() string { return phaseGaugeHelp }

// Outcome classifies how an attack trial ended.
type Outcome int

// Trial outcomes.
const (
	OutcomePending         Outcome = iota // trial still running / never classified
	OutcomeCleanSlate                     // reset observed on the first drop window
	OutcomeRetryCleanSlate                // reset observed, but only after >= 1 retry
	OutcomeDegraded                       // gave up and observed passively
	OutcomeBroken                         // the connection itself died
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomePending:
		return "pending"
	case OutcomeCleanSlate:
		return "clean-slate"
	case OutcomeRetryCleanSlate:
		return "retry-clean-slate"
	case OutcomeDegraded:
		return "degraded"
	case OutcomeBroken:
		return "broken"
	default:
		return "outcome?"
	}
}

// Reset-detection rule constants. The monitor cannot decrypt, so a
// "reset" is inferred from client→server control records (small
// post-setup application records: WINDOW_UPDATE and RST_STREAM look
// identical on the wire). The signature has two parts, both needed:
//
//   - Shape: the browser resets every open stream in one synchronous
//     flush, so the reset is a run of >= controlBurstRun control records
//     essentially simultaneous (successive gaps <= controlBurstGap).
//     Flow-control chatter arrives in pairs and small clusters.
//
//   - Context: the reset happens while the client is starved — no
//     substantial server→client payload has been forwarded past the tap
//     for starvationQuiet. This kills the big false positive: when a
//     stalled transfer recovers (drop window wiped by a middlebox
//     restart, or simply expired), the client emits WINDOW_UPDATE floods
//     with runs far longer than a real reset's, but always amid heavy
//     server data.
//
// Taint splits the shape rule in two. Records carried (even partly) by
// retransmitted segments are reassembly catch-up: after a blackout the
// client's retransmitted backlog parses as one same-instant batch that
// mimics a flush. Fresh records count toward the ordinary
// controlBurstRun. A run that is entirely retransmission-borne is only
// believed at taintedBurstRun — sized well above any observed catch-up
// batch (~13 records after a 300ms blackout) but below a full flush
// (one RST per open stream, 40+) whose packets were lost and resent,
// which is how a reset looks when the path itself is bursty.
//
// The burst must land between the drop window opening and
// resetWindowSlack past its end; later control traffic cannot credibly
// be attributed to the starvation. The adaptive driver's retries move
// that window forward, which is half their value: a flush delayed past
// the open-loop acceptance window by loss recovery still converts a
// retrying driver.
const (
	controlBurstGap  = 2 * time.Millisecond
	controlBurstRun  = 6
	taintedBurstRun  = 24
	starvationQuiet  = 300 * time.Millisecond
	resetWindowSlack = 2 * time.Second
	heartbeatPeriod  = 500 * time.Millisecond
	maxDropRate      = 0.98
	maxDropRtxRate   = 0.99
)

// Driver sequences the attack: phase 1 applies jitter and counts GETs at
// the monitor; on the trigger GET it throttles and starts targeted drops;
// when the drop window ends it switches to the phase-3 spacing that
// serializes the emblem images. With plan.Adaptive it closes the loop:
// watchdogs retry, re-arm or degrade instead of hoping.
type Driver struct {
	sched      *simtime.Scheduler
	controller *Controller
	monitor    *capture.Monitor
	plan       AttackPlan
	phase      Phase
	// PhaseLog records (time, phase) transitions for the experiment logs.
	PhaseLog []PhaseChange

	outcome    Outcome
	attempts   int           // drop windows opened so far
	rearms     int           // heartbeat re-arms after a knob wipe
	dropStart  time.Duration // start of the current drop window
	dropWindow time.Duration // duration of the current drop window
	curRate    float64       // current attempt's drop rates (for re-arm)
	curRtx     float64
	curFenced  bool // current attempt drops only above the seq fence
	rstSeen    bool
	connBroken bool
	lastCtrlAt time.Duration
	haveCtrl   bool
	ctrlRun    int // current run of near-simultaneous control records
	freshRun   int // untainted records within the current run
	gen        int // invalidates scheduled watchdog/heartbeat callbacks

	// onRelease, when set, fires once when the driver stops interfering
	// for good (degrade) — the fleet adversary returns the flow's budget
	// slot there. Phase 3 still holds the slot: request spacing is live
	// interference until the trial ends.
	onRelease func()
	released  bool

	// Live phase metrics (nil instruments when no registry is armed).
	mPhase       *obs.Gauge
	mTransitions *obs.CounterVec
}

// PhaseChange is one driver transition.
type PhaseChange struct {
	Time  time.Duration
	Phase Phase
}

// NewDriver arms the attack: it installs phase-1 jitter immediately and
// subscribes to the monitor's GET, control-record and teardown feeds. The
// monitor must already be tapped into the same path. The plan is
// validated (defaults applied first); an invalid plan is an error, not
// silent misbehavior.
func NewDriver(sched *simtime.Scheduler, controller *Controller, monitor *capture.Monitor, plan AttackPlan) (*Driver, error) {
	plan = plan.withDefaults()
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	d := &Driver{sched: sched, controller: controller, monitor: monitor, plan: plan, outcome: OutcomePending}
	d.transition(PhaseIdle)
	controller.SetRequestSpacing(plan.Phase1Jitter)
	controller.SetRandomJitter(netsim.ClientToServer, plan.Phase1RandomJitter)
	controller.SetRandomJitter(netsim.ServerToClient, plan.Phase1RandomJitter)
	monitor.OnGET(func(count int, ev capture.RecordEvent) {
		if d.phase == PhaseIdle && count >= plan.TriggerGET {
			d.onTrigger()
		}
	})
	monitor.OnControl(d.onControl)
	monitor.OnTeardown(func(now time.Duration, dir netsim.Direction) { d.onTeardown() })
	if plan.Adaptive {
		// Trigger watchdog: without it, a trial whose trigger GET is lost
		// (blackout, burst loss) wedges in PhaseIdle forever.
		sched.After(plan.TriggerDeadline, func() {
			if d.phase == PhaseIdle {
				d.degrade("trigger-timeout")
			}
		})
	}
	return d, nil
}

// Phase reports the current phase.
func (d *Driver) Phase() Phase { return d.phase }

// SetOnRelease registers a hook fired exactly once when the driver goes
// terminally passive (degrade: trigger timeout, no reset after retries,
// or a broken connection). The fleet adversary releases the flow's
// interference-budget slot there.
func (d *Driver) SetOnRelease(fn func()) { d.onRelease = fn }

// Attempts reports how many drop windows the driver opened.
func (d *Driver) Attempts() int { return d.attempts }

// Rearms reports how many times the heartbeat re-armed a wiped window.
func (d *Driver) Rearms() int { return d.rearms }

// FinalOutcome classifies the trial at collection time. broken is the
// page-load verdict from the browser. A clean-slate already achieved
// stands even if the transport dies afterwards — the reset was observed
// and the re-request went out on a clean path; whether identification
// then succeeded is the classifier's column, not the driver's. Broken
// only claims trials where the attack never got its reset, and a trial
// that never saw one ends degraded — "still pending" is not a terminal
// state.
func (d *Driver) FinalOutcome(broken bool) Outcome {
	if d.outcome == OutcomeCleanSlate || d.outcome == OutcomeRetryCleanSlate {
		return d.outcome
	}
	if broken || d.connBroken {
		return OutcomeBroken
	}
	if d.outcome == OutcomePending {
		return OutcomeDegraded
	}
	return d.outcome
}

// SetMetrics arms live phase metrics: a gauge holding the current phase
// number and a per-phase transition counter, updated at every transition.
// The driver transitions into PhaseIdle during construction, before a
// registry can be attached, so arming also stamps the current state.
func (d *Driver) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	d.mPhase = reg.Gauge("h2privacy_adversary_phase", phaseGaugeHelp)
	d.mTransitions = reg.CounterVec("h2privacy_adversary_phase_transitions_total",
		"Attack phase transitions.", "phase")
	d.mPhase.Set(float64(d.phase))
	for _, pc := range d.PhaseLog {
		d.mTransitions.With(pc.Phase.String()).Inc()
	}
}

// PhaseSpan is one completed attack phase with its virtual-time duration.
type PhaseSpan struct {
	Phase    Phase
	Duration time.Duration
}

// PhaseSpans converts the transition log into per-phase durations; the
// final phase is closed at end (the trial's quiescence time). This feeds
// the per-trial phase-duration histograms. An empty PhaseLog yields an
// empty (non-nil) slice.
func (d *Driver) PhaseSpans(end time.Duration) []PhaseSpan {
	spans := make([]PhaseSpan, 0, len(d.PhaseLog))
	for i, pc := range d.PhaseLog {
		until := end
		if i+1 < len(d.PhaseLog) {
			until = d.PhaseLog[i+1].Time
		}
		if until < pc.Time {
			until = pc.Time
		}
		spans = append(spans, PhaseSpan{Phase: pc.Phase, Duration: until - pc.Time})
	}
	return spans
}

func (d *Driver) transition(p Phase) {
	d.phase = p
	d.PhaseLog = append(d.PhaseLog, PhaseChange{Time: d.sched.Now(), Phase: p})
	d.mPhase.Set(float64(p))
	d.mTransitions.With(p.String()).Inc()
	if tr := d.controller.Tracer(); tr.Enabled() {
		tr.Emit(trace.LayerAdversary, "phase", trace.Str("to", p.String()))
	}
}

// onTrigger fires when the monitor has counted the trigger GET: throttle
// to the §IV-C sweet spot and black-hole server data until the client
// resets (§IV-D), then move to the image-spacing phase.
func (d *Driver) onTrigger() {
	d.transition(PhaseDropping)
	if d.plan.ThrottleBps > 0 {
		d.controller.Throttle(d.plan.ThrottleBps)
	}
	if d.plan.DropRate > 0 {
		d.openDropWindow()
		return
	}
	// No drops planned: hold the phase for the window, then space images.
	d.sched.After(d.plan.DropDuration, d.enterSpacing)
}

// openDropWindow starts drop attempt attempts+1. Retries escalate the
// rates additively (capped so retransmissions still trickle — a total
// black hole stalls TCP instead of provoking the HTTP/2-level reset) and
// stretch the window by RetryBackoff, tracking a client whose reset
// patience doubles after every reset. Retries also fence the drops at the
// server's current send-high (DropNewServerData): after the first reset
// attempt the victim's old streams are already cancelled, so their
// retransmissions are let through to keep the transport alive while
// everything new — the re-requested object — starves.
func (d *Driver) openDropWindow() {
	d.attempts++
	n := d.attempts - 1
	rate := d.plan.DropRate + float64(n)*d.plan.DropEscalation
	if rate > maxDropRate {
		rate = maxDropRate
	}
	rtx := d.plan.DropRetransmitRate + float64(n)*d.plan.DropEscalation
	if rtx > maxDropRtxRate {
		rtx = maxDropRtxRate
	}
	window := d.plan.DropDuration
	for i := 0; i < n; i++ {
		window = time.Duration(float64(window) * d.plan.RetryBackoff)
	}
	d.dropStart = d.sched.Now()
	d.dropWindow = window
	d.curRate, d.curRtx = rate, rtx
	d.curFenced = n > 0
	if d.curFenced {
		d.controller.DropNewServerData(rate, rtx, window)
	} else {
		d.controller.DropServerData(rate, rtx, window)
	}
	if tr := d.controller.Tracer(); tr.Enabled() {
		tr.Emit(trace.LayerAdversary, "drop-attempt",
			trace.Num("attempt", int64(d.attempts)), trace.Dur("window", window))
	}
	if !d.plan.Adaptive {
		// Open-loop: the window runs its course, then phase 3 — hoping the
		// reset landed inside it.
		d.sched.After(window, d.enterSpacing)
		return
	}
	gen := d.gen
	d.heartbeat(gen)
	// Clean-slate watchdog: if the reset beats the deadline, onControl has
	// already advanced the phase and bumped gen; this callback then sees a
	// stale generation and does nothing.
	d.sched.After(window+d.plan.RSTGrace, func() {
		if d.gen != gen || d.phase != PhaseDropping {
			return
		}
		if d.attempts >= d.plan.MaxDropAttempts {
			d.degrade("no-reset")
			return
		}
		d.openDropWindow()
	})
}

// heartbeat polls the controller's knob state during a drop window: a
// middlebox restart wipes the drop window mid-attack, and without the
// re-arm the rest of the window silently does nothing.
func (d *Driver) heartbeat(gen int) {
	d.sched.After(heartbeatPeriod, func() {
		if d.gen != gen || d.phase != PhaseDropping {
			return
		}
		now := d.sched.Now()
		if now >= d.dropStart+d.dropWindow {
			return
		}
		if !d.controller.DropsActive() {
			d.rearms++
			if d.curFenced {
				d.controller.DropNewServerData(d.curRate, d.curRtx, d.dropStart+d.dropWindow-now)
			} else {
				d.controller.DropServerData(d.curRate, d.curRtx, d.dropStart+d.dropWindow-now)
			}
			if tr := d.controller.Tracer(); tr.Enabled() {
				tr.Emit(trace.LayerAdversary, "drop-rearm",
					trace.Dur("remaining", d.dropStart+d.dropWindow-now))
			}
		}
		d.heartbeat(gen)
	})
}

// onControl is the monitor's control-record feed: classify the client's
// clean-slate reset (see the detection-rule comment above). Valid in
// PhaseDropping (reset inside the window) and PhaseSpacing (open-loop:
// the reset usually lands just after the window closes).
func (d *Driver) onControl(count int, ev capture.RecordEvent) {
	if d.haveCtrl && ev.Time-d.lastCtrlAt <= controlBurstGap {
		d.ctrlRun++
	} else {
		d.ctrlRun = 1
		d.freshRun = 0
	}
	if !ev.Tainted {
		d.freshRun++
	}
	d.lastCtrlAt = ev.Time
	d.haveCtrl = true
	if d.rstSeen || d.attempts == 0 {
		return
	}
	if d.phase != PhaseDropping && d.phase != PhaseSpacing {
		return
	}
	if ev.Time < d.dropStart || ev.Time > d.dropStart+d.dropWindow+resetWindowSlack {
		return
	}
	if d.freshRun < controlBurstRun && d.ctrlRun < taintedBurstRun {
		return
	}
	if lastData, seen := d.monitor.LastServerDataAt(); seen && ev.Time-lastData < starvationQuiet {
		return // client not starved: flow-control flood, not a reset
	}
	d.rstSeen = true
	if d.attempts > 1 {
		d.outcome = OutcomeRetryCleanSlate
	} else {
		d.outcome = OutcomeCleanSlate
	}
	if tr := d.controller.Tracer(); tr.Enabled() {
		tr.Emit(trace.LayerAdversary, "reset-detected",
			trace.Num("attempt", int64(d.attempts)), trace.Dur("at", ev.Time))
	}
	if d.plan.Adaptive && d.phase == PhaseDropping {
		// Closed loop: stop starving the instant the reset is seen, so the
		// re-requested target transmits on a clean path immediately.
		d.enterSpacing()
	}
}

// enterSpacing moves to phase 3. Guarded: the adaptive early transition
// and the open-loop window timer can both want it.
func (d *Driver) enterSpacing() {
	if d.phase != PhaseDropping {
		return
	}
	d.gen++
	d.controller.StopDrops()
	d.transition(PhaseSpacing)
	d.controller.SetRequestSpacing(d.plan.Phase3Jitter)
}

// onTeardown fires when a TCP RST crosses the tap: the connection is
// dead. Nothing the middlebox does can help now, so degrade rather than
// keep dropping packets of a corpse.
func (d *Driver) onTeardown() {
	d.connBroken = true
	if d.phase != PhaseDegraded {
		d.degrade("connection-broken")
	}
}

// degrade turns every knob off and goes passive: the monitor keeps
// classifying, the trial keeps running, but the adversary stops
// interfering. This is the graceful-degradation terminal state — a trial
// never wedges with half an attack armed.
func (d *Driver) degrade(reason string) {
	d.gen++
	d.controller.StopDrops()
	d.controller.SetRequestSpacing(0)
	d.controller.SetRandomJitter(netsim.ClientToServer, 0)
	d.controller.SetRandomJitter(netsim.ServerToClient, 0)
	if tr := d.controller.Tracer(); tr.Enabled() {
		tr.Emit(trace.LayerAdversary, "degrade", trace.Str("reason", reason))
	}
	d.transition(PhaseDegraded)
	if d.onRelease != nil && !d.released {
		d.released = true
		d.onRelease()
	}
}
