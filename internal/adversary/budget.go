package adversary

import (
	"sort"

	"h2privacy/internal/check"
	"h2privacy/internal/flowseq"
)

// Budget is the fleet adversary's per-flow interference cap: a middlebox
// on an aggregation link can only jitter/throttle/drop K flows at once
// (per-flow qdisc and filter state is finite). Acquire claims a slot for
// one flow, Release returns it; Peak reports the high-water mark. Every
// transition mirrors into the armed checker's budget shadow, so a driver
// that over-acquires or double-releases is an invariant violation, not a
// silent drift. A nil Budget is the unconstrained (non-fleet) adversary:
// TryAcquire always grants, nothing is counted.
type Budget struct {
	cap  int
	held map[int]bool
	peak int
	ck   *check.Checker
}

// NewBudget builds a K-slot budget and arms the checker's budget shadow
// (nil checker disables the mirroring at zero cost).
func NewBudget(k int, ck *check.Checker) *Budget {
	if k < 0 {
		k = 0
	}
	ck.BudgetArm(k)
	return &Budget{cap: k, held: make(map[int]bool), ck: ck}
}

// Cap returns K.
func (b *Budget) Cap() int {
	if b == nil {
		return 0
	}
	return b.cap
}

// Held reports how many slots are currently claimed.
func (b *Budget) Held() int {
	if b == nil {
		return 0
	}
	return len(b.held)
}

// Peak reports the maximum concurrently-held slot count.
func (b *Budget) Peak() int {
	if b == nil {
		return 0
	}
	return b.peak
}

// TryAcquire claims a slot for flow; false when the budget is exhausted
// or the flow already holds one. Nil receiver always grants (no cap).
func (b *Budget) TryAcquire(flow int) bool {
	if b == nil {
		return true
	}
	if b.held[flow] || len(b.held) >= b.cap {
		return false
	}
	b.held[flow] = true
	if len(b.held) > b.peak {
		b.peak = len(b.held)
	}
	b.ck.BudgetAcquire(flow)
	return true
}

// Release returns flow's slot; a release without a matching acquire is a
// no-op here but a violation in the checker's shadow.
func (b *Budget) Release(flow int) {
	if b == nil {
		return
	}
	if b.held[flow] {
		delete(b.held, flow)
	}
	b.ck.BudgetRelease(flow)
}

// FlowScore is one flow's capture-visible selection score.
type FlowScore struct {
	Flow  int
	Score int
}

// SelectTargets ranks N flows by what a middlebox can actually see at its
// tap — each flow's flowseq Live() snapshot — and returns the flow
// indices of the top k, largest per-request response first. The score is
// the estimated payload of the largest server→client burst observed so
// far divided by the requests that produced it: the response-size
// signature the paper's attack fingerprints. Raw burst size alone is
// fooled by a slow volunteer (a decoy's whole small page merges into one
// burst bigger than the target's first response), but bytes-per-request
// is robust — the target site's 28 KB base page dwarfs any single decoy
// object, whatever the volunteer's pacing. Ties break on flow index,
// flows with no observed response score nothing and are never selected,
// and the ranking is a pure function of the analyzer snapshots — no RNG
// — so selection is deterministic at any worker count.
//
// minScore is the arming floor: flows scoring below it are not selected
// even when budget remains. A floor above the decoy ceiling (no decoy
// response exceeds ~6 KB) lets the caller rescan until the real target's
// big response shows up, instead of wasting budget slots on the noise
// visible at the first scan.
func SelectTargets(flows []*flowseq.Analyzer, k, minScore int) []int {
	if k <= 0 {
		return nil
	}
	scores := make([]FlowScore, 0, len(flows))
	for i, a := range flows {
		lf := a.Live()
		if lf.MaxBurstBody <= 0 {
			continue
		}
		gets := lf.GETs
		if gets < 1 {
			gets = 1
		}
		s := lf.MaxBurstBody / gets
		if s < minScore {
			continue
		}
		scores = append(scores, FlowScore{Flow: i, Score: s})
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].Score != scores[j].Score {
			return scores[i].Score > scores[j].Score
		}
		return scores[i].Flow < scores[j].Flow
	})
	if len(scores) > k {
		scores = scores[:k]
	}
	picked := make([]int, len(scores))
	for i, s := range scores {
		picked[i] = s.Flow
	}
	sort.Ints(picked)
	return picked
}
