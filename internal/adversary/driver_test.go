package adversary

import (
	"strings"
	"testing"
	"time"

	"h2privacy/internal/capture"
	"h2privacy/internal/netsim"
	"h2privacy/internal/simtime"
	"h2privacy/internal/tcpsim"
)

// newDriverHarness builds a driver over a connected path + monitor with
// the given plan and returns everything a test needs to poke it.
func newDriverHarness(t *testing.T, plan AttackPlan) (*simtime.Scheduler, *netsim.Path, *Controller, *Driver) {
	t.Helper()
	sched := simtime.NewScheduler()
	rng := simtime.NewRand(3)
	path, err := netsim.NewPath(sched, rng.Fork(), netsim.PathConfig{Link: netsim.LinkConfig{BandwidthBps: 1e9}})
	if err != nil {
		t.Fatal(err)
	}
	path.Connect(func(*netsim.Packet) {}, func(*netsim.Packet) {})
	mon := capture.NewMonitor()
	path.AddTap(mon)
	ctrl := NewController(sched, rng.Fork(), path)
	d, err := NewDriver(sched, ctrl, mon, plan)
	if err != nil {
		t.Fatal(err)
	}
	return sched, path, ctrl, d
}

// fireTrigger feeds the monitor a SYN plus enough GETs to pass the
// trigger (plan.TriggerGET must be 2).
func fireTrigger(path *netsim.Path) {
	seq := uint64(1001)
	syn := &tcpsim.Segment{Flags: tcpsim.FlagSYN, Seq: 1000}
	path.Send(netsim.ClientToServer, syn.WireSize(), syn)
	for i := 0; i < 4; i++ { // 2 setup records + 2 GETs
		seg := getSegment(seq)
		path.Send(netsim.ClientToServer, seg.WireSize(), seg)
		seq += uint64(len(seg.Payload))
	}
}

// burst feeds n control records into the driver directly, gap apart,
// starting at `at`.
func burst(d *Driver, at time.Duration, n int, gap time.Duration, tainted bool) {
	for i := 0; i < n; i++ {
		d.onControl(i, capture.RecordEvent{Time: at + time.Duration(i)*gap, Tainted: tainted})
	}
}

func TestAttackPlanValidate(t *testing.T) {
	cases := map[string]func(*AttackPlan){
		"negative Phase1Jitter":       func(p *AttackPlan) { p.Phase1Jitter = -time.Millisecond },
		"negative Phase1RandomJitter": func(p *AttackPlan) { p.Phase1RandomJitter = -time.Nanosecond },
		"negative Phase3Jitter":       func(p *AttackPlan) { p.Phase3Jitter = -time.Second },
		"zero TriggerGET":             func(p *AttackPlan) { p.TriggerGET = -1 },
		"negative ThrottleBps":        func(p *AttackPlan) { p.ThrottleBps = -1 },
		"DropRate above 1":            func(p *AttackPlan) { p.DropRate = 1.2 },
		"negative DropRate":           func(p *AttackPlan) { p.DropRate = -0.1 },
		"DropRetransmitRate above 1":  func(p *AttackPlan) { p.DropRetransmitRate = 2 },
		"negative DropDuration":       func(p *AttackPlan) { p.DropDuration = -time.Second },
		"negative TriggerDeadline":    func(p *AttackPlan) { p.TriggerDeadline = -time.Second },
		"negative RSTGrace":           func(p *AttackPlan) { p.RSTGrace = -time.Second },
		"negative MaxDropAttempts":    func(p *AttackPlan) { p.MaxDropAttempts = -2 },
		"negative DropEscalation":     func(p *AttackPlan) { p.DropEscalation = -0.1 },
		"RetryBackoff below 1":        func(p *AttackPlan) { p.RetryBackoff = 0.5 },
	}
	for name, corrupt := range cases {
		p := DefaultPlan()
		corrupt(&p)
		err := p.Validate()
		if err == nil {
			t.Fatalf("%s: Validate accepted the plan", name)
		}
		if !strings.HasPrefix(err.Error(), "adversary: ") {
			t.Fatalf("%s: error %q lacks adversary: prefix", name, err)
		}
	}
	if err := DefaultPlan().Validate(); err != nil {
		t.Fatalf("default plan invalid: %v", err)
	}
	// NewDriver surfaces the validation error instead of running broken.
	bad := DefaultPlan()
	bad.DropRate = 7
	sched := simtime.NewScheduler()
	rng := simtime.NewRand(1)
	path, err := netsim.NewPath(sched, rng.Fork(), netsim.PathConfig{Link: netsim.LinkConfig{BandwidthBps: 1e9}})
	if err != nil {
		t.Fatal(err)
	}
	path.Connect(func(*netsim.Packet) {}, func(*netsim.Packet) {})
	if _, err := NewDriver(sched, NewController(sched, rng.Fork(), path), capture.NewMonitor(), bad); err == nil {
		t.Fatal("NewDriver accepted an invalid plan")
	}
}

// TestTriggerNeverObservedDegrades: the adaptive trigger watchdog — a
// trial whose trigger GET never crosses the tap goes passive at
// TriggerDeadline instead of wedging in PhaseIdle.
func TestTriggerNeverObservedDegrades(t *testing.T) {
	plan := DefaultPlan()
	plan.Adaptive = true
	plan.TriggerDeadline = 3 * time.Second
	sched, _, ctrl, d := newDriverHarness(t, plan)
	sched.RunUntil(2 * time.Second)
	if d.Phase() != PhaseIdle {
		t.Fatalf("phase before deadline = %v", d.Phase())
	}
	sched.RunUntil(4 * time.Second)
	if d.Phase() != PhaseDegraded {
		t.Fatalf("phase after deadline = %v, want degraded", d.Phase())
	}
	if d.Attempts() != 0 {
		t.Fatalf("attempts = %d without a trigger", d.Attempts())
	}
	if ctrl.DropsActive() {
		t.Fatal("degraded driver left a drop window open")
	}
	if got := d.FinalOutcome(false); got != OutcomeDegraded {
		t.Fatalf("FinalOutcome = %v, want degraded", got)
	}
	// The open-loop driver has no such watchdog: it waits forever.
	sched2, _, _, d2 := newDriverHarness(t, DefaultPlan())
	sched2.RunUntil(25 * time.Second)
	if d2.Phase() != PhaseIdle {
		t.Fatalf("open-loop phase = %v, want idle forever", d2.Phase())
	}
}

// TestAdaptiveWindowExpiresWithoutDrops: a drop window that runs its whole
// course without a single reset (here: without even a dropped packet —
// nothing flows) retries with escalation, and after MaxDropAttempts the
// driver degrades rather than retrying forever.
func TestAdaptiveWindowExpiresWithoutDrops(t *testing.T) {
	plan := DefaultPlan()
	plan.Adaptive = true
	plan.TriggerGET = 2
	plan.DropDuration = time.Second
	plan.MaxDropAttempts = 2
	plan.RetryBackoff = 2
	sched, path, ctrl, d := newDriverHarness(t, plan)
	fireTrigger(path)
	sched.RunUntil(200 * time.Millisecond)
	if d.Phase() != PhaseDropping || d.Attempts() != 1 {
		t.Fatalf("after trigger: phase %v, attempts %d", d.Phase(), d.Attempts())
	}
	// Window 1 (1s) + grace (1s) expire with no reset: attempt 2 opens,
	// escalated and fenced.
	sched.RunUntil(2500 * time.Millisecond)
	if d.Attempts() != 2 {
		t.Fatalf("attempts after window 1 = %d, want 2", d.Attempts())
	}
	if !d.curFenced {
		t.Fatal("retry window not seq-fenced")
	}
	if ctrl.dropRate <= plan.DropRate {
		t.Fatalf("retry did not escalate: rate %v", ctrl.dropRate)
	}
	// Window 2 (2s) + grace expire too: out of attempts, degrade.
	sched.RunUntil(6 * time.Second)
	if d.Phase() != PhaseDegraded {
		t.Fatalf("phase after final window = %v, want degraded", d.Phase())
	}
	if got := d.FinalOutcome(false); got != OutcomeDegraded {
		t.Fatalf("FinalOutcome = %v", got)
	}
}

// TestCleanSlateDetection: a ≥6-record fresh control burst during the
// first drop window, with the client starved, classifies as clean-slate;
// the adaptive driver stops the drops immediately and moves to spacing.
func TestCleanSlateDetection(t *testing.T) {
	plan := DefaultPlan()
	plan.Adaptive = true
	plan.TriggerGET = 2
	plan.DropDuration = 5 * time.Second
	sched, path, ctrl, d := newDriverHarness(t, plan)
	fireTrigger(path)
	sched.RunUntil(200 * time.Millisecond)
	if d.Phase() != PhaseDropping {
		t.Fatalf("phase = %v", d.Phase())
	}
	at := d.dropStart + 2*time.Second
	burst(d, at, 5, time.Millisecond, false)
	if d.outcome != OutcomePending {
		t.Fatalf("5-record burst already classified: %v", d.outcome)
	}
	burst(d, at+6*time.Millisecond, 1, 0, false) // 6th record completes the run
	if d.outcome != OutcomeCleanSlate {
		t.Fatalf("outcome = %v, want clean-slate", d.outcome)
	}
	if d.Phase() != PhaseSpacing {
		t.Fatalf("adaptive driver did not enter spacing: %v", d.Phase())
	}
	if ctrl.DropsActive() {
		t.Fatal("drops still active after detected reset")
	}
	if got := d.FinalOutcome(false); got != OutcomeCleanSlate {
		t.Fatalf("FinalOutcome = %v", got)
	}
	// A clean slate survives a later connection break (the reset was
	// observed; the re-request already went out on a clean path).
	if got := d.FinalOutcome(true); got != OutcomeCleanSlate {
		t.Fatalf("FinalOutcome(broken) = %v, want clean-slate", got)
	}
}

// TestRetryCleanSlate: a reset detected during the second window is the
// retry-clean-slate outcome.
func TestRetryCleanSlate(t *testing.T) {
	plan := DefaultPlan()
	plan.Adaptive = true
	plan.TriggerGET = 2
	plan.DropDuration = time.Second
	plan.RetryBackoff = 2
	sched, path, _, d := newDriverHarness(t, plan)
	fireTrigger(path)
	sched.RunUntil(2500 * time.Millisecond) // window 1 + grace gone
	if d.Attempts() != 2 || d.Phase() != PhaseDropping {
		t.Fatalf("attempts %d phase %v", d.Attempts(), d.Phase())
	}
	burst(d, d.dropStart+500*time.Millisecond, 6, time.Millisecond, false)
	if d.outcome != OutcomeRetryCleanSlate {
		t.Fatalf("outcome = %v, want retry-clean-slate", d.outcome)
	}
}

// TestTaintedBurstThreshold: a control run carried entirely by
// retransmitted bytes (reassembly catch-up after a blackout) needs the
// higher taintedBurstRun to be believed.
func TestTaintedBurstThreshold(t *testing.T) {
	plan := DefaultPlan()
	plan.Adaptive = true
	plan.TriggerGET = 2
	plan.DropDuration = 5 * time.Second
	sched, path, _, d := newDriverHarness(t, plan)
	fireTrigger(path)
	sched.RunUntil(200 * time.Millisecond)
	at := d.dropStart + time.Second
	burst(d, at, taintedBurstRun-1, 0, true)
	if d.outcome != OutcomePending {
		t.Fatalf("catch-up-sized tainted burst classified as reset: %v", d.outcome)
	}
	burst(d, at+time.Millisecond, 1, 0, true)
	if d.outcome != OutcomeCleanSlate {
		t.Fatalf("flush-sized tainted burst not classified: %v", d.outcome)
	}
}

// TestBurstOutsideWindowIgnored: the same flush-shaped burst before the
// drop window opens, or long after it closed, is not attributed to the
// starvation.
func TestBurstOutsideWindowIgnored(t *testing.T) {
	plan := DefaultPlan()
	plan.Adaptive = true
	plan.TriggerGET = 2
	plan.DropDuration = time.Second
	sched, path, _, d := newDriverHarness(t, plan)
	fireTrigger(path)
	sched.RunUntil(200 * time.Millisecond)
	burst(d, d.dropStart-50*time.Millisecond, 8, 0, false)
	if d.outcome != OutcomePending {
		t.Fatalf("pre-window burst accepted: %v", d.outcome)
	}
	burst(d, d.dropStart+d.dropWindow+resetWindowSlack+time.Second, 8, 0, false)
	if d.outcome != OutcomePending {
		t.Fatalf("stale burst accepted: %v", d.outcome)
	}
}

// TestPhaseSpans covers the empty-log edge and the usual closure at trial
// end.
func TestPhaseSpans(t *testing.T) {
	var d Driver // no transitions ever logged
	spans := d.PhaseSpans(5 * time.Second)
	if spans == nil || len(spans) != 0 {
		t.Fatalf("empty PhaseLog → spans %v, want empty non-nil", spans)
	}
	d.PhaseLog = []PhaseChange{
		{Time: 0, Phase: PhaseIdle},
		{Time: 2 * time.Second, Phase: PhaseDropping},
	}
	spans = d.PhaseSpans(3 * time.Second)
	if len(spans) != 2 || spans[0].Duration != 2*time.Second || spans[1].Duration != time.Second {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestFinalOutcomeClassification(t *testing.T) {
	cases := []struct {
		name       string
		outcome    Outcome
		connBroken bool
		broken     bool
		want       Outcome
	}{
		{"pending quiesce", OutcomePending, false, false, OutcomeDegraded},
		{"pending broken page", OutcomePending, false, true, OutcomeBroken},
		{"pending broken conn", OutcomePending, true, false, OutcomeBroken},
		{"degraded stays", OutcomeDegraded, false, false, OutcomeDegraded},
		{"degraded then broken", OutcomeDegraded, false, true, OutcomeBroken},
		{"clean beats broken", OutcomeCleanSlate, true, true, OutcomeCleanSlate},
		{"retry-clean beats broken", OutcomeRetryCleanSlate, true, true, OutcomeRetryCleanSlate},
	}
	for _, tc := range cases {
		d := Driver{outcome: tc.outcome, connBroken: tc.connBroken}
		if got := d.FinalOutcome(tc.broken); got != tc.want {
			t.Fatalf("%s: FinalOutcome = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestDropSeqFence: DropNewServerData exempts everything at or below the
// fence (retransmissions of already-reset streams) while new bytes above
// it are dropped.
func TestDropSeqFence(t *testing.T) {
	sched, path, ctrl, got := testPath(t)
	// Observe the server's send-high: 1000 bytes ending at seq 2000.
	old := &tcpsim.Segment{Flags: tcpsim.FlagACK, Seq: 1000, Payload: make([]byte, 1000)}
	path.Send(netsim.ServerToClient, old.WireSize(), old)
	sched.Run()
	ctrl.DropNewServerData(1.0, 1.0, time.Second)
	rtx := &tcpsim.Segment{Flags: tcpsim.FlagACK, Seq: 1000, Payload: make([]byte, 1000), Retransmit: true}
	fresh := &tcpsim.Segment{Flags: tcpsim.FlagACK, Seq: 2000, Payload: make([]byte, 1000)}
	path.Send(netsim.ServerToClient, rtx.WireSize(), rtx)
	path.Send(netsim.ServerToClient, fresh.WireSize(), fresh)
	sched.Run()
	if len(*got) != 2 { // the original + the below-fence retransmission
		t.Fatalf("delivered %d packets, want 2 (fence must pass the rtx, drop the fresh)", len(*got))
	}
	for _, del := range (*got)[1:] {
		if seg := del.pkt.Payload.(*tcpsim.Segment); !seg.Retransmit {
			t.Fatal("above-fence fresh data was delivered")
		}
	}
	// StopDrops clears the fence too: everything flows again.
	ctrl.StopDrops()
	if ctrl.dropSeqFence != 0 || ctrl.DropsActive() {
		t.Fatalf("StopDrops left state: fence=%d active=%v", ctrl.dropSeqFence, ctrl.DropsActive())
	}
}

// TestHeartbeatRearmsAfterWipe: a middlebox restart mid-window wipes the
// drop state; the adaptive heartbeat notices within heartbeatPeriod and
// re-arms for the window's remainder.
func TestHeartbeatRearmsAfterWipe(t *testing.T) {
	plan := DefaultPlan()
	plan.Adaptive = true
	plan.TriggerGET = 2
	plan.DropDuration = 4 * time.Second
	sched, path, ctrl, d := newDriverHarness(t, plan)
	fireTrigger(path)
	sched.RunUntil(200 * time.Millisecond)
	if !ctrl.DropsActive() {
		t.Fatal("drop window not open after trigger")
	}
	wipeAt := sched.Now() + time.Second
	sched.At(wipeAt, func() { ctrl.WipeKnobs() })
	sched.RunUntil(wipeAt + 10*time.Millisecond)
	if ctrl.DropsActive() {
		t.Fatal("wipe did not close the window")
	}
	sched.RunUntil(wipeAt + 2*heartbeatPeriod)
	if !ctrl.DropsActive() {
		t.Fatal("heartbeat did not re-arm the wiped window")
	}
	if d.Rearms() != 1 {
		t.Fatalf("rearms = %d, want 1", d.Rearms())
	}
	// The open-loop driver never re-arms: same wipe, window stays closed.
	plan2 := DefaultPlan()
	plan2.TriggerGET = 2
	plan2.DropDuration = 4 * time.Second
	sched2, path2, ctrl2, d2 := newDriverHarness(t, plan2)
	fireTrigger(path2)
	sched2.RunUntil(200 * time.Millisecond)
	wipe2 := sched2.Now() + time.Second
	sched2.At(wipe2, func() { ctrl2.WipeKnobs() })
	sched2.RunUntil(wipe2 + 3*heartbeatPeriod)
	if ctrl2.DropsActive() || d2.Rearms() != 0 {
		t.Fatalf("open-loop re-armed: active=%v rearms=%d", ctrl2.DropsActive(), d2.Rearms())
	}
}

func TestOutcomeStrings(t *testing.T) {
	want := map[Outcome]string{
		OutcomePending:         "pending",
		OutcomeCleanSlate:      "clean-slate",
		OutcomeRetryCleanSlate: "retry-clean-slate",
		OutcomeDegraded:        "degraded",
		OutcomeBroken:          "broken",
		Outcome(99):            "outcome?",
	}
	for o, s := range want {
		if o.String() != s {
			t.Fatalf("Outcome(%d).String() = %q, want %q", o, o.String(), s)
		}
	}
	if PhaseDegraded.String() != "passive" {
		t.Fatalf("PhaseDegraded = %q", PhaseDegraded.String())
	}
}
