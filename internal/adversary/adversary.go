// Package adversary implements the paper's network adversary: the
// controller that turns the compromised gateway's knobs (targeted per-GET
// jitter, random per-packet jitter, bandwidth throttling, targeted packet
// drops — §IV), and the staged attack driver that sequences them against
// the survey site exactly as §V describes.
package adversary

import (
	"time"

	"h2privacy/internal/capture"
	"h2privacy/internal/netsim"
	"h2privacy/internal/obs"
	"h2privacy/internal/simtime"
	"h2privacy/internal/tcpsim"
	"h2privacy/internal/trace"
)

// Controller owns the middlebox knobs. Install its Processor on both
// directions of the path (netsim.Path.AddProcessor); then flip knobs at
// any virtual time.
type Controller struct {
	sched *simtime.Scheduler
	rng   *simtime.Rand
	path  *netsim.Path

	// Targeted per-GET spacing (§IV-B): the k-th GET since the knob was
	// set is delayed by k·d — the paper's "first request delayed by 0 ms,
	// second by d, third by 2d" schedule, which adds d to every
	// inter-arrival gap. The cumulative growth over a long page is
	// authentic: it is why the paper's connections broke under large
	// jitter and why accuracy decays for late objects (Table II).
	requestSpacing time.Duration
	getIndex       int
	lastGETExtra   time.Duration
	classifier     capture.GETClassifier

	// Random per-packet jitter, netem-style, per direction.
	randJitter map[netsim.Direction]time.Duration

	// Targeted drops (§IV-D): server→client payload packets are dropped
	// with dropRate probability until dropUntil; TCP-retransmitted
	// payload packets are dropped at dropRetransmitRate ("the adversary
	// drops the packets carrying retransmitted objects"), which starves
	// the loss-recovery trickle so the client must reset.
	dropRate           float64
	dropRetransmitRate float64
	dropUntil          time.Duration
	// dropSeqFence, when non-zero, exempts server→client payload entirely
	// below this sequence number from the drops (see DropNewServerData).
	// maxS2CSeq tracks the server's send-high as observed in-line, so a
	// fence can be planted at "everything sent so far".
	dropSeqFence uint64
	maxS2CSeq    uint64

	stats ControllerStats

	tr         *trace.Tracer
	ctDrops    *trace.Counter
	ctDelayed  *trace.Counter
	ctJittered *trace.Counter

	// First-class metrics (nil when no registry is armed; every method on
	// a nil instrument is a free no-op).
	mDrops    *obs.Counter
	mDelayed  *obs.Counter
	mJittered *obs.Counter
	mThrottle *obs.Counter
}

// ControllerStats counts the controller's interventions.
type ControllerStats struct {
	DelayedGETs    int
	TotalGETDelay  time.Duration
	JitteredPkts   int
	DroppedPkts    int
	ThrottleEvents int
}

// NewController builds a controller for the given path.
func NewController(sched *simtime.Scheduler, rng *simtime.Rand, path *netsim.Path) *Controller {
	c := &Controller{
		sched:      sched,
		rng:        rng,
		path:       path,
		randJitter: make(map[netsim.Direction]time.Duration),
	}
	path.AddProcessor(c)
	return c
}

var _ netsim.Processor = (*Controller)(nil)

// Stats returns a copy of the intervention counters.
func (c *Controller) Stats() ControllerStats { return c.stats }

// SetTracer arms adversary-layer tracing: knob changes, per-GET delays and
// drop decisions are emitted as events.
func (c *Controller) SetTracer(tr *trace.Tracer) {
	c.tr = tr
	c.ctDrops = tr.Counter(trace.LayerAdversary, "dropped")
	c.ctDelayed = tr.Counter(trace.LayerAdversary, "delayed-gets")
	c.ctJittered = tr.Counter(trace.LayerAdversary, "jittered")
}

// Tracer returns the armed tracer (nil when tracing is off); the attack
// driver emits its phase transitions through it.
func (c *Controller) Tracer() *trace.Tracer { return c.tr }

// SetMetrics arms first-class adversary metrics: every intervention the
// controller makes (drops, delayed GETs, jittered packets, throttle
// changes) increments a registry counter as it happens, so a live
// /metrics scrape shows the attack's footprint mid-trial. A nil registry
// leaves the nil no-op instruments in place.
func (c *Controller) SetMetrics(reg *obs.Registry) {
	c.mDrops = reg.Counter("h2privacy_adversary_drops_total",
		"Packets dropped by the adversary's targeted-drop window.")
	c.mDelayed = reg.Counter("h2privacy_adversary_delayed_gets_total",
		"GET requests delayed by the per-request jitter schedule.")
	c.mJittered = reg.Counter("h2privacy_adversary_jittered_packets_total",
		"Packets given netem-style random jitter.")
	c.mThrottle = reg.Counter("h2privacy_adversary_throttle_events_total",
		"Bandwidth-limit changes applied to the path.")
}

// SetRequestSpacing sets the targeted jitter d (§IV-B). Setting it resets
// the request counter (the attack driver restarts the schedule per phase);
// zero disables.
func (c *Controller) SetRequestSpacing(d time.Duration) {
	c.requestSpacing = d
	c.getIndex = 0
	c.lastGETExtra = 0
}

// SetRandomJitter applies netem-style uniform per-packet delay in [0, max)
// to the given direction (the side-effect-laden part of the jitter knob).
func (c *Controller) SetRandomJitter(dir netsim.Direction, max time.Duration) {
	c.randJitter[dir] = max
}

// Throttle limits both directions' bandwidth (§IV-C).
func (c *Controller) Throttle(bps float64) {
	c.stats.ThrottleEvents++
	c.mThrottle.Inc()
	if c.tr.Enabled() {
		c.tr.Emit(trace.LayerAdversary, "throttle", trace.Num("bps", int64(bps)))
	}
	c.path.SetBandwidth(bps)
}

// DropServerData drops server→client payload packets with probability
// rate — and retransmitted ones with probability retransmitRate — for the
// given duration (§IV-D's targeted drops).
func (c *Controller) DropServerData(rate, retransmitRate float64, duration time.Duration) {
	c.dropRate = rate
	c.dropRetransmitRate = retransmitRate
	c.dropSeqFence = 0
	c.dropUntil = c.sched.Now() + duration
	if c.tr.Enabled() {
		c.tr.Emit(trace.LayerAdversary, "drop-window",
			trace.Num("rate_pct", int64(rate*100)), trace.Num("rtx_rate_pct", int64(retransmitRate*100)),
			trace.Dur("duration", duration))
	}
}

// DropNewServerData opens a drop window fenced at the server's current
// send-high: only payload bytes beyond every sequence number observed so
// far are subject to the drops; anything below the fence — retransmissions
// of data the victim's client already reset away — passes untouched. The
// fence is what makes a second starvation window survivable: the victim's
// transport keeps making acknowledgement progress on the old bytes (no
// consecutive-RTO abort) while the re-requested object, whose bytes are
// all new, starves until the client resets again. A plain second
// DropServerData window cannot do this: the victim's doubled reset
// patience outlasts its own transport's retransmission-abort budget.
func (c *Controller) DropNewServerData(rate, retransmitRate float64, duration time.Duration) {
	c.dropRate = rate
	c.dropRetransmitRate = retransmitRate
	c.dropSeqFence = c.maxS2CSeq
	c.dropUntil = c.sched.Now() + duration
	if c.tr.Enabled() {
		c.tr.Emit(trace.LayerAdversary, "drop-window",
			trace.Num("rate_pct", int64(rate*100)), trace.Num("rtx_rate_pct", int64(retransmitRate*100)),
			trace.Dur("duration", duration), trace.Num("fence", int64(c.dropSeqFence)))
	}
}

// StopDrops closes any open drop window immediately (the adaptive driver
// stops dropping the moment the clean-slate reset is detected).
func (c *Controller) StopDrops() {
	c.dropRate = 0
	c.dropRetransmitRate = 0
	c.dropSeqFence = 0
	c.dropUntil = 0
}

// DropsActive reports whether a drop window is currently open.
func (c *Controller) DropsActive() bool {
	return (c.dropRate > 0 || c.dropRetransmitRate > 0) && c.sched.Now() < c.dropUntil
}

// WipeKnobs implements netsim.KnobWiper: a middlebox restart loses all
// volatile knob state — jitter schedules, throttles stay (they are qdisc
// config reapplied at boot is not modeled; the paper's tc settings live in
// the kernel and do not survive either), and the drop window closes. The
// GET classifier's stream position is NOT wiped: the passive monitor is a
// separate capture box in the §V setup and keeps its position, and the
// controller's in-line classifier models state mirrored from it.
func (c *Controller) WipeKnobs() {
	c.requestSpacing = 0
	c.getIndex = 0
	c.lastGETExtra = 0
	c.maxS2CSeq = 0
	c.randJitter = make(map[netsim.Direction]time.Duration)
	c.StopDrops()
	if c.tr.Enabled() {
		c.tr.Emit(trace.LayerAdversary, "knobs-wiped")
	}
}

// Process implements netsim.Processor.
func (c *Controller) Process(now time.Duration, pkt *netsim.Packet) netsim.Verdict {
	seg, ok := pkt.Payload.(*tcpsim.Segment)
	if !ok {
		return netsim.Verdict{}
	}
	var v netsim.Verdict
	switch pkt.Dir {
	case netsim.ClientToServer:
		if c.requestSpacing > 0 && len(seg.Payload) > 0 {
			if seg.Retransmit {
				// netem's delay discipline applies to retransmissions
				// too: a TCP-retransmitted GET must not overtake its
				// delayed original, or the spacing collapses. It gets
				// the same hold as the most recent original.
				v.ExtraDelay += c.lastGETExtra
				c.stats.TotalGETDelay += c.lastGETExtra
			} else if n := c.classifier.Count(seg.Payload); n > 0 {
				c.getIndex += n
				extra := time.Duration(c.getIndex) * c.requestSpacing
				c.lastGETExtra = extra
				v.ExtraDelay += extra
				c.stats.DelayedGETs++
				c.ctDelayed.Inc()
				c.mDelayed.Inc()
				c.stats.TotalGETDelay += extra
				if c.tr.Enabled() {
					c.tr.Emit(trace.LayerAdversary, "delay-get",
						trace.Num("get", int64(c.getIndex)), trace.Dur("extra", extra))
				}
			}
		}
	case netsim.ServerToClient:
		if end := seg.Seq + uint64(len(seg.Payload)); len(seg.Payload) > 0 && end > c.maxS2CSeq {
			c.maxS2CSeq = end
		}
		if (c.dropRate > 0 || c.dropRetransmitRate > 0) && now < c.dropUntil && len(seg.Payload) > 0 &&
			(c.dropSeqFence == 0 || seg.Seq+uint64(len(seg.Payload)) > c.dropSeqFence) {
			rate := c.dropRate
			if seg.Retransmit {
				rate = c.dropRetransmitRate
			}
			if c.rng.Bool(rate) {
				c.stats.DroppedPkts++
				c.ctDrops.Inc()
				c.mDrops.Inc()
				if c.tr.Enabled() {
					rtx := int64(0)
					if seg.Retransmit {
						rtx = 1
					}
					c.tr.Emit(trace.LayerAdversary, "drop",
						trace.Num("id", int64(pkt.ID)), trace.Num("len", int64(len(seg.Payload))),
						trace.Num("rtx", rtx))
				}
				return netsim.Verdict{Drop: true}
			}
		}
	}
	if max := c.randJitter[pkt.Dir]; max > 0 {
		v.ExtraDelay += c.rng.Uniform(0, max)
		c.stats.JitteredPkts++
		c.ctJittered.Inc()
		c.mJittered.Inc()
	}
	return v
}
