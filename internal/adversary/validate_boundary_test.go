package adversary

import (
	"strings"
	"testing"
	"time"
)

// TestAttackPlanValidateBoundaries walks every Validate error path at its
// field boundary. Validate applies withDefaults first, so fields with a
// zero-means-default rule (Phase1RandomJitter, DropRetransmitRate,
// TriggerDeadline, RSTGrace, MaxDropAttempts, DropEscalation,
// RetryBackoff) are driven with explicitly invalid values — zero would be
// silently replaced, never rejected.
func TestAttackPlanValidateBoundaries(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*AttackPlan)
		wantErr string // substring of the error; "" = must validate
	}{
		{"default-plan-valid", func(p *AttackPlan) {}, ""},

		{"phase1-jitter-negative", func(p *AttackPlan) { p.Phase1Jitter = -time.Nanosecond }, "Phase1Jitter"},
		{"phase1-jitter-zero-ok", func(p *AttackPlan) { p.Phase1Jitter = 0 }, ""},

		{"phase1-random-jitter-negative", func(p *AttackPlan) { p.Phase1RandomJitter = -time.Nanosecond }, "Phase1RandomJitter"},
		{"phase1-random-jitter-zero-defaults", func(p *AttackPlan) { p.Phase1RandomJitter = 0 }, ""},

		{"phase3-jitter-negative", func(p *AttackPlan) { p.Phase3Jitter = -time.Nanosecond }, "Phase3Jitter"},
		{"phase3-jitter-zero-ok", func(p *AttackPlan) { p.Phase3Jitter = 0 }, ""},

		{"trigger-get-zero", func(p *AttackPlan) { p.TriggerGET = 0 }, "TriggerGET"},
		{"trigger-get-negative", func(p *AttackPlan) { p.TriggerGET = -1 }, "TriggerGET"},
		{"trigger-get-one-ok", func(p *AttackPlan) { p.TriggerGET = 1 }, ""},

		{"throttle-negative", func(p *AttackPlan) { p.ThrottleBps = -1 }, "ThrottleBps"},
		{"throttle-zero-ok", func(p *AttackPlan) { p.ThrottleBps = 0 }, ""},

		{"drop-rate-negative", func(p *AttackPlan) { p.DropRate = -0.01 }, "DropRate"},
		{"drop-rate-above-one", func(p *AttackPlan) { p.DropRate = 1.01 }, "DropRate"},
		{"drop-rate-zero-ok", func(p *AttackPlan) { p.DropRate = 0 }, ""},
		{"drop-rate-one-ok", func(p *AttackPlan) { p.DropRate = 1 }, ""},

		{"drop-retransmit-negative", func(p *AttackPlan) { p.DropRetransmitRate = -0.01 }, "DropRetransmitRate"},
		{"drop-retransmit-above-one", func(p *AttackPlan) { p.DropRetransmitRate = 1.01 }, "DropRetransmitRate"},
		{"drop-retransmit-one-ok", func(p *AttackPlan) { p.DropRetransmitRate = 1 }, ""},

		{"drop-duration-negative", func(p *AttackPlan) { p.DropDuration = -time.Nanosecond }, "DropDuration"},
		{"drop-duration-zero-ok", func(p *AttackPlan) { p.DropDuration = 0 }, ""},

		{"trigger-deadline-negative", func(p *AttackPlan) { p.TriggerDeadline = -time.Nanosecond }, "watchdog"},
		{"rst-grace-negative", func(p *AttackPlan) { p.RSTGrace = -time.Nanosecond }, "watchdog"},

		{"max-drop-attempts-negative", func(p *AttackPlan) { p.MaxDropAttempts = -1 }, "MaxDropAttempts"},
		{"max-drop-attempts-one-ok", func(p *AttackPlan) { p.MaxDropAttempts = 1 }, ""},

		{"drop-escalation-negative", func(p *AttackPlan) { p.DropEscalation = -0.01 }, "DropEscalation"},

		{"retry-backoff-below-one", func(p *AttackPlan) { p.RetryBackoff = 0.5 }, "RetryBackoff"},
		{"retry-backoff-one-ok", func(p *AttackPlan) { p.RetryBackoff = 1 }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultPlan()
			tc.mutate(&p)
			err := p.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() accepted the plan, want error mentioning %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
}
