package adversary

import (
	"testing"
	"time"

	"h2privacy/internal/capture"
	"h2privacy/internal/netsim"
	"h2privacy/internal/simtime"
	"h2privacy/internal/tcpsim"
	"h2privacy/internal/tlsrec"
)

// testPath builds a controller over a fast path with delivery recording.
func testPath(t *testing.T) (*simtime.Scheduler, *netsim.Path, *Controller, *[]delivery) {
	t.Helper()
	sched := simtime.NewScheduler()
	rng := simtime.NewRand(1)
	path, err := netsim.NewPath(sched, rng.Fork(), netsim.PathConfig{Link: netsim.LinkConfig{
		BandwidthBps: 1e9,
	}})
	if err != nil {
		t.Fatal(err)
	}
	var got []delivery
	path.Connect(
		func(pkt *netsim.Packet) { got = append(got, delivery{sched.Now(), pkt}) },
		func(pkt *netsim.Packet) { got = append(got, delivery{sched.Now(), pkt}) },
	)
	ctrl := NewController(sched, rng.Fork(), path)
	return sched, path, ctrl, &got
}

type delivery struct {
	at  time.Duration
	pkt *netsim.Packet
}

// getSegment fabricates a GET-sized application record in a TCP segment.
func getSegment(seqNo uint64) *tcpsim.Segment {
	payload := make([]byte, 70)
	payload[0] = byte(tlsrec.ContentApplicationData)
	payload[1], payload[2] = 3, 3
	payload[3], payload[4] = 0, 65
	return &tcpsim.Segment{Flags: tcpsim.FlagACK, Seq: seqNo, Payload: payload}
}

// setupSegments covers the preface/SETTINGS skip window.
func primeClassifier(path *netsim.Path, seqStart uint64) uint64 {
	for i := 0; i < 2; i++ {
		seg := getSegment(seqStart)
		path.Send(netsim.ClientToServer, seg.WireSize(), seg)
		seqStart += uint64(len(seg.Payload))
	}
	return seqStart
}

func TestRequestSpacingSchedule(t *testing.T) {
	sched, path, ctrl, got := testPath(t)
	ctrl.SetRequestSpacing(50 * time.Millisecond)
	seq := primeClassifier(path, 1000)
	for i := 0; i < 3; i++ {
		seg := getSegment(seq)
		path.Send(netsim.ClientToServer, seg.WireSize(), seg)
		seq += uint64(len(seg.Payload))
	}
	sched.Run()
	if len(*got) != 5 {
		t.Fatalf("delivered %d packets", len(*got))
	}
	// GETs 1..3 (after the two setup records) delayed by 50/100/150 ms.
	for i, want := range []time.Duration{50, 100, 150} {
		at := (*got)[2+i].at
		if at < want*time.Millisecond || at > want*time.Millisecond+time.Millisecond {
			t.Fatalf("GET %d delivered at %v, want ≈%dms", i+1, at, want)
		}
	}
	if ctrl.Stats().DelayedGETs != 3 {
		t.Fatalf("DelayedGETs = %d", ctrl.Stats().DelayedGETs)
	}
}

func TestRetransmitsInheritDelay(t *testing.T) {
	sched, path, ctrl, got := testPath(t)
	ctrl.SetRequestSpacing(50 * time.Millisecond)
	seq := primeClassifier(path, 1000)
	seg := getSegment(seq)
	path.Send(netsim.ClientToServer, seg.WireSize(), seg)
	// A TCP retransmission of the same GET must not overtake it.
	rtx := getSegment(seq)
	rtx.Retransmit = true
	path.Send(netsim.ClientToServer, rtx.WireSize(), rtx)
	sched.Run()
	rtxAt := (*got)[3].at
	if rtxAt < 50*time.Millisecond {
		t.Fatalf("retransmit delivered at %v, before its original's hold", rtxAt)
	}
}

func TestDropServerData(t *testing.T) {
	sched, path, ctrl, got := testPath(t)
	ctrl.DropServerData(1.0, 1.0, time.Second) // drop everything with payload
	data := &tcpsim.Segment{Flags: tcpsim.FlagACK, Seq: 1, Payload: make([]byte, 500)}
	ack := &tcpsim.Segment{Flags: tcpsim.FlagACK, Seq: 2}
	path.Send(netsim.ServerToClient, data.WireSize(), data)
	path.Send(netsim.ServerToClient, ack.WireSize(), ack)
	sched.Run()
	if len(*got) != 1 {
		t.Fatalf("delivered %d packets, want 1 (pure ACK passes)", len(*got))
	}
	if ctrl.Stats().DroppedPkts != 1 {
		t.Fatalf("dropped = %d", ctrl.Stats().DroppedPkts)
	}
	// After the window, payload flows again.
	sched.At(2*time.Second, func() {
		path.Send(netsim.ServerToClient, data.WireSize(), data)
	})
	sched.Run()
	if len(*got) != 2 {
		t.Fatalf("post-window delivery failed: %d", len(*got))
	}
}

func TestDropRetransmitRateSelective(t *testing.T) {
	sched, path, ctrl, got := testPath(t)
	ctrl.DropServerData(0, 1.0, time.Second) // only retransmissions die
	fresh := &tcpsim.Segment{Flags: tcpsim.FlagACK, Seq: 1, Payload: make([]byte, 500)}
	rtx := &tcpsim.Segment{Flags: tcpsim.FlagACK, Seq: 1, Payload: make([]byte, 500), Retransmit: true}
	path.Send(netsim.ServerToClient, fresh.WireSize(), fresh)
	path.Send(netsim.ServerToClient, rtx.WireSize(), rtx)
	sched.Run()
	if len(*got) != 1 || (*got)[0].pkt.Payload.(*tcpsim.Segment).Retransmit {
		t.Fatalf("selective drop failed: %d delivered", len(*got))
	}
}

func TestRandomJitterAppliesPerDirection(t *testing.T) {
	sched, path, ctrl, got := testPath(t)
	ctrl.SetRandomJitter(netsim.ServerToClient, 20*time.Millisecond)
	seg := &tcpsim.Segment{Flags: tcpsim.FlagACK, Seq: 1, Payload: make([]byte, 100)}
	path.Send(netsim.ClientToServer, seg.WireSize(), seg)
	path.Send(netsim.ServerToClient, seg.WireSize(), seg)
	sched.Run()
	var c2s, s2c time.Duration
	for _, d := range *got {
		if d.pkt.Dir == netsim.ClientToServer {
			c2s = d.at
		} else {
			s2c = d.at
		}
	}
	if c2s > time.Millisecond {
		t.Fatalf("c2s jittered: %v", c2s)
	}
	if s2c == 0 {
		t.Fatal("s2c packet missing")
	}
}

func TestThrottle(t *testing.T) {
	_, path, ctrl, _ := testPath(t)
	ctrl.Throttle(800e6)
	if path.Link(netsim.ClientToServer).Bandwidth() != 800e6 {
		t.Fatal("throttle did not apply")
	}
	if ctrl.Stats().ThrottleEvents != 1 {
		t.Fatal("throttle event not counted")
	}
}

func TestDriverPhases(t *testing.T) {
	sched := simtime.NewScheduler()
	rng := simtime.NewRand(3)
	path, err := netsim.NewPath(sched, rng.Fork(), netsim.PathConfig{Link: netsim.LinkConfig{BandwidthBps: 1e9}})
	if err != nil {
		t.Fatal(err)
	}
	path.Connect(func(*netsim.Packet) {}, func(*netsim.Packet) {})
	mon := capture.NewMonitor()
	path.AddTap(mon)
	ctrl := NewController(sched, rng.Fork(), path)
	plan := DefaultPlan()
	plan.TriggerGET = 2
	plan.DropDuration = time.Second
	d, err := NewDriver(sched, ctrl, mon, plan)
	if err != nil {
		t.Fatal(err)
	}
	if d.Phase() != PhaseIdle {
		t.Fatalf("initial phase %v", d.Phase())
	}
	// Feed the monitor enough GETs to trigger.
	seq := uint64(1001)
	syn := &tcpsim.Segment{Flags: tcpsim.FlagSYN, Seq: 1000}
	path.Send(netsim.ClientToServer, syn.WireSize(), syn)
	for i := 0; i < 4; i++ { // 2 setup + 2 GETs
		seg := getSegment(seq)
		path.Send(netsim.ClientToServer, seg.WireSize(), seg)
		seq += uint64(len(seg.Payload))
	}
	sched.RunUntil(100 * time.Millisecond)
	if d.Phase() != PhaseDropping {
		t.Fatalf("phase after trigger = %v", d.Phase())
	}
	sched.RunUntil(2 * time.Second)
	if d.Phase() != PhaseSpacing {
		t.Fatalf("phase after drop window = %v", d.Phase())
	}
	if len(d.PhaseLog) != 3 {
		t.Fatalf("phase log = %v", d.PhaseLog)
	}
	for p, want := range map[Phase]string{
		PhaseIdle: "jitter+count", PhaseDropping: "throttle+drop",
		PhaseSpacing: "space-images", Phase(0): "phase?",
	} {
		if p.String() != want {
			t.Fatalf("Phase(%d).String() = %q", p, p.String())
		}
	}
}

func TestDefaultPlanValues(t *testing.T) {
	p := DefaultPlan()
	if p.Phase1Jitter != 50*time.Millisecond || p.TriggerGET != 6 ||
		p.ThrottleBps != 800e6 || p.DropRate != 0.8 || p.Phase3Jitter != 80*time.Millisecond {
		t.Fatalf("plan = %+v", p)
	}
	d := p.withDefaults()
	if d.Phase1RandomJitter == 0 || d.DropRetransmitRate == 0 {
		t.Fatalf("defaults not filled: %+v", d)
	}
}
