package adversary

import (
	"reflect"
	"testing"

	"h2privacy/internal/check"
	"h2privacy/internal/flowseq"
)

// fedAnalyzer builds an analyzer that has observed gets client GET
// records and one server→client burst whose body estimate sums bodies:
// the first record opens the burst (response HEADERS, no object bytes),
// each body record then contributes plainLen − 9 bytes — the same size
// model the monitor's feed produces.
func fedAnalyzer(gets int, bodies ...int) *flowseq.Analyzer {
	a := flowseq.New(0, nil)
	for i := 0; i < gets; i++ {
		a.Record(true, 120, 80, true, false, false)
	}
	if len(bodies) > 0 {
		a.Record(false, 60, 40, false, false, false)
		for _, b := range bodies {
			a.Record(false, b+38, b+9, false, false, false)
		}
	}
	return a
}

func TestBudgetCapHeldPeak(t *testing.T) {
	b := NewBudget(2, nil)
	if !b.TryAcquire(3) || !b.TryAcquire(7) {
		t.Fatal("two acquires under a 2-slot budget must both grant")
	}
	if b.TryAcquire(3) {
		t.Error("re-acquire by a holding flow granted")
	}
	if b.TryAcquire(9) {
		t.Error("acquire beyond the cap granted")
	}
	if b.Held() != 2 || b.Peak() != 2 || b.Cap() != 2 {
		t.Errorf("held=%d peak=%d cap=%d, want 2/2/2", b.Held(), b.Peak(), b.Cap())
	}
	b.Release(3)
	if !b.TryAcquire(9) {
		t.Error("acquire after a release refused")
	}
	if b.Peak() != 2 {
		t.Errorf("peak drifted to %d after release+reacquire at the cap", b.Peak())
	}
}

func TestBudgetNilIsUnconstrained(t *testing.T) {
	var b *Budget
	for flow := 0; flow < 100; flow++ {
		if !b.TryAcquire(flow) {
			t.Fatal("nil budget refused an acquire")
		}
	}
	b.Release(5)
	if b.Held() != 0 || b.Peak() != 0 || b.Cap() != 0 {
		t.Error("nil budget counted something")
	}
}

// TestBudgetCheckerShadow pins the mirroring contract: clean
// acquire/release traffic adds no violations, while a release without a
// matching acquire is booked by the checker even though the Budget
// itself shrugs it off.
func TestBudgetCheckerShadow(t *testing.T) {
	rec := check.NewRecorder()
	ck := check.New(1, 0, rec)
	b := NewBudget(1, ck)
	b.TryAcquire(0)
	b.Release(0)
	b.Release(0) // no matching acquire: shadow violation, Budget no-op
	if n := ck.Finalize(); n != 1 {
		t.Fatalf("unmatched release booked %d violations, want 1:\n%s", n, rec.Report())
	}
	for _, v := range ck.Violations() {
		if v.Rule != "budget-release-unheld" {
			t.Errorf("unexpected violation %q: %s", v.Rule, v.Detail)
		}
	}
}

// TestSelectTargetsBytesPerRequest pins the selector's robustness to
// slow volunteers: a decoy whose whole small page merges into one burst
// out-sizes the target's first response, but loses on bytes-per-request.
func TestSelectTargetsBytesPerRequest(t *testing.T) {
	flows := []*flowseq.Analyzer{
		fedAnalyzer(1, 15600),                              // target: one GET, one big response
		fedAnalyzer(6, 3000, 3000, 3000, 3000, 2500, 2460), // slow decoy: 6 objects merged into one 16.96 KB burst
		fedAnalyzer(2, 4000),
	}
	got := SelectTargets(flows, 1, 0)
	if !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("selected %v, want the planted target [0]", got)
	}
}

func TestSelectTargetsFloorAndOrder(t *testing.T) {
	flows := []*flowseq.Analyzer{
		fedAnalyzer(1, 2000),
		fedAnalyzer(1, 15600),
		nil, // unobserved flow scores nothing
		fedAnalyzer(1),
		fedAnalyzer(1, 9000),
	}
	// Floor above the decoy ceiling: only the big responses qualify, and
	// the picked set comes back in ascending flow order.
	if got := SelectTargets(flows, 3, 8192); !reflect.DeepEqual(got, []int{1, 4}) {
		t.Fatalf("floor 8192 selected %v, want [1 4]", got)
	}
	// No floor: k truncates by score, keeping the two largest.
	if got := SelectTargets(flows, 2, 0); !reflect.DeepEqual(got, []int{1, 4}) {
		t.Fatalf("k=2 selected %v, want [1 4]", got)
	}
	if got := SelectTargets(flows, 0, 0); got != nil {
		t.Fatalf("k=0 selected %v, want nothing", got)
	}
}
