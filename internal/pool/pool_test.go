package pool

import (
	"testing"
)

func TestNilArenaIsPlainMake(t *testing.T) {
	var a *Arena
	b := a.Bytes(100)
	if len(b) != 100 {
		t.Fatalf("nil arena Bytes(100) len = %d", len(b))
	}
	a.Put(b) // must not panic
	a.Reset()
	a.SetPoison(true)
	if s := a.Stats(); s != (Stats{}) {
		t.Fatalf("nil arena stats = %+v", s)
	}
	if a.Trials() != 0 {
		t.Fatalf("nil arena trials = %d", a.Trials())
	}
}

func TestBytesExactLength(t *testing.T) {
	a := New()
	for _, n := range []int{0, 1, 63, 64, 65, 1460, 4096, 65536, 70000} {
		b := a.Bytes(n)
		if len(b) != n {
			t.Fatalf("Bytes(%d) len = %d", n, len(b))
		}
	}
}

func TestPutGetReuses(t *testing.T) {
	a := New()
	b := a.Bytes(1460)
	b[0] = 0x42
	a.Put(b)
	c := a.Bytes(1000)
	if &c[0] != &b[0] {
		t.Fatalf("Bytes after Put did not reuse the buffer")
	}
	s := a.Stats()
	if s.Gets != 2 || s.Hits != 1 || s.Puts != 1 {
		t.Fatalf("stats = %+v, want Gets 2 Hits 1 Puts 1", s)
	}
}

func TestOversizeFallsBack(t *testing.T) {
	a := New()
	b := a.Bytes(1 << 17)
	if len(b) != 1<<17 {
		t.Fatalf("oversize len = %d", len(b))
	}
	a.Put(b)
	if s := a.Stats(); s.Oversize != 1 || s.Puts != 0 {
		t.Fatalf("oversize stats = %+v", s)
	}
}

func TestTinyPutDropped(t *testing.T) {
	a := New()
	a.Put(make([]byte, 8)) // below the bottom class: dropped
	if got := a.Bytes(8); cap(got) < 8 {
		t.Fatalf("Bytes(8) cap = %d", cap(got))
	}
	if s := a.Stats(); s.Hits != 0 {
		t.Fatalf("tiny Put should not populate a class: %+v", s)
	}
}

func TestPoisonScribbles(t *testing.T) {
	a := New()
	a.SetPoison(true)
	b := a.Bytes(256)
	for i := range b {
		b[i] = 0x11
	}
	a.Put(b)
	// The caller's stale reference must now see poison, not its data.
	for i, v := range b {
		if v != poisonByte {
			t.Fatalf("byte %d = %#x after Put with poison armed", i, v)
		}
	}
	c := a.Bytes(256)
	if &c[0] != &b[0] {
		t.Fatalf("poisoned buffer was not recycled")
	}
	for i, v := range c {
		if v != poisonByte {
			t.Fatalf("recycled byte %d = %#x, want poison (contents are unspecified, not zero)", i, v)
		}
	}
}

func TestResetKeepsFreeLists(t *testing.T) {
	a := New()
	b := a.Bytes(512)
	a.Put(b)
	a.Reset()
	if a.Trials() != 1 {
		t.Fatalf("trials = %d", a.Trials())
	}
	if s := a.Stats(); s != (Stats{}) {
		t.Fatalf("stats after Reset = %+v", s)
	}
	c := a.Bytes(512)
	if &c[0] != &b[0] {
		t.Fatalf("Reset dropped the free lists — cross-trial reuse is the point")
	}
}

func TestClassFor(t *testing.T) {
	cases := []struct{ n, class int }{
		{0, 0}, {1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{1460, 5}, {16384, 8}, {65536, 10}, {65537, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

type node struct {
	payload []byte
	next    *node
}

func TestFreeListZeroesOnPut(t *testing.T) {
	var f FreeList[node]
	n := f.Get()
	n.payload = []byte{1}
	n.next = n
	f.Put(n)
	if f.Len() != 1 {
		t.Fatalf("len = %d", f.Len())
	}
	m := f.Get()
	if m != n {
		t.Fatalf("Get did not recycle")
	}
	if m.payload != nil || m.next != nil {
		t.Fatalf("Put did not zero the recycled value: %+v", m)
	}
}

func TestNilFreeList(t *testing.T) {
	var f *FreeList[node]
	n := f.Get()
	if n == nil {
		t.Fatalf("nil free list Get returned nil")
	}
	f.Put(n) // must not panic
	if f.Len() != 0 {
		t.Fatalf("nil free list len = %d", f.Len())
	}
}

func BenchmarkArenaBytes(b *testing.B) {
	a := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := a.Bytes(1460)
		a.Put(buf)
	}
}
