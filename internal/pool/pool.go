// Package pool is the trial-scoped memory arena behind the sweep
// engine's allocation budget. A worker goroutine owns one Arena and
// reuses it across all the trials it runs: hot paths that used to
// allocate a fresh []byte per TCP segment, TLS record or reassembly
// step rent buffers from the arena instead, return them when the
// object graph releases them (netsim packet delivery is the natural
// release point for segment payloads), and the free lists survive the
// trial boundary so the second trial on a worker runs nearly
// allocation-free.
//
// The contract, in order of importance:
//
//   - Determinism first. The arena only changes *where* bytes live,
//     never what they contain or when callbacks run. Buffers are
//     handed out with exact length and no promise about contents
//     beyond what the caller writes (callers always overwrite the
//     full length). Byte-identity of every exported artifact at any
//     worker count is pinned by tests with pooling armed.
//   - Nil is free. Like trace/check/flowseq/perf, a nil *Arena is the
//     disabled path: Bytes falls back to make, Put drops the buffer,
//     Reset and SetPoison no-op. Code threads the arena through
//     without branching on "pooling enabled".
//   - Single-goroutine. An Arena is owned by one worker; there is no
//     locking. Cross-worker sharing is a bug (and -race would say so,
//     since Stats counters are plain ints).
//   - Reset at trial boundaries keeps the free lists — that retention
//     is the whole point — and only rolls the per-trial stats over.
//     Buffers still referenced by an abandoned trial object graph are
//     simply never returned; the GC reclaims them, so a leak is a
//     missed optimization, never a correctness hazard.
//
// Poison mode (SetPoison) scribbles returned buffers before they can
// be handed out again, so a use-after-Put — the one bug class pooling
// can introduce — corrupts loudly and deterministically instead of
// silently surviving. The correctness tests run entire attack trials
// with poisoning armed and require byte-identical reports.
package pool

// Size classes are powers of two from 64 B to 64 KiB. Everything the
// simulator rents lives comfortably in this range: TCP payloads cap at
// MSS (1460), TLS records at payload+header+tag, h2 frames at the
// 16 KiB default max frame size. Requests above the top class fall
// back to plain make and are dropped on Put (they would only pin
// memory across trials).
const (
	minClassBits = 6  // 64 B
	maxClassBits = 16 // 64 KiB
	numClasses   = maxClassBits - minClassBits + 1
)

const poisonByte = 0xDB

// Stats counts arena traffic since the last Reset (per-trial) and
// since creation (lifetime Recycled), so the allocation-budget tests
// and the bench record can report reuse rates.
type Stats struct {
	// Gets counts Bytes calls; Hits counts the subset served from a
	// free list (no allocation). Puts counts buffers returned;
	// Oversize counts requests above the top size class (always
	// allocated, never retained).
	Gets     int
	Hits     int
	Puts     int
	Oversize int
}

// Arena is a size-classed []byte recycler owned by one worker
// goroutine. The zero value is ready to use; a nil *Arena disables
// pooling (Bytes = make, Put = drop).
type Arena struct {
	classes [numClasses][][]byte
	poison  bool
	stats   Stats
	trials  int
}

// New returns an empty arena.
func New() *Arena { return &Arena{} }

// classFor returns the smallest size-class index whose capacity holds
// n, or -1 when n exceeds the top class.
func classFor(n int) int {
	if n > 1<<maxClassBits {
		return -1
	}
	c := 0
	for n > 1<<(minClassBits+c) {
		c++
	}
	return c
}

// Bytes rents a buffer of exactly length n. The contents are
// unspecified (poison mode guarantees they are NOT zero); every caller
// overwrites the full n bytes. A nil arena, or n above the top size
// class, falls back to plain make.
func (a *Arena) Bytes(n int) []byte {
	if a == nil {
		return make([]byte, n)
	}
	a.stats.Gets++
	c := classFor(n)
	if c < 0 {
		a.stats.Oversize++
		return make([]byte, n)
	}
	// Search upward from the smallest fitting class: a larger recycled
	// buffer serves a smaller request fine (Put re-classes by capacity
	// on return, so nothing degrades).
	for cls := c; cls < numClasses; cls++ {
		if list := a.classes[cls]; len(list) > 0 {
			b := list[len(list)-1]
			a.classes[cls] = list[:len(list)-1]
			a.stats.Hits++
			return b[:n]
		}
	}
	return make([]byte, n, 1<<(minClassBits+c))
}

// Put returns a buffer to the free list of the largest class its
// capacity fills. Undersized (below the bottom class) or oversized
// buffers are dropped. The caller must not touch b afterwards — with
// poison mode armed, the arena scribbles it immediately.
func (a *Arena) Put(b []byte) {
	if a == nil || b == nil {
		return
	}
	c := cap(b)
	if c < 1<<minClassBits || c > 1<<maxClassBits {
		return
	}
	// Largest class that c fully covers: the buffer may later be
	// handed out at any length up to the class size.
	cls := 0
	for cls+1 < numClasses && c >= 1<<(minClassBits+cls+1) {
		cls++
	}
	b = b[:1<<(minClassBits+cls)]
	if a.poison {
		for i := range b {
			b[i] = poisonByte
		}
	}
	a.stats.Puts++
	a.classes[cls] = append(a.classes[cls], b)
}

// Reset marks a trial boundary: free lists are KEPT (cross-trial reuse
// is the arena's purpose), per-trial accounting rolls over. Safe on
// nil.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	a.trials++
	a.stats = Stats{}
}

// SetPoison arms or disarms buffer poisoning. With poisoning on, every
// returned buffer is filled with 0xDB before it can be reused, so any
// reader holding a stale reference sees garbage deterministically.
// Safe on nil.
func (a *Arena) SetPoison(on bool) {
	if a == nil {
		return
	}
	a.poison = on
}

// Stats returns the per-trial traffic counters (since the last Reset).
// A nil arena reports zeros.
func (a *Arena) Stats() Stats {
	if a == nil {
		return Stats{}
	}
	return a.stats
}

// Trials returns how many Reset boundaries this arena has crossed.
func (a *Arena) Trials() int {
	if a == nil {
		return 0
	}
	return a.trials
}

// FreeList recycles fixed-shape structs (netsim Packets, tcpsim
// Segments) the way the scheduler free-lists fired events. Get pops a
// recycled value or allocates; Put zeroes the value — dropping every
// reference it held, so recycled structs never resurrect old pointers
// — and pushes it. Owned by one goroutine; nil-safe.
type FreeList[T any] struct {
	free []*T
}

// Get returns a zeroed *T, recycled when possible. A nil free list
// always allocates.
func (f *FreeList[T]) Get() *T {
	if f == nil || len(f.free) == 0 {
		return new(T)
	}
	v := f.free[len(f.free)-1]
	f.free = f.free[:len(f.free)-1]
	return v
}

// Put zeroes v and retains it for the next Get. Nil-safe (drops v).
func (f *FreeList[T]) Put(v *T) {
	if f == nil || v == nil {
		return
	}
	var zero T
	*v = zero
	f.free = append(f.free, v)
}

// Len reports how many values are parked on the free list.
func (f *FreeList[T]) Len() int {
	if f == nil {
		return 0
	}
	return len(f.free)
}
