package obs

import (
	"h2privacy/internal/trace"
)

// PublishTrace bridges a cross-layer tracer into the registry: it
// registers a snapshot-time collector that mirrors every trace counter
// and histogram summary, so one /metrics scrape reflects netsim
// enqueues/drops, tcpsim RTO/fast-retransmit/TLP counts, h2 flow-control
// stalls, monitor GET classifications and adversary knob activity without
// any of those components knowing about the registry.
//
// Trace counters keep their (layer, name) identity as labels — their
// names ("client.rto", "s2c.drop") are not legal Prometheus metric names,
// and labels keep one family per source kind. Mirroring happens only at
// scrape/snapshot time; the simulation hot path is untouched.
func PublishTrace(r *Registry, tr *trace.Tracer) {
	if r == nil || !tr.Enabled() {
		return
	}
	events := r.Gauge("h2privacy_trace_events",
		"Trace events retained in the ring buffer.")
	dropped := r.Gauge("h2privacy_trace_events_dropped",
		"Trace events overwritten by the ring buffer.")
	counters := r.CounterVec("h2privacy_trace_counter_total",
		"Cross-layer trace counters, mirrored at scrape time.",
		"layer", "name")
	stats := r.GaugeVec("h2privacy_trace_histo",
		"Cross-layer trace histogram summary statistics (stat is one of n, min, p50, p90, max, mean).",
		"layer", "name", "stat")
	r.RegisterCollector(func() {
		events.Set(float64(tr.Len()))
		dropped.Set(float64(tr.Dropped()))
		for _, c := range tr.Counters() {
			counters.With(c.Layer().String(), c.Name()).set(c.Value())
		}
		for _, h := range tr.Histos() {
			s := h.Summary()
			layer, name := h.Layer().String(), h.Name()
			stats.With(layer, name, "n").Set(float64(s.N))
			stats.With(layer, name, "min").Set(s.Min)
			stats.With(layer, name, "p50").Set(s.P50)
			stats.With(layer, name, "p90").Set(s.P90)
			stats.With(layer, name, "max").Set(s.Max)
			stats.With(layer, name, "mean").Set(s.Mean)
		}
	})
}
