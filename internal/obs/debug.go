package obs

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"h2privacy/internal/trace"
)

// publishRuntimeVars registers the host-environment expvars that make a
// /debug/vars scrape self-describing for performance work: any wall-time
// figure scraped off this process is meaningless without knowing how many
// cores it had. Guarded by a Once because expvar.Publish panics on
// re-registration, and a process may build several DebugServers (tests
// do).
var publishRuntimeVars = sync.OnceFunc(func() {
	expvar.Publish("gomaxprocs", expvar.Func(func() any { return runtime.GOMAXPROCS(0) }))
	expvar.Publish("numcpu", expvar.Func(func() any { return runtime.NumCPU() }))
	expvar.Publish("goversion", expvar.Func(func() any { return runtime.Version() }))
})

// featuresVar holds the current feature-receipt callback behind the single
// registered "features" expvar: expvar.Publish panics on re-registration,
// but tests (and successive tool runs in one process) re-arm feature
// extraction, so the registered Func indirects through a swappable pointer.
var (
	featuresVar     atomic.Value // of func() any
	featuresVarOnce sync.Once
)

// PublishFeaturesVar exposes fn's value as the "features" expvar — the
// /debug/vars receipt for flowseq feature extraction (schema version, row
// counts, export path). Call it each time a feature collector is armed;
// the latest fn wins.
func PublishFeaturesVar(fn func() any) {
	featuresVar.Store(fn)
	featuresVarOnce.Do(func() {
		expvar.Publish("features", expvar.Func(func() any {
			if fn, ok := featuresVar.Load().(func() any); ok {
				return fn()
			}
			return nil
		}))
	})
}

// quarantineVar mirrors featuresVar for the sweep supervision layer: the
// single registered "quarantine" expvar indirects through a swappable
// callback so successive runs (and tests) can re-arm it.
var (
	quarantineVar     atomic.Value // of func() any
	quarantineVarOnce sync.Once
)

// PublishQuarantineVar exposes fn's value as the "quarantine" expvar —
// the /debug/vars view of the sweep's degraded-mode state (quarantined
// trial count, failure records, repro commands). Call it each time a
// supervised sweep arms a quarantine collector; the latest fn wins.
func PublishQuarantineVar(fn func() any) {
	quarantineVar.Store(fn)
	quarantineVarOnce.Do(func() {
		expvar.Publish("quarantine", expvar.Func(func() any {
			if fn, ok := quarantineVar.Load().(func() any); ok {
				return fn()
			}
			return nil
		}))
	})
}

// FlowSource serves live flowseq feature state — implemented by
// *flowseq.Collector (whose WriteFlows renders burst tables, JSONL or CSV).
// Declared here so obs need not import flowseq: the dependency points the
// other way (flowseq publishes into obs registries).
type FlowSource interface {
	WriteFlows(w io.Writer, format string) error
}

// DebugServer is the live observability endpoint the cmd tools expose
// behind -debug-addr. It costs nothing unless started: the tools only
// construct one when the flag is set, and nothing in this package runs at
// package init beyond stdlib expvar/pprof registration.
//
// Endpoints:
//
//	/metrics       Prometheus text exposition (?format=json for canonical JSON)
//	/healthz       liveness probe ("ok")
//	/debug/vars    expvar (cmdline, memstats, gomaxprocs, numcpu, goversion)
//	/debug/pprof/  pprof index, profile, heap, symbol, trace, …
//	/debug/trace   live trace-ring download (?format=chrome|jsonl|summary)
//	/debug/flows   live flowseq burst tables (?format=table|jsonl|csv)
type DebugServer struct {
	// Registry backs /metrics. A nil registry serves an empty exposition.
	Registry *Registry
	// Tracer backs /debug/trace; nil → 404 with a hint.
	Tracer *trace.Tracer
	// Flows backs /debug/flows; nil → 404 with a hint.
	Flows FlowSource

	ln  net.Listener
	srv *http.Server
}

// Handler returns the endpoint mux. Exposed for tests and for embedding
// into an existing server.
func (s *DebugServer) Handler() http.Handler {
	publishRuntimeVars()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/trace", s.serveTrace)
	mux.HandleFunc("/debug/flows", s.serveFlows)
	return mux
}

// Start listens on addr (":0" picks a free port) and serves in a
// background goroutine, returning the bound address.
func (s *DebugServer) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: debug server: %w", err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the listener; in-flight requests are abandoned (the debug
// server is diagnostics, not a service).
func (s *DebugServer) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *DebugServer) serveMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = s.Registry.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", PrometheusContentType)
	_ = s.Registry.WritePrometheus(w)
}

func (s *DebugServer) serveTrace(w http.ResponseWriter, r *http.Request) {
	if !s.Tracer.Enabled() {
		http.Error(w, "tracing not armed (run with -trace or -debug-addr arms it)", http.StatusNotFound)
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = trace.FormatSummary
	}
	switch format {
	case trace.FormatSummary:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	case trace.FormatChrome:
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
	case trace.FormatJSONL:
		w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	default:
		http.Error(w, fmt.Sprintf("unknown format %q", format), http.StatusBadRequest)
		return
	}
	_ = s.Tracer.WriteFormat(w, format)
}

func (s *DebugServer) serveFlows(w http.ResponseWriter, r *http.Request) {
	if s.Flows == nil {
		http.Error(w, "feature extraction not armed (run with -features or -features-out)", http.StatusNotFound)
		return
	}
	format := r.URL.Query().Get("format")
	switch format {
	case "", "table":
		format = "table"
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	case "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	default:
		http.Error(w, fmt.Sprintf("unknown format %q (want table, jsonl or csv)", format), http.StatusBadRequest)
		return
	}
	if err := s.Flows.WriteFlows(w, format); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
