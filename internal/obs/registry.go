// Package obs is the attack observatory: a label-aware metrics registry
// (counters, gauges, fixed-bucket histograms) with deterministic snapshots
// and two exporters — Prometheus/OpenMetrics text exposition and canonical
// JSON — plus a live debug HTTP server (/metrics, /healthz, /debug/vars,
// /debug/pprof, trace-ring download) the cmd tools arm with -debug-addr.
//
// Design constraints, in order:
//
//  1. Lock-cheap hot paths. Counter/Gauge updates are single atomic ops;
//     Histogram.Observe is a binary search plus three atomics; Vec lookups
//     take only an RWMutex read lock on the hit path and callers cache the
//     returned instrument for true hot loops. Nothing on the update path
//     allocates.
//  2. Zero cost when unarmed. The nil instrument is the disabled
//     instrument: every method on a nil *Counter, *Gauge, *Histogram or
//     their Vecs is a no-op, and a nil *Registry hands out nil
//     instruments, so components keep unconditional Inc/Set/Observe calls
//     whether or not a registry is wired in.
//  3. Deterministic snapshots. Snapshot sorts families by name and series
//     by label values, so two same-seed sweeps export byte-identical
//     /metrics text and manifest JSON (no map-iteration order leaks, no
//     wall-clock reads inside the registry).
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates instrument families.
type Kind uint8

// Instrument kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind with the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Fixed bucket layouts. Histograms take an explicit layout at registration
// so every sweep exports the same buckets regardless of the data.
var (
	// DefBuckets is the Prometheus default latency layout, in seconds.
	DefBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
	// DurationBuckets spans the testbed's virtual-time phase and page-load
	// durations (tens of milliseconds to the 120 s trial bound), in seconds.
	DurationBuckets = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120}
	// SizeBuckets spans object and burst sizes, in bytes.
	SizeBuckets = []float64{256, 1024, 4096, 16384, 65536, 262144, 1048576}
)

// labelSep joins label values into series-map keys; 0xFF cannot appear in
// valid UTF-8 label values' first byte position ambiguity-free enough for
// our controlled label sets.
const labelSep = "\xff"

// Registry holds metric families. The zero value is not usable; call
// NewRegistry. A nil *Registry is the disarmed registry: its constructors
// return nil instruments whose methods are no-ops.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family

	collectMu  sync.Mutex
	collectors []func()
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with a fixed kind, help string, label schema
// and (for histograms) bucket layout.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64

	mu     sync.RWMutex
	series map[string]*series
}

// series is one (family, label-values) time series. Exactly one of the
// value groups is used, per the family kind.
type series struct {
	labelValues []string

	// counter
	count atomic.Int64
	// gauge (float64 bits)
	gaugeBits atomic.Uint64
	// histogram
	hBuckets []atomic.Uint64 // one per bound; +Inf is implicit
	hCount   atomic.Uint64
	hSumBits atomic.Uint64 // float64 bits, CAS-updated
}

// lookup returns the series for the given label values, creating it on
// first use. The hit path takes only the read lock.
func (f *family) lookup(labelValues []string) *series {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d",
			f.name, len(f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, labelSep)
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	s = &series{labelValues: append([]string(nil), labelValues...)}
	if f.kind == KindHistogram {
		s.hBuckets = make([]atomic.Uint64, len(f.buckets))
	}
	f.series[key] = s
	return s
}

// validName reports whether s is a legal Prometheus metric or label name:
// [a-zA-Z_:][a-zA-Z0-9_:]* (labels additionally must not use ':', but the
// testbed never does).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register returns the named family, creating it on first use. Registering
// the same name twice with a different kind or label schema panics — that
// is a programming error, caught at component construction.
func (r *Registry) register(name, help string, kind Kind, labels []string, buckets []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) || strings.Contains(l, ":") {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %s", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different schema", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %s re-registered with different labels", name))
			}
		}
		return f
	}
	if kind == KindHistogram {
		if len(buckets) == 0 {
			buckets = DefBuckets
		}
		if !sort.Float64sAreSorted(buckets) {
			panic(fmt.Sprintf("obs: metric %s has unsorted buckets", name))
		}
	}
	f := &family{
		name:    name,
		help:    help,
		kind:    kind,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.CounterVec(name, help).With()
}

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{fam: r.register(name, help, KindCounter, labels, nil)}
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.GaugeVec(name, help).With()
}

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{fam: r.register(name, help, KindGauge, labels, nil)}
}

// Histogram registers (or finds) an unlabeled histogram with the given
// fixed bucket layout (nil → DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.HistogramVec(name, help, buckets).With()
}

// HistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{fam: r.register(name, help, KindHistogram, labels, buckets)}
}

// RegisterCollector adds a hook that runs before every Snapshot (and
// therefore before every /metrics scrape): the trace bridge uses it to
// copy live tracer counters into the registry. No-op on nil.
func (r *Registry) RegisterCollector(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.collectMu.Lock()
	r.collectors = append(r.collectors, fn)
	r.collectMu.Unlock()
}

// Counter is a monotonically increasing integer. The nil *Counter absorbs
// updates at the cost of one branch.
type Counter struct{ s *series }

// Add increments by n (n < 0 panics). No-op on nil.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	if n < 0 {
		panic("obs: counter decremented")
	}
	c.s.count.Add(n)
}

// Inc increments by one. No-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.s.count.Load()
}

// set is the bridge's backdoor: trace counters are mirrored by value at
// collect time, which is still monotonic because the source is.
func (c *Counter) set(v int64) {
	if c != nil {
		c.s.count.Store(v)
	}
}

// CounterVec hands out per-label-value counters.
type CounterVec struct{ fam *family }

// With returns the counter for the given label values, creating the series
// on first use. Cache the result for hot loops. Nil-safe.
func (v *CounterVec) With(labelValues ...string) *Counter {
	if v == nil {
		return nil
	}
	return &Counter{s: v.fam.lookup(labelValues)}
}

// Gauge is an arbitrary float that can go up and down.
type Gauge struct{ s *series }

// Set stores v. No-op on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.s.gaugeBits.Store(math.Float64bits(v))
}

// Add adds delta (CAS loop). No-op on nil.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.s.gaugeBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.s.gaugeBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reports the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.s.gaugeBits.Load())
}

// GaugeVec hands out per-label-value gauges.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label values. Nil-safe.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	if v == nil {
		return nil
	}
	return &Gauge{s: v.fam.lookup(labelValues)}
}

// Histogram accumulates observations into its family's fixed buckets.
type Histogram struct {
	bounds []float64
	s      *series
}

// Observe records one value. Lock-free: a binary search over the fixed
// bounds plus three atomic updates. The count is incremented before the
// bucket and snapshots read buckets before the count, so a concurrent
// scrape always sees cumulative buckets bounded by _count — the invariant
// LintExposition checks. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.s.hCount.Add(1)
	// First bound ≥ v; observations above every bound land only in +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.s.hBuckets[i].Add(1)
	}
	for {
		old := h.s.hSumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.s.hSumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reports the total observation count (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.s.hCount.Load()
}

// Sum reports the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.s.hSumBits.Load())
}

// HistogramVec hands out per-label-value histograms.
type HistogramVec struct{ fam *family }

// With returns the histogram for the given label values. Nil-safe.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	if v == nil {
		return nil
	}
	return &Histogram{bounds: v.fam.buckets, s: v.fam.lookup(labelValues)}
}

// Snapshot is a deterministic point-in-time copy of the registry, the
// shared input of both exporters and of the run manifest.
type Snapshot struct {
	Families []FamilySnap `json:"families"`
}

// FamilySnap is one family in a snapshot.
type FamilySnap struct {
	Name       string       `json:"name"`
	Help       string       `json:"help,omitempty"`
	Kind       string       `json:"kind"`
	LabelNames []string     `json:"label_names,omitempty"`
	Buckets    []float64    `json:"buckets,omitempty"`
	Series     []SeriesSnap `json:"series"`
}

// SeriesSnap is one series in a snapshot. Counters and gauges use Value;
// histograms use Count, Sum and BucketCounts (per-bucket, not cumulative —
// the text exporter accumulates).
type SeriesSnap struct {
	LabelValues  []string `json:"label_values,omitempty"`
	Value        float64  `json:"value"`
	Count        uint64   `json:"count,omitempty"`
	Sum          float64  `json:"sum,omitempty"`
	BucketCounts []uint64 `json:"bucket_counts,omitempty"`
}

// Snapshot runs the registered collectors, then copies every family sorted
// by name and every series sorted by label values. Nil-safe (empty
// snapshot). Concurrent updates during the copy may be torn across
// instruments (a histogram's _count can lead its buckets by in-flight
// observations — never trail them) but each atomic read is itself consistent; quiesced
// registries — the manifest path — snapshot exactly.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{}
	if r == nil {
		return snap
	}
	r.collectMu.Lock()
	for _, fn := range r.collectors {
		fn()
	}
	r.collectMu.Unlock()

	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		fs := FamilySnap{
			Name:       f.name,
			Help:       f.help,
			Kind:       f.kind.String(),
			LabelNames: f.labels,
		}
		if f.kind == KindHistogram {
			fs.Buckets = f.buckets
		}
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			ss := SeriesSnap{LabelValues: s.labelValues}
			switch f.kind {
			case KindCounter:
				ss.Value = float64(s.count.Load())
			case KindGauge:
				ss.Value = math.Float64frombits(s.gaugeBits.Load())
			case KindHistogram:
				// Buckets before count: pairs with Observe's ordering so a
				// concurrent scrape never shows buckets exceeding _count.
				ss.BucketCounts = make([]uint64, len(s.hBuckets))
				for i := range s.hBuckets {
					ss.BucketCounts[i] = s.hBuckets[i].Load()
				}
				ss.Sum = math.Float64frombits(s.hSumBits.Load())
				ss.Count = s.hCount.Load()
			}
			fs.Series = append(fs.Series, ss)
		}
		f.mu.RUnlock()
		snap.Families = append(snap.Families, fs)
	}
	return snap
}
