package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("trials_total", "Trials run.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Re-registration returns the same series.
	if got := reg.Counter("trials_total", "Trials run.").Value(); got != 5 {
		t.Fatalf("re-registered counter = %d, want 5", got)
	}

	g := reg.Gauge("phase", "Current phase.")
	g.Set(2)
	g.Add(0.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}

	vec := reg.CounterVec("retrans_total", "Retransmissions.", "dir")
	vec.With("c2s").Add(3)
	vec.With("s2c").Add(7)
	if got := vec.With("c2s").Value(); got != 3 {
		t.Fatalf("labeled counter = %d, want 3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("load_seconds", "Page load time.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-102.65) > 1e-9 {
		t.Fatalf("sum = %g, want 102.65", h.Sum())
	}
	snap := reg.Snapshot()
	s := snap.Families[0].Series[0]
	// 0.05 and 0.1 land in le=0.1 (le is ≤); 0.5 in le=1; 2 in le=10; 100
	// only in +Inf.
	want := []uint64{2, 1, 1}
	for i, w := range want {
		if s.BucketCounts[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d (buckets %v)", i, s.BucketCounts[i], w, s.BucketCounts)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x", "")
	g := reg.Gauge("y", "")
	h := reg.Histogram("z", "", nil)
	cv := reg.CounterVec("cv", "", "l")
	gv := reg.GaugeVec("gv", "", "l")
	hv := reg.HistogramVec("hv", "", nil, "l")
	// None of these may panic; values read back as zero.
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(2)
	cv.With("a").Inc()
	gv.With("a").Set(1)
	hv.With("a").Observe(1)
	reg.RegisterCollector(func() { t.Fatal("collector ran on nil registry") })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments reported non-zero values")
	}
	if snap := reg.Snapshot(); len(snap.Families) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaConflictsPanic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "")
	for name, fn := range map[string]func(){
		"kind":       func() { reg.Gauge("a_total", "") },
		"labels":     func() { reg.CounterVec("a_total", "", "dir") },
		"bad-name":   func() { reg.Counter("has-dash", "") },
		"bad-label":  func() { reg.CounterVec("b_total", "", "bad-label") },
		"arity":      func() { reg.CounterVec("c_total", "", "dir").With() },
		"decrement":  func() { reg.Counter("d_total", "").Add(-1) },
		"unsorted-b": func() { reg.Histogram("e", "", []float64{2, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func() *Registry {
		reg := NewRegistry()
		// Register in one order, populate in another: the snapshot must
		// sort both families and series.
		v := reg.CounterVec("zz_total", "", "k")
		v.With("b").Add(2)
		v.With("a").Add(1)
		reg.Gauge("aa", "first").Set(9)
		reg.Histogram("mm_seconds", "", []float64{1, 2}).Observe(1.5)
		return reg
	}
	var out [2]string
	for i := range out {
		var sb strings.Builder
		if err := build().WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		out[i] = sb.String()
	}
	if out[0] != out[1] {
		t.Fatalf("non-deterministic exposition:\n%s\nvs\n%s", out[0], out[1])
	}
	if !strings.HasPrefix(out[0], "# HELP aa first\n# TYPE aa gauge\n") {
		t.Fatalf("families not sorted:\n%s", out[0])
	}
	ai := strings.Index(out[0], `zz_total{k="a"}`)
	bi := strings.Index(out[0], `zz_total{k="b"}`)
	if ai < 0 || bi < 0 || ai > bi {
		t.Fatalf("series not sorted by label value:\n%s", out[0])
	}
}

// TestRegistryConcurrency hammers every instrument kind, Vec lookups,
// collectors and snapshots from many goroutines. Run under -race (CI
// does), this is the registry's thread-safety contract.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	cv := reg.CounterVec("ops_total", "", "worker")
	g := reg.Gauge("level", "")
	hv := reg.HistogramVec("lat_seconds", "", DefBuckets, "worker")
	reg.RegisterCollector(func() { g.Set(1) })

	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := fmt.Sprintf("w%d", w%4) // contend on shared series too
			c := cv.With(label)
			h := hv.With(label)
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(0.25)
				g.Add(-0.25)
				h.Observe(float64(i%100) / 100)
				if i%500 == 0 {
					// Concurrent scrape: snapshot + both exporters.
					snap := reg.Snapshot()
					var sb strings.Builder
					if err := snap.WritePrometheus(&sb); err != nil {
						t.Error(err)
					}
					if _, err := LintExposition([]byte(sb.String())); err != nil {
						t.Errorf("mid-flight exposition rejected: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var total int64
	for _, s := range reg.Snapshot().Families {
		if s.Name != "ops_total" {
			continue
		}
		for _, series := range s.Series {
			total += int64(series.Value)
		}
	}
	if total != workers*iters {
		t.Fatalf("lost updates: ops_total = %d, want %d", total, workers*iters)
	}
	for _, f := range reg.Snapshot().Families {
		if f.Name != "lat_seconds" {
			continue
		}
		var count uint64
		for _, s := range f.Series {
			count += s.Count
		}
		if count != workers*iters {
			t.Fatalf("lost observations: %d, want %d", count, workers*iters)
		}
	}
}
