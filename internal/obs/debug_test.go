package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"h2privacy/internal/trace"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := buildGoldenRegistry()
	tr := trace.New(nil, trace.Config{})
	tr.Counter(trace.LayerTCP, "client.rto").Add(3)
	tr.Histo(trace.LayerTCP, "client.srtt_ms").Observe(12.5)
	tr.Emit(trace.LayerAdversary, "phase", trace.Str("to", "throttle+drop"))
	PublishTrace(reg, tr)

	ds := &DebugServer{Registry: reg, Tracer: tr}
	srv := httptest.NewServer(ds.Handler())
	defer srv.Close()

	// /metrics serves exposition text the golden parser accepts, and the
	// bridge's mirrored trace counters appear in the same scrape.
	code, body, hdr := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != PrometheusContentType {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	if _, err := LintExposition([]byte(body)); err != nil {
		t.Fatalf("/metrics output rejected by golden parser: %v\n%s", err, body)
	}
	for _, want := range []string{
		`h2privacy_trace_counter_total{layer="tcpsim",name="client.rto"} 3`,
		`h2privacy_trace_histo{layer="tcpsim",name="client.srtt_ms",stat="p50"} 12.5`,
		"h2privacy_trace_events 1",
		"h2privacy_trials_total 100",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	// JSON variant.
	code, body, hdr = get(t, srv, "/metrics?format=json")
	if code != 200 || !strings.Contains(body, `"kind": "counter"`) {
		t.Fatalf("/metrics?format=json = %d:\n%s", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("json content-type = %q", ct)
	}

	if code, body, _ = get(t, srv, "/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	if code, body, _ = get(t, srv, "/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars = %d", code)
	}
	// The host-environment vars that contextualize any perf figure scraped
	// off this process.
	for _, want := range []string{`"gomaxprocs":`, `"numcpu":`, `"goversion":`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/debug/vars missing %s:\n%s", want, body)
		}
	}

	if code, body, _ = get(t, srv, "/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}

	// Trace ring download, all three formats plus a bad one.
	if code, body, _ = get(t, srv, "/debug/trace"); code != 200 || !strings.Contains(body, "events retained") {
		t.Fatalf("/debug/trace = %d %q", code, body)
	}
	if code, body, _ = get(t, srv, "/debug/trace?format=jsonl"); code != 200 || !strings.Contains(body, `"kind":"phase"`) {
		t.Fatalf("/debug/trace?format=jsonl = %d %q", code, body)
	}
	if code, body, _ = get(t, srv, "/debug/trace?format=chrome"); code != 200 || !strings.Contains(body, "traceEvents") {
		t.Fatalf("/debug/trace?format=chrome = %d", code)
	}
	if code, _, _ = get(t, srv, "/debug/trace?format=nope"); code != 400 {
		t.Fatalf("bad trace format = %d, want 400", code)
	}
}

func TestDebugServerUnarmedTrace(t *testing.T) {
	ds := &DebugServer{Registry: NewRegistry()}
	srv := httptest.NewServer(ds.Handler())
	defer srv.Close()
	if code, _, _ := get(t, srv, "/debug/trace"); code != 404 {
		t.Fatalf("/debug/trace without tracer = %d, want 404", code)
	}
	// /metrics still works with an empty registry; so does a nil one.
	if code, _, _ := get(t, srv, "/metrics"); code != 200 {
		t.Fatalf("/metrics on empty registry = %d", code)
	}
	nilSrv := httptest.NewServer((&DebugServer{}).Handler())
	defer nilSrv.Close()
	if code, body, _ := get(t, nilSrv, "/metrics"); code != 200 || body != "" {
		t.Fatalf("/metrics on nil registry = %d %q", code, body)
	}
}

func TestDebugServerStartClose(t *testing.T) {
	ds := &DebugServer{Registry: NewRegistry()}
	addr, err := ds.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz over real listener = %d", resp.StatusCode)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still answering after Close")
	}
}
