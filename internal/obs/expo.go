package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type the /metrics endpoint serves
// for the text exposition format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4, a subset of OpenMetrics): families sorted by
// name, series sorted by label values, histogram buckets cumulative with
// a closing +Inf. Same-seed sweeps produce byte-identical output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// WritePrometheus writes the snapshot in the text exposition format.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range s.Families {
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Kind)
		for _, series := range f.Series {
			switch f.Kind {
			case "histogram":
				writeHistogramSeries(bw, f, series)
			default:
				bw.WriteString(f.Name)
				writeLabels(bw, f.LabelNames, series.LabelValues, "")
				bw.WriteByte(' ')
				bw.WriteString(formatValue(series.Value))
				bw.WriteByte('\n')
			}
		}
	}
	return bw.Flush()
}

// writeHistogramSeries writes one histogram series: cumulative _bucket
// lines closed by le="+Inf", then _sum and _count.
func writeHistogramSeries(bw *bufio.Writer, f FamilySnap, s SeriesSnap) {
	var cum uint64
	for i, bound := range f.Buckets {
		cum += s.BucketCounts[i]
		bw.WriteString(f.Name)
		bw.WriteString("_bucket")
		writeLabels(bw, f.LabelNames, s.LabelValues, formatValue(bound))
		fmt.Fprintf(bw, " %d\n", cum)
	}
	bw.WriteString(f.Name)
	bw.WriteString("_bucket")
	writeLabels(bw, f.LabelNames, s.LabelValues, "+Inf")
	fmt.Fprintf(bw, " %d\n", s.Count)
	bw.WriteString(f.Name)
	bw.WriteString("_sum")
	writeLabels(bw, f.LabelNames, s.LabelValues, "")
	fmt.Fprintf(bw, " %s\n", formatValue(s.Sum))
	bw.WriteString(f.Name)
	bw.WriteString("_count")
	writeLabels(bw, f.LabelNames, s.LabelValues, "")
	fmt.Fprintf(bw, " %d\n", s.Count)
}

// writeLabels writes the {name="value",…} block, appending an le bucket
// label when le is non-empty. Writes nothing when there are no labels.
func writeLabels(bw *bufio.Writer, names, values []string, le string) {
	if len(names) == 0 && le == "" {
		return
	}
	bw.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(n)
		bw.WriteString(`="`)
		bw.WriteString(escapeLabelValue(values[i]))
		bw.WriteByte('"')
	}
	if le != "" {
		if len(names) > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(`le="`)
		bw.WriteString(le)
		bw.WriteByte('"')
	}
	bw.WriteByte('}')
}

// escapeHelp escapes backslash and newline per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes backslash, double quote and newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus does: shortest
// round-trip float, with ±Inf spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// WriteJSON writes the registry snapshot as canonical indented JSON: the
// same deterministic ordering as the text exposition, structured for the
// run manifest and for tooling that would rather not parse the text
// format.
func (r *Registry) WriteJSON(w io.Writer) error {
	return r.Snapshot().WriteJSON(w)
}

// WriteJSON writes the snapshot as canonical indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// LintExposition is the golden exposition parser: it validates Prometheus
// text-format output strictly enough to pin the exporter's contract —
// legal metric/label syntax, every sample preceded by its family's TYPE
// line, families in sorted order, histogram buckets cumulative and closed
// by an le="+Inf" line matching _count. It returns the number of sample
// lines accepted.
func LintExposition(data []byte) (samples int, err error) {
	type histState struct {
		last    float64 // last cumulative bucket count seen
		lastLE  float64
		infSeen bool
		count   float64
		hasCnt  bool
	}
	typed := make(map[string]string) // family → kind
	hists := make(map[string]*histState)
	var lastFamily string
	lineNo := 0
	for _, line := range strings.Split(string(data), "\n") {
		lineNo++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return samples, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			name := fields[2]
			if !validName(name) {
				return samples, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return samples, fmt.Errorf("line %d: TYPE line missing kind", lineNo)
				}
				if _, dup := typed[name]; dup {
					return samples, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if name < lastFamily {
					return samples, fmt.Errorf("line %d: family %s out of order (after %s)", lineNo, name, lastFamily)
				}
				lastFamily = name
				typed[name] = fields[3]
			}
			continue
		}
		name, labels, value, perr := parseSampleLine(line)
		if perr != nil {
			return samples, fmt.Errorf("line %d: %v", lineNo, perr)
		}
		base, suffix := name, ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, sfx) {
				if k, ok := typed[strings.TrimSuffix(name, sfx)]; ok && k == "histogram" {
					base, suffix = strings.TrimSuffix(name, sfx), sfx
				}
				break
			}
		}
		kind, ok := typed[base]
		if !ok {
			return samples, fmt.Errorf("line %d: sample %s has no TYPE line", lineNo, name)
		}
		if kind == "histogram" {
			// Histogram cumulativity is tracked per label-set; strip le to
			// key the state.
			key := base + "{" + labels + "}"
			st := hists[key]
			if st == nil {
				st = &histState{lastLE: math.Inf(-1)}
				hists[key] = st
			}
			switch suffix {
			case "_bucket":
				le, lerr := parseLE(line)
				if lerr != nil {
					return samples, fmt.Errorf("line %d: %v", lineNo, lerr)
				}
				if le <= st.lastLE {
					return samples, fmt.Errorf("line %d: bucket le=%g not increasing", lineNo, le)
				}
				if value < st.last {
					return samples, fmt.Errorf("line %d: bucket counts not cumulative (%g < %g)", lineNo, value, st.last)
				}
				st.last, st.lastLE = value, le
				if math.IsInf(le, 1) {
					st.infSeen = true
				}
			case "_count":
				st.count, st.hasCnt = value, true
			case "_sum":
			default:
				return samples, fmt.Errorf("line %d: bare sample %s for histogram %s", lineNo, name, base)
			}
			if st.infSeen && st.hasCnt && st.count != st.last {
				return samples, fmt.Errorf("histogram %s: +Inf bucket %g != count %g", key, st.last, st.count)
			}
		}
		samples++
	}
	for key, st := range hists {
		if !st.infSeen {
			return samples, fmt.Errorf("histogram %s: missing le=\"+Inf\" bucket", key)
		}
		if !st.hasCnt {
			return samples, fmt.Errorf("histogram %s: missing _count", key)
		}
	}
	return samples, nil
}

// parseSampleLine splits `name{labels} value` (labels optional), returning
// the sorted-irrelevant raw label block without the le pair.
func parseSampleLine(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		labels = rest[i+1 : j]
		if err := lintLabels(labels); err != nil {
			return "", "", 0, err
		}
		// Drop the le pair so histogram state keys by label-set.
		var kept []string
		for _, pair := range splitLabelPairs(labels) {
			if !strings.HasPrefix(pair, "le=") {
				kept = append(kept, pair)
			}
		}
		labels = strings.Join(kept, ",")
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return "", "", 0, fmt.Errorf("malformed sample %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	if !validName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = strings.TrimSpace(rest)
	switch rest {
	case "+Inf":
		value = math.Inf(1)
	case "-Inf":
		value = math.Inf(-1)
	default:
		value, err = strconv.ParseFloat(rest, 64)
		if err != nil {
			return "", "", 0, fmt.Errorf("bad value %q: %v", rest, err)
		}
	}
	return name, labels, value, nil
}

// splitLabelPairs splits a raw label block on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// lintLabels validates each name="value" pair: legal label names, quoted
// values, legal escapes only.
func lintLabels(s string) error {
	if s == "" {
		return nil
	}
	for _, pair := range splitLabelPairs(s) {
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			return fmt.Errorf("label pair %q missing =", pair)
		}
		name, val := pair[:eq], pair[eq+1:]
		if !validName(name) || strings.Contains(name, ":") {
			return fmt.Errorf("invalid label name %q", name)
		}
		if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
			return fmt.Errorf("label value %s not quoted", val)
		}
		inner := val[1 : len(val)-1]
		for i := 0; i < len(inner); i++ {
			switch inner[i] {
			case '\\':
				if i+1 >= len(inner) || (inner[i+1] != '\\' && inner[i+1] != '"' && inner[i+1] != 'n') {
					return fmt.Errorf("illegal escape in label value %s", val)
				}
				i++
			case '"', '\n':
				return fmt.Errorf("unescaped %q in label value %s", inner[i], val)
			}
		}
	}
	return nil
}

// parseLE extracts the le label value from a _bucket sample line.
func parseLE(line string) (float64, error) {
	i := strings.Index(line, `le="`)
	if i < 0 {
		return 0, fmt.Errorf("bucket line missing le label: %q", line)
	}
	rest := line[i+4:]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return 0, fmt.Errorf("unterminated le label: %q", line)
	}
	if rest[:j] == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(rest[:j], 64)
	if err != nil {
		return 0, fmt.Errorf("bad le value %q", rest[:j])
	}
	return v, nil
}
