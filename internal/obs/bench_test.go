package obs

import (
	"io"
	"testing"
)

// The registry's hot-path contract, pinned by the benchmarks below and by
// TestUnarmedZeroAllocs: when no debug server (and hence no registry) is
// armed, instruments are nil and every update is a single predictable
// branch with zero allocations; when armed, counter/gauge updates are one
// atomic RMW (~single-digit ns) and a cached-Vec histogram observation is
// a binary search plus three atomics. Vec.With on the hit path adds one
// RWMutex read-lock map lookup — cache the instrument outside hot loops.
// See the root bench_test.go for the same contract measured through a
// whole instrumented trial.

func BenchmarkCounterUnarmed(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterArmed(b *testing.B) {
	c := NewRegistry().Counter("ops_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeArmed(b *testing.B) {
	g := NewRegistry().Gauge("level", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramArmed(b *testing.B) {
	h := NewRegistry().Histogram("lat_seconds", "", DefBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) / 100)
	}
}

func BenchmarkVecWithHit(b *testing.B) {
	v := NewRegistry().CounterVec("ops_total", "", "dir")
	v.With("c2s").Inc() // pre-create the series
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("c2s").Inc()
	}
}

func BenchmarkSnapshotAndExposition(b *testing.B) {
	reg := buildGoldenRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := reg.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// TestUnarmedZeroAllocs pins the disarmed contract: nil instruments and a
// nil registry absorb the full instrumentation pattern without allocating.
func TestUnarmedZeroAllocs(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x_total", "")
	g := reg.Gauge("y", "")
	h := reg.Histogram("z_seconds", "", nil)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		h.Observe(0.25)
	})
	if allocs != 0 {
		t.Fatalf("unarmed instrument path allocates %.1f per op, want 0", allocs)
	}
}
