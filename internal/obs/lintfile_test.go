package obs

import (
	"os"
	"testing"
)

// TestLintLiveScrape lints a scrape captured from a live -debug-addr run
// when H2PRIVACY_LINT_FILE points at one — a hook for CI smoke tests.
func TestLintLiveScrape(t *testing.T) {
	path := os.Getenv("H2PRIVACY_LINT_FILE")
	if path == "" {
		t.Skip("H2PRIVACY_LINT_FILE not set")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := LintExposition(data)
	if err != nil {
		t.Fatalf("live scrape rejected: %v", err)
	}
	t.Logf("live scrape: %d samples", n)
}
