package obs

import (
	"strings"
	"testing"
)

// buildGoldenRegistry populates one instrument of every kind, including
// label values that need escaping and a histogram whose observations
// exercise every bucket region.
func buildGoldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("h2privacy_trials_total", "Trials run.").Add(100)
	dirs := reg.CounterVec("h2privacy_retrans_total", "Retransmitted segments observed at the gateway.", "dir")
	dirs.With("c2s").Add(12)
	dirs.With("s2c").Add(340)
	reg.Gauge("h2privacy_adversary_phase", "Current attack phase (1 jitter, 2 drop, 3 space).").Set(3)
	esc := reg.GaugeVec("h2privacy_escape_demo", `Help with backslash \ and
newline.`, "path")
	esc.With(`quote " backslash \ newline
end`).Set(1.5)
	h := reg.Histogram("h2privacy_phase_seconds", "Attack phase durations.", []float64{0.5, 1, 5})
	for _, v := range []float64{0.1, 0.5, 0.7, 3, 20} {
		h.Observe(v)
	}
	return reg
}

// goldenExposition is the pinned text exposition of buildGoldenRegistry:
// families sorted by name, series sorted by label value, escaped help and
// label values, cumulative buckets closed by +Inf.
const goldenExposition = `# HELP h2privacy_adversary_phase Current attack phase (1 jitter, 2 drop, 3 space).
# TYPE h2privacy_adversary_phase gauge
h2privacy_adversary_phase 3
# HELP h2privacy_escape_demo Help with backslash \\ and\nnewline.
# TYPE h2privacy_escape_demo gauge
h2privacy_escape_demo{path="quote \" backslash \\ newline\nend"} 1.5
# HELP h2privacy_phase_seconds Attack phase durations.
# TYPE h2privacy_phase_seconds histogram
h2privacy_phase_seconds_bucket{le="0.5"} 2
h2privacy_phase_seconds_bucket{le="1"} 3
h2privacy_phase_seconds_bucket{le="5"} 4
h2privacy_phase_seconds_bucket{le="+Inf"} 5
h2privacy_phase_seconds_sum 24.3
h2privacy_phase_seconds_count 5
# HELP h2privacy_retrans_total Retransmitted segments observed at the gateway.
# TYPE h2privacy_retrans_total counter
h2privacy_retrans_total{dir="c2s"} 12
h2privacy_retrans_total{dir="s2c"} 340
# HELP h2privacy_trials_total Trials run.
# TYPE h2privacy_trials_total counter
h2privacy_trials_total 100
`

func TestPrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := buildGoldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != goldenExposition {
		t.Fatalf("exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, goldenExposition)
	}
}

func TestGoldenPassesLint(t *testing.T) {
	n, err := LintExposition([]byte(goldenExposition))
	if err != nil {
		t.Fatalf("golden exposition rejected by its own parser: %v", err)
	}
	// 1 phase + 1 escape + 6 histogram lines + 2 retrans + 1 trials.
	if n != 11 {
		t.Fatalf("lint accepted %d samples, want 11", n)
	}
}

func TestLintRejects(t *testing.T) {
	cases := map[string]string{
		"no-type":      "orphan_metric 1\n",
		"bad-name":     "# TYPE bad counter\nbad-name 1\n",
		"bad-value":    "# TYPE m counter\nm one\n",
		"dup-type":     "# TYPE m counter\n# TYPE m counter\nm 1\n",
		"out-of-order": "# TYPE zz counter\nzz 1\n# TYPE aa counter\naa 1\n",
		"unquoted-lab": "# TYPE m counter\nm{dir=c2s} 1\n",
		"bad-escape":   "# TYPE m counter\nm{dir=\"a\\q\"} 1\n",
		"non-cumulative": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"le-not-increasing": "# TYPE h histogram\n" +
			"h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
		"missing-inf": "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"inf-vs-count": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 5\n",
	}
	for name, in := range cases {
		if _, err := LintExposition([]byte(in)); err == nil {
			t.Errorf("%s: lint accepted malformed input:\n%s", name, in)
		}
	}
}

func TestJSONDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := buildGoldenRegistry().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildGoldenRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("JSON export not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	for _, want := range []string{`"name": "h2privacy_trials_total"`, `"kind": "histogram"`, `"bucket_counts"`} {
		if !strings.Contains(a.String(), want) {
			t.Fatalf("JSON export missing %q:\n%s", want, a.String())
		}
	}
}
