package predict

import (
	"testing"
	"testing/quick"
	"time"

	"h2privacy/internal/capture"
	"h2privacy/internal/netsim"
	"h2privacy/internal/tlsrec"
	"h2privacy/internal/website"
)

func testCatalog() map[int]string {
	return map[int]string{
		9500:  "quiz",
		15872: "I-big",
		5120:  "I-small",
	}
}

// burstRecords synthesizes one serialized response burst: a HEADERS record
// then DATA records carrying the object in chunks.
func burstRecords(start time.Duration, size, chunk int) []capture.RecordEvent {
	out := []capture.RecordEvent{{
		Time: start, Dir: netsim.ServerToClient,
		Type: tlsrec.ContentApplicationData, PlainLen: 38,
	}}
	at := start
	for size > 0 {
		n := chunk
		if n > size {
			n = size
		}
		at += time.Millisecond
		out = append(out, capture.RecordEvent{
			Time: at, Dir: netsim.ServerToClient,
			Type: tlsrec.ContentApplicationData, PlainLen: n + frameHeaderLen,
		})
		size -= n
	}
	return out
}

func TestBurstsExactSizeRecovery(t *testing.T) {
	a := NewAnalyzer(testCatalog(), Config{})
	recs := burstRecords(0, 9500, 1200)
	bursts := a.Bursts(recs)
	if len(bursts) != 1 {
		t.Fatalf("bursts = %d, want 1", len(bursts))
	}
	if bursts[0].EstSize != 9500 || bursts[0].MatchID != "quiz" || bursts[0].MatchErr != 0 {
		t.Fatalf("burst = %+v", bursts[0])
	}
}

func TestBurstsSplitOnGap(t *testing.T) {
	a := NewAnalyzer(testCatalog(), Config{})
	recs := append(burstRecords(0, 15872, 1200), burstRecords(200*time.Millisecond, 5120, 1200)...)
	bursts := a.Bursts(recs)
	if len(bursts) != 2 {
		t.Fatalf("bursts = %d, want 2", len(bursts))
	}
	if bursts[0].MatchID != "I-big" || bursts[1].MatchID != "I-small" {
		t.Fatalf("matches = %q, %q", bursts[0].MatchID, bursts[1].MatchID)
	}
}

func TestBurstsMergedWithinGap(t *testing.T) {
	a := NewAnalyzer(testCatalog(), Config{})
	recs := append(burstRecords(0, 9500, 1200), burstRecords(15*time.Millisecond, 5120, 1200)...)
	bursts := a.Bursts(recs)
	if len(bursts) != 1 {
		t.Fatalf("bursts = %d, want 1 (merged)", len(bursts))
	}
	if bursts[0].MatchID != "" {
		t.Fatalf("merged burst matched %q", bursts[0].MatchID)
	}
}

func TestBurstsIgnoreTaintedRecords(t *testing.T) {
	a := NewAnalyzer(testCatalog(), Config{})
	recs := burstRecords(0, 9500, 1200)
	// Interleave retransmitted junk inside the burst window.
	junk := burstRecords(2*time.Millisecond, 4000, 1200)
	for i := range junk {
		junk[i].Tainted = true
	}
	all := append(recs, junk...)
	bursts := a.Bursts(all)
	if len(bursts) != 1 || bursts[0].MatchID != "quiz" {
		t.Fatalf("bursts = %+v", bursts)
	}
}

func TestBurstsIgnoreClientRecords(t *testing.T) {
	a := NewAnalyzer(testCatalog(), Config{})
	recs := burstRecords(0, 9500, 1200)
	recs = append(recs, capture.RecordEvent{
		Time: time.Millisecond, Dir: netsim.ClientToServer,
		Type: tlsrec.ContentApplicationData, PlainLen: 5000,
	})
	bursts := a.Bursts(recs)
	if len(bursts) != 1 || bursts[0].MatchID != "quiz" {
		t.Fatalf("client records polluted the burst: %+v", bursts)
	}
}

func TestIdentifyTolerance(t *testing.T) {
	a := NewAnalyzer(testCatalog(), Config{Tolerance: 64})
	if id, errB, ok := a.Identify(9500); !ok || id != "quiz" || errB != 0 {
		t.Fatalf("exact: %q %d %t", id, errB, ok)
	}
	if id, errB, ok := a.Identify(9530); !ok || id != "quiz" || errB != 30 {
		t.Fatalf("near: %q %d %t", id, errB, ok)
	}
	if _, _, ok := a.Identify(9600); ok {
		t.Fatal("match beyond tolerance")
	}
	if _, _, ok := a.Identify(100000); ok {
		t.Fatal("match far off the catalog")
	}
}

func TestInferSequence(t *testing.T) {
	a := NewAnalyzer(testCatalog(), Config{})
	bursts := []Burst{
		{MatchID: "quiz"},
		{MatchID: "I-big"},
		{MatchID: "I-big"}, // retransmitted copy collapses
		{MatchID: ""},
		{MatchID: "I-small"},
	}
	seq := a.InferSequence(bursts, []string{"I-big", "I-small"})
	if len(seq) != 2 || seq[0] != "I-big" || seq[1] != "I-small" {
		t.Fatalf("seq = %v", seq)
	}
}

func TestMatchedObjects(t *testing.T) {
	a := NewAnalyzer(testCatalog(), Config{})
	m := a.MatchedObjects([]Burst{{MatchID: "quiz"}, {MatchID: ""}, {MatchID: "quiz"}})
	if len(m) != 1 || !m["quiz"] {
		t.Fatalf("matched = %v", m)
	}
}

// Property: any serialized burst of a catalog object with ≥1-byte chunks
// recovers the exact size; matching the real site catalog never
// misattributes when sizes are exact.
func TestExactRecoveryProperty(t *testing.T) {
	site := website.ISideWith()
	a := NewAnalyzer(site.SizeToIdentity(), Config{})
	objs := site.Objects
	f := func(pick uint8, chunk uint16) bool {
		obj := objs[int(pick)%len(objs)]
		c := int(chunk)%1400 + 1
		bursts := a.Bursts(burstRecords(0, obj.Size, c))
		if len(bursts) != 1 {
			return false
		}
		// Only uniquely-sized objects must identify; all must sum exactly.
		if bursts[0].EstSize != obj.Size {
			return false
		}
		if id, ok := site.SizeToIdentity()[obj.Size]; ok {
			return bursts[0].MatchID == id
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
