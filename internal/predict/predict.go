// Package predict implements the adversary's object-prediction module
// (the Python component of the paper's §V setup). It segments the
// server→client record stream into transmission bursts, estimates each
// burst's object size from record lengths (Fig. 1's delimiter+sum idea,
// upgraded to TLS-record granularity), and matches sizes against the
// pre-compiled size→identity catalog.
package predict

import (
	"sort"
	"time"

	"h2privacy/internal/capture"
	"h2privacy/internal/netsim"
	"h2privacy/internal/tlsrec"
)

// frameHeaderLen is the HTTP/2 frame header inside each record; the
// attacker knows the protocol and subtracts it per DATA record.
const frameHeaderLen = 9

// Config tunes the analyzer.
type Config struct {
	// BurstGap is the idle time that separates two bursts. Default 25 ms.
	BurstGap time.Duration
	// Tolerance is the allowed |estimate − catalog size| for a match.
	// Default 64 bytes.
	Tolerance int
}

func (c Config) withDefaults() Config {
	if c.BurstGap == 0 {
		c.BurstGap = 25 * time.Millisecond
	}
	if c.Tolerance == 0 {
		c.Tolerance = 64
	}
	return c
}

// Burst is one contiguous server→client transmission.
type Burst struct {
	Start, End time.Duration
	Records    int
	// EstSize is the estimated object size: the DATA-record plaintext
	// bytes (frame headers subtracted), excluding the leading response
	// HEADERS record.
	EstSize int
	// MatchID is the catalog object whose size matches, or "".
	MatchID string
	// MatchErr is |estimate − matched size| (only when matched).
	MatchErr int
}

// Analyzer matches observed bursts against a size catalog.
type Analyzer struct {
	cfg   Config
	sizes []sizeEntry // sorted by size
}

type sizeEntry struct {
	size int
	id   string
}

// NewAnalyzer builds an analyzer from the pre-compiled size→identity map
// (website.Site.SizeToIdentity provides the paper's catalog).
func NewAnalyzer(catalog map[int]string, cfg Config) *Analyzer {
	a := &Analyzer{cfg: cfg.withDefaults()}
	for size, id := range catalog {
		a.sizes = append(a.sizes, sizeEntry{size: size, id: id})
	}
	sort.Slice(a.sizes, func(i, j int) bool { return a.sizes[i].size < a.sizes[j].size })
	return a
}

// Identify finds the catalog object closest to est within tolerance.
func (a *Analyzer) Identify(est int) (string, int, bool) {
	i := sort.Search(len(a.sizes), func(i int) bool { return a.sizes[i].size >= est })
	bestID, bestErr := "", a.cfg.Tolerance+1
	for _, j := range []int{i - 1, i} {
		if j < 0 || j >= len(a.sizes) {
			continue
		}
		diff := a.sizes[j].size - est
		if diff < 0 {
			diff = -diff
		}
		if diff < bestErr {
			bestErr = diff
			bestID = a.sizes[j].id
		}
	}
	if bestID == "" {
		return "", 0, false
	}
	return bestID, bestErr, true
}

// Bursts segments the monitor's record log into server→client bursts and
// matches each against the catalog.
func (a *Analyzer) Bursts(records []capture.RecordEvent) []Burst {
	var out []Burst
	var cur *Burst
	flush := func() {
		if cur == nil {
			return
		}
		if id, errBytes, ok := a.Identify(cur.EstSize); ok {
			cur.MatchID = id
			cur.MatchErr = errBytes
		}
		out = append(out, *cur)
		cur = nil
	}
	for _, rec := range records {
		if rec.Dir != netsim.ServerToClient || rec.Type != tlsrec.ContentApplicationData {
			continue
		}
		// TCP-retransmitted bytes are replays of traffic already seen
		// (tshark flags them); the analyzer ignores them entirely.
		if rec.Tainted {
			continue
		}
		if cur != nil && rec.Time-cur.End > a.cfg.BurstGap {
			flush()
		}
		if cur == nil {
			// The first record of a response burst is the HEADERS
			// record; it contributes no body bytes.
			cur = &Burst{Start: rec.Time, End: rec.Time, Records: 1}
			continue
		}
		cur.Records++
		cur.End = rec.Time
		if body := rec.PlainLen - frameHeaderLen; body > 0 {
			cur.EstSize += body
		}
	}
	flush()
	return out
}

// InferSequence extracts, in time order, the candidate objects identified
// among the bursts — the adversary's reconstruction of the emblem display
// order. Consecutive duplicates (retransmitted copies) collapse to one.
func (a *Analyzer) InferSequence(bursts []Burst, candidates []string) []string {
	want := make(map[string]bool, len(candidates))
	for _, id := range candidates {
		want[id] = true
	}
	var seq []string
	for _, b := range bursts {
		if b.MatchID == "" || !want[b.MatchID] {
			continue
		}
		if len(seq) > 0 && seq[len(seq)-1] == b.MatchID {
			continue
		}
		seq = append(seq, b.MatchID)
	}
	return seq
}

// MatchedObjects returns the set of object ids identified across bursts.
func (a *Analyzer) MatchedObjects(bursts []Burst) map[string]bool {
	out := make(map[string]bool)
	for _, b := range bursts {
		if b.MatchID != "" {
			out[b.MatchID] = true
		}
	}
	return out
}
