package predict

import "sort"

// Decomposition is one way to explain a merged burst as a sum of catalog
// objects.
type Decomposition struct {
	IDs []string
	Err int // |estimate − Σ sizes|
}

// DecomposeBurst implements the paper's §VII extension: "infer the object
// identity even when the object is partly multiplexed". A burst whose
// size matches no single object may still be the concatenation of a small
// set of objects that multiplexed together; subset-sum over the catalog
// recovers the candidates. Returns every decomposition of 2..maxParts
// distinct objects within the analyzer's tolerance, best first. Only an
// unambiguous (single) decomposition is actionable for the attack.
func (a *Analyzer) DecomposeBurst(est, maxParts int) []Decomposition {
	if maxParts > 3 {
		maxParts = 3 // beyond 3 parts, ambiguity explodes (§VII's caveat)
	}
	var out []Decomposition
	n := len(a.sizes)
	tol := a.cfg.Tolerance
	// Pairs.
	if maxParts >= 2 {
		for i := 0; i < n; i++ {
			si := a.sizes[i].size
			if si >= est+tol {
				break
			}
			// Binary search for the complement.
			lo := sort.Search(n, func(k int) bool { return a.sizes[k].size >= est-si-tol })
			for k := lo; k < n && a.sizes[k].size <= est-si+tol; k++ {
				if k == i {
					continue
				}
				if k < i {
					continue // avoid duplicates: require k > i
				}
				diff := abs(est - si - a.sizes[k].size)
				out = append(out, Decomposition{
					IDs: []string{a.sizes[i].id, a.sizes[k].id},
					Err: diff,
				})
			}
		}
	}
	// Triples.
	if maxParts >= 3 {
		for i := 0; i < n; i++ {
			si := a.sizes[i].size
			if si >= est+tol {
				break
			}
			for j := i + 1; j < n; j++ {
				sj := a.sizes[j].size
				if si+sj >= est+tol {
					break
				}
				rem := est - si - sj
				lo := sort.Search(n, func(k int) bool { return a.sizes[k].size >= rem-tol })
				for k := lo; k < n && a.sizes[k].size <= rem+tol; k++ {
					if k <= j {
						continue
					}
					out = append(out, Decomposition{
						IDs: []string{a.sizes[i].id, a.sizes[j].id, a.sizes[k].id},
						Err: abs(rem - a.sizes[k].size),
					})
				}
			}
		}
	}
	sort.Slice(out, func(x, y int) bool {
		if len(out[x].IDs) != len(out[y].IDs) {
			return len(out[x].IDs) < len(out[y].IDs)
		}
		return out[x].Err < out[y].Err
	})
	return out
}

// MatchedObjectsWithDecomposition extends MatchedObjects: bursts that
// match no single object but decompose *unambiguously* into a small set
// contribute those objects too.
func (a *Analyzer) MatchedObjectsWithDecomposition(bursts []Burst, maxParts int) map[string]bool {
	out := a.MatchedObjects(bursts)
	for _, b := range bursts {
		if b.MatchID != "" || b.EstSize == 0 {
			continue
		}
		decs := a.DecomposeBurst(b.EstSize, maxParts)
		if len(decs) == 0 {
			continue
		}
		// Unambiguous: exactly one decomposition at the minimal part
		// count explains the burst.
		minParts := len(decs[0].IDs)
		count := 0
		for _, d := range decs {
			if len(d.IDs) == minParts {
				count++
			}
		}
		if count != 1 {
			continue
		}
		for _, id := range decs[0].IDs {
			out[id] = true
		}
	}
	return out
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
