package predict

import (
	"testing"

	"h2privacy/internal/website"
)

func TestDecomposePair(t *testing.T) {
	a := NewAnalyzer(map[int]string{
		1000: "a", 2000: "b", 5000: "c",
	}, Config{Tolerance: 10})
	decs := a.DecomposeBurst(3000, 2)
	if len(decs) != 1 {
		t.Fatalf("decompositions = %+v", decs)
	}
	if decs[0].IDs[0] != "a" || decs[0].IDs[1] != "b" || decs[0].Err != 0 {
		t.Fatalf("dec = %+v", decs[0])
	}
}

func TestDecomposeTriple(t *testing.T) {
	a := NewAnalyzer(map[int]string{
		1000: "a", 2000: "b", 5000: "c", 50000: "x",
	}, Config{Tolerance: 10})
	decs := a.DecomposeBurst(8000, 3)
	if len(decs) != 1 || len(decs[0].IDs) != 3 {
		t.Fatalf("decompositions = %+v", decs)
	}
}

func TestDecomposeAmbiguity(t *testing.T) {
	a := NewAnalyzer(map[int]string{
		1000: "a", 2000: "b", 1500: "c", 1501: "d",
	}, Config{Tolerance: 5})
	// 3001 ≈ a+b (3000) and c+d (3001): ambiguous at 2 parts.
	decs := a.DecomposeBurst(3001, 2)
	if len(decs) < 2 {
		t.Fatalf("expected ambiguity, got %+v", decs)
	}
	// Best-first: exact match (c+d) before off-by-one (a+b).
	if decs[0].Err > decs[1].Err {
		t.Fatalf("not sorted by error: %+v", decs)
	}
}

func TestMatchedObjectsWithDecomposition(t *testing.T) {
	a := NewAnalyzer(map[int]string{
		9500: "quiz", 4380: "fonts-css", 17254: "analytics",
	}, Config{})
	bursts := []Burst{
		{EstSize: 9500, MatchID: "quiz"},            // direct match
		{EstSize: 4380 + 17254, MatchID: ""},        // merged pair
		{EstSize: 3333, MatchID: ""},                // junk: no decomposition
		{EstSize: 9500 + 4380 + 17254, MatchID: ""}, // merged triple
	}
	got := a.MatchedObjectsWithDecomposition(bursts, 3)
	for _, id := range []string{"quiz", "fonts-css", "analytics"} {
		if !got[id] {
			t.Fatalf("missing %s in %v", id, got)
		}
	}
}

func TestDecomposeRealCatalogUniqueness(t *testing.T) {
	// On the real site catalog, a merged pair of the quiz and its
	// neighbour decomposes unambiguously.
	site := website.ISideWith()
	a := NewAnalyzer(site.SizeToIdentity(), Config{})
	quiz := site.Object(website.TargetID).Size
	fonts := site.Object("fonts-css").Size
	decs := a.DecomposeBurst(quiz+fonts, 2)
	if len(decs) == 0 {
		t.Fatal("no decomposition found")
	}
	exact := 0
	for _, d := range decs {
		if len(d.IDs) == 2 && d.Err == 0 {
			exact++
		}
	}
	if exact != 1 {
		t.Fatalf("pair not unique on the catalog: %+v", decs)
	}
}

func BenchmarkDecomposeTriple(b *testing.B) {
	site := website.ISideWith()
	a := NewAnalyzer(site.SizeToIdentity(), Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.DecomposeBurst(9500+4380+17254, 3)
	}
}
