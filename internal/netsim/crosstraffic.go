package netsim

import (
	"time"

	"h2privacy/internal/simtime"
)

// Background is the payload marker for cross-traffic packets: they consume
// link capacity and queue space like real packets but carry no transport
// segment. Endpoints and taps ignore them (the type assertion to
// *tcpsim.Segment fails), exactly as a gateway's other flows are invisible
// to one connection's state but very visible to its queues.
type Background struct{}

// CrossTraffic injects Poisson background load onto a path — the
// uncontrolled "everything else" a real campus gateway carries, which the
// clean simulation otherwise lacks. Packets are sent in both directions.
type CrossTraffic struct {
	sched *simtime.Scheduler
	rng   *simtime.Rand
	path  *Path

	meanGap time.Duration // mean inter-packet gap per direction
	size    int
	stopped bool
	sent    int
	tickEv  func(any) // onTick bound once; rescheduled via AfterArg
}

// NewCrossTraffic builds a generator producing roughly rateBps of load in
// each direction using pktSize-byte packets (0 → 1200).
func NewCrossTraffic(sched *simtime.Scheduler, rng *simtime.Rand, path *Path, rateBps float64, pktSize int) *CrossTraffic {
	if pktSize <= 0 {
		pktSize = 1200
	}
	ct := &CrossTraffic{sched: sched, rng: rng, path: path, size: pktSize}
	ct.tickEv = ct.onTick
	if rateBps > 0 {
		gap := time.Duration(float64(pktSize*8) / rateBps * float64(time.Second))
		ct.meanGap = gap
	}
	return ct
}

// Start begins injecting until Stop (or forever within the simulation).
func (ct *CrossTraffic) Start() {
	if ct.meanGap <= 0 {
		return
	}
	ct.tick(ClientToServer)
	ct.tick(ServerToClient)
}

// Stop halts injection (pending scheduled packets still fire their timers
// but send nothing).
func (ct *CrossTraffic) Stop() { ct.stopped = true }

// Sent reports how many background packets were injected.
func (ct *CrossTraffic) Sent() int { return ct.sent }

func (ct *CrossTraffic) onTick(dir any) { ct.tick(dir.(Direction)) }

func (ct *CrossTraffic) tick(dir Direction) {
	if ct.stopped {
		return
	}
	ct.path.Send(dir, ct.size, Background{})
	ct.sent++
	// AfterArg with a pre-bound method value: Direction values are tiny
	// ints, so boxing them into any stays allocation-free.
	ct.sched.AfterArg(ct.rng.Exponential(ct.meanGap), ct.tickEv, dir)
}
