// Package netsim models the network path between the client and the server:
// two unidirectional links with finite bandwidth, propagation delay, natural
// jitter and random loss, joined at a programmable middlebox. The middlebox
// is where the paper's adversary lives: it can observe every packet, delay
// individual packets (targeted jitter), throttle the link, and drop packets.
//
// netsim is transport-agnostic: packets carry an opaque payload (in this
// repository, a *tcpsim.Segment) plus a wire size. Reordering arises
// naturally when per-packet delays differ, which is exactly the mechanism
// the paper exploits (§IV-B).
package netsim

import "time"

// Direction identifies which way a packet is travelling on the path.
type Direction int

// Path directions.
const (
	ClientToServer Direction = iota + 1
	ServerToClient
)

// String returns a compact arrow notation used in traces.
func (d Direction) String() string {
	switch d {
	case ClientToServer:
		return "c->s"
	case ServerToClient:
		return "s->c"
	default:
		return "dir?"
	}
}

// Reverse returns the opposite direction.
func (d Direction) Reverse() Direction {
	if d == ClientToServer {
		return ServerToClient
	}
	return ClientToServer
}

// Packet is one unit of transmission on a link.
type Packet struct {
	// ID is unique per path and increases in send order.
	ID uint64
	// Dir is the packet's direction of travel.
	Dir Direction
	// Size is the on-the-wire size in bytes, including transport and
	// network headers. Serialization delay is Size/bandwidth.
	Size int
	// Payload is the transport payload; *tcpsim.Segment in this module.
	Payload any
	// SentAt is the virtual time the packet entered the link.
	SentAt time.Duration

	// refs counts pending scheduler references when the owning link has
	// packet recycling armed (Link.SetRecycle): queue-drain, delivery,
	// and a possible duplicate delivery each hold one. The struct (and
	// its payload, via the release hook) goes back on the link's free
	// list when the count hits zero. Unused — always zero — on links
	// without recycling.
	refs int
}

// Verdict is a middlebox processor's decision about one packet.
type Verdict struct {
	// Drop discards the packet at the middlebox.
	Drop bool
	// ExtraDelay holds the packet back for the given duration before
	// forwarding. Differential delays reorder packets.
	ExtraDelay time.Duration
}

// Processor inspects and manipulates packets at the middlebox. Processors
// run in installation order; the first Drop wins and later processors do
// not see the packet. Delays accumulate.
type Processor interface {
	Process(now time.Duration, pkt *Packet) Verdict
}

// ProcessorFunc adapts a function to the Processor interface.
type ProcessorFunc func(now time.Duration, pkt *Packet) Verdict

var _ Processor = (ProcessorFunc)(nil)

// Process implements Processor.
func (f ProcessorFunc) Process(now time.Duration, pkt *Packet) Verdict {
	return f(now, pkt)
}

// Action classifies what happened to a packet at the middlebox/link.
type Action int

// Packet fates, reported to taps.
const (
	ActionForwarded     Action = iota + 1
	ActionDroppedLoss          // random link loss
	ActionDroppedPolicy        // dropped by a middlebox processor (the adversary)
	ActionDroppedQueue         // tail-dropped: link queue full
	ActionDroppedFault         // dropped by an injected fault (blackout, burst-loss episode)
)

// String names the action for traces.
func (a Action) String() string {
	switch a {
	case ActionForwarded:
		return "fwd"
	case ActionDroppedLoss:
		return "drop-loss"
	case ActionDroppedPolicy:
		return "drop-policy"
	case ActionDroppedQueue:
		return "drop-queue"
	case ActionDroppedFault:
		return "drop-fault"
	default:
		return "action?"
	}
}

// PacketEvent is delivered to taps for every packet that enters a link.
type PacketEvent struct {
	Now     time.Duration
	Pkt     *Packet
	Action  Action
	Arrival time.Duration // scheduled delivery time; zero when dropped
}

// Tap passively observes packets at the middlebox (the paper's traffic
// monitor). Taps must not mutate the packet.
type Tap interface {
	Observe(ev PacketEvent)
}

// Handler receives delivered packets at a path endpoint.
type Handler func(pkt *Packet)
