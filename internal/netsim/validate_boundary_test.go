package netsim

import (
	"strings"
	"testing"
	"time"
)

// TestLinkConfigValidateBoundaries walks every LinkConfig validation
// error path at its exact field boundary, including the asymmetric
// inclusive/exclusive ends (LossProb and DuplicateProb exclude 1,
// ReorderProb includes it) and the QueueLimit zero-means-default rule.
func TestLinkConfigValidateBoundaries(t *testing.T) {
	valid := func() LinkConfig {
		return LinkConfig{BandwidthBps: 1e9, PropDelay: 8 * time.Millisecond}
	}
	cases := []struct {
		name    string
		mutate  func(*LinkConfig)
		wantErr string // substring; "" = must validate
	}{
		{"valid", func(c *LinkConfig) {}, ""},

		{"bandwidth-zero", func(c *LinkConfig) { c.BandwidthBps = 0 }, "bandwidth"},
		{"bandwidth-negative", func(c *LinkConfig) { c.BandwidthBps = -1 }, "bandwidth"},

		{"prop-delay-negative", func(c *LinkConfig) { c.PropDelay = -time.Nanosecond }, "propagation"},
		{"prop-delay-zero-ok", func(c *LinkConfig) { c.PropDelay = 0 }, ""},

		{"jitter-negative", func(c *LinkConfig) { c.NaturalJitter = -time.Nanosecond }, "jitter"},
		{"jitter-zero-ok", func(c *LinkConfig) { c.NaturalJitter = 0 }, ""},

		{"loss-negative", func(c *LinkConfig) { c.LossProb = -0.01 }, "loss"},
		{"loss-one-rejected", func(c *LinkConfig) { c.LossProb = 1 }, "loss"},
		{"loss-just-below-one-ok", func(c *LinkConfig) { c.LossProb = 0.999 }, ""},
		{"loss-zero-ok", func(c *LinkConfig) { c.LossProb = 0 }, ""},

		{"reorder-negative", func(c *LinkConfig) { c.ReorderProb = -0.01 }, "reorder"},
		{"reorder-above-one", func(c *LinkConfig) { c.ReorderProb = 1.01 }, "reorder"},
		{"reorder-one-ok", func(c *LinkConfig) { c.ReorderProb = 1 }, ""},

		{"duplicate-negative", func(c *LinkConfig) { c.DuplicateProb = -0.01 }, "duplicate"},
		{"duplicate-one-rejected", func(c *LinkConfig) { c.DuplicateProb = 1 }, "duplicate"},
		{"duplicate-just-below-one-ok", func(c *LinkConfig) { c.DuplicateProb = 0.999 }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid()
			tc.mutate(&cfg)
			err := cfg.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate() accepted the config, want error mentioning %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate() = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

// TestLinkConfigQueueLimitDefault pins the zero-means-default mutation:
// validate rewrites QueueLimit 0 to 256 KiB and leaves explicit values
// alone.
func TestLinkConfigQueueLimitDefault(t *testing.T) {
	cfg := LinkConfig{BandwidthBps: 1e9}
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.QueueLimit != 256<<10 {
		t.Fatalf("QueueLimit defaulted to %d, want %d", cfg.QueueLimit, 256<<10)
	}
	cfg = LinkConfig{BandwidthBps: 1e9, QueueLimit: 1234}
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.QueueLimit != 1234 {
		t.Fatalf("explicit QueueLimit rewritten to %d", cfg.QueueLimit)
	}
}
