package netsim

import (
	"testing"
	"time"

	"h2privacy/internal/simtime"
)

// bottleneckHarness assembles n paths attached to one bottleneck and
// returns per-path, per-direction delivery timestamps.
type bottleneckHarness struct {
	sched *simtime.Scheduler
	bn    *Bottleneck
	paths []*Path
	// atServer[i] / atClient[i] are path i's delivery times.
	atServer [][]time.Duration
	atClient [][]time.Duration
}

func newBottleneckHarness(t *testing.T, n int, link LinkConfig, cfg BottleneckConfig) *bottleneckHarness {
	t.Helper()
	h := &bottleneckHarness{
		sched:    simtime.NewScheduler(),
		atServer: make([][]time.Duration, n),
		atClient: make([][]time.Duration, n),
	}
	bn, err := NewBottleneck(h.sched, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.bn = bn
	for i := 0; i < n; i++ {
		p, err := NewPath(h.sched, simtime.NewRand(int64(i+1)), PathConfig{Link: link})
		if err != nil {
			t.Fatal(err)
		}
		i := i
		p.Connect(
			func(pkt *Packet) { h.atServer[i] = append(h.atServer[i], h.sched.Now()) },
			func(pkt *Packet) { h.atClient[i] = append(h.atClient[i], h.sched.Now()) },
		)
		bn.Attach(p)
		h.paths = append(h.paths, p)
	}
	return h
}

// TestBottleneckMirrorsStandalone is the N=1 contract at the link layer:
// one flow through a bottleneck whose config mirrors the member link
// delivers every packet — jitter and duplicate draws included — at the
// exact instants the standalone point-to-point link does.
func TestBottleneckMirrorsStandalone(t *testing.T) {
	link := LinkConfig{
		BandwidthBps: 8e6, PropDelay: 2 * time.Millisecond,
		NaturalJitter: time.Millisecond, DuplicateProb: 0.2,
	}
	send := func(p *Path, sched *simtime.Scheduler) {
		for i := 0; i < 30; i++ {
			at := time.Duration(i) * 100 * time.Microsecond
			sched.At(at, func() {
				p.Send(ClientToServer, 400, nil)
				p.Send(ServerToClient, 1200, nil)
			})
		}
	}

	solo := simtime.NewScheduler()
	sp, err := NewPath(solo, simtime.NewRand(1), PathConfig{Link: link})
	if err != nil {
		t.Fatal(err)
	}
	var soloServer, soloClient []time.Duration
	sp.Connect(
		func(pkt *Packet) { soloServer = append(soloServer, solo.Now()) },
		func(pkt *Packet) { soloClient = append(soloClient, solo.Now()) },
	)
	send(sp, solo)
	solo.Run()

	h := newBottleneckHarness(t, 1, link, BottleneckConfig{BandwidthBps: link.BandwidthBps})
	send(h.paths[0], h.sched)
	h.sched.Run()

	if len(soloServer) == 0 || len(soloClient) == 0 {
		t.Fatal("standalone run delivered nothing")
	}
	for i, at := range h.atServer[0] {
		if i >= len(soloServer) || soloServer[i] != at {
			t.Fatalf("c2s delivery %d: bottleneck %v vs standalone %v", i, at, soloServer[i])
		}
	}
	for i, at := range h.atClient[0] {
		if i >= len(soloClient) || soloClient[i] != at {
			t.Fatalf("s2c delivery %d: bottleneck %v vs standalone %v", i, at, soloClient[i])
		}
	}
	if len(h.atServer[0]) != len(soloServer) || len(h.atClient[0]) != len(soloClient) {
		t.Fatalf("delivery counts differ: bottleneck %d/%d vs standalone %d/%d",
			len(h.atServer[0]), len(h.atClient[0]), len(soloServer), len(soloClient))
	}
	if st := h.bn.Stats(ClientToServer); st.Forwarded != 30 || st.DroppedQueue != 0 {
		t.Errorf("c2s agg stats %+v, want 30 forwarded, 0 dropped", st)
	}
}

// TestBottleneckFIFOHeadOfLine pins the collateral mechanism: on a FIFO
// bottleneck another flow's packet serializes behind the first flow's,
// so simultaneous sends deliver one serialization time apart.
func TestBottleneckFIFOHeadOfLine(t *testing.T) {
	link := LinkConfig{BandwidthBps: 1e9, PropDelay: time.Millisecond}
	h := newBottleneckHarness(t, 2, link, BottleneckConfig{BandwidthBps: 8e5})
	h.paths[0].Send(ClientToServer, 1000, nil)
	h.paths[1].Send(ClientToServer, 1000, nil)
	h.sched.Run()
	if len(h.atServer[0]) != 1 || len(h.atServer[1]) != 1 {
		t.Fatalf("deliveries: %d/%d, want 1 each", len(h.atServer[0]), len(h.atServer[1]))
	}
	txTime := 10 * time.Millisecond // 1000 B at 800 kbit/s
	if got := h.atServer[1][0] - h.atServer[0][0]; got != txTime {
		t.Errorf("flow 1 delivered %v after flow 0, want one serialization time (%v)", got, txTime)
	}
}

// TestBottleneckSharedQueueDrop fills the shared byte budget from one
// flow and verifies the overflow tail-drops, booked on both the
// aggregate and the dropping flow's own stats — and that admissions
// stay conserved: aggregate forwarded = sum of member-link forwarded.
func TestBottleneckSharedQueueDrop(t *testing.T) {
	link := LinkConfig{BandwidthBps: 1e9, PropDelay: time.Millisecond}
	h := newBottleneckHarness(t, 2, link, BottleneckConfig{BandwidthBps: 8e5, QueueLimit: 2500})
	for i := 0; i < 5; i++ {
		h.paths[0].Send(ClientToServer, 1000, nil)
	}
	h.paths[1].Send(ClientToServer, 1000, nil)
	h.sched.Run()
	agg := h.bn.Stats(ClientToServer)
	if agg.DroppedQueue == 0 {
		t.Fatal("overfilling the shared queue dropped nothing")
	}
	flowDrops := h.paths[0].Link(ClientToServer).Stats().DroppedQueue +
		h.paths[1].Link(ClientToServer).Stats().DroppedQueue
	if flowDrops != agg.DroppedQueue {
		t.Errorf("per-flow queue drops %d != aggregate %d", flowDrops, agg.DroppedQueue)
	}
	var fwd int
	for _, p := range h.paths {
		st := p.Link(ClientToServer).Stats()
		fwd += st.Sent - st.DroppedQueue
	}
	if agg.Forwarded != fwd {
		t.Errorf("aggregate forwarded %d != sum of member admissions %d", agg.Forwarded, fwd)
	}
	if got := len(h.atServer[0]) + len(h.atServer[1]); got != 6-agg.DroppedQueue {
		t.Errorf("delivered %d packets, want %d", got, 6-agg.DroppedQueue)
	}
}

// TestBottleneckDRRProtectsLightFlow pins the discipline difference: a
// light flow's packet stuck behind a heavy flow's backlog is served
// round-robin under DRR, strictly earlier than FIFO's send-order
// serialization would deliver it.
func TestBottleneckDRRProtectsLightFlow(t *testing.T) {
	link := LinkConfig{BandwidthBps: 1e9, PropDelay: time.Millisecond}
	lightArrival := func(disc Discipline) time.Duration {
		h := newBottleneckHarness(t, 2, link, BottleneckConfig{
			BandwidthBps: 8e5, Discipline: disc, QueueLimit: 1 << 20,
		})
		for i := 0; i < 20; i++ {
			h.paths[0].Send(ClientToServer, 1000, nil)
		}
		h.paths[1].Send(ClientToServer, 1000, nil)
		h.sched.Run()
		if len(h.atServer[1]) != 1 {
			t.Fatalf("%v: light flow delivered %d packets, want 1", disc, len(h.atServer[1]))
		}
		return h.atServer[1][0]
	}
	fifo := lightArrival(FIFO)
	drr := lightArrival(DRR)
	if drr >= fifo {
		t.Errorf("DRR served the light flow at %v, FIFO at %v; want strictly earlier under DRR", drr, fifo)
	}
}
