package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"h2privacy/internal/simtime"
)

func newTestLink(t *testing.T, cfg LinkConfig) (*simtime.Scheduler, *Link, *[]*Packet) {
	t.Helper()
	sched := simtime.NewScheduler()
	l, err := NewLink(sched, simtime.NewRand(1), ClientToServer, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []*Packet
	l.SetDeliver(func(p *Packet) { got = append(got, p) })
	return sched, l, &got
}

func TestLinkDeliversWithPropDelay(t *testing.T) {
	sched, l, got := newTestLink(t, LinkConfig{
		BandwidthBps: 8e9, // 1 GB/s: serialization negligible but nonzero
		PropDelay:    5 * time.Millisecond,
	})
	l.Send(1000, "hello")
	sched.Run()
	if len(*got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(*got))
	}
	p := (*got)[0]
	if p.Payload != "hello" || p.Size != 1000 || p.Dir != ClientToServer {
		t.Fatalf("bad packet: %+v", p)
	}
	// 1000 bytes at 8e9 bps = 1µs serialization + 5ms prop.
	want := 5*time.Millisecond + time.Microsecond
	if sched.Now() != want {
		t.Fatalf("arrival at %v, want %v", sched.Now(), want)
	}
}

func TestLinkSerializationFIFO(t *testing.T) {
	// 8 Mbps: a 1000-byte packet takes 1ms to serialize. Three packets
	// sent back-to-back must arrive 1ms apart, in order.
	sched := simtime.NewScheduler()
	l, err := NewLink(sched, simtime.NewRand(1), ClientToServer, LinkConfig{
		BandwidthBps: 8e6,
		PropDelay:    time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []time.Duration
	var order []int
	l.SetDeliver(func(p *Packet) {
		arrivals = append(arrivals, sched.Now())
		order = append(order, p.Payload.(int))
	})
	for i := 0; i < 3; i++ {
		l.Send(1000, i)
	}
	sched.Run()
	want := []time.Duration{2 * time.Millisecond, 3 * time.Millisecond, 4 * time.Millisecond}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Fatalf("arrivals = %v, want %v", arrivals, want)
		}
		if order[i] != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestLinkBandwidthChangeAffectsNewPackets(t *testing.T) {
	sched := simtime.NewScheduler()
	l, err := NewLink(sched, simtime.NewRand(1), ClientToServer, LinkConfig{
		BandwidthBps: 8e6, PropDelay: 0,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []time.Duration
	l.SetDeliver(func(p *Packet) { arrivals = append(arrivals, sched.Now()) })
	l.Send(1000, nil) // 1ms at 8Mbps
	l.SetBandwidth(8e3)
	l.Send(1000, nil) // 1s at 8kbps, queued behind the first
	sched.Run()
	if arrivals[0] != time.Millisecond {
		t.Fatalf("first arrival %v, want 1ms", arrivals[0])
	}
	if arrivals[1] != time.Millisecond+time.Second {
		t.Fatalf("second arrival %v, want 1.001s", arrivals[1])
	}
}

// TestLinkSetBandwidthRejectsNonPositive: a zero or negative rate is a
// programming error and panics with a clear message rather than being
// silently ignored.
func TestLinkSetBandwidthRejectsNonPositive(t *testing.T) {
	sched := simtime.NewScheduler()
	l, err := NewLink(sched, simtime.NewRand(1), ClientToServer, LinkConfig{
		BandwidthBps: 8e6,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, bps := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SetBandwidth(%v) did not panic", bps)
				}
			}()
			l.SetBandwidth(bps)
		}()
	}
	if l.Bandwidth() != 8e6 {
		t.Fatal("rejected SetBandwidth must leave the rate unchanged")
	}
}

func TestLinkAdversaryDelayReorders(t *testing.T) {
	sched := simtime.NewScheduler()
	l, err := NewLink(sched, simtime.NewRand(1), ClientToServer, LinkConfig{
		BandwidthBps: 8e9, PropDelay: time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Delay only packet 0 by 10ms: packet 1 must overtake it.
	l.AddProcessor(ProcessorFunc(func(now time.Duration, pkt *Packet) Verdict {
		if pkt.Payload.(int) == 0 {
			return Verdict{ExtraDelay: 10 * time.Millisecond}
		}
		return Verdict{}
	}))
	var order []int
	l.SetDeliver(func(p *Packet) { order = append(order, p.Payload.(int)) })
	l.Send(100, 0)
	l.Send(100, 1)
	sched.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 0 {
		t.Fatalf("order = %v, want [1 0] (reordered)", order)
	}
}

func TestLinkPolicyDropStopsChain(t *testing.T) {
	sched, l, got := newTestLink(t, LinkConfig{BandwidthBps: 8e6})
	var laterSaw int
	l.AddProcessor(ProcessorFunc(func(now time.Duration, pkt *Packet) Verdict {
		return Verdict{Drop: pkt.Payload.(int)%2 == 0}
	}))
	l.AddProcessor(ProcessorFunc(func(now time.Duration, pkt *Packet) Verdict {
		laterSaw++
		return Verdict{}
	}))
	for i := 0; i < 4; i++ {
		l.Send(100, i)
	}
	sched.Run()
	if len(*got) != 2 {
		t.Fatalf("delivered %d, want 2", len(*got))
	}
	if laterSaw != 2 {
		t.Fatalf("later processor saw %d packets, want 2 (drops short-circuit)", laterSaw)
	}
	st := l.Stats()
	if st.Sent != 4 || st.DroppedPolicy != 2 || st.Delivered != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLinkRandomLoss(t *testing.T) {
	sched, l, got := newTestLink(t, LinkConfig{BandwidthBps: 8e9, LossProb: 0.5})
	const n = 2000
	for i := 0; i < n; i++ {
		l.Send(100, i)
	}
	sched.Run()
	frac := float64(len(*got)) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("delivered fraction %v with LossProb 0.5", frac)
	}
	st := l.Stats()
	if st.DroppedLoss+st.Delivered != n {
		t.Fatalf("loss+delivered = %d, want %d", st.DroppedLoss+st.Delivered, n)
	}
}

func TestLinkQueueTailDrop(t *testing.T) {
	sched := simtime.NewScheduler()
	l, err := NewLink(sched, simtime.NewRand(1), ClientToServer, LinkConfig{
		BandwidthBps: 8e3, // slow: 1000B takes 1s
		QueueLimit:   2500,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	l.SetDeliver(func(p *Packet) { n++ })
	for i := 0; i < 5; i++ {
		l.Send(1000, i) // third..fifth exceed the 2500B queue
	}
	sched.Run()
	if n != 2 {
		t.Fatalf("delivered %d, want 2", n)
	}
	if l.Stats().DroppedQueue != 3 {
		t.Fatalf("queue drops = %d, want 3", l.Stats().DroppedQueue)
	}
}

func TestLinkTapSeesEverything(t *testing.T) {
	sched, l, _ := newTestLink(t, LinkConfig{BandwidthBps: 8e6})
	l.AddProcessor(ProcessorFunc(func(now time.Duration, pkt *Packet) Verdict {
		return Verdict{Drop: pkt.Payload.(int) == 1}
	}))
	var evs []PacketEvent
	l.AddTap(tapFunc(func(ev PacketEvent) { evs = append(evs, ev) }))
	l.Send(100, 0)
	l.Send(100, 1)
	sched.Run()
	if len(evs) != 2 {
		t.Fatalf("tap saw %d events, want 2", len(evs))
	}
	if evs[0].Action != ActionForwarded || evs[0].Arrival == 0 {
		t.Fatalf("first event = %+v", evs[0])
	}
	if evs[1].Action != ActionDroppedPolicy || evs[1].Arrival != 0 {
		t.Fatalf("second event = %+v", evs[1])
	}
}

type tapFunc func(PacketEvent)

func (f tapFunc) Observe(ev PacketEvent) { f(ev) }

func TestLinkConfigValidation(t *testing.T) {
	sched := simtime.NewScheduler()
	if _, err := NewLink(sched, simtime.NewRand(1), ClientToServer, LinkConfig{}, nil); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if _, err := NewLink(sched, simtime.NewRand(1), ClientToServer, LinkConfig{BandwidthBps: 1, LossProb: 1.5}, nil); err == nil {
		t.Fatal("loss prob 1.5 accepted")
	}
}

func TestLinkSendPanics(t *testing.T) {
	sched := simtime.NewScheduler()
	l, err := NewLink(sched, simtime.NewRand(1), ClientToServer, LinkConfig{BandwidthBps: 1e6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Send with no deliver handler did not panic")
			}
		}()
		l.Send(100, nil)
	}()
	l.SetDeliver(func(*Packet) {})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Send with size 0 did not panic")
			}
		}()
		l.Send(0, nil)
	}()
}

// Property: with no loss, no policy and ample queue, every packet is
// delivered exactly once and per-link byte accounting balances.
func TestLinkConservationProperty(t *testing.T) {
	f := func(sizes []uint16, seed int64) bool {
		sched := simtime.NewScheduler()
		l, err := NewLink(sched, simtime.NewRand(seed), ClientToServer, LinkConfig{
			BandwidthBps:  1e9,
			PropDelay:     time.Millisecond,
			NaturalJitter: 3 * time.Millisecond,
			QueueLimit:    1 << 30,
		}, nil)
		if err != nil {
			return false
		}
		var gotBytes int64
		var gotCount int
		l.SetDeliver(func(p *Packet) { gotBytes += int64(p.Size); gotCount++ })
		var sentBytes int64
		for _, s := range sizes {
			size := int(s)%1500 + 1
			sentBytes += int64(size)
			l.Send(size, nil)
		}
		sched.Run()
		st := l.Stats()
		return gotCount == len(sizes) && gotBytes == sentBytes &&
			st.Delivered == len(sizes) && st.BytesDelivered == sentBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkDuplication(t *testing.T) {
	sched := simtime.NewScheduler()
	l, err := NewLink(sched, simtime.NewRand(5), ClientToServer, LinkConfig{
		BandwidthBps:  1e9,
		DuplicateProb: 0.5,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	l.SetDeliver(func(*Packet) { n++ })
	const sent = 1000
	for i := 0; i < sent; i++ {
		l.Send(100, i)
	}
	sched.Run()
	st := l.Stats()
	if st.Duplicated < sent/3 || st.Duplicated > 2*sent/3 {
		t.Fatalf("duplicated %d of %d at p=0.5", st.Duplicated, sent)
	}
	if n != sent+st.Duplicated {
		t.Fatalf("delivered %d, want %d", n, sent+st.Duplicated)
	}
	if _, err := NewLink(sched, simtime.NewRand(1), ClientToServer, LinkConfig{BandwidthBps: 1, DuplicateProb: 1.5}, nil); err == nil {
		t.Fatal("bad duplicate prob accepted")
	}
}

// TestLinkDuplicateStatsAndReorderGate: a duplicated copy counts in
// Delivered AND BytesDelivered (it crossed the wire like any packet), and
// its jitter draw goes through the same ReorderProb gate as the primary —
// with the gate effectively closed, both copies arrive at the exact
// un-jittered time.
func TestLinkDuplicateStatsAndReorderGate(t *testing.T) {
	sched := simtime.NewScheduler()
	l, err := NewLink(sched, simtime.NewRand(11), ClientToServer, LinkConfig{
		BandwidthBps:  8e6, // 1 µs per byte
		PropDelay:     time.Millisecond,
		NaturalJitter: 50 * time.Millisecond,
		ReorderProb:   1e-12,   // gate essentially never opens
		DuplicateProb: 0.99999, // effectively every packet duplicated
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []time.Duration
	l.SetDeliver(func(*Packet) { arrivals = append(arrivals, sched.Now()) })
	const size, sent = 100, 50
	for i := 0; i < sent; i++ {
		l.Send(size, i)
	}
	sched.Run()
	st := l.Stats()
	if st.Duplicated < sent/2 {
		t.Fatalf("Duplicated = %d of %d at p≈1", st.Duplicated, sent)
	}
	if st.Delivered != sent+st.Duplicated {
		t.Fatalf("Delivered = %d, want %d (duplicates included)", st.Delivered, sent+st.Duplicated)
	}
	if st.BytesDelivered != int64(size*(sent+st.Duplicated)) {
		t.Fatalf("BytesDelivered = %d, want %d (duplicates included)", st.BytesDelivered, size*(sent+st.Duplicated))
	}
	// Every copy — primary or duplicate — arrives at an exact FIFO slot
	// (k·tx + prop): no copy took an ungated jitter draw.
	for i, at := range arrivals {
		slot := at - time.Millisecond
		if slot <= 0 || slot%(size*time.Microsecond) != 0 || slot > sent*size*time.Microsecond {
			t.Fatalf("arrival %d at %v off the FIFO grid (jitter leaked past the reorder gate)", i, at)
		}
	}
}

// TestRecycleReusesPacketsAndReleasesPayloads pins the recycling
// contract: with SetRecycle armed, a delivered (or dropped) packet's
// payload reaches the release hook exactly once — duplicates share one
// packet, so one release — and the struct is reused by a later Send.
func TestRecycleReusesPacketsAndReleasesPayloads(t *testing.T) {
	sched := simtime.NewScheduler()
	l, err := NewLink(sched, simtime.NewRand(7), ClientToServer, LinkConfig{BandwidthBps: 1e9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var released []any
	l.SetRecycle(func(p any) { released = append(released, p) })
	delivered := 0
	l.SetDeliver(func(p *Packet) { delivered++ })

	l.Send(100, "a")
	sched.Run()
	if delivered != 1 || len(released) != 1 || released[0] != "a" {
		t.Fatalf("delivered=%d released=%v", delivered, released)
	}
	if l.pktFree.Len() != 1 {
		t.Fatalf("free list len = %d after delivery, want 1", l.pktFree.Len())
	}

	// A middlebox drop releases immediately, without scheduling.
	l.AddProcessor(ProcessorFunc(func(time.Duration, *Packet) Verdict { return Verdict{Drop: true} }))
	l.Send(100, "b")
	if len(released) != 2 || released[1] != "b" {
		t.Fatalf("drop did not release: %v", released)
	}
	if l.pktFree.Len() != 1 {
		t.Fatalf("free list len = %d after drop, want 1 (struct recycled synchronously)", l.pktFree.Len())
	}
}

// TestRecycleDuplicateSingleRelease forces duplication and checks the
// shared packet is released once, after the second delivery.
func TestRecycleDuplicateSingleRelease(t *testing.T) {
	sched := simtime.NewScheduler()
	l, err := NewLink(sched, simtime.NewRand(7), ClientToServer,
		LinkConfig{BandwidthBps: 1e9, DuplicateProb: 0.999999}, nil)
	if err != nil {
		t.Fatal(err)
	}
	releases, delivered := 0, 0
	l.SetRecycle(func(any) { releases++ })
	l.SetDeliver(func(p *Packet) { delivered++ })
	l.Send(100, "dup")
	sched.Run()
	if delivered != 2 {
		t.Fatalf("delivered = %d, want 2 (duplicate)", delivered)
	}
	if releases != 1 {
		t.Fatalf("releases = %d, want exactly 1 for the shared packet", releases)
	}
}

// TestRecycleIdenticalOutcome runs the same jittery, lossy workload with
// and without recycling and requires identical stats and arrival times —
// recycling changes where structs live, never what the link does.
func TestRecycleIdenticalOutcome(t *testing.T) {
	run := func(recycle bool) (LinkStats, []time.Duration) {
		sched := simtime.NewScheduler()
		l, err := NewLink(sched, simtime.NewRand(99), ClientToServer, LinkConfig{
			BandwidthBps: 1e6, NaturalJitter: 3 * time.Millisecond,
			LossProb: 0.2, DuplicateProb: 0.1, QueueLimit: 4000,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if recycle {
			l.SetRecycle(nil)
		}
		var arrivals []time.Duration
		l.SetDeliver(func(p *Packet) { arrivals = append(arrivals, sched.Now()) })
		for i := 0; i < 200; i++ {
			l.Send(1000, Background{})
		}
		sched.Run()
		return l.Stats(), arrivals
	}
	s1, a1 := run(false)
	s2, a2 := run(true)
	if s1 != s2 {
		t.Fatalf("stats diverge: %+v vs %+v", s1, s2)
	}
	if len(a1) != len(a2) {
		t.Fatalf("arrival counts diverge: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("arrival %d diverges: %v vs %v", i, a1[i], a2[i])
		}
	}
}
