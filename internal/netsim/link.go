package netsim

import (
	"fmt"
	"time"

	"h2privacy/internal/check"
	"h2privacy/internal/pool"
	"h2privacy/internal/simtime"
	"h2privacy/internal/trace"
)

// LinkConfig describes one direction of the path.
type LinkConfig struct {
	// BandwidthBps is the link rate in bits per second. Must be > 0.
	BandwidthBps float64
	// PropDelay is the one-way propagation delay.
	PropDelay time.Duration
	// NaturalJitter is the maximum natural per-packet delay variation;
	// an affected packet gets an extra uniform delay in [0, NaturalJitter].
	NaturalJitter time.Duration
	// ReorderProb is the fraction of packets the natural jitter affects
	// (netem's reorder model). Zero means every packet (classic uniform
	// jitter); real FIFO paths reorder only occasionally, so baselines
	// use a small value like 0.02.
	ReorderProb float64
	// LossProb is the probability of random (non-adversarial) loss.
	LossProb float64
	// DuplicateProb is the probability a packet is delivered twice
	// (netem's duplicate knob); the copy takes an independent jitter
	// draw. Receivers and the monitor deduplicate by sequence number.
	DuplicateProb float64
	// QueueLimit is the maximum number of bytes waiting for
	// serialization before tail drop. Zero means 256 KiB.
	QueueLimit int
}

func (c *LinkConfig) validate() error {
	if c.BandwidthBps <= 0 {
		return fmt.Errorf("netsim: bandwidth must be positive, got %v", c.BandwidthBps)
	}
	if c.PropDelay < 0 {
		return fmt.Errorf("netsim: propagation delay must be non-negative, got %v", c.PropDelay)
	}
	if c.NaturalJitter < 0 {
		return fmt.Errorf("netsim: natural jitter must be non-negative, got %v", c.NaturalJitter)
	}
	if c.LossProb < 0 || c.LossProb >= 1 {
		return fmt.Errorf("netsim: loss probability must be in [0,1), got %v", c.LossProb)
	}
	if c.ReorderProb < 0 || c.ReorderProb > 1 {
		return fmt.Errorf("netsim: reorder probability must be in [0,1], got %v", c.ReorderProb)
	}
	if c.DuplicateProb < 0 || c.DuplicateProb >= 1 {
		return fmt.Errorf("netsim: duplicate probability must be in [0,1), got %v", c.DuplicateProb)
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = 256 << 10
	}
	return nil
}

// LinkStats counts packet fates on one link.
type LinkStats struct {
	Sent           int // packets offered to the link
	Delivered      int
	Duplicated     int
	DroppedLoss    int
	DroppedPolicy  int
	DroppedQueue   int
	DroppedFault   int // dropped by an injected fault (blackout / burst-loss episode)
	BytesDelivered int64
}

// Link is one unidirectional, rate-limited, lossy pipe with a middlebox in
// front of it. Packets are serialized FIFO at the current bandwidth; the
// per-packet extra delays (natural jitter plus adversary-injected delay)
// are applied in flight, after serialization, so differential delay
// reorders packets without head-of-line blocking — the same behaviour as
// netem's variable-delay qdisc, which the paper's adversary used.
type Link struct {
	sched *simtime.Scheduler
	rng   *simtime.Rand
	dir   Direction
	cfg   LinkConfig

	deliver Handler
	procs   []Processor
	taps    []Tap

	busyUntil   time.Duration
	queuedBytes int
	stats       LinkStats
	nextID      *uint64 // shared across both links of a path

	// Injected fault state (see faults.go). All three are inert at their
	// zero values and cost no RNG draws, so un-faulted trials are
	// bit-identical to builds without the fault layer.
	faultLoss float64       // burst-loss episode: overrides LossProb while > 0
	blackout  bool          // full outage: every packet dropped
	propExtra time.Duration // RTT step: added to PropDelay for new packets

	tr           *trace.Tracer
	maxDelivered uint64 // highest packet ID delivered, for reorder detection
	ctEnqueue    *trace.Counter
	ctDequeue    *trace.Counter
	ctDrop       *trace.Counter
	ctReorder    *trace.Counter

	ck    *check.Checker // nil unless invariant checks are armed
	ckDir uint8          // check.DirC2S / check.DirS2C, resolved once

	// Packet recycling (see SetRecycle). deliverEv/txDoneEv are the
	// link's delivery and queue-drain callbacks bound once as method
	// values, so the Send hot path schedules them through AtArg without
	// building a closure per packet. pktFree recycles Packet structs and
	// release hands the payload back to its owner (tcpsim's segment
	// pool) once the last scheduled reference has fired — refcounted,
	// because netem-style duplication delivers the same packet twice.
	deliverEv func(any)
	txDoneEv  func(any)
	recycle   bool
	release   func(payload any)
	pktFree   pool.FreeList[Packet]

	// Shared-bottleneck attachment (see bottleneck.go). When agg is
	// non-nil the link's own queue/serializer is replaced by the shared
	// one; everything upstream of serialization — middlebox processors,
	// blackout, loss, and the jitter/duplicate draws — stays here so the
	// per-flow RNG stream is untouched. aggQ is this link's DRR queue and
	// aggTxDoneEv its shared-queue drain callback, both bound at attach.
	agg         *Bottleneck
	aggQ        *aggQueue
	aggTxDoneEv func(any)
}

// NewLink builds a link for one direction. deliver may be set later with
// SetDeliver but must be non-nil before the first Send.
func NewLink(sched *simtime.Scheduler, rng *simtime.Rand, dir Direction, cfg LinkConfig, nextID *uint64) (*Link, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if nextID == nil {
		nextID = new(uint64)
	}
	l := &Link{sched: sched, rng: rng, dir: dir, cfg: cfg, nextID: nextID}
	// Bound once: the Send hot path schedules these through AtArg, so a
	// forwarded packet costs zero closure allocations.
	l.deliverEv = l.onDeliver
	l.txDoneEv = l.onTxDone
	return l, nil
}

// SetRecycle arms packet-struct recycling: once every scheduled
// reference to a forwarded packet has fired (or a packet is dropped at
// the middlebox), release is called with its payload — the transport
// returns segment buffers to its pool there — and the Packet struct
// itself is free-listed for the next Send. release may be nil to
// recycle only the structs. Callers (taps, processors, delivery
// handlers) must not retain *Packet or the payload past their callback
// once recycling is armed; everything in the trial object graph obeys
// that already (the capture monitor deep-copies when its packet log is
// on). Direct Link/Path users that keep packet pointers — several
// netsim tests do — simply leave recycling off.
func (l *Link) SetRecycle(release func(payload any)) {
	l.recycle = true
	l.release = release
}

// SetDeliver installs the receiving endpoint's handler.
func (l *Link) SetDeliver(h Handler) { l.deliver = h }

// AddProcessor appends a middlebox processor. Processors run in order.
func (l *Link) AddProcessor(p Processor) { l.procs = append(l.procs, p) }

// AddTap appends a passive observer.
func (l *Link) AddTap(t Tap) { l.taps = append(l.taps, t) }

// SetTracer arms per-packet tracing on the link. Counters are registered
// here, once, so the Send path only touches pre-resolved instruments.
func (l *Link) SetTracer(tr *trace.Tracer) {
	l.tr = tr
	prefix := l.dir.String() + "."
	l.ctEnqueue = tr.Counter(trace.LayerNetsim, prefix+"enqueue")
	l.ctDequeue = tr.Counter(trace.LayerNetsim, prefix+"dequeue")
	l.ctDrop = tr.Counter(trace.LayerNetsim, prefix+"drop")
	l.ctReorder = tr.Counter(trace.LayerNetsim, prefix+"reorder")
}

// SetChecker arms packet-conservation invariant checks on the link. The
// direction index is resolved once so the Send path stays allocation-free.
func (l *Link) SetChecker(ck *check.Checker) {
	l.ck = ck
	l.ckDir = check.DirC2S
	if l.dir == ServerToClient {
		l.ckDir = check.DirS2C
	}
}

// Stats returns a copy of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// Bandwidth reports the current link rate in bits per second.
func (l *Link) Bandwidth() float64 { return l.cfg.BandwidthBps }

// SetBandwidth throttles or restores the link rate. Takes effect for
// packets sent after the call (the adversary's bandwidth-limitation knob,
// §IV-C); packets already serialized or queued keep the transmission time
// computed at their send, so a rate change never reorders the FIFO.
// A non-positive rate panics: it is always a caller bug (a zero-rate link
// is a blackout, which SetBlackout models explicitly).
func (l *Link) SetBandwidth(bps float64) {
	if bps <= 0 {
		panic(fmt.Sprintf("netsim: SetBandwidth requires a positive rate, got %v", bps))
	}
	l.cfg.BandwidthBps = bps
}

// SetFaultLoss arms a burst-loss episode: while p > 0 it replaces the
// configured LossProb for new packets, and matching drops are counted as
// DroppedFault. Zero ends the episode. Negative values clamp to zero.
func (l *Link) SetFaultLoss(p float64) {
	if p < 0 {
		p = 0
	}
	l.faultLoss = p
}

// SetBlackout takes the link fully down (every packet dropped as a fault)
// or back up. In-flight packets already past the middlebox still arrive.
func (l *Link) SetBlackout(on bool) { l.blackout = on }

// SetPropDelayExtra sets the additional propagation delay an RTT-step
// fault contributes, clamped so the effective one-way delay stays
// non-negative. Applies to packets sent after the call.
func (l *Link) SetPropDelayExtra(d time.Duration) {
	if l.cfg.PropDelay+d < 0 {
		d = -l.cfg.PropDelay
	}
	l.propExtra = d
}

// Send offers a packet to the link. The packet's ID, Dir and SentAt fields
// are filled in by the link.
func (l *Link) Send(size int, payload any) {
	if l.deliver == nil {
		panic("netsim: Send on link with no deliver handler")
	}
	if size <= 0 {
		panic(fmt.Sprintf("netsim: non-positive packet size %d", size))
	}
	now := l.sched.Now()
	pkt := l.pktFree.Get() // zeroed; allocates until recycling feeds the list
	pkt.ID, pkt.Dir, pkt.Size, pkt.Payload, pkt.SentAt = *l.nextID, l.dir, size, payload, now
	*l.nextID++
	l.stats.Sent++
	l.ck.LinkOffered(l.ckDir, size)
	l.ctEnqueue.Inc()
	if l.tr.Enabled() {
		l.tr.Emit(trace.LayerNetsim, "enqueue",
			trace.Str("dir", l.dir.String()), trace.Num("id", int64(pkt.ID)), trace.Num("size", int64(size)))
	}

	// Middlebox: policy drops and injected delay.
	var extra time.Duration
	for _, p := range l.procs {
		v := p.Process(now, pkt)
		if v.Drop {
			l.stats.DroppedPolicy++
			l.ck.LinkDropped(l.ckDir, size, check.DropPolicy)
			l.traceDrop(pkt, "policy")
			l.observe(PacketEvent{Now: now, Pkt: pkt, Action: ActionDroppedPolicy})
			l.discard(pkt)
			return
		}
		extra += v.ExtraDelay
	}

	// Injected blackout: the path is down, nothing crosses.
	if l.blackout {
		l.stats.DroppedFault++
		l.ck.LinkDropped(l.ckDir, size, check.DropFault)
		l.traceDrop(pkt, "fault")
		l.observe(PacketEvent{Now: now, Pkt: pkt, Action: ActionDroppedFault})
		l.discard(pkt)
		return
	}

	// Random link loss; an active burst-loss episode overrides the base
	// rate and books its drops as faults. Either way it is one RNG draw,
	// so arming the fault layer never desynchronizes the jitter stream.
	lossProb, faultEpisode := l.cfg.LossProb, false
	if l.faultLoss > 0 {
		lossProb, faultEpisode = l.faultLoss, true
	}
	if l.rng.Bool(lossProb) {
		if faultEpisode {
			l.stats.DroppedFault++
			l.ck.LinkDropped(l.ckDir, size, check.DropFault)
			l.traceDrop(pkt, "fault")
			l.observe(PacketEvent{Now: now, Pkt: pkt, Action: ActionDroppedFault})
		} else {
			l.stats.DroppedLoss++
			l.ck.LinkDropped(l.ckDir, size, check.DropLoss)
			l.traceDrop(pkt, "loss")
			l.observe(PacketEvent{Now: now, Pkt: pkt, Action: ActionDroppedLoss})
		}
		l.discard(pkt)
		return
	}

	// With a bottleneck attached, queueing and serialization are the
	// shared link's job from here on.
	if l.agg != nil {
		l.agg.send(l, now, pkt, size, extra)
		return
	}

	// Tail drop when the serialization queue is over its byte limit.
	if l.queuedBytes+size > l.cfg.QueueLimit {
		l.dropQueue(now, pkt, size)
		return
	}

	// FIFO serialization at the current rate.
	txStart := now
	if l.busyUntil > txStart {
		txStart = l.busyUntil
	}
	txTime := time.Duration(float64(size*8) / l.cfg.BandwidthBps * float64(time.Second))
	txEnd := txStart + txTime
	l.busyUntil = txEnd
	l.queuedBytes += size
	pkt.refs = 2 // queue-drain + delivery; a duplicate adds a third
	l.sched.AtArg(txEnd, l.txDoneEv, pkt)

	arrival := txEnd + l.cfg.PropDelay + l.propExtra + l.naturalJitter() + extra
	l.ck.LinkForwarded(l.ckDir, size, false)
	l.observe(PacketEvent{Now: now, Pkt: pkt, Action: ActionForwarded, Arrival: arrival})
	l.sched.AtArg(arrival, l.deliverEv, pkt)
	// netem-style duplication: a second copy whose independent jitter draw
	// goes through the same ReorderProb gate as the primary, and whose
	// delivery updates the same stats the primary does.
	if l.rng.Bool(l.cfg.DuplicateProb) {
		dupArrival := txEnd + l.cfg.PropDelay + l.propExtra + l.naturalJitter() + extra
		l.stats.Duplicated++
		l.ck.LinkForwarded(l.ckDir, size, true)
		pkt.refs++
		l.sched.AtArg(dupArrival, l.deliverEv, pkt)
	}
}

// dropQueue books a queue tail drop (local or shared budget) on the
// link's stats, checker, trace and taps, then discards the packet.
func (l *Link) dropQueue(now time.Duration, pkt *Packet, size int) {
	l.stats.DroppedQueue++
	l.ck.LinkDropped(l.ckDir, size, check.DropQueue)
	l.traceDrop(pkt, "queue")
	l.observe(PacketEvent{Now: now, Pkt: pkt, Action: ActionDroppedQueue})
	l.discard(pkt)
}

// onTxDone fires when the packet's last bit leaves the serialization
// queue: the queued-byte budget is returned and one scheduler reference
// on the packet is dropped.
func (l *Link) onTxDone(v any) {
	pkt := v.(*Packet)
	l.queuedBytes -= pkt.Size
	l.unref(pkt)
}

// onAggTxDone is onTxDone for a bottleneck-attached link: the byte
// budget returned is the shared one.
func (l *Link) onAggTxDone(v any) {
	pkt := v.(*Packet)
	l.agg.dirs[dirIndex(l.dir)].queuedBytes -= pkt.Size
	l.unref(pkt)
}

// onDeliver fires at a packet's arrival time (primary or duplicate
// copy) and hands it to the endpoint.
func (l *Link) onDeliver(v any) {
	pkt := v.(*Packet)
	l.stats.Delivered++
	l.stats.BytesDelivered += int64(pkt.Size)
	l.ck.LinkDelivered(l.ckDir, pkt.Size)
	l.traceDequeue(pkt)
	l.deliver(pkt)
	l.unref(pkt)
}

// unref drops one scheduler reference; the last one recycles the packet
// (and its payload, through the release hook). A no-op on links without
// recycling armed.
func (l *Link) unref(pkt *Packet) {
	if !l.recycle {
		return
	}
	pkt.refs--
	if pkt.refs > 0 {
		return
	}
	if l.release != nil {
		l.release(pkt.Payload)
	}
	l.pktFree.Put(pkt)
}

// discard recycles a packet dropped at the middlebox (never scheduled,
// so no references are pending). A no-op without recycling.
func (l *Link) discard(pkt *Packet) {
	if !l.recycle {
		return
	}
	if l.release != nil {
		l.release(pkt.Payload)
	}
	l.pktFree.Put(pkt)
}

// naturalJitter draws one per-packet natural delay, honoring the netem
// reorder gate: with ReorderProb set, only that fraction of packets takes
// a jitter draw at all.
func (l *Link) naturalJitter() time.Duration {
	if l.cfg.NaturalJitter > 0 && (l.cfg.ReorderProb == 0 || l.rng.Bool(l.cfg.ReorderProb)) {
		return l.rng.Uniform(0, l.cfg.NaturalJitter)
	}
	return 0
}

func (l *Link) traceDrop(pkt *Packet, reason string) {
	l.ctDrop.Inc()
	if l.tr.Enabled() {
		l.tr.Emit(trace.LayerNetsim, "drop",
			trace.Str("dir", l.dir.String()), trace.Num("id", int64(pkt.ID)),
			trace.Num("size", int64(pkt.Size)), trace.Str("reason", reason))
	}
}

// traceDequeue records a delivery and flags packets overtaken in flight: a
// delivered ID below the link's high-water mark means differential delay
// reordered the stream (the adversary's jitter knob doing its job).
func (l *Link) traceDequeue(pkt *Packet) {
	l.ctDequeue.Inc()
	reordered := pkt.ID < l.maxDelivered
	if reordered {
		l.ctReorder.Inc()
	} else {
		l.maxDelivered = pkt.ID
	}
	if l.tr.Enabled() {
		l.tr.Emit(trace.LayerNetsim, "dequeue",
			trace.Str("dir", l.dir.String()), trace.Num("id", int64(pkt.ID)), trace.Num("size", int64(pkt.Size)))
		if reordered {
			l.tr.Emit(trace.LayerNetsim, "reorder",
				trace.Str("dir", l.dir.String()), trace.Num("id", int64(pkt.ID)), trace.Num("behind", int64(l.maxDelivered-pkt.ID)))
		}
	}
}

func (l *Link) observe(ev PacketEvent) {
	for _, t := range l.taps {
		t.Observe(ev)
	}
}
