package netsim

import (
	"fmt"
	"sort"
	"time"

	"h2privacy/internal/obs"
	"h2privacy/internal/simtime"
	"h2privacy/internal/trace"
)

// This file is the deterministic fault-injection layer: time-scripted
// per-link fault events — Gilbert–Elliott burst-loss episodes, bandwidth
// flaps, full blackouts, RTT step changes, and a middlebox restart that
// wipes the adversary's volatile knob state — composed into named
// Scenarios. Everything is driven by the trial's scheduler and a forked
// seed stream, so a scenario's entire fault timeline is reproducible from
// (seed, scenario name): episode lengths come from the injector's own RNG
// fork and transition times from virtual time, never from the wall clock.
// A trial without a scenario takes no extra RNG draws and schedules no
// events, so fault support changes nothing for existing seeds.

// KnobWiper is the middlebox-resident state a FaultMboxRestart wipes: the
// adversary.Controller implements it. The wipe models a gateway qdisc
// restart — volatile knob state (jitter schedules, drop windows) is lost,
// while the passive monitor (a separate capture box) keeps its stream
// position.
type KnobWiper interface {
	WipeKnobs()
}

// FaultTransition is one entry of the injector's fault log.
type FaultTransition struct {
	At     time.Duration
	Kind   string // burst-loss | bandwidth | blackout | rtt-step | mbox-restart
	Detail string
}

// Injector schedules fault events against one path. Build it with
// NewInjector, optionally attach a KnobWiper / tracer / metrics registry,
// then either arm a named Scenario or call the Schedule* primitives
// directly. All primitives may be composed; each owns an RNG fork so their
// draws never perturb each other.
type Injector struct {
	sched *simtime.Scheduler
	rng   *simtime.Rand
	path  *Path
	wiper KnobWiper

	log []FaultTransition

	tr           *trace.Tracer
	mTransitions *obs.CounterVec
}

// NewInjector builds a fault injector over the path. rng should be a fork
// of the trial's seed stream dedicated to fault timing.
func NewInjector(sched *simtime.Scheduler, rng *simtime.Rand, path *Path) *Injector {
	if sched == nil || rng == nil || path == nil {
		panic("netsim: NewInjector requires a scheduler, rng and path")
	}
	return &Injector{sched: sched, rng: rng, path: path}
}

// SetWiper installs the knob-state target of ScheduleMboxRestart.
func (in *Injector) SetWiper(w KnobWiper) { in.wiper = w }

// SetTracer arms per-transition trace events (LayerNetsim, kind "fault").
func (in *Injector) SetTracer(tr *trace.Tracer) { in.tr = tr }

// SetMetrics arms a per-kind fault-transition counter in the registry.
func (in *Injector) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	in.mTransitions = reg.CounterVec("h2privacy_fault_transitions_total",
		"Fault-injection transitions applied to the path, by fault kind.", "kind")
}

// Log returns the fault transitions applied so far, in virtual-time order.
func (in *Injector) Log() []FaultTransition { return in.log }

// transition records, traces and counts one fault state change.
func (in *Injector) transition(kind, detail string) {
	in.log = append(in.log, FaultTransition{At: in.sched.Now(), Kind: kind, Detail: detail})
	in.mTransitions.With(kind).Inc()
	if in.tr.Enabled() {
		in.tr.Emit(trace.LayerNetsim, "fault",
			trace.Str("kind", kind), trace.Str("detail", detail))
	}
}

// ScheduleBurstLoss runs a Gilbert–Elliott burst-loss process on both
// links from start until `until`: alternating bad episodes (loss
// probability pBad, mean length meanBad) and good episodes (base loss,
// mean length meanGood), episode lengths drawn exponentially from the
// injector's own fork. The process starts in the bad state at `start` and
// always leaves the link clean at `until`.
func (in *Injector) ScheduleBurstLoss(start, until time.Duration, pBad float64, meanBad, meanGood time.Duration) {
	if until <= start || pBad <= 0 || meanBad <= 0 || meanGood <= 0 {
		panic("netsim: ScheduleBurstLoss requires until > start, pBad > 0 and positive episode means")
	}
	rng := in.rng.Fork()
	var step func(bad bool)
	step = func(bad bool) {
		now := in.sched.Now()
		if now >= until {
			in.path.SetFaultLoss(0)
			in.transition("burst-loss", "ended")
			return
		}
		var mean time.Duration
		if bad {
			in.path.SetFaultLoss(pBad)
			in.transition("burst-loss", fmt.Sprintf("bad p=%.2f", pBad))
			mean = meanBad
		} else {
			in.path.SetFaultLoss(0)
			in.transition("burst-loss", "good")
			mean = meanGood
		}
		next := now + rng.Exponential(mean)
		if next > until {
			next = until
		}
		in.sched.At(next, func() { step(!bad) })
	}
	in.sched.At(start, func() { step(true) })
}

// ScheduleBandwidthFlap oscillates both links between their configured
// rate and lowBps, flipping every halfPeriod from start until `until`,
// then restores the rates captured at arm time. A flap fights any
// throttle the adversary applies in between — deliberately: faults do not
// coordinate with the attack.
func (in *Injector) ScheduleBandwidthFlap(start, until, halfPeriod time.Duration, lowBps float64) {
	if until <= start || halfPeriod <= 0 || lowBps <= 0 {
		panic("netsim: ScheduleBandwidthFlap requires until > start, halfPeriod > 0 and lowBps > 0")
	}
	origC2S := in.path.Link(ClientToServer).Bandwidth()
	origS2C := in.path.Link(ServerToClient).Bandwidth()
	restore := func() {
		in.path.Link(ClientToServer).SetBandwidth(origC2S)
		in.path.Link(ServerToClient).SetBandwidth(origS2C)
	}
	var flip func(low bool)
	flip = func(low bool) {
		now := in.sched.Now()
		if now >= until {
			restore()
			in.transition("bandwidth", "restored")
			return
		}
		if low {
			in.path.SetBandwidth(lowBps)
			in.transition("bandwidth", fmt.Sprintf("low %.0f Mbps", lowBps/1e6))
		} else {
			restore()
			in.transition("bandwidth", "high")
		}
		next := now + halfPeriod
		if next > until {
			next = until
		}
		in.sched.At(next, func() { flip(!low) })
	}
	in.sched.At(start, func() { flip(true) })
}

// ScheduleBlackout takes the whole path down for dur starting at `at`:
// every packet offered to either link is dropped as a fault.
func (in *Injector) ScheduleBlackout(at, dur time.Duration) {
	if dur <= 0 {
		panic("netsim: ScheduleBlackout requires a positive duration")
	}
	in.sched.At(at, func() {
		in.path.SetBlackout(true)
		in.transition("blackout", fmt.Sprintf("down %v", dur))
	})
	in.sched.At(at+dur, func() {
		in.path.SetBlackout(false)
		in.transition("blackout", "up")
	})
}

// ScheduleRTTStep changes both links' extra propagation delay to delta at
// `at` (an RTT step of 2·delta). A second call with delta 0 steps back.
// Packets already in flight keep their scheduled arrival.
func (in *Injector) ScheduleRTTStep(at, delta time.Duration) {
	in.sched.At(at, func() {
		in.path.SetPropDelayExtra(delta)
		in.transition("rtt-step", fmt.Sprintf("extra %v", delta))
	})
}

// ScheduleMboxRestart wipes the attached KnobWiper's volatile knob state
// at `at` — the compromised gateway's qdisc restarting mid-attack. No-op
// when no wiper is attached (the transition is still logged).
func (in *Injector) ScheduleMboxRestart(at time.Duration) {
	in.sched.At(at, func() {
		if in.wiper != nil {
			in.wiper.WipeKnobs()
		}
		in.transition("mbox-restart", "knobs wiped")
	})
}

// Scenario is a named, composable fault schedule.
type Scenario struct {
	Name string
	Desc string
	arm  func(in *Injector)
}

// Arm schedules the scenario's fault events on the injector.
func (s Scenario) Arm(in *Injector) { s.arm(in) }

// scenarios is the catalog. Times are laid against the §V attack timeline
// (trigger ≈ 0.5–1.5 s, drop window ≈ 5 s) so every scenario perturbs the
// attack's critical phases.
var scenarios = map[string]Scenario{
	"bursty-loss": {
		Name: "bursty-loss",
		Desc: "Gilbert–Elliott burst loss (bad p=0.75, ~700ms episodes) for the first 12s",
		arm: func(in *Injector) {
			in.ScheduleBurstLoss(100*time.Millisecond, 12*time.Second, 0.75,
				700*time.Millisecond, 700*time.Millisecond)
		},
	},
	"bw-flap": {
		Name: "bw-flap",
		Desc: "bandwidth oscillates between the configured rate and 40 Mbps every 1s for 25s",
		arm: func(in *Injector) {
			in.ScheduleBandwidthFlap(500*time.Millisecond, 25*time.Second, time.Second, 40e6)
		},
	},
	"blackout-2s": {
		Name: "blackout-2s",
		Desc: "full link blackout from t=2s to t=4s",
		arm: func(in *Injector) {
			in.ScheduleBlackout(2*time.Second, 2*time.Second)
		},
	},
	"rtt-step": {
		Name: "rtt-step",
		Desc: "one-way delay steps up by 40ms at t=1s, back at t=12s",
		arm: func(in *Injector) {
			in.ScheduleRTTStep(time.Second, 40*time.Millisecond)
			in.ScheduleRTTStep(12*time.Second, 0)
		},
	},
	"mbox-restart": {
		Name: "mbox-restart",
		Desc: "middlebox restarts at t=3s: 300ms outage and all adversary knob state wiped",
		arm: func(in *Injector) {
			in.ScheduleBlackout(3*time.Second, 300*time.Millisecond)
			in.ScheduleMboxRestart(3 * time.Second)
		},
	},
	"storm": {
		Name: "storm",
		Desc: "compound: bursty loss + bandwidth flaps + an RTT step, all at once",
		arm: func(in *Injector) {
			in.ScheduleBurstLoss(100*time.Millisecond, 30*time.Second, 0.4,
				300*time.Millisecond, 2*time.Second)
			in.ScheduleBandwidthFlap(time.Second, 20*time.Second, 2*time.Second, 60e6)
			in.ScheduleRTTStep(1500*time.Millisecond, 25*time.Millisecond)
		},
	},
}

// LookupScenario returns the named scenario.
func LookupScenario(name string) (Scenario, bool) {
	s, ok := scenarios[name]
	return s, ok
}

// ScenarioNames lists the catalog in sorted order.
func ScenarioNames() []string {
	names := make([]string, 0, len(scenarios))
	for name := range scenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Scenarios returns the catalog in name order.
func Scenarios() []Scenario {
	out := make([]Scenario, 0, len(scenarios))
	for _, name := range ScenarioNames() {
		out = append(out, scenarios[name])
	}
	return out
}
