package netsim

import (
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"h2privacy/internal/simtime"
)

// faultTestPath builds a connected path with per-direction delivery
// counters and a fresh injector over it.
func faultTestPath(t *testing.T, cfg LinkConfig) (*simtime.Scheduler, *Path, *Injector, *int) {
	t.Helper()
	sched := simtime.NewScheduler()
	rng := simtime.NewRand(7)
	if cfg.BandwidthBps == 0 {
		cfg.BandwidthBps = 1e9
	}
	path, err := NewPath(sched, rng.Fork(), PathConfig{Link: cfg})
	if err != nil {
		t.Fatal(err)
	}
	var delivered int
	path.Connect(func(*Packet) { delivered++ }, func(*Packet) { delivered++ })
	in := NewInjector(sched, rng.Fork(), path)
	return sched, path, in, &delivered
}

func TestBlackoutDropsAsFault(t *testing.T) {
	sched, path, in, delivered := faultTestPath(t, LinkConfig{})
	in.ScheduleBlackout(10*time.Millisecond, 20*time.Millisecond)
	for _, at := range []time.Duration{5, 15, 25, 35} { // ms: up, down, down, up
		at := at * time.Millisecond
		sched.At(at, func() { path.Send(ClientToServer, 100, nil) })
	}
	sched.Run()
	if *delivered != 2 {
		t.Fatalf("delivered %d packets, want 2 (outside the blackout)", *delivered)
	}
	st := path.Link(ClientToServer).Stats()
	if st.DroppedFault != 2 {
		t.Fatalf("DroppedFault = %d, want 2", st.DroppedFault)
	}
	if st.DroppedLoss != 0 {
		t.Fatalf("blackout drops booked as random loss: %d", st.DroppedLoss)
	}
	log := in.Log()
	if len(log) != 2 || log[0].Kind != "blackout" || log[1].Kind != "blackout" {
		t.Fatalf("fault log = %+v", log)
	}
}

// TestBurstLossDeterministicPerSeed: the whole episode timeline is a pure
// function of the injector's seed — same seed, same transitions; the
// process always leaves the link clean at its end.
func TestBurstLossDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []FaultTransition {
		sched := simtime.NewScheduler()
		path, err := NewPath(sched, simtime.NewRand(1), PathConfig{Link: LinkConfig{BandwidthBps: 1e9}})
		if err != nil {
			t.Fatal(err)
		}
		path.Connect(func(*Packet) {}, func(*Packet) {})
		in := NewInjector(sched, simtime.NewRand(seed), path)
		in.ScheduleBurstLoss(0, 10*time.Second, 0.5, 200*time.Millisecond, 800*time.Millisecond)
		sched.Run()
		return in.Log()
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different fault timelines:\n%+v\n%+v", a, b)
	}
	if len(a) < 4 {
		t.Fatalf("expected several episodes over 10s, got %d transitions", len(a))
	}
	if last := a[len(a)-1]; last.Kind != "burst-loss" || last.Detail != "ended" {
		t.Fatalf("process did not end clean: %+v", last)
	}
	c := run(43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical episode timelines")
	}
}

func TestRTTStepShiftsArrival(t *testing.T) {
	sched, path, in, _ := faultTestPath(t, LinkConfig{PropDelay: 10 * time.Millisecond})
	in.ScheduleRTTStep(50*time.Millisecond, 40*time.Millisecond)
	in.ScheduleRTTStep(150*time.Millisecond, 0)
	var arrivals []time.Duration
	path.Connect(func(*Packet) { arrivals = append(arrivals, sched.Now()) }, func(*Packet) {})
	for _, at := range []time.Duration{0, 100, 200} { // ms: before, during, after
		at := at * time.Millisecond
		sched.At(at, func() { path.Send(ClientToServer, 1, nil) })
	}
	sched.Run()
	const tx = 8 * time.Nanosecond // 1 byte at 1 Gbps
	want := []time.Duration{10*time.Millisecond + tx, 150*time.Millisecond + tx, 210*time.Millisecond + tx}
	if !reflect.DeepEqual(arrivals, want) {
		t.Fatalf("arrivals = %v, want %v", arrivals, want)
	}
}

func TestBandwidthFlapAppliesAndRestores(t *testing.T) {
	sched, path, in, _ := faultTestPath(t, LinkConfig{BandwidthBps: 100e6})
	in.ScheduleBandwidthFlap(time.Second, 4*time.Second, time.Second, 10e6)
	link := path.Link(ServerToClient)
	var during, after float64
	sched.At(1500*time.Millisecond, func() { during = link.Bandwidth() })
	sched.At(5*time.Second, func() { after = link.Bandwidth() })
	sched.Run()
	if during != 10e6 {
		t.Fatalf("bandwidth during low flap = %v, want 10e6", during)
	}
	if after != 100e6 {
		t.Fatalf("bandwidth after flap window = %v, want restored 100e6", after)
	}
}

type recordingWiper struct{ wipes []time.Duration }

func (w *recordingWiper) WipeKnobs() { w.wipes = append(w.wipes, -1) }

func TestMboxRestartWipesKnobs(t *testing.T) {
	sched, _, in, _ := faultTestPath(t, LinkConfig{})
	w := &recordingWiper{}
	in.SetWiper(w)
	in.ScheduleMboxRestart(3 * time.Second)
	sched.Run()
	if len(w.wipes) != 1 {
		t.Fatalf("wiper called %d times, want 1", len(w.wipes))
	}
	if len(in.Log()) != 1 || in.Log()[0].Kind != "mbox-restart" {
		t.Fatalf("fault log = %+v", in.Log())
	}

	// No wiper attached: still logged, no panic.
	sched2, _, in2, _ := faultTestPath(t, LinkConfig{})
	in2.ScheduleMboxRestart(time.Second)
	sched2.Run()
	if len(in2.Log()) != 1 {
		t.Fatalf("wiperless restart not logged: %+v", in2.Log())
	}
}

func TestScenarioCatalog(t *testing.T) {
	names := ScenarioNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("ScenarioNames not sorted: %v", names)
	}
	want := []string{"blackout-2s", "bursty-loss", "bw-flap", "mbox-restart", "rtt-step", "storm"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("catalog = %v, want %v", names, want)
	}
	for i, sc := range Scenarios() {
		if sc.Name != names[i] {
			t.Fatalf("Scenarios()[%d] = %q, want %q", i, sc.Name, names[i])
		}
		if sc.Desc == "" || sc.arm == nil {
			t.Fatalf("scenario %q incomplete", sc.Name)
		}
	}
	if _, ok := LookupScenario("bursty-loss"); !ok {
		t.Fatal("bursty-loss not found")
	}
	if _, ok := LookupScenario("nope"); ok {
		t.Fatal("unknown scenario found")
	}
}

// TestScenariosArmWithoutFiring: arming any catalog scenario schedules its
// events but executes nothing at t=0 — the fault layer stays pure setup.
func TestScenariosArmWithoutFiring(t *testing.T) {
	for _, sc := range Scenarios() {
		_, _, in, _ := faultTestPath(t, LinkConfig{})
		sc.Arm(in)
		if len(in.Log()) != 0 {
			t.Fatalf("scenario %q fired transitions at arm time: %+v", sc.Name, in.Log())
		}
	}
}

func TestFaultArgumentPanics(t *testing.T) {
	_, _, in, _ := faultTestPath(t, LinkConfig{})
	cases := map[string]func(){
		"burst-loss until<=start": func() { in.ScheduleBurstLoss(time.Second, time.Second, 0.5, 1, 1) },
		"burst-loss pBad<=0":      func() { in.ScheduleBurstLoss(0, time.Second, 0, 1, 1) },
		"burst-loss mean<=0":      func() { in.ScheduleBurstLoss(0, time.Second, 0.5, 0, 1) },
		"bw-flap until<=start":    func() { in.ScheduleBandwidthFlap(time.Second, time.Second, 1, 1) },
		"bw-flap lowBps<=0":       func() { in.ScheduleBandwidthFlap(0, time.Second, 1, 0) },
		"blackout dur<=0":         func() { in.ScheduleBlackout(0, 0) },
		"injector nil path":       func() { NewInjector(simtime.NewScheduler(), simtime.NewRand(1), nil) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s: no panic", name)
				}
				if msg, ok := r.(string); !ok || !strings.HasPrefix(msg, "netsim: ") {
					t.Fatalf("%s: panic %v lacks netsim: prefix", name, r)
				}
			}()
			fn()
		}()
	}
}
