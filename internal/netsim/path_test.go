package netsim

import (
	"testing"
	"time"

	"h2privacy/internal/simtime"
)

func newTestPath(t *testing.T) (*simtime.Scheduler, *Path, *[]*Packet, *[]*Packet) {
	t.Helper()
	sched := simtime.NewScheduler()
	p, err := NewPath(sched, simtime.NewRand(1), PathConfig{
		Link: LinkConfig{BandwidthBps: 1e9, PropDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	var atServer, atClient []*Packet
	p.Connect(
		func(pkt *Packet) { atServer = append(atServer, pkt) },
		func(pkt *Packet) { atClient = append(atClient, pkt) },
	)
	return sched, p, &atServer, &atClient
}

func TestPathBothDirections(t *testing.T) {
	sched, p, atServer, atClient := newTestPath(t)
	p.Send(ClientToServer, 100, "req")
	p.Send(ServerToClient, 200, "resp")
	sched.Run()
	if len(*atServer) != 1 || (*atServer)[0].Payload != "req" {
		t.Fatalf("server got %v", *atServer)
	}
	if len(*atClient) != 1 || (*atClient)[0].Payload != "resp" {
		t.Fatalf("client got %v", *atClient)
	}
}

func TestPathSharedIDSpace(t *testing.T) {
	sched, p, atServer, atClient := newTestPath(t)
	p.Send(ClientToServer, 100, nil)
	p.Send(ServerToClient, 100, nil)
	p.Send(ClientToServer, 100, nil)
	sched.Run()
	ids := map[uint64]bool{}
	for _, pk := range append(append([]*Packet{}, *atServer...), *atClient...) {
		if ids[pk.ID] {
			t.Fatalf("duplicate packet ID %d across directions", pk.ID)
		}
		ids[pk.ID] = true
	}
	if len(ids) != 3 {
		t.Fatalf("got %d distinct IDs, want 3", len(ids))
	}
}

func TestPathProcessorSeesBothDirections(t *testing.T) {
	sched, p, _, _ := newTestPath(t)
	dirs := map[Direction]int{}
	p.AddProcessor(ProcessorFunc(func(now time.Duration, pkt *Packet) Verdict {
		dirs[pkt.Dir]++
		return Verdict{}
	}))
	p.Send(ClientToServer, 100, nil)
	p.Send(ServerToClient, 100, nil)
	sched.Run()
	if dirs[ClientToServer] != 1 || dirs[ServerToClient] != 1 {
		t.Fatalf("processor saw %v", dirs)
	}
}

func TestPathThrottleBothDirections(t *testing.T) {
	_, p, _, _ := newTestPath(t)
	p.SetBandwidth(8e6)
	if p.Link(ClientToServer).Bandwidth() != 8e6 || p.Link(ServerToClient).Bandwidth() != 8e6 {
		t.Fatal("SetBandwidth did not apply to both links")
	}
}

func TestPathAsymmetric(t *testing.T) {
	sched := simtime.NewScheduler()
	p, err := NewPath(sched, simtime.NewRand(1), PathConfig{
		Link:       LinkConfig{BandwidthBps: 1e9},
		Asymmetric: &LinkConfig{BandwidthBps: 5e5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Link(ServerToClient).Bandwidth() != 5e5 {
		t.Fatalf("return bandwidth = %v, want 5e5", p.Link(ServerToClient).Bandwidth())
	}
}

func TestPathValidation(t *testing.T) {
	if _, err := NewPath(nil, nil, PathConfig{Link: LinkConfig{BandwidthBps: 1}}); err == nil {
		t.Fatal("nil scheduler accepted")
	}
	sched := simtime.NewScheduler()
	if _, err := NewPath(sched, simtime.NewRand(1), PathConfig{}); err == nil {
		t.Fatal("zero link config accepted")
	}
}

func TestDirectionHelpers(t *testing.T) {
	if ClientToServer.Reverse() != ServerToClient || ServerToClient.Reverse() != ClientToServer {
		t.Fatal("Reverse broken")
	}
	if ClientToServer.String() != "c->s" || ServerToClient.String() != "s->c" || Direction(0).String() != "dir?" {
		t.Fatal("Direction.String broken")
	}
	for a, s := range map[Action]string{
		ActionForwarded: "fwd", ActionDroppedLoss: "drop-loss",
		ActionDroppedPolicy: "drop-policy", ActionDroppedQueue: "drop-queue",
		Action(0): "action?",
	} {
		if a.String() != s {
			t.Fatalf("Action(%d).String() = %q, want %q", a, a.String(), s)
		}
	}
}

func TestCrossTrafficConsumesBandwidth(t *testing.T) {
	sched := simtime.NewScheduler()
	rng := simtime.NewRand(1)
	p, err := NewPath(sched, rng.Fork(), PathConfig{
		Link: LinkConfig{BandwidthBps: 10e6, PropDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	var fgArrivals []time.Duration
	p.Connect(
		func(pkt *Packet) {
			if _, bg := pkt.Payload.(Background); !bg {
				fgArrivals = append(fgArrivals, sched.Now())
			}
		},
		func(*Packet) {},
	)
	// Saturating background load on a 10 Mbps link.
	ct := NewCrossTraffic(sched, rng.Fork(), p, 9e6, 1200)
	ct.Start()
	sched.At(50*time.Millisecond, func() { p.Send(ClientToServer, 1200, "fg") })
	sched.At(300*time.Millisecond, ct.Stop)
	sched.RunUntil(2 * time.Second)
	if ct.Sent() < 100 {
		t.Fatalf("cross traffic sent only %d packets", ct.Sent())
	}
	if len(fgArrivals) != 1 {
		t.Fatalf("foreground packets = %d", len(fgArrivals))
	}
	// The foreground packet queued behind background packets: its
	// one-way latency must exceed the unloaded 1.96ms.
	latency := fgArrivals[0] - 50*time.Millisecond
	if latency <= 1960*time.Microsecond {
		t.Fatalf("foreground latency %v shows no queueing (unloaded = 1.96ms)", latency)
	}
}

func TestCrossTrafficZeroRateIsNoop(t *testing.T) {
	sched := simtime.NewScheduler()
	rng := simtime.NewRand(1)
	p, err := NewPath(sched, rng, PathConfig{Link: LinkConfig{BandwidthBps: 1e9}})
	if err != nil {
		t.Fatal(err)
	}
	p.Connect(func(*Packet) {}, func(*Packet) {})
	ct := NewCrossTraffic(sched, rng, p, 0, 0)
	ct.Start()
	sched.Run()
	if ct.Sent() != 0 {
		t.Fatalf("zero-rate generator sent %d", ct.Sent())
	}
}
