package netsim

import (
	"fmt"
	"time"

	"h2privacy/internal/check"
	"h2privacy/internal/simtime"
	"h2privacy/internal/trace"
)

// PathConfig describes the full client↔server path. The same physical
// medium carries both directions, so one config covers both links; use
// Asymmetric to override the return direction.
type PathConfig struct {
	Link LinkConfig
	// Asymmetric, when non-nil, configures the server→client link
	// separately (e.g. an asymmetric access link).
	Asymmetric *LinkConfig
	// Tracer, when non-nil, arms per-packet tracing on both links.
	Tracer *trace.Tracer
	// Check, when non-nil, arms packet-conservation invariant checks on
	// both links (see internal/check).
	Check *check.Checker
}

// Path is the bidirectional client↔server connection through the
// middlebox: a client→server link and a server→client link that share a
// packet-ID space, plus convenience methods that apply adversary knobs to
// both directions at once (the paper throttles "both incoming and outgoing
// packets", §IV-C).
type Path struct {
	c2s, s2c *Link
}

// NewPath builds a path over the given scheduler. Each link gets its own
// forked RNG so loss/jitter draws in one direction do not perturb the
// other.
func NewPath(sched *simtime.Scheduler, rng *simtime.Rand, cfg PathConfig) (*Path, error) {
	if sched == nil || rng == nil {
		return nil, fmt.Errorf("netsim: NewPath requires a scheduler and rng")
	}
	retCfg := cfg.Link
	if cfg.Asymmetric != nil {
		retCfg = *cfg.Asymmetric
	}
	nextID := new(uint64)
	c2s, err := NewLink(sched, rng.Fork(), ClientToServer, cfg.Link, nextID)
	if err != nil {
		return nil, fmt.Errorf("netsim: client→server link: %w", err)
	}
	s2c, err := NewLink(sched, rng.Fork(), ServerToClient, retCfg, nextID)
	if err != nil {
		return nil, fmt.Errorf("netsim: server→client link: %w", err)
	}
	if cfg.Tracer.Enabled() {
		c2s.SetTracer(cfg.Tracer)
		s2c.SetTracer(cfg.Tracer)
	}
	if cfg.Check.Enabled() {
		c2s.SetChecker(cfg.Check)
		s2c.SetChecker(cfg.Check)
	}
	return &Path{c2s: c2s, s2c: s2c}, nil
}

// Connect installs the two endpoints' delivery handlers: toServer receives
// client→server packets, toClient receives server→client packets.
func (p *Path) Connect(toServer, toClient Handler) {
	p.c2s.SetDeliver(toServer)
	p.s2c.SetDeliver(toClient)
}

// Link returns the link carrying the given direction.
func (p *Path) Link(dir Direction) *Link {
	if dir == ClientToServer {
		return p.c2s
	}
	return p.s2c
}

// Send transmits a packet in the given direction.
func (p *Path) Send(dir Direction, size int, payload any) {
	p.Link(dir).Send(size, payload)
}

// AddProcessor installs a middlebox processor on both directions. The
// processor can discriminate by pkt.Dir.
func (p *Path) AddProcessor(proc Processor) {
	p.c2s.AddProcessor(proc)
	p.s2c.AddProcessor(proc)
}

// AddTap installs a passive observer on both directions.
func (p *Path) AddTap(t Tap) {
	p.c2s.AddTap(t)
	p.s2c.AddTap(t)
}

// SetRecycle arms packet recycling on both links (see Link.SetRecycle):
// delivered or dropped packets hand their payload to release and return
// their structs to per-link free lists. The transport layer installs
// this when a trial arena is armed; consumers must then not retain
// packets or payloads past their callbacks.
func (p *Path) SetRecycle(release func(payload any)) {
	p.c2s.SetRecycle(release)
	p.s2c.SetRecycle(release)
}

// SetBandwidth throttles both directions to the given rate in bits per
// second (the adversary's §IV-C knob).
func (p *Path) SetBandwidth(bps float64) {
	p.c2s.SetBandwidth(bps)
	p.s2c.SetBandwidth(bps)
}

// SetFaultLoss applies a fault-injected loss probability to both
// directions; 0 restores the configured base loss (see faults.go).
func (p *Path) SetFaultLoss(prob float64) {
	p.c2s.SetFaultLoss(prob)
	p.s2c.SetFaultLoss(prob)
}

// SetBlackout takes both directions down (or back up): while on, every
// offered packet is dropped as a fault.
func (p *Path) SetBlackout(on bool) {
	p.c2s.SetBlackout(on)
	p.s2c.SetBlackout(on)
}

// SetPropDelayExtra adds a fault-injected delay step to both directions'
// propagation delay for newly sent packets (an RTT step of 2·d).
func (p *Path) SetPropDelayExtra(d time.Duration) {
	p.c2s.SetPropDelayExtra(d)
	p.s2c.SetPropDelayExtra(d)
}
