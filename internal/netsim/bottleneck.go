package netsim

import (
	"fmt"
	"time"

	"h2privacy/internal/pool"
	"h2privacy/internal/simtime"
)

// Discipline selects the shared bottleneck's queueing model.
type Discipline int

const (
	// FIFO serializes every attached flow's packets through one shared
	// transmitter in send order: a slow (throttled) flow's packet holds the
	// transmitter for its whole serialization time, so it head-of-line
	// blocks everyone behind it — the collateral-damage mechanism a real
	// middlebox on an aggregation link exhibits.
	FIFO Discipline = iota
	// DRR is a deficit-round-robin fair queue (per-flow queues, byte
	// quantum): backlogged flows share the transmitter round-robin, so one
	// flow's backlog cannot starve the rest. The adversary's per-flow
	// interference still lands on its targets; the collateral path through
	// the queue is what changes.
	DRR
)

func (d Discipline) String() string {
	if d == DRR {
		return "drr"
	}
	return "fifo"
}

// BottleneckConfig describes the shared aggregation link all fleet flows
// serialize through (one instance covers both directions).
type BottleneckConfig struct {
	// BandwidthBps is the aggregate rate in bits per second. Must be > 0.
	// A packet serializes at min(member link rate, aggregate rate), so a
	// per-flow throttle slows that flow on the shared transmitter too.
	BandwidthBps float64
	// QueueLimit is the shared per-direction byte budget; packets beyond
	// it tail-drop (booked on both the flow's LinkStats and AggStats).
	// Zero means 256 KiB — the same default a standalone link uses, so a
	// one-flow bottleneck mirrors it exactly.
	QueueLimit int
	// Discipline selects FIFO (default) or DRR.
	Discipline Discipline
	// Quantum is the DRR byte quantum per round. Zero means 1500.
	Quantum int
}

func (c *BottleneckConfig) validate() error {
	if c.BandwidthBps <= 0 {
		return fmt.Errorf("netsim: bottleneck bandwidth must be positive, got %v", c.BandwidthBps)
	}
	if c.QueueLimit < 0 {
		return fmt.Errorf("netsim: bottleneck queue limit must be non-negative, got %d", c.QueueLimit)
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = 256 << 10
	}
	if c.Quantum <= 0 {
		c.Quantum = 1500
	}
	return nil
}

// AggStats counts packet fates at the shared bottleneck, one direction.
// Forwarded/Bytes tally admissions to the shared serializer, so at any
// instant they equal the sum of the member links' forwarded counters —
// the aggregate-conservation invariant check.AggStatsFinal pins.
type AggStats struct {
	Forwarded    int
	Bytes        int64
	DroppedQueue int
}

// Bottleneck is the shared aggregation link of a fleet topology: every
// attached path's packets serialize through one transmitter per direction
// (FIFO or DRR), drawing on one shared queue byte budget. It performs no
// RNG draws of its own — loss, jitter and duplication stay on the member
// links, in the exact order a standalone link draws them — so attaching a
// bottleneck whose config mirrors the link's leaves a single flow
// bit-identical to the point-to-point topology.
type Bottleneck struct {
	sched *simtime.Scheduler
	cfg   BottleneckConfig
	dirs  [2]aggDir

	svcDoneEv func(any)
	entryFree pool.FreeList[aggEntry]
}

type aggDir struct {
	busyUntil   time.Duration
	queuedBytes int
	stats       AggStats

	// DRR state: queues in attach order (= fleet flow order, so service
	// order is deterministic), active is the round-robin backlog list.
	queues  []*aggQueue
	active  []*aggQueue
	serving bool
}

type aggQueue struct {
	link    *Link
	entries []*aggEntry
	deficit int
	active  bool
}

// aggEntry is one DRR-queued packet: the delays drawn at Send (natural
// jitter, adversary extra, duplicate copy) ride along so admission
// consumes the same RNG stream FIFO and standalone links do.
type aggEntry struct {
	pkt      *Packet
	link     *Link
	size     int
	delay    time.Duration // post-serialization delay of the primary copy
	dupDelay time.Duration
	dup      bool
}

// NewBottleneck builds a shared bottleneck over the scheduler.
func NewBottleneck(sched *simtime.Scheduler, cfg BottleneckConfig) (*Bottleneck, error) {
	if sched == nil {
		return nil, fmt.Errorf("netsim: NewBottleneck requires a scheduler")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	b := &Bottleneck{sched: sched, cfg: cfg}
	b.svcDoneEv = b.onServiceDone
	return b, nil
}

// Config returns the validated configuration.
func (b *Bottleneck) Config() BottleneckConfig { return b.cfg }

// Stats returns a copy of one direction's aggregate counters.
func (b *Bottleneck) Stats(dir Direction) AggStats {
	return b.dirs[dirIndex(dir)].stats
}

// Attach routes both of a path's links through the bottleneck. Member
// links keep their own loss/jitter/duplication and middlebox processors;
// only the queue byte budget and the serializer become shared. Attach
// order defines the DRR service order, so fleets attach flows in index
// order.
func (b *Bottleneck) Attach(p *Path) {
	b.attachLink(p.c2s)
	b.attachLink(p.s2c)
}

func (b *Bottleneck) attachLink(l *Link) {
	l.agg = b
	l.aggTxDoneEv = l.onAggTxDone
	d := &b.dirs[dirIndex(l.dir)]
	q := &aggQueue{link: l}
	l.aggQ = q
	d.queues = append(d.queues, q)
}

// send carries a packet that has already cleared the member link's
// middlebox, blackout and loss stages (so the per-flow RNG stream is
// exactly where a standalone Send would have it) through the shared
// queue and serializer.
func (b *Bottleneck) send(l *Link, now time.Duration, pkt *Packet, size int, extra time.Duration) {
	d := &b.dirs[dirIndex(l.dir)]

	// Tail drop against the shared byte budget; booked on the flow's own
	// stats (it lost the packet) and on the aggregate (it was full).
	if d.queuedBytes+size > b.cfg.QueueLimit {
		d.stats.DroppedQueue++
		l.dropQueue(now, pkt, size)
		return
	}
	d.stats.Forwarded++
	d.stats.Bytes += int64(size)
	l.ck.AggForwarded(l.ckDir, size)

	if b.cfg.Discipline == DRR {
		b.admitDRR(d, l, pkt, size, extra)
		return
	}

	// FIFO: shared-transmitter serialization at min(flow, aggregate) rate.
	// With one attached flow and a mirrored config this block computes the
	// same txStart/txEnd/arrival a standalone link would, in the same
	// order, with the same RNG draws.
	rate := b.cfg.BandwidthBps
	if l.cfg.BandwidthBps < rate {
		rate = l.cfg.BandwidthBps
	}
	txStart := now
	if d.busyUntil > txStart {
		txStart = d.busyUntil
	}
	txTime := time.Duration(float64(size*8) / rate * float64(time.Second))
	txEnd := txStart + txTime
	d.busyUntil = txEnd
	d.queuedBytes += size
	pkt.refs = 2 // queue-drain + delivery; a duplicate adds a third
	b.sched.AtArg(txEnd, l.aggTxDoneEv, pkt)

	arrival := txEnd + l.cfg.PropDelay + l.propExtra + l.naturalJitter() + extra
	l.ck.LinkForwarded(l.ckDir, size, false)
	l.observe(PacketEvent{Now: now, Pkt: pkt, Action: ActionForwarded, Arrival: arrival})
	b.sched.AtArg(arrival, l.deliverEv, pkt)
	if l.rng.Bool(l.cfg.DuplicateProb) {
		dupArrival := txEnd + l.cfg.PropDelay + l.propExtra + l.naturalJitter() + extra
		l.stats.Duplicated++
		l.ck.LinkForwarded(l.ckDir, size, true)
		pkt.refs++
		b.sched.AtArg(dupArrival, l.deliverEv, pkt)
	}
}

// admitDRR enqueues a packet on its flow's queue. The post-serialization
// delays are drawn NOW — natural jitter, then the duplicate gate, then
// the duplicate's jitter, the standalone Send order — and stored on the
// entry, so DRR's deferred service never desynchronizes the RNG stream.
func (b *Bottleneck) admitDRR(d *aggDir, l *Link, pkt *Packet, size int, extra time.Duration) {
	e := b.entryFree.Get()
	e.pkt, e.link, e.size = pkt, l, size
	e.delay = l.cfg.PropDelay + l.propExtra + l.naturalJitter() + extra
	pkt.refs = 2 // service-done + delivery; a duplicate adds a third
	l.ck.LinkForwarded(l.ckDir, size, false)
	if l.rng.Bool(l.cfg.DuplicateProb) {
		e.dup = true
		e.dupDelay = l.cfg.PropDelay + l.propExtra + l.naturalJitter() + extra
		l.stats.Duplicated++
		l.ck.LinkForwarded(l.ckDir, size, true)
		pkt.refs++
	}
	d.queuedBytes += size
	q := l.aggQ
	q.entries = append(q.entries, e)
	if !q.active {
		q.active = true
		q.deficit = 0
		d.active = append(d.active, q)
	}
	if !d.serving {
		b.serve(d, b.sched.Now())
	}
}

// serve picks the next DRR packet and schedules its service completion;
// with nothing backlogged the transmitter goes idle.
func (b *Bottleneck) serve(d *aggDir, now time.Duration) {
	for len(d.active) > 0 {
		q := d.active[0]
		if len(q.entries) == 0 {
			q.active = false
			q.deficit = 0
			d.active = d.active[1:]
			continue
		}
		head := q.entries[0]
		if q.deficit < head.size {
			q.deficit += b.cfg.Quantum
			d.active = append(d.active[1:], q)
			continue
		}
		q.deficit -= head.size
		q.entries = q.entries[1:]
		rate := b.cfg.BandwidthBps
		if lr := head.link.cfg.BandwidthBps; lr < rate {
			rate = lr
		}
		txTime := time.Duration(float64(head.size*8) / rate * float64(time.Second))
		d.serving = true
		b.sched.AtArg(now+txTime, b.svcDoneEv, head)
		return
	}
	d.serving = false
}

// onServiceDone fires when a DRR packet's last bit leaves the shared
// transmitter: the queue budget is returned, the packet is observed as
// forwarded (a middlebox tap on the aggregate sees packets at egress)
// and its delivery — plus the duplicate copy, if drawn — is scheduled
// with the delays captured at admission.
func (b *Bottleneck) onServiceDone(v any) {
	e := v.(*aggEntry)
	l := e.link
	d := &b.dirs[dirIndex(l.dir)]
	now := b.sched.Now()
	d.queuedBytes -= e.size
	arrival := now + e.delay
	l.observe(PacketEvent{Now: now, Pkt: e.pkt, Action: ActionForwarded, Arrival: arrival})
	b.sched.AtArg(arrival, l.deliverEv, e.pkt)
	if e.dup {
		b.sched.AtArg(now+e.dupDelay, l.deliverEv, e.pkt)
	}
	l.unref(e.pkt) // the service-done reference
	b.entryFree.Put(e)
	b.serve(d, now)
}

func dirIndex(dir Direction) int {
	if dir == ServerToClient {
		return 1
	}
	return 0
}
