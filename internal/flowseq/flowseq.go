// Package flowseq is the streaming per-flow, per-stream event-sequence
// analytics engine (the burstshark of this testbed): it consumes the
// monitor's TLS-record feed, one endpoint's HTTP/2 frame feed and the
// browser's request log online — no post-hoc log scraping — and maintains,
// per flow, the wire-side burst table (burst sizes, inter-burst gaps,
// clean-slate signature spans) and per-stream state timelines
// (request → response headers → first byte → bursts → reset/complete),
// including the serialized-vs-multiplexed classification per object that
// the paper's whole attack hinges on. This is the feature feed the
// ROADMAP's middlebox-side detector and open-world corpus classifier
// train on.
//
// The package follows the repository's nil-receiver contract: a nil
// *Analyzer (the default everywhere) makes every hook a no-op, so a
// feature-capable build costs nothing when -features is off. One Analyzer
// observes one flow, normally one trial; trials flush into a shared
// Collector (see collector.go) keyed by trial index, which makes exports
// deterministic at any sweep worker count.
package flowseq

import (
	"sync"
	"time"
)

// SchemaVersion identifies the feature-row schema carried by the JSONL
// meta line, the CSV header and the run manifest's features receipt. Bump
// it when a column changes meaning.
const SchemaVersion = 1

// BurstGap is the burst segmentation threshold: two application records
// (or two DATA frames of one stream) separated by more than this gap
// belong to different bursts. It matches predict.Config's default — both
// views segment the same way so wire bursts join against stream bursts.
const BurstGap = 25 * time.Millisecond

// SpanSilence is the clean-slate detector's silence gate: a client→server
// control record arriving at least this long after the last substantial
// server→client record opens a candidate reset span (a starved client
// sends almost no flow-control updates, so a late volley of small control
// records is the browser resetting its streams).
const SpanSilence = 100 * time.Millisecond

// spanDataMin is the server→client plaintext size that counts as "the
// server is talking again", closing an open span and resetting the
// silence clock. Mirrors the monitor's 100-byte payload gate.
const spanDataMin = 100

// frameHeaderLen is what each TLS application record carries in HTTP/2
// frame header bytes — subtracted when estimating object payload from
// record sizes, exactly as the predictor does.
const frameHeaderLen = 9

// HTTP/2 frame-type and flag values the analyzer interprets (RFC 7540;
// plain constants so h2 can feed the hook without an import cycle).
const (
	frameData    = 0x0
	frameHeaders = 0x1
	frameRST     = 0x3

	flagEndStream = 0x1
)

// Clock is the timestamp source, identical in shape to trace.Clock so a
// trial's scheduler satisfies both.
type Clock interface {
	Now() time.Duration
}

// ClockFunc adapts a function to a Clock.
type ClockFunc func() time.Duration

// Now implements Clock.
func (f ClockFunc) Now() time.Duration { return f() }

// WallClock returns a Clock stamping wall time relative to the call — for
// the real-TCP tools (h2serve), where there is no virtual scheduler.
func WallClock() Clock {
	start := time.Now()
	return ClockFunc(func() time.Duration { return time.Since(start) })
}

// Analyzer observes one flow. The nil Analyzer is the disabled analyzer:
// Enabled reports false and every hook is a nil-receiver no-op. Within a
// simulated trial all feeds run on the scheduler goroutine; the real-TCP
// server arms Concurrent to guard the hooks with a mutex.
type Analyzer struct {
	mu    *sync.Mutex // non-nil only after Concurrent
	clock Clock
	col   *Collector
	trial int
	flow  string

	done bool
	out  *FlowFeatures

	// Wire view (monitor record feed).
	wire        [2]wireDir // 0 = c2s, 1 = s2c
	spans       []Span
	spanOpen    bool
	spanStart   time.Duration
	spanResets  int
	lastS2CData time.Duration
	anyS2CData  bool
	gets        int
	controls    int
	tainted     int
	lastEvent   time.Duration

	// Endpoint view (h2 frame feed + browser request labels).
	streams map[uint32]*streamState
	active  []*streamState // started (first byte seen) and not yet terminal
}

// wireDir builds one direction's burst table incrementally.
type wireDir struct {
	bursts  []Burst
	open    bool
	start   time.Duration
	last    time.Duration
	records int
	wire    int
	body    int
	prevEnd time.Duration
	hasPrev bool
}

// streamState is one HTTP/2 stream's in-progress timeline.
type streamState struct {
	id         uint32
	object     string
	kind       string
	objDone    bool
	end        string // "" while open, else "complete" / "reset"
	requestAt  time.Duration
	headersAt  time.Duration
	firstAt    time.Duration
	lastAt     time.Duration
	endAt      time.Duration
	hasRequest bool
	hasHeaders bool
	hasFirst   bool

	bytes       int
	frames      int
	interleaved int // other streams' DATA frames during this stream's span

	burstBytes []int
	burstOpen  bool
	burstLast  time.Duration
	burstAccum int
	gapMax     time.Duration
	gapSum     time.Duration
	gapCount   int

	activeIdx int
}

// New returns an analyzer for the given flat trial index flushing into
// col at Finalize. col may be nil for a standalone analyzer (tests, ad-hoc
// use); the live flow_* counters then have nowhere to stream and stay off.
func New(trial int, col *Collector) *Analyzer {
	return &Analyzer{trial: trial, col: col, streams: make(map[uint32]*streamState)}
}

// Enabled reports whether the hooks do anything. Hot paths may call it
// before assembling arguments; the disabled path is one nil check.
func (a *Analyzer) Enabled() bool { return a != nil }

// Concurrent guards every hook with a mutex for goroutine-per-stream
// callers (h2serve). Simulated trials are single-threaded and skip it.
func (a *Analyzer) Concurrent() {
	if a == nil || a.mu != nil {
		return
	}
	a.mu = &sync.Mutex{}
}

// SetClock rebinds the timestamp source — core.NewTestbed points it at the
// trial's virtual clock, mirroring the tracer fan-out. No-op on nil.
func (a *Analyzer) SetClock(c Clock) {
	if a == nil || c == nil {
		return
	}
	a.clock = c
}

// SetFlow names the flow all feature rows carry — the same canonical
// identifier capture.FlowID stamps into pcap and Chrome-trace exports, so
// external tooling can join all three views. No-op on nil.
func (a *Analyzer) SetFlow(id string) {
	if a == nil {
		return
	}
	a.flow = id
}

func (a *Analyzer) now() time.Duration {
	if a.clock == nil {
		return 0
	}
	return a.clock.Now()
}

func (a *Analyzer) lock() {
	if a.mu != nil {
		a.mu.Lock()
	}
}

func (a *Analyzer) unlock() {
	if a.mu != nil {
		a.mu.Unlock()
	}
}

// Record ingests one TLS record observed at the gateway (the monitor's
// feed): direction, on-stream and inferred-plaintext sizes, and the
// monitor's GET/control/taint classification. Builds the wire-side burst
// tables and the clean-slate span detector. No-op on nil.
func (a *Analyzer) Record(c2s bool, wireLen, plainLen int, isGET, isControl, tainted bool) {
	if a == nil {
		return
	}
	a.lock()
	defer a.unlock()
	t := a.now()
	a.lastEvent = t
	a.col.liveRecord(c2s)
	if isGET {
		a.gets++
		a.col.liveGET()
	}
	if isControl {
		a.controls++
		a.col.liveControl()
	}
	if plainLen <= 0 {
		return // handshake/CCS records carry no application payload
	}
	if tainted {
		// Retransmitted bytes replay traffic already accounted for; they
		// never extend or split a burst (the predictor's rule).
		a.tainted++
		return
	}
	if c2s {
		if isControl {
			if !a.spanOpen && a.anyS2CData && t-a.lastS2CData >= SpanSilence {
				a.spanOpen, a.spanStart, a.spanResets = true, t, 0
				a.col.liveSpan()
			}
			if a.spanOpen {
				a.spanResets++
			}
		}
	} else if plainLen >= spanDataMin {
		if a.spanOpen {
			a.closeSpan(t)
		}
		a.lastS2CData, a.anyS2CData = t, true
	}
	d := &a.wire[dirIndex(c2s)]
	if d.open && t-d.last > BurstGap {
		d.close(dirName(c2s))
	}
	if !d.open {
		d.open = true
		d.start = t
		d.records, d.wire, d.body = 0, 0, 0
	} else if body := plainLen - frameHeaderLen; body > 0 {
		// The first record of a burst is response HEADERS (no object
		// bytes); later records are DATA whose plaintext carries one frame
		// header of overhead — predict.Analyzer's size model.
		d.body += body
	}
	d.records++
	d.wire += wireLen
	d.last = t
}

func (a *Analyzer) closeSpan(end time.Duration) {
	a.spans = append(a.spans, Span{
		Index:   len(a.spans),
		StartNS: int64(a.spanStart),
		EndNS:   int64(end),
		Resets:  a.spanResets,
	})
	a.spanOpen = false
}

func (d *wireDir) close(dir string) {
	gap := int64(-1)
	if d.hasPrev {
		gap = int64(d.start - d.prevEnd)
	}
	d.bursts = append(d.bursts, Burst{
		Dir:     dir,
		Index:   len(d.bursts),
		StartNS: int64(d.start),
		EndNS:   int64(d.last),
		GapNS:   gap,
		Records: d.records,
		Wire:    d.wire,
		Body:    d.body,
	})
	d.prevEnd, d.hasPrev = d.last, true
	d.open = false
}

func dirIndex(c2s bool) int {
	if c2s {
		return 0
	}
	return 1
}

func dirName(c2s bool) string {
	if c2s {
		return "c2s"
	}
	return "s2c"
}

// H2Frame ingests one HTTP/2 frame from exactly one endpoint of the flow
// (core wires the browser's connection; h2serve wires the server's —
// wiring both halves of the same flow would double-count). client reports
// that endpoint's role, sent whether the frame left it or arrived; the
// analyzer resolves direction from the pair. n is the frame payload
// length. No-op on nil.
func (a *Analyzer) H2Frame(client, sent bool, ftype uint8, stream uint32, n int, flags uint8) {
	if a == nil || stream == 0 {
		return
	}
	a.lock()
	defer a.unlock()
	t := a.now()
	a.lastEvent = t
	toClient := sent != client
	switch ftype {
	case frameData:
		if !toClient {
			return
		}
		s := a.stream(stream)
		if s.end != "" {
			return // late data after reset: the timeline is closed
		}
		if !s.hasFirst {
			s.hasFirst, s.firstAt = true, t
			a.activate(s)
		}
		// Every other in-flight stream sees this frame interleaved into
		// its span — zero interleavings is the serialized signature.
		for _, o := range a.active {
			if o != s {
				o.interleaved++
			}
		}
		if s.burstOpen && t-s.burstLast > BurstGap {
			gap := t - s.burstLast
			s.burstBytes = append(s.burstBytes, s.burstAccum)
			s.burstAccum = 0
			s.gapSum += gap
			s.gapCount++
			if gap > s.gapMax {
				s.gapMax = gap
			}
		}
		s.burstOpen = true
		s.burstAccum += n
		s.burstLast = t
		s.bytes += n
		s.frames++
		s.lastAt = t
		if flags&flagEndStream != 0 {
			a.finish(s, "complete", t)
		}
	case frameHeaders:
		s := a.stream(stream)
		if toClient {
			if !s.hasHeaders {
				s.hasHeaders, s.headersAt = true, t
			}
			if flags&flagEndStream != 0 {
				a.finish(s, "complete", t)
			}
		} else if !s.hasRequest {
			// Request on the wire; the browser's Request hook usually beat
			// us to it with the object label, but the server-side view
			// (h2serve) only has this.
			s.hasRequest, s.requestAt = true, t
		}
	case frameRST:
		s := a.stream(stream)
		if s.end == "" {
			a.col.liveReset()
		}
		a.finish(s, "reset", t)
	}
}

// Request labels a stream with the browser's intent: which object it
// fetches and why (initial/retry/re-request/pushed). No-op on nil.
func (a *Analyzer) Request(object string, stream uint32, kind string) {
	if a == nil {
		return
	}
	a.lock()
	defer a.unlock()
	t := a.now()
	a.lastEvent = t
	s := a.stream(stream)
	if s.object == "" {
		s.object = object
	}
	if s.kind == "" {
		s.kind = kind
	}
	if !s.hasRequest {
		s.hasRequest, s.requestAt = true, t
	}
}

// ObjectDone marks the stream that actually delivered its object — the
// one whose serialized/multiplexed label classifies the object. No-op on
// nil.
func (a *Analyzer) ObjectDone(object string, stream uint32) {
	if a == nil {
		return
	}
	a.lock()
	defer a.unlock()
	a.lastEvent = a.now()
	s := a.stream(stream)
	if s.object == "" {
		s.object = object
	}
	s.objDone = true
}

func (a *Analyzer) stream(id uint32) *streamState {
	if s, ok := a.streams[id]; ok {
		return s
	}
	s := &streamState{id: id, activeIdx: -1}
	a.streams[id] = s
	a.col.liveStreamOpened()
	return s
}

func (a *Analyzer) activate(s *streamState) {
	if s.activeIdx >= 0 {
		return
	}
	s.activeIdx = len(a.active)
	a.active = append(a.active, s)
}

func (a *Analyzer) deactivate(s *streamState) {
	if s.activeIdx < 0 {
		return
	}
	last := len(a.active) - 1
	moved := a.active[last]
	a.active[s.activeIdx] = moved
	moved.activeIdx = s.activeIdx
	a.active = a.active[:last]
	s.activeIdx = -1
}

func (a *Analyzer) finish(s *streamState, state string, t time.Duration) {
	if s.end != "" {
		return
	}
	s.end = state
	s.endAt = t
	a.deactivate(s)
}

// Sibling returns a fresh analyzer for another flow of the same trial:
// same flat trial index, same collector, same clock — so a fleet trial's
// member flows all land in one collector keyed (trial, flow). Nil
// receiver returns nil (the whole sibling family stays disabled).
func (a *Analyzer) Sibling(flow string) *Analyzer {
	if a == nil {
		return nil
	}
	s := New(a.trial, a.col)
	s.clock = a.clock
	s.flow = flow
	return s
}

// LiveFeatures is a mid-trial snapshot of the capture-visible signals a
// shared-bottleneck adversary can score a flow by, without waiting for
// Finalize: request activity, control chatter, recency, and the
// server→client response-burst body estimate (the size signature the
// paper's attack fingerprints pages with).
type LiveFeatures struct {
	Flow string
	// GETs and Controls are the monitor's client→server record counts.
	GETs     int
	Controls int
	// LastEvent is the most recent record/frame timestamp.
	LastEvent time.Duration
	// MaxBurstBody is the largest estimated object payload of any
	// server→client burst so far, the still-open burst included — the
	// response-size signature the paper's attack fingerprints pages with.
	// A flow whose handshake chatter closed a tiny first burst still
	// scores by its page response.
	MaxBurstBody int
	// S2CBursts counts closed server→client bursts so far.
	S2CBursts int
}

// Live snapshots the selector-facing features. Nil receiver returns the
// zero value — an unobserved flow scores nothing.
func (a *Analyzer) Live() LiveFeatures {
	if a == nil {
		return LiveFeatures{}
	}
	a.lock()
	defer a.unlock()
	lf := LiveFeatures{
		Flow:      a.flow,
		GETs:      a.gets,
		Controls:  a.controls,
		LastEvent: a.lastEvent,
		S2CBursts: len(a.wire[1].bursts),
	}
	for i := range a.wire[1].bursts {
		if b := a.wire[1].bursts[i].Body; b > lf.MaxBurstBody {
			lf.MaxBurstBody = b
		}
	}
	if a.wire[1].open && a.wire[1].body > lf.MaxBurstBody {
		lf.MaxBurstBody = a.wire[1].body
	}
	return lf
}
