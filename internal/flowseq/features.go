package flowseq

import (
	"sort"
	"time"
)

// FlowFeatures is one finalized flow's feature set: the wire-side burst
// table, the clean-slate spans, and the per-stream timelines. All times
// are virtual-clock nanoseconds (-1 where an event never happened), so
// same-seed trials serialize byte-identically.
type FlowFeatures struct {
	Trial   int             `json:"trial"`
	Flow    string          `json:"flow,omitempty"`
	GETs    int             `json:"gets"`
	Control int             `json:"control_records"`
	Tainted int             `json:"tainted_records"`
	Streams []StreamFeature `json:"streams"`
	Bursts  []Burst         `json:"bursts"`
	Spans   []Span          `json:"spans"`
}

// StreamFeature is one HTTP/2 stream's extracted timeline and size/gap
// features — one CSV row of the classifier feed.
type StreamFeature struct {
	Trial  int    `json:"trial"`
	Flow   string `json:"flow,omitempty"`
	Stream uint32 `json:"stream"`
	Object string `json:"object,omitempty"`
	// Kind is the browser's request kind (initial/retry/re-request/pushed);
	// empty when only the wire view labeled the stream.
	Kind string `json:"kind,omitempty"`
	// Label classifies how the response transmitted: "serialized" (no
	// other stream's DATA interleaved into its span — the attack's success
	// signature) or "multiplexed"; empty when no data arrived.
	Label string `json:"label,omitempty"`
	// End is the terminal state: "complete", "reset", or "open" (the trial
	// ended first).
	End string `json:"end"`
	// Delivered marks the stream that completed its object at the browser.
	Delivered bool `json:"delivered,omitempty"`

	RequestNS   int64 `json:"request_ns"`
	HeadersNS   int64 `json:"headers_ns"`
	FirstByteNS int64 `json:"first_byte_ns"`
	LastByteNS  int64 `json:"last_byte_ns"`
	EndNS       int64 `json:"end_ns"`

	Bytes       int `json:"bytes"`
	DataFrames  int `json:"data_frames"`
	Interleaved int `json:"interleaved_frames"`

	// Bursts segments the stream's own DATA arrivals by BurstGap;
	// BurstBytes carries each burst's payload total. Gap figures cover the
	// Bursts-1 inter-burst gaps.
	Bursts     int   `json:"bursts"`
	BurstBytes []int `json:"burst_bytes,omitempty"`
	MaxGapNS   int64 `json:"max_gap_ns"`
	GapSumNS   int64 `json:"gap_sum_ns"`
}

// Burst is one wire-side burst: consecutive untainted application records
// in one direction with no intra-gap exceeding BurstGap.
type Burst struct {
	Trial int    `json:"trial"`
	Flow  string `json:"flow,omitempty"`
	Dir   string `json:"dir"`
	Index int    `json:"index"`

	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
	// GapNS is the silence since the previous same-direction burst ended
	// (-1 for the direction's first burst).
	GapNS   int64 `json:"gap_ns"`
	Records int   `json:"records"`
	// Wire sums record on-stream sizes; Body estimates object payload
	// (plaintext minus frame-header overhead, first record excluded as
	// response HEADERS — the predictor's size model).
	Wire int `json:"wire_bytes"`
	Body int `json:"body_bytes"`
}

// Span is one clean-slate signature span: a volley of client→server
// control records opened after server silence (the browser resetting its
// streams) until the server talks again.
type Span struct {
	Trial   int    `json:"trial"`
	Flow    string `json:"flow,omitempty"`
	Index   int    `json:"index"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"`
	Resets  int    `json:"resets"`
}

// Finalize closes open bursts, spans and stream timelines, assembles the
// flow's feature set in deterministic order (streams by ID, bursts c2s
// then s2c in onset order, spans in onset order), flushes it into the
// Collector, and returns it. Idempotent; nil analyzer returns nil.
func (a *Analyzer) Finalize() *FlowFeatures {
	if a == nil {
		return nil
	}
	a.lock()
	defer a.unlock()
	if a.done {
		return a.out
	}
	a.done = true

	for c2s := 0; c2s < 2; c2s++ {
		d := &a.wire[c2s]
		if d.open {
			d.close(dirName(c2s == 0))
		}
	}
	if a.spanOpen {
		// The trial ended mid-span (a broken load never got data back);
		// close at the last observed event so the volley still exports.
		a.closeSpan(a.lastEvent)
	}

	ff := &FlowFeatures{
		Trial:   a.trial,
		Flow:    a.flow,
		GETs:    a.gets,
		Control: a.controls,
		Tainted: a.tainted,
	}
	ids := make([]uint32, 0, len(a.streams))
	for id := range a.streams {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ff.Streams = append(ff.Streams, a.streams[id].feature(a.trial, a.flow))
	}
	for c2s := 0; c2s < 2; c2s++ {
		for _, b := range a.wire[c2s].bursts {
			b.Trial, b.Flow = a.trial, a.flow
			ff.Bursts = append(ff.Bursts, b)
		}
	}
	for _, sp := range a.spans {
		sp.Trial, sp.Flow = a.trial, a.flow
		ff.Spans = append(ff.Spans, sp)
	}
	a.out = ff
	a.col.add(ff)
	return ff
}

func (s *streamState) feature(trial int, flow string) StreamFeature {
	if s.burstOpen {
		s.burstBytes = append(s.burstBytes, s.burstAccum)
		s.burstOpen = false
	}
	f := StreamFeature{
		Trial:       trial,
		Flow:        flow,
		Stream:      s.id,
		Object:      s.object,
		Kind:        s.kind,
		End:         s.end,
		Delivered:   s.objDone,
		RequestNS:   stampNS(s.hasRequest, s.requestAt),
		HeadersNS:   stampNS(s.hasHeaders, s.headersAt),
		FirstByteNS: stampNS(s.hasFirst, s.firstAt),
		LastByteNS:  stampNS(s.hasFirst, s.lastAt),
		EndNS:       stampNS(s.end != "", s.endAt),
		Bytes:       s.bytes,
		DataFrames:  s.frames,
		Interleaved: s.interleaved,
		Bursts:      len(s.burstBytes),
		BurstBytes:  s.burstBytes,
		MaxGapNS:    int64(s.gapMax),
		GapSumNS:    int64(s.gapSum),
	}
	if f.End == "" {
		f.End = "open"
	}
	if s.frames > 0 {
		if s.interleaved == 0 {
			f.Label = "serialized"
		} else {
			f.Label = "multiplexed"
		}
	}
	return f
}

func stampNS(has bool, t time.Duration) int64 {
	if !has {
		return -1
	}
	return int64(t)
}
