package flowseq_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"h2privacy/internal/flowseq"
	"h2privacy/internal/obs"
)

// testClock is a hand-advanced Clock for deterministic feeds.
type testClock struct{ at time.Duration }

func (c *testClock) Now() time.Duration { return c.at }

func TestNilAnalyzerNoOps(t *testing.T) {
	var a *flowseq.Analyzer
	if a.Enabled() {
		t.Fatal("nil analyzer reported enabled")
	}
	// Every hook must be callable on nil without panicking.
	a.Concurrent()
	a.SetClock(flowseq.WallClock())
	a.SetFlow("x")
	a.Record(true, 100, 91, true, false, false)
	a.H2Frame(true, true, 0x0, 1, 100, 0)
	a.Request("obj", 1, "initial")
	a.ObjectDone("obj", 1)
	if ff := a.Finalize(); ff != nil {
		t.Fatalf("nil analyzer finalized to %+v", ff)
	}
}

func TestNilCollectorExports(t *testing.T) {
	var c *flowseq.Collector
	c.PublishTo(obs.NewRegistry())
	var buf bytes.Buffer
	for _, format := range []string{flowseq.FormatTable, flowseq.FormatJSONL, flowseq.FormatCSV} {
		if err := c.WriteFlows(&buf, format); err != nil {
			t.Fatalf("nil collector WriteFlows(%s): %v", format, err)
		}
	}
	if r := c.Receipt("p"); r.Trials != 0 || r.Schema != flowseq.SchemaVersion {
		t.Fatalf("nil collector receipt = %+v", r)
	}
}

func TestWireBurstSegmentation(t *testing.T) {
	clk := &testClock{}
	a := flowseq.New(0, nil)
	a.SetClock(clk)
	a.SetFlow("f")

	// Burst 1 (s2c): HEADERS record then two DATA records within the gap.
	clk.at = 10 * time.Millisecond
	a.Record(false, 120, 100, false, false, false) // response HEADERS: no body
	clk.at = 20 * time.Millisecond
	a.Record(false, 1500, 1460, false, false, false)
	clk.at = 30 * time.Millisecond
	a.Record(false, 1500, 1460, false, false, false)
	// Tainted retransmission inside the silence: must not extend the burst.
	clk.at = 50 * time.Millisecond
	a.Record(false, 1500, 1460, false, false, true)
	// Burst 2 after > BurstGap of silence.
	clk.at = 100 * time.Millisecond
	a.Record(false, 800, 780, false, false, false)

	ff := a.Finalize()
	if len(ff.Bursts) != 2 {
		t.Fatalf("bursts = %d, want 2", len(ff.Bursts))
	}
	b0, b1 := ff.Bursts[0], ff.Bursts[1]
	if b0.Dir != "s2c" || b0.Records != 3 || b0.Wire != 120+1500+1500 {
		t.Fatalf("burst 0 = %+v", b0)
	}
	// First record is HEADERS (no body); each DATA record sheds one frame
	// header of overhead.
	if want := 2 * (1460 - 9); b0.Body != want {
		t.Fatalf("burst 0 body = %d, want %d", b0.Body, want)
	}
	if b0.GapNS != -1 {
		t.Fatalf("first burst gap = %d, want -1", b0.GapNS)
	}
	if b0.StartNS != int64(10*time.Millisecond) || b0.EndNS != int64(30*time.Millisecond) {
		t.Fatalf("burst 0 span = [%d, %d]", b0.StartNS, b0.EndNS)
	}
	if b1.Records != 1 || b1.GapNS != int64(70*time.Millisecond) {
		t.Fatalf("burst 1 = %+v", b1)
	}
	if ff.Tainted != 1 {
		t.Fatalf("tainted = %d, want 1", ff.Tainted)
	}
}

func TestCleanSlateSpanDetection(t *testing.T) {
	clk := &testClock{}
	a := flowseq.New(0, nil)
	a.SetClock(clk)

	// Server talks, then goes silent; a control volley after SpanSilence
	// opens a span, closed when substantial server data resumes.
	clk.at = 10 * time.Millisecond
	a.Record(false, 1500, 1460, false, false, false)
	clk.at = 200 * time.Millisecond
	a.Record(true, 50, 30, false, true, false) // RST volley begins
	clk.at = 210 * time.Millisecond
	a.Record(true, 50, 30, false, true, false)
	clk.at = 400 * time.Millisecond
	a.Record(false, 1500, 1460, false, false, false) // server resumes → close

	// A second volley that the trial end cuts off mid-span.
	clk.at = 900 * time.Millisecond
	a.Record(true, 50, 30, false, true, false)

	ff := a.Finalize()
	if len(ff.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(ff.Spans))
	}
	s0 := ff.Spans[0]
	if s0.StartNS != int64(200*time.Millisecond) || s0.EndNS != int64(400*time.Millisecond) || s0.Resets != 2 {
		t.Fatalf("span 0 = %+v", s0)
	}
	// The open span closes at the last observed event.
	s1 := ff.Spans[1]
	if s1.StartNS != int64(900*time.Millisecond) || s1.EndNS != int64(900*time.Millisecond) || s1.Resets != 1 {
		t.Fatalf("span 1 = %+v", s1)
	}
}

func TestNoSpanWithoutPriorServerData(t *testing.T) {
	clk := &testClock{at: 500 * time.Millisecond}
	a := flowseq.New(0, nil)
	a.SetClock(clk)
	// Control records before the server ever talked (normal setup) must
	// not open a span.
	a.Record(true, 50, 30, false, true, false)
	if ff := a.Finalize(); len(ff.Spans) != 0 {
		t.Fatalf("spans = %d, want 0", len(ff.Spans))
	}
}

func TestStreamTimelinesAndLabels(t *testing.T) {
	clk := &testClock{}
	a := flowseq.New(0, nil)
	a.SetClock(clk)
	a.SetFlow("f")

	// The analyzer is wired on the client endpoint: sent=true means c2s.
	clk.at = 1 * time.Millisecond
	a.Request("obj-a", 1, "initial")
	a.H2Frame(true, true, 0x1, 1, 30, 0) // request HEADERS out
	clk.at = 2 * time.Millisecond
	a.Request("obj-b", 3, "initial")
	a.H2Frame(true, true, 0x1, 3, 30, 0)

	// Stream 1 serialized: all its DATA arrives before stream 3 starts.
	clk.at = 10 * time.Millisecond
	a.H2Frame(true, false, 0x1, 1, 20, 0) // response HEADERS in
	a.H2Frame(true, false, 0x0, 1, 1000, 0)
	clk.at = 12 * time.Millisecond
	a.H2Frame(true, false, 0x0, 1, 500, 0x1) // END_STREAM
	a.ObjectDone("obj-a", 1)

	// Stream 3 multiplexed against stream 5's push.
	clk.at = 20 * time.Millisecond
	a.H2Frame(true, false, 0x0, 3, 700, 0)
	clk.at = 21 * time.Millisecond
	a.H2Frame(true, false, 0x0, 5, 400, 0) // interleaves into 3's span
	// A late burst on stream 3 after > BurstGap.
	clk.at = 60 * time.Millisecond
	a.H2Frame(true, false, 0x0, 3, 300, 0x1)
	a.ObjectDone("obj-b", 3)

	// Stream 5 reset mid-flight; stream 7 never terminates.
	clk.at = 70 * time.Millisecond
	a.H2Frame(true, true, 0x3, 5, 4, 0)
	a.Request("obj-c", 7, "retry")

	ff := a.Finalize()
	if len(ff.Streams) != 4 {
		t.Fatalf("streams = %d, want 4", len(ff.Streams))
	}
	byID := map[uint32]*flowseq.StreamFeature{}
	for i := range ff.Streams {
		byID[ff.Streams[i].Stream] = &ff.Streams[i]
	}

	s1 := byID[1]
	if s1.Label != "serialized" || s1.End != "complete" || !s1.Delivered {
		t.Fatalf("stream 1 = %+v", s1)
	}
	if s1.Object != "obj-a" || s1.Kind != "initial" {
		t.Fatalf("stream 1 labels = %q %q", s1.Object, s1.Kind)
	}
	if s1.RequestNS != int64(time.Millisecond) || s1.FirstByteNS != int64(10*time.Millisecond) ||
		s1.LastByteNS != int64(12*time.Millisecond) || s1.HeadersNS != int64(10*time.Millisecond) {
		t.Fatalf("stream 1 timeline = %+v", s1)
	}
	if s1.Bytes != 1500 || s1.DataFrames != 2 || s1.Interleaved != 0 {
		t.Fatalf("stream 1 sizes = %+v", s1)
	}

	s3 := byID[3]
	if s3.Label != "multiplexed" || s3.Interleaved != 1 {
		t.Fatalf("stream 3 = %+v", s3)
	}
	if s3.Bursts != 2 || s3.BurstBytes[0] != 700 || s3.BurstBytes[1] != 300 {
		t.Fatalf("stream 3 bursts = %+v", s3)
	}
	if s3.MaxGapNS != int64(40*time.Millisecond) || s3.GapSumNS != s3.MaxGapNS {
		t.Fatalf("stream 3 gaps = %+v", s3)
	}

	if s5 := byID[5]; s5.End != "reset" {
		t.Fatalf("stream 5 end = %q", s5.End)
	}
	if s7 := byID[7]; s7.End != "open" || s7.Label != "" {
		t.Fatalf("stream 7 = %+v", s7)
	}
}

func TestFinalizeIdempotent(t *testing.T) {
	a := flowseq.New(0, nil)
	a.Record(false, 100, 91, false, false, false)
	first := a.Finalize()
	if second := a.Finalize(); second != first {
		t.Fatal("second Finalize returned a different feature set")
	}
}

// feed drives one deterministic mixed workload into a.
func feed(a *flowseq.Analyzer, clk *testClock) {
	clk.at = time.Millisecond
	a.Request("obj", 1, "initial")
	a.H2Frame(true, true, 0x1, 1, 30, 0)
	a.Record(true, 100, 91, true, false, false)
	clk.at = 5 * time.Millisecond
	a.Record(false, 120, 100, false, false, false)
	a.H2Frame(true, false, 0x1, 1, 20, 0)
	clk.at = 6 * time.Millisecond
	a.Record(false, 1500, 1460, false, false, false)
	a.H2Frame(true, false, 0x0, 1, 1400, 0x1)
	a.ObjectDone("obj", 1)
}

func TestCollectorExportFormats(t *testing.T) {
	col := flowseq.NewCollector()
	// Trials finalize out of index order; exports must sort.
	for _, trial := range []int{1, 0} {
		clk := &testClock{}
		a := flowseq.New(trial, col)
		a.SetClock(clk)
		a.SetFlow("f")
		feed(a, clk)
		a.Finalize()
	}

	r := col.Receipt("out.csv")
	if r.Trials != 2 || r.StreamRows != 2 || r.BurstRows != 4 || r.Path != "out.csv" {
		t.Fatalf("receipt = %+v", r)
	}

	var csvBuf bytes.Buffer
	if err := col.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(csvBuf.String(), "\n"), "\n")
	if len(lines) != 4 { // schema comment + header + 2 stream rows
		t.Fatalf("CSV lines = %d:\n%s", len(lines), csvBuf.String())
	}
	if !strings.HasPrefix(lines[0], "# flowseq stream features, schema 1") {
		t.Fatalf("CSV schema line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "0,f,1,obj,initial,serialized,complete,1,") {
		t.Fatalf("CSV row = %q", lines[2])
	}
	if !strings.HasPrefix(lines[3], "1,f,1,") {
		t.Fatalf("CSV rows out of trial order: %q", lines[3])
	}

	var jsonlBuf bytes.Buffer
	if err := col.WriteJSONL(&jsonlBuf); err != nil {
		t.Fatal(err)
	}
	jl := strings.Split(strings.TrimRight(jsonlBuf.String(), "\n"), "\n")
	if !strings.HasPrefix(jl[0], `{"table":"meta","schema":1,`) {
		t.Fatalf("JSONL meta line = %q", jl[0])
	}
	var streams, bursts int
	for _, line := range jl[1:] {
		switch {
		case strings.HasPrefix(line, `{"table":"stream"`):
			streams++
		case strings.HasPrefix(line, `{"table":"burst"`):
			bursts++
		}
	}
	if streams != 2 || bursts != 4 {
		t.Fatalf("JSONL rows: %d streams, %d bursts", streams, bursts)
	}

	var tblBuf bytes.Buffer
	if err := col.WriteTable(&tblBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tblBuf.String(), "trial 0  flow f") ||
		!strings.Contains(tblBuf.String(), "1 serialized") {
		t.Fatalf("table output:\n%s", tblBuf.String())
	}

	if err := col.WriteFlows(&bytes.Buffer{}, "bogus"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestExportDeterministic(t *testing.T) {
	render := func() (string, string) {
		col := flowseq.NewCollector()
		clk := &testClock{}
		a := flowseq.New(0, col)
		a.SetClock(clk)
		a.SetFlow("f")
		feed(a, clk)
		a.Finalize()
		var csvBuf, jsonlBuf bytes.Buffer
		if err := col.WriteCSV(&csvBuf); err != nil {
			t.Fatal(err)
		}
		if err := col.WriteJSONL(&jsonlBuf); err != nil {
			t.Fatal(err)
		}
		return csvBuf.String(), jsonlBuf.String()
	}
	csv1, jsonl1 := render()
	csv2, jsonl2 := render()
	if csv1 != csv2 || jsonl1 != jsonl2 {
		t.Fatal("same feed rendered differently across runs")
	}
}

func TestLiveCountersAndPublishedFamilies(t *testing.T) {
	reg := obs.NewRegistry()
	col := flowseq.NewCollector()
	col.PublishTo(reg)

	clk := &testClock{}
	a := flowseq.New(0, col)
	a.SetClock(clk)
	feed(a, clk)
	ff := a.Finalize()
	flowseq.PublishFeatures(reg, ff)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`flow_records_observed_total{dir="c2s"} 1`,
		`flow_records_observed_total{dir="s2c"} 2`,
		"flow_get_records_total 1",
		"flow_streams_opened_total 1",
		`flow_streams_total{label="serialized"} 1`,
		`flow_stream_end_total{state="complete"} 1`,
		`flow_bursts_total{dir="s2c"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	if _, err := obs.LintExposition(buf.Bytes()); err != nil {
		t.Fatalf("exposition lint: %v", err)
	}
}

// TestPublishToPinsFamilyShape pins the mid-sweep scrape contract: the
// family and series set after PublishTo alone equals the set after
// features publish, so a scrape's shape never depends on how many trials
// happened to finish.
func TestPublishToPinsFamilyShape(t *testing.T) {
	names := func(reg *obs.Registry) []string {
		snap := reg.Snapshot()
		out := make([]string, 0, len(snap.Families))
		for _, f := range snap.Families {
			out = append(out, f.Name)
		}
		return out
	}
	pre := obs.NewRegistry()
	flowseq.NewCollector().PublishTo(pre)

	post := obs.NewRegistry()
	col := flowseq.NewCollector()
	col.PublishTo(post)
	clk := &testClock{}
	a := flowseq.New(0, col)
	a.SetClock(clk)
	feed(a, clk)
	flowseq.PublishFeatures(post, a.Finalize())

	preNames, postNames := names(pre), names(post)
	if strings.Join(preNames, ",") != strings.Join(postNames, ",") {
		t.Fatalf("family shape drifted:\n pre: %v\npost: %v", preNames, postNames)
	}
}

// TestConcurrentFeed exercises the Concurrent path under -race: several
// goroutines feed one analyzer while the collector is exported live.
func TestConcurrentFeed(t *testing.T) {
	col := flowseq.NewCollector()
	col.PublishTo(obs.NewRegistry())
	a := flowseq.New(0, col)
	a.Concurrent()
	a.SetClock(flowseq.WallClock())
	a.SetFlow("live")

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stream := uint32(2*g + 1)
			a.Request("obj", stream, "initial")
			for i := 0; i < 200; i++ {
				a.Record(g%2 == 0, 1500, 1460, false, false, false)
				a.H2Frame(true, false, 0x0, stream, 1000, 0)
			}
			a.H2Frame(true, false, 0x0, stream, 10, 0x1)
		}(g)
	}
	// Concurrent scrapes while the feed runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = col.WriteFlows(&bytes.Buffer{}, flowseq.FormatTable)
			_ = col.Receipt("")
		}
	}()
	wg.Wait()

	ff := a.Finalize()
	if len(ff.Streams) != 4 {
		t.Fatalf("streams = %d, want 4", len(ff.Streams))
	}
	for _, s := range ff.Streams {
		if s.End != "complete" || s.DataFrames != 201 {
			t.Fatalf("stream %d = %+v", s.Stream, s)
		}
	}
}
