package flowseq

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Export formats served by WriteFlows (and the /debug/flows endpoint's
// ?format= parameter).
const (
	FormatTable = "table"
	FormatJSONL = "jsonl"
	FormatCSV   = "csv"
)

// csvHeader is the stream-feature CSV schema (SchemaVersion). Millisecond
// columns are formatted from integer nanoseconds with microsecond
// precision — pure integer math, so exports are byte-stable; empty cell =
// the event never happened.
var csvHeader = []string{
	"trial", "flow", "stream", "object", "kind", "label", "end", "delivered",
	"request_ms", "headers_ms", "first_byte_ms", "last_byte_ms", "end_ms",
	"bytes", "data_frames", "interleaved_frames",
	"bursts", "burst_bytes", "max_gap_ms", "mean_gap_ms",
}

// WriteCSV writes the per-stream feature table — the classifier feed —
// sorted by (trial, stream). Byte-identical at any sweep worker count.
func (c *Collector) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# flowseq stream features, schema %d\n", SchemaVersion)
	bw.WriteString(strings.Join(csvHeader, ","))
	bw.WriteByte('\n')
	for _, ff := range c.sorted() {
		for i := range ff.Streams {
			s := &ff.Streams[i]
			bursts := make([]string, len(s.BurstBytes))
			for j, b := range s.BurstBytes {
				bursts[j] = strconv.Itoa(b)
			}
			meanGap := int64(-1)
			if s.GapSumNS > 0 && s.Bursts > 1 {
				meanGap = s.GapSumNS / int64(s.Bursts-1)
			}
			row := []string{
				strconv.Itoa(s.Trial), s.Flow, strconv.FormatUint(uint64(s.Stream), 10),
				s.Object, s.Kind, s.Label, s.End, boolCell(s.Delivered),
				fmtMS(s.RequestNS), fmtMS(s.HeadersNS), fmtMS(s.FirstByteNS),
				fmtMS(s.LastByteNS), fmtMS(s.EndNS),
				strconv.Itoa(s.Bytes), strconv.Itoa(s.DataFrames), strconv.Itoa(s.Interleaved),
				strconv.Itoa(s.Bursts), strings.Join(bursts, ";"),
				fmtMS(s.MaxGapNS), fmtMS(meanGap),
			}
			bw.WriteString(strings.Join(row, ","))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// WriteJSONL writes every table — a meta line, then stream, burst and
// span rows tagged by "table" — sorted by trial index. Byte-identical at
// any sweep worker count.
func (c *Collector) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	meta := struct {
		Table string `json:"table"`
		Receipt
	}{Table: "meta", Receipt: c.Receipt("")}
	if err := enc.Encode(meta); err != nil {
		return err
	}
	for _, ff := range c.sorted() {
		for i := range ff.Streams {
			row := struct {
				Table string `json:"table"`
				*StreamFeature
			}{"stream", &ff.Streams[i]}
			if err := enc.Encode(row); err != nil {
				return err
			}
		}
		for i := range ff.Bursts {
			row := struct {
				Table string `json:"table"`
				*Burst
			}{"burst", &ff.Bursts[i]}
			if err := enc.Encode(row); err != nil {
				return err
			}
		}
		for i := range ff.Spans {
			row := struct {
				Table string `json:"table"`
				*Span
			}{"span", &ff.Spans[i]}
			if err := enc.Encode(row); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteTable writes the human-readable per-flow burst tables — what
// /debug/flows serves mid-sweep and -features prints on exit.
func (c *Collector) WriteTable(w io.Writer) error {
	bw := bufio.NewWriter(w)
	flows := c.sorted()
	r := c.Receipt("")
	fmt.Fprintf(bw, "flowseq: %d flow(s) finalized, %d stream rows, %d burst rows, %d span rows (schema %d)\n",
		r.Trials, r.StreamRows, r.BurstRows, r.SpanRows, r.Schema)
	for _, ff := range flows {
		serialized, multiplexed := 0, 0
		for i := range ff.Streams {
			switch ff.Streams[i].Label {
			case "serialized":
				serialized++
			case "multiplexed":
				multiplexed++
			}
		}
		fmt.Fprintf(bw, "\n== trial %d  flow %s ==\n", ff.Trial, ff.Flow)
		fmt.Fprintf(bw, "  %d GETs, %d control records, %d tainted records; %d streams (%d serialized, %d multiplexed); %d clean-slate span(s)\n",
			ff.GETs, ff.Control, ff.Tainted, len(ff.Streams), serialized, multiplexed, len(ff.Spans))
		if len(ff.Bursts) > 0 {
			fmt.Fprintf(bw, "  %-4s %-5s %12s %12s %9s %7s %10s %10s\n",
				"dir", "burst", "start", "end", "gap", "records", "wire B", "body B")
			for i := range ff.Bursts {
				b := &ff.Bursts[i]
				fmt.Fprintf(bw, "  %-4s %-5d %12s %12s %9s %7d %10d %10d\n",
					b.Dir, b.Index, fmtMS(b.StartNS)+"ms", fmtMS(b.EndNS)+"ms",
					gapCell(b.GapNS), b.Records, b.Wire, b.Body)
			}
		}
		for i := range ff.Spans {
			sp := &ff.Spans[i]
			fmt.Fprintf(bw, "  clean-slate span %d: %sms → %sms, %d reset-volley records\n",
				sp.Index, fmtMS(sp.StartNS), fmtMS(sp.EndNS), sp.Resets)
		}
	}
	return bw.Flush()
}

// WriteFlows dispatches on format ("" and "table" → burst tables, "jsonl"
// or "json" → JSONL, "csv" → stream CSV). It implements obs.FlowSource,
// backing the DebugServer's /debug/flows endpoint.
func (c *Collector) WriteFlows(w io.Writer, format string) error {
	switch format {
	case "", FormatTable:
		return c.WriteTable(w)
	case FormatJSONL, "json":
		return c.WriteJSONL(w)
	case FormatCSV:
		return c.WriteCSV(w)
	default:
		return fmt.Errorf("flowseq: unknown format %q (want table, jsonl or csv)", format)
	}
}

// fmtMS renders nanoseconds as milliseconds with microsecond precision
// using integer math only; negative (unset) renders empty.
func fmtMS(ns int64) string {
	if ns < 0 {
		return ""
	}
	us := ns / 1e3
	return fmt.Sprintf("%d.%03d", us/1e3, us%1e3)
}

func gapCell(ns int64) string {
	if ns < 0 {
		return "-"
	}
	return fmtMS(ns) + "ms"
}

func boolCell(b bool) string {
	if b {
		return "1"
	}
	return "0"
}
