package flowseq

import (
	"sort"
	"sync"

	"h2privacy/internal/obs"
)

// Collector aggregates finalized flows across a sweep, keyed by (flat
// trial index, flow ID) — fleet trials finalize one row set per member
// flow. It is safe for concurrent add (worker-pool trials finalize
// in completion order) and concurrent read (/debug/flows scrapes
// mid-sweep); every export sorts by trial index then flow ID, so output
// is byte-identical at any worker count.
//
// Metrics split, mirroring the sweep engine's determinism contract: the
// live counters PublishTo resolves (records, GETs, stream opens, resets,
// spans) stream in during trials — integer atomics whose totals are
// order-independent, so a live scrape shows the sweep advance — while the
// order-sensitive families (histograms, labeled totals) publish deferred
// and in trial-index order through PublishFeatures.
// flowKey identifies one flow of one trial; retried trials overwrite
// their failed attempt's rows key by key.
type flowKey struct {
	trial int
	flow  string
}

type Collector struct {
	mu     sync.Mutex
	trials map[flowKey]*FlowFeatures

	// Live instruments, resolved by PublishTo; nil no-ops otherwise.
	cRecC2S  *obs.Counter
	cRecS2C  *obs.Counter
	cGET     *obs.Counter
	cControl *obs.Counter
	cOpened  *obs.Counter
	cResets  *obs.Counter
	cSpans   *obs.Counter
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{trials: make(map[flowKey]*FlowFeatures)}
}

// PublishTo resolves the live flow_* counters against reg and pre-creates
// every deferred family and series PublishFeatures will touch, so a
// mid-sweep scrape's family shape does not depend on which trials
// happened to finish first (the perf collector's pattern). Nil collector
// or registry is a no-op.
func (c *Collector) PublishTo(reg *obs.Registry) {
	if c == nil || reg == nil {
		return
	}
	recs := reg.CounterVec("flow_records_observed_total",
		"TLS records observed at the gateway and fed to flowseq, by direction.", "dir")
	c.cRecC2S = recs.With("c2s")
	c.cRecS2C = recs.With("s2c")
	c.cGET = reg.Counter("flow_get_records_total",
		"GET-classified client→server records fed to flowseq.")
	c.cControl = reg.Counter("flow_control_records_total",
		"Small client→server control records (WINDOW_UPDATE, RST_STREAM) fed to flowseq.")
	c.cOpened = reg.Counter("flow_streams_opened_total",
		"HTTP/2 streams whose timeline flowseq started tracking.")
	c.cResets = reg.Counter("flow_stream_resets_total",
		"Tracked streams terminated by RST_STREAM.")
	c.cSpans = reg.Counter("flow_clean_slate_spans_total",
		"Clean-slate signature spans opened (control volley after server silence).")

	f := deferredFamilies(reg)
	f.streams.With("serialized")
	f.streams.With("multiplexed")
	for _, state := range []string{"complete", "reset", "open"} {
		f.ends.With(state)
	}
	for _, dir := range []string{"c2s", "s2c"} {
		f.bursts.With(dir)
		f.burstWire.With(dir)
	}
}

// flowFamilies bundles the deferred (order-sensitive) flow_* families so
// PublishTo's pre-creation and PublishFeatures' updates cannot drift in
// name, help or bucket layout.
type flowFamilies struct {
	streams   *obs.CounterVec
	ends      *obs.CounterVec
	bursts    *obs.CounterVec
	burstWire *obs.HistogramVec
	gaps      *obs.Histogram
	firstByte *obs.Histogram
	spans     *obs.Histogram
}

func deferredFamilies(reg *obs.Registry) flowFamilies {
	return flowFamilies{
		streams: reg.CounterVec("flow_streams_total",
			"Finalized stream timelines by transmission label (serialized = no interleaving, the attack's success signature).", "label"),
		ends: reg.CounterVec("flow_stream_end_total",
			"Finalized stream timelines by terminal state.", "state"),
		bursts: reg.CounterVec("flow_bursts_total",
			"Wire-side record bursts segmented per flow, by direction.", "dir"),
		burstWire: reg.HistogramVec("flow_burst_wire_bytes",
			"On-stream byte size of each wire-side burst, by direction.", obs.SizeBuckets, "dir"),
		gaps: reg.Histogram("flow_interburst_gap_seconds",
			"Silence between consecutive same-direction wire bursts.", obs.DurationBuckets),
		firstByte: reg.Histogram("flow_stream_first_byte_seconds",
			"Virtual time from a stream's request to its first DATA byte.", obs.DurationBuckets),
		spans: reg.Histogram("flow_clean_slate_span_seconds",
			"Duration of each clean-slate signature span.", obs.DurationBuckets),
	}
}

// PublishFeatures records one finalized flow's order-sensitive flow_*
// families into reg. Callers must invoke it in trial-index order for
// byte-identical registry snapshots across worker counts —
// core.PublishTrialMetrics does, via the sweep engine's deferred drain.
// Nil registry or features is a no-op.
func PublishFeatures(reg *obs.Registry, ff *FlowFeatures) {
	if reg == nil || ff == nil {
		return
	}
	f := deferredFamilies(reg)
	for i := range ff.Streams {
		s := &ff.Streams[i]
		if s.Label != "" {
			f.streams.With(s.Label).Inc()
		}
		f.ends.With(s.End).Inc()
		if s.RequestNS >= 0 && s.FirstByteNS >= s.RequestNS {
			f.firstByte.Observe(float64(s.FirstByteNS-s.RequestNS) / 1e9)
		}
	}
	for i := range ff.Bursts {
		b := &ff.Bursts[i]
		f.bursts.With(b.Dir).Inc()
		f.burstWire.With(b.Dir).Observe(float64(b.Wire))
		if b.GapNS >= 0 {
			f.gaps.Observe(float64(b.GapNS) / 1e9)
		}
	}
	for i := range ff.Spans {
		sp := &ff.Spans[i]
		f.spans.Observe(float64(sp.EndNS-sp.StartNS) / 1e9)
	}
}

// add registers a finalized flow; last Finalize for a (trial, flow) key
// wins.
func (c *Collector) add(ff *FlowFeatures) {
	if c == nil || ff == nil {
		return
	}
	c.mu.Lock()
	c.trials[flowKey{ff.Trial, ff.Flow}] = ff
	c.mu.Unlock()
}

// live counter feeds — each is a nil-safe no-op until PublishTo resolves
// the instruments (and forever, on a nil collector).

func (c *Collector) liveRecord(c2s bool) {
	if c == nil {
		return
	}
	if c2s {
		c.cRecC2S.Inc()
	} else {
		c.cRecS2C.Inc()
	}
}

func (c *Collector) liveGET() {
	if c == nil {
		return
	}
	c.cGET.Inc()
}

func (c *Collector) liveControl() {
	if c == nil {
		return
	}
	c.cControl.Inc()
}

func (c *Collector) liveStreamOpened() {
	if c == nil {
		return
	}
	c.cOpened.Inc()
}

func (c *Collector) liveReset() {
	if c == nil {
		return
	}
	c.cResets.Inc()
}

func (c *Collector) liveSpan() {
	if c == nil {
		return
	}
	c.cSpans.Inc()
}

// sorted snapshots the collected flows in (trial index, flow ID) order.
func (c *Collector) sorted() []*FlowFeatures {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*FlowFeatures, 0, len(c.trials))
	for _, ff := range c.trials {
		out = append(out, ff)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Trial != out[j].Trial {
			return out[i].Trial < out[j].Trial
		}
		return out[i].Flow < out[j].Flow
	})
	return out
}

// Receipt summarizes the collection for the run manifest and the
// /debug/vars features expvar: schema version, row counts per table, and
// the export path when one was configured. Row counts advance live as
// trials finalize.
type Receipt struct {
	Schema     int    `json:"schema"`
	Trials     int    `json:"trials"`
	StreamRows int    `json:"stream_rows"`
	BurstRows  int    `json:"burst_rows"`
	SpanRows   int    `json:"span_rows"`
	Path       string `json:"path,omitempty"`
}

// Receipt builds the current receipt. Trials counts distinct trial
// indices (a fleet trial contributes many flows but is still one trial).
// Nil collector returns a zero receipt (schema still stamped, so
// consumers can tell "absent" from "empty" by Trials).
func (c *Collector) Receipt(path string) Receipt {
	r := Receipt{Schema: SchemaVersion, Path: path}
	lastTrial := -1
	for _, ff := range c.sorted() {
		if ff.Trial != lastTrial {
			r.Trials++
			lastTrial = ff.Trial
		}
		r.StreamRows += len(ff.Streams)
		r.BurstRows += len(ff.Bursts)
		r.SpanRows += len(ff.Spans)
	}
	return r
}
