// Package metrics implements the paper's measurement machinery: the
// degree-of-multiplexing metric (§II-A) computed from ground-truth
// transmission logs, plus the small summary statistics the experiment
// tables report.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// TxSpan records where one DATA frame's payload landed in the ordered
// server→client application byte stream. The simulated server emits one
// TxSpan per DATA frame; offsets are cumulative bytes of h2 frame payload
// sent on the connection, so byte positions compare across streams.
type TxSpan struct {
	// Instance identifies one serving of one object ("quiz#0"; a
	// retransmitted copy of the same object is a distinct instance).
	Instance string
	// ObjectID is the catalog object this instance serves.
	ObjectID string
	// Offset is the stream position of the frame's first payload byte.
	Offset int64
	// Len is the payload length.
	Len int
	// At is the emission time (diagnostic; not used by the metric).
	At time.Duration
}

// interval is a half-open byte range [lo, hi).
type interval struct{ lo, hi int64 }

// DegreeOfMultiplexing computes, per instance, how much of the object is
// interleaved with other objects in the stream (§II-A). The value is
//
//	1 − (largest isolated contiguous run of the instance's bytes) / size
//
// where a run breaks whenever another instance's bytes sit between two of
// this instance's frames, and a run only counts as isolated where no other
// instance's transmission envelope covers it. DoM = 0 therefore means the
// instance went out as one contiguous block with nothing else around it —
// exactly the condition under which the eavesdropper's delimiter+sum
// attack (Fig. 1) reads the size; any positive value breaks that
// bookkeeping.
func DegreeOfMultiplexing(spans []TxSpan) map[string]float64 {
	byInstance := make(map[string][]TxSpan)
	for _, s := range spans {
		if s.Len <= 0 {
			continue
		}
		byInstance[s.Instance] = append(byInstance[s.Instance], s)
	}
	// Envelope [min, max) per instance.
	envelopes := make(map[string]interval, len(byInstance))
	for inst, ss := range byInstance {
		env := interval{lo: math.MaxInt64, hi: math.MinInt64}
		for _, s := range ss {
			if s.Offset < env.lo {
				env.lo = s.Offset
			}
			if end := s.Offset + int64(s.Len); end > env.hi {
				env.hi = end
			}
		}
		envelopes[inst] = env
	}
	out := make(map[string]float64, len(byInstance))
	for inst, ss := range byInstance {
		others := make([]interval, 0, len(envelopes)-1)
		for other, env := range envelopes {
			if other != inst {
				others = append(others, env)
			}
		}
		merged := mergeIntervals(others)
		// Spans arrive in emission order = offset order; merge
		// offset-contiguous spans into runs.
		sort.Slice(ss, func(i, j int) bool { return ss[i].Offset < ss[j].Offset })
		var total, bestIsolated int64
		run := interval{lo: ss[0].Offset, hi: ss[0].Offset}
		flush := func() {
			iso := (run.hi - run.lo) - overlap(run, merged)
			if iso > bestIsolated {
				bestIsolated = iso
			}
		}
		for _, s := range ss {
			total += int64(s.Len)
			if s.Offset != run.hi {
				flush()
				run = interval{lo: s.Offset, hi: s.Offset}
			}
			run.hi = s.Offset + int64(s.Len)
		}
		flush()
		if total == 0 {
			out[inst] = 0
			continue
		}
		out[inst] = 1 - float64(bestIsolated)/float64(total)
	}
	return out
}

// BestDoMPerObject reduces instance-level DoM to the minimum per object:
// the attacker succeeds if *any* serving of the object (including a
// retransmitted copy, §IV-C) transmits serialized.
func BestDoMPerObject(spans []TxSpan) map[string]float64 {
	return bestDoM(spans, nil)
}

// BestCompleteDoMPerObject is BestDoMPerObject restricted to complete
// servings: an instance only counts if its spans sum to the object's full
// size (sizes maps object id → size). A partially-transmitted copy — the
// server stopped mid-object when the stream was reset — cannot leak the
// size even when its fragment happens to be contiguous.
func BestCompleteDoMPerObject(spans []TxSpan, sizes map[string]int) map[string]float64 {
	return bestDoM(spans, sizes)
}

func bestDoM(spans []TxSpan, sizes map[string]int) map[string]float64 {
	dom := DegreeOfMultiplexing(spans)
	instObj := make(map[string]string)
	instBytes := make(map[string]int)
	for _, s := range spans {
		instObj[s.Instance] = s.ObjectID
		instBytes[s.Instance] += s.Len
	}
	best := make(map[string]float64)
	for inst, d := range dom {
		obj := instObj[inst]
		if sizes != nil && instBytes[inst] != sizes[obj] {
			continue
		}
		if cur, ok := best[obj]; !ok || d < cur {
			best[obj] = d
		}
	}
	return best
}

func mergeIntervals(in []interval) []interval {
	if len(in) == 0 {
		return nil
	}
	sort.Slice(in, func(i, j int) bool { return in[i].lo < in[j].lo })
	out := in[:1]
	for _, iv := range in[1:] {
		last := &out[len(out)-1]
		if iv.lo <= last.hi {
			if iv.hi > last.hi {
				last.hi = iv.hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// overlap returns how many bytes of iv fall inside the merged set.
func overlap(iv interval, merged []interval) int64 {
	var n int64
	for _, m := range merged {
		lo, hi := iv.lo, iv.hi
		if m.lo > lo {
			lo = m.lo
		}
		if m.hi < hi {
			hi = m.hi
		}
		if hi > lo {
			n += hi - lo
		}
	}
	return n
}

// Sample accumulates scalar observations across trials.
type Sample struct {
	values []float64
}

// Add appends an observation.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// N reports the observation count.
func (s *Sample) N() int { return len(s.values) }

// Mean reports the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// StdDev reports the sample standard deviation.
func (s *Sample) StdDev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Min reports the smallest observation (0 for an empty sample).
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	min := s.values[0]
	for _, v := range s.values[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// Max reports the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	max := s.values[0]
	for _, v := range s.values[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// Summary is the compact five-number description of a sample that the
// experiment tables and the trace text exporter share.
type Summary struct {
	N                        int
	Min, P50, P90, Max, Mean float64
}

// Summary computes the five-number summary in one pass over a single
// sorted copy (cheaper than five separate Percentile calls).
func (s *Sample) Summary() Summary {
	n := len(s.values)
	if n == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	return Summary{
		N:    n,
		Min:  sorted[0],
		P50:  nearestRank(sorted, 50),
		P90:  nearestRank(sorted, 90),
		Max:  sorted[n-1],
		Mean: s.Mean(),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3g p50=%.3g p90=%.3g max=%.3g mean=%.3g",
		s.N, s.Min, s.P50, s.P90, s.Max, s.Mean)
}

// nearestRank returns the p-th percentile of an already-sorted slice by
// the nearest-rank method: the smallest value whose rank is at least
// ⌈p/100·n⌉. p ≤ 0 yields the minimum, p ≥ 100 the maximum.
func nearestRank(sorted []float64, p float64) float64 {
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Percentile returns the p-th percentile (0–100) by nearest-rank.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	return nearestRank(sorted, p)
}

// Counter tallies boolean outcomes across trials.
type Counter struct {
	Hits, Total int
}

// Observe records one outcome.
func (c *Counter) Observe(hit bool) {
	c.Total++
	if hit {
		c.Hits++
	}
}

// Percent reports hits as a percentage of total (0 when empty).
func (c *Counter) Percent() float64 {
	if c.Total == 0 {
		return 0
	}
	return 100 * float64(c.Hits) / float64(c.Total)
}

// String renders "hits/total (pct%)".
func (c *Counter) String() string {
	return fmt.Sprintf("%d/%d (%.0f%%)", c.Hits, c.Total, c.Percent())
}

// PercentChange reports (new-base)/base as a percentage; 0 when base is 0.
func PercentChange(base, new float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (new - base) / base
}
