package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDoMSerializedIsZero(t *testing.T) {
	// Fig. 1 Case 1: O2 strictly after O1.
	spans := []TxSpan{
		{Instance: "o1#0", ObjectID: "o1", Offset: 0, Len: 1000},
		{Instance: "o1#0", ObjectID: "o1", Offset: 1000, Len: 1000},
		{Instance: "o2#0", ObjectID: "o2", Offset: 2000, Len: 1500},
	}
	dom := DegreeOfMultiplexing(spans)
	if dom["o1#0"] != 0 || dom["o2#0"] != 0 {
		t.Fatalf("dom = %v, want all zero", dom)
	}
}

func TestDoMInterleavedCase(t *testing.T) {
	// Fig. 1 Case 2: O1S1 O2S1 O1S2 O2S2, equal segment sizes.
	spans := []TxSpan{
		{Instance: "o1#0", ObjectID: "o1", Offset: 0, Len: 100},
		{Instance: "o2#0", ObjectID: "o2", Offset: 100, Len: 100},
		{Instance: "o1#0", ObjectID: "o1", Offset: 200, Len: 100},
		{Instance: "o2#0", ObjectID: "o2", Offset: 300, Len: 100},
	}
	dom := DegreeOfMultiplexing(spans)
	// o1's second segment lies inside o2's envelope [100,400): 100 of 200
	// bytes. Symmetrically for o2's first segment in o1's [0,300).
	if dom["o1#0"] != 0.5 || dom["o2#0"] != 0.5 {
		t.Fatalf("dom = %v, want 0.5 each", dom)
	}
}

func TestDoMFullyNested(t *testing.T) {
	spans := []TxSpan{
		{Instance: "big#0", ObjectID: "big", Offset: 0, Len: 100},
		{Instance: "small#0", ObjectID: "small", Offset: 100, Len: 50},
		{Instance: "big#0", ObjectID: "big", Offset: 150, Len: 100},
	}
	dom := DegreeOfMultiplexing(spans)
	if dom["small#0"] != 1.0 {
		t.Fatalf("nested object dom = %v, want 1", dom["small#0"])
	}
}

func TestDoMRetransmittedCopyCounts(t *testing.T) {
	// Two copies of the same object interleaving with each other still
	// multiplex (the monitor cannot tell copies apart).
	spans := []TxSpan{
		{Instance: "o#0", ObjectID: "o", Offset: 0, Len: 100},
		{Instance: "o#1", ObjectID: "o", Offset: 100, Len: 100},
		{Instance: "o#0", ObjectID: "o", Offset: 200, Len: 100},
		{Instance: "o#1", ObjectID: "o", Offset: 300, Len: 100},
	}
	dom := DegreeOfMultiplexing(spans)
	if dom["o#0"] == 0 || dom["o#1"] == 0 {
		t.Fatalf("copies did not count as interleaving: %v", dom)
	}
}

func TestBestDoMPerObject(t *testing.T) {
	// Copy 0 is interleaved, copy 1 transmits alone afterwards: the
	// object is attackable (§IV-C's retransmitted-version successes).
	spans := []TxSpan{
		{Instance: "o#0", ObjectID: "o", Offset: 0, Len: 100},
		{Instance: "x#0", ObjectID: "x", Offset: 100, Len: 100},
		{Instance: "o#0", ObjectID: "o", Offset: 200, Len: 100},
		{Instance: "o#1", ObjectID: "o", Offset: 1000, Len: 200},
	}
	best := BestDoMPerObject(spans)
	if best["o"] != 0 {
		t.Fatalf("best dom for o = %v, want 0", best["o"])
	}
	if best["x"] != 1 {
		t.Fatalf("best dom for x = %v, want 1 (inside o#0's envelope)", best["x"])
	}
}

func TestDoMSingleObject(t *testing.T) {
	spans := []TxSpan{{Instance: "solo#0", ObjectID: "solo", Offset: 0, Len: 500}}
	if dom := DegreeOfMultiplexing(spans); dom["solo#0"] != 0 {
		t.Fatalf("solo dom = %v", dom)
	}
}

func TestDoMIgnoresEmptySpans(t *testing.T) {
	spans := []TxSpan{
		{Instance: "a#0", ObjectID: "a", Offset: 0, Len: 0},
		{Instance: "b#0", ObjectID: "b", Offset: 0, Len: 10},
	}
	dom := DegreeOfMultiplexing(spans)
	if _, ok := dom["a#0"]; ok {
		t.Fatal("empty instance reported")
	}
	if dom["b#0"] != 0 {
		t.Fatalf("dom = %v", dom)
	}
}

// Property: DoM is always within [0,1], and spans-disjoint instances have
// DoM 0.
func TestDoMBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var spans []TxSpan
		off := int64(0)
		for i, r := range raw {
			l := int(r%1400) + 1
			inst := "i" + string(rune('a'+i%7)) + "#0"
			spans = append(spans, TxSpan{Instance: inst, ObjectID: inst, Offset: off, Len: l})
			off += int64(l)
			if r%3 == 0 {
				off += int64(r % 500) // gaps
			}
		}
		dom := DegreeOfMultiplexing(spans)
		for _, d := range dom {
			if d < 0 || d > 1 || math.IsNaN(d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: strictly sequential instances (each begins after the previous
// ends) always have DoM exactly 0.
func TestDoMSequentialProperty(t *testing.T) {
	f := func(lens []uint16) bool {
		var spans []TxSpan
		off := int64(0)
		for i, l := range lens {
			n := int(l%5000) + 1
			inst := TxSpan{Instance: fInst(i), ObjectID: fInst(i), Offset: off, Len: n}
			spans = append(spans, inst)
			off += int64(n)
		}
		for _, d := range DegreeOfMultiplexing(spans) {
			if d != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func fInst(i int) string { return "obj" + string(rune('0'+i%10)) + "x" + string(rune('a'+(i/10)%26)) }

func TestSampleStats(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 || s.Mean() != 5 {
		t.Fatalf("n=%d mean=%v", s.N(), s.Mean())
	}
	if sd := s.StdDev(); math.Abs(sd-2.138) > 0.01 {
		t.Fatalf("stddev = %v", sd)
	}
	if p := s.Percentile(50); p != 4 {
		t.Fatalf("p50 = %v", p)
	}
	if p := s.Percentile(100); p != 9 {
		t.Fatalf("p100 = %v", p)
	}
	var empty Sample
	if empty.Mean() != 0 || empty.StdDev() != 0 || empty.Percentile(50) != 0 {
		t.Fatal("empty sample stats not zero")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Observe(true)
	c.Observe(false)
	c.Observe(true)
	c.Observe(true)
	if c.Percent() != 75 {
		t.Fatalf("pct = %v", c.Percent())
	}
	if c.String() != "3/4 (75%)" {
		t.Fatalf("string = %q", c.String())
	}
	var empty Counter
	if empty.Percent() != 0 {
		t.Fatal("empty counter percent")
	}
}

func TestPercentChange(t *testing.T) {
	if PercentChange(100, 230) != 130 {
		t.Fatal("percent change broken")
	}
	if PercentChange(0, 10) != 0 {
		t.Fatal("zero base must yield 0")
	}
}

func TestBestCompleteDoMRequiresFullServing(t *testing.T) {
	sizes := map[string]int{"o": 300}
	spans := []TxSpan{
		// Partial serving (200 of 300 bytes), perfectly contiguous.
		{Instance: "o#0", ObjectID: "o", Offset: 0, Len: 200},
		// Complete serving, but interleaved.
		{Instance: "o#1", ObjectID: "o", Offset: 1000, Len: 150},
		{Instance: "x#0", ObjectID: "x", Offset: 1150, Len: 50},
		{Instance: "o#1", ObjectID: "o", Offset: 1200, Len: 150},
	}
	best := BestCompleteDoMPerObject(spans, sizes)
	if dom, ok := best["o"]; !ok || dom == 0 {
		t.Fatalf("complete dom = %v ok=%t; the contiguous partial must not count", dom, ok)
	}
	// The plain variant would report 0 via the partial instance.
	if BestDoMPerObject(spans)["o"] != 0 {
		t.Fatal("plain best dom should see the partial as serialized")
	}
	// Add a complete serialized serving: now it counts.
	spans = append(spans, TxSpan{Instance: "o#2", ObjectID: "o", Offset: 5000, Len: 300})
	if dom := BestCompleteDoMPerObject(spans, sizes)["o"]; dom != 0 {
		t.Fatalf("complete serialized serving not recognized: %v", dom)
	}
}

func TestSummaryFiveNumbers(t *testing.T) {
	var s Sample
	for _, v := range []float64{9, 1, 5, 3, 7} {
		s.Add(v)
	}
	sum := s.Summary()
	if sum.N != 5 || sum.Min != 1 || sum.Max != 9 || sum.Mean != 5 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.P50 != 5 {
		t.Fatalf("p50 = %v, want 5", sum.P50)
	}
	if sum.P90 != 9 { // ⌈0.9·5⌉ = rank 5 → last element
		t.Fatalf("p90 = %v, want 9", sum.P90)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Sample
	if sum := s.Summary(); sum != (Summary{}) {
		t.Fatalf("empty summary = %+v", sum)
	}
}

func TestNearestRankSingleObservation(t *testing.T) {
	var s Sample
	s.Add(42)
	// With n=1, every percentile is that one observation.
	for _, p := range []float64{0, 1, 50, 99, 100} {
		if got := s.Percentile(p); got != 42 {
			t.Fatalf("n=1 P%v = %v, want 42", p, got)
		}
	}
	sum := s.Summary()
	if sum.Min != 42 || sum.P50 != 42 || sum.P90 != 42 || sum.Max != 42 || sum.Mean != 42 {
		t.Fatalf("n=1 summary = %+v", sum)
	}
}

func TestNearestRankExtremes(t *testing.T) {
	var s Sample
	for v := 10.0; v <= 100; v += 10 {
		s.Add(v)
	}
	// p=0 must clamp to the minimum (⌈0⌉−1 = −1 → rank 0), p=100 to the
	// maximum, and out-of-range p must not panic.
	if got := s.Percentile(0); got != 10 {
		t.Fatalf("P0 = %v, want 10", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("P100 = %v, want 100", got)
	}
	if got := s.Percentile(-5); got != 10 {
		t.Fatalf("P-5 = %v, want 10", got)
	}
	if got := s.Percentile(250); got != 100 {
		t.Fatalf("P250 = %v, want 100", got)
	}
	// Nearest-rank on n=10: P50 is the 5th value, P90 the 9th.
	if got := s.Percentile(50); got != 50 {
		t.Fatalf("P50 = %v, want 50", got)
	}
	if got := s.Percentile(90); got != 90 {
		t.Fatalf("P90 = %v, want 90", got)
	}
}

func TestSummaryString(t *testing.T) {
	var s Sample
	s.Add(2)
	got := s.Summary().String()
	want := "n=1 min=2 p50=2 p90=2 max=2 mean=2"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
