package hpack

// DefaultDynamicTableSize is the SETTINGS_HEADER_TABLE_SIZE default (RFC
// 7540 §6.5.2).
const DefaultDynamicTableSize = 4096

// Encoder compresses header lists into HPACK header blocks. An Encoder is
// stateful (it maintains the dynamic table the peer's Decoder mirrors) and
// must see every header block of the connection, in order.
type Encoder struct {
	table         *dynamicTable
	pendingResize int // -1 when no resize is pending
	// UseHuffman emits Huffman-coded string literals when they are
	// shorter than the plain encoding (see huffman.go for the table
	// provenance). Off by default.
	UseHuffman bool
}

// NewEncoder returns an encoder with the given dynamic-table capacity.
func NewEncoder(maxTableSize int) *Encoder {
	if maxTableSize < 0 {
		maxTableSize = 0
	}
	return &Encoder{table: newDynamicTable(maxTableSize), pendingResize: -1}
}

// SetMaxDynamicTableSize schedules a dynamic-table size update; the update
// instruction is emitted at the start of the next header block (RFC 7541
// §4.2).
func (e *Encoder) SetMaxDynamicTableSize(n int) {
	if n < 0 {
		n = 0
	}
	e.pendingResize = n
}

// Encode appends the header block for fields to dst and returns it.
func (e *Encoder) Encode(dst []byte, fields []HeaderField) []byte {
	if e.pendingResize >= 0 {
		e.table.setMaxSize(e.pendingResize)
		dst = appendInteger(dst, 0x20, 5, e.pendingResize)
		e.pendingResize = -1
	}
	for _, f := range fields {
		dst = e.encodeField(dst, f)
	}
	return dst
}

func (e *Encoder) encodeField(dst []byte, f HeaderField) []byte {
	if f.Sensitive {
		// Never-indexed literal (§6.2.3): 0001 prefix.
		return e.encodeLiteral(dst, 0x10, 4, f, false)
	}
	// Exact match: indexed field (§6.1).
	if idx := staticExact[f.Name+"\x00"+f.Value]; idx != 0 && staticTable[idx-1].Value == f.Value {
		return appendInteger(dst, 0x80, 7, idx)
	}
	if idx := e.table.findExact(f); idx != 0 {
		return appendInteger(dst, 0x80, 7, idx)
	}
	// Literal with incremental indexing (§6.2.1): 01 prefix.
	dst = e.encodeLiteral(dst, 0x40, 6, f, true)
	e.table.add(f)
	return dst
}

// encodeString emits a string literal, Huffman-coded when enabled and
// profitable.
func (e *Encoder) encodeString(dst []byte, s string) []byte {
	if e.UseHuffman {
		if hl := HuffmanEncodeLength(s); hl < len(s) {
			dst = appendInteger(dst, 0x80, 7, hl)
			return AppendHuffmanString(dst, s)
		}
	}
	return appendString(dst, s)
}

// encodeLiteral emits a literal field with the given pattern/prefix,
// using a name index when one exists.
func (e *Encoder) encodeLiteral(dst []byte, pattern byte, prefix uint, f HeaderField, allowDynName bool) []byte {
	nameIdx := staticName[f.Name]
	if nameIdx == 0 && allowDynName {
		nameIdx = e.table.findName(f.Name)
	}
	dst = appendInteger(dst, pattern, prefix, nameIdx)
	if nameIdx == 0 {
		dst = e.encodeString(dst, f.Name)
	}
	return e.encodeString(dst, f.Value)
}

// DynamicTableSize returns the current dynamic-table size in RFC 7541
// §4.1 bytes. Invariant checkers compare it against the peer decoder's
// table after each header block.
func (e *Encoder) DynamicTableSize() int { return e.table.size }
