package hpack

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func requestFields(path string) []HeaderField {
	return []HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: "www.isidewith.com"},
		{Name: ":path", Value: path},
		{Name: "user-agent", Value: "Firefox/74.0"},
		{Name: "accept-encoding", Value: "gzip, deflate"},
	}
}

func roundTrip(t *testing.T, enc *Encoder, dec *Decoder, fields []HeaderField) []HeaderField {
	t.Helper()
	block := enc.Encode(nil, fields)
	got, err := dec.Decode(block)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return got
}

func fieldsEqualIgnoreSensitive(a, b []HeaderField) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Value != b[i].Value {
			return false
		}
	}
	return true
}

func TestRoundTripRequest(t *testing.T) {
	enc := NewEncoder(DefaultDynamicTableSize)
	dec := NewDecoder(DefaultDynamicTableSize)
	want := requestFields("/polls/2020-presidential")
	got := roundTrip(t, enc, dec, want)
	if !fieldsEqualIgnoreSensitive(got, want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestCompressionImprovesOnRepeat(t *testing.T) {
	enc := NewEncoder(DefaultDynamicTableSize)
	first := enc.Encode(nil, requestFields("/emblems/party1.png"))
	second := enc.Encode(nil, requestFields("/emblems/party1.png"))
	if len(second) >= len(first) {
		t.Fatalf("second block (%dB) not smaller than first (%dB)", len(second), len(first))
	}
	if len(second) > len(requestFields(""))+4 {
		t.Fatalf("fully-indexed block too large: %dB", len(second))
	}
}

func TestStatefulSequence(t *testing.T) {
	enc := NewEncoder(DefaultDynamicTableSize)
	dec := NewDecoder(DefaultDynamicTableSize)
	for i := 0; i < 20; i++ {
		path := "/img/" + strings.Repeat("x", i%5)
		want := requestFields(path)
		got := roundTrip(t, enc, dec, want)
		if !fieldsEqualIgnoreSensitive(got, want) {
			t.Fatalf("iteration %d mismatch", i)
		}
	}
}

func TestSensitiveNeverIndexed(t *testing.T) {
	enc := NewEncoder(DefaultDynamicTableSize)
	dec := NewDecoder(DefaultDynamicTableSize)
	fields := []HeaderField{{Name: "authorization", Value: "Bearer tok", Sensitive: true}}
	b1 := enc.Encode(nil, fields)
	b2 := enc.Encode(nil, fields)
	if len(b1) != len(b2) {
		t.Fatal("sensitive field appears to have been indexed")
	}
	if b1[0]&0xf0 != 0x10 {
		t.Fatalf("first byte %#x, want never-indexed pattern 0001", b1[0])
	}
	got, err := dec.Decode(b1)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Sensitive || got[0].Value != "Bearer tok" {
		t.Fatalf("got %+v", got[0])
	}
}

func TestStaticTableContents(t *testing.T) {
	if len(staticTable) != staticTableSize {
		t.Fatalf("static table has %d entries, want %d", len(staticTable), staticTableSize)
	}
	// Spot-check the RFC 7541 Appendix A anchors.
	checks := map[int]HeaderField{
		1:  {Name: ":authority"},
		2:  {Name: ":method", Value: "GET"},
		8:  {Name: ":status", Value: "200"},
		16: {Name: "accept-encoding", Value: "gzip, deflate"},
		38: {Name: "host"},
		61: {Name: "www-authenticate"},
	}
	for idx, want := range checks {
		if staticTable[idx-1] != want {
			t.Fatalf("static[%d] = %+v, want %+v", idx, staticTable[idx-1], want)
		}
	}
}

func TestIndexedFieldSingleByte(t *testing.T) {
	enc := NewEncoder(DefaultDynamicTableSize)
	block := enc.Encode(nil, []HeaderField{{Name: ":method", Value: "GET"}})
	if len(block) != 1 || block[0] != 0x82 {
		t.Fatalf("block = %#v, want [0x82]", block)
	}
}

func TestIntegerCoding(t *testing.T) {
	cases := []struct {
		v      int
		prefix uint
	}{
		{0, 5}, {10, 5}, {30, 5}, {31, 5}, {32, 5}, {1337, 5},
		{0, 7}, {126, 7}, {127, 7}, {128, 7}, {300, 7}, {1 << 20, 7},
		{255, 8}, {256, 8},
	}
	for _, c := range cases {
		enc := appendInteger(nil, 0, c.prefix, c.v)
		got, rest, err := readInteger(enc, c.prefix)
		if err != nil || got != c.v || len(rest) != 0 {
			t.Fatalf("roundtrip(%d, prefix %d) = %d, rest %d, err %v", c.v, c.prefix, got, len(rest), err)
		}
	}
	// RFC 7541 C.1.2: 1337 with 5-bit prefix is 1f 9a 0a.
	got := appendInteger(nil, 0, 5, 1337)
	if len(got) != 3 || got[0] != 0x1f || got[1] != 0x9a || got[2] != 0x0a {
		t.Fatalf("encode(1337,5) = %#v", got)
	}
}

func TestIntegerDecodeErrors(t *testing.T) {
	if _, _, err := readInteger(nil, 7); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty: %v", err)
	}
	if _, _, err := readInteger([]byte{0x7f, 0x80, 0x80}, 7); !errors.Is(err, ErrTruncated) {
		t.Fatalf("unterminated continuation: %v", err)
	}
	overflow := []byte{0x7f, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, _, err := readInteger(overflow, 7); !errors.Is(err, ErrIntegerOverflow) {
		t.Fatalf("overflow: %v", err)
	}
}

func TestMalformedHuffmanLiteralRejected(t *testing.T) {
	dec := NewDecoder(DefaultDynamicTableSize)
	// Literal with incremental indexing, new name, H bit set, one byte
	// 0x00 — in this code table 0x00 cannot be a whole number of symbols
	// plus valid EOS padding.
	block := []byte{0x40, 0x81, 0x00, 0x00}
	if _, err := dec.Decode(block); !errors.Is(err, ErrHuffman) {
		t.Fatalf("err = %v, want ErrHuffman", err)
	}
}

func TestInvalidIndexRejected(t *testing.T) {
	dec := NewDecoder(DefaultDynamicTableSize)
	if _, err := dec.Decode([]byte{0x80}); !errors.Is(err, ErrInvalidIndex) {
		t.Fatalf("index 0: %v", err)
	}
	if _, err := dec.Decode([]byte{0xff, 0x20}); !errors.Is(err, ErrInvalidIndex) {
		t.Fatalf("out of range: %v", err)
	}
}

func TestTableSizeUpdate(t *testing.T) {
	enc := NewEncoder(DefaultDynamicTableSize)
	dec := NewDecoder(DefaultDynamicTableSize)
	roundTrip(t, enc, dec, requestFields("/a"))
	enc.SetMaxDynamicTableSize(0) // flush
	got := roundTrip(t, enc, dec, requestFields("/a"))
	if !fieldsEqualIgnoreSensitive(got, requestFields("/a")) {
		t.Fatal("mismatch after table flush")
	}
	if dec.table.size != 0 || len(dec.table.entries) != 0 {
		t.Fatalf("decoder table not flushed: size=%d", dec.table.size)
	}
	// Growing again still round-trips.
	enc.SetMaxDynamicTableSize(DefaultDynamicTableSize)
	got = roundTrip(t, enc, dec, requestFields("/b"))
	if !fieldsEqualIgnoreSensitive(got, requestFields("/b")) {
		t.Fatal("mismatch after table regrow")
	}
}

func TestResizeAboveLimitRejected(t *testing.T) {
	dec := NewDecoder(100)
	block := appendInteger(nil, 0x20, 5, 4096)
	if _, err := dec.Decode(block); !errors.Is(err, ErrResizeExceedsLimit) {
		t.Fatalf("err = %v, want ErrResizeExceedsLimit", err)
	}
}

func TestResizeNotAtStartRejected(t *testing.T) {
	dec := NewDecoder(DefaultDynamicTableSize)
	block := []byte{0x82}
	block = appendInteger(block, 0x20, 5, 0)
	if _, err := dec.Decode(block); err == nil {
		t.Fatal("mid-block size update accepted")
	}
}

func TestEvictionKeepsSizeBounded(t *testing.T) {
	enc := NewEncoder(200)
	dec := NewDecoder(200)
	for i := 0; i < 50; i++ {
		f := []HeaderField{{Name: "x-custom-header", Value: strings.Repeat("v", i%40)}}
		got := roundTrip(t, enc, dec, f)
		if !fieldsEqualIgnoreSensitive(got, f) {
			t.Fatalf("iteration %d mismatch", i)
		}
		if enc.table.size > 200 || dec.table.size > 200 {
			t.Fatalf("table exceeded max: enc=%d dec=%d", enc.table.size, dec.table.size)
		}
	}
}

func TestOversizeEntryEmptiesTable(t *testing.T) {
	tbl := newDynamicTable(64)
	tbl.add(HeaderField{Name: "a", Value: "b"})
	tbl.add(HeaderField{Name: "huge", Value: strings.Repeat("v", 200)})
	if len(tbl.entries) != 0 || tbl.size != 0 {
		t.Fatalf("table not emptied: %d entries, %d bytes", len(tbl.entries), tbl.size)
	}
}

func TestHeaderListSizeLimit(t *testing.T) {
	enc := NewEncoder(DefaultDynamicTableSize)
	dec := NewDecoder(DefaultDynamicTableSize)
	dec.MaxHeaderListSize = 100
	fields := []HeaderField{{Name: "big", Value: strings.Repeat("v", 200)}}
	dec.MaxStringLength = 1 << 20
	block := enc.Encode(nil, fields)
	if _, err := dec.Decode(block); err == nil {
		t.Fatal("oversized header list accepted")
	}
}

func TestTruncatedLiteralRejected(t *testing.T) {
	dec := NewDecoder(DefaultDynamicTableSize)
	enc := NewEncoder(DefaultDynamicTableSize)
	block := enc.Encode(nil, []HeaderField{{Name: "x-a", Value: "yyyy"}})
	for cut := 1; cut < len(block); cut++ {
		if _, err := dec.Decode(block[:cut]); err == nil {
			// Some prefixes happen to be valid complete blocks only if
			// they contain whole fields; a literal cut mid-string must fail.
			t.Fatalf("truncated block at %d accepted", cut)
		}
	}
}

// Property: any sequence of header lists round-trips through a fresh
// encoder/decoder pair, including values with arbitrary bytes.
func TestRoundTripProperty(t *testing.T) {
	f := func(names, values [][]byte) bool {
		enc := NewEncoder(DefaultDynamicTableSize)
		dec := NewDecoder(DefaultDynamicTableSize)
		dec.MaxStringLength = 1 << 20
		var fields []HeaderField
		for i := range names {
			v := ""
			if i < len(values) {
				v = string(values[i])
			}
			name := string(names[i])
			if name == "" {
				name = "empty"
			}
			if len(name) > 4096 || len(v) > 4096 {
				continue
			}
			fields = append(fields, HeaderField{Name: name, Value: v, Sensitive: i%3 == 0})
		}
		block := enc.Encode(nil, fields)
		got, err := dec.Decode(block)
		if err != nil {
			return false
		}
		return fieldsEqualIgnoreSensitive(got, fields)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: repeated encoding of the same list never grows and stays
// decodable (dynamic-table state convergence).
func TestConvergenceProperty(t *testing.T) {
	f := func(seed uint8) bool {
		enc := NewEncoder(DefaultDynamicTableSize)
		dec := NewDecoder(DefaultDynamicTableSize)
		fields := []HeaderField{
			{Name: ":method", Value: "GET"},
			{Name: ":path", Value: "/p/" + strings.Repeat("a", int(seed)%30)},
			{Name: "cookie", Value: strings.Repeat("c", int(seed)%50)},
		}
		prev := 1 << 30
		for i := 0; i < 5; i++ {
			block := enc.Encode(nil, fields)
			if got, err := dec.Decode(block); err != nil || !fieldsEqualIgnoreSensitive(got, fields) {
				return false
			}
			if len(block) > prev {
				return false
			}
			prev = len(block)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeReflectsEncoderOrder(t *testing.T) {
	enc := NewEncoder(DefaultDynamicTableSize)
	dec := NewDecoder(DefaultDynamicTableSize)
	want := []HeaderField{
		{Name: "b", Value: "2"},
		{Name: "a", Value: "1"},
		{Name: "b", Value: "2"},
	}
	got := roundTrip(t, enc, dec, want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order not preserved: %+v", got)
	}
}
