package hpack

import (
	"errors"
	"fmt"
)

// ErrResizeExceedsLimit reports a dynamic-table size update above the
// limit this decoder advertised in SETTINGS.
var ErrResizeExceedsLimit = errors.New("hpack: table size update exceeds advertised limit")

// Decoder decompresses HPACK header blocks. Like the Encoder it is
// stateful and must see every header block of the connection in order.
type Decoder struct {
	table *dynamicTable
	// limit is the maximum table size this endpoint advertised; size
	// updates above it are a compression error.
	limit int
	// MaxStringLength bounds individual decoded literals (default 16 KiB).
	MaxStringLength int
	// MaxHeaderListSize bounds the total decoded size of one block using
	// the RFC 7540 §10.5.1 accounting (default 1 MiB).
	MaxHeaderListSize int
}

// NewDecoder returns a decoder whose dynamic table may grow to
// maxTableSize bytes.
func NewDecoder(maxTableSize int) *Decoder {
	if maxTableSize < 0 {
		maxTableSize = 0
	}
	return &Decoder{
		table:             newDynamicTable(maxTableSize),
		limit:             maxTableSize,
		MaxStringLength:   16 << 10,
		MaxHeaderListSize: 1 << 20,
	}
}

// SetAllowedMaxTableSize raises/lowers the limit the peer may resize the
// table to (mirrors sending SETTINGS_HEADER_TABLE_SIZE).
func (d *Decoder) SetAllowedMaxTableSize(n int) {
	if n < 0 {
		n = 0
	}
	d.limit = n
	if d.table.maxSize > n {
		d.table.setMaxSize(n)
	}
}

// Decode parses one complete header block.
func (d *Decoder) Decode(block []byte) ([]HeaderField, error) {
	var fields []HeaderField
	listSize := 0
	first := true
	for len(block) > 0 {
		b := block[0]
		switch {
		case b&0x80 != 0: // indexed field (§6.1)
			idx, rest, err := readInteger(block, 7)
			if err != nil {
				return nil, err
			}
			if idx == 0 {
				return nil, fmt.Errorf("%w: index 0", ErrInvalidIndex)
			}
			f, ok := d.table.get(idx)
			if !ok {
				return nil, fmt.Errorf("%w: %d", ErrInvalidIndex, idx)
			}
			fields = append(fields, f)
			listSize += f.size()
			block = rest
		case b&0xc0 == 0x40: // literal with incremental indexing (§6.2.1)
			f, rest, err := d.readLiteral(block, 6)
			if err != nil {
				return nil, err
			}
			d.table.add(f)
			fields = append(fields, f)
			listSize += f.size()
			block = rest
		case b&0xe0 == 0x20: // dynamic table size update (§6.3)
			if !first {
				return nil, errors.New("hpack: table size update not at block start")
			}
			n, rest, err := readInteger(block, 5)
			if err != nil {
				return nil, err
			}
			if n > d.limit {
				return nil, fmt.Errorf("%w: %d > %d", ErrResizeExceedsLimit, n, d.limit)
			}
			d.table.setMaxSize(n)
			block = rest
		case b&0xf0 == 0x10: // never-indexed literal (§6.2.3)
			f, rest, err := d.readLiteral(block, 4)
			if err != nil {
				return nil, err
			}
			f.Sensitive = true
			fields = append(fields, f)
			listSize += f.size()
			block = rest
		default: // 0000: literal without indexing (§6.2.2)
			f, rest, err := d.readLiteral(block, 4)
			if err != nil {
				return nil, err
			}
			fields = append(fields, f)
			listSize += f.size()
			block = rest
		}
		first = false
		if listSize > d.MaxHeaderListSize {
			return nil, fmt.Errorf("hpack: header list exceeds %d bytes", d.MaxHeaderListSize)
		}
	}
	return fields, nil
}

// readLiteral parses a literal field whose name-index prefix is n bits.
func (d *Decoder) readLiteral(block []byte, n uint) (HeaderField, []byte, error) {
	nameIdx, rest, err := readInteger(block, n)
	if err != nil {
		return HeaderField{}, nil, err
	}
	var f HeaderField
	if nameIdx > 0 {
		e, ok := d.table.get(nameIdx)
		if !ok {
			return HeaderField{}, nil, fmt.Errorf("%w: literal name index %d", ErrInvalidIndex, nameIdx)
		}
		f.Name = e.Name
	} else {
		f.Name, rest, err = readString(rest, d.MaxStringLength)
		if err != nil {
			return HeaderField{}, nil, err
		}
	}
	f.Value, rest, err = readString(rest, d.MaxStringLength)
	if err != nil {
		return HeaderField{}, nil, err
	}
	return f, rest, nil
}

// DynamicTableSize returns the current dynamic-table size in RFC 7541
// §4.1 bytes. Invariant checkers compare it against the peer encoder's
// table after each header block.
func (d *Decoder) DynamicTableSize() int { return d.table.size }
