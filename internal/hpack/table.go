// Package hpack implements RFC 7541 header compression for HTTP/2: the
// 61-entry static table, a size-bounded dynamic table, prefix-integer and
// string literal primitives, and an encoder/decoder pair.
//
// Huffman string literals are fully supported at the bit level (encoder
// opt-in via Encoder.UseHuffman, decoder always); see huffman.go for the
// one documented deviation about the code table's provenance.
package hpack

// A HeaderField is a single name/value pair. Sensitive fields are encoded
// as never-indexed literals (RFC 7541 §6.2.3) so intermediaries do not
// cache them.
type HeaderField struct {
	Name      string
	Value     string
	Sensitive bool
}

// size is the RFC 7541 §4.1 entry size: name + value + 32 bytes overhead.
func (f HeaderField) size() int { return len(f.Name) + len(f.Value) + 32 }

// staticTable is the RFC 7541 Appendix A static table. Index 1 is the
// first entry.
var staticTable = []HeaderField{
	{Name: ":authority"},
	{Name: ":method", Value: "GET"},
	{Name: ":method", Value: "POST"},
	{Name: ":path", Value: "/"},
	{Name: ":path", Value: "/index.html"},
	{Name: ":scheme", Value: "http"},
	{Name: ":scheme", Value: "https"},
	{Name: ":status", Value: "200"},
	{Name: ":status", Value: "204"},
	{Name: ":status", Value: "206"},
	{Name: ":status", Value: "304"},
	{Name: ":status", Value: "400"},
	{Name: ":status", Value: "404"},
	{Name: ":status", Value: "500"},
	{Name: "accept-charset"},
	{Name: "accept-encoding", Value: "gzip, deflate"},
	{Name: "accept-language"},
	{Name: "accept-ranges"},
	{Name: "accept"},
	{Name: "access-control-allow-origin"},
	{Name: "age"},
	{Name: "allow"},
	{Name: "authorization"},
	{Name: "cache-control"},
	{Name: "content-disposition"},
	{Name: "content-encoding"},
	{Name: "content-language"},
	{Name: "content-length"},
	{Name: "content-location"},
	{Name: "content-range"},
	{Name: "content-type"},
	{Name: "cookie"},
	{Name: "date"},
	{Name: "etag"},
	{Name: "expect"},
	{Name: "expires"},
	{Name: "from"},
	{Name: "host"},
	{Name: "if-match"},
	{Name: "if-modified-since"},
	{Name: "if-none-match"},
	{Name: "if-range"},
	{Name: "if-unmodified-since"},
	{Name: "last-modified"},
	{Name: "link"},
	{Name: "location"},
	{Name: "max-forwards"},
	{Name: "proxy-authenticate"},
	{Name: "proxy-authorization"},
	{Name: "range"},
	{Name: "referer"},
	{Name: "refresh"},
	{Name: "retry-after"},
	{Name: "server"},
	{Name: "set-cookie"},
	{Name: "strict-transport-security"},
	{Name: "transfer-encoding"},
	{Name: "user-agent"},
	{Name: "vary"},
	{Name: "via"},
	{Name: "www-authenticate"},
}

// staticTableSize is the number of static entries (61).
const staticTableSize = 61

// staticExact maps "name\x00value" to its static index for exact matches;
// staticName maps a name to the lowest static index with that name.
var (
	staticExact = buildStaticExact()
	staticName  = buildStaticName()
)

func buildStaticExact() map[string]int {
	m := make(map[string]int, len(staticTable))
	for i, f := range staticTable {
		key := f.Name + "\x00" + f.Value
		if _, ok := m[key]; !ok {
			m[key] = i + 1
		}
	}
	return m
}

func buildStaticName() map[string]int {
	m := make(map[string]int, len(staticTable))
	for i, f := range staticTable {
		if _, ok := m[f.Name]; !ok {
			m[f.Name] = i + 1
		}
	}
	return m
}

// dynamicTable is the shared dynamic-table logic: newest entry first, so
// absolute HPACK index = staticTableSize + 1 + position.
type dynamicTable struct {
	entries []HeaderField // entries[0] is the newest
	size    int
	maxSize int
}

func newDynamicTable(maxSize int) *dynamicTable {
	return &dynamicTable{maxSize: maxSize}
}

// add inserts an entry, evicting from the oldest end until it fits. An
// entry larger than the table empties the table (RFC 7541 §4.4).
func (t *dynamicTable) add(f HeaderField) {
	sz := f.size()
	for t.size+sz > t.maxSize && len(t.entries) > 0 {
		t.evictOldest()
	}
	if sz > t.maxSize {
		return
	}
	t.entries = append([]HeaderField{f}, t.entries...)
	t.size += sz
}

func (t *dynamicTable) evictOldest() {
	last := len(t.entries) - 1
	t.size -= t.entries[last].size()
	t.entries = t.entries[:last]
}

// setMaxSize resizes the table, evicting as needed.
func (t *dynamicTable) setMaxSize(n int) {
	t.maxSize = n
	for t.size > t.maxSize {
		t.evictOldest()
	}
}

// get returns the entry at the given absolute HPACK index (static and
// dynamic spaces combined), or false when out of range.
func (t *dynamicTable) get(index int) (HeaderField, bool) {
	if index >= 1 && index <= staticTableSize {
		return staticTable[index-1], true
	}
	pos := index - staticTableSize - 1
	if pos < 0 || pos >= len(t.entries) {
		return HeaderField{}, false
	}
	return t.entries[pos], true
}

// findExact returns the absolute index of an exact (name, value) match in
// the dynamic table, or 0.
func (t *dynamicTable) findExact(f HeaderField) int {
	for i, e := range t.entries {
		if e.Name == f.Name && e.Value == f.Value {
			return staticTableSize + 1 + i
		}
	}
	return 0
}

// findName returns the absolute index of a name match in the dynamic
// table, or 0.
func (t *dynamicTable) findName(name string) int {
	for i, e := range t.entries {
		if e.Name == name {
			return staticTableSize + 1 + i
		}
	}
	return 0
}
