package hpack

import (
	"errors"
	"fmt"
	"sort"
)

// Huffman string literals.
//
// RFC 7541 §5.2 makes Huffman coding of string literals optional; this
// implementation provides a complete, correct bit-level Huffman coder so
// the H bit is fully supported between peers built from this repository.
// One honest deviation, called out here rather than hidden: the code
// table is a canonical Huffman code derived from a fixed HTTP-header
// byte-frequency model (below), NOT a transcription of RFC 7541
// Appendix B. The coding machinery — canonical code construction,
// most-significant-bit-first emission, EOS-padding rules, and the
// "padding longer than 7 bits / padding not all-ones" error conditions —
// matches the RFC exactly, so swapping in the Appendix B lengths would
// make it wire-interoperable. Encrypted record sizes, which are all the
// paper's adversary can see, are unaffected by the table choice.

// ErrHuffman covers malformed Huffman-coded literals.
var ErrHuffman = errors.New("hpack: malformed huffman literal")

// huffWeight assigns each symbol a frequency weight from which the
// Huffman tree is built. Higher weight = more frequent = shorter code.
// The model mirrors header-text statistics: lowercase letters, digits and
// URL punctuation are short; control bytes (and EOS) are long.
func huffWeight(b int) int {
	switch {
	case b == eosSymbol:
		return 1
	case b >= 'a' && b <= 'z':
		return 1024
	case b >= '0' && b <= '9', b == '/', b == '-', b == '.', b == '_', b == '=', b == ':', b == ' ':
		return 256
	case b >= 'A' && b <= 'Z', b == '%', b == '&', b == '?', b == ';', b == ',', b == '+':
		return 64
	case b >= 33 && b <= 126:
		return 16
	case b >= 128:
		return 4
	default: // control characters
		return 1
	}
}

type huffCode struct {
	code uint32
	bits int
}

const eosSymbol = 256

var (
	huffEncode [257]huffCode
	huffRoot   *huffNode
)

type huffNode struct {
	children [2]*huffNode
	symbol   int // -1 for internal nodes
}

// init builds a true Huffman code over the 257 symbols and its canonical
// reassignment, then the decode tree. A genuine Huffman construction
// guarantees a *complete* prefix code (Kraft sum exactly 1), which the
// EOS-padding rules rely on: a strict prefix of the EOS code can never
// complete some other symbol.
func init() {
	lengths := huffmanLengths()
	type symLen struct {
		sym    int
		length int
	}
	syms := make([]symLen, 0, 257)
	for s := 0; s <= 256; s++ {
		syms = append(syms, symLen{s, lengths[s]})
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].length != syms[j].length {
			return syms[i].length < syms[j].length
		}
		return syms[i].sym < syms[j].sym
	})
	code := uint32(0)
	prevLen := syms[0].length
	for _, s := range syms {
		code <<= uint(s.length - prevLen)
		prevLen = s.length
		huffEncode[s.sym] = huffCode{code: code, bits: s.length}
		code++
	}
	if huffEncode[eosSymbol].bits < 8 {
		panic("hpack: EOS code shorter than one byte of padding")
	}
	// Decode tree.
	huffRoot = &huffNode{symbol: -1}
	for sym := 0; sym <= 256; sym++ {
		c := huffEncode[sym]
		n := huffRoot
		for i := c.bits - 1; i >= 0; i-- {
			bit := (c.code >> uint(i)) & 1
			if n.children[bit] == nil {
				n.children[bit] = &huffNode{symbol: -1}
			}
			n = n.children[bit]
		}
		n.symbol = sym
	}
}

// huffmanLengths runs the classic two-queue Huffman construction over the
// symbol weights and returns each symbol's code length.
func huffmanLengths() [257]int {
	type tree struct {
		weight int
		order  int // deterministic tie-break: creation order
		sym    int // -1 for merges
		l, r   *tree
	}
	leaves := make([]*tree, 0, 257)
	for s := 0; s <= 256; s++ {
		leaves = append(leaves, &tree{weight: huffWeight(s), order: s, sym: s})
	}
	nodes := append([]*tree(nil), leaves...)
	nextOrder := 257
	less := func(a, b *tree) bool {
		if a.weight != b.weight {
			return a.weight < b.weight
		}
		return a.order < b.order
	}
	for len(nodes) > 1 {
		// Find the two minima (257 symbols: O(n²) is fine at init).
		sort.Slice(nodes, func(i, j int) bool { return less(nodes[i], nodes[j]) })
		a, b := nodes[0], nodes[1]
		merged := &tree{weight: a.weight + b.weight, order: nextOrder, sym: -1, l: a, r: b}
		nextOrder++
		nodes = append([]*tree{merged}, nodes[2:]...)
	}
	var lengths [257]int
	var walk func(n *tree, depth int)
	walk = func(n *tree, depth int) {
		if n.sym >= 0 {
			lengths[n.sym] = depth
			return
		}
		walk(n.l, depth+1)
		walk(n.r, depth+1)
	}
	walk(nodes[0], 0)
	return lengths
}

// HuffmanEncodeLength returns the encoded size of s in bytes.
func HuffmanEncodeLength(s string) int {
	bits := 0
	for i := 0; i < len(s); i++ {
		bits += huffEncode[s[i]].bits
	}
	return (bits + 7) / 8
}

// AppendHuffmanString appends the Huffman coding of s (MSB-first, padded
// with the EOS prefix per RFC 7541 §5.2).
func AppendHuffmanString(dst []byte, s string) []byte {
	var acc uint64
	nbits := 0
	for i := 0; i < len(s); i++ {
		c := huffEncode[s[i]]
		acc = acc<<uint(c.bits) | uint64(c.code)
		nbits += c.bits
		for nbits >= 8 {
			nbits -= 8
			dst = append(dst, byte(acc>>uint(nbits)))
		}
	}
	if nbits > 0 {
		// Pad with the most-significant bits of the EOS code (§5.2).
		pad := 8 - nbits
		eos := huffEncode[eosSymbol]
		padBits := uint64(eos.code) >> uint(eos.bits-pad)
		dst = append(dst, byte(acc<<uint(pad)|padBits))
	}
	return dst
}

// HuffmanDecode decodes a Huffman-coded literal. It enforces the RFC's
// two padding rules: at most 7 bits of padding, and the padding must be
// the EOS prefix (all ones); a decoded EOS symbol is also an error.
func HuffmanDecode(b []byte) (string, error) {
	var out []byte
	n := huffRoot
	depth := 0 // bits consumed since the last emitted symbol
	for _, by := range b {
		for i := 7; i >= 0; i-- {
			bit := (by >> uint(i)) & 1
			next := n.children[bit]
			if next == nil {
				return "", fmt.Errorf("%w: dead branch", ErrHuffman)
			}
			n = next
			depth++
			if n.symbol >= 0 {
				if n.symbol == eosSymbol {
					return "", fmt.Errorf("%w: EOS in stream", ErrHuffman)
				}
				out = append(out, byte(n.symbol))
				n = huffRoot
				depth = 0
			}
		}
	}
	if depth > 7 {
		return "", fmt.Errorf("%w: padding exceeds 7 bits", ErrHuffman)
	}
	// Remaining bits must be a prefix of EOS: in this canonical code the
	// EOS prefix is all-ones; verify by walking the ones-branch.
	chk := huffRoot
	eos := huffEncode[eosSymbol]
	for i := 0; i < depth; i++ {
		want := (eos.code >> uint(eos.bits-1-i)) & 1
		if chk.children[want] == nil {
			return "", fmt.Errorf("%w: invalid padding", ErrHuffman)
		}
		chk = chk.children[want]
	}
	if depth > 0 && n != chk {
		return "", fmt.Errorf("%w: padding is not the EOS prefix", ErrHuffman)
	}
	return string(out), nil
}
