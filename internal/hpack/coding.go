package hpack

import (
	"errors"
	"fmt"
)

// Decode errors.
var (
	ErrIntegerOverflow = errors.New("hpack: integer overflow")
	ErrTruncated       = errors.New("hpack: truncated input")
	ErrInvalidIndex    = errors.New("hpack: invalid table index")
	ErrStringTooLong   = errors.New("hpack: string literal exceeds limit")
)

// maxDecodedInt bounds decoded integers; anything larger is hostile.
const maxDecodedInt = 1 << 28

// appendInteger encodes v with an n-bit prefix (RFC 7541 §5.1). first is
// the byte holding the pattern bits above the prefix.
func appendInteger(dst []byte, first byte, n uint, v int) []byte {
	if n < 1 || n > 8 {
		panic(fmt.Sprintf("hpack: invalid prefix size %d", n))
	}
	limit := 1<<n - 1
	if v < limit {
		return append(dst, first|byte(v))
	}
	dst = append(dst, first|byte(limit))
	v -= limit
	for v >= 128 {
		dst = append(dst, byte(v&0x7f)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// readInteger decodes an n-bit-prefix integer from b, returning the value
// and the remaining bytes.
func readInteger(b []byte, n uint) (int, []byte, error) {
	if len(b) == 0 {
		return 0, nil, ErrTruncated
	}
	limit := 1<<n - 1
	v := int(b[0]) & limit
	b = b[1:]
	if v < limit {
		return v, b, nil
	}
	shift := uint(0)
	for {
		if len(b) == 0 {
			return 0, nil, ErrTruncated
		}
		c := b[0]
		b = b[1:]
		v += int(c&0x7f) << shift
		if v > maxDecodedInt {
			return 0, nil, ErrIntegerOverflow
		}
		if c&0x80 == 0 {
			return v, b, nil
		}
		shift += 7
		if shift > 28 {
			return 0, nil, ErrIntegerOverflow
		}
	}
}

// appendString encodes a string literal without Huffman coding.
func appendString(dst []byte, s string) []byte {
	dst = appendInteger(dst, 0, 7, len(s))
	return append(dst, s...)
}

// readString decodes a string literal, Huffman-coded or plain.
func readString(b []byte, maxLen int) (string, []byte, error) {
	if len(b) == 0 {
		return "", nil, ErrTruncated
	}
	huffman := b[0]&0x80 != 0
	n, rest, err := readInteger(b, 7)
	if err != nil {
		return "", nil, err
	}
	if n > maxLen {
		return "", nil, fmt.Errorf("%w: %d > %d", ErrStringTooLong, n, maxLen)
	}
	if len(rest) < n {
		return "", nil, ErrTruncated
	}
	raw, rest := rest[:n], rest[n:]
	if !huffman {
		return string(raw), rest, nil
	}
	dec, err := HuffmanDecode(raw)
	if err != nil {
		return "", nil, err
	}
	if len(dec) > maxLen {
		return "", nil, fmt.Errorf("%w: decoded %d > %d", ErrStringTooLong, len(dec), maxLen)
	}
	return dec, rest, nil
}
