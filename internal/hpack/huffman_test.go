package hpack

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestHuffmanRoundTripBasics(t *testing.T) {
	cases := []string{
		"",
		"a",
		"www.isidewith.com",
		"/polls/2020-presidential/results",
		"gzip, deflate",
		"Mozilla/5.0 (X11; Linux x86_64) Firefox/74.0",
		string([]byte{0, 1, 2, 0xfe, 0xff}),
		strings.Repeat("z", 1000),
	}
	for _, s := range cases {
		enc := AppendHuffmanString(nil, s)
		if len(enc) != HuffmanEncodeLength(s) {
			t.Fatalf("%q: length %d, predicted %d", s, len(enc), HuffmanEncodeLength(s))
		}
		dec, err := HuffmanDecode(enc)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if dec != s {
			t.Fatalf("roundtrip %q → %q", s, dec)
		}
	}
}

func TestHuffmanCompressesHeaderText(t *testing.T) {
	// Typical header text must compress (the point of the exercise).
	for _, s := range []string{
		"/emblems/democratic.png",
		"text/html; charset=utf-8",
		"cache-control: max-age=3600",
	} {
		if got := HuffmanEncodeLength(s); got >= len(s) {
			t.Fatalf("%q: huffman %dB ≥ plain %dB", s, got, len(s))
		}
	}
}

func TestHuffmanCodeIsCompletePrefixCode(t *testing.T) {
	// Kraft sum must be exactly 1 (complete code): Σ 2^(L-li) == 2^L.
	maxLen := 0
	for _, c := range huffEncode {
		if c.bits > maxLen {
			maxLen = c.bits
		}
	}
	if maxLen > 32 {
		t.Fatalf("max code length %d", maxLen)
	}
	var sum uint64
	for _, c := range huffEncode {
		sum += uint64(1) << uint(maxLen-c.bits)
	}
	if sum != uint64(1)<<uint(maxLen) {
		t.Fatalf("Kraft sum %d != 2^%d", sum, maxLen)
	}
	// No code is a prefix of another (walk: every code must end on a leaf
	// whose children are nil).
	for sym, c := range huffEncode {
		n := huffRoot
		for i := c.bits - 1; i >= 0; i-- {
			n = n.children[(c.code>>uint(i))&1]
			if n == nil {
				t.Fatalf("symbol %d: dead branch", sym)
			}
		}
		if n.symbol != sym {
			t.Fatalf("symbol %d decodes to %d", sym, n.symbol)
		}
		if n.children[0] != nil || n.children[1] != nil {
			t.Fatalf("symbol %d is not a leaf", sym)
		}
	}
}

func TestHuffmanPaddingValidation(t *testing.T) {
	// A byte of zero bits: the zero-padding after the first symbol(s) is
	// not the EOS prefix.
	if _, err := HuffmanDecode([]byte{0x00}); !errors.Is(err, ErrHuffman) {
		t.Fatalf("zero padding accepted: %v", err)
	}
	// A full byte of EOS prefix alone is >7 bits of padding only if no
	// symbol completes; the EOS prefix's first 8 bits form "padding
	// exceeds 7 bits" or hit the EOS error. Either way: an error.
	eos := huffEncode[eosSymbol]
	b := byte(eos.code >> uint(eos.bits-8))
	if _, err := HuffmanDecode([]byte{b}); err == nil {
		t.Fatal("8 bits of EOS prefix accepted")
	}
}

func TestHuffmanEncoderDecoderIntegration(t *testing.T) {
	enc := NewEncoder(DefaultDynamicTableSize)
	enc.UseHuffman = true
	dec := NewDecoder(DefaultDynamicTableSize)
	fields := []HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":path", Value: "/polls/2020-presidential/results"},
		{Name: "user-agent", Value: "Firefox/74.0"},
		{Name: "x-bin", Value: string([]byte{0xff, 0x00, 0x80})}, // incompressible
	}
	plain := NewEncoder(DefaultDynamicTableSize).Encode(nil, fields)
	block := enc.Encode(nil, fields)
	if len(block) >= len(plain) {
		t.Fatalf("huffman block %dB not smaller than plain %dB", len(block), len(plain))
	}
	got, err := dec.Decode(block)
	if err != nil {
		t.Fatal(err)
	}
	if !fieldsEqualIgnoreSensitive(got, fields) {
		t.Fatalf("got %+v", got)
	}
}

// Property: every byte string round-trips through the Huffman coder.
func TestHuffmanRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		s := string(data)
		dec, err := HuffmanDecode(AppendHuffmanString(nil, s))
		return err == nil && dec == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: the huffman-enabled encoder and the standard decoder agree on
// arbitrary header lists.
func TestHuffmanHPACKProperty(t *testing.T) {
	f := func(names, values [][]byte) bool {
		enc := NewEncoder(DefaultDynamicTableSize)
		enc.UseHuffman = true
		dec := NewDecoder(DefaultDynamicTableSize)
		dec.MaxStringLength = 1 << 20
		var fields []HeaderField
		for i := range names {
			name := string(names[i])
			if name == "" || len(name) > 2048 {
				name = "n"
			}
			v := ""
			if i < len(values) && len(values[i]) <= 2048 {
				v = string(values[i])
			}
			fields = append(fields, HeaderField{Name: name, Value: v})
		}
		block := enc.Encode(nil, fields)
		got, err := dec.Decode(block)
		return err == nil && fieldsEqualIgnoreSensitive(got, fields)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHuffmanEncode(b *testing.B) {
	s := "/polls/2020-presidential/results?utm_source=share"
	b.SetBytes(int64(len(s)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AppendHuffmanString(nil, s)
	}
}

func BenchmarkHuffmanDecode(b *testing.B) {
	enc := AppendHuffmanString(nil, "/polls/2020-presidential/results?utm_source=share")
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := HuffmanDecode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
