package prop

import (
	"os"
	"strconv"
	"testing"
	"time"

	"h2privacy/internal/check"
	"h2privacy/internal/simtime"
	"h2privacy/internal/tcpsim"
)

// seedBudget resolves the CI seed budget: PROP_SEEDS overrides the
// default (kept small so `go test ./...` stays fast; CI raises it).
func seedBudget(def int) int {
	if s := os.Getenv("PROP_SEEDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// TestPropertyHarnessClean runs the generated trial budget against the
// intact stack: every checker armed, zero violations expected.
func TestPropertyHarnessClean(t *testing.T) {
	res, err := Explore(Options{Seeds: seedBudget(8), BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failing != nil {
		for _, v := range res.Violations {
			t.Errorf("violation: %v", v)
		}
		t.Fatalf("trial %s violated invariants (shrunk: %s)", res.Failing, res.Shrunk)
	}
	if res.Checked == 0 {
		t.Fatal("explored zero trials")
	}
}

// TestPropertyHarnessFindsLegacyStaleAck re-breaks processAck (the
// pre-fix go-back-N ACK-acceptance bound, see tcpsim.SetLegacyStaleAck)
// and requires the harness to find a violating configuration within the
// CI seed budget and shrink it to a still-failing trial.
func TestPropertyHarnessFindsLegacyStaleAck(t *testing.T) {
	tcpsim.SetLegacyStaleAck(true)
	defer tcpsim.SetLegacyStaleAck(false)
	res, err := Explore(Options{Seeds: seedBudget(24), BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failing == nil {
		t.Fatalf("harness missed the re-broken ACK bound in %d seeds", res.Checked)
	}
	found := false
	for _, v := range res.Violations {
		if v.Layer == "tcpsim" && v.Rule == "ignored-ack" {
			found = true
		}
		if v.TrialSeed != res.Failing.Seed {
			t.Errorf("violation carries seed %d, failing trial has %d", v.TrialSeed, res.Failing.Seed)
		}
	}
	if !found {
		t.Errorf("expected a tcpsim/ignored-ack violation, got %v", res.Violations)
	}
	if res.Shrunk == nil {
		t.Fatal("no shrunk trial")
	}
	// The shrunk trial must itself still fail, and must be no "larger"
	// than the original (shrinking never adds dimensions).
	if !fails(*res.Shrunk) {
		t.Errorf("shrunk trial %s does not fail", res.Shrunk)
	}
	t.Logf("failing: %s", res.Failing)
	t.Logf("shrunk (%d probes): %s", res.ShrinkProbes, res.Shrunk)
}

// TestGenerateDeterministic pins the generator's reproducibility: the
// same seed always yields the identical trial vector.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a := Generate(simtime.NewRand(seed), seed)
		b := Generate(simtime.NewRand(seed), seed)
		if a != b {
			t.Fatalf("seed %d: %s != %s", seed, a, b)
		}
		if a.Seed != seed {
			t.Fatalf("seed %d: trial carries seed %d", seed, a.Seed)
		}
	}
}

// TestShrinkRemovesIrrelevantDimensions gives the shrinker a failing
// trial padded with dimensions irrelevant to the legacy stale-ACK bug
// and checks they are stripped.
func TestShrinkRemovesIrrelevantDimensions(t *testing.T) {
	tcpsim.SetLegacyStaleAck(true)
	defer tcpsim.SetLegacyStaleAck(false)
	padded := Trial{
		Seed:     3,
		Attack:   true,
		Adaptive: false,
		Shuffled: true,
	}
	if !fails(padded) {
		t.Skip("padded trial does not fail under the legacy bound with this seed")
	}
	shrunk, probes := Shrink(padded, nil)
	if !fails(shrunk) {
		t.Fatalf("shrunk trial %s does not fail", shrunk)
	}
	if shrunk.Shuffled {
		t.Errorf("shrink kept the irrelevant shuffled-order defense: %s", shrunk)
	}
	t.Logf("shrunk in %d probes: %s", probes, shrunk)
}

// TestRunReportsIntoRecorder checks Run's recorder plumbing: index and
// seed land on the violations.
func TestRunReportsIntoRecorder(t *testing.T) {
	tcpsim.SetLegacyStaleAck(true)
	defer tcpsim.SetLegacyStaleAck(false)
	tr := Trial{Seed: 3, Attack: true}
	rec := check.NewRecorder()
	n, err := Run(tr, 7, rec)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Skip("seed 3 attack trial does not fail under the legacy bound")
	}
	if rec.Total() != n {
		t.Errorf("recorder total %d != returned %d", rec.Total(), n)
	}
	v, ok := rec.First()
	if !ok {
		t.Fatal("no first violation")
	}
	if v.TrialSeed != 3 || v.TrialIndex != 7 {
		t.Errorf("violation carries (seed=%d, index=%d), want (3, 7)", v.TrialSeed, v.TrialIndex)
	}
}

// TestExploreBudgetScales sanity-checks that one generated trial stays
// fast enough for the CI budget (a runaway trial would starve the lane).
func TestExploreBudgetScales(t *testing.T) {
	start := time.Now()
	if _, err := Explore(Options{Seeds: 2, BaseSeed: 100}); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 30*time.Second {
		t.Errorf("2 trials took %v — too slow for the CI seed budget", el)
	}
}
