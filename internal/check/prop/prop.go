// Package prop is the property-based trial harness over the simulated
// testbed: it generates randomized trial configurations (seeded, so every
// run is reproducible), executes them with every invariant checker armed
// (see internal/check), and — when a trial violates an invariant —
// shrinks the configuration by bisection over its dimension vector to a
// minimal still-failing trial.
//
// The harness is the repository's standing differential test: any layer
// change that breaks sequence-space conservation, HTTP/2 stream legality,
// flow-control accounting, HPACK table sync, link packet conservation or
// monitor reassembly shows up as a violating trial with a shrunk repro.
package prop

import (
	"fmt"
	"io"
	"time"

	"h2privacy/internal/adversary"
	"h2privacy/internal/check"
	"h2privacy/internal/core"
	"h2privacy/internal/simtime"
)

// Trial is one point in the harness's configuration space. It is a flat
// vector of scalar dimensions (comparable, so shrinking can detect a
// fixed point) covering the trial shapes the testbed exercises: the
// staged attack (open- and closed-loop), the single-knob studies, the
// defenses and fault scenarios.
type Trial struct {
	Seed int64

	// Attack arms the staged §V adversary (plan defaults); Adaptive makes
	// it closed-loop. The knob fields below are ignored while Attack is on
	// (core.TrialConfig applies them only to un-attacked trials).
	Attack   bool
	Adaptive bool

	// Scenario names a netsim fault scenario ("" disables).
	Scenario string

	// Defenses.
	ServerPush bool
	Shuffled   bool

	// Single-knob studies (core.TrialConfig semantics).
	DropRate        float64
	DropFrom        time.Duration
	DropDuration    time.Duration
	RequestSpacing  time.Duration
	RandomJitter    time.Duration
	ThrottleBps     float64
	CrossTrafficBps float64

	// Fleet topology: FleetN > 1 multiplexes the trial over a shared
	// bottleneck with FleetN-1 decoy page loads and gives the adversary a
	// FleetBudget-flow interference cap (core.FleetConfig).
	FleetN      int
	FleetBudget int
}

// String renders the trial compactly, zero dimensions omitted — the form
// violation repro lines embed.
func (t Trial) String() string {
	s := fmt.Sprintf("seed=%d", t.Seed)
	if t.Attack {
		s += " attack"
		if t.Adaptive {
			s += " adaptive"
		}
	}
	if t.Scenario != "" {
		s += " scenario=" + t.Scenario
	}
	if t.ServerPush {
		s += " push"
	}
	if t.Shuffled {
		s += " shuffled"
	}
	if t.DropRate > 0 {
		s += fmt.Sprintf(" drop=%.3f from=%v dur=%v", t.DropRate, t.DropFrom, t.DropDuration)
	}
	if t.RequestSpacing > 0 {
		s += fmt.Sprintf(" spacing=%v", t.RequestSpacing)
	}
	if t.RandomJitter > 0 {
		s += fmt.Sprintf(" jitter=%v", t.RandomJitter)
	}
	if t.ThrottleBps > 0 {
		s += fmt.Sprintf(" throttle=%.0fbps", t.ThrottleBps)
	}
	if t.CrossTrafficBps > 0 {
		s += fmt.Sprintf(" crosstraffic=%.0fbps", t.CrossTrafficBps)
	}
	if t.FleetN > 1 {
		s += fmt.Sprintf(" fleet=%d budget=%d", t.FleetN, t.FleetBudget)
	}
	return s
}

// Config translates the trial vector into a runnable core.TrialConfig
// (Check left nil; Run arms it).
func (t Trial) Config() core.TrialConfig {
	cfg := core.TrialConfig{
		Seed:                t.Seed,
		Scenario:            t.Scenario,
		ServerPush:          t.ServerPush,
		ShuffledEmblemOrder: t.Shuffled,
		DropRate:            t.DropRate,
		DropFrom:            t.DropFrom,
		DropDuration:        t.DropDuration,
		RequestSpacing:      t.RequestSpacing,
		RandomJitter:        t.RandomJitter,
		ThrottleBps:         t.ThrottleBps,
		CrossTrafficBps:     t.CrossTrafficBps,
	}
	if t.Attack {
		plan := adversary.DefaultPlan()
		plan.Adaptive = t.Adaptive
		cfg.Attack = &plan
	}
	if t.FleetN > 1 {
		cfg.Fleet = &core.FleetConfig{N: t.FleetN, Budget: t.FleetBudget}
	}
	return cfg
}

// scenarios the generator draws from: the catalog entries that stress the
// transport hardest (loss bursts, blackouts, delay steps).
var genScenarios = []string{"", "", "bursty-loss", "mbox-restart", "rtt-step"}

// Generate draws a random trial from the configuration space. The same
// rng state always yields the same trial; seed becomes the trial's own
// simulation seed.
func Generate(rng *simtime.Rand, seed int64) Trial {
	t := Trial{Seed: seed}
	switch rng.Intn(4) {
	case 0, 1:
		// The staged attack — the deepest cross-layer path (throttle +
		// jitter + drop windows + resets), half of them closed-loop.
		t.Attack = true
		t.Adaptive = rng.Bool(0.5)
	case 2:
		// Aggressive drop-window knobs: RTO rewinds with out-of-order
		// data in flight, the shape that distinguishes the ACK-acceptance
		// bound (see tcpsim.SetLegacyStaleAck).
		t.DropRate = 0.5 + 0.45*rng.Float64()
		t.DropFrom = rng.Uniform(0, 2*time.Second)
		t.DropDuration = rng.Uniform(2*time.Second, 6*time.Second)
	case 3:
		// Mixed mild knobs.
		if rng.Bool(0.5) {
			t.RequestSpacing = rng.Uniform(time.Millisecond, 60*time.Millisecond)
		}
		if rng.Bool(0.5) {
			t.RandomJitter = rng.Uniform(time.Millisecond, 20*time.Millisecond)
		}
		if rng.Bool(0.5) {
			t.ThrottleBps = 100e6 + 900e6*rng.Float64()
		}
	}
	// Orthogonal extras on any shape.
	t.Scenario = genScenarios[rng.Intn(len(genScenarios))]
	if rng.Bool(0.2) {
		t.ServerPush = true
	}
	if rng.Bool(0.2) {
		t.Shuffled = true
	}
	if rng.Bool(0.2) {
		t.CrossTrafficBps = 1e6 + 49e6*rng.Float64()
	}
	if rng.Bool(0.2) {
		// Shared-bottleneck fleet: small load mixes keep the seed budget
		// cheap; the budget spans observe-only (0) through multi-flow
		// interference.
		t.FleetN = 2 + rng.Intn(11)
		t.FleetBudget = rng.Intn(3)
	}
	return t
}

// Run executes the trial with all checkers armed, flushing violations
// into rec under the given trial index. It returns the violation count.
func Run(t Trial, index int, rec *check.Recorder) (int, error) {
	cfg := t.Config()
	cfg.Check = check.New(t.Seed, index, rec)
	res, err := core.RunTrial(cfg)
	if err != nil {
		return 0, err
	}
	return res.CheckViolations, nil
}

// fails re-runs the trial against a throwaway recorder — the shrinker's
// oracle.
func fails(t Trial) bool {
	n, err := Run(t, 0, check.NewRecorder())
	return err == nil && n > 0
}

// Options tunes Explore.
type Options struct {
	// Seeds is how many generated trials to run (the CI seed budget).
	// Default 32.
	Seeds int
	// BaseSeed offsets the generator seeds. Default 1.
	BaseSeed int64
	// Log, when non-nil, receives one line per trial and the shrink trace.
	Log io.Writer
	// NoShrink returns the raw failing trial without minimizing it.
	NoShrink bool
}

// Result is what Explore found.
type Result struct {
	// Checked counts trials run (excluding shrink probes).
	Checked int
	// Failing is the first generated trial that violated an invariant,
	// nil when the whole budget passed clean.
	Failing *Trial
	// Shrunk is the minimized still-failing trial (== Failing when no
	// dimension could be removed).
	Shrunk *Trial
	// Violations are the failing trial's violations (from its recorder).
	Violations []check.Violation
	// ShrinkProbes counts trials run by the shrinker.
	ShrinkProbes int
}

// Explore runs the seed budget, stopping at the first violating trial and
// shrinking it. A clean budget returns Result{Checked: Seeds}.
func Explore(opts Options) (*Result, error) {
	if opts.Seeds == 0 {
		opts.Seeds = 32
	}
	if opts.BaseSeed == 0 {
		opts.BaseSeed = 1
	}
	res := &Result{}
	for s := 0; s < opts.Seeds; s++ {
		seed := opts.BaseSeed + int64(s)
		t := Generate(simtime.NewRand(seed), seed)
		rec := check.NewRecorder()
		rec.SetRepro(func(v check.Violation) string {
			return fmt.Sprintf("prop.Run(prop.Trial{%s}) — regenerate with prop.Generate(simtime.NewRand(%d), %d)", t, seed, seed)
		})
		n, err := Run(t, s, rec)
		res.Checked++
		if err != nil {
			return nil, fmt.Errorf("prop: trial %s: %w", t, err)
		}
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "prop: trial %d/%d ok=%t %s\n", s+1, opts.Seeds, n == 0, t)
		}
		if n > 0 {
			res.Failing = &t
			res.Violations = rec.Violations()
			if opts.NoShrink {
				res.Shrunk = &t
				return res, nil
			}
			shrunk, probes := Shrink(t, opts.Log)
			res.Shrunk = &shrunk
			res.ShrinkProbes = probes
			return res, nil
		}
	}
	return res, nil
}

// shrinkBudget bounds how many probe trials one Shrink may run.
const shrinkBudget = 48

// Shrink minimizes a failing trial: first it tries to zero out whole
// dimensions (drop the fault scenario, the defenses, the cross traffic,
// each knob, finally the attack itself), then bisects the surviving
// numeric dimensions toward zero, keeping every candidate that still
// fails. The result is the smallest configuration the bisection ladder
// reaches that still violates an invariant.
func Shrink(t Trial, log io.Writer) (Trial, int) {
	probes := 0
	try := func(cand Trial) bool {
		if probes >= shrinkBudget || cand == t {
			return false
		}
		probes++
		if fails(cand) {
			if log != nil {
				fmt.Fprintf(log, "prop: shrink -> %s\n", cand)
			}
			t = cand
			return true
		}
		return false
	}

	// Pass 1: remove whole dimensions, cheapest-to-understand first.
	zeros := []func(*Trial){
		func(c *Trial) { c.Scenario = "" },
		func(c *Trial) { c.FleetN, c.FleetBudget = 0, 0 },
		func(c *Trial) { c.FleetBudget = 0 },
		func(c *Trial) { c.CrossTrafficBps = 0 },
		func(c *Trial) { c.ServerPush = false },
		func(c *Trial) { c.Shuffled = false },
		func(c *Trial) { c.RandomJitter = 0 },
		func(c *Trial) { c.RequestSpacing = 0 },
		func(c *Trial) { c.ThrottleBps = 0 },
		func(c *Trial) { c.DropRate, c.DropFrom, c.DropDuration = 0, 0, 0 },
		func(c *Trial) { c.Adaptive = false },
		func(c *Trial) { c.Attack, c.Adaptive = false, false },
	}
	for _, z := range zeros {
		cand := t
		z(&cand)
		try(cand)
	}

	// Pass 2: bisect the surviving numeric dimensions toward zero. Each
	// halving that still fails is kept; a failed halving ends that
	// dimension's ladder.
	halves := []func(*Trial) bool{
		func(c *Trial) bool { c.DropRate /= 2; return c.DropRate > 0.01 },
		func(c *Trial) bool { c.DropDuration /= 2; return c.DropDuration > 10*time.Millisecond },
		func(c *Trial) bool { c.DropFrom /= 2; return c.DropFrom > 10*time.Millisecond },
		func(c *Trial) bool { c.RandomJitter /= 2; return c.RandomJitter > 10*time.Microsecond },
		func(c *Trial) bool { c.RequestSpacing /= 2; return c.RequestSpacing > 10*time.Microsecond },
		func(c *Trial) bool { c.ThrottleBps /= 2; return c.ThrottleBps > 1e6 },
		func(c *Trial) bool { c.CrossTrafficBps /= 2; return c.CrossTrafficBps > 1e5 },
		func(c *Trial) bool { c.FleetN /= 2; return c.FleetN > 1 },
	}
	for _, h := range halves {
		for probes < shrinkBudget {
			cand := t
			if !h(&cand) || !try(cand) {
				break
			}
		}
	}
	return t, probes
}
