package check

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Violation is one invariant failure, stamped with enough context to
// reproduce the trial that produced it.
type Violation struct {
	Layer      string        // subsystem the rule guards: tcpsim, h2, hpack, netsim, simtime, capture
	Rule       string        // stable rule identifier, e.g. "ignored-ack"
	Detail     string        // human-readable specifics, built only on failure
	At         time.Duration // virtual (or wall) time when the rule fired
	TrialSeed  int64         // the trial's seed as derived by the sweep's seedFor
	TrialIndex int           // flat trial index within the sweep (0 for single runs)
}

func (v Violation) String() string {
	return fmt.Sprintf("trial %d (seed %d) at %v: %s/%s: %s",
		v.TrialIndex, v.TrialSeed, v.At, v.Layer, v.Rule, v.Detail)
}

// maxRetained caps the violations a Recorder keeps with full detail;
// everything is still counted per rule.
const maxRetained = 256

// Recorder aggregates violations across the trials of a run. It is safe
// for concurrent use by parallel sweep workers: each trial's Checker
// flushes into it once, under Finalize.
type Recorder struct {
	mu         sync.Mutex
	trials     int
	failed     int
	total      int
	violations []Violation
	byRule     map[string]int
	repro      func(Violation) string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{byRule: make(map[string]int)}
}

// SetRepro installs the command formatter used in reports to print how to
// re-run a failing trial (e.g. "h2attack -seed 42 -check").
func (r *Recorder) SetRepro(fn func(Violation) string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.repro = fn
	r.mu.Unlock()
}

func (r *Recorder) absorb(total int, violations []Violation) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.trials++
	if total == 0 {
		return
	}
	r.failed++
	r.total += total
	for _, v := range violations {
		r.byRule[v.Layer+"/"+v.Rule]++
		if len(r.violations) < maxRetained {
			r.violations = append(r.violations, v)
		}
	}
	// Rule instances beyond the checker's per-trial cap have no Violation
	// records; account for them under a catch-all bucket so totals add up.
	if extra := total - len(violations); extra > 0 {
		r.byRule["(beyond per-trial retention cap)"] += extra
	}
}

// Trials returns how many trials have flushed into the recorder.
func (r *Recorder) Trials() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trials
}

// FailedTrials returns how many flushed trials had at least one violation.
func (r *Recorder) FailedTrials() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.failed
}

// Total returns the violation count across all flushed trials.
func (r *Recorder) Total() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Violations returns a copy of the retained violations.
func (r *Recorder) Violations() []Violation {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Violation, len(r.violations))
	copy(out, r.violations)
	return out
}

// First returns the earliest-recorded violation, if any.
func (r *Recorder) First() (Violation, bool) {
	if r == nil {
		return Violation{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.violations) == 0 {
		return Violation{}, false
	}
	return r.violations[0], true
}

// Report renders the structured violation report as a string.
func (r *Recorder) Report() string {
	var b strings.Builder
	r.WriteReport(&b)
	return b.String()
}

// WriteReport writes the structured violation report: summary line,
// per-rule counts, and each retained violation with its repro command.
func (r *Recorder) WriteReport(w io.Writer) {
	if r == nil {
		fmt.Fprintln(w, "invariant checks: not armed")
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total == 0 {
		fmt.Fprintf(w, "invariant checks: OK (%d trial(s), 0 violations)\n", r.trials)
		return
	}
	fmt.Fprintf(w, "invariant checks: %d violation(s) in %d of %d trial(s)\n",
		r.total, r.failed, r.trials)
	rules := make([]string, 0, len(r.byRule))
	for rule := range r.byRule {
		rules = append(rules, rule)
	}
	sort.Strings(rules)
	for _, rule := range rules {
		fmt.Fprintf(w, "  %-32s x%d\n", rule, r.byRule[rule])
	}
	for i, v := range r.violations {
		fmt.Fprintf(w, "  [%d] %s\n", i, v.String())
		if r.repro != nil {
			fmt.Fprintf(w, "      repro: %s\n", r.repro(v))
		} else {
			fmt.Fprintf(w, "      repro: re-run trial %d with seed %d and -check\n",
				v.TrialIndex, v.TrialSeed)
		}
	}
}
