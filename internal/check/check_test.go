package check

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// violations returns the rules fired on c, in order.
func rules(c *Checker) []string {
	var out []string
	for _, v := range c.Violations() {
		out = append(out, v.Layer+"/"+v.Rule)
	}
	return out
}

func wantRules(t *testing.T, c *Checker, want ...string) {
	t.Helper()
	got := rules(c)
	if len(got) != len(want) {
		t.Fatalf("got rules %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rule %d: got %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestNilCheckerHooksAreNoOps(t *testing.T) {
	var c *Checker
	if c.Enabled() {
		t.Fatal("nil checker reports enabled")
	}
	// Every hook must be callable on the nil receiver.
	c.SetClock(nil)
	c.Concurrent()
	c.TCPRegister("x", 0)
	c.TCPPeers("a", "b")
	c.TCPSegment("x", 0, 1, false)
	c.TCPAck("x", 1, 1)
	c.TCPDeliver("x", 1)
	c.TCPRewind("x", 2, 1)
	c.H2Register("x", true, 65535)
	c.H2FrameSent("x", 0, 1, 10, 0, 0)
	c.H2FrameRecv("x", 0, 1, 10, 0, 0)
	c.H2DataSent("x", 1, 10)
	c.H2PeerInitialWindow("x", 65535)
	c.H2AppData("x", 1)
	c.HpackEncoded("x", 0)
	c.HpackDecoded("x", 0)
	c.LinkOffered(0, 100)
	c.LinkDropped(0, 100, DropLoss)
	c.LinkForwarded(0, 100, false)
	c.LinkDelivered(0, 100)
	c.LinkStatsFinal(0, 0, 0, 0, 0, 0, 0, 0, 0)
	c.SchedulerStep(time.Second)
	c.CaptureAppend(0, 1, 1, 1, 1)
	c.CaptureRecord(0, 1, 0)
	if n := c.Finalize(); n != 0 {
		t.Fatalf("nil Finalize = %d", n)
	}
}

func TestTCPSequenceRules(t *testing.T) {
	c := New(1, 0, nil)
	c.TCPRegister("client", 100)
	c.TCPRegister("server", 500)
	c.TCPPeers("client", "server")

	// In-order fresh sends extend the high-water mark.
	c.TCPSegment("client", 100, 200, false)
	c.TCPSegment("client", 200, 300, false)
	// Retransmit below the mark: fine.
	c.TCPSegment("client", 100, 200, true)
	wantRules(t, c)

	// A fresh segment above the mark leaves a gap.
	c.TCPSegment("client", 400, 500, false)
	wantRules(t, c, "tcpsim/seq-gap")

	// A non-retransmit overlapping already-sent space re-sends bytes.
	c2 := New(1, 0, nil)
	c2.TCPRegister("client", 0)
	c2.TCPSegment("client", 0, 100, false)
	c2.TCPSegment("client", 50, 100, false)
	wantRules(t, c2, "tcpsim/refresh-overlap")
}

func TestTCPAckRules(t *testing.T) {
	c := New(1, 0, nil)
	c.TCPRegister("client", 0)
	c.TCPSegment("client", 0, 1000, false)

	// ACK beyond anything sent.
	c.TCPAck("client", 2000, 0)
	wantRules(t, c, "tcpsim/ack-beyond-sent")

	// Valid ACK ignored by the endpoint (sndUna did not advance): the
	// legacy stale-ACK signature.
	c2 := New(1, 0, nil)
	c2.TCPRegister("client", 0)
	c2.TCPSegment("client", 0, 1000, false)
	c2.TCPAck("client", 600, 200)
	wantRules(t, c2, "tcpsim/ignored-ack")

	// sndUna moving backwards.
	c3 := New(1, 0, nil)
	c3.TCPRegister("client", 0)
	c3.TCPSegment("client", 0, 1000, false)
	c3.TCPAck("client", 600, 600)
	c3.TCPAck("client", 600, 400)
	// The regressed sndUna also makes the repeated ACK look ignored.
	wantRules(t, c3, "tcpsim/ignored-ack", "tcpsim/snduna-regress")
}

func TestTCPDeliverAndRewindRules(t *testing.T) {
	c := New(1, 0, nil)
	c.TCPRegister("client", 0)
	c.TCPRegister("server", 0)
	c.TCPPeers("client", "server")
	c.TCPSegment("client", 0, 1000, false)

	// The server delivering bytes the client actually sent: fine.
	c.TCPDeliver("server", 500)
	// Delivering beyond what the peer ever sent.
	c.TCPDeliver("server", 5000)
	wantRules(t, c, "tcpsim/deliver-unsent")

	// rcvNxt going backwards.
	c2 := New(1, 0, nil)
	c2.TCPRegister("server", 0)
	c2.TCPDeliver("server", 500)
	c2.TCPDeliver("server", 400)
	wantRules(t, c2, "tcpsim/rcvnxt-regress")

	// A "rewind" that moves sndNxt forward is not a rewind.
	c3 := New(1, 0, nil)
	c3.TCPRegister("client", 0)
	c3.TCPRewind("client", 100, 200)
	wantRules(t, c3, "tcpsim/rewind-forward")
}

func TestH2StreamLegality(t *testing.T) {
	const (
		frameData      = 0x0
		frameHeaders   = 0x1
		frameRSTStream = 0x3
		flagEndStream  = 0x1
	)
	// DATA before HEADERS on a client-initiated stream.
	c := New(1, 0, nil)
	c.H2Register("client", true, 65535)
	c.H2FrameSent("client", frameData, 1, 100, 0, 0)
	wantRules(t, c, "h2/data-on-idle-stream")

	// DATA after END_STREAM.
	c2 := New(1, 0, nil)
	c2.H2Register("client", true, 65535)
	c2.H2FrameSent("client", frameHeaders, 1, 30, flagEndStream, 0)
	c2.H2FrameSent("client", frameData, 1, 100, 0, 0)
	wantRules(t, c2, "h2/data-after-end-stream")

	// Frames after RST_STREAM.
	c3 := New(1, 0, nil)
	c3.H2Register("client", true, 65535)
	c3.H2FrameSent("client", frameHeaders, 1, 30, 0, 0)
	c3.H2FrameSent("client", frameRSTStream, 1, 4, 0, 0)
	c3.H2FrameSent("client", frameData, 1, 100, 0, 0)
	c3.H2FrameSent("client", frameRSTStream, 1, 4, 0, 0)
	wantRules(t, c3, "h2/frame-after-rst", "h2/double-rst")

	// RST-then-surfaced app data.
	c4 := New(1, 0, nil)
	c4.H2Register("client", true, 65535)
	c4.H2FrameSent("client", frameHeaders, 1, 30, 0, 0)
	c4.H2FrameSent("client", frameRSTStream, 1, 4, 0, 0)
	c4.H2AppData("client", 1)
	wantRules(t, c4, "h2/data-after-rst-surfaced")
}

func TestH2FlowControlWindows(t *testing.T) {
	c := New(1, 0, nil)
	c.H2Register("client", true, 65535)
	c.H2FrameSent("client", 0x1, 1, 30, 0, 0) // HEADERS opens stream 1
	// Consume the whole connection send window, then one more byte.
	c.H2DataSent("client", 1, 65535)
	wantRules(t, c)
	c.H2DataSent("client", 1, 1)
	got := rules(c)
	if len(got) == 0 || !strings.Contains(got[0], "send-window-negative") {
		t.Fatalf("want send-window-negative, got %v", got)
	}

	// WINDOW_UPDATE received replenishes; no violation after it.
	c2 := New(1, 0, nil)
	c2.H2Register("client", true, 65535)
	c2.H2FrameSent("client", 0x1, 1, 30, 0, 0)
	c2.H2DataSent("client", 1, 65535)
	c2.H2FrameRecv("client", 0x8, 0, 4, 0, 100) // conn window +100
	c2.H2FrameRecv("client", 0x8, 1, 4, 0, 100) // stream window +100
	c2.H2DataSent("client", 1, 100)
	wantRules(t, c2)
}

func TestHpackTableSync(t *testing.T) {
	c := New(1, 0, nil)
	c.H2Register("client", true, 65535)
	c.H2Register("server", false, 65535)
	// Client encodes at size 120, server decodes at 120: in sync.
	c.HpackEncoded("client", 120)
	c.HpackDecoded("server", 120)
	wantRules(t, c)
	// Drift: encoder says 200, decoder lands on 180.
	c.HpackEncoded("client", 200)
	c.HpackDecoded("server", 180)
	wantRules(t, c, "hpack/table-desync")
}

func TestLinkConservation(t *testing.T) {
	c := New(1, 0, nil)
	c.LinkOffered(DirC2S, 100)
	c.LinkForwarded(DirC2S, 100, false)
	c.LinkDelivered(DirC2S, 100)
	c.LinkOffered(DirC2S, 200)
	c.LinkDropped(DirC2S, 200, DropLoss)
	if n := c.Finalize(); n != 0 {
		t.Fatalf("clean link books finalize with %d violations: %v", n, rules(c))
	}

	// A forwarded packet that was never offered breaks conservation.
	c2 := New(1, 0, nil)
	c2.LinkOffered(DirC2S, 100)
	c2.LinkForwarded(DirC2S, 100, false)
	c2.LinkForwarded(DirC2S, 50, false)
	if n := c2.Finalize(); n == 0 {
		t.Fatal("unbalanced link books finalized clean")
	}

	// Delivery of a packet that was never forwarded.
	c3 := New(1, 0, nil)
	c3.LinkOffered(DirC2S, 100)
	c3.LinkDelivered(DirC2S, 100)
	got := rules(c3)
	if len(got) == 0 || got[0] != "netsim/delivered-unforwarded" {
		t.Fatalf("want delivered-unforwarded, got %v", got)
	}
}

func TestLinkStatsDrift(t *testing.T) {
	c := New(1, 0, nil)
	c.LinkOffered(DirS2C, 100)
	c.LinkForwarded(DirS2C, 100, false)
	c.LinkDelivered(DirS2C, 100)
	// Reported stats match the shadow.
	c.LinkStatsFinal(DirS2C, 1, 1, 0, 0, 0, 0, 0, 100)
	wantRules(t, c)
	// Reported stats disagree on BytesDelivered.
	c.LinkStatsFinal(DirS2C, 1, 1, 0, 0, 0, 0, 0, 99)
	if got := rules(c); len(got) == 0 || got[0] != "netsim/link-stats-drift" {
		t.Fatalf("want link-stats-drift, got %v", got)
	}
}

func TestSchedulerMonotonicity(t *testing.T) {
	c := New(1, 0, nil)
	c.SchedulerStep(time.Second)
	c.SchedulerStep(time.Second) // equal is fine (FIFO same-time events)
	c.SchedulerStep(2 * time.Second)
	wantRules(t, c)
	c.SchedulerStep(time.Second)
	wantRules(t, c, "simtime/time-regress")
}

func TestCaptureRules(t *testing.T) {
	// Parallel arrays and contiguous appends: clean.
	c := New(1, 0, nil)
	c.CaptureAppend(DirC2S, 10, 10, 10, 1010)
	c.CaptureAppend(DirC2S, 5, 15, 15, 1015)
	c.CaptureRecord(DirC2S, 15, 0)
	wantRules(t, c)

	// Taint array misaligned with the buffer.
	c2 := New(1, 0, nil)
	c2.CaptureAppend(DirC2S, 10, 10, 9, 1010)
	wantRules(t, c2, "capture/taint-misaligned")

	// Sequence discontinuity.
	c3 := New(1, 0, nil)
	c3.CaptureAppend(DirC2S, 10, 10, 10, 1010)
	c3.CaptureAppend(DirC2S, 10, 20, 20, 1025)
	wantRules(t, c3, "capture/stream-discontinuity")

	// Records failing to partition the appended bytes.
	c4 := New(1, 0, nil)
	c4.CaptureAppend(DirC2S, 20, 20, 20, 1020)
	c4.CaptureRecord(DirC2S, 15, 0)
	wantRules(t, c4, "capture/record-partition")
}

func TestViolationCarriesTrialContext(t *testing.T) {
	c := New(42, 7, nil)
	clock := 3 * time.Second
	c.SetClock(func() time.Duration { return clock })
	c.SchedulerStep(2 * time.Second)
	c.SchedulerStep(time.Second)
	vs := c.Violations()
	if len(vs) != 1 {
		t.Fatalf("want 1 violation, got %d", len(vs))
	}
	v := vs[0]
	if v.TrialSeed != 42 || v.TrialIndex != 7 || v.At != 3*time.Second {
		t.Fatalf("violation context = seed %d index %d at %v", v.TrialSeed, v.TrialIndex, v.At)
	}
}

func TestPerTrialRetentionCap(t *testing.T) {
	rec := NewRecorder()
	c := New(1, 0, rec)
	for i := 0; i < maxPerTrial+50; i++ {
		c.TCPAck("ghost", 100, 0) // unregistered names are ignored
	}
	c.TCPRegister("x", 0)
	for i := 0; i < maxPerTrial+50; i++ {
		c.TCPRewind("x", 0, uint64(i+1)) // always forward: always violates
	}
	if got := len(c.Violations()); got != maxPerTrial {
		t.Fatalf("retained %d violations, cap is %d", got, maxPerTrial)
	}
	if c.Total() != maxPerTrial+50 {
		t.Fatalf("total %d, want %d", c.Total(), maxPerTrial+50)
	}
	c.Finalize()
	if rec.Total() != maxPerTrial+50 {
		t.Fatalf("recorder total %d, want %d", rec.Total(), maxPerTrial+50)
	}
}

func TestRecorderReport(t *testing.T) {
	rec := NewRecorder()
	// Clean recorder.
	c := New(5, 0, rec)
	c.Finalize()
	if rep := rec.Report(); !strings.Contains(rep, "OK") || !strings.Contains(rep, "1 trial") {
		t.Fatalf("clean report: %q", rep)
	}

	// One failing trial out of two.
	c2 := New(9, 1, rec)
	c2.TCPRegister("x", 0)
	c2.TCPRewind("x", 0, 5)
	c2.Finalize()
	rep := rec.Report()
	for _, want := range []string{"rewind-forward", "seed 9", "trial 1", "repro"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	if rec.Trials() != 2 || rec.FailedTrials() != 1 {
		t.Fatalf("trials=%d failed=%d", rec.Trials(), rec.FailedTrials())
	}

	// A repro hook rewrites the repro line.
	rec2 := NewRecorder()
	rec2.SetRepro(func(v Violation) string { return "run-me --seed=" + v.String() })
	c3 := New(1, 0, rec2)
	c3.TCPRegister("x", 0)
	c3.TCPRewind("x", 0, 5)
	c3.Finalize()
	if rep := rec2.Report(); !strings.Contains(rep, "run-me --seed=") {
		t.Fatalf("custom repro missing:\n%s", rep)
	}
}

func TestConcurrentCheckerIsRaceFree(t *testing.T) {
	rec := NewRecorder()
	c := New(1, 0, rec)
	c.Concurrent()
	c.TCPRegister("client", 0)
	c.H2Register("client", true, 65535)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.TCPSegment("client", uint64(i*100), uint64(i*100+100), true)
				c.LinkOffered(DirC2S, 100)
				c.LinkForwarded(DirC2S, 100, false)
				c.LinkDelivered(DirC2S, 100)
				c.HpackEncoded("client", i)
			}
		}(g)
	}
	wg.Wait()
	c.Finalize()
}
