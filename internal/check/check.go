// Package check is the runtime invariant subsystem for the simulation
// stack. A *Checker is armed per trial and threaded through the same
// configuration points as the tracer (tcpsim.Config, h2.Config,
// netsim.PathConfig, core.TrialConfig, ...). Each layer calls cheap hook
// methods with scalar arguments; the checker shadows the protocol state
// independently and records a Violation whenever the real implementation
// and the shadow disagree.
//
// Like internal/trace, a nil *Checker is the disabled subsystem: every
// hook is nil-receiver safe, costs one pointer comparison, and allocates
// nothing. Detail strings are only built when a violation actually fires.
//
// The package deliberately imports nothing from the rest of the module so
// that every layer (simtime excepted, which stays dependency-free and is
// wired via a plain func hook) can import it without cycles.
package check

import (
	"fmt"
	"sync"
	"time"
)

// Directions for the link and capture hooks. They mirror
// netsim.ClientToServer / netsim.ServerToClient without importing netsim.
const (
	DirC2S uint8 = 0
	DirS2C uint8 = 1
)

// Drop fate categories for LinkDropped, mirroring the link's stats fields.
const (
	DropPolicy uint8 = iota // dropped by the adversary's packet processor
	DropFault               // dropped by an injected fault (blackout / burst-loss episode)
	DropLoss                // natural random loss
	DropQueue               // queue overflow
)

// RFC 7540 frame type values, as passed by the h2 hooks.
const (
	frameData         uint8 = 0x0
	frameHeaders      uint8 = 0x1
	frameRSTStream    uint8 = 0x3
	framePushPromise  uint8 = 0x5
	frameWindowUpdate uint8 = 0x8
)

const flagEndStream = 0x1

// maxPerTrial caps the violations retained with full detail per trial;
// further violations are still counted.
const maxPerTrial = 32

// Checker is a per-trial invariant checker. The zero value is not usable;
// construct with New. A nil *Checker is the disabled subsystem.
type Checker struct {
	seed  int64
	trial int
	rec   *Recorder
	clock func() time.Duration
	mu    *sync.Mutex // non-nil only in Concurrent mode (wall-clock servers)

	total      int
	violations []Violation

	tcp   map[string]*tcpShadow
	h2    map[string]*h2Shadow
	hpack [2][]int // FIFO of encoder table sizes, indexed by sender role (0=client,1=server)

	links [2]linkShadow
	caps  [2]capShadow
	aggs  [2]aggShadow

	// Adversary interference-budget shadow: which fleet flows currently
	// hold a slot, and the configured cap.
	budgetCap    int
	budgetActive map[int]bool
	budgetPeak   int

	lastAt  time.Duration
	stepped bool
}

type tcpShadow struct {
	name string
	// freshHigh is the exclusive high-water mark of first-transmission
	// sequence space: every byte below it has been sent at least once, and
	// fresh (non-retransmit) segments may only begin exactly at it.
	freshHigh uint64
	peer      *tcpShadow
	maxSndUna uint64
	haveAck   bool
	maxRcvNxt uint64
	haveRcv   bool
	rewinds   int
}

type h2Shadow struct {
	name     string
	isClient bool
	// Flow-control shadows, recomputed from frames alone.
	connSend int64
	connRecv int64
	peerInit int64 // peer's advertised SETTINGS_INITIAL_WINDOW_SIZE (governs our send windows)
	myInit   int64
	streams  map[uint32]*h2StreamShadow
}

type h2StreamShadow struct {
	opened    bool
	resLocal  bool // reserved by a PUSH_PROMISE we sent
	resRemote bool // reserved by a PUSH_PROMISE we received
	sentES    bool
	recvES    bool
	sentRST   bool
	recvRST   bool
	sendWin   int64
	recvWin   int64
}

type linkShadow struct {
	offeredPkts   int
	forwardedPkts int
	dupPkts       int
	deliveredPkts int
	droppedPkts   [4]int
	offeredBytes  int64
	forwardBytes  int64
	deliverBytes  int64
	droppedBytes  int64
}

func (l *linkShadow) droppedTotal() int {
	return l.droppedPkts[0] + l.droppedPkts[1] + l.droppedPkts[2] + l.droppedPkts[3]
}

// aggShadow tallies admissions to a shared bottleneck, one direction.
// armed distinguishes "no bottleneck in this trial" from "a bottleneck
// that admitted nothing".
type aggShadow struct {
	armed    bool
	fwdPkts  int
	fwdBytes int64
}

type capShadow struct {
	init     bool
	nextSeq  uint64
	appended int64
	parsed   int64
}

// New returns an armed checker for one trial. seed and trial identify the
// trial in violation reports (trial is the flat index within a sweep; 0
// for single runs). rec may be nil; Finalize then only returns the count
// and violations stay retrievable via Violations.
func New(seed int64, trial int, rec *Recorder) *Checker {
	return &Checker{
		seed:  seed,
		trial: trial,
		rec:   rec,
		tcp:   make(map[string]*tcpShadow),
		h2:    make(map[string]*h2Shadow),
	}
}

// Enabled reports whether the checker is armed. Safe on nil.
func (c *Checker) Enabled() bool { return c != nil }

// SetClock installs the virtual-clock source used to stamp violations
// (typically the scheduler's Now). Safe on nil.
func (c *Checker) SetClock(clock func() time.Duration) {
	if c == nil {
		return
	}
	c.clock = clock
}

// Concurrent switches the checker to mutex-protected mode for wall-clock
// use (h2serve), where hooks fire from multiple goroutines. The
// single-threaded simulator never needs this. Safe on nil.
func (c *Checker) Concurrent() {
	if c == nil {
		return
	}
	c.mu = &sync.Mutex{}
}

func (c *Checker) lock() {
	if c.mu != nil {
		c.mu.Lock()
	}
}

func (c *Checker) unlock() {
	if c.mu != nil {
		c.mu.Unlock()
	}
}

func (c *Checker) now() time.Duration {
	if c.clock != nil {
		return c.clock()
	}
	return c.lastAt
}

// violate records a violation. format/args are only evaluated here, on the
// failure path, so healthy trials never build detail strings.
func (c *Checker) violate(layer, rule, format string, args ...any) {
	c.total++
	if len(c.violations) >= maxPerTrial {
		return
	}
	c.violations = append(c.violations, Violation{
		Layer:      layer,
		Rule:       rule,
		Detail:     fmt.Sprintf(format, args...),
		At:         c.now(),
		TrialSeed:  c.seed,
		TrialIndex: c.trial,
	})
}

// Violations returns a copy of the retained violations. Safe on nil.
func (c *Checker) Violations() []Violation {
	if c == nil {
		return nil
	}
	c.lock()
	defer c.unlock()
	out := make([]Violation, len(c.violations))
	copy(out, c.violations)
	return out
}

// Total returns the number of violations recorded so far (including ones
// beyond the retention cap). Safe on nil.
func (c *Checker) Total() int {
	if c == nil {
		return 0
	}
	c.lock()
	defer c.unlock()
	return c.total
}

// Finalize runs the end-of-trial invariants, flushes the trial's
// violations into the Recorder (if any), and returns the total violation
// count for the trial. Safe on nil (returns 0).
func (c *Checker) Finalize() int {
	if c == nil {
		return 0
	}
	c.lock()
	for dir := range c.links {
		l := &c.links[dir]
		if l.offeredPkts != l.forwardedPkts+l.droppedTotal() {
			c.violate("netsim", "link-conservation",
				"dir=%d offered=%d forwarded=%d dropped=%d at trial end",
				dir, l.offeredPkts, l.forwardedPkts, l.droppedTotal())
		}
		if l.deliveredPkts > l.forwardedPkts+l.dupPkts {
			c.violate("netsim", "delivered-unforwarded",
				"dir=%d delivered=%d > forwarded=%d + dup=%d",
				dir, l.deliveredPkts, l.forwardedPkts, l.dupPkts)
		}
	}
	total := c.total
	violations := c.violations
	c.unlock()
	if c.rec != nil {
		c.rec.absorb(total, violations)
	}
	return total
}

// Abandon flushes whatever violations a dead trial recorded before it
// panicked or tripped a watchdog, WITHOUT running the end-of-trial
// invariants: conservation checks assume the trial drained cleanly and
// would fire spuriously on mid-flight state (packets still queued on a
// link read as offered-but-unaccounted). Violations recorded before the
// failure are real evidence — often the cause — so they reach the
// Recorder; the trial's failure itself is reported by the sweep
// supervisor, not here. A dead trial with zero violations flushes
// nothing — it never counts as a checked trial in the recorder's
// summary. Returns the flushed total. Safe on nil.
func (c *Checker) Abandon() int {
	if c == nil {
		return 0
	}
	c.lock()
	total := c.total
	violations := c.violations
	c.unlock()
	if c.rec != nil && total > 0 {
		c.rec.absorb(total, violations)
	}
	return total
}

// ---------------------------------------------------------------------------
// tcpsim hooks

// TCPRegister announces an endpoint and its initial send sequence number.
func (c *Checker) TCPRegister(name string, iss uint64) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	c.tcp[name] = &tcpShadow{name: name, freshHigh: iss}
}

// TCPPeers links two registered endpoints so delivered bytes can be
// cross-checked against what the peer actually sent.
func (c *Checker) TCPPeers(a, b string) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	sa, sb := c.tcp[a], c.tcp[b]
	if sa != nil && sb != nil {
		sa.peer, sb.peer = sb, sa
	}
}

// TCPSegment observes a transmitted (non-RST) segment occupying sequence
// space [seq, end). SYN and FIN each occupy one unit, included in end.
func (c *Checker) TCPSegment(name string, seq, end uint64, retransmit bool) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	s := c.tcp[name]
	if s == nil {
		return
	}
	if seq > s.freshHigh {
		c.violate("tcpsim", "seq-gap",
			"%s sent seq=%d beyond contiguous coverage %d (skipped bytes)",
			name, seq, s.freshHigh)
	}
	if !retransmit && end > seq && end <= s.freshHigh {
		c.violate("tcpsim", "refresh-overlap",
			"%s re-sent [%d,%d) without the retransmit flag (double-send per offset)",
			name, seq, end)
	}
	if end > s.freshHigh {
		s.freshHigh = end
	}
}

// TCPAck observes a cumulative ACK after the sender processed it; sndUna
// is the sender's post-processing lowest unacknowledged sequence.
func (c *Checker) TCPAck(name string, ack, sndUna uint64) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	s := c.tcp[name]
	if s == nil {
		return
	}
	if ack > s.freshHigh {
		c.violate("tcpsim", "ack-beyond-sent",
			"%s received ack=%d above everything ever sent (%d)", name, ack, s.freshHigh)
	} else if ack > sndUna {
		c.violate("tcpsim", "ignored-ack",
			"%s ignored in-window cumulative ack=%d (snd_una stuck at %d, sent through %d)",
			name, ack, sndUna, s.freshHigh)
	}
	if s.haveAck && sndUna < s.maxSndUna {
		c.violate("tcpsim", "snduna-regress",
			"%s snd_una moved backwards: %d -> %d", name, s.maxSndUna, sndUna)
	}
	if sndUna > s.maxSndUna || !s.haveAck {
		s.maxSndUna = sndUna
		s.haveAck = true
	}
}

// TCPDeliver observes in-order data delivery; rcvNxt is the receiver's
// next expected sequence after the delivery.
func (c *Checker) TCPDeliver(name string, rcvNxt uint64) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	s := c.tcp[name]
	if s == nil {
		return
	}
	if s.haveRcv && rcvNxt < s.maxRcvNxt {
		c.violate("tcpsim", "rcvnxt-regress",
			"%s rcv_nxt moved backwards: %d -> %d", name, s.maxRcvNxt, rcvNxt)
	}
	if s.peer != nil && rcvNxt > s.peer.freshHigh {
		c.violate("tcpsim", "deliver-unsent",
			"%s delivered through %d but peer %s only sent through %d",
			name, rcvNxt, s.peer.name, s.peer.freshHigh)
	}
	if rcvNxt > s.maxRcvNxt || !s.haveRcv {
		s.maxRcvNxt = rcvNxt
		s.haveRcv = true
	}
}

// TCPRewind records a sanctioned go-back-N rewind of sndNxt at RTO; the
// monotonicity rules treat sequence state after it accordingly.
func (c *Checker) TCPRewind(name string, from, to uint64) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	if s := c.tcp[name]; s != nil {
		s.rewinds++
		if to > from {
			c.violate("tcpsim", "rewind-forward",
				"%s RTO rewind moved snd_nxt forward: %d -> %d", name, from, to)
		}
	}
}

// ---------------------------------------------------------------------------
// h2 hooks

// H2Register announces an HTTP/2 endpoint with our advertised
// SETTINGS_INITIAL_WINDOW_SIZE.
func (c *Checker) H2Register(name string, isClient bool, initialWindow uint32) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	c.h2[name] = &h2Shadow{
		name:     name,
		isClient: isClient,
		connSend: 65535,
		connRecv: 65535,
		peerInit: 65535,
		myInit:   int64(initialWindow),
		streams:  make(map[uint32]*h2StreamShadow),
	}
}

func (h *h2Shadow) stream(id uint32) *h2StreamShadow {
	return h.streams[id]
}

func (h *h2Shadow) ensure(id uint32) *h2StreamShadow {
	s := h.streams[id]
	if s == nil {
		s = &h2StreamShadow{sendWin: h.peerInit, recvWin: h.myInit}
		h.streams[id] = s
	}
	return s
}

// H2FrameSent observes an emitted frame. length is the payload length;
// flags the frame-header flags byte; aux carries the WINDOW_UPDATE
// increment or PUSH_PROMISE promised stream ID where applicable.
func (c *Checker) H2FrameSent(name string, ftype uint8, streamID uint32, length int, flags uint8, aux uint32) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	h := c.h2[name]
	if h == nil {
		return
	}
	switch ftype {
	case frameData:
		st := h.stream(streamID)
		switch {
		case st == nil:
			c.violate("h2", "data-on-idle-stream",
				"%s sent DATA on stream %d with no prior HEADERS/PUSH_PROMISE", name, streamID)
		case st.sentES:
			c.violate("h2", "data-after-end-stream",
				"%s sent DATA on stream %d after its own END_STREAM", name, streamID)
		case st.sentRST:
			c.violate("h2", "frame-after-rst",
				"%s sent DATA on stream %d after sending RST_STREAM", name, streamID)
		case st.recvRST:
			c.violate("h2", "frame-after-rst",
				"%s sent DATA on stream %d after receiving RST_STREAM", name, streamID)
		}
		if st != nil && flags&flagEndStream != 0 {
			st.sentES = true
		}
	case frameHeaders:
		st := h.ensure(streamID)
		if st.sentRST {
			c.violate("h2", "frame-after-rst",
				"%s sent HEADERS on stream %d after sending RST_STREAM", name, streamID)
		}
		if st.sentES {
			c.violate("h2", "headers-after-end-stream",
				"%s sent HEADERS on stream %d after its own END_STREAM", name, streamID)
		}
		st.opened = true
		if flags&flagEndStream != 0 {
			st.sentES = true
		}
	case frameRSTStream:
		st := h.stream(streamID)
		if st != nil && st.sentRST {
			c.violate("h2", "double-rst",
				"%s sent RST_STREAM twice on stream %d", name, streamID)
		}
		h.ensure(streamID).sentRST = true
	case framePushPromise:
		if existing := h.stream(aux); existing != nil {
			c.violate("h2", "push-promised-id-reused",
				"%s promised stream %d which already exists", name, aux)
		}
		h.ensure(aux).resLocal = true
	case frameWindowUpdate:
		if streamID == 0 {
			h.connRecv += int64(aux)
		} else if st := h.stream(streamID); st != nil {
			st.recvWin += int64(aux)
		}
	}
}

// H2DataSent observes the flow-control consumption of a sent DATA frame
// (chunk plus padding overhead), at the exact point the connection debits
// its own windows.
func (c *Checker) H2DataSent(name string, streamID uint32, consumed int) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	h := c.h2[name]
	if h == nil {
		return
	}
	h.connSend -= int64(consumed)
	if h.connSend < 0 {
		c.violate("h2", "send-window-negative",
			"%s connection send window driven to %d by stream %d", name, h.connSend, streamID)
	}
	if st := h.stream(streamID); st != nil {
		st.sendWin -= int64(consumed)
		if st.sendWin < 0 {
			c.violate("h2", "send-window-negative",
				"%s stream %d send window driven to %d", name, streamID, st.sendWin)
		}
	}
}

// H2FrameRecv observes a received frame, with the same argument
// conventions as H2FrameSent.
func (c *Checker) H2FrameRecv(name string, ftype uint8, streamID uint32, length int, flags uint8, aux uint32) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	h := c.h2[name]
	if h == nil {
		return
	}
	switch ftype {
	case frameData:
		h.connRecv -= int64(length)
		if h.connRecv < 0 {
			c.violate("h2", "recv-window-negative",
				"%s connection receive window driven to %d", name, h.connRecv)
		}
		st := h.stream(streamID)
		if st != nil && !st.sentRST && !st.recvRST {
			if st.recvES {
				c.violate("h2", "data-after-end-stream",
					"%s received DATA on stream %d after the peer's END_STREAM", name, streamID)
			} else {
				st.recvWin -= int64(length)
				if st.recvWin < 0 {
					c.violate("h2", "recv-window-negative",
						"%s stream %d receive window driven to %d", name, streamID, st.recvWin)
				}
			}
		}
		if st != nil && flags&flagEndStream != 0 {
			st.recvES = true
		}
	case frameHeaders:
		st := h.ensure(streamID)
		st.opened = true
		if flags&flagEndStream != 0 {
			st.recvES = true
		}
	case frameRSTStream:
		h.ensure(streamID).recvRST = true
	case framePushPromise:
		h.ensure(aux).resRemote = true
	case frameWindowUpdate:
		if streamID == 0 {
			h.connSend += int64(aux)
		} else if st := h.stream(streamID); st != nil {
			st.sendWin += int64(aux)
		}
	}
}

// H2PeerInitialWindow observes the peer's SETTINGS_INITIAL_WINDOW_SIZE.
// Per RFC 7540 §6.9.2 the delta applies to all stream send windows but
// never to the connection window.
func (c *Checker) H2PeerInitialWindow(name string, val uint32) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	h := c.h2[name]
	if h == nil {
		return
	}
	delta := int64(val) - h.peerInit
	h.peerInit = int64(val)
	for _, st := range h.streams {
		st.sendWin += delta
	}
}

// H2AppData fires immediately before DATA payload is surfaced to the
// application; surfacing data on a stream that was reset in either
// direction is a violation.
func (c *Checker) H2AppData(name string, streamID uint32) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	h := c.h2[name]
	if h == nil {
		return
	}
	if st := h.stream(streamID); st != nil && (st.sentRST || st.recvRST) {
		c.violate("h2", "data-after-rst-surfaced",
			"%s surfaced DATA to the app on reset stream %d", name, streamID)
	}
}

// ---------------------------------------------------------------------------
// hpack hooks

func (c *Checker) h2Role(name string) (idx int, ok bool) {
	h := c.h2[name]
	if h == nil {
		return 0, false
	}
	if h.isClient {
		return 0, true
	}
	return 1, true
}

// HpackEncoded observes the encoder's dynamic-table size right after a
// header block was encoded by endpoint name.
func (c *Checker) HpackEncoded(name string, tableSize int) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	if idx, ok := c.h2Role(name); ok {
		c.hpack[idx] = append(c.hpack[idx], tableSize)
	}
}

// HpackDecoded observes the decoder's dynamic-table size right after the
// receiving endpoint decoded a complete header block. Blocks decode in
// the order the peer encoded them (TCP is in-order), so the sizes must
// match FIFO. If the sending side is not armed the queue is empty and the
// sample is skipped.
func (c *Checker) HpackDecoded(name string, tableSize int) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	idx, ok := c.h2Role(name)
	if !ok {
		return
	}
	peer := 1 - idx // we decode blocks the peer encoded
	q := c.hpack[peer]
	if len(q) == 0 {
		return
	}
	want := q[0]
	c.hpack[peer] = q[1:]
	if want != tableSize {
		c.violate("hpack", "table-desync",
			"%s decoder dynamic table is %d bytes, peer encoder had %d after the same block",
			name, tableSize, want)
	}
}

// ---------------------------------------------------------------------------
// netsim hooks

// LinkOffered observes a packet handed to a link's Send.
func (c *Checker) LinkOffered(dir uint8, size int) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	l := &c.links[dir&1]
	l.offeredPkts++
	l.offeredBytes += int64(size)
}

// LinkDropped observes a packet's drop fate (exactly one fate per packet).
func (c *Checker) LinkDropped(dir uint8, size int, kind uint8) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	l := &c.links[dir&1]
	l.droppedPkts[kind&3]++
	l.droppedBytes += int64(size)
	if l.offeredPkts != l.forwardedPkts+l.droppedTotal() {
		c.violate("netsim", "link-conservation",
			"dir=%d offered=%d != forwarded=%d + dropped=%d after drop",
			dir, l.offeredPkts, l.forwardedPkts, l.droppedTotal())
	}
}

// LinkForwarded observes a packet scheduled for delivery; dup marks the
// extra copy of a duplicated packet (which does not book a new fate).
func (c *Checker) LinkForwarded(dir uint8, size int, dup bool) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	l := &c.links[dir&1]
	if dup {
		l.dupPkts++
		return
	}
	l.forwardedPkts++
	l.forwardBytes += int64(size)
	if l.offeredPkts != l.forwardedPkts+l.droppedTotal() {
		c.violate("netsim", "link-conservation",
			"dir=%d offered=%d != forwarded=%d + dropped=%d after forward",
			dir, l.offeredPkts, l.forwardedPkts, l.droppedTotal())
	}
}

// LinkDelivered observes a delivery firing at the far end of a link.
func (c *Checker) LinkDelivered(dir uint8, size int) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	l := &c.links[dir&1]
	l.deliveredPkts++
	l.deliverBytes += int64(size)
	if l.deliveredPkts > l.forwardedPkts+l.dupPkts {
		c.violate("netsim", "delivered-unforwarded",
			"dir=%d delivered %d packets but only %d forwarded (+%d dup)",
			dir, l.deliveredPkts, l.forwardedPkts, l.dupPkts)
	}
}

// LinkStatsFinal cross-checks the link's own stats counters against the
// shadow tallies at trial end — a differential check on the stats
// bookkeeping itself (this is the check that would have caught PR 4's
// duplicate deliveries not booking BytesDelivered).
func (c *Checker) LinkStatsFinal(dir uint8, sent, delivered, duplicated, droppedLoss, droppedPolicy, droppedQueue, droppedFault int, bytesDelivered int64) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	l := &c.links[dir&1]
	type pair struct {
		field  string
		got    int64
		shadow int64
	}
	for _, p := range []pair{
		{"Sent", int64(sent), int64(l.offeredPkts)},
		{"Delivered", int64(delivered), int64(l.deliveredPkts)},
		{"Duplicated", int64(duplicated), int64(l.dupPkts)},
		{"DroppedLoss", int64(droppedLoss), int64(l.droppedPkts[DropLoss])},
		{"DroppedPolicy", int64(droppedPolicy), int64(l.droppedPkts[DropPolicy])},
		{"DroppedQueue", int64(droppedQueue), int64(l.droppedPkts[DropQueue])},
		{"DroppedFault", int64(droppedFault), int64(l.droppedPkts[DropFault])},
		{"BytesDelivered", bytesDelivered, l.deliverBytes},
	} {
		if p.got != p.shadow {
			c.violate("netsim", "link-stats-drift",
				"dir=%d LinkStats.%s=%d but the shadow tally says %d",
				dir, p.field, p.got, p.shadow)
		}
	}
}

// AggForwarded observes a packet admitted to the shared bottleneck's
// serializer. Member links book their own LinkForwarded too, so at every
// instant the aggregate shadow must equal the per-flow forwarded sums —
// the fleet-topology conservation invariant AggStatsFinal settles.
func (c *Checker) AggForwarded(dir uint8, size int) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	a := &c.aggs[dir&1]
	a.armed = true
	a.fwdPkts++
	a.fwdBytes += int64(size)
}

// AggStatsFinal cross-checks a bottleneck's AggStats against the shadow
// tally at trial end, and pins the aggregate-conservation invariant: when
// every link in a direction feeds the bottleneck, the per-flow forwarded
// packet/byte sums (the links shadow) must equal what the aggregate
// serialized. droppedQueue is the shared queue's tail-drop count; each
// such drop also books on exactly one member link, so the per-flow
// DroppedQueue sum must cover it.
func (c *Checker) AggStatsFinal(dir uint8, forwarded int, bytes int64, droppedQueue int) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	a := &c.aggs[dir&1]
	if !a.armed && forwarded == 0 && droppedQueue == 0 {
		return
	}
	if forwarded != a.fwdPkts || bytes != a.fwdBytes {
		c.violate("netsim", "agg-stats-drift",
			"dir=%d AggStats says %d pkts/%d bytes but the shadow tally says %d/%d",
			dir, forwarded, bytes, a.fwdPkts, a.fwdBytes)
	}
	l := &c.links[dir&1]
	if a.fwdPkts != l.forwardedPkts || a.fwdBytes != l.forwardBytes {
		c.violate("netsim", "agg-conservation",
			"dir=%d per-flow forwarded sums (%d pkts/%d bytes) != bottleneck admissions (%d/%d)",
			dir, l.forwardedPkts, l.forwardBytes, a.fwdPkts, a.fwdBytes)
	}
	if droppedQueue > l.droppedPkts[DropQueue] {
		c.violate("netsim", "agg-conservation",
			"dir=%d bottleneck tail-dropped %d packets but the flows only booked %d queue drops",
			dir, droppedQueue, l.droppedPkts[DropQueue])
	}
}

// ---------------------------------------------------------------------------
// adversary budget hooks

// BudgetArm announces the adversary's interference budget: at most k
// fleet flows may hold a slot concurrently.
func (c *Checker) BudgetArm(k int) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	c.budgetCap = k
	if c.budgetActive == nil {
		c.budgetActive = make(map[int]bool)
	}
}

// BudgetAcquire observes the adversary taking a slot for a flow. A flow
// may hold at most one slot, and the active count must never exceed the
// armed cap.
func (c *Checker) BudgetAcquire(flow int) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	if c.budgetActive == nil {
		c.budgetActive = make(map[int]bool)
	}
	if c.budgetActive[flow] {
		c.violate("adversary", "budget-double-acquire",
			"flow %d acquired a budget slot it already holds", flow)
		return
	}
	c.budgetActive[flow] = true
	if n := len(c.budgetActive); n > c.budgetPeak {
		c.budgetPeak = n
	}
	if len(c.budgetActive) > c.budgetCap {
		c.violate("adversary", "budget-exceeded",
			"%d flows hold interference slots but the budget is %d",
			len(c.budgetActive), c.budgetCap)
	}
}

// BudgetRelease observes the adversary returning a flow's slot.
func (c *Checker) BudgetRelease(flow int) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	if !c.budgetActive[flow] {
		c.violate("adversary", "budget-release-unheld",
			"flow %d released a budget slot it does not hold", flow)
		return
	}
	delete(c.budgetActive, flow)
}

// BudgetPeak reports the highest concurrent slot count observed. Safe on
// nil.
func (c *Checker) BudgetPeak() int {
	if c == nil {
		return 0
	}
	c.lock()
	defer c.unlock()
	return c.budgetPeak
}

// ---------------------------------------------------------------------------
// simtime hook

// SchedulerStep observes each event execution time; virtual time must be
// monotone. The signature matches simtime's SetStepHook so the scheduler
// stays free of module-internal imports.
func (c *Checker) SchedulerStep(at time.Duration) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	if c.stepped && at < c.lastAt {
		c.violate("simtime", "time-regress",
			"scheduler ran an event at %v after %v", at, c.lastAt)
	}
	c.lastAt = at
	c.stepped = true
}

// ---------------------------------------------------------------------------
// capture hooks

// CaptureAppend observes bytes appended to a direction's reassembled
// stream: the taint array must stay parallel to the buffer and nextSeq
// must advance without gaps or overlaps.
func (c *Checker) CaptureAppend(dir uint8, n, bufLen, taintLen int, nextSeq uint64) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	s := &c.caps[dir&1]
	if bufLen != taintLen {
		c.violate("capture", "taint-misaligned",
			"dir=%d buffer is %d bytes but taint array is %d", dir, bufLen, taintLen)
	}
	if s.init && nextSeq != s.nextSeq+uint64(n) {
		c.violate("capture", "stream-discontinuity",
			"dir=%d nextSeq jumped %d -> %d appending %d bytes (gap or overlap)",
			dir, s.nextSeq, nextSeq, n)
	}
	s.nextSeq = nextSeq
	s.init = true
	s.appended += int64(n)
}

// CaptureRecord observes a TLS record of wireLen bytes cut off the front
// of a direction's buffer, leaving remaining buffered bytes. Records plus
// the residue must exactly partition everything appended.
func (c *Checker) CaptureRecord(dir uint8, wireLen, remaining int) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	s := &c.caps[dir&1]
	s.parsed += int64(wireLen)
	if s.parsed+int64(remaining) != s.appended {
		c.violate("capture", "record-partition",
			"dir=%d parsed=%d + buffered=%d != appended=%d (records do not partition the stream)",
			dir, s.parsed, remaining, s.appended)
	}
}
