package tlsrec

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

// pipePair wires two Conns directly: client output feeds server and vice
// versa (synchronously, like a lossless transport).
func pipePair() (*Conn, *Conn) {
	var client, server *Conn
	var cr, sr [32]byte
	for i := range cr {
		cr[i] = byte(i)
		sr[i] = byte(i * 3)
	}
	client = NewConn(true, cr, func(b []byte) {
		if server != nil {
			_ = server.Feed(b)
		}
	})
	server = NewConn(false, sr, func(b []byte) {
		if client != nil {
			_ = client.Feed(b)
		}
	})
	return client, server
}

func TestHandshakeEstablishes(t *testing.T) {
	client, server := pipePair()
	var cliUp, srvUp bool
	client.OnEstablished(func() { cliUp = true })
	server.OnEstablished(func() { srvUp = true })
	client.Start()
	if !client.Established() || !server.Established() {
		t.Fatalf("established: client=%t server=%t", client.Established(), server.Established())
	}
	if !cliUp || !srvUp {
		t.Fatal("OnEstablished callbacks not fired")
	}
}

func TestRoundTripBothDirections(t *testing.T) {
	client, server := pipePair()
	var atServer, atClient bytes.Buffer
	server.OnRecord(func(ct ContentType, p []byte) {
		if ct == ContentApplicationData {
			atServer.Write(p)
		}
	})
	client.OnRecord(func(ct ContentType, p []byte) {
		if ct == ContentApplicationData {
			atClient.Write(p)
		}
	})
	client.Start()
	if err := client.Send(ContentApplicationData, []byte("GET /quiz HTTP/2")); err != nil {
		t.Fatal(err)
	}
	if err := server.Send(ContentApplicationData, bytes.Repeat([]byte("r"), 9500)); err != nil {
		t.Fatal(err)
	}
	if atServer.String() != "GET /quiz HTTP/2" {
		t.Fatalf("server got %q", atServer.String())
	}
	if atClient.Len() != 9500 {
		t.Fatalf("client got %d bytes", atClient.Len())
	}
}

func TestSendBeforeHandshakeFails(t *testing.T) {
	client, _ := pipePair()
	if err := client.Send(ContentApplicationData, []byte("x")); !errors.Is(err, ErrNotEstablished) {
		t.Fatalf("err = %v, want ErrNotEstablished", err)
	}
}

func TestLargePayloadSplitsRecords(t *testing.T) {
	var wire [][]byte
	var cr, sr [32]byte
	// The output slice is seal scratch, so keep a copy of each record.
	client := NewConn(true, cr, func(b []byte) { wire = append(wire, append([]byte(nil), b...)) })
	server := NewConn(false, sr, func(b []byte) { _ = client.Feed(b) })
	client.Start()
	_ = server.Feed(wire[0])
	wire = nil
	payload := make([]byte, MaxPlaintext*2+100)
	if err := client.Send(ContentApplicationData, payload); err != nil {
		t.Fatal(err)
	}
	if len(wire) != 3 {
		t.Fatalf("sent %d records, want 3", len(wire))
	}
	hdr, _ := ParseHeader(wire[0])
	if hdr.Length != MaxPlaintext+SealOverhead {
		t.Fatalf("first record length %d, want %d", hdr.Length, MaxPlaintext+SealOverhead)
	}
}

func TestSizeFaithfulness(t *testing.T) {
	// A sealed record must be exactly plaintext + header + SealOverhead:
	// the attack's size side-channel depends on it.
	var out []byte
	var cr, sr [32]byte
	client := NewConn(true, cr, func(b []byte) { out = b })
	server := NewConn(false, sr, func(b []byte) { _ = client.Feed(b) })
	client.Start()
	_ = server.Feed(out) // deliver ClientHello; ServerHello flows back
	out = nil
	if err := client.Send(ContentApplicationData, make([]byte, 1234)); err != nil {
		t.Fatal(err)
	}
	if len(out) != HeaderSize+1234+SealOverhead {
		t.Fatalf("wire size = %d, want %d", len(out), HeaderSize+1234+SealOverhead)
	}
}

func TestHeaderVisibleOnWire(t *testing.T) {
	var out []byte
	var cr, sr [32]byte
	client := NewConn(true, cr, func(b []byte) { out = b })
	server := NewConn(false, sr, func(b []byte) { _ = client.Feed(b) })
	client.Start()
	_ = server.Feed(out)
	out = nil
	_ = client.Send(ContentApplicationData, []byte("secret"))
	hdr, ok := ParseHeader(out)
	if !ok || hdr.Type != ContentApplicationData {
		t.Fatalf("header = %+v ok=%t", hdr, ok)
	}
	if bytes.Contains(out, []byte("secret")) {
		t.Fatal("plaintext leaked onto the wire")
	}
}

func TestFragmentedFeed(t *testing.T) {
	// Deliver wire bytes one at a time: the parser must reassemble.
	var wire bytes.Buffer
	var cr, sr [32]byte
	client := NewConn(true, cr, func(b []byte) { wire.Write(b) })
	server := NewConn(false, sr, func(b []byte) { _ = client.Feed(b) })
	var got bytes.Buffer
	server.OnRecord(func(ct ContentType, p []byte) { got.Write(p) })
	client.Start()
	feedAll := func() {
		for _, b := range wire.Bytes() {
			if err := server.Feed([]byte{b}); err != nil {
				t.Fatal(err)
			}
		}
		wire.Reset()
	}
	feedAll()
	_ = client.Send(ContentApplicationData, []byte("hello world"))
	feedAll()
	if got.String() != "hello world" {
		t.Fatalf("got %q", got.String())
	}
}

func TestTamperedRecordRejected(t *testing.T) {
	var wire []byte
	var cr, sr [32]byte
	var server *Conn
	client := NewConn(true, cr, func(b []byte) { wire = b })
	server = NewConn(false, sr, func(b []byte) { _ = client.Feed(b) })
	client.Start()
	_ = server.Feed(wire)
	_ = client.Send(ContentApplicationData, []byte("payload"))
	wire[HeaderSize+9] ^= 0xff // flip a ciphertext bit
	if err := server.Feed(wire); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("err = %v, want ErrBadMAC", err)
	}
	// Poisoned connection rejects everything afterwards.
	if err := server.Feed([]byte{}); err == nil {
		t.Fatal("poisoned connection accepted more data")
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	var cr [32]byte
	c := NewConn(false, cr, func([]byte) {})
	hdr := make([]byte, HeaderSize)
	hdr[0] = byte(ContentApplicationData)
	hdr[3] = 0xff
	hdr[4] = 0xff
	if err := c.Feed(hdr); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("err = %v, want ErrRecordTooLarge", err)
	}
}

func TestAppDataBeforeHandshakeRejected(t *testing.T) {
	var cr, sr [32]byte
	// Establish only the client side, then replay its app record into a
	// fresh (un-handshaken) server.
	var wire []byte
	client := NewConn(true, cr, func(b []byte) { wire = b })
	helper := NewConn(false, sr, func(b []byte) { _ = client.Feed(b) })
	client.Start()
	_ = helper.Feed(wire)
	_ = client.Send(ContentApplicationData, []byte("x"))
	fresh := NewConn(false, sr, func([]byte) {})
	if err := fresh.Feed(wire); !errors.Is(err, ErrNotEstablished) {
		t.Fatalf("err = %v, want ErrNotEstablished", err)
	}
}

func TestUnexpectedHandshakeMessage(t *testing.T) {
	var cr [32]byte
	// A client receiving a ClientHello is a protocol violation.
	c := NewConn(true, cr, func([]byte) {})
	body := make([]byte, HeaderSize+33)
	putHeader(body, ContentHandshake, 33)
	body[HeaderSize] = msgClientHello
	if err := c.Feed(body); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("err = %v, want ErrBadHandshake", err)
	}
}

func TestContentTypeString(t *testing.T) {
	if ContentApplicationData.String() != "application-data" ||
		ContentHandshake.String() != "handshake" ||
		ContentAlert.String() != "alert" ||
		ContentType(99).String() != "content-type-99" {
		t.Fatal("ContentType.String broken")
	}
}

// Property: any payload round-trips exactly, and the wire never contains
// the plaintext when the plaintext is non-trivial.
func TestRoundTripProperty(t *testing.T) {
	f := func(payloads [][]byte) bool {
		client, server := pipePair()
		var got [][]byte
		server.OnRecord(func(ct ContentType, p []byte) {
			cp := make([]byte, len(p))
			copy(cp, p)
			got = append(got, cp)
		})
		client.Start()
		var want []byte
		for _, p := range payloads {
			if len(p) == 0 {
				continue
			}
			want = append(want, p...)
			if err := client.Send(ContentApplicationData, p); err != nil {
				return false
			}
		}
		var all []byte
		for _, g := range got {
			all = append(all, g...)
		}
		return bytes.Equal(all, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestManyRecordsSequence(t *testing.T) {
	client, server := pipePair()
	var count, total int
	server.OnRecord(func(ct ContentType, p []byte) {
		count++
		total += len(p)
	})
	client.Start()
	sent := 0
	for i := 1; i <= 500; i++ {
		n := (i*37)%4096 + 1
		if err := client.Send(ContentApplicationData, make([]byte, n)); err != nil {
			t.Fatal(err)
		}
		sent += n
	}
	if count != 500 || total != sent {
		t.Fatalf("received %d records / %d bytes, want 500 / %d", count, total, sent)
	}
}

func TestAlertContentTypePasses(t *testing.T) {
	client, server := pipePair()
	var gotCT ContentType
	server.OnRecord(func(ct ContentType, p []byte) { gotCT = ct })
	client.Start()
	if err := client.Send(ContentAlert, []byte{1, 0}); err != nil {
		t.Fatal(err)
	}
	if gotCT != ContentAlert {
		t.Fatalf("content type = %v", gotCT)
	}
}
