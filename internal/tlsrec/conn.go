package tlsrec

import "fmt"

// Handshake message types.
const (
	msgClientHello = 1
	msgServerHello = 2
)

// Conn is one endpoint of the record layer, sans-IO: bytes from the
// transport are pushed in with Feed, bytes for the transport come out
// through the output callback, and decrypted records surface through
// OnRecord. The same Conn type backs both the event-driven simulation and
// the goroutine-based h2sync transport.
type Conn struct {
	isClient    bool
	established bool
	failed      error

	localRandom [32]byte
	peerRandom  [32]byte
	key         [32]byte
	sendSeq     uint64
	recvSeq     uint64

	buf    []byte // transport bytes; [off:] is still unparsed
	off    int    // parsed prefix of buf, reclaimed on the next Feed
	output func([]byte)

	// Per-record scratch, reused across seal/decrypt calls. Safe because
	// every consumer of the emitted slices copies before returning (the
	// sim's tcp.Write, h2sync's outQueue, and the h1/h2 Feed parsers all
	// append into their own buffers).
	sealBuf []byte // sealed record body handed to output
	padBuf  []byte // keystream pad
	macBuf  []byte // MAC concatenation scratch
	ptBuf   []byte // decrypted plaintext handed to onRecord

	onRecord      func(ContentType, []byte)
	onEstablished func()
}

// NewConn creates an endpoint. random seeds the handshake (pass distinct
// deterministic values per endpoint); output transmits wire bytes and must
// be non-nil. The slice passed to output (and to OnRecord) is scratch the
// Conn reuses for the next record: consumers that keep the bytes past the
// callback must copy them.
func NewConn(isClient bool, random [32]byte, output func([]byte)) *Conn {
	if output == nil {
		panic("tlsrec: NewConn requires an output function")
	}
	return &Conn{isClient: isClient, localRandom: random, output: output}
}

// OnRecord registers the callback for decrypted application/alert records.
// The plaintext slice is scratch reused for the next record; copy to keep.
func (c *Conn) OnRecord(fn func(ContentType, []byte)) { c.onRecord = fn }

// OnEstablished registers a callback fired once the handshake completes.
func (c *Conn) OnEstablished(fn func()) { c.onEstablished = fn }

// Established reports whether application data may flow.
func (c *Conn) Established() bool { return c.established }

// Err returns the first fatal record-layer error, or nil.
func (c *Conn) Err() error { return c.failed }

// Start begins the handshake. Only the client sends proactively.
func (c *Conn) Start() {
	if c.isClient && !c.established && c.failed == nil {
		c.sendHandshake(msgClientHello)
	}
}

// Send seals plaintext into one or more records (splitting at
// MaxPlaintext) and emits the wire bytes. It fails before the handshake
// completes; the HTTP layers queue writes until OnEstablished.
func (c *Conn) Send(ct ContentType, plaintext []byte) error {
	if c.failed != nil {
		return c.failed
	}
	if !c.established {
		return ErrNotEstablished
	}
	for len(plaintext) > 0 {
		n := len(plaintext)
		if n > MaxPlaintext {
			n = MaxPlaintext
		}
		c.seal(ct, plaintext[:n])
		plaintext = plaintext[n:]
	}
	return nil
}

// seal encrypts one record and emits it. The emitted slice is scratch
// reused by the next seal; output consumers copy what they keep.
func (c *Conn) seal(ct ContentType, plaintext []byte) {
	seq := c.sendSeq
	c.sendSeq++
	total := HeaderSize + 8 + len(plaintext) + TagSize
	if cap(c.sealBuf) < total {
		c.sealBuf = make([]byte, total)
	}
	body := c.sealBuf[:total]
	putHeader(body, ct, 8+len(plaintext)+TagSize)
	putUint64(body[HeaderSize:], seq)
	ciphertext := body[HeaderSize+8 : HeaderSize+8+len(plaintext)]
	copy(ciphertext, plaintext)
	c.padBuf = keystreamInto(c.padBuf, c.key, seq, len(plaintext))
	xorInto(ciphertext, c.padBuf)
	var tag [TagSize]byte
	tag, c.macBuf = macInto(c.macBuf, c.key, seq, ct, ciphertext)
	copy(body[HeaderSize+8+len(plaintext):], tag[:])
	c.output(body)
}

// Feed consumes bytes from the transport, parsing as many complete records
// as are available. The first fatal error poisons the connection.
func (c *Conn) Feed(b []byte) error {
	if c.failed != nil {
		return c.failed
	}
	// Reclaim the parsed prefix before appending. Reslicing forward after
	// each record would strand the consumed capacity and force a fresh
	// backing array every time the buffer cycles; compacting keeps one
	// steady-state allocation for the connection's lifetime.
	if c.off > 0 {
		n := copy(c.buf, c.buf[c.off:])
		c.buf = c.buf[:n]
		c.off = 0
	}
	c.buf = append(c.buf, b...)
	for {
		rest := c.buf[c.off:]
		hdr, ok := ParseHeader(rest)
		if !ok {
			return nil
		}
		if HeaderSize+hdr.Length > maxRecordWire {
			return c.fail(fmt.Errorf("%w: wire length %d", ErrRecordTooLarge, hdr.Length))
		}
		if len(rest) < HeaderSize+hdr.Length {
			return nil // incomplete record
		}
		body := rest[HeaderSize : HeaderSize+hdr.Length]
		c.off += HeaderSize + hdr.Length
		if err := c.processRecord(hdr.Type, body); err != nil {
			return c.fail(err)
		}
	}
}

func (c *Conn) fail(err error) error {
	if c.failed == nil {
		c.failed = err
	}
	return c.failed
}

func (c *Conn) processRecord(ct ContentType, body []byte) error {
	if ct == ContentHandshake {
		return c.processHandshake(body)
	}
	if !c.established {
		return ErrNotEstablished
	}
	if len(body) < 8+TagSize {
		return fmt.Errorf("tlsrec: sealed record too short (%d bytes)", len(body))
	}
	seq := getUint64(body)
	ciphertext := body[8 : len(body)-TagSize]
	var wantTag [TagSize]byte
	wantTag, c.macBuf = macInto(c.macBuf, c.key, seq, ct, ciphertext)
	gotTag := body[len(body)-TagSize:]
	for i := range wantTag {
		if wantTag[i] != gotTag[i] {
			return ErrBadMAC
		}
	}
	if seq != c.recvSeq {
		return fmt.Errorf("tlsrec: record sequence %d, want %d (transport reordered or lost data)", seq, c.recvSeq)
	}
	c.recvSeq++
	if cap(c.ptBuf) < len(ciphertext) {
		c.ptBuf = make([]byte, len(ciphertext))
	}
	plaintext := c.ptBuf[:len(ciphertext)]
	copy(plaintext, ciphertext)
	c.padBuf = keystreamInto(c.padBuf, c.key, seq, len(plaintext))
	xorInto(plaintext, c.padBuf)
	if c.onRecord != nil {
		c.onRecord(ct, plaintext)
	}
	return nil
}

func (c *Conn) processHandshake(body []byte) error {
	if len(body) != 1+32 {
		return ErrBadHandshake
	}
	msg := body[0]
	copy(c.peerRandom[:], body[1:])
	switch {
	case msg == msgClientHello && !c.isClient:
		c.sendHandshake(msgServerHello)
		c.establish()
	case msg == msgServerHello && c.isClient:
		c.establish()
	default:
		return fmt.Errorf("%w: unexpected message %d", ErrBadHandshake, msg)
	}
	return nil
}

func (c *Conn) establish() {
	if c.isClient {
		c.key = deriveKey(c.localRandom, c.peerRandom)
	} else {
		c.key = deriveKey(c.peerRandom, c.localRandom)
	}
	c.established = true
	if c.onEstablished != nil {
		c.onEstablished()
	}
}

func (c *Conn) sendHandshake(msg byte) {
	body := make([]byte, HeaderSize+1+32)
	putHeader(body, ContentHandshake, 1+32)
	body[HeaderSize] = msg
	copy(body[HeaderSize+1:], c.localRandom[:])
	c.output(body)
}

func putUint64(dst []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		dst[i] = byte(v)
		v >>= 8
	}
}

func getUint64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}
