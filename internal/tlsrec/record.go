// Package tlsrec implements a TLS-like record layer: framing, a 1-RTT
// handshake, and size-faithful sealing of application data.
//
// It is NOT cryptographically secure and must never protect real traffic:
// the keystream is a toy XOR cipher and the handshake exchanges its inputs
// in the clear. What it *is* faithful to — and all the paper's adversary
// ever uses — is the on-the-wire shape of TLS 1.2: a 5-byte plaintext
// record header carrying the content type (the attack filters on
// `ssl.record.content_type==23`, §IV-D) and a length, a constant 24-byte
// per-record overhead (8-byte explicit nonce + 16-byte tag, as in
// AES-GCM), and opaque payload bytes. Record integrity IS verified (a
// truncated SHA-256 MAC), which doubles as an end-to-end corruption check
// on the simulated transport beneath it.
package tlsrec

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ContentType is the TLS record content type, visible on the wire.
type ContentType uint8

// Record content types (same values as TLS).
const (
	ContentAlert           ContentType = 21
	ContentHandshake       ContentType = 22
	ContentApplicationData ContentType = 23
)

// String names the content type as in packet dissectors.
func (ct ContentType) String() string {
	switch ct {
	case ContentAlert:
		return "alert"
	case ContentHandshake:
		return "handshake"
	case ContentApplicationData:
		return "application-data"
	default:
		return fmt.Sprintf("content-type-%d", uint8(ct))
	}
}

// Wire-format constants.
const (
	// HeaderSize is the plaintext record header: type(1) version(2) length(2).
	HeaderSize = 5
	// SealOverhead is the per-record ciphertext expansion: an 8-byte
	// explicit sequence number plus a 16-byte authentication tag.
	SealOverhead = 8 + TagSize
	// TagSize is the truncated-MAC length.
	TagSize = 16
	// MaxPlaintext is the largest plaintext a single record may carry
	// (TLS's 2^14).
	MaxPlaintext = 16384
	// version is the wire version field (TLS 1.2's 0x0303).
	version = 0x0303
)

// Record errors.
var (
	ErrRecordTooLarge = errors.New("tlsrec: record exceeds maximum size")
	ErrBadMAC         = errors.New("tlsrec: record authentication failed")
	ErrBadHandshake   = errors.New("tlsrec: malformed handshake message")
	ErrNotEstablished = errors.New("tlsrec: application data before handshake completion")
	ErrClosed         = errors.New("tlsrec: connection closed")
)

// Header is a parsed record header. On-path observers (the capture
// monitor) can always read it, because TLS leaves it in the clear.
type Header struct {
	Type   ContentType
	Length int // bytes following the header
}

// ParseHeader decodes a record header from the first HeaderSize bytes of b.
// It returns false when b is too short. The version field is not checked:
// middleboxes (and our monitor) tolerate any version.
func ParseHeader(b []byte) (Header, bool) {
	if len(b) < HeaderSize {
		return Header{}, false
	}
	return Header{
		Type:   ContentType(b[0]),
		Length: int(binary.BigEndian.Uint16(b[3:5])),
	}, true
}

func putHeader(dst []byte, ct ContentType, length int) {
	dst[0] = byte(ct)
	binary.BigEndian.PutUint16(dst[1:3], version)
	binary.BigEndian.PutUint16(dst[3:5], uint16(length))
}

// maxRecordWire is the largest legal record on the wire (header + sealed
// maximum plaintext). Used to reject corrupt/hostile lengths early.
const maxRecordWire = HeaderSize + MaxPlaintext + SealOverhead + 64
