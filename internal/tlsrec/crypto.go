package tlsrec

import (
	"crypto/sha256"
	"encoding/binary"
)

// keystream generates the toy XOR pad for one record from the session key
// and the record's sequence number: block i is SHA-256(key ‖ seq ‖ i).
// Deterministic, self-consistent, size-preserving — and worthless as real
// cryptography, which is fine: the threat model here is an adversary who
// never decrypts.
func keystream(key [32]byte, seq uint64, n int) []byte {
	return keystreamInto(make([]byte, 0, n+sha256.Size), key, seq, n)
}

// keystreamInto writes the pad into buf (grown as needed) and returns it,
// letting a Conn reuse one scratch buffer across records.
func keystreamInto(buf []byte, key [32]byte, seq uint64, n int) []byte {
	out := buf[:0]
	var block [8 + 8 + 32]byte
	copy(block[16:], key[:])
	binary.BigEndian.PutUint64(block[:8], seq)
	for i := uint64(0); len(out) < n; i++ {
		binary.BigEndian.PutUint64(block[8:16], i)
		sum := sha256.Sum256(block[:])
		out = append(out, sum[:]...)
	}
	return out[:n]
}

// xorInto XORs pad into dst in place.
func xorInto(dst, pad []byte) {
	for i := range dst {
		dst[i] ^= pad[i]
	}
}

// mac computes the truncated record MAC over (key, seq, content type,
// ciphertext).
func mac(key [32]byte, seq uint64, ct ContentType, ciphertext []byte) [TagSize]byte {
	tag, _ := macInto(nil, key, seq, ct, ciphertext)
	return tag
}

// macInto is mac with a caller-owned scratch buffer: it assembles the exact
// byte stream mac hashes — key ‖ seq ‖ content type ‖ ciphertext — in
// scratch and digests it with the stack-based sha256.Sum256, avoiding the
// streaming API's hash-state and Sum allocations. Returns the tag and the
// (possibly grown) scratch for reuse.
func macInto(scratch []byte, key [32]byte, seq uint64, ct ContentType, ciphertext []byte) ([TagSize]byte, []byte) {
	scratch = append(scratch[:0], key[:]...)
	var hdr [9]byte
	binary.BigEndian.PutUint64(hdr[:8], seq)
	hdr[8] = byte(ct)
	scratch = append(scratch, hdr[:]...)
	scratch = append(scratch, ciphertext...)
	sum := sha256.Sum256(scratch)
	var tag [TagSize]byte
	copy(tag[:], sum[:])
	return tag, scratch
}

// deriveKey combines the two hello randoms into the session key.
func deriveKey(clientRandom, serverRandom [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("h2privacy toy key derivation"))
	h.Write(clientRandom[:])
	h.Write(serverRandom[:])
	var key [32]byte
	copy(key[:], h.Sum(nil))
	return key
}
