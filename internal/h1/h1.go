// Package h1 implements a minimal HTTP/1.1 codec and sans-IO
// server/client connection pair. It exists as the paper's §II baseline:
// HTTP/1.1 processes requests strictly sequentially on a connection
// (head-of-line blocking), so every object transmits serialized and a
// passive eavesdropper reads object sizes directly — no attack required.
// The h1base experiment contrasts this with HTTP/2 multiplexing.
package h1

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
)

// Errors returned by the parsers.
var (
	ErrMalformedRequest  = errors.New("h1: malformed request")
	ErrMalformedResponse = errors.New("h1: malformed response")
	ErrHeaderTooLarge    = errors.New("h1: header section too large")
)

// maxHeaderBytes bounds the request/response head.
const maxHeaderBytes = 64 << 10

// Request is a parsed HTTP/1.1 request head (bodies are not used by the
// baseline workload).
type Request struct {
	Method string
	Path   string
	Host   string
	Header map[string]string
}

// Response is a parsed HTTP/1.1 response.
type Response struct {
	Status int
	Header map[string]string
	Body   []byte
}

// FormatRequest renders a GET-style request head.
func FormatRequest(req Request) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %s HTTP/1.1\r\n", req.Method, req.Path)
	fmt.Fprintf(&b, "Host: %s\r\n", req.Host)
	for k, v := range req.Header {
		fmt.Fprintf(&b, "%s: %s\r\n", k, v)
	}
	b.WriteString("\r\n")
	return b.Bytes()
}

// FormatResponse renders a full response with Content-Length framing.
func FormatResponse(resp Response) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\r\n", resp.Status, statusText(resp.Status))
	for k, v := range resp.Header {
		fmt.Fprintf(&b, "%s: %s\r\n", k, v)
	}
	fmt.Fprintf(&b, "Content-Length: %d\r\n\r\n", len(resp.Body))
	b.Write(resp.Body)
	return b.Bytes()
}

func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	default:
		return "Status"
	}
}

// parseHeaderBlock splits "Name: value" lines.
func parseHeaderBlock(lines []string) (map[string]string, error) {
	h := make(map[string]string, len(lines))
	for _, line := range lines {
		i := strings.IndexByte(line, ':')
		if i <= 0 {
			return nil, fmt.Errorf("%w: header line %q", ErrMalformedRequest, line)
		}
		h[strings.ToLower(strings.TrimSpace(line[:i]))] = strings.TrimSpace(line[i+1:])
	}
	return h, nil
}

// splitHead returns the head (up to and excluding CRLFCRLF) and the number
// of bytes it consumed including the terminator, or (nil, 0) if incomplete.
func splitHead(buf []byte) ([]byte, int, error) {
	i := bytes.Index(buf, []byte("\r\n\r\n"))
	if i < 0 {
		if len(buf) > maxHeaderBytes {
			return nil, 0, ErrHeaderTooLarge
		}
		return nil, 0, nil
	}
	return buf[:i], i + 4, nil
}
