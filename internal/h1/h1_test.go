package h1

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	srv := NewServerConn(func([]byte) {})
	var got []Request
	srv.OnRequest(func(r Request) { got = append(got, r) })
	wire := FormatRequest(Request{Method: "GET", Path: "/quiz", Host: "isidewith.test",
		Header: map[string]string{"User-Agent": "firefox"}})
	if err := srv.Feed(wire); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Method != "GET" || got[0].Path != "/quiz" || got[0].Host != "isidewith.test" {
		t.Fatalf("got %+v", got)
	}
	if got[0].Header["user-agent"] != "firefox" {
		t.Fatalf("header = %+v", got[0].Header)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cli := NewClientConn(func([]byte) {})
	var got []Response
	cli.OnResponse(func(r Response) { got = append(got, r) })
	cli.Request("GET", "h", "/x")
	body := bytes.Repeat([]byte("b"), 9500)
	wire := FormatResponse(Response{Status: 200, Header: map[string]string{"Content-Type": "text/html"}, Body: body})
	if err := cli.Feed(wire); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Status != 200 || !bytes.Equal(got[0].Body, body) {
		t.Fatalf("got %d responses", len(got))
	}
	if cli.InFlight() != 0 {
		t.Fatalf("in flight = %d", cli.InFlight())
	}
}

func TestFragmentedDelivery(t *testing.T) {
	cli := NewClientConn(func([]byte) {})
	var got []Response
	cli.OnResponse(func(r Response) { got = append(got, r) })
	wire := FormatResponse(Response{Status: 200, Body: []byte("hello world")})
	for i := range wire {
		if err := cli.Feed(wire[i : i+1]); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 1 || string(got[0].Body) != "hello world" {
		t.Fatalf("got %+v", got)
	}
}

func TestPipelinedSequentialResponses(t *testing.T) {
	var wire bytes.Buffer
	srv := NewServerConn(func(b []byte) { wire.Write(b) })
	var reqs []Request
	srv.OnRequest(func(r Request) { reqs = append(reqs, r) })
	// Client pipelines three requests.
	var toServer bytes.Buffer
	cli := NewClientConn(func(b []byte) { toServer.Write(b) })
	var resps []Response
	cli.OnResponse(func(r Response) { resps = append(resps, r) })
	cli.Request("GET", "h", "/a")
	cli.Request("GET", "h", "/b")
	cli.Request("GET", "h", "/c")
	if err := srv.Feed(toServer.Bytes()); err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 3 {
		t.Fatalf("server saw %d requests", len(reqs))
	}
	for i, r := range reqs {
		if err := srv.Respond(Response{Status: 200, Body: []byte(r.Path)}); err != nil {
			t.Fatalf("respond %d: %v", i, err)
		}
	}
	if err := srv.Respond(Response{Status: 200}); err == nil {
		t.Fatal("Respond with no outstanding request succeeded")
	}
	if err := cli.Feed(wire.Bytes()); err != nil {
		t.Fatal(err)
	}
	if len(resps) != 3 {
		t.Fatalf("client saw %d responses", len(resps))
	}
	for i, want := range []string{"/a", "/b", "/c"} {
		if string(resps[i].Body) != want {
			t.Fatalf("response %d body = %q (order broken)", i, resps[i].Body)
		}
	}
}

func TestMalformedRequestRejected(t *testing.T) {
	srv := NewServerConn(func([]byte) {})
	if err := srv.Feed([]byte("NOT A REQUEST\r\n\r\n")); err == nil {
		t.Fatal("malformed request accepted")
	}
	if srv.Err() == nil {
		t.Fatal("error not sticky")
	}
}

func TestMalformedResponseRejected(t *testing.T) {
	cases := []string{
		"NOPE 200 OK\r\n\r\n",
		"HTTP/1.1 abc OK\r\n\r\n",
		"HTTP/1.1 200 OK\r\nContent-Length: -5\r\n\r\n",
		"HTTP/1.1 200 OK\r\nContent-Length: xyz\r\n\r\n",
		"HTTP/1.1 200 OK\r\nbadheaderline\r\n\r\n",
	}
	for _, c := range cases {
		cli := NewClientConn(func([]byte) {})
		if err := cli.Feed([]byte(c)); err == nil {
			t.Fatalf("accepted %q", c)
		}
	}
}

func TestHeaderTooLarge(t *testing.T) {
	srv := NewServerConn(func([]byte) {})
	huge := []byte("GET / HTTP/1.1\r\nX: " + strings.Repeat("v", maxHeaderBytes+100))
	if err := srv.Feed(huge); !errors.Is(err, ErrHeaderTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

// Property: any (status, body) round-trips, and the serialized wire size
// reveals the body size exactly — HTTP/1.1's fundamental leak.
func TestResponseRoundTripProperty(t *testing.T) {
	f := func(status uint8, body []byte) bool {
		st := 200 + int(status)%200
		wire := FormatResponse(Response{Status: st, Body: body})
		cli := NewClientConn(func([]byte) {})
		var got *Response
		cli.OnResponse(func(r Response) { got = &r })
		if err := cli.Feed(wire); err != nil {
			return false
		}
		return got != nil && got.Status == st && bytes.Equal(got.Body, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: requests with arbitrary paths round-trip.
func TestRequestRoundTripProperty(t *testing.T) {
	f := func(pathBytes []byte) bool {
		path := "/" + strings.Map(func(r rune) rune {
			if r <= ' ' || r > '~' {
				return 'x'
			}
			return r
		}, string(pathBytes))
		wire := FormatRequest(Request{Method: "GET", Path: path, Host: "h"})
		srv := NewServerConn(func([]byte) {})
		var got *Request
		srv.OnRequest(func(r Request) { got = &r })
		if err := srv.Feed(wire); err != nil {
			return false
		}
		return got != nil && got.Path == path
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
