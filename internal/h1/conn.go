package h1

import (
	"fmt"
	"strconv"
	"strings"
)

// ServerConn is the sans-IO server side of one HTTP/1.1 connection.
// Requests are delivered in arrival order; the application must respond in
// the same order (HTTP/1.1 has no interleaving — that is the point of the
// baseline). Responses for not-yet-head-of-line requests are queued.
type ServerConn struct {
	out       func([]byte)
	onRequest func(Request)
	buf       []byte
	failed    error

	// pipeline bookkeeping: responses must go out in request order.
	pendingRequests int // requests delivered but not yet responded to
}

// NewServerConn builds a server endpoint; out transmits wire bytes.
func NewServerConn(out func([]byte)) *ServerConn {
	if out == nil {
		panic("h1: NewServerConn requires an output function")
	}
	return &ServerConn{out: out}
}

// OnRequest registers the request callback.
func (c *ServerConn) OnRequest(fn func(Request)) { c.onRequest = fn }

// Err returns the first fatal parse error.
func (c *ServerConn) Err() error { return c.failed }

// Feed consumes transport bytes, emitting complete requests.
func (c *ServerConn) Feed(b []byte) error {
	if c.failed != nil {
		return c.failed
	}
	c.buf = append(c.buf, b...)
	for {
		head, n, err := splitHead(c.buf)
		if err != nil {
			c.failed = err
			return err
		}
		if head == nil {
			return nil
		}
		c.buf = c.buf[n:]
		req, err := parseRequestHead(head)
		if err != nil {
			c.failed = err
			return err
		}
		c.pendingRequests++
		if c.onRequest != nil {
			c.onRequest(req)
		}
	}
}

// Respond sends the response for the oldest unanswered request. The
// sequential discipline means callers answer strictly in order; Respond
// returns an error when no request is outstanding.
func (c *ServerConn) Respond(resp Response) error {
	if c.pendingRequests == 0 {
		return fmt.Errorf("h1: Respond with no outstanding request")
	}
	c.pendingRequests--
	c.out(FormatResponse(resp))
	return nil
}

func parseRequestHead(head []byte) (Request, error) {
	lines := strings.Split(string(head), "\r\n")
	if len(lines) == 0 {
		return Request{}, ErrMalformedRequest
	}
	parts := strings.Split(lines[0], " ")
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/1.") {
		return Request{}, fmt.Errorf("%w: request line %q", ErrMalformedRequest, lines[0])
	}
	hdr, err := parseHeaderBlock(lines[1:])
	if err != nil {
		return Request{}, err
	}
	return Request{
		Method: parts[0],
		Path:   parts[1],
		Host:   hdr["host"],
		Header: hdr,
	}, nil
}

// ClientConn is the sans-IO client side: issue requests with Request,
// receive parsed responses (in order) via OnResponse.
type ClientConn struct {
	out        func([]byte)
	onResponse func(Response)
	buf        []byte
	failed     error
	inFlight   int

	// partial response state
	waitingBody bool
	current     Response
	bodyNeed    int
}

// NewClientConn builds a client endpoint.
func NewClientConn(out func([]byte)) *ClientConn {
	if out == nil {
		panic("h1: NewClientConn requires an output function")
	}
	return &ClientConn{out: out}
}

// OnResponse registers the response callback.
func (c *ClientConn) OnResponse(fn func(Response)) { c.onResponse = fn }

// Err returns the first fatal parse error.
func (c *ClientConn) Err() error { return c.failed }

// InFlight reports requests awaiting responses (pipelining depth).
func (c *ClientConn) InFlight() int { return c.inFlight }

// Request sends a GET-style request head.
func (c *ClientConn) Request(method, host, path string) {
	c.inFlight++
	c.out(FormatRequest(Request{Method: method, Host: host, Path: path}))
}

// Feed consumes transport bytes, emitting complete responses.
func (c *ClientConn) Feed(b []byte) error {
	if c.failed != nil {
		return c.failed
	}
	c.buf = append(c.buf, b...)
	for {
		if c.waitingBody {
			if len(c.buf) < c.bodyNeed {
				return nil
			}
			c.current.Body = append(c.current.Body, c.buf[:c.bodyNeed]...)
			c.buf = c.buf[c.bodyNeed:]
			c.waitingBody = false
			c.inFlight--
			if c.onResponse != nil {
				c.onResponse(c.current)
			}
			c.current = Response{}
			continue
		}
		head, n, err := splitHead(c.buf)
		if err != nil {
			c.failed = err
			return err
		}
		if head == nil {
			return nil
		}
		c.buf = c.buf[n:]
		resp, bodyLen, err := parseResponseHead(head)
		if err != nil {
			c.failed = err
			return err
		}
		c.current = resp
		c.bodyNeed = bodyLen
		c.waitingBody = true
	}
}

func parseResponseHead(head []byte) (Response, int, error) {
	lines := strings.Split(string(head), "\r\n")
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/1.") {
		return Response{}, 0, fmt.Errorf("%w: status line %q", ErrMalformedResponse, lines[0])
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return Response{}, 0, fmt.Errorf("%w: status %q", ErrMalformedResponse, parts[1])
	}
	hdr, err := parseHeaderBlock(lines[1:])
	if err != nil {
		return Response{}, 0, ErrMalformedResponse
	}
	bodyLen := 0
	if cl, ok := hdr["content-length"]; ok {
		bodyLen, err = strconv.Atoi(cl)
		if err != nil || bodyLen < 0 {
			return Response{}, 0, fmt.Errorf("%w: content-length %q", ErrMalformedResponse, cl)
		}
	}
	return Response{Status: status, Header: hdr}, bodyLen, nil
}
