// Package simtime provides a deterministic discrete-event scheduler with a
// virtual clock. All simulated components (links, TCP endpoints, HTTP/2
// applications, the adversary) run as callbacks on a single Scheduler, so an
// entire trial is single-threaded and bit-reproducible for a given seed.
package simtime

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback. Events fire in (time, sequence) order;
// the sequence number makes simultaneous events deterministic (FIFO).
type Event struct {
	at   time.Duration
	seq  uint64
	fn   func()
	idx  int // heap index; -1 once removed
	dead bool
}

// Time reports the virtual time at which the event will fire.
func (e *Event) Time() time.Duration { return e.at }

// Scheduler is a discrete-event executor over a virtual clock.
// The zero value is ready to use.
type Scheduler struct {
	now     time.Duration
	nextSeq uint64
	queue   eventQueue
	running bool
}

// NewScheduler returns an empty scheduler with the clock at zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now reports the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Len reports the number of pending events.
func (s *Scheduler) Len() int { return len(s.queue) }

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// (before Now) panics: it is always a simulation bug, never a recoverable
// condition.
func (s *Scheduler) At(at time.Duration, fn func()) *Event {
	if fn == nil {
		panic("simtime: At called with nil callback")
	}
	if at < s.now {
		panic(fmt.Sprintf("simtime: event scheduled in the past: at=%v now=%v", at, s.now))
	}
	ev := &Event{at: at, seq: s.nextSeq, fn: fn}
	s.nextSeq++
	heap.Push(&s.queue, ev)
	return ev
}

// After schedules fn to run d after the current virtual time.
// Negative d is clamped to zero.
func (s *Scheduler) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Cancel removes a pending event. Cancelling a fired or already-cancelled
// event is a no-op, so callers can cancel unconditionally in cleanups.
func (s *Scheduler) Cancel(ev *Event) {
	if ev == nil || ev.dead {
		return
	}
	ev.dead = true
	if ev.idx >= 0 {
		heap.Remove(&s.queue, ev.idx)
	}
}

// Step runs the single earliest pending event, advancing the clock to its
// time. It reports whether an event was run.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		ev := heap.Pop(&s.queue).(*Event)
		if ev.dead {
			continue
		}
		ev.dead = true
		s.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (s *Scheduler) Run() {
	s.guardReentry()
	defer func() { s.running = false }()
	for s.Step() {
	}
}

// RunUntil executes events with time ≤ deadline, then advances the clock to
// the deadline (even if the queue still holds later events).
func (s *Scheduler) RunUntil(deadline time.Duration) {
	s.guardReentry()
	defer func() { s.running = false }()
	for {
		ev := s.peek()
		if ev == nil || ev.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunWhile executes events until cond reports false or the queue drains.
// cond is evaluated before each event.
func (s *Scheduler) RunWhile(cond func() bool) {
	s.guardReentry()
	defer func() { s.running = false }()
	for cond() && s.Step() {
	}
}

func (s *Scheduler) guardReentry() {
	if s.running {
		panic("simtime: re-entrant Run on the same Scheduler")
	}
	s.running = true
}

func (s *Scheduler) peek() *Event {
	for len(s.queue) > 0 {
		if s.queue[0].dead {
			heap.Pop(&s.queue)
			continue
		}
		return s.queue[0]
	}
	return nil
}

// eventQueue is a min-heap ordered by (time, sequence).
type eventQueue []*Event

var _ heap.Interface = (*eventQueue)(nil)

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.idx = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*q = old[:n-1]
	return ev
}
