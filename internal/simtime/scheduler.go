// Package simtime provides a deterministic discrete-event scheduler with a
// virtual clock. All simulated components (links, TCP endpoints, HTTP/2
// applications, the adversary) run as callbacks on a single Scheduler, so an
// entire trial is single-threaded and bit-reproducible for a given seed.
package simtime

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback. Events fire in (time, sequence) order;
// the sequence number makes simultaneous events deterministic (FIFO).
//
// Fired events are recycled through a per-scheduler free list (trials
// schedule hundreds of thousands of short-lived timer events, and the
// scheduler is the hottest allocation site of a trial). An Event is
// single-owner: once its callback has run, the handle returned by At/After
// is dead and the owner must drop it — every component in this repo clears
// its stored handle inside the callback (or immediately after Cancel), so
// a recycled struct is never reachable through a stale handle. Cancelling
// a pending or already-cancelled event remains a safe no-op; cancelled
// events are deliberately NOT recycled, so double-Cancel can never corrupt
// a reused event.
type Event struct {
	at   time.Duration
	seq  uint64
	fn   func()
	fnA  func(any) // AtArg form: pre-bound callback + argument, no closure
	arg  any
	idx  int // heap index; -1 once removed
	dead bool
	next *Event // free-list link; non-nil only while recycled
}

// Time reports the virtual time at which the event will fire.
func (e *Event) Time() time.Duration { return e.at }

// Scheduler is a discrete-event executor over a virtual clock.
// The zero value is ready to use.
type Scheduler struct {
	now      time.Duration
	nextSeq  uint64
	queue    eventQueue
	running  bool
	free     *Event // recycled fired events (see Event)
	stepHook func(time.Duration)

	// Watchdog state (see SetStepBudget / SetWallDeadline / SetInterrupt).
	// All three are off by default and cost one predictable branch per
	// fired event when unarmed.
	steps        uint64
	stepBudget   uint64
	wallDeadline time.Time
	wallLimit    time.Duration
	interrupt    func() bool
	interrupted  bool
}

// pollEvery is how often (in fired events) the wall-deadline and
// interrupt hooks are polled. Both involve a host-clock read or an
// atomic-ish load, so they are amortized; the step budget is exact.
const pollEvery = 1024

// BudgetError is the panic value raised when a trial exceeds its step
// budget: the deterministic watchdog verdict for a wedged simulation
// (e.g. a self-rescheduling timer loop that never quiesces). It fires at
// exactly the same event count for the same seed regardless of host, wall
// clock or worker count, so supervised sweeps stay byte-reproducible.
type BudgetError struct {
	Steps uint64        // events fired when the budget tripped
	Now   time.Duration // virtual time at the trip
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("simtime: step budget exceeded: %d events fired, virtual time %v", e.Steps, e.Now)
}

// DeadlineError is the panic value raised when a trial exceeds its
// wall-clock deadline — the nondeterministic backstop for simulations
// wedged in ways the step budget cannot see (a pathological but finite
// event storm that grinds for minutes). Trials killed this way are NOT
// reproducible byte-for-byte across hosts; prefer the step budget where
// determinism matters.
type DeadlineError struct {
	Limit time.Duration // the configured deadline
	Steps uint64        // events fired when the deadline tripped
	Now   time.Duration // virtual time at the trip
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("simtime: wall deadline %v exceeded: %d events fired, virtual time %v", e.Limit, e.Steps, e.Now)
}

// SetStepBudget arms the deterministic watchdog: once n events have
// fired, the next Step panics with *BudgetError instead of running
// forever. 0 (the default) disables. The budget counts fired events, not
// scheduled ones, so cancelled timers don't consume it.
func (s *Scheduler) SetStepBudget(n uint64) { s.stepBudget = n }

// Steps reports how many events have fired so far.
func (s *Scheduler) Steps() uint64 { return s.steps }

// SetWallDeadline arms the wall-clock watchdog: once d of host time has
// elapsed (measured from this call, polled every pollEvery events), Step
// panics with *DeadlineError. 0 disables. Nondeterministic by nature —
// see DeadlineError.
func (s *Scheduler) SetWallDeadline(d time.Duration) {
	if d <= 0 {
		s.wallDeadline = time.Time{}
		s.wallLimit = 0
		return
	}
	s.wallDeadline = time.Now().Add(d)
	s.wallLimit = d
}

// SetInterrupt installs a cooperative cancellation probe, polled every
// pollEvery fired events: when fn reports true, the run loops stop
// stepping (Step returns false) and Interrupted reports true. The sweep
// engine wires a context's Err here so a SIGINT drains mid-trial instead
// of waiting out the simulation. nil removes the probe.
func (s *Scheduler) SetInterrupt(fn func() bool) { s.interrupt = fn }

// Interrupted reports whether the interrupt probe has stopped a run.
func (s *Scheduler) Interrupted() bool { return s.interrupted }

// NewScheduler returns an empty scheduler with the clock at zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now reports the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// SetStepHook installs a callback invoked with each fired event's time,
// just before its callback runs. Invariant checkers use it to assert
// clock monotonicity; simtime stays free of higher-layer imports by
// taking a plain func. nil removes the hook.
func (s *Scheduler) SetStepHook(fn func(time.Duration)) { s.stepHook = fn }

// Len reports the number of pending events.
func (s *Scheduler) Len() int { return len(s.queue) }

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// (before Now) panics: it is always a simulation bug, never a recoverable
// condition.
func (s *Scheduler) At(at time.Duration, fn func()) *Event {
	if fn == nil {
		panic("simtime: At called with nil callback")
	}
	if at < s.now {
		panic(fmt.Sprintf("simtime: event scheduled in the past: at=%v now=%v", at, s.now))
	}
	ev := s.free
	if ev != nil {
		s.free = ev.next
		*ev = Event{at: at, seq: s.nextSeq, fn: fn}
	} else {
		ev = &Event{at: at, seq: s.nextSeq, fn: fn}
	}
	s.nextSeq++
	heap.Push(&s.queue, ev)
	return ev
}

// After schedules fn to run d after the current virtual time.
// Negative d is clamped to zero.
func (s *Scheduler) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// AtArg is At for hot paths that would otherwise close over a single
// value: fn is a long-lived function (typically a method value bound
// once at construction) and arg is handed back to it when the event
// fires. Scheduling this way allocates nothing beyond the (recycled)
// Event — netsim's per-packet delivery timers are the motivating
// caller, which fire hundreds of times per simulated page load.
func (s *Scheduler) AtArg(at time.Duration, fn func(any), arg any) *Event {
	if fn == nil {
		panic("simtime: AtArg called with nil callback")
	}
	if at < s.now {
		panic(fmt.Sprintf("simtime: event scheduled in the past: at=%v now=%v", at, s.now))
	}
	ev := s.free
	if ev != nil {
		s.free = ev.next
		*ev = Event{at: at, seq: s.nextSeq, fnA: fn, arg: arg}
	} else {
		ev = &Event{at: at, seq: s.nextSeq, fnA: fn, arg: arg}
	}
	s.nextSeq++
	heap.Push(&s.queue, ev)
	return ev
}

// AfterArg is After's AtArg form.
func (s *Scheduler) AfterArg(d time.Duration, fn func(any), arg any) *Event {
	if d < 0 {
		d = 0
	}
	return s.AtArg(s.now+d, fn, arg)
}

// Cancel removes a pending event. Cancelling an already-cancelled event is
// a no-op, so callers can cancel unconditionally in cleanups. A fired
// event's handle is dead (its struct may have been recycled into a new
// event); callers must clear stored handles inside the callback rather
// than cancel them afterwards.
func (s *Scheduler) Cancel(ev *Event) {
	if ev == nil || ev.dead {
		return
	}
	ev.dead = true
	if ev.idx >= 0 {
		heap.Remove(&s.queue, ev.idx)
	}
}

// Step runs the single earliest pending event, advancing the clock to its
// time. It reports whether an event was run. With a step budget armed it
// panics with *BudgetError once the budget is exhausted; with a wall
// deadline armed it panics with *DeadlineError once host time runs out —
// in both cases the error, not a hang, is the contract.
func (s *Scheduler) Step() bool {
	if s.interrupted {
		return false
	}
	for len(s.queue) > 0 {
		ev := heap.Pop(&s.queue).(*Event)
		if ev.dead {
			continue
		}
		if s.stepBudget > 0 && s.steps >= s.stepBudget {
			// Push the event back so the scheduler state stays coherent for
			// a recovering supervisor that wants to inspect it.
			ev.dead = false
			heap.Push(&s.queue, ev)
			panic(&BudgetError{Steps: s.steps, Now: s.now})
		}
		s.steps++
		if s.steps%pollEvery == 0 {
			if s.interrupt != nil && s.interrupt() {
				s.interrupted = true
				ev.dead = false
				heap.Push(&s.queue, ev)
				return false
			}
			if !s.wallDeadline.IsZero() && time.Now().After(s.wallDeadline) {
				ev.dead = false
				heap.Push(&s.queue, ev)
				panic(&DeadlineError{Limit: s.wallLimit, Steps: s.steps, Now: s.now})
			}
		}
		ev.dead = true
		s.now = ev.at
		if s.stepHook != nil {
			s.stepHook(ev.at)
		}
		if ev.fn != nil {
			ev.fn()
		} else {
			ev.fnA(ev.arg)
		}
		// Recycle only after the callback returns: a callback that reaches
		// its own stale handle (cancel-guarded cleanup paths) still sees a
		// dead, unpooled event and no-ops. The struct becomes live again
		// only when a later At re-arms it.
		ev.fn = nil
		ev.fnA = nil
		ev.arg = nil
		ev.next = s.free
		s.free = ev
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (s *Scheduler) Run() {
	s.guardReentry()
	defer func() { s.running = false }()
	for s.Step() {
	}
}

// RunUntil executes events with time ≤ deadline, then advances the clock to
// the deadline (even if the queue still holds later events).
func (s *Scheduler) RunUntil(deadline time.Duration) {
	s.guardReentry()
	defer func() { s.running = false }()
	for {
		ev := s.peek()
		if ev == nil || ev.at > deadline {
			break
		}
		if !s.Step() {
			// Interrupted: stop draining. The clock still advances to the
			// deadline below so collection sees a consistent end time.
			break
		}
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunWhile executes events until cond reports false or the queue drains.
// cond is evaluated before each event.
func (s *Scheduler) RunWhile(cond func() bool) {
	s.guardReentry()
	defer func() { s.running = false }()
	for cond() && s.Step() {
	}
}

func (s *Scheduler) guardReentry() {
	if s.running {
		panic("simtime: re-entrant Run on the same Scheduler")
	}
	s.running = true
}

func (s *Scheduler) peek() *Event {
	for len(s.queue) > 0 {
		if s.queue[0].dead {
			heap.Pop(&s.queue)
			continue
		}
		return s.queue[0]
	}
	return nil
}

// eventQueue is a min-heap ordered by (time, sequence).
type eventQueue []*Event

var _ heap.Interface = (*eventQueue)(nil)

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.idx = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*q = old[:n-1]
	return ev
}
