package simtime

import (
	"math"
	"math/rand"
	"time"
)

// Rand is a seeded source of the random quantities a trial needs: service
// times, natural jitter, loss coin-flips, permutations. It wraps math/rand
// so that every trial's randomness flows from one explicit seed.
type Rand struct {
	rng *rand.Rand
}

// NewRand returns a deterministic generator for the given seed.
func NewRand(seed int64) *Rand {
	return &Rand{rng: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0,1).
func (r *Rand) Float64() float64 { return r.rng.Float64() }

// Intn returns a uniform value in [0,n). n must be > 0.
func (r *Rand) Intn(n int) int { return r.rng.Intn(n) }

// Int63 returns a non-negative uniform 63-bit value.
func (r *Rand) Int63() int64 { return r.rng.Int63() }

// Perm returns a uniform random permutation of [0,n).
func (r *Rand) Perm(n int) []int { return r.rng.Perm(n) }

// Bool returns true with probability p (clamped to [0,1]).
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.rng.Float64() < p
}

// Uniform returns a duration uniform in [lo, hi]. If hi ≤ lo it returns lo.
func (r *Rand) Uniform(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(r.rng.Int63n(int64(hi-lo)+1))
}

// Exponential returns an exponentially distributed duration with the given
// mean, truncated at 20× the mean to keep event horizons bounded.
func (r *Rand) Exponential(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	d := time.Duration(float64(mean) * r.rng.ExpFloat64())
	if max := 20 * mean; d > max {
		d = max
	}
	return d
}

// LogNormal returns a log-normally distributed duration with the given
// median and sigma (shape parameter of the underlying normal). Service
// times in the server model use this: mostly tight, occasionally long.
func (r *Rand) LogNormal(median time.Duration, sigma float64) time.Duration {
	if median <= 0 {
		return 0
	}
	d := time.Duration(float64(median) * math.Exp(sigma*r.rng.NormFloat64()))
	if max := 50 * median; d > max {
		d = max
	}
	return d
}

// Fork derives an independent generator from this one. Components that
// consume randomness at data-dependent rates should each own a fork so one
// component's draws do not perturb another's sequence.
func (r *Rand) Fork() *Rand {
	return NewRand(r.rng.Int63())
}
