package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerOrdersByTime(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30*time.Millisecond, func() { got = append(got, 3) })
	s.At(10*time.Millisecond, func() { got = append(got, 1) })
	s.At(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("Now = %v, want 30ms", s.Now())
	}
}

func TestSchedulerTiesFIFO(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("simultaneous events not FIFO: %v", got)
		}
	}
}

func TestSchedulerAfterRelative(t *testing.T) {
	s := NewScheduler()
	var fired time.Duration
	s.At(5*time.Millisecond, func() {
		s.After(7*time.Millisecond, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 12*time.Millisecond {
		t.Fatalf("After fired at %v, want 12ms", fired)
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	ran := false
	ev := s.At(time.Millisecond, func() { ran = true })
	s.Cancel(ev)
	s.Cancel(ev) // double cancel is a no-op
	s.Cancel(nil)
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestSchedulerCancelDuringRun(t *testing.T) {
	s := NewScheduler()
	ran := false
	var ev *Event
	s.At(1*time.Millisecond, func() { s.Cancel(ev) })
	ev = s.At(2*time.Millisecond, func() { ran = true })
	s.Run()
	if ran {
		t.Fatal("event cancelled mid-run still ran")
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	var count int
	for i := 1; i <= 5; i++ {
		s.At(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	s.RunUntil(3 * time.Millisecond)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if s.Now() != 3*time.Millisecond {
		t.Fatalf("Now = %v, want 3ms", s.Now())
	}
	if s.Len() != 2 {
		t.Fatalf("pending = %d, want 2", s.Len())
	}
	// RunUntil advances the clock even with no events in range.
	s.RunUntil(10 * time.Millisecond)
	if count != 5 || s.Now() != 10*time.Millisecond {
		t.Fatalf("count=%d now=%v, want 5, 10ms", count, s.Now())
	}
}

func TestSchedulerRunWhile(t *testing.T) {
	s := NewScheduler()
	var count int
	for i := 1; i <= 10; i++ {
		s.At(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	s.RunWhile(func() bool { return count < 4 })
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(5*time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(time.Millisecond, func() {})
	})
	s.Run()
}

func TestSchedulerNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil callback did not panic")
		}
	}()
	NewScheduler().At(0, nil)
}

// Property: for any set of (time, id) pairs, execution order is sorted by
// time with ties in insertion order.
func TestSchedulerOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		s := NewScheduler()
		type rec struct {
			at  time.Duration
			seq int
		}
		var got []rec
		for i, d := range delays {
			at := time.Duration(d) * time.Microsecond
			i := i
			s.At(at, func() { got = append(got, rec{at, i}) })
		}
		s.Run()
		if len(got) != len(delays) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerRecyclesFiredEvents pins the free-list contract: a timer
// chain (each callback scheduling its successor) reuses fired Event
// structs instead of allocating one per event.
func TestSchedulerRecyclesFiredEvents(t *testing.T) {
	s := NewScheduler()
	var n int
	allocs := testing.AllocsPerRun(100, func() {
		var tick func()
		tick = func() {
			n++
			if n%100 != 0 {
				s.After(time.Microsecond, tick)
			}
		}
		s.After(time.Microsecond, tick)
		s.Run()
	})
	// Each run fires 100 chained events; without recycling that is ≥100
	// allocations. With the free list the chain reuses one struct.
	if allocs > 5 {
		t.Fatalf("chained events allocate %.1f per 100 fires, want ≤5 (free list broken)", allocs)
	}
}

// TestSchedulerCancelledEventsNotRecycled pins the safety half of the
// free-list design: a cancelled event's struct is never pooled, so the
// documented double-Cancel no-op can not kill an unrelated reused event.
func TestSchedulerCancelledEventsNotRecycled(t *testing.T) {
	s := NewScheduler()
	cancelled := s.At(time.Millisecond, func() { t.Fatal("cancelled event ran") })
	s.Cancel(cancelled)
	ran := false
	keep := s.At(2*time.Millisecond, func() { ran = true })
	// If Cancel had recycled, this second Cancel of the stale handle could
	// have removed `keep` (had the struct been reused). It must be a no-op.
	s.Cancel(cancelled)
	if keep.dead {
		t.Fatal("double-Cancel of a cancelled event killed a live event")
	}
	s.Run()
	if !ran {
		t.Fatal("live event did not run")
	}
}

// TestSchedulerReuseKeepsOrdering runs a workload that constantly fires
// and reschedules and checks the (time, seq) ordering property holds
// across recycled structs.
func TestSchedulerReuseKeepsOrdering(t *testing.T) {
	s := NewScheduler()
	var fired []time.Duration
	var reschedule func(step int)
	reschedule = func(step int) {
		fired = append(fired, s.Now())
		if step < 500 {
			s.After(time.Duration(step%7)*time.Microsecond, func() { reschedule(step + 1) })
		}
	}
	s.After(0, func() { reschedule(0) })
	s.Run()
	if len(fired) != 501 {
		t.Fatalf("fired %d events, want 501", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("time went backwards at %d: %v after %v", i, fired[i], fired[i-1])
		}
	}
}

// BenchmarkSchedulerChurn measures the timer-chain hot path the trials
// exercise (RTO/delayed-ACK/retry timers rescheduling from their own
// callbacks): 1000 chained schedule+fire cycles per iteration. Before the
// event free list this allocated one Event per fire (~1000 allocs/op);
// with it the chain runs allocation-free after warm-up.
func BenchmarkSchedulerChurn(b *testing.B) {
	s := NewScheduler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var n int
		var tick func()
		tick = func() {
			n++
			if n < 1000 {
				s.After(time.Microsecond, tick)
			}
		}
		s.After(time.Microsecond, tick)
		s.Run()
		if n != 1000 {
			b.Fatal("missed events")
		}
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRand(1).Int63() == NewRand(2).Int63() {
		t.Fatal("different seeds produced identical first draw")
	}
}

func TestRandUniformBounds(t *testing.T) {
	r := NewRand(7)
	lo, hi := 10*time.Millisecond, 20*time.Millisecond
	for i := 0; i < 1000; i++ {
		d := r.Uniform(lo, hi)
		if d < lo || d > hi {
			t.Fatalf("Uniform out of range: %v", d)
		}
	}
	if got := r.Uniform(hi, lo); got != hi {
		t.Fatalf("inverted range: got %v, want lo %v", got, hi)
	}
}

func TestRandBoolEdges(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("Bool(0.3) frequency = %v", frac)
	}
}

func TestRandDistributionsNonNegative(t *testing.T) {
	r := NewRand(11)
	for i := 0; i < 1000; i++ {
		if d := r.Exponential(time.Millisecond); d < 0 || d > 20*time.Millisecond {
			t.Fatalf("Exponential out of bounds: %v", d)
		}
		if d := r.LogNormal(time.Millisecond, 0.5); d < 0 || d > 50*time.Millisecond {
			t.Fatalf("LogNormal out of bounds: %v", d)
		}
	}
	if r.Exponential(0) != 0 || r.LogNormal(0, 1) != 0 {
		t.Fatal("zero-mean distributions must return 0")
	}
}

func TestRandForkIndependence(t *testing.T) {
	a := NewRand(5)
	fork := a.Fork()
	// Draws from the fork must not affect the parent's future sequence
	// relative to a parent that forked but never used the fork.
	b := NewRand(5)
	b.Fork()
	for i := 0; i < 10; i++ {
		fork.Float64()
	}
	for i := 0; i < 50; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("fork draws perturbed parent sequence")
		}
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(3)
	p := r.Perm(8)
	seen := make(map[int]bool, 8)
	for _, v := range p {
		if v < 0 || v >= 8 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

// TestSchedulerAtArg pins the pre-bound-callback form: AtArg events
// interleave with At events in the same (time, seq) order, the argument
// round-trips, and recycled structs never leak a stale fn/fnA pair.
func TestSchedulerAtArg(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.AtArg(20*time.Millisecond, func(v any) { got = append(got, v.(int)) }, 2)
	s.At(10*time.Millisecond, func() { got = append(got, 1) })
	s.AfterArg(30*time.Millisecond, func(v any) { got = append(got, v.(int)) }, 3)
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
}

// TestSchedulerAtArgRecycling drives a chain that alternates At and
// AtArg through the free list: a recycled AtArg struct re-armed via At
// (and vice versa) must dispatch the right variant.
func TestSchedulerAtArgRecycling(t *testing.T) {
	s := NewScheduler()
	var n int
	var tickArg func(any)
	var tick func()
	tickArg = func(v any) {
		n += v.(int)
		if n < 100 {
			s.AfterArg(time.Microsecond, tickArg, 1)
		}
	}
	tick = func() {
		n++
		if n < 100 {
			if n%2 == 0 {
				s.AfterArg(time.Microsecond, tickArg, 1)
			} else {
				s.After(time.Microsecond, tick)
			}
		}
	}
	s.After(time.Microsecond, tick)
	s.Run()
	if n != 100 {
		t.Fatalf("n = %d, want 100", n)
	}
}

// TestSchedulerAtArgAllocs pins that the AtArg form with a pre-bound
// method value and recycled events stays allocation-free in steady
// state (the closure the At form would build is the allocation the
// netsim hot path saves).
func TestSchedulerAtArgAllocs(t *testing.T) {
	s := NewScheduler()
	var n int
	sink := func(any) { n++ }
	var arg any = 7 // pre-boxed so the measurement sees no interface conversion
	// Warm the free list.
	s.AfterArg(time.Microsecond, sink, arg)
	s.Run()
	allocs := testing.AllocsPerRun(100, func() {
		s.AfterArg(time.Microsecond, sink, arg)
		s.Run()
	})
	if allocs > 0 {
		t.Fatalf("AtArg with warmed free list allocates %.1f per event, want 0", allocs)
	}
}

// TestStepBudgetTripsSelfReschedulingLoop is the watchdog regression
// test: a timer callback that always reschedules itself would run Run()
// forever; with a step budget armed the scheduler must panic with a
// typed *BudgetError at exactly the budgeted event count — an error, not
// a hang.
func TestStepBudgetTripsSelfReschedulingLoop(t *testing.T) {
	s := NewScheduler()
	s.SetStepBudget(10_000)
	var spins int
	var spin func()
	spin = func() {
		spins++
		s.After(time.Microsecond, spin)
	}
	s.After(0, spin)
	defer func() {
		r := recover()
		be, ok := r.(*BudgetError)
		if !ok {
			t.Fatalf("recovered %T (%v), want *BudgetError", r, r)
		}
		if be.Steps != 10_000 {
			t.Fatalf("budget tripped at %d steps, want exactly 10000", be.Steps)
		}
		if spins != 10_000 {
			t.Fatalf("callback ran %d times before the trip, want 10000", spins)
		}
		if s.Steps() != 10_000 {
			t.Fatalf("Steps() = %d after the trip, want 10000", s.Steps())
		}
	}()
	s.Run()
	t.Fatal("Run returned: the self-rescheduling loop drained without tripping the budget")
}

// TestStepBudgetInvisibleUnderBudget pins that an armed-but-untripped
// budget changes nothing: same firing order, same clock, no panic. This
// is the supervision invisibility contract at the scheduler layer.
func TestStepBudgetInvisibleUnderBudget(t *testing.T) {
	run := func(budget uint64) ([]int, time.Duration) {
		s := NewScheduler()
		if budget > 0 {
			s.SetStepBudget(budget)
		}
		var got []int
		s.At(30*time.Millisecond, func() { got = append(got, 3) })
		s.At(10*time.Millisecond, func() { got = append(got, 1) })
		s.At(20*time.Millisecond, func() { got = append(got, 2) })
		s.Run()
		return got, s.Now()
	}
	plain, plainNow := run(0)
	budgeted, budgetedNow := run(1 << 20)
	if len(plain) != len(budgeted) || plainNow != budgetedNow {
		t.Fatalf("budgeted run diverged: %v@%v vs %v@%v", budgeted, budgetedNow, plain, plainNow)
	}
	for i := range plain {
		if plain[i] != budgeted[i] {
			t.Fatalf("budgeted run reordered events: %v vs %v", budgeted, plain)
		}
	}
}

// TestWallDeadlineTripsGrindingRun covers the nondeterministic backstop:
// a run that keeps stepping past its wall deadline panics with
// *DeadlineError at the next poll boundary.
func TestWallDeadlineTripsGrindingRun(t *testing.T) {
	s := NewScheduler()
	s.SetWallDeadline(time.Nanosecond) // already expired by the first poll
	var spin func()
	spin = func() { s.After(time.Microsecond, spin) }
	s.After(0, spin)
	defer func() {
		de, ok := recover().(*DeadlineError)
		if !ok {
			t.Fatalf("recovered %T, want *DeadlineError", de)
		}
		if de.Limit != time.Nanosecond {
			t.Fatalf("DeadlineError.Limit = %v, want the configured 1ns", de.Limit)
		}
	}()
	s.Run()
	t.Fatal("Run returned despite an expired wall deadline")
}

// TestInterruptStopsRunCooperatively: the interrupt probe stops the run
// loops at a poll boundary with events still queued, without panicking —
// the cooperative-cancellation path a context wires into.
func TestInterruptStopsRunCooperatively(t *testing.T) {
	s := NewScheduler()
	stop := false
	s.SetInterrupt(func() bool { return stop })
	var fired int
	var spin func()
	spin = func() {
		fired++
		if fired == 2*pollEvery {
			stop = true
		}
		s.After(time.Microsecond, spin)
	}
	s.After(0, spin)
	s.RunUntil(time.Hour)
	if !s.Interrupted() {
		t.Fatal("scheduler did not report Interrupted after the probe fired")
	}
	if fired > 3*pollEvery {
		t.Fatalf("run kept stepping %d events after the interrupt, want a stop within one poll window", fired)
	}
	if s.Len() == 0 {
		t.Fatal("interrupt drained the queue; it must stop with pending events intact")
	}
	if s.Step() {
		t.Fatal("Step ran an event after interruption")
	}
}
