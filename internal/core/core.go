// Package core is the library facade: it assembles the full testbed —
// network path, TCP pair, TLS, HTTP/2, website, server, browser, monitor,
// adversary — and runs seeded trials, returning everything the paper's
// tables and figures are computed from. Downstream users who want the
// attack as a black box use RunTrial; the experiment harness and examples
// build on it.
package core

import (
	"context"
	"fmt"
	"time"

	"h2privacy/internal/adversary"
	"h2privacy/internal/capture"
	"h2privacy/internal/check"
	"h2privacy/internal/endpoint"
	"h2privacy/internal/flowseq"
	"h2privacy/internal/metrics"
	"h2privacy/internal/netsim"
	"h2privacy/internal/obs"
	"h2privacy/internal/perf"
	"h2privacy/internal/pool"
	"h2privacy/internal/predict"
	"h2privacy/internal/simtime"
	"h2privacy/internal/tcpsim"
	"h2privacy/internal/trace"
	"h2privacy/internal/website"
)

// DefaultLink returns the paper's testbed path: a 1 Gbps gateway link
// with campus-scale latency and mild natural reordering.
func DefaultLink() netsim.LinkConfig {
	return netsim.LinkConfig{
		BandwidthBps:  1e9,
		PropDelay:     8 * time.Millisecond,
		NaturalJitter: 300 * time.Microsecond,
		ReorderProb:   0.005,
	}
}

// TrialConfig describes one page-load trial.
type TrialConfig struct {
	// Seed drives every random quantity in the trial.
	Seed int64
	// Link configures the path (zero value → DefaultLink).
	Link netsim.LinkConfig
	// TCP tunes the transport endpoints.
	TCP tcpsim.Config
	// Pool, when non-nil, arms trial-scoped allocation recycling: segment
	// structs, payload buffers and netsim packets are rented from the arena
	// and recycled as their last scheduled delivery fires, instead of being
	// left to the garbage collector. Workers own one arena each and Reset it
	// between trials, so buffers are reused across a whole sweep. Pooling
	// changes where bytes live, never their contents — results, traces and
	// exports stay byte-identical with it on or off, at any worker count.
	Pool *pool.Arena
	// Server and Browser tune the applications.
	Server  endpoint.ServerConfig
	Browser endpoint.BrowserConfig
	// Perm is the user's party-preference permutation; nil draws one
	// from the seed (the paper's volunteer).
	Perm []int
	// ShuffledEmblemOrder enables the §VII defense: the client requests
	// the emblems in a random order unrelated to the displayed ranking.
	ShuffledEmblemOrder bool
	// ServerPush enables the §VII server-push defense: the server pushes
	// all emblems (catalog order) when the results script is requested,
	// and the browser advertises ENABLE_PUSH and adopts the pushes.
	ServerPush bool
	// Attack, when non-nil, arms the full §V staged adversary.
	Attack *adversary.AttackPlan
	// Scenario names a netsim fault scenario to inject (see
	// netsim.ScenarioNames); empty disables fault injection entirely — no
	// events scheduled, no extra RNG draws, existing seeds unchanged.
	Scenario string
	// Knobs for the single-parameter studies (§IV): applied from t=0
	// when Attack is nil.
	RequestSpacing time.Duration // per-GET jitter d (Table I)
	RandomJitter   time.Duration // netem-style jitter, both directions
	ThrottleBps    float64       // bandwidth limit (Fig. 5)
	DropRate       float64       // server→client drop probability
	DropFrom       time.Duration // when drops start (with DropRate)
	DropDuration   time.Duration // how long drops last
	// CrossTrafficBps injects Poisson background load (each direction)
	// through the same gateway — the uncontrolled traffic a real campus
	// link carries. Zero disables.
	CrossTrafficBps float64
	// Fleet, when non-nil, switches the trial to the shared-bottleneck
	// fleet topology: N client–server pairs multiplexed over one
	// aggregation link, with the adversary constrained to a K-flow
	// interference budget and target selection from capture-visible
	// features. See FleetConfig; RunTrial routes to the fleet path. Flow 0
	// is the target pair this config otherwise describes; at N=1 with a
	// mirrored bottleneck the trial is byte-identical to Fleet=nil.
	Fleet *FleetConfig
	// Predict tunes the prediction module.
	Predict predict.Config
	// Duration bounds the simulated time. Default 120 s.
	Duration time.Duration
	// Trace, when non-nil, is threaded through every layer of the testbed:
	// netsim links, both TCP endpoints, both HTTP/2 connections, the
	// browser, the server, the monitor and the adversary all emit events,
	// counters and histograms into it. Nil disables tracing at zero cost.
	Trace *trace.Tracer
	// Check, when non-nil, arms runtime invariant checking across every
	// layer of the testbed: TCP sequence-space conservation, HTTP/2 stream
	// legality and flow-control accounting, HPACK table sync, link packet
	// conservation, scheduler clock monotonicity and monitor reassembly
	// partitioning. Violations accumulate in the checker and flush into its
	// Recorder at collection (TrialResult.CheckViolations). Nil disables at
	// zero cost — every hook is a nil-receiver no-op.
	Check *check.Checker
	// Flows, when non-nil, arms the flowseq event-sequence analyzer: the
	// monitor feeds it wire records, the browser's HTTP/2 connection feeds
	// it frames, and the browser annotates streams with object IDs and
	// request kinds. Finalized features land on TrialResult.Features and —
	// via PublishTrialMetrics — in the flow_* metric families. Nil disables
	// at zero cost (every hook is a nil-receiver no-op).
	Flows *flowseq.Analyzer
	// Metrics, when non-nil, receives the trial's aggregate metrics: the
	// adversary's live intervention counters and phase state, and the
	// per-trial outcome counters/histograms published at collection (GETs,
	// retransmissions, drops, resets, clean-slate success, phase and page
	// load durations). Sweeps point many trials at one registry; a debug
	// server scraping it sees the sweep advance live. Nil disables at zero
	// cost — the unarmed instruments are nil no-ops.
	Metrics *obs.Registry
	// Perf, when non-nil, attributes the trial's host-side cost to stages:
	// testbed construction, scheduler run, capture finalize, check finalize
	// and metrics publication each book wall time and allocation deltas
	// into the worker's collector. Host-clock only — it never touches the
	// simulation, so results and traces stay byte-identical. Nil disables
	// at zero cost (every span on a nil worker is a no-op). The handle is
	// worker-scoped, not shared: sweeps hand each worker goroutine its own.
	Perf *perf.Worker
	// Ctx, when non-nil, arms cooperative cancellation: the scheduler polls
	// the context every few thousand fired events and stops stepping once
	// it is done, and RunTrial returns ctx.Err() instead of a result. The
	// sweep engine threads Options.Ctx here so a SIGINT drains mid-trial.
	// An unfired context is observationally invisible — no events, no RNG
	// draws, byte-identical output.
	Ctx context.Context
	// StepBudget, when >0, arms the deterministic per-trial watchdog: the
	// scheduler panics with *simtime.BudgetError once the trial has fired
	// this many events, so a wedged simulation (a self-rescheduling timer
	// loop that never quiesces) dies loudly instead of hanging a sweep
	// worker. The budget counts virtual events, so it trips at the same
	// point for the same seed on any host. The supervised sweep engine
	// recovers the panic into a structured timeout failure; standalone
	// RunTrial callers see the panic. Normal trials fire well under a
	// million events, so generous budgets are invisible.
	StepBudget uint64
	// WallDeadline, when >0, arms the wall-clock watchdog backstop: the
	// scheduler panics with *simtime.DeadlineError once this much host
	// time has elapsed. Nondeterministic by nature (trials it kills are
	// not byte-reproducible across hosts) — prefer StepBudget; use this
	// against pathological-but-finite event storms that grind for minutes.
	WallDeadline time.Duration
	// Chaos deterministically sabotages the trial so the sweep supervisor
	// itself can be tested: ChaosPanic panics as the run starts, ChaosHang
	// schedules a self-rescheduling timer loop that never quiesces (caught
	// by StepBudget or WallDeadline). ChaosNone (the default) is inert.
	Chaos ChaosMode
	// DeferMetrics suppresses the at-collection publication of the trial's
	// outcome metrics (PublishTrialMetrics); the caller publishes the
	// returned TrialResult itself. The parallel sweep engine uses this to
	// publish results in trial-index order, so a registry snapshot is
	// byte-identical whether trials ran sequentially or across a worker
	// pool (histogram sums are order-sensitive float additions; gauges are
	// last-writer-wins). Live counters — the adversary's intervention
	// counts — still stream into Metrics during the trial; those are
	// integer atomics whose totals are order-independent.
	DeferMetrics bool
}

// Testbed is an assembled, un-run trial. Most callers use RunTrial; the
// defense experiments assemble a Testbed to poke at components first.
type Testbed struct {
	Sched      *simtime.Scheduler
	Path       *netsim.Path
	Pair       *tcpsim.Pair
	Site       *website.Site
	Plan       *website.Plan
	Server     *endpoint.Server
	Browser    *endpoint.Browser
	Monitor    *capture.Monitor
	Controller *adversary.Controller
	Driver     *adversary.Driver
	Injector   *netsim.Injector
	Tracer     *trace.Tracer
	cfg        TrialConfig
}

// NewTestbed assembles all components for a trial without starting it.
func NewTestbed(cfg TrialConfig) (*Testbed, error) {
	if cfg.Link.BandwidthBps == 0 {
		cfg.Link = DefaultLink()
	}
	if cfg.Duration == 0 {
		cfg.Duration = 120 * time.Second
	}
	if cfg.Pool != nil && cfg.TCP.Pool == nil {
		cfg.TCP.Pool = cfg.Pool
	}
	sched := simtime.NewScheduler()
	// Watchdogs and cancellation arm before any component schedules: all
	// three are pure scheduler-side guards that consume no RNG draws and
	// schedule no events, so an armed-but-untripped trial stays
	// byte-identical to an unsupervised one.
	if cfg.StepBudget > 0 {
		sched.SetStepBudget(cfg.StepBudget)
	}
	if cfg.WallDeadline > 0 {
		sched.SetWallDeadline(cfg.WallDeadline)
	}
	if ctx := cfg.Ctx; ctx != nil {
		sched.SetInterrupt(func() bool { return ctx.Err() != nil })
	}
	rng := simtime.NewRand(cfg.Seed)
	tb := &Testbed{Sched: sched, Site: website.ISideWith(), Tracer: cfg.Trace, cfg: cfg}
	if cfg.Trace.Enabled() {
		// The tracer was built before the trial's clock existed; stamp its
		// events from this trial's virtual time.
		cfg.Trace.SetClock(sched)
		// Fan the tracer out to every config-carried layer; components
		// that predate the config fields get it via SetTracer below.
		cfg.TCP.Tracer = cfg.Trace
		cfg.Server.Tracer = cfg.Trace
		cfg.Server.H2.Tracer = cfg.Trace
		cfg.Browser.Tracer = cfg.Trace
		cfg.Browser.H2.Tracer = cfg.Trace
	}
	if cfg.Check.Enabled() {
		// Same fan-out as the tracer: clock from this trial's scheduler,
		// then every config-carried layer; SetChecker below covers the rest.
		cfg.Check.SetClock(sched.Now)
		sched.SetStepHook(cfg.Check.SchedulerStep)
		cfg.TCP.Check = cfg.Check
		cfg.Server.H2.Check = cfg.Check
		cfg.Browser.H2.Check = cfg.Check
	}
	if cfg.Flows.Enabled() {
		// Clock from this trial's scheduler, flow ID from the synthesized
		// pcap 5-tuple (the shared join key with the exported capture and
		// Chrome-trace metadata). Only the browser's connection feeds frames
		// — wiring both endpoints would double-count every frame.
		cfg.Flows.SetClock(sched)
		cfg.Flows.SetFlow(capture.FlowID())
		cfg.Browser.H2.Flows = cfg.Flows
		cfg.Browser.Flows = cfg.Flows
	}
	if cfg.Trace.Enabled() {
		// Stamp the trace with the same flow identifier the pcap export and
		// the flowseq feature rows carry, so all three views of one
		// connection join on it.
		cfg.Trace.SetMeta("flow", capture.FlowID())
	}

	var err error
	tb.Path, err = netsim.NewPath(sched, rng.Fork(), netsim.PathConfig{Link: cfg.Link, Tracer: cfg.Trace, Check: cfg.Check})
	if err != nil {
		return nil, fmt.Errorf("core: path: %w", err)
	}
	// The monitor taps the path; the controller installs its processor.
	// Taps observe at middlebox ingress, before the adversary's own
	// delays, so the adversary never confuses itself.
	tb.Monitor = capture.NewMonitor()
	tb.Path.AddTap(tb.Monitor)
	tb.Controller = adversary.NewController(sched, rng.Fork(), tb.Path)
	if cfg.Trace.Enabled() {
		tb.Monitor.SetTracer(cfg.Trace)
		tb.Controller.SetTracer(cfg.Trace)
	}
	if cfg.Check.Enabled() {
		tb.Monitor.SetChecker(cfg.Check)
	}
	if cfg.Flows.Enabled() {
		tb.Monitor.SetFlows(cfg.Flows)
	}
	if cfg.Metrics != nil {
		tb.Controller.SetMetrics(cfg.Metrics)
	}
	if cfg.CrossTrafficBps > 0 {
		ct := netsim.NewCrossTraffic(sched, rng.Fork(), tb.Path, cfg.CrossTrafficBps, 0)
		sched.At(0, ct.Start)
		// The page load and attack finish well inside 40 s; stopping the
		// generator lets the trial quiesce instead of simulating hours
		// of idle background packets.
		sched.At(40*time.Second, ct.Stop)
	}

	tb.Pair, err = tcpsim.NewPair(sched, rng.Fork(), tb.Path, cfg.TCP)
	if err != nil {
		return nil, fmt.Errorf("core: tcp: %w", err)
	}
	perm := cfg.Perm
	if perm == nil {
		perm = website.RandomPerm(rng.Fork())
	}
	if cfg.ShuffledEmblemOrder {
		tb.Plan, err = tb.Site.PlanForShuffled(perm, rng.Fork())
	} else {
		tb.Plan, err = tb.Site.PlanFor(perm)
	}
	if err != nil {
		return nil, fmt.Errorf("core: plan: %w", err)
	}
	if cfg.ServerPush {
		cfg.Server.PushEmblems = true
		cfg.Browser.AcceptPush = true
	}
	tb.Server, err = endpoint.NewServer(sched, rng.Fork(), tb.Pair.Server, tb.Site, cfg.Server)
	if err != nil {
		return nil, fmt.Errorf("core: server: %w", err)
	}
	tb.Browser, err = endpoint.NewBrowser(sched, rng.Fork(), tb.Pair.Client, tb.Site, tb.Plan, cfg.Browser)
	if err != nil {
		return nil, fmt.Errorf("core: browser: %w", err)
	}

	if cfg.Attack != nil {
		tb.Driver, err = adversary.NewDriver(sched, tb.Controller, tb.Monitor, *cfg.Attack)
		if err != nil {
			return nil, fmt.Errorf("core: attack plan: %w", err)
		}
		if cfg.Metrics != nil {
			tb.Driver.SetMetrics(cfg.Metrics)
		}
	} else {
		// Single-knob studies.
		if cfg.RequestSpacing > 0 {
			tb.Controller.SetRequestSpacing(cfg.RequestSpacing)
		}
		if cfg.RandomJitter > 0 {
			tb.Controller.SetRandomJitter(netsim.ClientToServer, cfg.RandomJitter)
			tb.Controller.SetRandomJitter(netsim.ServerToClient, cfg.RandomJitter)
		}
		if cfg.ThrottleBps > 0 {
			tb.Controller.Throttle(cfg.ThrottleBps)
		}
		if cfg.DropRate > 0 && cfg.DropDuration > 0 {
			sched.At(cfg.DropFrom, func() {
				tb.Controller.DropServerData(cfg.DropRate, cfg.DropRate, cfg.DropDuration)
			})
		}
	}

	// Fault injection arms last: its RNG fork is taken only when a
	// scenario is named, so un-faulted trials consume the exact seed
	// streams they always did.
	if cfg.Scenario != "" {
		sc, ok := netsim.LookupScenario(cfg.Scenario)
		if !ok {
			return nil, fmt.Errorf("core: unknown fault scenario %q (have %v)", cfg.Scenario, netsim.ScenarioNames())
		}
		inj := netsim.NewInjector(sched, rng.Fork(), tb.Path)
		inj.SetWiper(tb.Controller)
		if cfg.Trace.Enabled() {
			inj.SetTracer(cfg.Trace)
		}
		if cfg.Metrics != nil {
			inj.SetMetrics(cfg.Metrics)
		}
		sc.Arm(inj)
		tb.Injector = inj
	}
	// Chaos-hang injection arms last so it perturbs nothing before the
	// trial is fully assembled (the trial is sacrificial either way).
	if cfg.Chaos == ChaosHang {
		armChaosHang(sched)
	}
	return tb, nil
}

// Run starts both endpoints and executes the trial to quiescence or the
// configured duration, returning the collected result.
func (tb *Testbed) Run() *TrialResult {
	if tb.cfg.Chaos == ChaosPanic {
		panic(chaosPanicValue(tb.cfg.Seed))
	}
	sp := tb.cfg.Perf.Start(perf.StageRun)
	tb.Server.Start()
	tb.Browser.Start()
	tb.Sched.RunUntil(tb.cfg.Duration)
	sp.Stop()
	if tb.Sched.Interrupted() {
		// Cooperatively cancelled mid-run: the simulation stopped between
		// events, so capture parsing and the checker's end-of-trial
		// conservation invariants would all fire on half-flight state.
		// Return no result; RunTrial surfaces ctx.Err() instead.
		return nil
	}
	return tb.collect()
}

// RunTrial assembles and runs one trial. With TrialConfig.Ctx armed and
// cancelled — before the build or mid-run via the scheduler's cooperative
// interrupt — it returns ctx.Err() instead of a half-computed result, so
// a draining sweep never publishes partial trials.
func RunTrial(cfg TrialConfig) (*TrialResult, error) {
	if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
		return nil, cfg.Ctx.Err()
	}
	if cfg.Fleet != nil {
		return runFleetTrial(cfg)
	}
	sp := cfg.Perf.Start(perf.StageBuild)
	tb, err := NewTestbed(cfg)
	sp.Stop()
	if err != nil {
		return nil, err
	}
	res := tb.Run()
	if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
		return nil, cfg.Ctx.Err()
	}
	return res, nil
}

// TrialResult is everything a trial yields.
type TrialResult struct {
	// Perm is the user's true preference permutation.
	Perm []int
	// TrueSeq is the emblem request order (what traffic analysis can
	// reconstruct at best).
	TrueSeq []string
	// DisplaySeq is the displayed ranking — the secret the attack is
	// after. Equal to TrueSeq unless the §VII defense shuffles requests.
	DisplaySeq []string
	// InferredSeq is the adversary's reconstruction from the traffic.
	InferredSeq []string
	// DoM is the ground-truth degree of multiplexing per instance.
	DoM map[string]float64
	// BestDoM is the per-object minimum across instances.
	BestDoM map[string]float64
	// BestCompleteDoM restricts the minimum to complete servings — the
	// success criterion uses it (a partial fragment cannot leak a size).
	BestCompleteDoM map[string]float64
	// Bursts are the predictor's segmented server→client bursts.
	Bursts []predict.Burst
	// Identified is the set of object ids the predictor matched.
	Identified map[string]bool
	// Completed maps object id → completion time at the browser.
	Completed map[string]time.Duration
	// Broken reports a dead page load; BrokenReason explains it.
	Broken       bool
	BrokenReason string
	// Resets and AppRetries are the browser's §IV-D/§IV-B behaviours.
	Resets     int
	AppRetries int
	// MonitorRetransmits counts retransmitted segments seen on path.
	MonitorRetransmits int
	// RetransC2S / RetransS2C split retransmissions by direction: the
	// client→server count is the paper's §IV-B "retransmission requests";
	// the server→client count dominates Fig. 5's bandwidth study.
	RetransC2S int
	RetransS2C int
	// GETs is the monitor's GET count.
	GETs int
	// ServerTasks counts stream-serving tasks (duplicates included).
	ServerTasks int
	// Attacked reports whether the full staged adversary was armed;
	// PhaseSpans then carries its per-phase virtual-time durations and
	// FinalPhase its phase at collection. Keeping these on the result lets
	// PublishTrialMetrics run after the testbed is gone — the sweep engine
	// publishes completed trials in index order, decoupled from the worker
	// that ran them.
	Attacked   bool
	PhaseSpans []adversary.PhaseSpan
	FinalPhase adversary.Phase
	// Outcome is the driver's terminal classification of an attacked
	// trial (clean-slate, retry-clean-slate, degraded, broken);
	// AttackAttempts counts drop windows opened. Both are zero for
	// un-attacked trials.
	Outcome        adversary.Outcome
	AttackAttempts int
	// FaultLog holds the injected fault transitions when a Scenario was
	// armed, in virtual-time order.
	FaultLog []netsim.FaultTransition
	// CheckViolations is the trial's invariant-violation count when
	// TrialConfig.Check was armed (including end-of-trial conservation
	// checks); zero otherwise.
	CheckViolations int
	// Features carries the flowseq analyzer's finalized per-stream
	// timelines, burst tables and clean-slate spans when TrialConfig.Flows
	// was armed; nil otherwise.
	Features *flowseq.FlowFeatures
	// Fleet carries the shared-bottleneck topology's per-trial outcome —
	// target selection, budget accounting, decoy page-load fates and the
	// aggregate link stats — when TrialConfig.Fleet was armed; nil
	// otherwise.
	Fleet *FleetOutcome
	// Quarantined marks a placeholder result the sweep supervision layer
	// slotted in for a trial that failed permanently (panic or watchdog
	// timeout after its retries). Placeholders read as broken loads in the
	// reports but are skipped by the metrics publisher; the structured
	// failure lives in the sweep's quarantine record. See
	// QuarantinedResult.
	Quarantined bool
}

func (tb *Testbed) collect() *TrialResult {
	res := tb.collectCapture()
	if ck := tb.cfg.Check; ck.Enabled() {
		csp := tb.cfg.Perf.Start(perf.StageCheck)
		// Hand the checker each link's final stats for drift detection, then
		// run the end-of-trial conservation checks and flush the report.
		for _, dir := range []netsim.Direction{netsim.ClientToServer, netsim.ServerToClient} {
			d := uint8(check.DirC2S)
			if dir == netsim.ServerToClient {
				d = check.DirS2C
			}
			st := tb.Path.Link(dir).Stats()
			ck.LinkStatsFinal(d, st.Sent, st.Delivered, st.Duplicated,
				st.DroppedLoss, st.DroppedPolicy, st.DroppedQueue, st.DroppedFault,
				st.BytesDelivered)
		}
		res.CheckViolations = ck.Finalize()
		csp.Stop()
	}
	if !tb.cfg.DeferMetrics {
		psp := tb.cfg.Perf.Start(perf.StagePublish)
		PublishTrialMetrics(tb.cfg.Metrics, res)
		psp.Stop()
	}
	return res
}

// collectCapture runs the capture half of collection — monitor reads, DoM
// metrics, burst segmentation, prediction and feature finalization — and
// leaves the checker/publish epilogues to the caller. The point-to-point
// collect() runs them against the single path; the fleet trial runs them
// against per-flow sums plus the shared bottleneck's aggregate stats.
func (tb *Testbed) collectCapture() *TrialResult {
	sp := tb.cfg.Perf.Start(perf.StageCapture)
	res := &TrialResult{
		Perm:               append([]int(nil), tb.Plan.Perm...),
		TrueSeq:            tb.Plan.EmblemRequestOrder(),
		DisplaySeq:         tb.Plan.EmblemDisplayOrder(),
		DoM:                metrics.DegreeOfMultiplexing(tb.Server.TxLog()),
		BestDoM:            metrics.BestDoMPerObject(tb.Server.TxLog()),
		BestCompleteDoM:    metrics.BestCompleteDoMPerObject(tb.Server.TxLog(), tb.Site.Sizes()),
		Completed:          tb.Browser.Result().Completed,
		Broken:             tb.Browser.Result().Broken,
		BrokenReason:       tb.Browser.Result().BrokenReason,
		Resets:             tb.Browser.Result().Resets,
		AppRetries:         tb.Browser.Result().AppRetries,
		MonitorRetransmits: tb.Monitor.TotalRetransmits(),
		RetransC2S:         tb.Monitor.Stats(netsim.ClientToServer).Retransmits,
		RetransS2C:         tb.Monitor.Stats(netsim.ServerToClient).Retransmits,
		GETs:               tb.Monitor.GETCount(),
		ServerTasks:        tb.Server.TasksServed(),
	}
	analyzer := predict.NewAnalyzer(tb.Site.SizeToIdentity(), tb.cfg.Predict)
	res.Bursts = analyzer.Bursts(tb.Monitor.Records())
	res.Identified = analyzer.MatchedObjects(res.Bursts)
	res.InferredSeq = analyzer.InferSequence(res.Bursts, res.TrueSeq)
	if tb.Driver != nil {
		res.Attacked = true
		res.PhaseSpans = tb.Driver.PhaseSpans(tb.Sched.Now())
		res.FinalPhase = tb.Driver.Phase()
		res.Outcome = tb.Driver.FinalOutcome(res.Broken)
		res.AttackAttempts = tb.Driver.Attempts()
		if tb.Tracer.Enabled() {
			tb.Tracer.Emit(trace.LayerAdversary, "outcome",
				trace.Str("outcome", res.Outcome.String()),
				trace.Num("attempts", int64(res.AttackAttempts)))
		}
	}
	if tb.Injector != nil {
		res.FaultLog = tb.Injector.Log()
	}
	if tb.cfg.Flows.Enabled() {
		res.Features = tb.cfg.Flows.Finalize()
	}
	sp.Stop()
	return res
}

// PublishTrialMetrics records a completed trial's outcome into the armed
// registry — the aggregate signals the paper's evaluation is built from,
// one update per trial. Every value is derived from virtual time or event
// counts, so same-seed sweeps produce identical registry snapshots (the
// manifest's byte-identity contract); nothing here reads the wall clock.
// It runs at collection unless TrialConfig.DeferMetrics asked the caller
// to publish — the parallel sweep engine does so in trial-index order,
// because histogram sums are float additions (order-sensitive in the last
// bits) and the phase gauge is last-writer-wins. Nil registry or result
// is a no-op.
func PublishTrialMetrics(reg *obs.Registry, res *TrialResult) {
	(&TrialPublisher{reg: reg}).Publish(res)
}

// TrialPublisher publishes trial outcomes into one registry, caching the
// resolved instrument handles so a sweep's publication drain pays the
// name-lookup cost once instead of once per trial. Families that only
// exist conditionally (broken trials, completed page loads, attacked
// trials) are resolved on first use, preserving the registry-snapshot
// byte-identity of the uncached path: a family a sweep never needed never
// appears in the export. The zero value with a nil registry is a no-op.
type TrialPublisher struct {
	reg *obs.Registry

	trials, gets, resets, dupGets, serverTasks *obs.Counter
	retransC2S, retransS2C                     *obs.Counter
	broken                                     *obs.Counter   // lazy: only broken trials create it
	pageLoad                                   *obs.Histogram // lazy: only completed loads create it

	attackTrials *obs.Counter // lazy block: only attacked trials create these
	cleanSlate   *obs.Counter
	phaseVec     *obs.HistogramVec
	outcomeVec   *obs.CounterVec
	phaseGauge   *obs.Gauge
}

// NewTrialPublisher returns a publisher bound to reg (nil → no-op).
func NewTrialPublisher(reg *obs.Registry) *TrialPublisher {
	return &TrialPublisher{reg: reg}
}

// Publish records one completed trial. See PublishTrialMetrics for the
// ordering contract; callers publishing a parallel sweep must invoke it in
// trial-index order.
func (p *TrialPublisher) Publish(res *TrialResult) {
	if p == nil || p.reg == nil || res == nil {
		return
	}
	if res.Quarantined {
		// Placeholder for a quarantined trial: publishing it would book a
		// phantom broken page load. The sweep's supervision counters
		// (sweep_trials_quarantined and friends) account for it instead.
		return
	}
	reg := p.reg
	flowseq.PublishFeatures(reg, res.Features)
	if p.trials == nil {
		p.trials = reg.Counter("h2privacy_trials_total", "Page-load trials completed.")
		p.gets = reg.Counter("h2privacy_monitor_gets_total", "GET requests classified at the gateway monitor.")
		retrans := reg.CounterVec("h2privacy_tcp_retransmits_observed_total",
			"Retransmitted TCP segments observed at the gateway, by direction.", "dir")
		p.retransC2S = retrans.With("c2s")
		p.retransS2C = retrans.With("s2c")
		p.resets = reg.Counter("h2privacy_browser_resets_total", "Browser stall-triggered stream-reset cycles.")
		p.dupGets = reg.Counter("h2privacy_browser_duplicate_gets_total", "Browser duplicate (retried) GET requests.")
		p.serverTasks = reg.Counter("h2privacy_server_tasks_total", "Stream-serving tasks executed by the server (duplicates included).")
	}
	p.trials.Inc()
	if res.Broken {
		if p.broken == nil {
			p.broken = reg.Counter("h2privacy_trials_broken_total", "Trials whose page load broke.")
		}
		p.broken.Inc()
	}
	p.gets.Add(int64(res.GETs))
	p.retransC2S.Add(int64(res.RetransC2S))
	p.retransS2C.Add(int64(res.RetransS2C))
	p.resets.Add(int64(res.Resets))
	p.dupGets.Add(int64(res.AppRetries))
	p.serverTasks.Add(int64(res.ServerTasks))

	// Page-load completion time: the last object's virtual completion.
	var last time.Duration
	for _, at := range res.Completed {
		if at > last {
			last = at
		}
	}
	if last > 0 {
		if p.pageLoad == nil {
			p.pageLoad = reg.Histogram("h2privacy_page_load_seconds",
				"Virtual time from trial start to the last completed object.",
				obs.DurationBuckets)
		}
		p.pageLoad.Observe(last.Seconds())
	}

	if !res.Attacked {
		return
	}
	// Staged-attack trials additionally record the clean-slate outcome —
	// did the reset cycle leave the quiz HTML serialized and identified —
	// and how long each phase of the attack ran in virtual time.
	if p.attackTrials == nil {
		p.attackTrials = reg.Counter("h2privacy_attack_trials_total", "Trials run with the full staged adversary.")
		p.phaseVec = reg.HistogramVec("h2privacy_adversary_phase_seconds",
			"Virtual-time duration of each attack phase.", obs.DurationBuckets, "phase")
		p.outcomeVec = reg.CounterVec("h2privacy_attack_outcome_total",
			"Attack trials by terminal outcome classification.", "outcome")
		p.phaseGauge = reg.Gauge("h2privacy_adversary_phase", adversary.PhaseGaugeHelp())
	}
	p.attackTrials.Inc()
	if res.ObjectSuccess(website.TargetID) {
		// Lazy like the broken counter: the success family only exists in
		// an export if some attacked trial actually succeeded.
		if p.cleanSlate == nil {
			p.cleanSlate = reg.Counter("h2privacy_attack_clean_slate_success_total",
				"Attack trials where the target transmitted serialized after the reset and was identified.")
		}
		p.cleanSlate.Inc()
	}
	for _, span := range res.PhaseSpans {
		p.phaseVec.With(span.Phase.String()).Observe(span.Duration.Seconds())
	}
	// Every attacked trial ends in exactly one classified outcome.
	p.outcomeVec.With(res.Outcome.String()).Inc()
	// Deterministically re-stamp the live phase gauge the driver maintains:
	// under a worker pool its last live Set is whichever trial finished
	// last, so the deferred in-order publication pins the final snapshot to
	// trial n-1's terminal phase — the same value a sequential run leaves.
	p.phaseGauge.Set(float64(res.FinalPhase))
}

// ObjectSuccess reports the paper's success criterion for one object: its
// degree of multiplexing was driven to zero (some serving transmitted
// serialized) AND the predictor identified it from the encrypted traffic.
func (r *TrialResult) ObjectSuccess(objectID string) bool {
	dom, ok := r.BestCompleteDoM[objectID]
	return ok && dom == 0 && r.Identified[objectID]
}

// SequenceRankCorrect reports whether the adversary's inferred emblem at
// the given rank matches the displayed ranking (Table II's all-objects
// mode). Under the §VII defense the request order no longer matches the
// display order, so this is what collapses.
func (r *TrialResult) SequenceRankCorrect(rank int) bool {
	if rank >= len(r.DisplaySeq) || rank >= len(r.InferredSeq) {
		return false
	}
	return r.InferredSeq[rank] == r.DisplaySeq[rank]
}
