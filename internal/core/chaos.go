package core

import (
	"fmt"
	"time"

	"h2privacy/internal/simtime"
)

// ChaosMode deterministically sabotages a trial (TrialConfig.Chaos) so
// the sweep supervision layer — panic isolation, watchdogs, retry and
// quarantine — can be exercised on demand instead of waiting for a real
// bug. Chaos is injected at fixed, seed-independent points so a
// quarantined trial's repro command replays the exact same failure
// standalone.
type ChaosMode uint8

const (
	// ChaosNone is the inert default.
	ChaosNone ChaosMode = iota
	// ChaosPanic panics as the trial's run starts, after the testbed is
	// assembled — the "bad code path" failure class.
	ChaosPanic
	// ChaosHang schedules a self-rescheduling no-op timer loop that never
	// quiesces — the "wedged simulation" failure class. A StepBudget or
	// WallDeadline converts it into a loud watchdog error; without either
	// the trial grinds through ~1e8 events before the duration cap.
	ChaosHang
)

// String names the mode as the -chaos flag spells it.
func (m ChaosMode) String() string {
	switch m {
	case ChaosNone:
		return "none"
	case ChaosPanic:
		return "panic"
	case ChaosHang:
		return "hang"
	}
	return fmt.Sprintf("ChaosMode(%d)", uint8(m))
}

// ParseChaosMode resolves a -chaos mode name.
func ParseChaosMode(s string) (ChaosMode, error) {
	switch s {
	case "", "none":
		return ChaosNone, nil
	case "panic":
		return ChaosPanic, nil
	case "hang":
		return ChaosHang, nil
	}
	return ChaosNone, fmt.Errorf("core: unknown chaos mode %q (want panic or hang)", s)
}

// chaosPanicValue is what a ChaosPanic trial panics with; the supervisor
// reports it verbatim so quarantine records are self-describing.
func chaosPanicValue(seed int64) string {
	return fmt.Sprintf("core: chaos-injected panic (seed %d)", seed)
}

// armChaosHang installs the self-rescheduling spin loop on the trial's
// scheduler. It consumes no RNG draws; the extra events make the trial
// diverge, but a chaos trial is sacrificial by definition.
func armChaosHang(sched *simtime.Scheduler) {
	var spin func()
	spin = func() { sched.After(time.Microsecond, spin) }
	sched.At(0, spin)
}

// QuarantinedResult builds the placeholder TrialResult the sweep engine
// slots in for a trial that failed permanently and was quarantined: it
// keeps index-aligned aggregation loops total, reads as a broken load to
// every report (nil maps degrade to zero/false lookups), and is skipped
// by the metrics publisher — the sweep_* supervision families account for
// it instead. The structured failure detail lives in the quarantine
// record, not here.
func QuarantinedResult(seed int64, reason string) *TrialResult {
	return &TrialResult{
		Quarantined:  true,
		Broken:       true,
		BrokenReason: fmt.Sprintf("quarantined (seed %d): %s", seed, reason),
	}
}
