package core

import (
	"reflect"
	"testing"
	"time"

	"h2privacy/internal/adversary"
	"h2privacy/internal/check"
)

// TestFleetN1Identity pins the degenerate-fleet contract: a one-flow fleet
// with budget — mirrored bottleneck, attack armed at construction — is
// deep-equal to the standalone attacked trial at the same seed, field for
// field. This is what lets the fleet table's N=1 row stand in for the
// single-pair robustness numbers.
func TestFleetN1Identity(t *testing.T) {
	plan := adversary.DefaultPlan()
	for _, seed := range []int64{42, 4242, 7} {
		base := TrialConfig{Seed: seed, Attack: &plan}
		a, err := RunTrial(base)
		if err != nil {
			t.Fatal(err)
		}
		fcfg := base
		fcfg.Fleet = &FleetConfig{N: 1, Budget: 1}
		b, err := RunTrial(fcfg)
		if err != nil {
			t.Fatal(err)
		}
		if b.Fleet == nil {
			t.Fatalf("seed %d: fleet trial missing FleetOutcome", seed)
		}
		if !b.Fleet.TargetSelected || b.Fleet.BudgetPeak != 1 {
			t.Errorf("seed %d: N=1 fleet selected=%v peak=%d, want target armed inline",
				seed, b.Fleet.Selected, b.Fleet.BudgetPeak)
		}
		b.Fleet = nil
		if !reflect.DeepEqual(a, b) {
			t.Errorf("seed %d: fleet N=1 differs from standalone: standalone outcome=%v fleet outcome=%v",
				seed, a.Outcome, b.Outcome)
		}
	}
}

// TestFleetN1IdentityChecked repeats the N=1 identity with every invariant
// checker armed: the fleet's aggregate-conservation epilogue must add no
// violations and must not perturb the violation count the standalone
// epilogue reports.
func TestFleetN1IdentityChecked(t *testing.T) {
	plan := adversary.DefaultPlan()
	rec := check.NewRecorder()
	a, err := RunTrial(TrialConfig{Seed: 42, Attack: &plan, Check: check.New(42, 0, rec)})
	if err != nil {
		t.Fatal(err)
	}
	recF := check.NewRecorder()
	b, err := RunTrial(TrialConfig{Seed: 42, Attack: &plan, Check: check.New(42, 0, recF),
		Fleet: &FleetConfig{N: 1, Budget: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if a.CheckViolations != 0 || b.CheckViolations != 0 {
		t.Errorf("violations: standalone=%d fleet=%d\n%s%s",
			a.CheckViolations, b.CheckViolations, rec.Report(), recF.Report())
	}
	b.Fleet = nil
	if !reflect.DeepEqual(a, b) {
		t.Error("checked fleet N=1 differs from checked standalone")
	}
}

// TestFleetTargetSelection plants the paper's target page among 99 decoy
// page loads behind one bottleneck and verifies the adversary's
// capture-feature selector finds it — the fleet analogue of the §V attack
// premise that the middlebox can pick its victim out of the crowd.
func TestFleetTargetSelection(t *testing.T) {
	plan := adversary.DefaultPlan()
	plan.Adaptive = true
	res, err := RunTrial(TrialConfig{Seed: 4242, Attack: &plan,
		Fleet: &FleetConfig{N: 100, Budget: 1}})
	if err != nil {
		t.Fatal(err)
	}
	fo := res.Fleet
	if !fo.TargetSelected || len(fo.Selected) != 1 || fo.Selected[0] != 0 {
		t.Fatalf("selector picked %v out of N=100, want exactly the planted target [0]", fo.Selected)
	}
	if fo.BudgetPeak != 1 {
		t.Errorf("budget peak %d, want 1", fo.BudgetPeak)
	}
	if res.Outcome != adversary.OutcomeCleanSlate && res.Outcome != adversary.OutcomeRetryCleanSlate {
		t.Errorf("attack on selected target ended %v, want clean slate", res.Outcome)
	}
	if len(fo.Decoys) != 99 {
		t.Fatalf("decoy outcomes: %d, want 99", len(fo.Decoys))
	}
	for _, d := range fo.Decoys {
		if d.Targeted {
			t.Errorf("decoy %s marked targeted; budget 1 went to the planted target", d.Flow)
		}
		if d.Completed == 0 {
			t.Errorf("decoy %s completed nothing", d.Flow)
		}
	}
}

// TestFleetBudgetZero is the negative arm: with K=0 the adversary observes
// but never touches a flow, so interventions are exactly zero, nothing is
// selected, and pairing the trial against itself yields all-zero
// collateral stats.
func TestFleetBudgetZero(t *testing.T) {
	plan := adversary.DefaultPlan()
	cfg := TrialConfig{Seed: 4242, Attack: &plan, Fleet: &FleetConfig{N: 50, Budget: 0}}
	a, err := RunTrial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fo := a.Fleet
	if fo.Interventions != 0 || fo.BudgetPeak != 0 || len(fo.Selected) != 0 {
		t.Errorf("budget 0 trial intervened: interventions=%d peak=%d selected=%v",
			fo.Interventions, fo.BudgetPeak, fo.Selected)
	}
	for _, d := range fo.Decoys {
		if d.Targeted || d.Broken || d.Resets != 0 {
			t.Errorf("budget 0 decoy %s: targeted=%v broken=%v resets=%d",
				d.Flow, d.Targeted, d.Broken, d.Resets)
		}
	}
	cs := FleetCollateral(a, b)
	if cs != (CollateralStats{Decoys: len(fo.Decoys)}) {
		t.Errorf("budget 0 self-collateral not zero: %+v", cs)
	}
}

// TestFleetDeterminism reruns an attacked fleet trial and requires the
// full result — selection, outcomes, aggregate stats, every decoy — to be
// deep-equal: the shared bottleneck and the selection loop draw nothing
// from RNG and schedule deterministically.
func TestFleetDeterminism(t *testing.T) {
	plan := adversary.DefaultPlan()
	plan.Adaptive = true
	cfg := TrialConfig{Seed: 99, Attack: &plan, Fleet: &FleetConfig{N: 25, Budget: 2}}
	a, err := RunTrial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("fleet trial is not deterministic across reruns")
	}
}

// TestFleetBudgetCap disables the arming floor so the first scan sees
// every flow qualify, and verifies the budget still caps concurrent
// interference at K.
func TestFleetBudgetCap(t *testing.T) {
	plan := adversary.DefaultPlan()
	res, err := RunTrial(TrialConfig{Seed: 11, Attack: &plan,
		Fleet: &FleetConfig{N: 20, Budget: 3, MinScore: -1}})
	if err != nil {
		t.Fatal(err)
	}
	fo := res.Fleet
	if len(fo.Selected) != 3 {
		t.Errorf("selected %v, want exactly 3 flows with the floor disabled", fo.Selected)
	}
	if fo.BudgetPeak > 3 {
		t.Errorf("budget peak %d exceeds K=3", fo.BudgetPeak)
	}
}

// TestFleetCheckedClean arms every invariant checker — including the
// aggregate-conservation and budget shadows — on a multi-flow attacked
// trial and requires zero violations.
func TestFleetCheckedClean(t *testing.T) {
	plan := adversary.DefaultPlan()
	plan.Adaptive = true
	rec := check.NewRecorder()
	res, err := RunTrial(TrialConfig{Seed: 4242, Attack: &plan, Check: check.New(4242, 0, rec),
		Fleet: &FleetConfig{N: 40, Budget: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckViolations != 0 {
		t.Errorf("%d violations on checked fleet trial:\n%s", res.CheckViolations, rec.Report())
	}
	if res.Fleet.BudgetPeak > 2 {
		t.Errorf("budget peak %d exceeds K=2", res.Fleet.BudgetPeak)
	}
}

// TestFleetDecoyStagger verifies decoy page loads actually start staggered:
// with a coarse stagger the later decoys must finish later than the first.
func TestFleetDecoyStagger(t *testing.T) {
	res, err := RunTrial(TrialConfig{Seed: 5,
		Fleet: &FleetConfig{N: 4, Budget: 0, Stagger: 50 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Fleet.Decoys
	if len(d) != 3 {
		t.Fatalf("want 3 decoys, got %d", len(d))
	}
	if !(d[2].LoadTime > d[0].LoadTime) {
		t.Errorf("staggered decoys out of order: first=%v last=%v", d[0].LoadTime, d[2].LoadTime)
	}
}
