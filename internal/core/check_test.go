package core

import (
	"testing"

	"h2privacy/internal/adversary"
	"h2privacy/internal/check"
)

// TestCheckArmedTrialShapesClean runs the representative trial shapes with
// every invariant checker armed; working code must produce zero violations.
func TestCheckArmedTrialShapesClean(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  TrialConfig
	}{
		{"plain", TrialConfig{Seed: 1}},
		{"attack", TrialConfig{Seed: 2, Attack: func() *adversary.AttackPlan { p := adversary.DefaultPlan(); return &p }()}},
		{"adaptive", func() TrialConfig {
			p := adversary.DefaultPlan()
			p.Adaptive = true
			return TrialConfig{Seed: 3, Attack: &p}
		}()},
		{"push", TrialConfig{Seed: 4, ServerPush: true}},
		{"drops", TrialConfig{Seed: 5, DropRate: 0.6, DropDuration: 3e9, DropFrom: 1e9}},
	} {
		rec := check.NewRecorder()
		tc.cfg.Check = check.New(tc.cfg.Seed, 0, rec)
		res, err := RunTrial(tc.cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.CheckViolations != 0 {
			t.Errorf("%s: %d violations:\n%s", tc.name, res.CheckViolations, rec.Report())
		}
	}
}
