package core

import (
	"fmt"
	"io"
	"sort"
	"time"

	"h2privacy/internal/endpoint"
	"h2privacy/internal/trace"
)

// TimelineEvent is one entry of a trial's merged event log.
type TimelineEvent struct {
	At    time.Duration
	Actor string // "adversary", "browser", "tcp", "monitor"
	What  string
}

// Timeline builds one chronological narrative of the trial — the view an
// analyst wants when replaying a single attack run. When the trial ran with
// tracing armed it is derived from the trace stream, which adds the TCP
// events (RTO fires, fast-recovery entry/exit, connection death) the legacy
// component logs never carried; otherwise it falls back to merging the
// attack driver's phase log and the browser's request log. The predictor's
// burst verdicts come from the result in both modes.
func (tb *Testbed) Timeline(res *TrialResult) []TimelineEvent {
	var evs []TimelineEvent
	add := func(at time.Duration, actor, what string) {
		evs = append(evs, TimelineEvent{At: at, Actor: actor, What: what})
	}
	brokenLogged := false
	if tb.Tracer.Enabled() {
		for _, ev := range tb.Tracer.Events() {
			if what, actor, ok := timelineEntry(ev); ok {
				add(ev.At, actor, what)
				if actor == "browser" && ev.Kind == "broken" {
					brokenLogged = true
				}
			}
		}
	} else {
		if tb.Driver != nil {
			for _, pc := range tb.Driver.PhaseLog {
				add(pc.Time, "adversary", "phase → "+pc.Phase.String())
			}
		}
		for _, req := range tb.Browser.Result().Requests {
			switch req.Kind {
			case endpoint.RequestInitial:
				add(req.Time, "browser", "GET "+req.ObjectID)
			case endpoint.RequestRetry:
				add(req.Time, "browser", "retry GET "+req.ObjectID+" (response stalled)")
			case endpoint.RequestReRequest:
				add(req.Time, "browser", "re-request "+req.ObjectID+" (after reset)")
			case endpoint.RequestPushed:
				add(req.Time, "browser", "adopted pushed "+req.ObjectID)
			}
		}
	}
	for _, b := range res.Bursts {
		if b.MatchID == "" {
			continue
		}
		add(b.End, "monitor", fmt.Sprintf("burst %d B → identified %s (±%d B)", b.EstSize, b.MatchID, b.MatchErr))
	}
	if res.Broken && !brokenLogged {
		// The browser result has no timestamp for breakage; anchor it at
		// the last observed event.
		var last time.Duration
		for _, e := range evs {
			if e.At > last {
				last = e.At
			}
		}
		add(last, "browser", "page load broken: "+res.BrokenReason)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// timelineEntry translates one trace event into a timeline line. Most of
// the stream (per-packet, per-frame, cwnd samples) is too fine-grained for
// a narrative and is skipped.
func timelineEntry(ev trace.Event) (what, actor string, ok bool) {
	attr := func(key string) (trace.Attr, bool) {
		for i := 0; i < ev.NAttr; i++ {
			if ev.Attrs[i].Key == key {
				return ev.Attrs[i], true
			}
		}
		return trace.Attr{}, false
	}
	str := func(key string) string { a, _ := attr(key); return a.Str }
	num := func(key string) int64 { a, _ := attr(key); return a.Num }
	dur := func(key string) time.Duration { a, _ := attr(key); return time.Duration(a.Num) }
	switch ev.Layer {
	case trace.LayerAdversary:
		switch ev.Kind {
		case "phase":
			return "phase → " + str("to"), "adversary", true
		case "throttle":
			return fmt.Sprintf("throttle to %.0f Mbps", float64(num("bps"))/1e6), "adversary", true
		case "drop-window":
			return fmt.Sprintf("drop window: %d%% (rtx %d%%) for %s",
				num("rate_pct"), num("rtx_rate_pct"), dur("duration")), "adversary", true
		}
	case trace.LayerBrowser:
		switch ev.Kind {
		case "request":
			obj := str("object")
			switch str("kind") {
			case "retry":
				return "retry GET " + obj + " (response stalled)", "browser", true
			case "re-request":
				return "re-request " + obj + " (after reset)", "browser", true
			case "pushed":
				return "adopted pushed " + obj, "browser", true
			default:
				return "GET " + obj, "browser", true
			}
		case "reset-cycle":
			return fmt.Sprintf("reset cycle %d (%d streams open)", num("cycle"), num("open")), "browser", true
		case "broken":
			return "page load broken: " + str("reason"), "browser", true
		}
	case trace.LayerTCP:
		switch ev.Kind {
		case "rto":
			return fmt.Sprintf("%s RTO fired (retry %d, rto %s, %d B in flight)",
				str("conn"), num("retries"), dur("rto"), num("flight")), "tcp", true
		case "recovery-enter":
			return fmt.Sprintf("%s enters fast recovery (cwnd %d, ssthresh %d)",
				str("conn"), num("cwnd"), num("ssthresh")), "tcp", true
		case "recovery-exit":
			return fmt.Sprintf("%s exits fast recovery (cwnd %d)", str("conn"), num("cwnd")), "tcp", true
		case "broken":
			return str("conn") + " connection failed: " + str("err"), "tcp", true
		}
	}
	return "", "", false
}

// RenderTimeline writes the merged event log as aligned text.
func RenderTimeline(w io.Writer, evs []TimelineEvent) {
	for _, e := range evs {
		fmt.Fprintf(w, "%12s  %-9s  %s\n", e.At.Round(time.Millisecond), e.Actor, e.What)
	}
	if len(evs) == 0 {
		fmt.Fprintln(w, "(no events)")
	}
}
