package core

import (
	"fmt"
	"io"
	"sort"
	"time"

	"h2privacy/internal/endpoint"
)

// TimelineEvent is one entry of a trial's merged event log.
type TimelineEvent struct {
	At    time.Duration
	Actor string // "adversary", "browser", "monitor"
	What  string
}

// Timeline merges the attack phases, the browser's request/reset log and
// the predictor's burst verdicts into one chronological narrative — the
// view an analyst wants when replaying a single attack run.
func (tb *Testbed) Timeline(res *TrialResult) []TimelineEvent {
	var evs []TimelineEvent
	add := func(at time.Duration, actor, what string) {
		evs = append(evs, TimelineEvent{At: at, Actor: actor, What: what})
	}
	if tb.Driver != nil {
		for _, pc := range tb.Driver.PhaseLog {
			add(pc.Time, "adversary", "phase → "+pc.Phase.String())
		}
	}
	for _, req := range tb.Browser.Result().Requests {
		switch req.Kind {
		case endpoint.RequestInitial:
			add(req.Time, "browser", "GET "+req.ObjectID)
		case endpoint.RequestRetry:
			add(req.Time, "browser", "retry GET "+req.ObjectID+" (response stalled)")
		case endpoint.RequestReRequest:
			add(req.Time, "browser", "re-request "+req.ObjectID+" (after reset)")
		case endpoint.RequestPushed:
			add(req.Time, "browser", "adopted pushed "+req.ObjectID)
		}
	}
	for _, b := range res.Bursts {
		if b.MatchID == "" {
			continue
		}
		add(b.End, "monitor", fmt.Sprintf("burst %d B → identified %s (±%d B)", b.EstSize, b.MatchID, b.MatchErr))
	}
	if res.Broken {
		// The browser result has no timestamp for breakage; anchor it at
		// the last observed event.
		var last time.Duration
		for _, e := range evs {
			if e.At > last {
				last = e.At
			}
		}
		add(last, "browser", "page load broken: "+res.BrokenReason)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// RenderTimeline writes the merged event log as aligned text.
func RenderTimeline(w io.Writer, evs []TimelineEvent) {
	for _, e := range evs {
		fmt.Fprintf(w, "%12s  %-9s  %s\n", e.At.Round(time.Millisecond), e.Actor, e.What)
	}
	if len(evs) == 0 {
		fmt.Fprintln(w, "(no events)")
	}
}
