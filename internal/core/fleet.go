package core

import (
	"fmt"
	"sort"
	"time"

	"h2privacy/internal/adversary"
	"h2privacy/internal/capture"
	"h2privacy/internal/check"
	"h2privacy/internal/endpoint"
	"h2privacy/internal/flowseq"
	"h2privacy/internal/netsim"
	"h2privacy/internal/perf"
	"h2privacy/internal/simtime"
	"h2privacy/internal/tcpsim"
	"h2privacy/internal/website"
)

// FleetConfig switches a trial from one point-to-point path to the
// shared-bottleneck topology: N client–server pairs — flow 0 is the
// target pair the TrialConfig describes, flows 1..N-1 are decoy page
// loads against small generated sites — all multiplexed over one
// aggregation link with a FIFO or DRR discipline. The adversary sits on
// that link with a K-flow interference budget: at SelectAt it ranks every
// flow by capture-visible flowseq features and arms the attack on the top
// K only.
//
// Determinism contract: flow 0 consumes the exact RNG streams a
// standalone trial does (its assembly is the standalone assembly); each
// decoy draws from its own root RNG derived from (Seed, flow index), so
// adding or removing decoys never shifts another flow's stream; the
// bottleneck itself draws nothing. At N=1 with the default (mirrored)
// bottleneck the trial is byte-identical to a Fleet=nil trial, including
// under adversary throttling.
type FleetConfig struct {
	// N is the total flow count including the target. Must be >= 1.
	N int
	// Budget is K, the adversary's concurrent-interference cap. 0 means
	// the adversary can observe but never touch a flow.
	Budget int
	// Bottleneck configures the shared aggregation link. Zero-value
	// fields mirror the per-flow link: BandwidthBps defaults to the flow
	// link rate and QueueLimit to the flow link's queue limit × N (so a
	// one-flow fleet shares nothing and stays bit-identical).
	Bottleneck netsim.BottleneckConfig
	// SelectAt is when the adversary first scores flows — after the
	// head-of-page burst is typically visible. Default 350 ms. Ignored at
	// N=1: the single flow is armed at construction, exactly like a
	// standalone attacked trial.
	SelectAt time.Duration
	// SelectEvery re-scans the flows until the budget is armed or
	// SelectUntil passes: a fixed single-shot scan misses targets whose
	// big response happens to start late, so the middlebox keeps watching.
	// Defaults 150 ms / 2 s. Rescans draw no RNG.
	SelectEvery time.Duration
	SelectUntil time.Duration
	// MinScore is the arming floor on the per-request response-size score:
	// flows below it are never armed, so early scans don't burn budget
	// slots on decoy noise (decoy responses top out near 6 KB). Default
	// 8192; negative disables the floor.
	MinScore int
	// Stagger spaces decoy page-load starts: decoy i starts at i×Stagger.
	// Default 5 ms.
	Stagger time.Duration
}

func (fc *FleetConfig) withDefaults(link netsim.LinkConfig) FleetConfig {
	out := *fc
	if out.SelectAt == 0 {
		out.SelectAt = 350 * time.Millisecond
	}
	if out.SelectEvery == 0 {
		out.SelectEvery = 150 * time.Millisecond
	}
	if out.SelectUntil == 0 {
		out.SelectUntil = 2 * time.Second
	}
	if out.MinScore == 0 {
		out.MinScore = 8192
	} else if out.MinScore < 0 {
		out.MinScore = 0
	}
	if out.Stagger == 0 {
		out.Stagger = 5 * time.Millisecond
	}
	if out.Bottleneck.BandwidthBps == 0 {
		out.Bottleneck.BandwidthBps = link.BandwidthBps
	}
	if out.Bottleneck.QueueLimit == 0 {
		limit := link.QueueLimit
		if limit == 0 {
			limit = 256 << 10
		}
		out.Bottleneck.QueueLimit = limit * out.N
	}
	return out
}

// DecoyOutcome is one decoy flow's page-load fate — the collateral-damage
// raw material (compare against the same seed at Budget 0).
type DecoyOutcome struct {
	// Flow is the decoy's synthesized flow ID (capture.FleetFlowID).
	Flow string
	// LoadTime is the virtual time of the last completed object; 0 when
	// nothing completed.
	LoadTime time.Duration
	// Completed counts finished objects; Broken and Resets are the
	// browser's verdict and §IV-D reset-cycle count.
	Completed int
	Broken    bool
	Resets    int
	// Targeted reports whether the adversary armed its attack on this
	// decoy (a selection miss).
	Targeted bool
}

// FleetOutcome is the fleet topology's per-trial result, carried on
// TrialResult.Fleet.
type FleetOutcome struct {
	N          int
	Budget     int
	Discipline string
	// Selected are the flow indices the adversary armed, ascending.
	// TargetSelected reports whether flow 0 — the planted target — is
	// among them.
	Selected       []int
	TargetSelected bool
	// BudgetPeak is the high-water mark of concurrently-held budget slots.
	BudgetPeak int
	// Interventions totals the adversary's actions across every flow's
	// controller: drops + delayed GETs + jittered packets + throttles.
	// Exactly zero at Budget 0.
	Interventions int
	Decoys        []DecoyOutcome
	// AggC2S / AggS2C are the shared bottleneck's per-direction counters.
	AggC2S netsim.AggStats
	AggS2C netsim.AggStats
}

// CollateralStats is the attack's damage to flows it did not target,
// computed by pairing an attacked fleet trial against the Budget-0 trial
// at the same seed (FleetCollateral).
type CollateralStats struct {
	// Decoys is the paired decoy count; Inflated counts decoys whose page
	// load got slower under the attack.
	Decoys   int
	Inflated int
	// MeanInflationPct / MaxInflationPct summarize page-load-time
	// inflation across decoys completed in both runs.
	MeanInflationPct float64
	MaxInflationPct  float64
	// SpuriousResets counts extra decoy reset cycles the attack caused;
	// BrokenDelta counts decoy loads broken under attack but not at
	// baseline.
	SpuriousResets int
	BrokenDelta    int
}

// FleetCollateral pairs an attacked fleet trial with its same-seed
// Budget-0 baseline and measures what the attack did to the decoys. Both
// results must come from the same FleetConfig shape (same N); decoys pair
// by index.
func FleetCollateral(attacked, baseline *TrialResult) CollateralStats {
	var cs CollateralStats
	if attacked == nil || baseline == nil || attacked.Fleet == nil || baseline.Fleet == nil {
		return cs
	}
	n := len(attacked.Fleet.Decoys)
	if m := len(baseline.Fleet.Decoys); m < n {
		n = m
	}
	var sum float64
	var counted int
	for i := 0; i < n; i++ {
		a, b := attacked.Fleet.Decoys[i], baseline.Fleet.Decoys[i]
		cs.Decoys++
		if a.Resets > b.Resets {
			cs.SpuriousResets += a.Resets - b.Resets
		}
		if a.Broken && !b.Broken {
			cs.BrokenDelta++
		}
		if a.LoadTime > 0 && b.LoadTime > 0 {
			pct := (float64(a.LoadTime) - float64(b.LoadTime)) / float64(b.LoadTime) * 100
			sum += pct
			counted++
			if pct > 0 {
				cs.Inflated++
			}
			if pct > cs.MaxInflationPct {
				cs.MaxInflationPct = pct
			}
		}
	}
	if counted > 0 {
		cs.MeanInflationPct = sum / float64(counted)
	}
	return cs
}

// mixSeed derives decoy flow i's independent RNG root from the trial seed
// (splitmix64 finalizer): decoy streams never overlap the target's, and
// un-faulted flows consume identical streams no matter what the adversary
// does elsewhere.
func mixSeed(seed int64, flow int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(flow)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// decoyFlow is one assembled decoy pair.
type decoyFlow struct {
	path    *netsim.Path
	monitor *capture.Monitor
	ctrl    *adversary.Controller
	browser *endpoint.Browser
	flows   *flowseq.Analyzer
	id      string
}

// runFleetTrial assembles and runs one shared-bottleneck trial. Flow 0 is
// built by NewTestbed itself — the standalone assembly, so its RNG fork
// order is the standalone order by construction — then the bottleneck and
// the decoys attach around it.
func runFleetTrial(cfg TrialConfig) (*TrialResult, error) {
	fc := *cfg.Fleet
	if fc.N < 1 {
		return nil, fmt.Errorf("core: fleet N must be >= 1, got %d", fc.N)
	}
	if fc.Budget < 0 {
		return nil, fmt.Errorf("core: fleet budget must be >= 0, got %d", fc.Budget)
	}
	if cfg.Attack != nil {
		if err := cfg.Attack.Validate(); err != nil {
			return nil, err
		}
	}
	link := cfg.Link
	if link.BandwidthBps == 0 {
		link = DefaultLink()
	}
	fc = fc.withDefaults(link)
	duration := cfg.Duration
	if duration == 0 {
		duration = 120 * time.Second
	}

	// armInline: a one-flow fleet with budget arms the attack at
	// construction — the standalone shape — so N=1 results are
	// bit-identical to the single-pair tables at shared seeds. With more
	// flows (or no budget) the target config is stripped of every
	// interference knob; the selector arms chosen flows at SelectAt.
	armInline := fc.N == 1 && fc.Budget >= 1
	tcfg := cfg
	tcfg.Fleet = nil
	if !armInline {
		tcfg.Attack = nil
		tcfg.RequestSpacing = 0
		tcfg.RandomJitter = 0
		tcfg.ThrottleBps = 0
		tcfg.DropRate = 0
	}
	sp := cfg.Perf.Start(perf.StageBuild)
	tb, err := NewTestbed(tcfg)
	if err != nil {
		sp.Stop()
		return nil, err
	}
	sched := tb.Sched

	bn, err := netsim.NewBottleneck(sched, fc.Bottleneck)
	if err != nil {
		sp.Stop()
		return nil, err
	}
	bn.Attach(tb.Path)

	// Per-flow capture-visible features for target selection. The armed
	// analyzer (and its siblings) also lands every flow's rows in the
	// sweep collector; with features off, private analyzers feed the
	// selector only — they draw no RNG and schedule no events, so arming
	// features never changes selection or results.
	flows := make([]*flowseq.Analyzer, fc.N)
	if cfg.Flows.Enabled() {
		flows[0] = cfg.Flows
	} else {
		flows[0] = flowseq.New(0, nil)
		flows[0].SetClock(sched)
		flows[0].SetFlow(capture.FlowID())
		tb.Monitor.SetFlows(flows[0])
	}

	ctrls := make([]*adversary.Controller, fc.N)
	mons := make([]*capture.Monitor, fc.N)
	ctrls[0], mons[0] = tb.Controller, tb.Monitor

	decoys := make([]*decoyFlow, 0, fc.N-1)
	for i := 1; i < fc.N; i++ {
		d, derr := buildDecoy(sched, cfg, link, i, fc.Stagger, flows[0])
		if derr != nil {
			sp.Stop()
			return nil, derr
		}
		bn.Attach(d.path)
		flows[i], ctrls[i], mons[i] = d.flows, d.ctrl, d.monitor
		decoys = append(decoys, d)
	}

	budget := adversary.NewBudget(fc.Budget, cfg.Check)
	var selected []int
	drivers := make(map[int]*adversary.Driver)
	if armInline {
		budget.TryAcquire(0)
		selected = []int{0}
		if tb.Driver != nil {
			drivers[0] = tb.Driver
			tb.Driver.SetOnRelease(func() { budget.Release(0) })
		}
	} else if fc.Budget > 0 {
		// The middlebox watches the link from SelectAt, re-scoring every
		// SelectEvery until it has armed its whole budget or SelectUntil
		// passes. The MinScore floor keeps early scans from arming decoy
		// noise while the real target's response has not started yet; a
		// flow is armed at most once (degrading releases the budget slot
		// but never re-arms the same flow).
		tried := make(map[int]bool)
		armed := 0
		var scan func()
		scan = func() {
			for _, fi := range adversary.SelectTargets(flows, fc.Budget, fc.MinScore) {
				if armed >= fc.Budget {
					break
				}
				if tried[fi] || !budget.TryAcquire(fi) {
					continue
				}
				tried[fi] = true
				armed++
				selected = append(selected, fi)
				fi := fi
				if cfg.Attack != nil {
					drv, derr := adversary.NewDriver(sched, ctrls[fi], mons[fi], *cfg.Attack)
					if derr != nil {
						budget.Release(fi)
						continue
					}
					drv.SetOnRelease(func() { budget.Release(fi) })
					if cfg.Metrics != nil {
						drv.SetMetrics(cfg.Metrics)
					}
					drivers[fi] = drv
					if fi == 0 {
						tb.Driver = drv
					}
					continue
				}
				applyKnobs(sched, &cfg, ctrls[fi])
			}
			if armed < fc.Budget && sched.Now()+fc.SelectEvery <= fc.SelectUntil {
				sched.At(sched.Now()+fc.SelectEvery, scan)
			}
		}
		sched.At(fc.SelectAt, scan)
	}
	sp.Stop()

	if cfg.Chaos == ChaosPanic {
		panic(chaosPanicValue(cfg.Seed))
	}
	rsp := cfg.Perf.Start(perf.StageRun)
	tb.Server.Start()
	tb.Browser.Start()
	sched.RunUntil(duration)
	rsp.Stop()
	if sched.Interrupted() {
		// Cooperatively cancelled mid-run, same contract as Testbed.Run:
		// no half-computed result.
		if cfg.Ctx != nil {
			return nil, cfg.Ctx.Err()
		}
		return nil, nil
	}

	res := tb.collectCapture()
	if cfg.Flows.Enabled() {
		for _, d := range decoys {
			d.flows.Finalize()
		}
	}

	out := &FleetOutcome{
		N:          fc.N,
		Budget:     fc.Budget,
		Discipline: fc.Bottleneck.Discipline.String(),
		BudgetPeak: budget.Peak(),
		AggC2S:     bn.Stats(netsim.ClientToServer),
		AggS2C:     bn.Stats(netsim.ServerToClient),
	}
	sort.Ints(selected)
	out.Selected = selected
	for _, fi := range selected {
		if fi == 0 {
			out.TargetSelected = true
		}
	}
	for _, c := range ctrls {
		st := c.Stats()
		out.Interventions += st.DroppedPkts + st.DelayedGETs + st.JitteredPkts + st.ThrottleEvents
	}
	for i, d := range decoys {
		r := d.browser.Result()
		var last time.Duration
		for _, at := range r.Completed {
			if at > last {
				last = at
			}
		}
		_, targeted := drivers[i+1]
		out.Decoys = append(out.Decoys, DecoyOutcome{
			Flow:      d.id,
			LoadTime:  last,
			Completed: len(r.Completed),
			Broken:    r.Broken,
			Resets:    r.Resets,
			Targeted:  targeted,
		})
	}
	res.Fleet = out

	if ck := cfg.Check; ck.Enabled() {
		csp := cfg.Perf.Start(perf.StageCheck)
		// Per-flow conservation already accumulated in the link shadows;
		// now pin the reported per-flow sums and the aggregate against
		// them, per direction, then run the end-of-trial checks.
		for _, dir := range []netsim.Direction{netsim.ClientToServer, netsim.ServerToClient} {
			d := uint8(check.DirC2S)
			if dir == netsim.ServerToClient {
				d = check.DirS2C
			}
			var sum netsim.LinkStats
			addStats(&sum, tb.Path.Link(dir).Stats())
			for _, df := range decoys {
				addStats(&sum, df.path.Link(dir).Stats())
			}
			ck.LinkStatsFinal(d, sum.Sent, sum.Delivered, sum.Duplicated,
				sum.DroppedLoss, sum.DroppedPolicy, sum.DroppedQueue, sum.DroppedFault,
				sum.BytesDelivered)
			ast := bn.Stats(dir)
			ck.AggStatsFinal(d, ast.Forwarded, ast.Bytes, ast.DroppedQueue)
		}
		res.CheckViolations = ck.Finalize()
		csp.Stop()
	}
	if !cfg.DeferMetrics {
		psp := cfg.Perf.Start(perf.StagePublish)
		PublishTrialMetrics(cfg.Metrics, res)
		psp.Stop()
	}
	return res, nil
}

// addStats accumulates per-flow link counters for the aggregate
// conservation check.
func addStats(sum *netsim.LinkStats, st netsim.LinkStats) {
	sum.Sent += st.Sent
	sum.Delivered += st.Delivered
	sum.Duplicated += st.Duplicated
	sum.DroppedLoss += st.DroppedLoss
	sum.DroppedPolicy += st.DroppedPolicy
	sum.DroppedQueue += st.DroppedQueue
	sum.DroppedFault += st.DroppedFault
	sum.BytesDelivered += st.BytesDelivered
}

// buildDecoy assembles decoy flow i against the shared scheduler: its own
// path (attached to the bottleneck by the caller), monitor, controller,
// TCP pair, generated decoy site and a full page-load browser — a real
// competing flow, not a traffic knob. Everything draws from the decoy's
// own root RNG (mixSeed), mirroring the standalone assembly's fork order.
func buildDecoy(sched *simtime.Scheduler, cfg TrialConfig, link netsim.LinkConfig, i int, stagger time.Duration, armed *flowseq.Analyzer) (*decoyFlow, error) {
	root := simtime.NewRand(mixSeed(cfg.Seed, i))
	path, err := netsim.NewPath(sched, root.Fork(), netsim.PathConfig{Link: link, Check: cfg.Check})
	if err != nil {
		return nil, fmt.Errorf("core: fleet decoy %d path: %w", i, err)
	}
	mon := capture.NewMonitor()
	path.AddTap(mon)
	ctrl := adversary.NewController(sched, root.Fork(), path)
	if cfg.Metrics != nil {
		ctrl.SetMetrics(cfg.Metrics)
	}

	// A sibling of flow 0's analyzer: same trial index, same collector
	// (nil when features are off — the selector still gets its feed).
	id := capture.FleetFlowID(i)
	an := armed.Sibling(id)
	mon.SetFlows(an)

	tcp := cfg.TCP
	tcp.Tracer = nil
	tcp.Check = nil
	if cfg.Pool != nil {
		tcp.Pool = cfg.Pool
	}
	pair, err := tcpsim.NewPair(sched, root.Fork(), path, tcp)
	if err != nil {
		return nil, fmt.Errorf("core: fleet decoy %d tcp: %w", i, err)
	}

	site := website.DecoySite(i)
	plan, err := site.SequentialPlan()
	if err != nil {
		return nil, fmt.Errorf("core: fleet decoy %d plan: %w", i, err)
	}
	scfg := cfg.Server
	scfg.Tracer = nil
	scfg.H2.Tracer = nil
	scfg.H2.Check = nil
	scfg.PushEmblems = false
	srv, err := endpoint.NewServer(sched, root.Fork(), pair.Server, site, scfg)
	if err != nil {
		return nil, fmt.Errorf("core: fleet decoy %d server: %w", i, err)
	}
	bcfg := cfg.Browser
	bcfg.Tracer = nil
	bcfg.H2.Tracer = nil
	bcfg.H2.Check = nil
	bcfg.AcceptPush = false
	bcfg.H2.Flows = an
	bcfg.Flows = an
	brw, err := endpoint.NewBrowser(sched, root.Fork(), pair.Client, site, plan, bcfg)
	if err != nil {
		return nil, fmt.Errorf("core: fleet decoy %d browser: %w", i, err)
	}
	sched.At(time.Duration(i)*stagger, func() {
		srv.Start()
		brw.Start()
	})
	return &decoyFlow{path: path, monitor: mon, ctrl: ctrl, browser: brw, flows: an, id: id}, nil
}

// applyKnobs arms the single-parameter interference knobs on one
// selected flow's controller — the fleet analogue of the standalone
// single-knob studies, applied at selection time instead of t=0.
func applyKnobs(sched *simtime.Scheduler, cfg *TrialConfig, ctrl *adversary.Controller) {
	if cfg.RequestSpacing > 0 {
		ctrl.SetRequestSpacing(cfg.RequestSpacing)
	}
	if cfg.RandomJitter > 0 {
		ctrl.SetRandomJitter(netsim.ClientToServer, cfg.RandomJitter)
		ctrl.SetRandomJitter(netsim.ServerToClient, cfg.RandomJitter)
	}
	if cfg.ThrottleBps > 0 {
		ctrl.Throttle(cfg.ThrottleBps)
	}
	if cfg.DropRate > 0 && cfg.DropDuration > 0 {
		ctrl.DropServerData(cfg.DropRate, cfg.DropRate, cfg.DropDuration)
	}
}
