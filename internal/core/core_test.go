package core

import (
	"strings"
	"testing"
	"time"

	"h2privacy/internal/adversary"
	"h2privacy/internal/obs"
	"h2privacy/internal/trace"
	"h2privacy/internal/website"
)

func TestBaselineTrialCompletes(t *testing.T) {
	res, err := RunTrial(TrialConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Broken {
		t.Fatalf("baseline broken: %s", res.BrokenReason)
	}
	if len(res.Completed) != 48 {
		t.Fatalf("completed %d objects", len(res.Completed))
	}
	if res.GETs < 48 {
		t.Fatalf("monitor counted %d GETs, want ≥48", res.GETs)
	}
	if len(res.TrueSeq) != website.PartyCount || len(res.DisplaySeq) != website.PartyCount {
		t.Fatalf("sequences: %v / %v", res.TrueSeq, res.DisplaySeq)
	}
}

func TestTrialDeterminism(t *testing.T) {
	a, err := RunTrial(TrialConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrial(TrialConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.GETs != b.GETs || a.MonitorRetransmits != b.MonitorRetransmits ||
		a.AppRetries != b.AppRetries || len(a.Bursts) != len(b.Bursts) {
		t.Fatalf("same seed diverged: %+v vs %+v", a.GETs, b.GETs)
	}
	for obj, dom := range a.BestDoM {
		if b.BestDoM[obj] != dom {
			t.Fatalf("DoM diverged for %s: %v vs %v", obj, dom, b.BestDoM[obj])
		}
	}
	c, err := RunTrial(TrialConfig{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if a.GETs == c.GETs && a.MonitorRetransmits == c.MonitorRetransmits && len(a.Bursts) == len(c.Bursts) {
		t.Log("warning: different seeds produced identical summary (possible but unlikely)")
	}
}

func TestAttackTrialProducesVerdicts(t *testing.T) {
	plan := adversary.DefaultPlan()
	res, err := RunTrial(TrialConfig{Seed: 8, Attack: &plan, Perm: []int{3, 1, 4, 0, 7, 6, 2, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resets == 0 && !res.Broken {
		t.Fatal("attack never forced a reset")
	}
	if got := res.Perm; len(got) != website.PartyCount || got[0] != 3 {
		t.Fatalf("perm = %v", got)
	}
	// The attack should usually succeed on this seed's emblems.
	hits := 0
	for k := 0; k < website.PartyCount; k++ {
		if res.SequenceRankCorrect(k) {
			hits++
		}
	}
	if hits == 0 && !res.Broken {
		t.Fatalf("no emblem ranks inferred; inferred=%v true=%v", res.InferredSeq, res.TrueSeq)
	}
}

func TestSingleKnobConfigs(t *testing.T) {
	res, err := RunTrial(TrialConfig{
		Seed:           5,
		RequestSpacing: 50 * time.Millisecond,
		RandomJitter:   time.Millisecond,
		ThrottleBps:    800e6,
		DropRate:       0.5,
		DropFrom:       time.Second,
		DropDuration:   500 * time.Millisecond,
		Duration:       60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GETs == 0 {
		t.Fatal("no traffic observed")
	}
}

func TestShuffledEmblemOrderDecouples(t *testing.T) {
	decoupled := false
	for seed := int64(0); seed < 5; seed++ {
		res, err := RunTrial(TrialConfig{Seed: seed, ShuffledEmblemOrder: true, Duration: 30 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		for i := range res.TrueSeq {
			if res.TrueSeq[i] != res.DisplaySeq[i] {
				decoupled = true
			}
		}
	}
	if !decoupled {
		t.Fatal("shuffled plans never decoupled request from display order")
	}
}

func TestObjectSuccessCriteria(t *testing.T) {
	r := &TrialResult{
		BestCompleteDoM: map[string]float64{"a": 0, "b": 0.5, "c": 0},
		Identified:      map[string]bool{"a": true, "b": true},
	}
	if !r.ObjectSuccess("a") {
		t.Fatal("serialized+identified must succeed")
	}
	if r.ObjectSuccess("b") {
		t.Fatal("multiplexed object must not succeed")
	}
	if r.ObjectSuccess("c") {
		t.Fatal("unidentified object must not succeed")
	}
	if r.ObjectSuccess("missing") {
		t.Fatal("absent object must not succeed")
	}
}

func TestSequenceRankCorrect(t *testing.T) {
	r := &TrialResult{
		DisplaySeq:  []string{"x", "y", "z"},
		InferredSeq: []string{"x", "q"},
	}
	if !r.SequenceRankCorrect(0) || r.SequenceRankCorrect(1) || r.SequenceRankCorrect(2) || r.SequenceRankCorrect(9) {
		t.Fatal("rank matching broken")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	if _, err := RunTrial(TrialConfig{Seed: 1, Perm: []int{0, 1}}); err == nil {
		t.Fatal("bad permutation accepted")
	}
}

func TestServerPushDefenseTrial(t *testing.T) {
	plan := adversary.DefaultPlan()
	res, err := RunTrial(TrialConfig{Seed: 9, Attack: &plan, ServerPush: true})
	if err != nil {
		t.Fatal(err)
	}
	// With push, the attack must not recover the ranking.
	correct := 0
	for k := 0; k < website.PartyCount; k++ {
		if res.SequenceRankCorrect(k) {
			correct++
		}
	}
	if correct > website.PartyCount/2 {
		t.Fatalf("push defense leaked %d/%d ranks", correct, website.PartyCount)
	}
}

func TestTimeline(t *testing.T) {
	plan := adversary.DefaultPlan()
	tb, err := NewTestbed(TrialConfig{Seed: 3, Attack: &plan})
	if err != nil {
		t.Fatal(err)
	}
	res := tb.Run()
	evs := tb.Timeline(res)
	if len(evs) < 50 {
		t.Fatalf("timeline has %d events", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("timeline not sorted")
		}
	}
	var sawPhase, sawGET, sawBurst bool
	for _, e := range evs {
		switch e.Actor {
		case "adversary":
			sawPhase = true
		case "browser":
			sawGET = true
		case "monitor":
			sawBurst = true
		}
	}
	if !sawPhase || !sawGET || !sawBurst {
		t.Fatalf("timeline missing actors: phase=%t get=%t burst=%t", sawPhase, sawGET, sawBurst)
	}
	var buf strings.Builder
	RenderTimeline(&buf, evs)
	if !strings.Contains(buf.String(), "phase") {
		t.Fatal("render missing phase lines")
	}
	RenderTimeline(&buf, nil)
}

func TestTrialMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	plan := adversary.DefaultPlan()
	tb, err := NewTestbed(TrialConfig{Seed: 8, Attack: &plan, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	res := tb.Run()
	snap := reg.Snapshot()
	val := func(name string) (float64, bool) {
		for _, f := range snap.Families {
			if f.Name == name && len(f.Series) > 0 {
				return f.Series[0].Value, true
			}
		}
		return 0, false
	}
	if v, ok := val("h2privacy_trials_total"); !ok || v != 1 {
		t.Fatalf("trials_total = %v %v", v, ok)
	}
	if v, ok := val("h2privacy_attack_trials_total"); !ok || v != 1 {
		t.Fatalf("attack_trials_total = %v %v", v, ok)
	}
	if v, ok := val("h2privacy_monitor_gets_total"); !ok || v != float64(res.GETs) {
		t.Fatalf("monitor_gets_total = %v, want %d", v, res.GETs)
	}
	if v, ok := val("h2privacy_adversary_drops_total"); !ok || v != float64(tb.Controller.Stats().DroppedPkts) {
		t.Fatalf("adversary_drops_total = %v, want %d", v, tb.Controller.Stats().DroppedPkts)
	}
	// The attack driver must have walked through all three phases, and the
	// phase-duration histogram must hold one observation per span.
	spans := tb.Driver.PhaseSpans(tb.Sched.Now())
	if len(spans) < 3 {
		t.Fatalf("driver logged %d phase spans, want ≥3", len(spans))
	}
	var phaseObs uint64
	for _, f := range snap.Families {
		if f.Name == "h2privacy_adversary_phase_seconds" {
			for _, s := range f.Series {
				phaseObs += s.Count
			}
		}
	}
	if phaseObs != uint64(len(spans)) {
		t.Fatalf("phase histogram holds %d observations, want %d", phaseObs, len(spans))
	}
	// Everything published is virtual-time derived: a same-seed rerun into a
	// fresh registry must produce an identical exposition.
	reg2 := obs.NewRegistry()
	tb2, err := NewTestbed(TrialConfig{Seed: 8, Attack: &plan, Metrics: reg2})
	if err != nil {
		t.Fatal(err)
	}
	tb2.Run()
	var a, b strings.Builder
	if err := reg.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg2.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same-seed trials produced different expositions:\n%s\n---\n%s", a.String(), b.String())
	}
	if _, err := obs.LintExposition([]byte(a.String())); err != nil {
		t.Fatalf("trial exposition rejected by golden parser: %v", err)
	}
}

func TestTimelineFromTrace(t *testing.T) {
	plan := adversary.DefaultPlan()
	tb, err := NewTestbed(TrialConfig{
		Seed:   3,
		Attack: &plan,
		Trace:  trace.New(nil, trace.Config{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	res := tb.Run()
	evs := tb.Timeline(res)
	if len(evs) == 0 {
		t.Fatal("empty timeline")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("timeline not sorted at %d: %v after %v", i, evs[i].At, evs[i-1].At)
		}
	}
	// Every phase transition the driver logged must appear, with its time.
	if len(tb.Driver.PhaseLog) == 0 {
		t.Fatal("driver logged no phases")
	}
	for _, pc := range tb.Driver.PhaseLog {
		want := "phase → " + pc.Phase.String()
		found := false
		for _, e := range evs {
			if e.Actor == "adversary" && e.What == want && e.At == pc.Time {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("timeline missing %q at %v", want, pc.Time)
		}
	}
	var sawTCP, sawGET bool
	for _, e := range evs {
		switch e.Actor {
		case "tcp":
			sawTCP = true
		case "browser":
			sawGET = true
		}
	}
	if !sawGET {
		t.Fatal("timeline has no browser requests")
	}
	if !sawTCP {
		t.Fatal("timeline has no trace-derived TCP events (RTO/recovery)")
	}
}
