package tcpsim

import (
	"bytes"
	"testing"
	"time"

	"h2privacy/internal/netsim"
	"h2privacy/internal/simtime"
)

// TestRACKWindowSuppressesSpuriousRetransmit: micro-reordering (well under
// srtt/4) must not trigger fast retransmit.
func TestRACKWindowSuppressesSpuriousRetransmit(t *testing.T) {
	sched := simtime.NewScheduler()
	rng := simtime.NewRand(7)
	path, err := netsim.NewPath(sched, rng, netsim.PathConfig{Link: netsim.LinkConfig{
		BandwidthBps: 1e9,
		PropDelay:    10 * time.Millisecond, // srtt ≈ 20ms, window ≈ 5ms
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Delay every 50th data packet by 1ms: reordering far below the
	// RACK window.
	n := 0
	path.Link(netsim.ServerToClient).AddProcessor(netsim.ProcessorFunc(func(now time.Duration, pkt *netsim.Packet) netsim.Verdict {
		seg := pkt.Payload.(*Segment)
		if len(seg.Payload) > 0 {
			n++
			if n%50 == 0 {
				return netsim.Verdict{ExtraDelay: time.Millisecond}
			}
		}
		return netsim.Verdict{}
	}))
	pair, err := NewPair(sched, rng, path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	pair.Client.OnData(func(p []byte) { got.Write(p) })
	pair.Open()
	data := make([]byte, 500_000)
	sched.After(0, func() { _ = pair.Server.Write(data) })
	sched.Run()
	if got.Len() != len(data) {
		t.Fatalf("received %d/%d", got.Len(), len(data))
	}
	if fr := pair.Server.Stats().FastRetransmits; fr != 0 {
		t.Fatalf("micro-reordering caused %d spurious fast retransmits", fr)
	}
}

// TestRACKWindowStillCatchesRealLoss: a genuinely lost packet must still
// be recovered by fast retransmit (not only RTO).
func TestRACKWindowStillCatchesRealLoss(t *testing.T) {
	sched := simtime.NewScheduler()
	rng := simtime.NewRand(9)
	path, err := netsim.NewPath(sched, rng, netsim.PathConfig{Link: netsim.LinkConfig{
		BandwidthBps: 1e9,
		PropDelay:    10 * time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	dropped := false
	path.Link(netsim.ServerToClient).AddProcessor(netsim.ProcessorFunc(func(now time.Duration, pkt *netsim.Packet) netsim.Verdict {
		seg := pkt.Payload.(*Segment)
		if !dropped && len(seg.Payload) > 0 && seg.Seq > 0 && now > 30*time.Millisecond && !seg.Retransmit {
			dropped = true
			return netsim.Verdict{Drop: true}
		}
		return netsim.Verdict{}
	}))
	pair, err := NewPair(sched, rng, path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	pair.Client.OnData(func(p []byte) { got.Write(p) })
	pair.Open()
	data := make([]byte, 400_000)
	sched.After(0, func() { _ = pair.Server.Write(data) })
	sched.Run()
	if got.Len() != len(data) {
		t.Fatalf("received %d/%d", got.Len(), len(data))
	}
	st := pair.Server.Stats()
	if st.FastRetransmits == 0 {
		t.Fatalf("real loss recovered without fast retransmit: %+v", st)
	}
	if st.RTOExpiries != 0 {
		t.Fatalf("loss needed an RTO despite dup-ACKs: %+v", st)
	}
}

// TestTLPRecoversTailLoss: when the LAST segments of a burst are lost,
// no dup-ACKs ever arrive; the tail-loss probe must recover well before
// the RTO would.
func TestTLPRecoversTailLoss(t *testing.T) {
	sched := simtime.NewScheduler()
	rng := simtime.NewRand(11)
	path, err := netsim.NewPath(sched, rng, netsim.PathConfig{Link: netsim.LinkConfig{
		BandwidthBps: 1e9,
		PropDelay:    5 * time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Drop the first transmission of the burst's tail bytes (relative
	// offset ≥ 58000); sequence numbers start at a random ISS.
	var base uint64
	path.Link(netsim.ServerToClient).AddProcessor(netsim.ProcessorFunc(func(now time.Duration, pkt *netsim.Packet) netsim.Verdict {
		seg := pkt.Payload.(*Segment)
		if len(seg.Payload) == 0 {
			return netsim.Verdict{}
		}
		if base == 0 {
			base = seg.Seq
		}
		rel := seg.Seq - base + uint64(len(seg.Payload))
		if !seg.Retransmit && rel >= 58_000 {
			return netsim.Verdict{Drop: true}
		}
		return netsim.Verdict{}
	}))
	pair, err := NewPair(sched, rng, path, Config{MinRTO: 800 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	var doneAt time.Duration
	pair.Client.OnData(func(p []byte) {
		got.Write(p)
		doneAt = sched.Now()
	})
	pair.Open()
	data := make([]byte, 60_000)
	sched.After(0, func() { _ = pair.Server.Write(data) })
	sched.Run()
	if got.Len() != len(data) {
		t.Fatalf("received %d/%d", got.Len(), len(data))
	}
	if pair.Server.Stats().TLPProbes == 0 {
		t.Fatalf("tail loss recovered without a probe: %+v", pair.Server.Stats())
	}
	// With MinRTO 800ms, an RTO-only recovery would finish after ~850ms;
	// the probe should finish far sooner.
	if doneAt > 500*time.Millisecond {
		t.Fatalf("tail recovery took %v — looks like an RTO, not a TLP", doneAt)
	}
}

// TestRTORecoveryAfterIdleBackoff: forward progress must collapse the
// backed-off RTO so a later, isolated loss recovers promptly.
func TestRTOBackoffCollapsesOnProgress(t *testing.T) {
	sched := simtime.NewScheduler()
	rng := simtime.NewRand(13)
	path, err := netsim.NewPath(sched, rng, netsim.PathConfig{Link: netsim.LinkConfig{
		BandwidthBps: 1e9,
		PropDelay:    5 * time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Total blackout between 50ms and 1.5s (payload only).
	path.Link(netsim.ServerToClient).AddProcessor(netsim.ProcessorFunc(func(now time.Duration, pkt *netsim.Packet) netsim.Verdict {
		seg := pkt.Payload.(*Segment)
		drop := len(seg.Payload) > 0 && now > 50*time.Millisecond && now < 1500*time.Millisecond
		return netsim.Verdict{Drop: drop}
	}))
	pair, err := NewPair(sched, rng, path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	pair.Client.OnData(func(p []byte) { got.Write(p) })
	pair.Open()
	sched.After(0, func() { _ = pair.Server.Write(make([]byte, 300_000)) })
	sched.RunUntil(20 * time.Second)
	if got.Len() != 300_000 {
		t.Fatalf("received %d/300000", got.Len())
	}
	// After the blackout, the RTO must have been refreshed toward the
	// estimator value, not stuck at MaxRTO.
	if rto := pair.Server.RTO(); rto > time.Second {
		t.Fatalf("RTO stuck backed off at %v after recovery", rto)
	}
}

// TestDisableRACKWindow restores immediate fast retransmit.
func TestDisableRACKWindow(t *testing.T) {
	sched := simtime.NewScheduler()
	rng := simtime.NewRand(7)
	path, err := netsim.NewPath(sched, rng, netsim.PathConfig{Link: netsim.LinkConfig{
		BandwidthBps: 1e9,
		PropDelay:    10 * time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	path.Link(netsim.ServerToClient).AddProcessor(netsim.ProcessorFunc(func(now time.Duration, pkt *netsim.Packet) netsim.Verdict {
		seg := pkt.Payload.(*Segment)
		if len(seg.Payload) > 0 {
			n++
			if n%50 == 0 {
				return netsim.Verdict{ExtraDelay: time.Millisecond}
			}
		}
		return netsim.Verdict{}
	}))
	pair, err := NewPair(sched, rng, path, Config{DisableRACKWindow: true})
	if err != nil {
		t.Fatal(err)
	}
	pair.Client.OnData(func([]byte) {})
	pair.Open()
	sched.After(0, func() { _ = pair.Server.Write(make([]byte, 500_000)) })
	sched.Run()
	if fr := pair.Server.Stats().FastRetransmits; fr == 0 {
		t.Fatal("legacy mode suppressed spurious retransmits too")
	}
}

func TestDelayedAckReducesAckTraffic(t *testing.T) {
	// Compare the server's received segment counts (client ACKs).
	count := func(delayed bool) int {
		sched := simtime.NewScheduler()
		rng := simtime.NewRand(21)
		path, _ := netsim.NewPath(sched, rng, netsim.PathConfig{Link: netsim.LinkConfig{
			BandwidthBps: 1e9, PropDelay: 5 * time.Millisecond,
		}})
		pair, _ := NewPair(sched, rng, path, Config{DelayedAck: delayed})
		var got bytes.Buffer
		pair.Client.OnData(func(p []byte) { got.Write(p) })
		pair.Open()
		sched.After(0, func() { _ = pair.Server.Write(make([]byte, 300_000)) })
		sched.Run()
		if got.Len() != 300_000 {
			t.Fatalf("received %d (delayed=%t)", got.Len(), delayed)
		}
		return pair.Server.Stats().SegmentsReceived
	}
	immediate := count(false)
	delayed := count(true)
	if delayed >= immediate {
		t.Fatalf("delayed ACKs did not reduce ACK traffic: %d vs %d", delayed, immediate)
	}
}
