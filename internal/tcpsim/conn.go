package tcpsim

import (
	"fmt"
	"time"

	"h2privacy/internal/check"
	"h2privacy/internal/pool"
	"h2privacy/internal/simtime"
	"h2privacy/internal/trace"
)

// Conn is one endpoint of a simulated TCP connection. It is event-driven:
// the network calls Deliver for each arriving segment, the application
// calls Write/CloseSend/Abort, and the connection emits outgoing segments
// through the transmit function given at construction. All activity runs
// on the shared simtime.Scheduler, so a Conn needs no locking.
type Conn struct {
	sched *simtime.Scheduler
	cfg   Config
	name  string
	out   func(*Segment)

	state   State
	onState func(State)
	onData  func([]byte)
	onEOF   func()
	onDrain func()
	failure error

	// Sender state.
	iss        uint64
	sndUna     uint64
	sndNxt     uint64
	maxSndNxt  uint64 // highest sndNxt ever reached; resends below it are retransmits
	sendBuf    []byte // unacked+unsent bytes, base sequence sndUna
	cwnd       int
	ssthresh   int
	peerWnd    int
	dupAcks    int
	inRecovery bool
	recoverPt  uint64
	retries    int
	finQueued  bool
	finSent    bool
	finSeq     uint64
	finAcked   bool

	// RTT estimation (Karn's algorithm: samples invalidated on any
	// retransmission).
	srtt       time.Duration
	rttvar     time.Duration
	rto        time.Duration
	rttPending bool
	rttSeq     uint64
	rttSentAt  time.Duration
	rtoTimer   *simtime.Event
	rackTimer  *simtime.Event // pending fast retransmit (reordering window)
	ptoTimer   *simtime.Event // tail-loss probe (RFC 8985 §7.2)

	// Receiver state.
	rcvNxt      uint64
	ooo         map[uint64][]byte
	oooBytes    int
	delAckTimer *simtime.Event
	delAckCount int
	hasPeerFin  bool
	peerFinSeq  uint64
	eofSent     bool

	// Trial-scoped recycling (nil without Config.Pool): segs free-lists
	// outgoing Segment structs (shared with the peer via NewPair), arena
	// rents payload and out-of-order buffers. Both are nil-safe.
	segs  *segPool
	arena *pool.Arena

	// Timer callbacks bound once at construction: a method value
	// (c.onRTO) evaluates to a fresh closure allocation at every arm
	// site, and RTO/PTO timers re-arm on every ACK.
	onRTOFn    func()
	onPTOFn    func()
	onRackFn   func()
	onDelAckFn func()
	rackHole   uint64 // sndUna snapshot the armed rack timer guards

	stats Stats

	tr        *trace.Tracer
	ctRTO     *trace.Counter
	ctFastRtx *trace.Counter
	ctTLP     *trace.Counter
	hSRTT     *trace.Histo

	ck *check.Checker // nil unless invariant checks are armed
}

// NewConn builds an endpoint. name tags errors and traces ("client",
// "server"). iss is the initial send sequence number. out transmits a
// segment onto the network and must be non-nil.
func NewConn(sched *simtime.Scheduler, cfg Config, name string, iss uint64, out func(*Segment)) (*Conn, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if sched == nil || out == nil {
		return nil, fmt.Errorf("tcpsim: NewConn requires scheduler and transmit function")
	}
	c := &Conn{
		sched:    sched,
		cfg:      cfg,
		name:     name,
		out:      out,
		state:    StateIdle,
		iss:      iss,
		cwnd:     cfg.InitCwndSegs * cfg.MSS,
		ssthresh: cfg.InitSsthresh,
		peerWnd:  cfg.RecvWindow,
		rto:      time.Second, // conservative pre-handshake RTO (RFC 6298 §2)
		ooo:      make(map[uint64][]byte),
		arena:    cfg.Pool,
	}
	c.onRTOFn = c.onRTO
	c.onPTOFn = c.onPTO
	c.onRackFn = c.onRack
	c.onDelAckFn = c.onDelAck
	if cfg.Tracer.Enabled() {
		c.tr = cfg.Tracer
		c.ctRTO = c.tr.Counter(trace.LayerTCP, name+".rto")
		c.ctFastRtx = c.tr.Counter(trace.LayerTCP, name+".fast-retransmit")
		c.ctTLP = c.tr.Counter(trace.LayerTCP, name+".tlp")
		c.hSRTT = c.tr.Histo(trace.LayerTCP, name+".srtt_ms")
	}
	if cfg.Check.Enabled() {
		c.ck = cfg.Check
		c.ck.TCPRegister(name, iss)
	}
	return c, nil
}

// State reports the current connection state.
func (c *Conn) State() State { return c.state }

// Err returns why the connection broke, or nil.
func (c *Conn) Err() error { return c.failure }

// Stats returns a copy of the endpoint counters.
func (c *Conn) Stats() Stats { return c.stats }

// Config returns the effective (defaulted) configuration.
func (c *Conn) Config() Config { return c.cfg }

// RTO reports the current retransmission timeout (useful to observe the
// client backing off after the adversary's loss phase, §IV-D).
func (c *Conn) RTO() time.Duration { return c.rto }

// SRTT reports the smoothed round-trip estimate (zero before first sample).
func (c *Conn) SRTT() time.Duration { return c.srtt }

// Cwnd reports the current congestion window in bytes.
func (c *Conn) Cwnd() int { return c.cwnd }

// Buffered reports bytes accepted by Write but not yet acknowledged.
func (c *Conn) Buffered() int { return len(c.sendBuf) }

// OnStateChange registers a callback invoked after every state transition.
func (c *Conn) OnStateChange(fn func(State)) { c.onState = fn }

// OnData registers the in-order payload delivery callback.
func (c *Conn) OnData(fn func([]byte)) { c.onData = fn }

// OnEOF registers a callback for the peer's orderly close (FIN).
func (c *Conn) OnEOF(fn func()) { c.onEOF = fn }

// OnSendBufDrain registers a callback invoked whenever acknowledgements
// shrink the send buffer — applications use it with Buffered to apply
// socket-style backpressure.
func (c *Conn) OnSendBufDrain(fn func()) { c.onDrain = fn }

// Listen puts an idle endpoint into the passive-open state.
func (c *Conn) Listen() {
	if c.state != StateIdle {
		panic("tcpsim: Listen on non-idle connection")
	}
	c.setState(StateListen)
}

// Connect starts the active open (sends SYN).
func (c *Conn) Connect() {
	if c.state != StateIdle {
		panic("tcpsim: Connect on non-idle connection")
	}
	c.sndUna = c.iss
	c.sndNxt = c.iss + 1
	c.maxSndNxt = c.sndNxt
	c.setState(StateSynSent)
	c.transmit(c.makeSeg(FlagSYN, c.iss, 0, c.advertisedWindow(), nil, false))
	c.armRTO()
}

// Write queues application bytes for transmission. Bytes are copied.
// Writing on a closed/broken connection returns an error; the HTTP layers
// above surface it as a transport failure.
func (c *Conn) Write(p []byte) error {
	switch c.state {
	case StateClosed, StateBroken:
		return fmt.Errorf("tcpsim: %s: write on %s connection", c.name, c.state)
	}
	if c.finQueued {
		return fmt.Errorf("tcpsim: %s: write after CloseSend", c.name)
	}
	c.sendBuf = append(c.sendBuf, p...)
	c.trySend()
	return nil
}

// CloseSend queues an orderly close: a FIN is sent once all buffered data
// has been transmitted.
func (c *Conn) CloseSend() {
	if c.finQueued || c.state == StateClosed || c.state == StateBroken {
		return
	}
	c.finQueued = true
	c.trySend()
}

// Abort sends a RST and declares the connection broken. This models the
// browser giving up on a dead transport.
func (c *Conn) Abort() {
	if c.state == StateClosed || c.state == StateBroken {
		return
	}
	c.transmit(c.makeSeg(FlagRST, c.sndNxt, c.rcvNxt, 0, nil, false))
	c.fail(fmt.Errorf("tcpsim: %s: connection aborted locally", c.name))
}

// Deliver feeds a segment that arrived from the network.
func (c *Conn) Deliver(seg *Segment) {
	if seg == nil {
		return
	}
	c.stats.SegmentsReceived++
	if seg.Flags.Has(FlagRST) {
		if c.state != StateClosed && c.state != StateBroken {
			c.fail(fmt.Errorf("tcpsim: %s: connection reset by peer", c.name))
		}
		return
	}
	switch c.state {
	case StateListen:
		if seg.Flags.Has(FlagSYN) {
			c.rcvNxt = seg.Seq + 1
			c.sndUna = c.iss
			c.sndNxt = c.iss + 1
			c.maxSndNxt = c.sndNxt
			if seg.Window > 0 {
				c.peerWnd = seg.Window
			}
			c.setState(StateSynRcvd)
			c.transmit(c.makeSeg(FlagSYN|FlagACK, c.iss, c.rcvNxt, c.advertisedWindow(), nil, false))
			c.armRTO()
		}
	case StateSynSent:
		if seg.Flags.Has(FlagSYN|FlagACK) && seg.Ack == c.sndNxt {
			c.rcvNxt = seg.Seq + 1
			c.sndUna = seg.Ack
			c.retries = 0
			c.disarmRTO()
			if seg.Window > 0 {
				c.peerWnd = seg.Window
			}
			c.setState(StateEstablished)
			c.sendAck(false)
			c.trySend()
		}
	case StateSynRcvd:
		if seg.Flags.Has(FlagACK) && seg.Ack == c.sndNxt {
			c.sndUna = seg.Ack
			c.retries = 0
			c.disarmRTO()
			c.setState(StateEstablished)
			c.trySend()
		}
		c.processEstablished(seg)
	case StateEstablished:
		c.processEstablished(seg)
	case StateClosed, StateBroken, StateIdle:
		// Late segments after close are ignored.
	}
}

func (c *Conn) processEstablished(seg *Segment) {
	if c.state != StateEstablished && c.state != StateSynRcvd {
		return
	}
	if seg.Flags.Has(FlagACK) {
		c.processAck(seg)
		if c.ck.Enabled() {
			c.ck.TCPAck(c.name, seg.Ack, c.sndUna)
		}
	}
	if len(seg.Payload) > 0 || seg.Flags.Has(FlagFIN) {
		c.processData(seg)
	}
}

func (c *Conn) setState(s State) {
	if c.state == s {
		return
	}
	c.state = s
	if c.onState != nil {
		c.onState(s)
	}
}

func (c *Conn) fail(err error) {
	c.failure = err
	if c.tr.Enabled() {
		c.tr.Emit(trace.LayerTCP, "broken", trace.Str("conn", c.name), trace.Str("err", err.Error()))
	}
	c.disarmRTO()
	c.disarmPTO()
	c.cancelDelAck()
	if c.rackTimer != nil {
		c.sched.Cancel(c.rackTimer)
		c.rackTimer = nil
	}
	c.setState(StateBroken)
}

func (c *Conn) advertisedWindow() int {
	w := c.cfg.RecvWindow - c.oooBytes
	if w < 0 {
		w = 0
	}
	return w
}

// makeSeg assembles an outgoing segment, recycled from the pair's
// segment pool when one is armed (plain allocation otherwise). The
// caller hands it to transmit and must not touch it afterwards: once
// pooling is on, the network layer reclaims it after final delivery.
func (c *Conn) makeSeg(flags Flags, seq, ack uint64, window int, payload []byte, rtx bool) *Segment {
	seg := c.segs.get()
	seg.Flags, seg.Seq, seg.Ack, seg.Window, seg.Payload, seg.Retransmit =
		flags, seq, ack, window, payload, rtx
	return seg
}

func (c *Conn) transmit(seg *Segment) {
	if c.ck.Enabled() && !seg.Flags.Has(FlagRST) {
		end := seg.Seq + uint64(len(seg.Payload))
		if seg.Flags.Has(FlagSYN) {
			end++
		}
		if seg.Flags.Has(FlagFIN) {
			end++
		}
		c.ck.TCPSegment(c.name, seg.Seq, end, seg.Retransmit)
	}
	c.out(seg)
}

func (c *Conn) sendAck(isDup bool) {
	if isDup {
		c.stats.DupAcksSent++
	}
	c.cancelDelAck()
	c.transmit(c.makeSeg(FlagACK, c.sndNxt, c.rcvNxt, c.advertisedWindow(), nil, false))
}

// sendAckMaybeDelayed applies RFC 1122 delayed acknowledgements when
// enabled: ACK every second in-order segment, or after the timer.
func (c *Conn) sendAckMaybeDelayed() {
	if !c.cfg.DelayedAck {
		c.sendAck(false)
		return
	}
	c.delAckCount++
	if c.delAckCount >= 2 {
		c.sendAck(false)
		return
	}
	if c.delAckTimer == nil {
		c.delAckTimer = c.sched.After(c.cfg.DelAckTimeout, c.onDelAckFn)
	}
}

// onDelAck fires the delayed-ACK timer (bound once as onDelAckFn).
func (c *Conn) onDelAck() {
	c.delAckTimer = nil
	if c.delAckCount > 0 {
		c.sendAck(false)
	}
}

func (c *Conn) cancelDelAck() {
	c.delAckCount = 0
	if c.delAckTimer != nil {
		c.sched.Cancel(c.delAckTimer)
		c.delAckTimer = nil
	}
}
