package tcpsim

import "h2privacy/internal/pool"

// segPool recycles the transport's two hot allocations — Segment
// structs and their payload buffers — across one pair's lifetime and,
// through the shared arena, across every trial the owning worker runs.
// NewPair wires its release method into netsim packet recycling, so a
// segment comes home when the last scheduled delivery of its packet
// fires (or the packet is dropped at the middlebox). Both endpoints of
// a pair share one pool; a trial is single-threaded, so there is no
// locking.
type segPool struct {
	free  pool.FreeList[Segment]
	arena *pool.Arena
}

// get returns a zeroed segment. Nil-safe: without a pool it simply
// allocates, which is the unpooled path's exact historical behaviour.
func (p *segPool) get() *Segment {
	if p == nil {
		return &Segment{}
	}
	return p.free.Get()
}

// release is the netsim payload release hook: the packet carrying seg
// has fired its last scheduled reference. Payload buffers go back to
// the arena, the struct onto the free list (zeroed there, so the
// recycled segment never resurrects the payload pointer). Non-segment
// payloads — netsim cross-traffic markers — are not ours to recycle.
func (p *segPool) release(payload any) {
	seg, ok := payload.(*Segment)
	if !ok {
		return
	}
	p.arena.Put(seg.Payload)
	p.free.Put(seg)
}
