package tcpsim

// processData handles the payload and FIN of an incoming segment: in-order
// delivery to the application, out-of-order buffering, duplicate detection,
// and the immediate-ACK behaviour that produces the dup-ACK signal the
// sender's fast retransmit (and hence the paper's §IV-B retransmission
// storm) depends on.
func (c *Conn) processData(seg *Segment) {
	seq := seg.Seq
	end := seq + uint64(len(seg.Payload))
	if seg.Flags.Has(FlagFIN) {
		c.hasPeerFin = true
		c.peerFinSeq = end // FIN comes after any payload in the segment
	}

	switch {
	case len(seg.Payload) == 0:
		// FIN-only (or bare) segment; fall through to FIN handling.
	case end <= c.rcvNxt:
		// Entirely old data: a retransmission of something we already
		// have. Re-ACK so the sender can advance.
		c.stats.DuplicateSegs++
		c.sendAck(true)
		return
	case seq <= c.rcvNxt:
		// In-order (possibly overlapping the front). Deliver the new tail.
		fresh := seg.Payload[c.rcvNxt-seq:]
		c.deliverInOrder(fresh)
		c.drainOutOfOrder()
		c.sendAckMaybeDelayed()
	default:
		// Future data: buffer and emit a duplicate ACK for the hole.
		c.stats.OutOfOrderSegs++
		if c.oooBytes+len(seg.Payload) <= c.cfg.RecvWindow {
			if _, ok := c.ooo[seq]; !ok {
				// Rented from the arena (plain make without one) and
				// returned by drainOutOfOrder once delivered or superseded.
				buf := c.arena.Bytes(len(seg.Payload))
				copy(buf, seg.Payload)
				c.ooo[seq] = buf
				c.oooBytes += len(buf)
			}
		}
		c.sendAck(true)
		return
	}

	// FIN processing: consume it only when all preceding data is in.
	if c.hasPeerFin && !c.eofSent && c.rcvNxt == c.peerFinSeq {
		c.rcvNxt++
		c.eofSent = true
		c.sendAck(false)
		if c.onEOF != nil {
			c.onEOF()
		}
		c.maybeFinishClose()
	}
}

func (c *Conn) deliverInOrder(p []byte) {
	if len(p) == 0 {
		return
	}
	c.rcvNxt += uint64(len(p))
	c.stats.BytesDelivered += int64(len(p))
	if c.ck.Enabled() {
		c.ck.TCPDeliver(c.name, c.rcvNxt)
	}
	if c.onData != nil {
		c.onData(p)
	}
}

// drainOutOfOrder delivers any buffered segments now contiguous with
// rcvNxt. Segment boundaries can shift across go-back-N retransmissions,
// so partial overlaps are trimmed rather than assumed away.
func (c *Conn) drainOutOfOrder() {
	// Apply buffered chunks lowest-seq first. The delivered byte stream is
	// the same in any order, but the per-call granularity of onData is not:
	// when overlapping chunks become contiguous together, whichever is
	// applied first decides how the tail is split, the application layer
	// flushes per call, and TCP segment boundaries shift — so map iteration
	// order here would break same-seed byte-identity across runs.
	for len(c.ooo) > 0 {
		var low uint64
		found := false
		for seq := range c.ooo {
			if !found || seq < low {
				low, found = seq, true
			}
		}
		if low > c.rcvNxt {
			return // hole before the lowest chunk: nothing contiguous
		}
		buf := c.ooo[low]
		delete(c.ooo, low)
		c.oooBytes -= len(buf)
		if end := low + uint64(len(buf)); end > c.rcvNxt {
			// Contiguous (possibly overlapping the front): deliver the tail.
			c.deliverInOrder(buf[c.rcvNxt-low:])
		}
		// onData consumers copy synchronously, so the chunk can go home.
		c.arena.Put(buf)
	}
}
